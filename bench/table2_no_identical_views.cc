// Table 2 (Section 8.3.4): the user-evolution experiment repeated after
// discarding every view identical to a target of the holdout query. With no
// identical views, syntactic caching finds nothing (0% improvement across
// the board) while BFR still rewrites semantically.
//
// Paper: BFR 51-96% improvement per analyst; BFR-SYNTACTIC 0% everywhere.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "workload/scenarios.h"

using namespace opd;  // NOLINT

int main() {
  bench::Header(
      "Table 2: execution-time improvement without identical views");

  auto bed = bench::CheckResult(workload::TestBed::Create(), "testbed");

  std::printf("%-16s", "");
  for (int a = 1; a <= workload::kNumAnalysts; ++a) std::printf("    A%d", a);
  std::printf("\n");

  double bfr_impr[workload::kNumAnalysts + 1] = {0};
  double syn_impr[workload::kNumAnalysts + 1] = {0};

  for (int holdout = 1; holdout <= workload::kNumAnalysts; ++holdout) {
    bed->DropAllViews();
    for (int analyst = 1; analyst <= workload::kNumAnalysts; ++analyst) {
      if (analyst == holdout) continue;
      bench::CheckResult(bed->RunOriginal(analyst, 1), "warmup");
    }
    bench::CheckOk(workload::DropIdenticalViews(bed.get(), holdout, 1),
                   "drop identical");

    auto plan_b =
        bench::CheckResult(workload::BuildQuery(holdout, 1), "build");
    auto bfr = bench::CheckResult(bed->bfr().Rewrite(&plan_b), "BFR");
    auto plan_s =
        bench::CheckResult(workload::BuildQuery(holdout, 1), "build");
    auto syn =
        bench::CheckResult(bed->syntactic().Rewrite(&plan_s), "SYN");

    bfr_impr[holdout] =
        bfr.original_cost <= 0
            ? 0
            : 100.0 * (bfr.original_cost - bfr.est_cost) / bfr.original_cost;
    syn_impr[holdout] =
        syn.original_cost <= 0
            ? 0
            : 100.0 * (syn.original_cost - syn.est_cost) / syn.original_cost;
  }

  std::printf("%-16s", "BFR");
  for (int a = 1; a <= workload::kNumAnalysts; ++a) {
    std::printf(" %4.0f%%", bfr_impr[a]);
  }
  std::printf("\n%-16s", "BFR-SYNTACTIC");
  for (int a = 1; a <= workload::kNumAnalysts; ++a) {
    std::printf(" %4.0f%%", syn_impr[a]);
  }
  std::printf("\n\n");

  bool syn_all_zero = true;
  double bfr_avg = 0, bfr_max = 0;
  int substantial = 0;
  for (int a = 1; a <= workload::kNumAnalysts; ++a) {
    if (syn_impr[a] > 1e-9) syn_all_zero = false;
    bfr_avg += bfr_impr[a] / workload::kNumAnalysts;
    bfr_max = std::max(bfr_max, bfr_impr[a]);
    if (bfr_impr[a] >= 25.0) ++substantial;
  }

  bool ok = true;
  ok &= bench::ShapeCheck(syn_all_zero,
                          "BFR-SYNTACTIC achieves 0% without identical views");
  ok &= bench::ShapeCheck(
      bfr_avg >= 35.0 && bfr_max >= 80.0 && substantial >= 5,
      "BFR still improves most analysts substantially (paper: 51-96%; our "
      "smaller per-query view corpus leaves a couple of analysts with no "
      "non-identical views to reuse — see EXPERIMENTS.md)");
  return ok ? 0 : 1;
}
