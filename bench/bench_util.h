// Shared helpers for the per-figure/table benchmark harnesses.

#ifndef OPD_BENCH_BENCH_UTIL_H_
#define OPD_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/status.h"

namespace opd::bench {

/// Prints an error and aborts when `status` is not OK.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckResult(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).value();
}

/// Prints a PASS/FAIL "paper-shape check" line: a qualitative property of
/// the paper's figure that the reproduction should also exhibit.
inline bool ShapeCheck(bool ok, const std::string& description) {
  std::printf("paper-shape check [%s]: %s\n", ok ? "PASS" : "FAIL",
              description.c_str());
  return ok;
}

inline void Header(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

}  // namespace opd::bench

#endif  // OPD_BENCH_BENCH_UTIL_H_
