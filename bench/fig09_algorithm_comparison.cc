// Figure 9 (Section 8.3.3): BFR vs DP in the user-evolution setting —
//   (a) candidate views considered, (b) rewrite attempts,
//   (c) algorithm runtime (log scale).
//
// Paper shape: both algorithms find identical rewrites, but BFR considers
// far fewer candidates, attempts far fewer rewrites, and runs faster —
// because GUESSCOMPLETE screens candidates and OPTCOST orders the space so
// the search can stop early.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "workload/scenarios.h"

using namespace opd;  // NOLINT

int main() {
  bench::Header("Figure 9: BFR vs DP (candidates, attempts, runtime)");

  auto bed = bench::CheckResult(workload::TestBed::Create(), "testbed");

  std::printf("%-8s %12s %12s | %10s %10s | %12s %12s | %12s %12s\n",
              "holdout", "BFR cand", "DP cand", "BFR att", "DP att",
              "BFR time", "DP time", "BFR cost", "DP cost");

  size_t bfr_cand_total = 0, dp_cand_total = 0;
  size_t bfr_att_total = 0, dp_att_total = 0;
  double bfr_time_total = 0, dp_time_total = 0;
  bool identical_rewrites = true;

  for (int holdout = 1; holdout <= workload::kNumAnalysts; ++holdout) {
    bed->DropAllViews();
    for (int analyst = 1; analyst <= workload::kNumAnalysts; ++analyst) {
      if (analyst == holdout) continue;
      bench::CheckResult(bed->RunOriginal(analyst, 1), "warmup run");
    }
    auto plan_bfr =
        bench::CheckResult(workload::BuildQuery(holdout, 1), "build");
    auto bfr =
        bench::CheckResult(bed->bfr().Rewrite(&plan_bfr), "BFR rewrite");
    auto plan_dp =
        bench::CheckResult(workload::BuildQuery(holdout, 1), "build");
    auto dp = bench::CheckResult(bed->dp().Rewrite(&plan_dp), "DP rewrite");

    std::printf(
        "A%-7d %12zu %12zu | %10zu %10zu | %11.3fs %11.3fs | %12.1f %12.1f\n",
        holdout, bfr.stats.candidates_considered,
        dp.stats.candidates_considered, bfr.stats.rewrite_attempts,
        dp.stats.rewrite_attempts, bfr.stats.runtime_s, dp.stats.runtime_s,
        bfr.est_cost, dp.est_cost);

    bfr_cand_total += bfr.stats.candidates_considered;
    dp_cand_total += dp.stats.candidates_considered;
    bfr_att_total += bfr.stats.rewrite_attempts;
    dp_att_total += dp.stats.rewrite_attempts;
    bfr_time_total += bfr.stats.runtime_s;
    dp_time_total += dp.stats.runtime_s;
    // "Both algorithms produce identical rewrites (i.e., r*)."
    if (std::abs(bfr.est_cost - dp.est_cost) > 1e-6 * (1 + dp.est_cost)) {
      identical_rewrites = false;
      std::printf("  ^ MISMATCH: BFR %f vs DP %f\n", bfr.est_cost,
                  dp.est_cost);
    }
  }

  std::printf("\ntotals: candidates BFR=%zu DP=%zu, attempts BFR=%zu DP=%zu, "
              "runtime BFR=%.3fs DP=%.3fs\n",
              bfr_cand_total, dp_cand_total, bfr_att_total, dp_att_total,
              bfr_time_total, dp_time_total);

  bool ok = true;
  ok &= bench::ShapeCheck(identical_rewrites,
                          "BFR and DP find identical minimum-cost rewrites");
  ok &= bench::ShapeCheck(bfr_cand_total * 2 <= dp_cand_total,
                          "BFR considers far fewer candidate views (Fig 9a)");
  ok &= bench::ShapeCheck(bfr_att_total <= dp_att_total,
                          "BFR attempts no more rewrites than DP (Fig 9b)");
  ok &= bench::ShapeCheck(bfr_time_total <= dp_time_total,
                          "BFR runs no slower than DP in total (Fig 9c)");
  return ok ? 0 : 1;
}
