// Figure 8 (Section 8.3.2), user evolution: each analyst in turn is the
// "holdout"; every other analyst runs the first version of their query, and
// the holdout's v1 is then rewritten against those views.
//
//   Fig 8(a): execution time ORIG vs REWR per holdout analyst (log scale).
//   Fig 8(b): data manipulated (read+shuffle+write) in GB.
//   Fig 8(c): % improvement in execution time.
//
// Paper shape: REWR always beats ORIG, improvements roughly 50-90%, and the
// data-manipulated reduction mirrors the time reduction.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "workload/scenarios.h"

using namespace opd;  // NOLINT

int main() {
  bench::Header("Figure 8: User Evolution (holdout analyst's v1)");

  auto bed = bench::CheckResult(workload::TestBed::Create(), "testbed");
  auto rows = bench::CheckResult(workload::RunUserEvolution(bed.get()),
                                 "scenario");

  std::printf("%-8s %12s %12s %12s %12s %14s\n", "holdout", "ORIG (s)",
              "REWR (s)", "ORIG (GB)", "REWR (GB)", "improvement");
  double min_impr = 100, max_impr = 0;
  bool always_faster = true;
  bool data_mirrors_time = true;
  for (const auto& row : rows) {
    std::printf("A%-7d %12.1f %12.1f %12.2f %12.2f %13.1f%%\n", row.analyst,
                row.orig_time_s, row.rewr_time_s, row.orig_gb, row.rewr_gb,
                row.ImprovementPct());
    min_impr = std::min(min_impr, row.ImprovementPct());
    max_impr = std::max(max_impr, row.ImprovementPct());
    if (row.rewr_time_s >= row.orig_time_s) always_faster = false;
    if (row.ImprovementPct() > 30.0 && row.rewr_gb >= row.orig_gb) {
      data_mirrors_time = false;
    }
  }
  std::printf("\nimprovement range: %.1f%% .. %.1f%%\n", min_impr, max_impr);

  bool ok = true;
  ok &= bench::ShapeCheck(always_faster,
                          "REWR execution time is always lower than ORIG "
                          "(paper Fig 8a)");
  ok &= bench::ShapeCheck(max_impr >= 70.0 && min_impr >= 5.0,
                          "improvements span a wide range up to ~90% "
                          "(paper Fig 8c: 50-90%)");
  ok &= bench::ShapeCheck(data_mirrors_time,
                          "data manipulated shows the same trend as time "
                          "(paper Fig 8b)");
  return ok ? 0 : 1;
}
