// Figure 12 (Section 8.3.4): BFR vs BFR-SYNTACTIC on the query-evolution
// scenario for analyst 1. A1v1 executes once; A1v2-v4 are then rewritten by
// both the semantic rewriter and the syntactic-caching baseline.
//
// Paper shape: both methods tie on A1v2 (syntactically identical sub-plans
// exist), but BFR-SYNTACTIC falls behind on A1v3/A1v4, where reuse requires
// semantic compensation (changed thresholds).

#include <cstdio>

#include "bench_util.h"
#include "workload/scenarios.h"

using namespace opd;  // NOLINT

int main() {
  bench::Header("Figure 12: BFR vs BFR-SYNTACTIC (A1v2-v4, % improvement)");

  auto bed = bench::CheckResult(workload::TestBed::Create(), "testbed");
  bed->DropAllViews();
  bench::CheckResult(bed->RunOriginal(1, 1), "A1v1 execution");

  std::printf("%-8s %14s %18s\n", "query", "BFR", "BFR-SYNTACTIC");
  double bfr_impr[5] = {0}, syn_impr[5] = {0};
  for (int version = 2; version <= 4; ++version) {
    auto plan_b = bench::CheckResult(workload::BuildQuery(1, version), "b");
    auto bfr = bench::CheckResult(bed->bfr().Rewrite(&plan_b), "BFR");
    auto plan_s = bench::CheckResult(workload::BuildQuery(1, version), "b");
    auto syn =
        bench::CheckResult(bed->syntactic().Rewrite(&plan_s), "SYNTACTIC");

    bfr_impr[version] = bfr.original_cost <= 0
                            ? 0
                            : 100.0 * (bfr.original_cost - bfr.est_cost) /
                                  bfr.original_cost;
    syn_impr[version] = syn.original_cost <= 0
                            ? 0
                            : 100.0 * (syn.original_cost - syn.est_cost) /
                                  syn.original_cost;
    std::printf("A1v%-5d %13.1f%% %17.1f%%\n", version, bfr_impr[version],
                syn_impr[version]);
  }

  bool ok = true;
  ok &= bench::ShapeCheck(
      syn_impr[2] > 0,
      "syntactic matching still helps the immediate revision (A1v2)");
  ok &= bench::ShapeCheck(
      bfr_impr[3] > syn_impr[3] + 5 && bfr_impr[4] > syn_impr[4] + 5,
      "BFR beats BFR-SYNTACTIC on later revisions (A1v3/A1v4)");
  ok &= bench::ShapeCheck(
      bfr_impr[2] >= syn_impr[2] - 1e-9,
      "semantic rewriting subsumes syntactic matching");
  return ok ? 0 : 1;
}
