// google-benchmark microbenchmarks for the rewriter's hot primitives:
// OPTCOST, GUESSCOMPLETE, fix computation, annotation, and fingerprinting.
// These are the operations whose cheapness the paper's design depends on
// ("the ability to quickly compute a lower-bound is a key feature").

#include <benchmark/benchmark.h>

#include "optimizer/optimizer.h"
#include "plan/annotate.h"
#include "plan/fingerprint.h"
#include "rewrite/guess_complete.h"
#include "rewrite/opt_cost.h"
#include "workload/scenarios.h"

using namespace opd;  // NOLINT

namespace {

// Shared fixture: a small testbed with the workload's views materialized.
struct Env {
  std::unique_ptr<workload::TestBed> bed;
  plan::Plan query;
  std::vector<rewrite::CandidateView> candidates;

  Env() {
    workload::TestBedConfig config;
    config.data.n_tweets = 2000;
    config.data.n_checkins = 1200;
    config.data.n_locations = 200;
    config.calibrate_udfs = false;
    auto result = workload::TestBed::Create(config);
    if (!result.ok()) std::abort();
    bed = std::move(result).value();
    for (int a = 1; a <= 4; ++a) {
      if (!bed->RunOriginal(a, 1).ok()) std::abort();
    }
    auto q = workload::BuildQuery(1, 2);
    if (!q.ok()) std::abort();
    query = std::move(q).value();
    if (!bed->optimizer().Prepare(&query).ok()) std::abort();
    for (const auto* def : bed->views().All()) {
      candidates.push_back(rewrite::MakeBaseCandidate(*def));
    }
  }
};

Env& GetEnv() {
  static Env env;
  return env;
}

}  // namespace

static void BM_GuessComplete(benchmark::State& state) {
  Env& env = GetEnv();
  const afk::Afk& q = env.query.root()->afk;
  size_t i = 0;
  for (auto _ : state) {
    const auto& c = env.candidates[i++ % env.candidates.size()];
    benchmark::DoNotOptimize(rewrite::GuessComplete(q, c.afk));
  }
}
BENCHMARK(BM_GuessComplete);

static void BM_OptCost(benchmark::State& state) {
  Env& env = GetEnv();
  const afk::Afk& q = env.query.root()->afk;
  const auto& model = env.bed->optimizer().cost_model();
  size_t i = 0;
  for (auto _ : state) {
    const auto& c = env.candidates[i++ % env.candidates.size()];
    benchmark::DoNotOptimize(rewrite::OptCost(q, c, model));
  }
}
BENCHMARK(BM_OptCost);

static void BM_ComputeFix(benchmark::State& state) {
  Env& env = GetEnv();
  const afk::Afk& q = env.query.root()->afk;
  size_t i = 0;
  for (auto _ : state) {
    const auto& c = env.candidates[i++ % env.candidates.size()];
    benchmark::DoNotOptimize(afk::ComputeFix(q, c.afk));
  }
}
BENCHMARK(BM_ComputeFix);

static void BM_AnnotatePlan(benchmark::State& state) {
  Env& env = GetEnv();
  for (auto _ : state) {
    auto plan = workload::BuildQuery(1, 2);
    benchmark::DoNotOptimize(
        plan::AnnotatePlan(plan.value(), env.bed->optimizer().context()));
  }
}
BENCHMARK(BM_AnnotatePlan);

static void BM_OptimizerPrepare(benchmark::State& state) {
  Env& env = GetEnv();
  for (auto _ : state) {
    auto plan = workload::BuildQuery(1, 2);
    plan::Plan p = std::move(plan).value();
    benchmark::DoNotOptimize(env.bed->optimizer().Prepare(&p));
  }
}
BENCHMARK(BM_OptimizerPrepare);

static void BM_Fingerprint(benchmark::State& state) {
  Env& env = GetEnv();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan::Fingerprint(env.query.root()));
  }
}
BENCHMARK(BM_Fingerprint);

static void BM_FullBfRewrite(benchmark::State& state) {
  Env& env = GetEnv();
  for (auto _ : state) {
    auto plan = workload::BuildQuery(1, 2);
    plan::Plan p = std::move(plan).value();
    auto outcome = env.bed->bfr().Rewrite(&p);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_FullBfRewrite)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
