// Serving-layer microbench: interleaved multi-tenant query streams against
// one opd::Server (shared DFS / catalog / ViewStore, admission control,
// snapshot-consistent view visibility — DESIGN.md §3).
//
// `micro_serve --json` prints two JSON lines; scripts/bench.sh appends
// both to BENCH_engine.json.
//
// The `serve_observed` record measures the continuous-observability tax:
// the same 4-tenant x 8-query interleaved pass runs with full
// observability (query-history ring + JSONL sink + SLO gauges + slow-query
// capture of the offending tail) and with the query log disabled
// (query_log_capacity = 0), lanes interleaved best-of-3 after an untimed
// warm-up to damp 1-core noisy-neighbor stalls. It carries
// `queries_per_sec` with observability on, `querylog_overhead_pct`
// (observed vs baseline wall), the retained `slow_capture_bytes`, and the
// server's own `latency_p95_s` SLO gauge. `--check` (scripts/bench.sh)
// gates querylog_overhead_pct < 5.
//
// The `serve` record is the serving-layer throughput + correctness lane
// (4 tenants x 8 shuffled workload queries through Server::Connect
// handles). It carries `queries_per_sec` (wall-clock serving throughput),
// the `view_hit_rate` (fraction of queries whose executed plan scanned at
// least one opportunistic view), `cross_tenant_reuse` (queries that reused
// a view materialized by ANOTHER tenant), and the correctness receipt
// `outputs_match_serial_replay`: every query's output fingerprint must be
// byte-identical to a serial replay of the recorded schedule (publish-epoch
// order, admission epochs pinned) on a fresh, identically-seeded bed.
// `--check` (scripts/bench.sh) gates on the receipt and on
// cross_tenant_reuse >= 1.
//
// Without --json it prints the same numbers human-readably plus
// paper-shape checks.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/hash.h"
#include "common/json_writer.h"
#include "server/server.h"
#include "session/session.h"
#include "storage/table.h"
#include "storage/value.h"
#include "workload/queries.h"
#include "workload/scenarios.h"

using namespace opd;  // NOLINT

namespace {

constexpr int kTenants = 4;
constexpr int kQueriesPerTenant = 8;

// Schema + rows, name excluded (it embeds the engine run counter, which
// differs between the concurrent pass and its serial replay).
uint64_t TableFingerprint(const storage::Table& t) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const storage::Column& col : t.schema().columns()) {
    HashCombine(&h, HashString(col.name));
    HashCombine(&h, static_cast<uint64_t>(col.type));
  }
  HashCombine(&h, t.num_rows());
  const storage::RowHash row_hash;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    HashCombine(&h, row_hash(t.row(i)));
  }
  return h;
}

workload::TestBedConfig BenchConfig() {
  workload::TestBedConfig config;
  config.data.n_tweets = 2000;
  config.data.n_checkins = 1200;
  config.data.n_locations = 200;
  config.data.n_users = 100;
  // Wall-clock-calibrated UDF scalars differ bed to bed; disable so the
  // replay bed makes identical rewrite decisions.
  config.calibrate_udfs = false;
  return config;
}

struct QueryRecord {
  std::string tenant;
  int analyst = 0;
  int version = 0;
  catalog::Epoch admission_epoch = 0;
  catalog::Epoch publish_epoch = 0;
  uint64_t fingerprint = 0;
  bool used_view = false;
  bool cross_tenant = false;
};

// Per-tenant shuffled (analyst, version) streams; seeded so every lane
// (observed, baseline, serve, replay) serves the identical workload.
std::vector<std::vector<std::pair<int, int>>> BuildStreams() {
  std::vector<std::vector<std::pair<int, int>>> streams(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    std::vector<std::pair<int, int>> all;
    for (int a = 1; a <= workload::kNumAnalysts; ++a) {
      for (int v = 1; v <= workload::kNumVersions; ++v) {
        all.emplace_back(a, v);
      }
    }
    std::mt19937 rng(7u + static_cast<unsigned>(t));
    std::shuffle(all.begin(), all.end(), rng);
    all.resize(kQueriesPerTenant);
    streams[t] = std::move(all);
  }
  return streams;
}

// One interleaved pass over `bed`'s server; returns wall seconds. Outputs
// are discarded — this is the timing body of the observability-overhead
// lanes. Each tenant serves its stream `rounds` times: the overhead lanes
// use 2 rounds so the timed region is long enough for a stable ratio on a
// 1-core runner (the second round is the all-warm steady state where the
// query log is the only extra work).
double TimedPass(workload::TestBed& bed, int rounds) {
  Server& server = bed.session().server();
  const auto streams = BuildStreams();
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t] {
      ClientSession client = server.Connect("tenant" + std::to_string(t));
      for (int round = 0; round < rounds; ++round) {
        for (const auto& [analyst, version] : streams[t]) {
          plan::Plan plan = bench::CheckResult(
              workload::BuildQuery(analyst, version), "BuildQuery");
          bench::CheckOk(client.Run(std::move(plan)).status(), "Server::Run");
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       wall_start)
      .count();
}

// The continuous-observability tax: full query history + slow capture +
// JSONL sink vs the query log disabled (capacity 0). Runs before the
// throughput/replay pass so the p95 read off the server's own SLO gauge
// (MetricRegistry::Global() is process-wide) covers only these lanes —
// all of which serve the identical query stream.
struct ObservedLane {
  int queries = 0;  // queries per timed pass (streams x rounds)
  double observed_wall_s = 0;
  double baseline_wall_s = 0;
  double overhead_pct = 0;
  double latency_p95_s = 0;
  uint64_t querylog_appended = 0;
  uint64_t slow_captured = 0;
  uint64_t slow_capture_bytes = 0;
};

ObservedLane RunObservedLane() {
  const std::string jsonl =
      "/tmp/opd_micro_serve_querylog." +
      std::to_string(static_cast<unsigned long>(::getpid())) + ".jsonl";

  workload::TestBedConfig observed_cfg = BenchConfig();
  // Slow capture targets offending queries only (DESIGN.md §3): on this
  // workload the threshold catches the cold view-materializing queries
  // (tens of ms) while the warmed view-reading ones (single-digit ms)
  // stay cheap. Capture-everything (threshold 0) is the pathological
  // config and is exercised by tests, not by the perf gate.
  observed_cfg.session.server.slow_query_threshold_s = 0.05;
  observed_cfg.session.server.query_log_path = jsonl;

  workload::TestBedConfig baseline_cfg = BenchConfig();
  baseline_cfg.session.server.query_log_capacity = 0;  // log disabled

  ObservedLane lane;
  lane.observed_wall_s = 1e30;
  lane.baseline_wall_s = 1e30;
  constexpr int kRounds = 2;
  constexpr int kReps = 7;
  lane.queries = kTenants * kQueriesPerTenant * kRounds;
  // Untimed warm-up pass: absorbs first-touch costs (allocator, page
  // faults, lazy statics) that would otherwise land on whichever lane
  // runs first.
  {
    auto warm = bench::CheckResult(workload::TestBed::Create(baseline_cfg),
                                   "warmup TestBed::Create");
    TimedPass(*warm, 1);
  }
  // Interleave the lanes so adjacent passes see the same machine weather.
  // Timing noise on a busy 1-core runner is one-sided — a stall only ever
  // ADDS time — so two upward-biased estimators are computed and the lower
  // one wins: the ratio of each lane's best pass (min-of-kReps converges
  // on the stall-free cost) and the median of the per-rep paired ratios
  // (a stall corrupts one pair, the median discards it).
  std::vector<double> ratios;
  ratios.reserve(kReps);
  for (int rep = 0; rep < kReps; ++rep) {
    std::remove(jsonl.c_str());
    double observed_wall = 0;
    {
      auto bed = bench::CheckResult(workload::TestBed::Create(observed_cfg),
                                    "observed TestBed::Create");
      observed_wall = TimedPass(*bed, kRounds);
      Server& server = bed->session().server();
      const obs::QueryLog::Stats stats = server.query_log()->stats();
      lane.querylog_appended = stats.appended;
      lane.slow_captured = stats.slow_captured;
      lane.slow_capture_bytes = stats.capture_bytes;
      lane.latency_p95_s = server.Introspect().global.latency_p95_s;
    }
    auto bed = bench::CheckResult(workload::TestBed::Create(baseline_cfg),
                                  "baseline TestBed::Create");
    const double baseline_wall = TimedPass(*bed, kRounds);
    lane.observed_wall_s = std::min(lane.observed_wall_s, observed_wall);
    lane.baseline_wall_s = std::min(lane.baseline_wall_s, baseline_wall);
    if (baseline_wall > 0) ratios.push_back(observed_wall / baseline_wall);
  }
  std::remove(jsonl.c_str());
  if (!ratios.empty() && lane.baseline_wall_s > 0) {
    std::sort(ratios.begin(), ratios.end());
    const double median_ratio = ratios[ratios.size() / 2];
    const double best_ratio = lane.observed_wall_s / lane.baseline_wall_s;
    lane.overhead_pct = 100.0 * (std::min(median_ratio, best_ratio) - 1.0);
  }
  return lane;
}

int RunServe(bool json) {
  const ObservedLane lane = RunObservedLane();

  auto bed = bench::CheckResult(workload::TestBed::Create(BenchConfig()),
                                "TestBed::Create");
  Server& server = bed->session().server();

  const auto streams = BuildStreams();

  std::mutex mu;
  std::vector<QueryRecord> records;
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t] {
      ClientSession client = server.Connect("tenant" + std::to_string(t));
      for (const auto& [analyst, version] : streams[t]) {
        plan::Plan plan = bench::CheckResult(
            workload::BuildQuery(analyst, version), "BuildQuery");
        Result<RunResult> run = client.Run(std::move(plan));
        bench::CheckOk(run.status(), "Server::Run");
        QueryRecord rec;
        rec.tenant = run->tenant;
        rec.analyst = analyst;
        rec.version = version;
        rec.admission_epoch = run->admission_epoch;
        rec.publish_epoch = run->publish_epoch;
        rec.fingerprint = run->table ? TableFingerprint(*run->table) : 0;
        rec.used_view = !run->views_used.empty();
        for (const ViewUse& use : run->views_used) {
          if (!use.tenant.empty() && use.tenant != rec.tenant) {
            rec.cross_tenant = true;
          }
        }
        std::lock_guard<std::mutex> lock(mu);
        records.push_back(std::move(rec));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  const size_t total = records.size();
  size_t hits = 0;
  size_t cross = 0;
  for (const QueryRecord& rec : records) {
    hits += rec.used_view ? 1 : 0;
    cross += rec.cross_tenant ? 1 : 0;
  }
  const double qps = wall_s > 0 ? static_cast<double>(total) / wall_s : 0;
  const double hit_rate =
      total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0;

  // Serial replay oracle: fresh bed, publish-epoch order, pinned epochs.
  std::sort(records.begin(), records.end(),
            [](const QueryRecord& a, const QueryRecord& b) {
              return a.publish_epoch < b.publish_epoch;
            });
  auto replay_bed = bench::CheckResult(
      workload::TestBed::Create(BenchConfig()), "replay TestBed::Create");
  Server& replay = replay_bed->session().server();
  bool outputs_match = true;
  for (const QueryRecord& rec : records) {
    ClientSession client = replay.Connect(rec.tenant);
    plan::Plan plan = bench::CheckResult(
        workload::BuildQuery(rec.analyst, rec.version), "BuildQuery");
    RunOptions opts;
    opts.admission.pin_epoch = static_cast<int64_t>(rec.admission_epoch);
    Result<RunResult> run = client.Run(std::move(plan), opts);
    bench::CheckOk(run.status(), "replay Server::Run");
    if (run->publish_epoch != rec.publish_epoch || !run->table ||
        TableFingerprint(*run->table) != rec.fingerprint) {
      outputs_match = false;
      std::fprintf(stderr,
                   "serial replay diverged: %s A%dv%d @ epoch %llu\n",
                   rec.tenant.c_str(), rec.analyst, rec.version,
                   static_cast<unsigned long long>(rec.publish_epoch));
    }
  }

  const auto stats = server.admission_stats();
  if (json) {
    {
      JsonWriter w;
      w.BeginObject();
      w.Key("bench").String("micro_serve");
      w.Key("mode").String("serve_observed");
      w.Key("tenants").Int(kTenants);
      w.Key("queries").Int(lane.queries);
      w.Key("wall_s").Double(lane.observed_wall_s);
      w.Key("baseline_wall_s").Double(lane.baseline_wall_s);
      w.Key("queries_per_sec")
          .Double(lane.observed_wall_s > 0
                      ? lane.queries / lane.observed_wall_s
                      : 0.0);
      w.Key("querylog_overhead_pct").Double(lane.overhead_pct);
      w.Key("querylog_appended").UInt(lane.querylog_appended);
      w.Key("slow_captured").UInt(lane.slow_captured);
      w.Key("slow_capture_bytes").UInt(lane.slow_capture_bytes);
      w.Key("latency_p95_s").Double(lane.latency_p95_s);
      w.EndObject();
      std::printf("%s\n", w.Take().c_str());
    }
    JsonWriter w;
    w.BeginObject();
    w.Key("bench").String("micro_serve");
    w.Key("mode").String("serve");
    w.Key("tenants").Int(kTenants);
    w.Key("queries").UInt(total);
    w.Key("max_concurrent").Int(
        server.options().server.max_concurrent_queries);
    w.Key("wall_s").Double(wall_s);
    w.Key("queries_per_sec").Double(qps);
    w.Key("view_hit_rate").Double(hit_rate);
    w.Key("cross_tenant_reuse").UInt(cross);
    w.Key("admissions_queued").UInt(stats.queued);
    w.Key("views_in_store").UInt(server.views().size());
    w.Key("outputs_match_serial_replay").Bool(outputs_match);
    w.EndObject();
    std::printf("%s\n", w.Take().c_str());
  } else {
    bench::Header("micro_serve: multi-tenant serving throughput");
    std::printf("tenants %d x %d queries, max_concurrent=%d\n", kTenants,
                kQueriesPerTenant,
                server.options().server.max_concurrent_queries);
    std::printf("wall %.3fs  ->  %.1f queries/s (queued admissions: %llu)\n",
                wall_s, qps, static_cast<unsigned long long>(stats.queued));
    std::printf("view hit rate %.0f%%, cross-tenant reuse on %zu/%zu "
                "queries, %zu views in store\n",
                100.0 * hit_rate, cross, total, server.views().size());
    std::printf("full observability %.3fs vs log-off %.3fs -> %+.1f%% "
                "overhead (%llu records, %llu slow profiles / %llu bytes "
                "retained, p95 %.3fs)\n",
                lane.observed_wall_s, lane.baseline_wall_s,
                lane.overhead_pct,
                static_cast<unsigned long long>(lane.querylog_appended),
                static_cast<unsigned long long>(lane.slow_captured),
                static_cast<unsigned long long>(lane.slow_capture_bytes),
                lane.latency_p95_s);
    bench::ShapeCheck(outputs_match,
                      "interleaved outputs byte-identical to serial replay");
    bench::ShapeCheck(cross >= 1,
                      "at least one query reused another tenant's view");
    bench::ShapeCheck(lane.querylog_appended ==
                          static_cast<uint64_t>(lane.queries),
                      "observed lane logged every query exactly once");
  }
  return outputs_match && cross >= 1 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  return RunServe(json);
}
