// Serving-layer microbench: interleaved multi-tenant query streams against
// one opd::Server (shared DFS / catalog / ViewStore, admission control,
// snapshot-consistent view visibility — DESIGN.md §3).
//
// `micro_serve --json` runs one concurrent pass (4 tenants x 8 shuffled
// workload queries through Server::Connect handles) and prints one JSON
// line; scripts/bench.sh appends it to BENCH_engine.json. The record
// carries `queries_per_sec` (wall-clock serving throughput), the
// `view_hit_rate` (fraction of queries whose executed plan scanned at
// least one opportunistic view), `cross_tenant_reuse` (queries that reused
// a view materialized by ANOTHER tenant), and the correctness receipt
// `outputs_match_serial_replay`: every query's output fingerprint must be
// byte-identical to a serial replay of the recorded schedule (publish-epoch
// order, admission epochs pinned) on a fresh, identically-seeded bed.
// `--check` (scripts/bench.sh) gates on the receipt and on
// cross_tenant_reuse >= 1.
//
// Without --json it prints the same numbers human-readably plus
// paper-shape checks.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/hash.h"
#include "common/json_writer.h"
#include "server/server.h"
#include "session/session.h"
#include "storage/table.h"
#include "storage/value.h"
#include "workload/queries.h"
#include "workload/scenarios.h"

using namespace opd;  // NOLINT

namespace {

constexpr int kTenants = 4;
constexpr int kQueriesPerTenant = 8;

// Schema + rows, name excluded (it embeds the engine run counter, which
// differs between the concurrent pass and its serial replay).
uint64_t TableFingerprint(const storage::Table& t) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const storage::Column& col : t.schema().columns()) {
    HashCombine(&h, HashString(col.name));
    HashCombine(&h, static_cast<uint64_t>(col.type));
  }
  HashCombine(&h, t.num_rows());
  const storage::RowHash row_hash;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    HashCombine(&h, row_hash(t.row(i)));
  }
  return h;
}

workload::TestBedConfig BenchConfig() {
  workload::TestBedConfig config;
  config.data.n_tweets = 2000;
  config.data.n_checkins = 1200;
  config.data.n_locations = 200;
  config.data.n_users = 100;
  // Wall-clock-calibrated UDF scalars differ bed to bed; disable so the
  // replay bed makes identical rewrite decisions.
  config.calibrate_udfs = false;
  return config;
}

struct QueryRecord {
  std::string tenant;
  int analyst = 0;
  int version = 0;
  catalog::Epoch admission_epoch = 0;
  catalog::Epoch publish_epoch = 0;
  uint64_t fingerprint = 0;
  bool used_view = false;
  bool cross_tenant = false;
};

int RunServe(bool json) {
  auto bed = bench::CheckResult(workload::TestBed::Create(BenchConfig()),
                                "TestBed::Create");
  Server& server = bed->session().server();

  std::vector<std::vector<std::pair<int, int>>> streams(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    std::vector<std::pair<int, int>> all;
    for (int a = 1; a <= workload::kNumAnalysts; ++a) {
      for (int v = 1; v <= workload::kNumVersions; ++v) {
        all.emplace_back(a, v);
      }
    }
    std::mt19937 rng(7u + static_cast<unsigned>(t));
    std::shuffle(all.begin(), all.end(), rng);
    all.resize(kQueriesPerTenant);
    streams[t] = std::move(all);
  }

  std::mutex mu;
  std::vector<QueryRecord> records;
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t] {
      ClientSession client = server.Connect("tenant" + std::to_string(t));
      for (const auto& [analyst, version] : streams[t]) {
        plan::Plan plan = bench::CheckResult(
            workload::BuildQuery(analyst, version), "BuildQuery");
        Result<RunResult> run = client.Run(std::move(plan));
        bench::CheckOk(run.status(), "Server::Run");
        QueryRecord rec;
        rec.tenant = run->tenant;
        rec.analyst = analyst;
        rec.version = version;
        rec.admission_epoch = run->admission_epoch;
        rec.publish_epoch = run->publish_epoch;
        rec.fingerprint = run->table ? TableFingerprint(*run->table) : 0;
        rec.used_view = !run->views_used.empty();
        for (const ViewUse& use : run->views_used) {
          if (!use.tenant.empty() && use.tenant != rec.tenant) {
            rec.cross_tenant = true;
          }
        }
        std::lock_guard<std::mutex> lock(mu);
        records.push_back(std::move(rec));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  const size_t total = records.size();
  size_t hits = 0;
  size_t cross = 0;
  for (const QueryRecord& rec : records) {
    hits += rec.used_view ? 1 : 0;
    cross += rec.cross_tenant ? 1 : 0;
  }
  const double qps = wall_s > 0 ? static_cast<double>(total) / wall_s : 0;
  const double hit_rate =
      total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0;

  // Serial replay oracle: fresh bed, publish-epoch order, pinned epochs.
  std::sort(records.begin(), records.end(),
            [](const QueryRecord& a, const QueryRecord& b) {
              return a.publish_epoch < b.publish_epoch;
            });
  auto replay_bed = bench::CheckResult(
      workload::TestBed::Create(BenchConfig()), "replay TestBed::Create");
  Server& replay = replay_bed->session().server();
  bool outputs_match = true;
  for (const QueryRecord& rec : records) {
    ClientSession client = replay.Connect(rec.tenant);
    plan::Plan plan = bench::CheckResult(
        workload::BuildQuery(rec.analyst, rec.version), "BuildQuery");
    RunOptions opts;
    opts.admission.pin_epoch = static_cast<int64_t>(rec.admission_epoch);
    Result<RunResult> run = client.Run(std::move(plan), opts);
    bench::CheckOk(run.status(), "replay Server::Run");
    if (run->publish_epoch != rec.publish_epoch || !run->table ||
        TableFingerprint(*run->table) != rec.fingerprint) {
      outputs_match = false;
      std::fprintf(stderr,
                   "serial replay diverged: %s A%dv%d @ epoch %llu\n",
                   rec.tenant.c_str(), rec.analyst, rec.version,
                   static_cast<unsigned long long>(rec.publish_epoch));
    }
  }

  const auto stats = server.admission_stats();
  if (json) {
    JsonWriter w;
    w.BeginObject();
    w.Key("bench").String("micro_serve");
    w.Key("mode").String("serve");
    w.Key("tenants").Int(kTenants);
    w.Key("queries").UInt(total);
    w.Key("max_concurrent").Int(
        server.options().server.max_concurrent_queries);
    w.Key("wall_s").Double(wall_s);
    w.Key("queries_per_sec").Double(qps);
    w.Key("view_hit_rate").Double(hit_rate);
    w.Key("cross_tenant_reuse").UInt(cross);
    w.Key("admissions_queued").UInt(stats.queued);
    w.Key("views_in_store").UInt(server.views().size());
    w.Key("outputs_match_serial_replay").Bool(outputs_match);
    w.EndObject();
    std::printf("%s\n", w.Take().c_str());
  } else {
    bench::Header("micro_serve: multi-tenant serving throughput");
    std::printf("tenants %d x %d queries, max_concurrent=%d\n", kTenants,
                kQueriesPerTenant,
                server.options().server.max_concurrent_queries);
    std::printf("wall %.3fs  ->  %.1f queries/s (queued admissions: %llu)\n",
                wall_s, qps, static_cast<unsigned long long>(stats.queued));
    std::printf("view hit rate %.0f%%, cross-tenant reuse on %zu/%zu "
                "queries, %zu views in store\n",
                100.0 * hit_rate, cross, total, server.views().size());
    bench::ShapeCheck(outputs_match,
                      "interleaved outputs byte-identical to serial replay");
    bench::ShapeCheck(cross >= 1,
                      "at least one query reused another tenant's view");
  }
  return outputs_match && cross >= 1 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  return RunServe(json);
}
