// Shuffle-hash microbench: the flat open-addressing tables and vectorized
// key hashing (src/exec/hash/) in isolation — no engine, no DFS — against
// the legacy packed-std::string + std::unordered_map reduce path on the
// same data, plus a heap-allocation audit of the flat inner loops.
//
// `micro_hash --json` runs the suite once and prints one JSON line;
// scripts/bench.sh appends it to BENCH_engine.json, and --check gates
// `numeric_build_allocs_per_row` / `numeric_probe_allocs_per_row` at zero:
// with the table fully Reserve()d from the build-side count, a numeric-key
// build+probe must not touch the heap per row (KeyScratch stays in its
// inline buffer, key bytes land in the pre-sized arena). The run exits
// non-zero if the flat results diverge from the unordered_map oracle.
// scripts/check.sh also runs this binary under ASan+UBSan.
//
// Without --json it runs google-benchmark microbenchmarks of the same
// loops for interactive profiling.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/json_writer.h"
#include "common/rng.h"
#include "exec/hash/flat_table.h"
#include "exec/hash/hash_kernels.h"
#include "storage/row_batch.h"
#include "storage/schema.h"
#include "storage/table.h"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new bumps it, so a delta around
// a loop counts that loop's heap allocations (single-threaded here).
// ---------------------------------------------------------------------------
namespace {
std::atomic<uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace opd;  // NOLINT

namespace {

using exec::hash::FlatGroupIndex;
using exec::hash::FlatMultiMap;
using exec::hash::KeyCodec;
using exec::hash::KeyScratch;
using storage::DataType;
using storage::Row;
using storage::RowBatch;
using storage::Schema;
using storage::Table;
using storage::Value;

constexpr size_t kBuildRows = 64 * 1024;
constexpr size_t kProbeRows = 256 * 1024;
constexpr size_t kKeySpace = 16 * 1024;  // ~4 duplicates per build key

// One int64 key column + one payload column; probe keys half-overlap the
// build key space so probes see both hits and misses.
Table MakeSide(const char* name, size_t rows, size_t key_lo, uint64_t seed) {
  Schema s;
  if (!s.AddColumn({"k", DataType::kInt64}).ok()) std::abort();
  if (!s.AddColumn({"v", DataType::kInt64}).ok()) std::abort();
  Table t(name, s);
  Rng rng(seed);
  for (size_t r = 0; r < rows; ++r) {
    Row row{Value(static_cast<int64_t>(key_lo + rng.Uniform(kKeySpace))),
            Value(static_cast<int64_t>(r))};
    if (!t.AppendRow(std::move(row)).ok()) std::abort();
  }
  return t;
}

const std::vector<RowBatch>& BuildBatches() {
  static Table t = MakeSide("build", kBuildRows, 0, 1);
  static auto b = t.ToBatches();
  return *b;
}
const std::vector<RowBatch>& ProbeBatches() {
  static Table t = MakeSide("probe", kProbeRows, kKeySpace / 2, 2);
  static auto b = t.ToBatches();
  return *b;
}

const std::vector<size_t> kKeyCols{0};

// Batch-wide flat hashes of every row of `batches`.
std::vector<uint64_t> FlatHashes(const std::vector<RowBatch>& batches) {
  size_t n = 0;
  for (const RowBatch& b : batches) n += b.num_rows();
  std::vector<uint64_t> hashes(n);
  size_t off = 0;
  for (const RowBatch& b : batches) {
    exec::hash::HashKeys(b, kKeyCols, hashes.data() + off);
    off += b.num_rows();
  }
  return hashes;
}

// Legacy key encoding (mirrors the engine's PackCell for an int64 lane).
void LegacyPack(const RowBatch& b, size_t i, std::string* out) {
  out->clear();
  const auto& col = b.column(0);
  if (col.IsNull(i)) {
    out->push_back('\0');
    return;
  }
  double d = static_cast<double>(col.ints()[i]);
  out->push_back('\1');
  char bits[sizeof(double)];
  std::memcpy(bits, &d, sizeof(d));
  out->append(bits, sizeof(d));
}

struct JoinResult {
  uint64_t matches = 0;
  double wall_s = 0;
  double build_allocs_per_row = 0;
  double probe_allocs_per_row = 0;
  uint64_t table_bytes = 0;
};

// Flat join: HashKeys pass + fully reserved FlatMultiMap build + probe.
// The allocation deltas cover exactly the per-row build and probe loops.
// `prefetch` toggles the probe-slot __builtin_prefetch in the linear-probe
// loops and `distinct_hint` feeds Reserve's duplicate-chain pre-sizing (the
// engine passes the optimizer's est_distinct) — both ablated in --json.
JoinResult FlatJoin(int iterations, bool prefetch = true,
                    size_t distinct_hint = 0) {
  const auto& build = BuildBatches();
  const auto& probe = ProbeBatches();
  JoinResult res;
  const auto start = std::chrono::steady_clock::now();
  for (int it = 0; it < iterations; ++it) {
    const std::vector<uint64_t> bh = FlatHashes(build);
    const std::vector<uint64_t> ph = FlatHashes(probe);
    const std::vector<KeyCodec> codecs = exec::hash::PlanKeyCodecs(
        {{&build, &kKeyCols}, {&probe, &kKeyCols}});
    FlatMultiMap<uint32_t> ht;
    ht.Reserve(kBuildRows, codecs[0].bounded ? codecs[0].width_bound : 0,
               distinct_hint);
    ht.set_prefetch(prefetch);
    KeyScratch key;
    uint64_t matches = 0;

    const uint64_t allocs_before_build =
        g_allocs.load(std::memory_order_relaxed);
    size_t g = 0;
    for (const RowBatch& b : build) {
      for (size_t i = 0; i < b.num_rows(); ++i, ++g) {
        exec::hash::NormalizeKey(b, i, codecs[0], &key);
        ht.Insert(bh[g], key.data(), key.size(), static_cast<uint32_t>(g));
      }
    }
    const uint64_t allocs_before_probe =
        g_allocs.load(std::memory_order_relaxed);
    g = 0;
    for (const RowBatch& b : probe) {
      for (size_t i = 0; i < b.num_rows(); ++i, ++g) {
        exec::hash::NormalizeKey(b, i, codecs[1], &key);
        ht.ForEachMatch(ph[g], key.data(), key.size(),
                        [&](uint32_t) { ++matches; });
      }
    }
    const uint64_t allocs_after =
        g_allocs.load(std::memory_order_relaxed);
    res.matches = matches;
    res.table_bytes = ht.memory_bytes();
    res.build_allocs_per_row =
        static_cast<double>(allocs_before_probe - allocs_before_build) /
        static_cast<double>(kBuildRows);
    res.probe_allocs_per_row =
        static_cast<double>(allocs_after - allocs_before_probe) /
        static_cast<double>(kProbeRows);
  }
  res.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count() /
               iterations;
  return res;
}

// Legacy join: per-row RowHash bucketing hash + packed std::string keys in
// a node-based std::unordered_map — the pre-flat reduce path.
JoinResult LegacyJoin(int iterations) {
  const auto& build = BuildBatches();
  const auto& probe = ProbeBatches();
  JoinResult res;
  const auto start = std::chrono::steady_clock::now();
  for (int it = 0; it < iterations; ++it) {
    std::unordered_map<std::string, std::vector<uint32_t>> ht;
    ht.reserve(kBuildRows);
    std::string key;
    uint64_t matches = 0, hash_sink = 0;
    size_t g = 0;
    for (const RowBatch& b : build) {
      for (size_t i = 0; i < b.num_rows(); ++i, ++g) {
        hash_sink ^= b.HashKeysAt(i, kKeyCols);  // the bucketing hash
        LegacyPack(b, i, &key);
        ht[key].push_back(static_cast<uint32_t>(g));
      }
    }
    for (const RowBatch& b : probe) {
      for (size_t i = 0; i < b.num_rows(); ++i) {
        hash_sink ^= b.HashKeysAt(i, kKeyCols);
        LegacyPack(b, i, &key);
        auto it2 = ht.find(key);
        if (it2 != ht.end()) matches += it2->second.size();
      }
    }
    benchmark::DoNotOptimize(hash_sink);
    res.matches = matches;
  }
  res.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count() /
               iterations;
  return res;
}

struct GroupResult {
  uint64_t groups = 0;
  double wall_s = 0;
};

GroupResult FlatGroupBy(int iterations, bool prefetch = true) {
  const auto& in = ProbeBatches();
  GroupResult res;
  const auto start = std::chrono::steady_clock::now();
  for (int it = 0; it < iterations; ++it) {
    const std::vector<uint64_t> h = FlatHashes(in);
    const std::vector<KeyCodec> codecs =
        exec::hash::PlanKeyCodecs({{&in, &kKeyCols}});
    FlatGroupIndex index;
    index.Reserve(kKeySpace, codecs[0].bounded ? codecs[0].width_bound : 0);
    index.set_prefetch(prefetch);
    std::vector<uint64_t> counts;
    counts.reserve(kKeySpace);
    KeyScratch key;
    size_t g = 0;
    for (const RowBatch& b : in) {
      for (size_t i = 0; i < b.num_rows(); ++i, ++g) {
        exec::hash::NormalizeKey(b, i, codecs[0], &key);
        auto [id, inserted] = index.InsertOrGet(h[g], key.data(), key.size());
        if (inserted) counts.push_back(0);
        ++counts[id];
      }
    }
    res.groups = counts.size();
  }
  res.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count() /
               iterations;
  return res;
}

GroupResult LegacyGroupBy(int iterations) {
  const auto& in = ProbeBatches();
  GroupResult res;
  const auto start = std::chrono::steady_clock::now();
  for (int it = 0; it < iterations; ++it) {
    std::unordered_map<std::string, size_t> index;
    index.reserve(kKeySpace);
    std::vector<uint64_t> counts;
    counts.reserve(kKeySpace);
    std::string key;
    uint64_t hash_sink = 0;
    for (const RowBatch& b : in) {
      for (size_t i = 0; i < b.num_rows(); ++i) {
        hash_sink ^= b.HashKeysAt(i, kKeyCols);  // the bucketing hash
        LegacyPack(b, i, &key);
        auto [it2, inserted] = index.try_emplace(key, counts.size());
        if (inserted) counts.push_back(0);
        ++counts[it2->second];
      }
    }
    benchmark::DoNotOptimize(hash_sink);
    res.groups = counts.size();
  }
  res.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count() /
               iterations;
  return res;
}

double RowsPerSec(size_t rows, double wall_s) {
  return wall_s > 0 ? static_cast<double>(rows) / wall_s : 0;
}

int RunJsonMode() {
  constexpr int kIters = 5;
  // Warm the data, code paths, and allocator once so lane ordering doesn't
  // bias the speedup ratios (the first timed lane otherwise pays every
  // cold-cache and page-fault cost and the later ablation lanes run warm).
  FlatJoin(1);
  LegacyJoin(1);
  FlatGroupBy(1);
  LegacyGroupBy(1);
  const JoinResult flat_join = FlatJoin(kIters);
  const JoinResult legacy_join = LegacyJoin(kIters);
  const GroupResult flat_group = FlatGroupBy(kIters);
  const GroupResult legacy_group = LegacyGroupBy(kIters);
  // Ablation lanes (measured, not gated): the same loops with the
  // linear-probe prefetch off, and with the duplicate-chain arrays
  // pre-sized from the exact distinct-key count the way the engine seeds
  // Reserve from est_rows/est_distinct.
  const JoinResult join_noprefetch = FlatJoin(kIters, /*prefetch=*/false);
  const GroupResult group_noprefetch =
      FlatGroupBy(kIters, /*prefetch=*/false);
  const JoinResult join_presized =
      FlatJoin(kIters, /*prefetch=*/true, /*distinct_hint=*/kKeySpace);

  const bool match = flat_join.matches == legacy_join.matches &&
                     flat_group.groups == legacy_group.groups;
  const size_t join_rows = kBuildRows + kProbeRows;

  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("micro_hash");
  w.Key("schema_version").Int(1);
  w.Key("mode").String("hash");
  w.Key("build_rows").UInt(kBuildRows);
  w.Key("probe_rows").UInt(kProbeRows);
  w.Key("iterations").Int(kIters);
  w.Key("flat_join_rows_per_sec").Double(RowsPerSec(join_rows, flat_join.wall_s));
  w.Key("legacy_join_rows_per_sec")
      .Double(RowsPerSec(join_rows, legacy_join.wall_s));
  w.Key("join_speedup")
      .Double(flat_join.wall_s > 0 ? legacy_join.wall_s / flat_join.wall_s
                                   : 0);
  w.Key("flat_groupby_rows_per_sec")
      .Double(RowsPerSec(kProbeRows, flat_group.wall_s));
  w.Key("legacy_groupby_rows_per_sec")
      .Double(RowsPerSec(kProbeRows, legacy_group.wall_s));
  w.Key("groupby_speedup")
      .Double(flat_group.wall_s > 0 ? legacy_group.wall_s / flat_group.wall_s
                                    : 0);
  w.Key("numeric_build_allocs_per_row").Double(flat_join.build_allocs_per_row);
  w.Key("numeric_probe_allocs_per_row").Double(flat_join.probe_allocs_per_row);
  w.Key("prefetch_join_speedup")
      .Double(flat_join.wall_s > 0 ? join_noprefetch.wall_s / flat_join.wall_s
                                   : 0);
  w.Key("prefetch_groupby_speedup")
      .Double(flat_group.wall_s > 0
                  ? group_noprefetch.wall_s / flat_group.wall_s
                  : 0);
  w.Key("presize_join_speedup")
      .Double(join_presized.wall_s > 0
                  ? flat_join.wall_s / join_presized.wall_s
                  : 0);
  // Pre-sizing's main win: the distinct-hint lane retains a fraction of
  // the all-distinct worst-case table footprint.
  w.Key("presize_join_bytes_ratio")
      .Double(flat_join.table_bytes > 0
                  ? static_cast<double>(join_presized.table_bytes) /
                        static_cast<double>(flat_join.table_bytes)
                  : 0);
  w.Key("join_matches").UInt(flat_join.matches);
  w.Key("groups").UInt(flat_group.groups);
  w.Key("outputs_match").Bool(match);
  w.EndObject();
  std::printf("%s\n", w.str().c_str());
  return match ? 0 : 1;
}

}  // namespace

static void BM_FlatJoinBuildProbe(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(FlatJoin(1).matches);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kBuildRows + kProbeRows));
}
BENCHMARK(BM_FlatJoinBuildProbe)->Unit(benchmark::kMillisecond);

static void BM_LegacyJoinBuildProbe(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(LegacyJoin(1).matches);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kBuildRows + kProbeRows));
}
BENCHMARK(BM_LegacyJoinBuildProbe)->Unit(benchmark::kMillisecond);

static void BM_FlatGroupBy(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(FlatGroupBy(1).groups);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kProbeRows));
}
BENCHMARK(BM_FlatGroupBy)->Unit(benchmark::kMillisecond);

static void BM_LegacyGroupBy(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(LegacyGroupBy(1).groups);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kProbeRows));
}
BENCHMARK(BM_LegacyGroupBy)->Unit(benchmark::kMillisecond);

static void BM_HashKeysBatchWide(benchmark::State& state) {
  const auto& in = ProbeBatches();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FlatHashes(in));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kProbeRows));
}
BENCHMARK(BM_HashKeysBatchWide)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return RunJsonMode();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
