// Figure 11 (Section 8.3.3): the quality of BFR's solutions over its search
// time. A1v1 runs first (producing views); for each of A1v2..A1v4 we trace
// the % error of the best-known rewrite cost relative to the optimal rewrite
// as the search progresses.
//
// Paper shape: error starts at 100% (no rewrite yet), stays flat while the
// candidate space is grown, then converges to 0% quickly once the first
// rewrites appear; BFR finds far fewer valid rewrites than DP before
// terminating (e.g. 46 vs 4656 for A1v4).

#include <cstdio>

#include "bench_util.h"
#include "workload/scenarios.h"

using namespace opd;  // NOLINT

int main() {
  bench::Header("Figure 11: BFR convergence to the optimal rewrite (A1v2-v4)");

  auto bed = bench::CheckResult(workload::TestBed::Create(), "testbed");
  bed->DropAllViews();
  bench::CheckResult(bed->RunOriginal(1, 1), "A1v1 execution");
  bench::CheckResult(bed->RunOriginal(1, 2), "A1v2 execution");
  bench::CheckResult(bed->RunOriginal(1, 3), "A1v3 execution");

  bool converges = true;
  bool monotone = true;
  bool bfr_finds_fewer = true;

  for (int version = 2; version <= 4; ++version) {
    auto plan = bench::CheckResult(workload::BuildQuery(1, version), "build");
    auto outcome =
        bench::CheckResult(bed->bfr().Rewrite(&plan), "BFR rewrite");
    auto plan_dp =
        bench::CheckResult(workload::BuildQuery(1, version), "build");
    auto dp = bench::CheckResult(bed->dp().Rewrite(&plan_dp), "DP rewrite");

    const double orig = outcome.original_cost;
    const double opt = outcome.est_cost;
    std::printf("A1v%d: original cost %.1f, optimal rewrite cost %.1f, "
                "search %.4fs, valid rewrites: BFR=%zu DP=%zu\n",
                version, orig, opt, outcome.stats.runtime_s,
                outcome.stats.rewrites_found, dp.stats.rewrites_found);
    std::printf("  %-12s %-12s %s\n", "elapsed (s)", "cost", "% error");
    double prev_err = 1e300;
    for (const auto& [elapsed, cost] : outcome.stats.convergence) {
      double err = (orig - opt) <= 0 ? 0.0
                                     : 100.0 * (cost - opt) / (orig - opt);
      std::printf("  %-12.5f %-12.1f %6.1f%%\n", elapsed, cost, err);
      if (err > prev_err + 1e-9) monotone = false;
      prev_err = err;
    }
    if (outcome.stats.convergence.empty() ||
        outcome.stats.convergence.back().second > opt + 1e-6) {
      converges = false;
    }
    if (outcome.stats.rewrites_found > dp.stats.rewrites_found) {
      bfr_finds_fewer = false;
    }
    std::printf("\n");
  }

  bool ok = true;
  ok &= bench::ShapeCheck(converges,
                          "each trace ends at the optimal rewrite (0% error)");
  ok &= bench::ShapeCheck(monotone, "error decreases monotonically");
  ok &= bench::ShapeCheck(bfr_finds_fewer,
                          "BFR terminates after finding no more valid "
                          "rewrites than exhaustive DP");
  return ok ? 0 : 1;
}
