// Ablation (paper Section 10 / DESIGN.md): view retention policies under a
// storage budget. The paper retained everything (~2x base data) and left
// view selection as future work, suggesting LRU/LFU/cost-benefit policies.
// This bench replays the query-evolution workload under a constrained
// budget, enforcing each policy after every execution, and reports the
// average improvement the rewriter still achieves.
//
// Empirical note: in this workload *largest-first* does surprisingly well —
// the most reusable views are the small aggregated ones, and the benefit
// counters that cost-benefit relies on are sparse when every query is
// measured once. The checked shape is the paper's weaker, robust claim
// (Section 10): the rewriter keeps performing well under a trivial
// reclamation policy, and no policy beats the unlimited budget.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "catalog/eviction.h"
#include "workload/scenarios.h"

using namespace opd;  // NOLINT

namespace {

// Runs the query-evolution loop for the first `n_analysts` analysts under a
// retention policy; returns the average v2-v4 improvement.
double RunUnderPolicy(workload::TestBed* bed,
                      catalog::ViewRetention* retention, int n_analysts) {
  double total = 0;
  int count = 0;
  for (int analyst = 1; analyst <= n_analysts; ++analyst) {
    bed->DropAllViews();
    for (int version = 1; version <= workload::kNumVersions; ++version) {
      auto rewr = bench::CheckResult(bed->RunRewritten(analyst, version),
                                     "rewritten run");
      auto orig = bench::CheckResult(bed->RunOriginal(analyst, version),
                                     "original run");
      if (retention != nullptr) {
        bench::CheckResult(retention->Enforce(), "enforce");
      }
      if (version > 1) {
        double orig_t = orig.metrics.sim_time_s;
        double rewr_t = rewr.TotalTime();
        total += orig_t <= 0 ? 0 : 100.0 * (orig_t - rewr_t) / orig_t;
        ++count;
      }
    }
  }
  return count ? total / count : 0;
}

}  // namespace

int main() {
  bench::Header("Ablation: view retention policies under a storage budget");

  workload::TestBedConfig config;
  config.data.n_tweets = 8000;
  config.data.n_checkins = 5000;
  auto bed = bench::CheckResult(workload::TestBed::Create(config), "testbed");
  const int n_analysts = 4;  // keep the sweep affordable

  // Unlimited baseline.
  double unlimited = RunUnderPolicy(bed.get(), nullptr, n_analysts);
  std::printf("%-14s %10s\n", "policy", "avg impr");
  std::printf("%-14s %9.1f%%\n", "UNLIMITED", unlimited);

  // Budget: a fraction of what the unlimited run retained.
  bed->DropAllViews();
  {
    // Measure typical retained bytes for one analyst to size the budget.
    for (int version = 1; version <= workload::kNumVersions; ++version) {
      bench::CheckResult(bed->RunOriginal(1, version), "sizing run");
    }
  }
  const uint64_t full_bytes = bed->views().TotalBytes();
  const uint64_t budget = full_bytes / 3;
  std::printf("(budget: %.2f MB = 1/3 of one analyst's full retention)\n",
              budget / 1048576.0);

  const catalog::EvictionPolicy policies[] = {
      catalog::EvictionPolicy::kCostBenefit, catalog::EvictionPolicy::kLru,
      catalog::EvictionPolicy::kLfu, catalog::EvictionPolicy::kFifo,
      catalog::EvictionPolicy::kLargestFirst};
  double results[5] = {0};
  for (int p = 0; p < 5; ++p) {
    catalog::ViewRetention retention(&bed->views(), &bed->dfs(),
                                     {budget, policies[p]});
    results[p] = RunUnderPolicy(bed.get(), &retention, n_analysts);
    std::printf("%-14s %9.1f%%\n", catalog::EvictionPolicyName(policies[p]),
                results[p]);
  }

  bool ok = true;
  double best = 0, worst = 100;
  for (double r : results) {
    best = std::max(best, r);
    worst = std::min(worst, r);
  }
  ok &= bench::ShapeCheck(unlimited >= best - 10.0,
                          "the unlimited budget is an upper bound (within "
                          "noise)");
  ok &= bench::ShapeCheck(worst >= 0.45 * unlimited,
                          "every policy degrades gracefully at 1/3 budget "
                          "(paper: works well even with trivial policies)");
  return ok ? 0 : 1;
}
