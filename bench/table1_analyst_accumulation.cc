// Table 1 (Section 8.3.2): improvement in execution time of query A5v3 as
// more analysts' queries (and therefore more opportunistic views) enter the
// system.
//
// Paper: 1 analyst -> 0%, then 73%, 73%, 75%, 89%, 89%, 89% — improvement
// grows with added analysts and saturates.

#include <cstdio>

#include "bench_util.h"
#include "workload/scenarios.h"

using namespace opd;  // NOLINT

int main() {
  bench::Header("Table 1: improvement of A5v3 as analysts are added");

  auto bed = bench::CheckResult(workload::TestBed::Create(), "testbed");
  auto improvements = bench::CheckResult(
      workload::RunAnalystAccumulation(bed.get()), "scenario");

  std::printf("%-16s", "Analysts added");
  for (size_t i = 0; i < improvements.size(); ++i) {
    std::printf(" %6zu", i + 1);
  }
  std::printf("\n%-16s", "Improvement");
  for (double imp : improvements) std::printf(" %5.0f%%", imp);
  std::printf("\n\n");

  bool non_decreasing = true;
  for (size_t i = 1; i < improvements.size(); ++i) {
    if (improvements[i] + 8.0 < improvements[i - 1]) non_decreasing = false;
  }
  bool ok = true;
  ok &= bench::ShapeCheck(improvements.front() == 0.0,
                          "a single analyst yields no improvement");
  ok &= bench::ShapeCheck(improvements.back() >= 50.0,
                          "with all analysts present the improvement is "
                          "large (paper: 89%)");
  ok &= bench::ShapeCheck(non_decreasing,
                          "improvement grows (weakly) as analysts are added");
  return ok ? 0 : 1;
}
