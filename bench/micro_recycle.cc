// Hash-recycler microbench: cross-query reuse of built hash tables
// (src/exec/hash/recycler.h, DESIGN.md §2h).
//
// Two workloads, each on its own Session (so the recycler starts cold):
//
//  1. *Repeated join* — the same join (64k-row build side, 64k-row probe
//     side, rewrite off) runs once cold and `kWarmIters` times warm. The
//     cold run builds the flat per-bucket tables and inserts them into the
//     server's recycler; every warm run must hit and probe the cached
//     build. Reported: cold vs warm wall time, their ratio (the recycle
//     speedup scripts/bench.sh gates at >= 1.3x), an output-fingerprint
//     receipt, and `zero_rebuild` — the recycler's insert counter must not
//     move during the warm runs (hits only, no rebuild ever).
//
//  2. *Warm rewrite* — a group-by materializes an opportunistic view; six
//     follow-up queries join that group-by against six distinct probe
//     tables with rewrite ON, so BFREWRITE replaces the group-by subtree
//     with a scan of the published view. The join's build side is then a
//     view scan (identity `view:<id>@<epoch>`): the first rewritten query
//     misses and caches, the rest hit. Reported as `warm_rewrite_hit_rate`.
//
// `micro_recycle --json` prints one JSON line (mode "recycle") that
// scripts/bench.sh appends to BENCH_engine.json and gates in --check.
// Exit status is 1 when outputs diverge or a warm run rebuilt.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/hash.h"
#include "common/json_writer.h"
#include "exec/hash/recycler.h"
#include "server/server.h"
#include "session/session.h"
#include "storage/table.h"
#include "storage/value.h"

using namespace opd;  // NOLINT

namespace {

constexpr int64_t kBuildRows = 64 * 1024;
constexpr int64_t kProbeRows = 64 * 1024;
constexpr int64_t kMatchingProbes = 2048;
constexpr int kWarmIters = 6;

constexpr int64_t kGroupRows = 40 * 1024;
constexpr int64_t kGroupKeys = 8 * 1024;
constexpr int64_t kRewriteProbeRows = 12 * 1024;
constexpr int kRewriteProbeTables = 6;

uint64_t TableFingerprint(const storage::Table& t) {
  uint64_t h = 0xcbf29ce484222325ULL;
  HashCombine(&h, t.num_rows());
  const storage::RowHash row_hash;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    HashCombine(&h, row_hash(t.row(i)));
  }
  return h;
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

storage::TablePtr MakeBuildTable() {
  auto t = std::make_shared<storage::Table>(
      "RBUILD", storage::Schema({{"k", storage::DataType::kInt64},
                                 {"bv", storage::DataType::kInt64}}));
  for (int64_t i = 0; i < kBuildRows; ++i) {
    bench::CheckOk(
        t->AppendRow({storage::Value(i), storage::Value(i * 3 % 1001)}),
        "RBUILD AppendRow");
  }
  return t;
}

storage::TablePtr MakeProbeTable() {
  auto t = std::make_shared<storage::Table>(
      "RPROBE", storage::Schema({{"k", storage::DataType::kInt64},
                                 {"pv", storage::DataType::kInt64}}));
  // The first kMatchingProbes rows hit the build side; the rest miss, so
  // the join output (and its materialization cost) stays small relative to
  // the build/probe work the bench is measuring.
  for (int64_t i = 0; i < kProbeRows; ++i) {
    const int64_t key = i < kMatchingProbes ? i : (1 << 20) + i;
    bench::CheckOk(
        t->AppendRow({storage::Value(key), storage::Value(i % 997)}),
        "RPROBE AppendRow");
  }
  return t;
}

struct RepeatedJoinResult {
  double cold_ms = 0;
  double warm_ms = 0;
  double speedup = 0;
  bool outputs_match = true;
  bool zero_rebuild = true;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t bytes = 0;
};

RepeatedJoinResult RunRepeatedJoin() {
  SessionOptions options;
  options.engine.collect_stats = false;
  // The repeated query would otherwise accumulate one identical join view
  // per run; retention is irrelevant with rewrite off, so keep the bed lean.
  options.engine.retain_views = false;
  auto session =
      bench::CheckResult(Session::Create(options), "Session::Create");
  bench::CheckOk(session->RegisterTable(MakeBuildTable(), {"k"}),
                 "RegisterTable RBUILD");
  bench::CheckOk(session->RegisterTable(MakeProbeTable(), {"k"}),
                 "RegisterTable RPROBE");

  // RBUILD on the right: the engine builds on the smaller-or-equal side
  // (ties keep build-on-right), so the cached structure covers RBUILD.
  const std::string oql =
      "p = scan RPROBE;"
      "b = scan RBUILD;"
      "r = join p b on k = k;";
  RunOptions opts;
  opts.rewrite = false;

  RepeatedJoinResult out;
  exec::hash::HashRecycler& recycler = session->server().recycler();

  auto cold_start = std::chrono::steady_clock::now();
  auto cold = bench::CheckResult(session->Run(oql, opts), "cold join Run");
  out.cold_ms = MsSince(cold_start);
  const uint64_t cold_fp = TableFingerprint(*cold.table);
  const exec::hash::RecyclerStats after_cold = recycler.stats();

  double warm_total_ms = 0;
  for (int i = 0; i < kWarmIters; ++i) {
    auto warm_start = std::chrono::steady_clock::now();
    auto warm = bench::CheckResult(session->Run(oql, opts), "warm join Run");
    warm_total_ms += MsSince(warm_start);
    if (TableFingerprint(*warm.table) != cold_fp) {
      out.outputs_match = false;
      std::fprintf(stderr, "warm run %d output diverged from cold run\n", i);
    }
  }
  out.warm_ms = warm_total_ms / kWarmIters;
  out.speedup = out.warm_ms > 0 ? out.cold_ms / out.warm_ms : 0;

  const exec::hash::RecyclerStats stats = recycler.stats();
  out.hits = stats.hits;
  out.misses = stats.misses;
  out.inserts = stats.inserts;
  out.bytes = stats.bytes;
  // Warm runs may only hit: any insert after the cold run means a warm run
  // rebuilt a table the cache should have served.
  out.zero_rebuild = stats.inserts == after_cold.inserts &&
                     stats.hits >= after_cold.hits + kWarmIters;
  return out;
}

struct WarmRewriteResult {
  int queries = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  double hit_rate = 0;
  bool rewrites_used_view = true;
};

WarmRewriteResult RunWarmRewrite() {
  SessionOptions options;
  options.engine.collect_stats = false;
  auto session =
      bench::CheckResult(Session::Create(options), "Session::Create");

  auto gt = std::make_shared<storage::Table>(
      "GT", storage::Schema({{"k", storage::DataType::kInt64},
                             {"v", storage::DataType::kInt64}}));
  for (int64_t i = 0; i < kGroupRows; ++i) {
    bench::CheckOk(gt->AppendRow({storage::Value(i % kGroupKeys),
                                  storage::Value(i % 97)}),
                   "GT AppendRow");
  }
  bench::CheckOk(session->RegisterTable(std::move(gt), {"k"}),
                 "RegisterTable GT");
  for (int t = 0; t < kRewriteProbeTables; ++t) {
    const std::string name = "RP" + std::to_string(t);
    auto p = std::make_shared<storage::Table>(
        name, storage::Schema({{"k", storage::DataType::kInt64},
                               {"w", storage::DataType::kInt64}}));
    for (int64_t i = 0; i < kRewriteProbeRows; ++i) {
      bench::CheckOk(
          p->AppendRow({storage::Value((i * 31 + t) % kGroupKeys),
                        storage::Value(i % 53)}),
          "probe AppendRow");
    }
    bench::CheckOk(session->RegisterTable(std::move(p), {"k"}),
                   "RegisterTable probe");
  }

  // Query 0 materializes the group-by as an opportunistic view; queries
  // 1..N-1 (distinct probe tables, so no full-plan view match) are
  // rewritten to join against a scan of that view — the recyclable shape.
  WarmRewriteResult out;
  for (int t = 0; t < kRewriteProbeTables; ++t) {
    const std::string oql =
        "a = scan GT | groupby k sum(v) as s;"
        "p = scan RP" + std::to_string(t) + ";"
        "r = join p a on k = k;";
    auto run = bench::CheckResult(session->Run(oql), "warm-rewrite Run");
    if (t > 0) {
      ++out.queries;
      if (run.views_used.empty()) out.rewrites_used_view = false;
      for (const exec::JobRun& jr : run.jobs) {
        out.hits += jr.recycle_hits;
        out.misses += jr.recycle_misses;
      }
    }
  }
  const uint64_t looked_up = out.hits + out.misses;
  out.hit_rate = looked_up > 0
                     ? static_cast<double>(out.hits) /
                           static_cast<double>(looked_up)
                     : 0;
  return out;
}

int RunRecycleBench(bool json) {
  const RepeatedJoinResult rj = RunRepeatedJoin();
  const WarmRewriteResult wr = RunWarmRewrite();

  if (json) {
    JsonWriter w;
    w.BeginObject();
    w.Key("bench").String("micro_recycle");
    w.Key("mode").String("recycle");
    w.Key("build_rows").Int(static_cast<int>(kBuildRows));
    w.Key("probe_rows").Int(static_cast<int>(kProbeRows));
    w.Key("warm_iters").Int(kWarmIters);
    w.Key("repeated_join_cold_ms").Double(rj.cold_ms);
    w.Key("repeated_join_warm_ms").Double(rj.warm_ms);
    w.Key("repeated_join_speedup").Double(rj.speedup);
    w.Key("outputs_match").Bool(rj.outputs_match);
    w.Key("zero_rebuild").Bool(rj.zero_rebuild);
    w.Key("recycle_hits").UInt(rj.hits);
    w.Key("recycle_misses").UInt(rj.misses);
    w.Key("recycle_inserts").UInt(rj.inserts);
    w.Key("recycle_bytes").UInt(rj.bytes);
    w.Key("warm_rewrite_queries").Int(wr.queries);
    w.Key("warm_rewrite_hit_rate").Double(wr.hit_rate);
    w.EndObject();
    std::printf("%s\n", w.Take().c_str());
  } else {
    bench::Header("micro_recycle: cross-query hash-table recycling");
    std::printf("repeated join (%lld build x %lld probe rows, %d warm "
                "iters):\n",
                static_cast<long long>(kBuildRows),
                static_cast<long long>(kProbeRows), kWarmIters);
    std::printf("  cold %.2fms, warm %.2fms  ->  %.2fx recycle speedup\n",
                rj.cold_ms, rj.warm_ms, rj.speedup);
    std::printf("  recycler: %llu hits, %llu misses, %llu inserts, "
                "%llu bytes retained\n",
                static_cast<unsigned long long>(rj.hits),
                static_cast<unsigned long long>(rj.misses),
                static_cast<unsigned long long>(rj.inserts),
                static_cast<unsigned long long>(rj.bytes));
    std::printf("warm rewrite: %llu hits / %llu misses over %d rewritten "
                "queries  ->  %.0f%% hit rate\n",
                static_cast<unsigned long long>(wr.hits),
                static_cast<unsigned long long>(wr.misses), wr.queries,
                100.0 * wr.hit_rate);
    bench::ShapeCheck(rj.outputs_match,
                      "recycled outputs byte-identical to cold build");
    bench::ShapeCheck(rj.zero_rebuild,
                      "warm runs never rebuilt (hits only, zero inserts)");
    bench::ShapeCheck(rj.speedup >= 1.3,
                      "recycled join >= 1.3x faster than cold build");
    bench::ShapeCheck(wr.rewrites_used_view && wr.hit_rate > 0,
                      "rewritten view joins recycle the view's hash table");
  }
  return rj.outputs_match && rj.zero_rebuild ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  return RunRecycleBench(json);
}
