// Ablation of the rewriter's design choices (DESIGN.md Section 7):
//   1. OPTCOST ordering of the candidate queue  (vs FIFO)
//   2. GUESSCOMPLETE screening before REWRITEENUM  (vs attempt-everything)
//   3. J — views per rewrite  (1, 2, 4)
//   4. k — operator repetitions in a compensation  (1, 2)
//
// All variants must find the same minimum-cost rewrites (the knobs control
// effort / expressiveness, with J and k trading rewrite quality for search
// cost); the full configuration should dominate on search effort.

#include <cstdio>

#include "bench_util.h"
#include "workload/scenarios.h"

using namespace opd;  // NOLINT

namespace {

struct Variant {
  const char* name;
  rewrite::RewriteOptions options;
};

struct Totals {
  double cost = 0;
  size_t candidates = 0;
  size_t attempts = 0;
  double runtime = 0;
};

}  // namespace

int main() {
  bench::Header("Ablation: OPTCOST ordering, GUESSCOMPLETE, J, k");

  workload::TestBedConfig config;
  config.data.n_tweets = 8000;
  config.data.n_checkins = 5000;
  auto bed = bench::CheckResult(workload::TestBed::Create(config), "testbed");

  // Views from every analyst's first two versions.
  for (int analyst = 1; analyst <= workload::kNumAnalysts; ++analyst) {
    bench::CheckResult(bed->RunOriginal(analyst, 1), "seed v1");
    bench::CheckResult(bed->RunOriginal(analyst, 2), "seed v2");
  }
  std::printf("view store: %zu views\n\n", bed->views().size());

  std::vector<Variant> variants;
  variants.push_back({"FULL (J=4,k=2)", {}});
  {
    rewrite::RewriteOptions o;
    o.use_optcost_ordering = false;
    variants.push_back({"no OPTCOST order", o});
  }
  {
    rewrite::RewriteOptions o;
    o.use_guess_complete_filter = false;
    variants.push_back({"no GUESSCOMPLETE", o});
  }
  {
    rewrite::RewriteOptions o;
    o.max_views_per_rewrite = 1;
    variants.push_back({"J=1 (no merging)", o});
  }
  {
    rewrite::RewriteOptions o;
    o.max_views_per_rewrite = 2;
    variants.push_back({"J=2", o});
  }
  {
    rewrite::RewriteOptions o;
    o.max_op_repetition = 1;
    variants.push_back({"k=1", o});
  }

  std::printf("%-20s %14s %12s %10s %12s\n", "variant", "total cost",
              "candidates", "attempts", "runtime");
  std::vector<Totals> totals(variants.size());
  for (size_t v = 0; v < variants.size(); ++v) {
    rewrite::BfRewriter rewriter(&bed->optimizer(), &bed->views(),
                                 variants[v].options);
    for (int analyst = 1; analyst <= workload::kNumAnalysts; ++analyst) {
      auto q = bench::CheckResult(workload::BuildQuery(analyst, 3), "build");
      auto outcome = bench::CheckResult(rewriter.Rewrite(&q), "rewrite");
      totals[v].cost += outcome.est_cost;
      totals[v].candidates += outcome.stats.candidates_considered;
      totals[v].attempts += outcome.stats.rewrite_attempts;
      totals[v].runtime += outcome.stats.runtime_s;
    }
    std::printf("%-20s %14.1f %12zu %10zu %11.3fs\n", variants[v].name,
                totals[v].cost, totals[v].candidates, totals[v].attempts,
                totals[v].runtime);
  }

  bool ok = true;
  // Ordering/screening knobs must not change the found optimum.
  ok &= bench::ShapeCheck(
      std::abs(totals[0].cost - totals[1].cost) < 1e-6 * (1 + totals[0].cost),
      "OPTCOST ordering changes effort, not the optimum");
  ok &= bench::ShapeCheck(
      std::abs(totals[0].cost - totals[2].cost) < 1e-6 * (1 + totals[0].cost),
      "GUESSCOMPLETE screening changes effort, not the optimum");
  ok &= bench::ShapeCheck(totals[0].attempts <= totals[2].attempts,
                          "GUESSCOMPLETE prunes rewrite attempts");
  ok &= bench::ShapeCheck(totals[0].candidates <= totals[1].candidates,
                          "OPTCOST ordering prunes candidate exploration");
  // Restricting J or k can only lose rewrites (cost is weakly higher).
  ok &= bench::ShapeCheck(totals[3].cost >= totals[0].cost - 1e-6 &&
                              totals[5].cost >= totals[0].cost - 1e-6,
                          "restricting J or k never finds cheaper rewrites");
  return ok ? 0 : 1;
}
