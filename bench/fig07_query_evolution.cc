// Figure 7 (Section 8.3.1), query evolution: each analyst iteratively
// refines their query (v1 -> v4); every version is rewritten against the
// opportunistic views produced by the earlier versions.
//
//   Fig 7(a): execution time of ORIG vs REWR per query version (log scale).
//   Fig 7(b): % improvement in execution time (v1 omitted; always 0).
//
// Paper shape: REWR improves v2-v4 by ~10-90% (average ~61%), up to an
// order of magnitude, and never loses.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "workload/scenarios.h"

using namespace opd;  // NOLINT

int main() {
  bench::Header("Figure 7: Query Evolution (ORIG vs REWR per version)");

  auto bed = bench::CheckResult(workload::TestBed::Create(), "testbed");
  auto rows =
      bench::CheckResult(workload::RunQueryEvolution(bed.get()), "scenario");

  std::printf("%-8s %12s %12s %14s %12s %12s\n", "query", "ORIG (s)",
              "REWR (s)", "improvement", "ORIG (GB)", "REWR (GB)");
  double improvement_sum = 0;
  int improvement_count = 0;
  double max_improvement = 0;
  bool rewr_never_loses = true;
  for (const auto& row : rows) {
    std::printf("A%dv%-5d %12.1f %12.1f %13.1f%% %12.2f %12.2f\n",
                row.analyst, row.version, row.orig_time_s, row.rewr_time_s,
                row.ImprovementPct(), row.orig_gb, row.rewr_gb);
    if (row.version > 1) {
      improvement_sum += row.ImprovementPct();
      improvement_count += 1;
      max_improvement = std::max(max_improvement, row.ImprovementPct());
      if (row.rewr_time_s > row.orig_time_s * 1.05) rewr_never_loses = false;
    }
  }
  const double avg = improvement_sum / std::max(improvement_count, 1);
  std::printf("\naverage improvement (v2-v4): %.1f%%  max: %.1f%%\n", avg,
              max_improvement);

  bool ok = true;
  ok &= bench::ShapeCheck(avg >= 40.0,
                          "average v2-v4 improvement is large (paper: ~61%)");
  ok &= bench::ShapeCheck(max_improvement >= 85.0,
                          "best case approaches an order of magnitude "
                          "(paper: up to ~10x)");
  ok &= bench::ShapeCheck(rewr_never_loses,
                          "REWR never materially slower than ORIG");
  return ok ? 0 : 1;
}
