// Expression-evaluation microbench: measures the fused ExprProgram kernels
// (src/exec/expr/) in isolation — no engine, no DFS, no shuffle — over a
// synthetic columnar table (int64 / double / dictionary-string lanes, with
// and without nulls).
//
// `micro_eval --json` runs the single-thread throughput suite once and
// prints one JSON line; scripts/bench.sh appends it to BENCH_engine.json and
// `--check` gates `fused_int64_rows_per_sec` against a floor (the CI runner
// is 1-core, so the gate is on single-thread throughput, not speedups). The
// record also carries `chain_fused_rows_per_sec` vs
// `chain_unfused_rows_per_sec` — the same 3-step project+filter chain run as
// one fused pass vs one operator at a time with gathers in between — and an
// `outputs_match_row_eval` receipt comparing every fused verdict against a
// per-row `afk::EvalCmp` evaluation.
//
// Without --json it runs google-benchmark microbenchmarks of the same
// kernels for interactive profiling.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "afk/predicate.h"
#include "common/json_writer.h"
#include "common/rng.h"
#include "exec/expr/expr_program.h"
#include "storage/row_batch.h"
#include "storage/schema.h"
#include "storage/table.h"

using namespace opd;  // NOLINT

namespace {

using exec::expr::EvalScratch;
using exec::expr::ExprProgram;
using exec::expr::ExprStep;
using storage::DataType;
using storage::Row;
using storage::RowBatch;
using storage::Schema;
using storage::Table;
using storage::Value;

constexpr size_t kRows = 256 * 1024;

// Columns: i int64 uniform [0,1000), d double [0,1), s one of 64 words
// (dictionary-encoded table-wide), di int64 with ~10% nulls.
Table MakeEvalTable(size_t n_rows) {
  Schema s;
  if (!s.AddColumn({"i", DataType::kInt64}).ok()) std::abort();
  if (!s.AddColumn({"d", DataType::kDouble}).ok()) std::abort();
  if (!s.AddColumn({"s", DataType::kString}).ok()) std::abort();
  if (!s.AddColumn({"di", DataType::kInt64}).ok()) std::abort();
  Table t("eval", s);
  Rng rng(42);
  std::vector<std::string> vocab;
  for (int w = 0; w < 64; ++w) vocab.push_back("word" + std::to_string(w));
  for (size_t r = 0; r < n_rows; ++r) {
    Row row;
    row.push_back(Value(rng.UniformInt(0, 999)));
    row.push_back(Value(rng.UniformDouble()));
    row.push_back(Value(vocab[rng.Uniform(vocab.size())]));
    row.push_back(rng.Bernoulli(0.1) ? Value::Null()
                                     : Value(rng.UniformInt(0, 999)));
    if (!t.AppendRow(std::move(row)).ok()) std::abort();
  }
  return t;
}

const std::vector<RowBatch>& EvalBatches() {
  static Table table = MakeEvalTable(kRows);
  static auto batches = table.ToBatches();
  return *batches;
}

// Runs `program` over every batch, returns (surviving rows, wall seconds).
std::pair<uint64_t, double> TimeProgram(const ExprProgram& program,
                                        int iterations) {
  const std::vector<RowBatch>& batches = EvalBatches();
  EvalScratch scratch;
  uint64_t survivors = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int it = 0; it < iterations; ++it) {
    survivors = 0;
    for (const RowBatch& b : batches) {
      survivors += program.Run(b, &scratch).num_rows();
    }
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return {survivors, wall_s / iterations};
}

double RowsPerSec(double wall_s) {
  return wall_s > 0 ? static_cast<double>(kRows) / wall_s : 0;
}

// Per-row EvalCmp baseline over the same cells — the row engine's verdict,
// used both as the throughput baseline and the correctness oracle.
uint64_t RowEvalSurvivors(size_t col, afk::CmpOp op, const Value& lit,
                          double* wall_s) {
  const std::vector<RowBatch>& batches = EvalBatches();
  uint64_t survivors = 0;
  const auto start = std::chrono::steady_clock::now();
  for (const RowBatch& b : batches) {
    const auto& c = b.column(col);
    for (size_t i = 0; i < c.size(); ++i) {
      if (afk::EvalCmp(c.GetValue(i), op, lit)) ++survivors;
    }
  }
  *wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return survivors;
}

ExprProgram MustCompile(const std::vector<ExprStep>& steps) {
  auto p = ExprProgram::Compile(4, steps);
  if (!p.has_value()) std::abort();
  return std::move(*p);
}

int RunJsonMode() {
  const std::vector<RowBatch>& batches = EvalBatches();
  constexpr int kIters = 20;

  // Single-filter programs, one per lane class.
  ExprProgram fi = MustCompile(
      {ExprStep::FilterCompare(0, afk::CmpOp::kLt, Value(int64_t{500}))});
  ExprProgram fd = MustCompile(
      {ExprStep::FilterCompare(1, afk::CmpOp::kGe, Value(0.25))});
  ExprProgram fs = MustCompile(
      {ExprStep::FilterCompare(2, afk::CmpOp::kEq, Value("word7"))});
  ExprProgram fn = MustCompile(
      {ExprStep::FilterCompare(3, afk::CmpOp::kGt, Value(int64_t{250}))});
  fi.BindDictionaries(batches);
  fd.BindDictionaries(batches);
  fs.BindDictionaries(batches);
  fn.BindDictionaries(batches);

  const auto [i_rows, i_s] = TimeProgram(fi, kIters);
  const auto [d_rows, d_s] = TimeProgram(fd, kIters);
  const auto [s_rows, s_s] = TimeProgram(fs, kIters);
  const auto [n_rows, n_s] = TimeProgram(fn, kIters);

  // Correctness receipt: fused survivor counts equal per-row EvalCmp.
  double row_i_s = 0, row_d_s = 0, row_s_s = 0, row_n_s = 0;
  const bool match =
      RowEvalSurvivors(0, afk::CmpOp::kLt, Value(int64_t{500}), &row_i_s) ==
          i_rows &&
      RowEvalSurvivors(1, afk::CmpOp::kGe, Value(0.25), &row_d_s) == d_rows &&
      RowEvalSurvivors(2, afk::CmpOp::kEq, Value("word7"), &row_s_s) ==
          s_rows &&
      RowEvalSurvivors(3, afk::CmpOp::kGt, Value(int64_t{250}), &row_n_s) ==
          n_rows;

  // The fusion delta: project+filter+filter as one fused pass vs one
  // operator at a time (each step its own program = gather between steps,
  // which is what the unfused batch engine does).
  const std::vector<ExprStep> chain = {
      ExprStep::FilterCompare(0, afk::CmpOp::kLt, Value(int64_t{500})),
      ExprStep::FilterCompare(1, afk::CmpOp::kGe, Value(0.25)),
      ExprStep::Project({2, 0}),
  };
  ExprProgram fused_chain = MustCompile(chain);
  fused_chain.BindDictionaries(batches);
  const auto [chain_rows, chain_s] = TimeProgram(fused_chain, kIters);

  ExprProgram step1 = MustCompile({chain[0]});
  auto step2 = ExprProgram::Compile(4, {chain[1]});
  auto step3 = ExprProgram::Compile(4, {chain[2]});
  if (!step2.has_value() || !step3.has_value()) std::abort();
  step1.BindDictionaries(batches);
  uint64_t unfused_rows = 0;
  const auto unfused_start = std::chrono::steady_clock::now();
  for (int it = 0; it < kIters; ++it) {
    unfused_rows = 0;
    EvalScratch scratch;
    for (const RowBatch& b : batches) {
      RowBatch b1 = step1.Run(b, &scratch);
      RowBatch b2 = step2->Run(b1, &scratch);
      unfused_rows += step3->Run(b2, &scratch).num_rows();
    }
  }
  const double unfused_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    unfused_start)
          .count() /
      kIters;
  const bool chain_match = chain_rows == unfused_rows;

  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("micro_eval");
  w.Key("schema_version").Int(1);
  w.Key("mode").String("eval");
  w.Key("rows").UInt(kRows);
  w.Key("iterations").Int(kIters);
  w.Key("fused_int64_rows_per_sec").Double(RowsPerSec(i_s));
  w.Key("fused_double_rows_per_sec").Double(RowsPerSec(d_s));
  w.Key("fused_dict_string_rows_per_sec").Double(RowsPerSec(s_s));
  w.Key("fused_nullable_int64_rows_per_sec").Double(RowsPerSec(n_s));
  w.Key("row_eval_int64_rows_per_sec").Double(RowsPerSec(row_i_s));
  w.Key("row_eval_dict_string_rows_per_sec").Double(RowsPerSec(row_s_s));
  w.Key("chain_fused_rows_per_sec").Double(RowsPerSec(chain_s));
  w.Key("chain_unfused_rows_per_sec").Double(RowsPerSec(unfused_s));
  w.Key("outputs_match_row_eval").Bool(match && chain_match);
  w.EndObject();
  std::printf("%s\n", w.str().c_str());
  return match && chain_match ? 0 : 1;
}

}  // namespace

static void BM_FusedFilterInt64(benchmark::State& state) {
  const auto& batches = EvalBatches();
  ExprProgram p = MustCompile(
      {ExprStep::FilterCompare(0, afk::CmpOp::kLt, Value(int64_t{500}))});
  p.BindDictionaries(batches);
  EvalScratch scratch;
  for (auto _ : state) {
    uint64_t rows = 0;
    for (const RowBatch& b : batches) rows += p.Run(b, &scratch).num_rows();
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kRows));
}
BENCHMARK(BM_FusedFilterInt64)->Unit(benchmark::kMillisecond);

static void BM_FusedFilterDictString(benchmark::State& state) {
  const auto& batches = EvalBatches();
  ExprProgram p = MustCompile(
      {ExprStep::FilterCompare(2, afk::CmpOp::kEq, Value("word7"))});
  p.BindDictionaries(batches);
  EvalScratch scratch;
  for (auto _ : state) {
    uint64_t rows = 0;
    for (const RowBatch& b : batches) rows += p.Run(b, &scratch).num_rows();
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kRows));
}
BENCHMARK(BM_FusedFilterDictString)->Unit(benchmark::kMillisecond);

static void BM_FusedChain(benchmark::State& state) {
  const auto& batches = EvalBatches();
  ExprProgram p = MustCompile(
      {ExprStep::FilterCompare(0, afk::CmpOp::kLt, Value(int64_t{500})),
       ExprStep::FilterCompare(1, afk::CmpOp::kGe, Value(0.25)),
       ExprStep::Project({2, 0})});
  p.BindDictionaries(batches);
  EvalScratch scratch;
  for (auto _ : state) {
    uint64_t rows = 0;
    for (const RowBatch& b : batches) rows += p.Run(b, &scratch).num_rows();
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kRows));
}
BENCHMARK(BM_FusedChain)->Unit(benchmark::kMillisecond);

static void BM_RowEvalInt64(benchmark::State& state) {
  const auto& batches = EvalBatches();
  const Value lit(int64_t{500});
  for (auto _ : state) {
    uint64_t survivors = 0;
    for (const RowBatch& b : batches) {
      const auto& c = b.column(0);
      for (size_t i = 0; i < c.size(); ++i) {
        if (afk::EvalCmp(c.GetValue(i), afk::CmpOp::kLt, lit)) ++survivors;
      }
    }
    benchmark::DoNotOptimize(survivors);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kRows));
}
BENCHMARK(BM_RowEvalInt64)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return RunJsonMode();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
