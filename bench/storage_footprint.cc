// Section 10's storage claim: "accumulating all views for every query
// resulted in an additional storage space of only ~2.0x the base data size",
// because queries project narrow slices of wide logs and many log attributes
// go unused. This bench accumulates every view of the whole 32-query
// workload and reports the views-to-base ratio, plus the advisor's account
// of which retained bytes actually earn their keep.

#include <cstdio>

#include "bench_util.h"
#include "rewrite/advisor.h"
#include "workload/scenarios.h"

using namespace opd;  // NOLINT

int main() {
  bench::Header("Section 10: opportunistic view storage footprint");

  auto bed = bench::CheckResult(workload::TestBed::Create(), "testbed");
  for (int analyst = 1; analyst <= workload::kNumAnalysts; ++analyst) {
    for (int version = 1; version <= workload::kNumVersions; ++version) {
      bench::CheckResult(bed->RunOriginal(analyst, version), "run");
    }
  }

  uint64_t base_bytes = 0;
  for (const auto& name : bed->catalog().Names()) {
    auto entry = bed->catalog().Find(name);
    base_bytes += static_cast<uint64_t>((*entry)->stats.TotalBytes());
  }
  const uint64_t view_bytes = bed->views().TotalBytes();
  const double ratio =
      static_cast<double>(view_bytes) / static_cast<double>(base_bytes);
  std::printf("base data : %8.2f MB\n", base_bytes / 1048576.0);
  std::printf("views     : %8.2f MB across %zu views\n",
              view_bytes / 1048576.0, bed->views().size());
  std::printf("ratio     : %.2fx the base data (paper: ~2.0x)\n\n", ratio);

  // Which of those bytes matter? Score the store against every version-2+
  // query (the revisions that actually reuse).
  std::vector<plan::Plan> workload;
  for (int analyst = 1; analyst <= workload::kNumAnalysts; ++analyst) {
    for (int version = 2; version <= workload::kNumVersions; ++version) {
      workload.push_back(
          bench::CheckResult(workload::BuildQuery(analyst, version), "q"));
    }
  }
  rewrite::ViewAdvisor advisor(&bed->optimizer(), &bed->views());
  auto report = bench::CheckResult(advisor.Analyze(&workload), "advisor");
  uint64_t useful_bytes = 0;
  for (const auto& score : report.ranking) useful_bytes += score.bytes;
  std::printf("advisor: %zu of %zu views used by the revision workload; "
              "%.2f MB of %.2f MB retained bytes earn reuse\n",
              report.ranking.size(), bed->views().size(),
              useful_bytes / 1048576.0, view_bytes / 1048576.0);

  bool ok = true;
  ok &= bench::ShapeCheck(ratio < 4.0,
                          "views cost a small multiple of the base data "
                          "(paper: ~2x) — narrow projections of wide logs");
  ok &= bench::ShapeCheck(!report.ranking.empty() &&
                              report.queries_improved >=
                                  static_cast<int>(workload.size()) / 2,
                          "most revision queries reuse some retained view");
  return ok ? 0 : 1;
}
