// google-benchmark microbenchmarks for the MapReduce simulator: per-operator
// execution throughput and UDF local-function pipelines.
//
// `micro_engine --json` instead runs a fixed engine workload at 1 and 8
// threads and prints a single JSON line with wall-clock ms and rows/sec per
// thread count — the seed of the BENCH_*.json perf trajectory (scripts/
// bench.sh wraps this).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/json_writer.h"
#include "common/thread_pool.h"
#include "exec/udf_exec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "udf/builtin_udfs.h"
#include "workload/datagen.h"
#include "workload/scenarios.h"

using namespace opd;  // NOLINT

namespace {

struct Env {
  std::unique_ptr<workload::TestBed> bed;
  storage::TablePtr twtr;

  Env() {
    workload::TestBedConfig config;
    config.data.n_tweets = 5000;
    config.data.n_checkins = 2000;
    config.data.n_locations = 300;
    config.calibrate_udfs = false;
    config.session.engine.retain_views = false;
    config.session.engine.collect_stats = false;
    auto result = workload::TestBed::Create(config);
    if (!result.ok()) std::abort();
    bed = std::move(result).value();
    twtr = workload::GenerateTwitterLog(config.data);
  }
};

Env& GetEnv() {
  static Env env;
  return env;
}

}  // namespace

static void BM_ExecProject(benchmark::State& state) {
  Env& env = GetEnv();
  for (auto _ : state) {
    plan::Plan p(plan::Project(plan::Scan("TWTR"), {"user_id", "tweet_text"}));
    benchmark::DoNotOptimize(env.bed->engine().Execute(&p));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(env.twtr->num_rows()));
}
BENCHMARK(BM_ExecProject)->Unit(benchmark::kMillisecond);

static void BM_ExecGroupBy(benchmark::State& state) {
  Env& env = GetEnv();
  for (auto _ : state) {
    plan::Plan p(plan::GroupBy(plan::Scan("TWTR"), {"user_id"},
                               {plan::AggSpec{plan::AggFn::kCount, "", "c"}}));
    benchmark::DoNotOptimize(env.bed->engine().Execute(&p));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(env.twtr->num_rows()));
}
BENCHMARK(BM_ExecGroupBy)->Unit(benchmark::kMillisecond);

static void BM_ExecJoin(benchmark::State& state) {
  Env& env = GetEnv();
  for (auto _ : state) {
    auto counts =
        plan::GroupBy(plan::Scan("TWTR"), {"user_id"},
                      {plan::AggSpec{plan::AggFn::kCount, "", "c"}});
    plan::Plan p(plan::Join(plan::Project(plan::Scan("TWTR"),
                                          {"tweet_id", "user_id"}),
                            counts, {{"user_id", "user_id"}}));
    benchmark::DoNotOptimize(env.bed->engine().Execute(&p));
  }
}
BENCHMARK(BM_ExecJoin)->Unit(benchmark::kMillisecond);

static void BM_UdfWineScore(benchmark::State& state) {
  Env& env = GetEnv();
  udf::UdfDefinition udf = udf::MakeClassifyWineScoreUdf();
  udf::Params params = {{"threshold", storage::Value(0.5)}};
  for (auto _ : state) {
    storage::Table out;
    benchmark::DoNotOptimize(
        exec::RunLocalFunctions(udf, *env.twtr, params, &out));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(env.twtr->num_rows()));
}
BENCHMARK(BM_UdfWineScore)->Unit(benchmark::kMillisecond);

static void BM_UdfTokenize(benchmark::State& state) {
  Env& env = GetEnv();
  udf::UdfDefinition udf = udf::MakeTokenizeUdf();
  for (auto _ : state) {
    storage::Table out;
    benchmark::DoNotOptimize(
        exec::RunLocalFunctions(udf, *env.twtr, {}, &out));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(env.twtr->num_rows()));
}
BENCHMARK(BM_UdfTokenize)->Unit(benchmark::kMillisecond);

static void BM_DataGenTwitter(benchmark::State& state) {
  workload::DataGenConfig config;
  config.n_tweets = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::GenerateTwitterLog(config));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DataGenTwitter)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

namespace {

// Version tag of the BENCH_engine.json record layout. Bump when keys change
// meaning; scripts/bench.sh quarantines records predating the tag.
constexpr int kBenchSchemaVersion = 2;

// The --json engine workload: one pass of every operator class (map-only,
// shuffle join, shuffle aggregation, UDF pipeline) over the synthetic log.
struct JsonRun {
  double wall_ms = 0;
  double rows_per_sec = 0;        // aggregate over all iterations
  double best_iter_rows_per_sec = 0;  // fastest single iteration (noise-robust)
  uint64_t output_hash = 0;   // order-sensitive hash of every result table
  exec::ExecMetrics metrics;  // accumulated across iterations
};

JsonRun RunEngineWorkload(int num_threads, size_t n_tweets, int iterations,
                          bool vectorized, bool pipelined, bool fused = true,
                          bool traced = false,
                          std::vector<std::shared_ptr<obs::Trace>>* traces =
                              nullptr) {
  workload::TestBedConfig config;
  config.data.n_tweets = n_tweets;
  config.data.n_checkins = n_tweets / 2;
  config.data.n_locations = 300;
  config.calibrate_udfs = false;
  config.session.engine.retain_views = false;
  config.session.engine.collect_stats = false;
  config.session.engine.num_threads = num_threads;
  config.session.engine.vectorized = vectorized;
  config.session.engine.pipelined = pipelined;
  config.session.engine.fused_exprs = fused;
  config.session.obs.tracing = traced;
  auto bed_result = workload::TestBed::Create(config);
  if (!bed_result.ok()) std::abort();
  auto bed = std::move(bed_result).value();

  JsonRun run;
  uint64_t rows_processed = 0;
  double best_iter_s = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int it = 0; it < iterations; ++it) {
    const auto iter_start = std::chrono::steady_clock::now();
    plan::Plan project(
        plan::Project(plan::Scan("TWTR"), {"user_id", "tweet_text"}));
    plan::Plan filter(plan::Filter(
        plan::Scan("TWTR"),
        plan::FilterCond::Compare("retweets", afk::CmpOp::kGt,
                                  storage::Value(int64_t{1}))));
    plan::Plan group(
        plan::GroupBy(plan::Scan("TWTR"), {"user_id"},
                      {plan::AggSpec{plan::AggFn::kCount, "", "c"},
                       plan::AggSpec{plan::AggFn::kAvg, "retweets", "avg"}}));
    auto counts =
        plan::GroupBy(plan::Scan("TWTR"), {"user_id"},
                      {plan::AggSpec{plan::AggFn::kCount, "", "c"}});
    plan::Plan join(plan::Join(
        plan::Project(plan::Scan("TWTR"), {"tweet_id", "user_id"}), counts,
        {{"user_id", "user_id"}}));
    plan::Plan udf(plan::Udf(plan::Scan("TWTR"), "UDF_TOKENIZE", {}));
    for (plan::Plan* p : {&project, &filter, &group, &join, &udf}) {
      auto result =
          bed->session().Run(std::move(*p), RunOptions{.rewrite = false});
      if (!result.ok()) std::abort();
      run.metrics += result.value().metrics;
      if (it == 0 && result.value().table != nullptr) {
        // Determinism receipt: every mode/thread-count must produce the
        // same bytes in the same order, so hash rows in order. Columnar
        // outputs hash through HashRowAt (== RowHash over the materialized
        // row, per the batch-layer contract) so the receipt never forces a
        // row materialization the mode itself didn't pay for.
        const storage::TablePtr& table = result.value().table;
        if (table->columnar()) {
          for (const storage::RowBatch& b : *table->ToBatches()) {
            for (size_t r = 0; r < b.num_rows(); ++r) {
              HashCombine(&run.output_hash, b.HashRowAt(r));
            }
          }
        } else {
          for (const storage::Row& r : table->rows()) {
            HashCombine(&run.output_hash, storage::RowHash{}(r));
          }
        }
      }
      if (traces != nullptr && it == 0 && result.value().trace != nullptr) {
        traces->push_back(result.value().trace);
      }
      rows_processed += n_tweets;  // each job scans the full TWTR log
    }
    // Iteration 0 pays for the determinism hash and trace capture, so the
    // fastest iteration is a steady-state measurement: one five-job pass
    // with nothing bolted on. The gate compares modes on this number —
    // a single noisy-neighbor stall in one iteration no longer skews it.
    const double iter_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - iter_start)
                              .count();
    if (iter_s > 0 && (best_iter_s == 0 || iter_s < best_iter_s)) {
      best_iter_s = iter_s;
    }
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  run.wall_ms = wall_s * 1000.0;
  run.rows_per_sec =
      wall_s > 0 ? static_cast<double>(rows_processed) / wall_s : 0;
  run.best_iter_rows_per_sec =
      best_iter_s > 0 && iterations > 0
          ? static_cast<double>(rows_processed) /
                static_cast<double>(iterations) / best_iter_s
          : 0;
  return run;
}

// One warmed-rewrite pass over the five-plan workload: every plan runs with
// BFREWRITE enabled against whatever the view store currently holds, so the
// first pass over a fresh bed creates the opportunistic views (cold) and the
// next one rewrites against them (warm). Accumulates the rewrite decision
// counts, the cost-model residuals, and both an order-sensitive and an
// order-insensitive output hash (a rewritten plan must produce the same row
// *set*; its row order may legitimately differ from the original plan's).
struct RewritePass {
  double wall_ms = 0;
  double rows_per_sec = 0;
  uint64_t ordered_hash = 0;
  uint64_t unordered_hash = 0;
  exec::ExecMetrics metrics;
  rewrite::DecisionCounts decisions;
  double max_residual_pct = 0;  // max |residual| over executed jobs
};

RewritePass RunRewritePass(workload::TestBed* bed, size_t n_tweets,
                           int iterations) {
  RewritePass pass;
  uint64_t rows_processed = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int it = 0; it < iterations; ++it) {
    plan::Plan project(
        plan::Project(plan::Scan("TWTR"), {"user_id", "tweet_text"}));
    plan::Plan filter(plan::Filter(
        plan::Scan("TWTR"),
        plan::FilterCond::Compare("retweets", afk::CmpOp::kGt,
                                  storage::Value(int64_t{1}))));
    plan::Plan group(
        plan::GroupBy(plan::Scan("TWTR"), {"user_id"},
                      {plan::AggSpec{plan::AggFn::kCount, "", "c"},
                       plan::AggSpec{plan::AggFn::kAvg, "retweets", "avg"}}));
    auto counts =
        plan::GroupBy(plan::Scan("TWTR"), {"user_id"},
                      {plan::AggSpec{plan::AggFn::kCount, "", "c"}});
    plan::Plan join(plan::Join(
        plan::Project(plan::Scan("TWTR"), {"tweet_id", "user_id"}), counts,
        {{"user_id", "user_id"}}));
    plan::Plan udf(plan::Udf(plan::Scan("TWTR"), "UDF_TOKENIZE", {}));
    for (plan::Plan* p : {&project, &filter, &group, &join, &udf}) {
      auto result = bed->session().Run(std::move(*p));
      if (!result.ok()) std::abort();
      pass.metrics += result.value().metrics;
      const rewrite::DecisionCounts c =
          result.value().rewrite.decisions.Counts();
      pass.decisions.candidates += c.candidates;
      pass.decisions.accepted += c.accepted;
      pass.decisions.signature_mismatch += c.signature_mismatch;
      pass.decisions.afk_containment += c.afk_containment;
      pass.decisions.not_cost_improving += c.not_cost_improving;
      pass.decisions.pruned_by_bound += c.pruned_by_bound;
      for (const exec::JobRun& jr : result.value().jobs) {
        const double r =
            jr.residual_pct < 0 ? -jr.residual_pct : jr.residual_pct;
        if (r > pass.max_residual_pct) pass.max_residual_pct = r;
      }
      if (it == 0 && result.value().table != nullptr) {
        const storage::TablePtr& table = result.value().table;
        auto absorb = [&pass](uint64_t h) {
          HashCombine(&pass.ordered_hash, h);
          pass.unordered_hash += h;  // commutative: order-insensitive
        };
        if (table->columnar()) {
          for (const storage::RowBatch& b : *table->ToBatches()) {
            for (size_t r = 0; r < b.num_rows(); ++r) absorb(b.HashRowAt(r));
          }
        } else {
          for (const storage::Row& r : table->rows()) {
            absorb(storage::RowHash{}(r));
          }
        }
      }
      rows_processed += n_tweets;
    }
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  pass.wall_ms = wall_s * 1000.0;
  pass.rows_per_sec =
      wall_s > 0 ? static_cast<double>(rows_processed) / wall_s : 0;
  return pass;
}

std::unique_ptr<workload::TestBed> MakeRewriteBed(size_t n_tweets,
                                                  int num_threads,
                                                  bool log_decisions) {
  workload::TestBedConfig config;
  config.data.n_tweets = n_tweets;
  config.data.n_checkins = n_tweets / 2;
  config.data.n_locations = 300;
  config.calibrate_udfs = false;
  config.session.engine.collect_stats = true;  // feeds the residual metrics
  config.session.engine.num_threads = num_threads;
  config.session.engine.vectorized = true;
  config.session.engine.pipelined = true;
  config.session.rewrite.log_decisions = log_decisions;
  auto bed_result = workload::TestBed::Create(config);
  if (!bed_result.ok()) std::abort();
  return std::move(bed_result).value();
}

// The fourth --json record, mode "warm_rewrite": the only record that
// exercises the paper's actual reuse loop. A cold pass materializes the
// opportunistic views, a warm pass over the same plans rewrites against
// them; the record carries the view/decision/residual observability the
// cold-only modes cannot produce, plus the decision-logging overhead
// (warm-pass wall with the DecisionLog on vs off).
void PrintWarmRewriteRecord(size_t n_tweets, int iterations, int hw_cores,
                            int num_threads) {
  auto bed = MakeRewriteBed(n_tweets, num_threads, /*log_decisions=*/true);
  const RewritePass cold = RunRewritePass(bed.get(), n_tweets, 1);
  const RewritePass warm = RunRewritePass(bed.get(), n_tweets, iterations);

  auto unlogged =
      MakeRewriteBed(n_tweets, num_threads, /*log_decisions=*/false);
  RunRewritePass(unlogged.get(), n_tweets, 1);  // cold: populate the store
  const RewritePass warm_unlogged =
      RunRewritePass(unlogged.get(), n_tweets, iterations);
  const double overhead_pct =
      warm_unlogged.wall_ms > 0
          ? 100.0 * (warm.wall_ms - warm_unlogged.wall_ms) /
                warm_unlogged.wall_ms
          : 0;

  exec::ExecMetrics total = cold.metrics;
  total += warm.metrics;
  const double max_resid = cold.max_residual_pct > warm.max_residual_pct
                               ? cold.max_residual_pct
                               : warm.max_residual_pct;

  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("micro_engine");
  w.Key("schema_version").Int(kBenchSchemaVersion);
  w.Key("mode").String("warm_rewrite");
  w.Key("pipelined").Bool(true);
  w.Key("n_tweets").UInt(n_tweets);
  w.Key("iterations").Int(iterations);
  w.Key("hw_cores").Int(hw_cores);
  w.Key("threads").BeginArray().Int(num_threads).EndArray();
  w.Key("cold_wall_ms").Double(cold.wall_ms);
  w.Key("wall_ms").BeginArray().Double(warm.wall_ms).EndArray();
  w.Key("rows_per_sec").BeginArray().Double(warm.rows_per_sec).EndArray();
  w.Key("views_created").Int(total.views_created);
  w.Key("rewrite_decisions").BeginObject();
  w.Key("candidates").UInt(warm.decisions.candidates);
  w.Key("accepted").UInt(warm.decisions.accepted);
  w.Key("signature_mismatch").UInt(warm.decisions.signature_mismatch);
  w.Key("afk_containment").UInt(warm.decisions.afk_containment);
  w.Key("not_cost_improving").UInt(warm.decisions.not_cost_improving);
  w.Key("pruned_by_bound").UInt(warm.decisions.pruned_by_bound);
  w.EndObject();
  w.Key("max_residual_pct").Double(max_resid);
  w.Key("decision_log_overhead_pct").Double(overhead_pct);
  w.Key("output_hash").UInt(warm.ordered_hash);
  // Row *sets* must match; a rewritten plan may emit rows in another order.
  w.Key("outputs_match_cold_pass")
      .Bool(warm.unordered_hash == cold.unordered_hash);
  w.Key("metrics").Raw(total.ToJson());
  w.EndObject();
  std::printf("%s\n", w.str().c_str());
}

// Order-sensitive hash of one result table (same per-row hashing as the
// determinism receipt in RunEngineWorkload, scoped to a single job).
uint64_t OutputHashOf(const storage::TablePtr& table) {
  uint64_t h = 0;
  if (table->columnar()) {
    for (const storage::RowBatch& b : *table->ToBatches()) {
      for (size_t r = 0; r < b.num_rows(); ++r) {
        HashCombine(&h, b.HashRowAt(r));
      }
    }
  } else {
    for (const storage::Row& r : table->rows()) {
      HashCombine(&h, storage::RowHash{}(r));
    }
  }
  return h;
}

std::unique_ptr<workload::TestBed> MakeFlatHashBed(size_t n_tweets,
                                                  bool flat_hash) {
  workload::TestBedConfig config;
  config.data.n_tweets = n_tweets;
  config.data.n_checkins = n_tweets / 2;
  config.data.n_locations = 300;
  config.calibrate_udfs = false;
  config.session.engine.retain_views = false;
  config.session.engine.collect_stats = false;
  config.session.engine.num_threads = 1;
  config.session.engine.vectorized = true;
  config.session.engine.pipelined = true;
  config.session.engine.flat_hash = flat_hash;
  auto bed_result = workload::TestBed::Create(config);
  if (!bed_result.ok()) std::abort();
  return std::move(bed_result).value();
}

struct JobTime {
  double best_iter_s = 0;     // fastest single run (noise-robust)
  uint64_t output_hash = 0;   // order-sensitive hash of the first run
};

template <typename MakePlan>
JobTime TimeJob(workload::TestBed* bed, MakePlan make_plan, int iterations) {
  JobTime jt;
  for (int it = 0; it < iterations; ++it) {
    plan::Plan p = make_plan();
    const auto t0 = std::chrono::steady_clock::now();
    auto result = bed->session().Run(std::move(p), RunOptions{.rewrite = false});
    if (!result.ok()) std::abort();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (it == 0 && result.value().table != nullptr) {
      jt.output_hash = OutputHashOf(result.value().table);
    }
    if (s > 0 && (jt.best_iter_s == 0 || s < jt.best_iter_s)) {
      jt.best_iter_s = s;
    }
  }
  return jt;
}

// The "flat_hash" record: the tentpole's perf receipt. Runs a shuffle join
// and a shuffle aggregation — both keyed on {user_id, client_ver}, an
// int64 + dict-string composite that exercises every flat-hash lane — at
// one thread with EngineOptions::flat_hash on vs off, on the default
// engine (batch kernels, pipelined shuffle). scripts/bench.sh --check
// gates join_speedup and groupby_speedup at FLAT_HASH_FLOOR, gated on
// outputs_match (a speedup with different bytes is a bug, not a win).
void PrintFlatHashRecord(size_t n_tweets, int iterations, int hw_cores) {
  auto make_join = [] {
    auto counts =
        plan::GroupBy(plan::Scan("TWTR"), {"user_id", "client_ver"},
                      {plan::AggSpec{plan::AggFn::kCount, "", "c"}});
    return plan::Plan(plan::Join(
        plan::Project(plan::Scan("TWTR"),
                      {"tweet_id", "user_id", "client_ver"}),
        counts, {{"user_id", "user_id"}, {"client_ver", "client_ver"}}));
  };
  // Count-only over a wide composite key: keeps the reduce dominated by
  // key hashing/grouping — what this record measures — rather than
  // aggregate-state arithmetic both paths share.
  auto make_group = [] {
    return plan::Plan(
        plan::GroupBy(plan::Scan("TWTR"), {"user_id", "client_ver"},
                      {plan::AggSpec{plan::AggFn::kCount, "", "c"}}));
  };

  auto flat_bed = MakeFlatHashBed(n_tweets, /*flat_hash=*/true);
  auto legacy_bed = MakeFlatHashBed(n_tweets, /*flat_hash=*/false);
  const JobTime flat_join = TimeJob(flat_bed.get(), make_join, iterations);
  const JobTime legacy_join = TimeJob(legacy_bed.get(), make_join, iterations);
  const JobTime flat_group = TimeJob(flat_bed.get(), make_group, iterations);
  const JobTime legacy_group =
      TimeJob(legacy_bed.get(), make_group, iterations);

  const bool outputs_match =
      flat_join.output_hash == legacy_join.output_hash &&
      flat_group.output_hash == legacy_group.output_hash;

  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("micro_engine");
  w.Key("schema_version").Int(kBenchSchemaVersion);
  w.Key("mode").String("flat_hash");
  w.Key("n_tweets").UInt(n_tweets);
  w.Key("iterations").Int(iterations);
  w.Key("hw_cores").Int(hw_cores);
  w.Key("threads").BeginArray().Int(1).EndArray();
  w.Key("flat_join_wall_ms").Double(flat_join.best_iter_s * 1000.0);
  w.Key("legacy_join_wall_ms").Double(legacy_join.best_iter_s * 1000.0);
  w.Key("join_speedup")
      .Double(flat_join.best_iter_s > 0
                  ? legacy_join.best_iter_s / flat_join.best_iter_s
                  : 0);
  w.Key("flat_groupby_wall_ms").Double(flat_group.best_iter_s * 1000.0);
  w.Key("legacy_groupby_wall_ms").Double(legacy_group.best_iter_s * 1000.0);
  w.Key("groupby_speedup")
      .Double(flat_group.best_iter_s > 0
                  ? legacy_group.best_iter_s / flat_group.best_iter_s
                  : 0);
  w.Key("output_hash").UInt(flat_join.output_hash);
  w.Key("outputs_match").Bool(outputs_match);
  w.EndObject();
  std::printf("%s\n", w.str().c_str());
}

// Prints one JSON record per execution mode — "row" and "batch" keep the
// phased (pre-pipelining) engine for trajectory continuity with earlier
// BENCH entries; "pipelined" is the current default engine (batch kernels +
// morsel-driven pipelined shuffle). Each record sweeps thread counts
// {1, 2, 4, 8} untraced plus one traced run at the top thread count (the
// traced-vs-untraced delta is the tracing overhead). Every record carries an
// order-sensitive hash of the result tables; `outputs_match_row_mode`
// asserts the determinism contract across modes, and `hw_cores` records how
// much real parallelism backed the numbers (speedups are meaningless on a
// 1-core runner). scripts/bench.sh timestamps and appends every line to
// BENCH_engine.json, so the perf trajectory across PRs accumulates instead
// of being overwritten.
int RunJsonMode(const char* trace_path) {
  constexpr size_t kTweets = 12000;
  constexpr int kIters = 3;
  constexpr int kThreads[] = {1, 2, 4, 8};
  constexpr size_t kNumThreads = sizeof(kThreads) / sizeof(kThreads[0]);
  const int hw_cores = ThreadPool::DefaultThreads(0);
  std::vector<std::shared_ptr<obs::Trace>> traces;
  struct Mode {
    const char* name;
    bool vectorized;
    bool pipelined;
    bool fused;
  };
  // "batch_unfused"/"pipelined_unfused" pin the pre-fusion batch kernels so
  // the fused-vs-unfused delta and the byte-identity contract across
  // {fused,unfused} x {phased,pipelined} stay measured in the trajectory.
  constexpr Mode kModes[] = {
      {"row", false, false, true},
      {"batch", true, false, true},
      {"batch_unfused", true, false, false},
      {"pipelined", true, true, true},
      {"pipelined_unfused", true, true, false},
  };
  // On a 1-core host every lane above 1 thread measures the same inline
  // execution three more times; skip them. The skipped lanes stay in the
  // JSON arrays as nulls so the record schema (and the trajectory tooling
  // reading it) is identical on every runner.
  const size_t measured_lanes = hw_cores > 1 ? kNumThreads : 1;
  uint64_t row_mode_hash = 0;
  for (const Mode& mode : kModes) {
    JsonRun runs[kNumThreads];
    for (size_t i = 0; i < measured_lanes; ++i) {
      runs[i] = RunEngineWorkload(kThreads[i], kTweets, kIters,
                                  mode.vectorized, mode.pipelined,
                                  mode.fused);
    }
    JsonRun traced = RunEngineWorkload(
        kThreads[measured_lanes - 1], kTweets, kIters, mode.vectorized,
        mode.pipelined, mode.fused, /*traced=*/true,
        trace_path != nullptr ? &traces : nullptr);
    const bool have_speedup = measured_lanes == kNumThreads;
    const double speedup =
        have_speedup && runs[kNumThreads - 1].wall_ms > 0
            ? runs[0].wall_ms / runs[kNumThreads - 1].wall_ms
            : 0;
    if (&mode == &kModes[0]) row_mode_hash = runs[0].output_hash;
    bool outputs_match = true;
    for (size_t i = 0; i < measured_lanes; ++i) {
      outputs_match = outputs_match && runs[i].output_hash == row_mode_hash;
    }

    JsonWriter w;
    w.BeginObject();
    w.Key("bench").String("micro_engine");
    w.Key("schema_version").Int(kBenchSchemaVersion);
    w.Key("mode").String(mode.name);
    w.Key("pipelined").Bool(mode.pipelined);
    w.Key("fused").Bool(mode.vectorized && mode.fused);
    w.Key("n_tweets").UInt(kTweets);
    w.Key("iterations").Int(kIters);
    w.Key("hw_cores").Int(hw_cores);
    w.Key("threads").BeginArray();
    for (int t : kThreads) w.Int(t);
    w.EndArray();
    w.Key("wall_ms").BeginArray();
    for (size_t i = 0; i < kNumThreads; ++i) {
      if (i < measured_lanes) {
        w.Double(runs[i].wall_ms);
      } else {
        w.Null();
      }
    }
    w.EndArray();
    w.Key("rows_per_sec").BeginArray();
    for (size_t i = 0; i < kNumThreads; ++i) {
      if (i < measured_lanes) {
        w.Double(runs[i].rows_per_sec);
      } else {
        w.Null();
      }
    }
    w.EndArray();
    w.Key("best_iter_rows_per_sec").BeginArray();
    for (size_t i = 0; i < kNumThreads; ++i) {
      if (i < measured_lanes) {
        w.Double(runs[i].best_iter_rows_per_sec);
      } else {
        w.Null();
      }
    }
    w.EndArray();
    if (have_speedup) {
      w.Key("speedup_8v1").Double(speedup);
    } else {
      w.Key("speedup_8v1").Null();
    }
    w.Key("output_hash").UInt(runs[0].output_hash);
    w.Key("outputs_match_row_mode").Bool(outputs_match);
    if (mode.pipelined) {
      // The floor scripts/bench.sh --check enforces: honest about hardware.
      // A 1-core runner cannot demonstrate a parallel speedup at all.
      const double floor =
          hw_cores >= 8 ? 3.0 : (hw_cores >= 2 ? 1.2 : 0.0);
      w.Key("speedup_floor_8v1").Double(floor);
    }
    w.Key("traced_rows_per_sec").Double(traced.rows_per_sec);
    w.Key("untraced_rows_per_sec")
        .Double(runs[measured_lanes - 1].rows_per_sec);
    w.Key("metrics").Raw(runs[measured_lanes - 1].metrics.ToJson());
    w.EndObject();
    std::printf("%s\n", w.str().c_str());
  }
  PrintWarmRewriteRecord(kTweets, kIters, hw_cores,
                         kThreads[kNumThreads - 1]);
  PrintFlatHashRecord(kTweets, /*iterations=*/5, hw_cores);
  if (trace_path != nullptr) {
    std::vector<const obs::Trace*> ptrs;
    ptrs.reserve(traces.size());
    for (const auto& t : traces) ptrs.push_back(t.get());
    Status st = obs::WriteChromeTraceFile(trace_path, ptrs);
    if (!st.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "trace written to %s\n", trace_path);
  }
  return 0;
}

// `--dump-metrics`: runs a small warmed workload that touches every
// subsystem (engine, view store, DFS, rewriter, cost accountability), then
// prints every metric name registered in the global registry, one per line.
// scripts/lint_metrics.py diffs this against the metric-name literals in
// src/ to catch dead or misnamed metrics.
int RunDumpMetricsMode() {
  auto bed = MakeRewriteBed(/*n_tweets=*/2000, /*num_threads=*/2,
                            /*log_decisions=*/true);
  constexpr size_t kTweets = 2000;
  RunRewritePass(bed.get(), kTweets, 1);  // cold: create views
  RunRewritePass(bed.get(), kTweets, 1);  // warm: rewrite hits, residuals
  {
    // A join that carries a string column through the vectorized gather —
    // the only path that publishes the storage.dict.* metrics.
    auto counts =
        plan::GroupBy(plan::Scan("TWTR"), {"user_id"},
                      {plan::AggSpec{plan::AggFn::kCount, "", "c"}});
    plan::Plan sjoin(plan::Join(
        plan::Project(plan::Scan("TWTR"), {"user_id", "tweet_text"}),
        counts, {{"user_id", "user_id"}}));
    if (!bed->session().Run(std::move(sjoin), RunOptions{.rewrite = false})
             .ok()) {
      std::abort();
    }
    // Re-materializing a plan the store already holds (rewrite off, so the
    // job really executes) registers viewstore.add.dedup.
    plan::Plan dup(
        plan::Project(plan::Scan("TWTR"), {"user_id", "tweet_text"}));
    if (!bed->session().Run(std::move(dup), RunOptions{.rewrite = false})
             .ok()) {
      std::abort();
    }
  }
  (void)bed->views().Find(999999999);  // register viewstore.find.miss
  bed->DropAllViews();                 // register dfs.files_deleted
  for (const std::string& name : obs::MetricRegistry::Global().AllNames()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  const char* trace_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--dump-metrics") == 0)
      return RunDumpMetricsMode();
    if (std::strncmp(argv[i], "--trace=", 8) == 0) trace_path = argv[i] + 8;
  }
  if (json || trace_path != nullptr) return RunJsonMode(trace_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
