// google-benchmark microbenchmarks for the MapReduce simulator: per-operator
// execution throughput and UDF local-function pipelines.

#include <benchmark/benchmark.h>

#include "exec/udf_exec.h"
#include "udf/builtin_udfs.h"
#include "workload/datagen.h"
#include "workload/scenarios.h"

using namespace opd;  // NOLINT

namespace {

struct Env {
  std::unique_ptr<workload::TestBed> bed;
  storage::TablePtr twtr;

  Env() {
    workload::TestBedConfig config;
    config.data.n_tweets = 5000;
    config.data.n_checkins = 2000;
    config.data.n_locations = 300;
    config.calibrate_udfs = false;
    config.engine.retain_views = false;
    config.engine.collect_stats = false;
    auto result = workload::TestBed::Create(config);
    if (!result.ok()) std::abort();
    bed = std::move(result).value();
    twtr = workload::GenerateTwitterLog(config.data);
  }
};

Env& GetEnv() {
  static Env env;
  return env;
}

}  // namespace

static void BM_ExecProject(benchmark::State& state) {
  Env& env = GetEnv();
  for (auto _ : state) {
    plan::Plan p(plan::Project(plan::Scan("TWTR"), {"user_id", "tweet_text"}));
    benchmark::DoNotOptimize(env.bed->engine().Execute(&p));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(env.twtr->num_rows()));
}
BENCHMARK(BM_ExecProject)->Unit(benchmark::kMillisecond);

static void BM_ExecGroupBy(benchmark::State& state) {
  Env& env = GetEnv();
  for (auto _ : state) {
    plan::Plan p(plan::GroupBy(plan::Scan("TWTR"), {"user_id"},
                               {plan::AggSpec{plan::AggFn::kCount, "", "c"}}));
    benchmark::DoNotOptimize(env.bed->engine().Execute(&p));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(env.twtr->num_rows()));
}
BENCHMARK(BM_ExecGroupBy)->Unit(benchmark::kMillisecond);

static void BM_ExecJoin(benchmark::State& state) {
  Env& env = GetEnv();
  for (auto _ : state) {
    auto counts =
        plan::GroupBy(plan::Scan("TWTR"), {"user_id"},
                      {plan::AggSpec{plan::AggFn::kCount, "", "c"}});
    plan::Plan p(plan::Join(plan::Project(plan::Scan("TWTR"),
                                          {"tweet_id", "user_id"}),
                            counts, {{"user_id", "user_id"}}));
    benchmark::DoNotOptimize(env.bed->engine().Execute(&p));
  }
}
BENCHMARK(BM_ExecJoin)->Unit(benchmark::kMillisecond);

static void BM_UdfWineScore(benchmark::State& state) {
  Env& env = GetEnv();
  udf::UdfDefinition udf = udf::MakeClassifyWineScoreUdf();
  udf::Params params = {{"threshold", storage::Value(0.5)}};
  for (auto _ : state) {
    storage::Table out;
    benchmark::DoNotOptimize(
        exec::RunLocalFunctions(udf, *env.twtr, params, &out));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(env.twtr->num_rows()));
}
BENCHMARK(BM_UdfWineScore)->Unit(benchmark::kMillisecond);

static void BM_UdfTokenize(benchmark::State& state) {
  Env& env = GetEnv();
  udf::UdfDefinition udf = udf::MakeTokenizeUdf();
  for (auto _ : state) {
    storage::Table out;
    benchmark::DoNotOptimize(
        exec::RunLocalFunctions(udf, *env.twtr, {}, &out));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(env.twtr->num_rows()));
}
BENCHMARK(BM_UdfTokenize)->Unit(benchmark::kMillisecond);

static void BM_DataGenTwitter(benchmark::State& state) {
  workload::DataGenConfig config;
  config.n_tweets = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::GenerateTwitterLog(config));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DataGenTwitter)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
