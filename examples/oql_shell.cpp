// An interactive(ish) OQL shell over the opportunistic-design system.
//
//   $ ./build/examples/oql_shell              # runs the built-in demo script
//   $ ./build/examples/oql_shell my_query.oql # runs a script from a file
//
// Each program executes against the synthetic logs; every job's output is
// retained as an opportunistic view, and each subsequent program is first
// sent through BFREWRITE — so re-running refined variants of a script gets
// faster, exactly like the paper's exploratory sessions.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "oql/parser.h"
#include "workload/scenarios.h"

using namespace opd;  // NOLINT

namespace {

const char* kDemoScript = R"(
# Session 1: who tweets positively about wine?
extract = scan TWTR | project user_id, tweet_text, mention_user;
wine    = extract | udf UDF_CLASSIFY_WINE_SCORE(threshold = 0.5);
result  = wine | filter wine_score > 0.8;
)";

const char* kDemoScript2 = R"(
# Session 2 (a revision): raise the bar and bring in affluence.
extract  = scan TWTR | project user_id, tweet_text, mention_user;
wine     = extract | udf UDF_CLASSIFY_WINE_SCORE(threshold = 0.5);
rich     = extract | udf UDAF_CLASSIFY_AFFLUENT(min_affluence = 0.05);
result   = join wine rich on user_id = user_id;
)";

int RunProgram(workload::TestBed* bed, const std::string& source,
               const char* label) {
  std::printf("--- %s ---\n%s\n", label, source.c_str());
  auto plan = oql::ParseQuery(source);
  if (!plan.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  auto outcome = bed->bfr().Rewrite(&plan.value());
  if (!outcome.ok()) {
    std::fprintf(stderr, "rewrite error: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  plan::Plan best = outcome->plan;
  auto run = bed->engine().Execute(&best);
  if (!run.ok()) {
    std::fprintf(stderr, "execution error: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  std::printf("=> %zu rows in %.1f modeled seconds", run->table->num_rows(),
              run->metrics.sim_time_s);
  if (outcome->improved) {
    std::printf("  (rewritten: estimated %.1fs instead of %.1fs)",
                outcome->est_cost, outcome->original_cost);
  }
  std::printf("; %zu views in the store\n\n", bed->views().size());
  // Print a small sample of the result.
  const auto& table = *run->table;
  std::printf("   %s\n", table.schema().ToString().c_str());
  for (size_t i = 0; i < std::min<size_t>(table.num_rows(), 5); ++i) {
    std::printf("   ");
    for (size_t c = 0; c < table.row(i).size(); ++c) {
      std::printf("%s%s", c ? ", " : "", table.row(i)[c].ToString().c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  workload::TestBedConfig config;
  config.data.n_tweets = 4000;
  auto bed_result = workload::TestBed::Create(config);
  if (!bed_result.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 bed_result.status().ToString().c_str());
    return 1;
  }
  auto& bed = *bed_result.value();

  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return RunProgram(&bed, buffer.str(), argv[1]);
  }

  if (RunProgram(&bed, kDemoScript, "session 1")) return 1;
  if (RunProgram(&bed, kDemoScript2, "session 2 (reuses session 1's views)"))
    return 1;
  return 0;
}
