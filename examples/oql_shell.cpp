// An interactive(ish) OQL shell over the opportunistic-design system.
//
//   $ ./build/examples/oql_shell                   # built-in demo script
//   $ ./build/examples/oql_shell my_query.oql      # run a script from a file
//   $ ./build/examples/oql_shell --trace=out.json  # also dump a Chrome trace
//   $ ./build/examples/oql_shell --tenant=ana q.oql  # run as a named tenant
//
// Each program executes through a ClientSession on the serving layer
// (Server::Connect): every job's output is retained as an opportunistic
// view published at the query's completion epoch, and each subsequent
// program is first sent through BFREWRITE — so re-running refined variants
// of a script gets faster, exactly like the paper's exploratory sessions.
// --tenant names the tenant the queries run as (default "default"); the
// result line reports the admission epochs and any cross-tenant reuse.
//
// Prefix a program with EXPLAIN to see the costed plan without running it,
// EXPLAIN REWRITE to print the rewrite search's decision log (per-candidate
// reject reasons and OPTCOST estimates) without running it, or EXPLAIN
// ANALYZE to run it and render the observed per-job stats (time, bytes,
// predicted-vs-observed cost residuals, task counts, stragglers). With
// --trace=<path>, every executed query's span tree is merged into one Chrome
// trace_event JSON file — open it in chrome://tracing or Perfetto — and the
// rewrite decision logs are exported alongside it as <path minus
// .json>.rewrite.json.
//
// Introspection statements (served from the query-history ring):
//   SHOW QUERIES;           one line per retained completion
//   SHOW PROFILE <ticket>;  one query in long form (+ slow capture, if any)
//   SHOW SERVER STATS;      counters, admission gate, SLO percentiles

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "obs/trace.h"
#include "oql/parser.h"
#include "plan/explain.h"
#include "server/server.h"
#include "workload/scenarios.h"

using namespace opd;  // NOLINT

namespace {

const char* kDemoScript = R"(
# Session 1: who tweets positively about wine?
extract = scan TWTR | project user_id, tweet_text, mention_user;
wine    = extract | udf UDF_CLASSIFY_WINE_SCORE(threshold = 0.5);
result  = wine | filter wine_score > 0.8;
)";

const char* kDemoScript2 = R"(
# Session 2 (a revision): raise the bar and bring in affluence.
extract  = scan TWTR | project user_id, tweet_text, mention_user;
wine     = extract | udf UDF_CLASSIFY_WINE_SCORE(threshold = 0.5);
rich     = extract | udf UDAF_CLASSIFY_AFFLUENT(min_affluence = 0.05);
result   = join wine rich on user_id = user_id;
)";

const char* kDemoScript3 = R"(
# Session 3: EXPLAIN ANALYZE shows where the time went.
EXPLAIN ANALYZE
extract = scan TWTR | project user_id, tweet_text, mention_user;
wine    = extract | udf UDF_CLASSIFY_WINE_SCORE(threshold = 0.5);
result  = wine | groupby user_id count(*) as n;
)";

// Traces of every executed program, merged into --trace's output file.
std::vector<std::shared_ptr<obs::Trace>> g_traces;

// (label, DecisionLog JSON) of every rewrite search, exported next to the
// Chrome trace as one JSON array.
std::vector<std::pair<std::string, std::string>> g_decision_logs;

// out.json -> out.rewrite.json (appends when there is no .json suffix).
std::string DecisionLogPath(const std::string& trace_path) {
  const std::string suffix = ".json";
  if (trace_path.size() >= suffix.size() &&
      trace_path.compare(trace_path.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
    return trace_path.substr(0, trace_path.size() - suffix.size()) +
           ".rewrite.json";
  }
  return trace_path + ".rewrite.json";
}

int WriteDecisionLogFile(const std::string& path) {
  JsonWriter w;
  w.BeginArray();
  for (const auto& [label, json] : g_decision_logs) {
    w.BeginObject();
    w.Key("query").String(label);
    w.Key("decisions").Raw(json);
    w.EndObject();
  }
  w.EndArray();
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << w.Take() << "\n";
  return 0;
}

int RunProgram(workload::TestBed* bed, ClientSession* client,
               std::string source, const char* label) {
  // SHOW statements are whole programs; dispatch them before EXPLAIN.
  uint64_t ticket = 0;
  const oql::ShowKind show = oql::ConsumeShowPrefix(&source, &ticket);
  if (show != oql::ShowKind::kNone) {
    Server& server = client->server();
    std::printf("--- %s (tenant %s) ---\n", label, client->tenant().c_str());
    if (server.query_log() == nullptr) {
      std::fprintf(stderr, "query log disabled (query_log_capacity = 0)\n");
      return 1;
    }
    switch (show) {
      case oql::ShowKind::kQueries:
        std::printf("%s\n",
                    server::RenderQueries(server.query_log()->Snapshot())
                        .c_str());
        break;
      case oql::ShowKind::kProfile: {
        auto record = server.query_log()->Find(ticket);
        if (record == nullptr) {
          std::fprintf(stderr, "no retained query with ticket %llu\n",
                       static_cast<unsigned long long>(ticket));
          return 1;
        }
        std::printf("%s\n",
                    server::RenderProfile(
                        *record, server.query_log()->FindProfile(ticket))
                        .c_str());
        break;
      }
      case oql::ShowKind::kServerStats:
        std::printf("%s\n",
                    server::RenderServerStats(server.Introspect()).c_str());
        break;
      case oql::ShowKind::kNone:
        break;
    }
    return 0;
  }

  const oql::ExplainMode mode = oql::ConsumeExplainPrefix(&source);
  std::printf("--- %s (tenant %s) ---\n%s\n", label,
              client->tenant().c_str(), source.c_str());

  if (mode == oql::ExplainMode::kExplain) {
    // EXPLAIN: rewrite + cost the plan, print it, don't execute.
    auto plan = oql::ParseQuery(source);
    if (!plan.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }
    auto outcome = bed->bfr().Rewrite(&plan.value());
    if (!outcome.ok()) {
      std::fprintf(stderr, "rewrite error: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", plan::Explain(outcome->plan).c_str());
    return 0;
  }

  if (mode == oql::ExplainMode::kExplainRewrite) {
    // EXPLAIN REWRITE: print the search's decision log, don't execute.
    auto outcome = client->Rewrite(source);
    if (!outcome.ok()) {
      std::fprintf(stderr, "rewrite error: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n",
                RenderExplainRewrite(*outcome, bed->views().size()).c_str());
    g_decision_logs.emplace_back(label, outcome->decisions.ToJson());
    return 0;
  }

  auto run = client->Run(source);
  if (!run.ok()) {
    std::fprintf(stderr, "error: %s\n", run.status().ToString().c_str());
    return 1;
  }
  if (run->trace != nullptr) g_traces.push_back(run->trace);
  if (run->rewritten && !run->rewrite.decisions.targets.empty()) {
    g_decision_logs.emplace_back(label, run->rewrite.decisions.ToJson());
  }

  if (mode == oql::ExplainMode::kExplainAnalyze) {
    std::printf("%s\n", run->ExplainAnalyze().c_str());
    return 0;
  }

  std::printf("=> %zu rows in %.1f modeled seconds", run->table->num_rows(),
              run->metrics.sim_time_s);
  if (run->rewritten && run->rewrite.improved) {
    std::printf("  (rewritten: estimated %.1fs instead of %.1fs)",
                run->rewrite.est_cost, run->rewrite.original_cost);
  }
  std::printf("; %zu views in the store\n", bed->views().size());
  size_t cross = 0;
  for (const ViewUse& use : run->views_used) {
    if (!use.tenant.empty() && use.tenant != run->tenant) ++cross;
  }
  std::printf("   admitted at epoch %llu, published epoch %llu, scanned "
              "%zu view(s)%s\n\n",
              static_cast<unsigned long long>(run->admission_epoch),
              static_cast<unsigned long long>(run->publish_epoch),
              run->views_used.size(),
              cross > 0 ? " (cross-tenant reuse!)" : "");
  // Print a small sample of the result.
  const auto& table = *run->table;
  std::printf("   %s\n", table.schema().ToString().c_str());
  for (size_t i = 0; i < std::min<size_t>(table.num_rows(), 5); ++i) {
    std::printf("   ");
    for (size_t c = 0; c < table.row(i).size(); ++c) {
      std::printf("%s%s", c ? ", " : "", table.row(i)[c].ToString().c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* trace_path = nullptr;
  const char* script_path = nullptr;
  const char* tenant = "";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--tenant=", 9) == 0) {
      tenant = argv[i] + 9;
    } else {
      script_path = argv[i];
    }
  }

  workload::TestBedConfig config;
  config.data.n_tweets = 4000;
  config.session.obs.tracing = trace_path != nullptr;
  auto bed_result = workload::TestBed::Create(config);
  if (!bed_result.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 bed_result.status().ToString().c_str());
    return 1;
  }
  auto& bed = *bed_result.value();
  ClientSession client = bed.session().server().Connect(tenant);

  int rc = 0;
  if (script_path != nullptr) {
    std::ifstream file(script_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", script_path);
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    rc = RunProgram(&bed, &client, buffer.str(), script_path);
  } else {
    rc = RunProgram(&bed, &client, kDemoScript, "session 1");
    if (rc == 0) {
      rc = RunProgram(&bed, &client, kDemoScript2,
                      "session 2 (reuses session 1's views)");
    }
    if (rc == 0) rc = RunProgram(&bed, &client, kDemoScript3, "session 3");
    // Introspection over the queries that just ran.
    if (rc == 0) rc = RunProgram(&bed, &client, "SHOW QUERIES;", "show queries");
    if (rc == 0) {
      rc = RunProgram(&bed, &client, "SHOW SERVER STATS;", "show server stats");
    }
  }

  if (trace_path != nullptr) {
    std::vector<const obs::Trace*> traces;
    traces.reserve(g_traces.size());
    for (const auto& t : g_traces) traces.push_back(t.get());
    Status st = obs::WriteChromeTraceFile(trace_path, traces);
    if (!st.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("trace (%zu quer%s) written to %s\n", traces.size(),
                traces.size() == 1 ? "y" : "ies", trace_path);
    const std::string decisions_path = DecisionLogPath(trace_path);
    if (WriteDecisionLogFile(decisions_path) != 0) return 1;
    std::printf("rewrite decisions (%zu) written to %s\n",
                g_decision_logs.size(), decisions_path.c_str());
  }
  return rc;
}
