// Quickstart: build the system, run a query, revise it, and watch the
// rewriter reuse the first query's opportunistic views.
//
//   $ ./build/examples/quickstart
//
// Walks through the paper's core loop:
//   1. Generate the synthetic TWTR log and register it.
//   2. Run the "foodies" query (Figure 4 of the paper) — every MR job's
//      output is retained as an opportunistic materialized view.
//   3. Revise the query (raise the sentiment threshold) and ask BFREWRITE
//      for the cheapest rewrite: it compensates the existing views with a
//      filter instead of re-reading the 800 GB (modeled) log.

#include <cstdio>

#include "plan/plan.h"
#include "storage/value.h"
#include "workload/scenarios.h"

using namespace opd;  // NOLINT: example brevity

namespace {

// The paper's Figure 4 "prolific foodies" query, with a tunable sentiment
// threshold.
plan::Plan FoodiesQuery(double threshold) {
  plan::OpNodePtr extract = plan::Project(
      plan::Scan("TWTR"), {"tweet_id", "user_id", "tweet_text"});
  plan::OpNodePtr scored =
      plan::Udf(extract, "UDF_CLASSIFY_FOOD_SCORE",
                {{"threshold", storage::Value(threshold)}});
  plan::OpNodePtr counts = plan::GroupBy(
      extract, {"user_id"},
      {plan::AggSpec{plan::AggFn::kCount, "", "tweet_count"}});
  plan::OpNodePtr prolific = plan::Filter(
      counts, plan::FilterCond::Compare("tweet_count", afk::CmpOp::kGt,
                                        storage::Value(40.0)));
  return plan::Plan(
      plan::Join(scored, prolific, {{"user_id", "user_id"}}),
      "foodies");
}

}  // namespace

int main() {
  workload::TestBedConfig config;
  config.data.n_tweets = 8000;  // keep the demo snappy
  auto bed_result = workload::TestBed::Create(config);
  if (!bed_result.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 bed_result.status().ToString().c_str());
    return 1;
  }
  auto& bed = *bed_result.value();

  std::printf("== Opportunistic physical design quickstart ==\n\n");
  std::printf("The synthetic TWTR log models %.0f GB of tweets.\n\n",
              bed.config().modeled_twtr_gb);

  // --- 1. The analyst's first query ----------------------------------------
  plan::Plan v1 = FoodiesQuery(0.5);
  auto run1 = bed.engine().Execute(&v1);
  if (!run1.ok()) {
    std::fprintf(stderr, "v1 failed: %s\n", run1.status().ToString().c_str());
    return 1;
  }
  std::printf("v1 (threshold 0.5): %zu result rows, %.0f modeled seconds, "
              "%d jobs, %d opportunistic views retained\n",
              run1->table->num_rows(), run1->metrics.sim_time_s,
              run1->metrics.jobs, run1->metrics.views_created);

  // --- 2. The revised query, rewritten against the views -------------------
  plan::Plan v2 = FoodiesQuery(1.0);  // analyst tightens the threshold
  auto rewritten = bed.bfr().Rewrite(&v2);
  if (!rewritten.ok()) {
    std::fprintf(stderr, "rewrite failed: %s\n",
                 rewritten.status().ToString().c_str());
    return 1;
  }
  std::printf("\nBFREWRITE on v2 (threshold 1.0):\n");
  std::printf("  original plan cost  : %.1f modeled seconds\n",
              rewritten->original_cost);
  std::printf("  rewritten plan cost : %.1f modeled seconds\n",
              rewritten->est_cost);
  std::printf("  candidates considered: %zu, rewrite attempts: %zu, "
              "search time: %.3fs\n",
              rewritten->stats.candidates_considered,
              rewritten->stats.rewrite_attempts, rewritten->stats.runtime_s);
  std::printf("\nRewritten plan:\n%s\n", rewritten->plan.ToString().c_str());

  // --- 3. Execute both and compare -----------------------------------------
  plan::Plan v2_orig = FoodiesQuery(1.0);
  auto orig_run = bed.engine().Execute(&v2_orig);
  plan::Plan best = rewritten->plan;
  auto rewr_run = bed.engine().Execute(&best);
  if (!orig_run.ok() || !rewr_run.ok()) {
    std::fprintf(stderr, "execution failed\n");
    return 1;
  }
  double orig_t = orig_run->metrics.sim_time_s;
  double rewr_t = rewr_run->metrics.TotalTime() + rewritten->stats.runtime_s;
  std::printf("v2 ORIG: %.0f modeled seconds  (%zu rows)\n", orig_t,
              orig_run->table->num_rows());
  std::printf("v2 REWR: %.1f modeled seconds  (%zu rows)  -> %.0f%% faster\n",
              rewr_t, rewr_run->table->num_rows(),
              100.0 * (orig_t - rewr_t) / orig_t);
  if (orig_run->table->num_rows() != rewr_run->table->num_rows()) {
    std::fprintf(stderr, "ERROR: rewritten query returned different rows!\n");
    return 1;
  }
  std::printf("\nResult cardinalities match: the rewrite is equivalent.\n");
  return 0;
}
