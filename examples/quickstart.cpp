// Quickstart: bring up an opd::Session, run a query, revise it, and watch
// the rewriter reuse the first query's opportunistic views.
//
//   $ ./build/examples/quickstart
//
// Walks through the paper's core loop:
//   1. Create a Session (DFS + catalog + view store + optimizer + engine +
//      BFREWRITE behind one facade) and register the synthetic TWTR log.
//   2. Run the "foodies" query (Figure 4 of the paper) — every MR job's
//      output is retained as an opportunistic materialized view.
//   3. Revise the query (raise the sentiment threshold) and run it again:
//      BFREWRITE compensates the existing views with a filter instead of
//      re-reading the 800 GB (modeled) log.

#include <cstdio>

#include "plan/plan.h"
#include "session/session.h"
#include "storage/value.h"
#include "udf/builtin_udfs.h"
#include "workload/datagen.h"

using namespace opd;  // NOLINT: example brevity

namespace {

// The paper's Figure 4 "prolific foodies" query, with a tunable sentiment
// threshold.
plan::Plan FoodiesQuery(double threshold) {
  plan::OpNodePtr extract = plan::Project(
      plan::Scan("TWTR"), {"tweet_id", "user_id", "tweet_text"});
  plan::OpNodePtr scored =
      plan::Udf(extract, "UDF_CLASSIFY_FOOD_SCORE",
                {{"threshold", storage::Value(threshold)}});
  plan::OpNodePtr counts = plan::GroupBy(
      extract, {"user_id"},
      {plan::AggSpec{plan::AggFn::kCount, "", "tweet_count"}});
  plan::OpNodePtr prolific = plan::Filter(
      counts, plan::FilterCond::Compare("tweet_count", afk::CmpOp::kGt,
                                        storage::Value(40.0)));
  return plan::Plan(
      plan::Join(scored, prolific, {{"user_id", "user_id"}}),
      "foodies");
}

}  // namespace

int main() {
  // --- 0. A Session over the synthetic log ----------------------------------
  workload::DataGenConfig data;
  data.n_tweets = 8000;  // keep the demo snappy
  storage::TablePtr twtr = workload::GenerateTwitterLog(data);

  SessionOptions options;
  options.obs.tracing = true;  // record a span trace per query
  // The synthetic log stands in for a modeled 800 GB of tweets.
  options.cost.data_scale =
      800.0 * 1e9 / static_cast<double>(twtr->ByteSize());
  auto session_result = Session::Create(options);
  if (!session_result.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 session_result.status().ToString().c_str());
    return 1;
  }
  Session& session = *session_result.value();

  if (!udf::RegisterBuiltinUdfs(&session.udfs()).ok() ||
      !session.RegisterTable(twtr, {"tweet_id"}).ok()) {
    std::fprintf(stderr, "registration failed\n");
    return 1;
  }

  std::printf("== Opportunistic physical design quickstart ==\n\n");

  // --- 1. The analyst's first query ----------------------------------------
  auto run1 = session.Run(FoodiesQuery(0.5), RunOptions{.rewrite = false});
  if (!run1.ok()) {
    std::fprintf(stderr, "v1 failed: %s\n", run1.status().ToString().c_str());
    return 1;
  }
  std::printf("v1 (threshold 0.5): %zu result rows, %.0f modeled seconds, "
              "%d jobs, %d opportunistic views retained\n",
              run1->table->num_rows(), run1->metrics.sim_time_s,
              run1->metrics.jobs, run1->metrics.views_created);

  // --- 2. The revised query, rewritten against the views -------------------
  auto run2 = session.Run(FoodiesQuery(1.0));  // analyst tightens the bar
  if (!run2.ok()) {
    std::fprintf(stderr, "v2 failed: %s\n", run2.status().ToString().c_str());
    return 1;
  }
  const rewrite::RewriteOutcome& rewr = run2->rewrite;
  std::printf("\nBFREWRITE on v2 (threshold 1.0):\n");
  std::printf("  original plan cost  : %.1f modeled seconds\n",
              rewr.original_cost);
  std::printf("  rewritten plan cost : %.1f modeled seconds\n",
              rewr.est_cost);
  std::printf("  candidates considered: %zu, rewrite attempts: %zu, "
              "search time: %.3fs\n",
              rewr.stats.candidates_considered, rewr.stats.rewrite_attempts,
              rewr.stats.runtime_s);

  // --- 3. Where did the time go? (EXPLAIN ANALYZE) -------------------------
  std::printf("\nObserved per-job stats of the rewritten run:\n%s\n",
              run2->ExplainAnalyze().c_str());

  // --- 4. Compare against running v2 from scratch --------------------------
  auto orig_run =
      session.Run(FoodiesQuery(1.0), RunOptions{.rewrite = false});
  if (!orig_run.ok()) {
    std::fprintf(stderr, "execution failed\n");
    return 1;
  }
  double orig_t = orig_run->metrics.sim_time_s;
  double rewr_t = run2->metrics.TotalTime() + rewr.stats.runtime_s;
  std::printf("v2 ORIG: %.0f modeled seconds  (%zu rows)\n", orig_t,
              orig_run->table->num_rows());
  std::printf("v2 REWR: %.1f modeled seconds  (%zu rows)  -> %.0f%% faster\n",
              rewr_t, run2->table->num_rows(),
              100.0 * (orig_t - rewr_t) / orig_t);
  if (orig_run->table->num_rows() != run2->table->num_rows()) {
    std::fprintf(stderr, "ERROR: rewritten query returned different rows!\n");
    return 1;
  }
  std::printf("\nResult cardinalities match: the rewrite is equivalent.\n");
  if (run2->trace != nullptr) {
    std::printf("The traced run recorded %zu spans (query -> rewrite/job -> "
                "phase -> task).\n",
                run2->trace->size());
  }
  return 0;
}
