// UDF model tour: how the gray-box (A, F, K) model sees a query.
//
//   $ ./build/examples/udf_model_tour
//
// Reproduces the paper's Section 3 walk-through: annotates the Figure 4
// "prolific foodies" plan, prints each node's (A, F, K) annotation, shows
// how a derived attribute's signature records its dependencies, and
// demonstrates equivalence testing between differently-built plans.

#include <cstdio>

#include "plan/annotate.h"
#include "plan/plan.h"
#include "storage/value.h"
#include "udf/builtin_udfs.h"
#include "workload/scenarios.h"

using namespace opd;  // NOLINT

namespace {

void PrintAnnotation(const char* label, const plan::OpNodePtr& node) {
  std::printf("%s  [%s]\n", label, node->DisplayName().c_str());
  std::printf("  A = {");
  const auto& attrs = node->afk.attrs();
  for (size_t i = 0; i < attrs.size(); ++i) {
    std::printf("%s%s", i ? ", " : "", attrs[i].name().c_str());
  }
  std::printf("}\n  F = %s\n  K = %s\n\n",
              node->afk.filters().ToString().c_str(),
              node->afk.keys().ToString().c_str());
}

}  // namespace

int main() {
  workload::TestBedConfig config;
  config.data.n_tweets = 2000;
  config.calibrate_udfs = false;
  auto bed_result = workload::TestBed::Create(config);
  if (!bed_result.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 bed_result.status().ToString().c_str());
    return 1;
  }
  auto& bed = *bed_result.value();

  std::printf("== The gray-box UDF model (paper Section 3) ==\n\n");

  // The Figure 4 plan: PROJECT -> {UDF_FOODIES, GROUPBY-COUNT} -> JOIN.
  auto extract = plan::Project(plan::Scan("TWTR"),
                               {"tweet_id", "user_id", "tweet_text"});
  auto foodies = plan::Udf(extract, "UDF_CLASSIFY_FOOD_SCORE",
                           {{"threshold", storage::Value(0.5)}});
  auto counts = plan::GroupBy(
      extract, {"user_id"},
      {plan::AggSpec{plan::AggFn::kCount, "", "count"}});
  auto filtered = plan::Filter(
      counts, plan::FilterCond::Compare("count", afk::CmpOp::kGt,
                                        storage::Value(100.0)));
  auto join = plan::Join(foodies, filtered, {{"user_id", "user_id"}});
  plan::Plan plan(join, "figure4");

  auto status = plan::AnnotatePlan(plan, bed.optimizer().context());
  if (!status.ok()) {
    std::fprintf(stderr, "annotation failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  PrintAnnotation("1. PROJECT over the raw log", extract);
  PrintAnnotation("2. UDF_FOODIES (two local functions, modeled end-to-end)",
                  foodies);
  PrintAnnotation("3. GROUPBY-COUNT", counts);
  PrintAnnotation("4. FILTER count > 100", filtered);
  PrintAnnotation("5. JOIN (the query sink)", join);

  // The signature of the derived attribute records its dependencies.
  auto sent = foodies->afk.FindByName("sent_sum");
  std::printf("Signature of sent_sum (dependencies recorded per §3.1):\n"
              "  %s\n\n",
              sent->signature().c_str());

  // Equivalence: the same computation built from a *different* projection of
  // the log annotates to the same attribute — the key to semantic reuse.
  auto other_extract =
      plan::Project(plan::Scan("TWTR"),
                    {"tweet_id", "user_id", "tweet_text", "raw_meta"});
  auto foodies2 = plan::Udf(other_extract, "UDF_CLASSIFY_FOOD_SCORE",
                            {{"threshold", storage::Value(0.5)}});
  plan::Plan plan2(foodies2, "alt");
  (void)plan::AnnotatePlan(plan2, bed.optimizer().context());
  auto sent2 = foodies2->afk.FindByName("sent_sum");
  std::printf("Same UDF over a different projection of the log:\n"
              "  signatures %s\n",
              *sent == *sent2 ? "MATCH (reusable!)" : "differ");

  // But a different threshold parameter only changes F, not the attribute:
  auto foodies3 = plan::Udf(extract, "UDF_CLASSIFY_FOOD_SCORE",
                            {{"threshold", storage::Value(1.0)}});
  plan::Plan plan3(foodies3, "thr");
  (void)plan::AnnotatePlan(plan3, bed.optimizer().context());
  auto sent3 = foodies3->afk.FindByName("sent_sum");
  std::printf("Same UDF with threshold 1.0 instead of 0.5:\n"
              "  attribute %s, annotations %s\n",
              *sent == *sent3 ? "identical" : "differs",
              foodies->afk == foodies3->afk
                  ? "equal"
                  : "differ only in F (compensable by a filter)");
  return 0;
}
