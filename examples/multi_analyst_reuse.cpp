// Multi-analyst reuse: the paper's "user evolution" story on the full
// workload.
//
//   $ ./build/examples/multi_analyst_reuse
//
// Seven analysts run their exploratory queries; an eighth then poses a new
// query, which BFREWRITE answers mostly from the opportunistic views the
// others left behind — including views that are *not* syntactically
// identical to anything in the new query.

#include <cstdio>

#include "workload/scenarios.h"

using namespace opd;  // NOLINT

int main() {
  workload::TestBedConfig config;
  config.data.n_tweets = 6000;
  config.data.n_checkins = 3500;
  config.data.n_locations = 300;
  auto bed_result = workload::TestBed::Create(config);
  if (!bed_result.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 bed_result.status().ToString().c_str());
    return 1;
  }
  auto& bed = *bed_result.value();

  std::printf("== Multi-analyst opportunistic reuse ==\n\n");
  const int holdout = 1;  // analyst 1 arrives last

  for (int analyst = 2; analyst <= workload::kNumAnalysts; ++analyst) {
    auto run = bed.RunOriginal(analyst, 1);
    if (!run.ok()) {
      std::fprintf(stderr, "A%dv1 failed: %s\n", analyst,
                   run.status().ToString().c_str());
      return 1;
    }
    std::printf("analyst %d (%s) ran their query: %2d views retained "
                "(store now holds %zu)\n",
                analyst, workload::AnalystTopic(analyst),
                run->metrics.views_created, bed.views().size());
  }

  std::printf("\nnow analyst %d (%s) poses their query...\n\n", holdout,
              workload::AnalystTopic(holdout));
  auto rewr = bed.RunRewritten(holdout, 1);
  auto orig = bed.RunOriginal(holdout, 1);
  if (!rewr.ok() || !orig.ok()) {
    std::fprintf(stderr, "holdout run failed\n");
    return 1;
  }

  const auto& stats = rewr->outcome.stats;
  std::printf("BFREWRITE searched %zu candidate views, attempted %zu "
              "rewrites, in %.3fs\n",
              stats.candidates_considered, stats.rewrite_attempts,
              stats.runtime_s);
  std::printf("\nrewritten plan:\n%s\n",
              rewr->outcome.plan.ToString().c_str());

  double orig_t = orig->metrics.sim_time_s;
  double rewr_t = rewr->TotalTime();
  std::printf("ORIG: %8.1f modeled seconds  (%zu rows)\n", orig_t,
              orig->table->num_rows());
  std::printf("REWR: %8.1f modeled seconds  (%zu rows)  -> %.0f%% faster\n",
              rewr_t, rewr->exec.table->num_rows(),
              100.0 * (orig_t - rewr_t) / orig_t);
  if (orig->table->num_rows() != rewr->exec.table->num_rows()) {
    std::fprintf(stderr, "ERROR: result mismatch!\n");
    return 1;
  }
  std::printf("\nthe new analyst's query was answered mostly from other "
              "analysts' by-products.\n");
  return 0;
}
