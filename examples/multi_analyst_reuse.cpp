// Multi-analyst reuse: the paper's "user evolution" story on the full
// workload, served multi-tenant.
//
//   $ ./build/examples/multi_analyst_reuse
//
// Seven analysts connect to one opd::Server as separate tenants and run
// their exploratory queries; an eighth then connects and poses a new query,
// which BFREWRITE answers mostly from the opportunistic views the others
// left behind — including views that are *not* syntactically identical to
// anything in the new query. The serving layer makes the sharing explicit:
// each result reports which tenants' views it scanned, and per-tenant
// metric scopes stay isolated even though the stack is shared.

#include <cstdio>
#include <map>

#include "server/server.h"
#include "workload/scenarios.h"

using namespace opd;  // NOLINT

int main() {
  workload::TestBedConfig config;
  config.data.n_tweets = 6000;
  config.data.n_checkins = 3500;
  config.data.n_locations = 300;
  auto bed_result = workload::TestBed::Create(config);
  if (!bed_result.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 bed_result.status().ToString().c_str());
    return 1;
  }
  auto& bed = *bed_result.value();
  Server& server = bed.session().server();

  std::printf("== Multi-analyst opportunistic reuse (one Server, %d "
              "tenants) ==\n\n",
              workload::kNumAnalysts);
  const int holdout = 1;  // analyst 1 arrives last

  for (int analyst = 2; analyst <= workload::kNumAnalysts; ++analyst) {
    ClientSession tenant =
        server.Connect("analyst" + std::to_string(analyst));
    auto plan = workload::BuildQuery(analyst, 1);
    if (!plan.ok()) return 1;
    auto run = tenant.Run(std::move(plan).value());
    if (!run.ok()) {
      std::fprintf(stderr, "A%dv1 failed: %s\n", analyst,
                   run.status().ToString().c_str());
      return 1;
    }
    std::printf("%-9s (%s) ran their query: %2d views published at epoch "
                "%llu (store now holds %zu)\n",
                tenant.tenant().c_str(), workload::AnalystTopic(analyst),
                run->metrics.views_created,
                static_cast<unsigned long long>(run->publish_epoch),
                server.views().size());
  }

  std::printf("\nnow analyst %d (%s) connects and poses their query...\n\n",
              holdout, workload::AnalystTopic(holdout));
  ClientSession newcomer = server.Connect("analyst1");
  auto plan = workload::BuildQuery(holdout, 1);
  if (!plan.ok()) return 1;
  auto rewr = newcomer.Run(std::move(plan).value());
  if (!rewr.ok()) {
    std::fprintf(stderr, "holdout run failed: %s\n",
                 rewr.status().ToString().c_str());
    return 1;
  }
  // The original cost comes from the same run's rewrite outcome, so no
  // second execution is needed for the comparison.
  const auto& stats = rewr->rewrite.stats;
  std::printf("BFREWRITE searched %zu candidate views, attempted %zu "
              "rewrites, in %.3fs\n",
              stats.candidates_considered, stats.rewrite_attempts,
              stats.runtime_s);

  std::map<std::string, int> by_tenant;
  for (const ViewUse& use : rewr->views_used) by_tenant[use.tenant] += 1;
  std::printf("\nviews scanned by the executed plan, by owning tenant:\n");
  for (const auto& [tenant, n] : by_tenant) {
    std::printf("  %-9s : %d view(s)\n", tenant.c_str(), n);
  }

  std::printf("\nestimated cost %0.1fs -> %0.1fs (improved: %s), "
              "%zu result rows\n",
              rewr->rewrite.original_cost, rewr->rewrite.est_cost,
              rewr->rewrite.improved ? "yes" : "no",
              rewr->table->num_rows());

  std::printf("\nper-tenant serving metrics (isolated scopes on the shared "
              "server):\n");
  for (const std::string& tenant : server.Tenants()) {
    const auto snap = server.TenantSnapshot(tenant);
    const auto completed = snap.counters.find("server.queries.completed");
    const auto reused = snap.counters.find("server.views.cross_reuse");
    std::printf("  %-9s : %llu quer%s completed, %llu cross-tenant view "
                "reuse%s\n",
                tenant.c_str(),
                static_cast<unsigned long long>(
                    completed == snap.counters.end() ? 0
                                                     : completed->second),
                completed != snap.counters.end() && completed->second == 1
                    ? "y"
                    : "ies",
                static_cast<unsigned long long>(
                    reused == snap.counters.end() ? 0 : reused->second),
                reused != snap.counters.end() && reused->second == 1 ? ""
                                                                     : "s");
  }

  const bool cross_reuse =
      by_tenant.size() > 1 ||
      (by_tenant.size() == 1 && by_tenant.begin()->first != "analyst1");
  if (!cross_reuse) {
    std::fprintf(stderr, "ERROR: the newcomer's plan scanned no other "
                         "tenant's views\n");
    return 1;
  }
  std::printf("\nthe new analyst's query was answered mostly from other "
              "analysts' by-products.\n");
  return 0;
}
