// Storage budget exploration: what retaining opportunistic views costs, and
// what a trivial reclamation policy does to rewrite quality.
//
//   $ ./build/examples/storage_budget
//
// The paper (Section 10) reports that retaining *every* view for the whole
// workload cost only ~2x the base data, because queries project narrow
// slices of wide logs. This example measures that ratio on the synthetic
// workload, then drops the largest half of the views (a trivial reclamation
// policy) and shows the rewriter still finds useful rewrites.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "workload/scenarios.h"

using namespace opd;  // NOLINT

int main() {
  workload::TestBedConfig config;
  config.data.n_tweets = 6000;
  config.data.n_checkins = 3500;
  auto bed_result = workload::TestBed::Create(config);
  if (!bed_result.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 bed_result.status().ToString().c_str());
    return 1;
  }
  auto& bed = *bed_result.value();

  std::printf("== Opportunistic view storage cost (paper Section 10) ==\n\n");

  // Run the full first-version workload.
  for (int analyst = 1; analyst <= workload::kNumAnalysts; ++analyst) {
    for (int version = 1; version <= 2; ++version) {
      auto run = bed.RunOriginal(analyst, version);
      if (!run.ok()) {
        std::fprintf(stderr, "A%dv%d failed: %s\n", analyst, version,
                     run.status().ToString().c_str());
        return 1;
      }
    }
  }

  uint64_t base_bytes = 0;
  for (const auto& name : bed.catalog().Names()) {
    auto entry = bed.catalog().Find(name);
    base_bytes += static_cast<uint64_t>((*entry)->stats.TotalBytes());
  }
  uint64_t view_bytes = bed.views().TotalBytes();
  std::printf("base data:           %10.2f MB\n", base_bytes / 1048576.0);
  std::printf("views (%3zu retained): %10.2f MB  (%.2fx the base data; "
              "paper saw ~2x)\n\n",
              bed.views().size(), view_bytes / 1048576.0,
              static_cast<double>(view_bytes) / base_bytes);

  // Trivial reclamation: drop the largest half of the views.
  std::vector<const catalog::ViewDefinition*> views = bed.views().All();
  std::sort(views.begin(), views.end(),
            [](const auto* a, const auto* b) { return a->bytes > b->bytes; });
  std::vector<catalog::ViewId> to_drop;
  for (size_t i = 0; i < views.size() / 2; ++i) {
    to_drop.push_back(views[i]->id);
  }
  for (catalog::ViewId id : to_drop) (void)bed.views().Drop(id);
  std::printf("after dropping the largest %zu views: %.2f MB retained\n\n",
              to_drop.size(), bed.views().TotalBytes() / 1048576.0);

  // The rewriter still finds good rewrites for the next versions.
  double total_impr = 0;
  int counted = 0;
  for (int analyst = 1; analyst <= workload::kNumAnalysts; ++analyst) {
    auto q = workload::BuildQuery(analyst, 3);
    if (!q.ok()) continue;
    plan::Plan p = std::move(q).value();
    auto outcome = bed.bfr().Rewrite(&p);
    if (!outcome.ok()) continue;
    double impr = outcome->original_cost <= 0
                      ? 0
                      : 100.0 * (outcome->original_cost - outcome->est_cost) /
                            outcome->original_cost;
    std::printf("A%dv3 estimated improvement with half the views gone: "
                "%5.1f%%\n",
                analyst, impr);
    total_impr += impr;
    ++counted;
  }
  std::printf("\naverage: %.1f%% — the rewriter degrades gracefully under "
              "storage reclamation.\n",
              counted ? total_impr / counted : 0.0);
  return 0;
}
