#include "oql/printer.h"

#include <map>
#include <set>
#include <sstream>

namespace opd::oql {

namespace {

using plan::OpKind;
using plan::OpNode;
using plan::OpNodePtr;

struct Printer {
  std::ostringstream out;
  std::map<const OpNode*, std::string> names;
  std::set<const OpNode*> multi_parent;
  int counter = 0;
  Status error = Status::OK();

  std::string Literal(const storage::Value& v) {
    if (v.type() == storage::DataType::kString) {
      return "\"" + v.as_string() + "\"";
    }
    return v.ToString();
  }

  const char* AggName(plan::AggFn fn) {
    switch (fn) {
      case plan::AggFn::kCount:
        return "count";
      case plan::AggFn::kSum:
        return "sum";
      case plan::AggFn::kAvg:
        return "avg";
      case plan::AggFn::kMin:
        return "min";
      case plan::AggFn::kMax:
        return "max";
    }
    return "?";
  }

  // Renders the pipeline expression for `node`, emitting bindings for shared
  // subtrees first. Returns the inline expression text.
  std::string Expr(const OpNodePtr& node, bool as_source) {
    auto it = names.find(node.get());
    if (it != names.end()) return it->second;

    std::string text;
    switch (node->kind) {
      case OpKind::kScan:
        text = node->view_id >= 0
                   ? "view " + std::to_string(node->view_id)
                   : "scan " + node->table;
        break;
      case OpKind::kJoin: {
        // join must be a source: bind both inputs.
        std::string left = Bind(node->children[0]);
        std::string right = Bind(node->children[1]);
        text = "join " + left + " " + right + " on ";
        for (size_t i = 0; i < node->join.pairs.size(); ++i) {
          if (i > 0) text += ", ";
          text += node->join.pairs[i].first + " = " +
                  node->join.pairs[i].second;
        }
        break;
      }
      case OpKind::kProject: {
        text = Expr(node->children[0], true) + "\n  | project ";
        for (size_t i = 0; i < node->project.size(); ++i) {
          if (i > 0) text += ", ";
          text += node->project[i];
        }
        break;
      }
      case OpKind::kFilter: {
        text = Expr(node->children[0], true) + "\n  | filter ";
        const plan::FilterCond& f = node->filter;
        if (f.kind == plan::FilterCond::Kind::kCompare) {
          const char* op = afk::CmpOpName(f.op);
          std::string spelled = std::string(op) == "=" ? "==" : op;
          text += f.column + " " + spelled + " " + Literal(f.literal);
        } else {
          text += f.fn_name + "(";
          for (size_t i = 0; i < f.arg_columns.size(); ++i) {
            if (i > 0) text += ", ";
            text += f.arg_columns[i];
          }
          text += ")";
        }
        break;
      }
      case OpKind::kGroupByAgg: {
        text = Expr(node->children[0], true) + "\n  | groupby ";
        for (size_t i = 0; i < node->group.keys.size(); ++i) {
          if (i > 0) text += ", ";
          text += node->group.keys[i];
        }
        text += " ";
        for (size_t i = 0; i < node->group.aggs.size(); ++i) {
          const auto& agg = node->group.aggs[i];
          if (i > 0) text += ", ";
          text += std::string(AggName(agg.fn)) + "(" +
                  (agg.input.empty() ? "*" : agg.input) + ") as " +
                  agg.output;
        }
        break;
      }
      case OpKind::kUdf: {
        text = Expr(node->children[0], true) + "\n  | udf " +
               node->udf.udf_name;
        if (!node->udf.params.empty()) {
          text += "(";
          bool first = true;
          for (const auto& [key, value] : node->udf.params) {
            if (!first) text += ", ";
            first = false;
            text += key + " = " + Literal(value);
          }
          text += ")";
        }
        break;
      }
    }

    // Shared subtrees (or join sources) become their own bindings.
    if (multi_parent.count(node.get()) && !as_source) {
      return BindText(node.get(), text);
    }
    if (multi_parent.count(node.get())) {
      return BindText(node.get(), text);
    }
    return text;
  }

  std::string Bind(const OpNodePtr& node) {
    auto it = names.find(node.get());
    if (it != names.end()) return it->second;
    return BindText(node.get(), Expr(node, true));
  }

  std::string BindText(const OpNode* node, const std::string& text) {
    auto it = names.find(node);
    if (it != names.end()) return it->second;
    std::string name = "t" + std::to_string(counter++);
    out << name << " = " << text << ";\n";
    names[node] = name;
    return name;
  }
};

void CountParents(const OpNodePtr& node, std::map<const OpNode*, int>* counts,
                  std::set<const OpNode*>* seen) {
  for (const OpNodePtr& child : node->children) {
    (*counts)[child.get()] += 1;
    if (seen->insert(child.get()).second) {
      CountParents(child, counts, seen);
    }
  }
}

}  // namespace

Result<std::string> Print(const plan::Plan& plan) {
  if (plan.empty()) return Status::InvalidArgument("empty plan");
  Printer printer;
  std::map<const OpNode*, int> counts;
  std::set<const OpNode*> seen;
  CountParents(plan.root(), &counts, &seen);
  for (const auto& [node, count] : counts) {
    if (count > 1) printer.multi_parent.insert(node);
  }
  std::string final_expr = printer.Expr(plan.root(), false);
  OPD_RETURN_NOT_OK(printer.error);
  printer.out << "result = " << final_expr << ";\n";
  return printer.out.str();
}

}  // namespace opd::oql
