// OQL parser: turns pipeline programs into plan DAGs.
//
// Grammar (see lexer.h for an example):
//
//   program  := stmt+
//   stmt     := IDENT '=' pipeline ';'
//   pipeline := source ('|' stage)*
//   source   := 'scan' IDENT
//             | 'view' NUMBER
//             | 'join' ref ref 'on' IDENT '=' IDENT (',' IDENT '=' IDENT)*
//             | IDENT                         (reference to earlier binding)
//   stage    := 'project' IDENT (',' IDENT)*
//             | 'filter' IDENT CMP literal
//             | 'filter' IDENT '(' IDENT (',' IDENT)* ')'    (opaque)
//             | 'groupby' keys agg (',' agg)*
//             | 'udf' IDENT ('(' IDENT '=' literal (',' ...)* ')')?
//   agg      := ('count'|'sum'|'avg'|'min'|'max') '(' IDENT? | '*' ')'
//               'as' IDENT
//
// Keywords are contextual (scan/view/join/on/project/filter/groupby/udf/as
// and the aggregate names); anything else is an identifier. The program's
// value is its last binding. Statements may reference earlier bindings,
// which become shared subplans (materialization points), exactly like the
// multi-stage HiveQL scripts of the paper's workload.

#ifndef OPD_OQL_PARSER_H_
#define OPD_OQL_PARSER_H_

#include <map>
#include <string>

#include "common/status.h"
#include "plan/plan.h"

namespace opd::oql {

/// A parsed program: named pipelines plus the result binding.
struct Program {
  std::map<std::string, plan::OpNodePtr> bindings;
  std::string result_name;

  /// The plan computing the final binding.
  plan::Plan ToPlan() const {
    auto it = bindings.find(result_name);
    return plan::Plan(it == bindings.end() ? nullptr : it->second,
                      result_name);
  }
};

/// Parses an OQL program. Errors carry line/column positions.
Result<Program> Parse(const std::string& source);

/// Convenience: parse and return the result plan directly.
Result<plan::Plan> ParseQuery(const std::string& source);

/// How a program asked to be explained (shell-level prefix keywords).
enum class ExplainMode {
  kNone,            ///< run normally
  kExplain,         ///< print the estimated plan, don't execute
  kExplainAnalyze,  ///< execute, then print observed per-job stats
  kExplainRewrite,  ///< rewrite only: print the search's decision log
};

/// Strips a leading `explain` / `explain analyze` / `explain rewrite`
/// prefix (case-insensitive) from `source` in place and returns which mode
/// was requested. The rest of the program is left untouched for Parse().
ExplainMode ConsumeExplainPrefix(std::string* source);

/// An introspection statement (shell-level, like EXPLAIN).
enum class ShowKind {
  kNone,         ///< not a SHOW statement
  kQueries,      ///< SHOW QUERIES — the retained query history
  kProfile,      ///< SHOW PROFILE <ticket> — one query, long form
  kServerStats,  ///< SHOW SERVER STATS — counters + SLO percentiles
};

/// Recognizes a whole-statement `show queries` / `show profile <ticket>` /
/// `show server stats` (case-insensitive, optional trailing `;`). On match
/// consumes `source` entirely — a SHOW statement is a complete program —
/// and for kProfile stores the ticket in `*ticket`. Returns kNone (leaving
/// `source` untouched) when the text is anything else, including a
/// malformed SHOW; the parser then reports the error on the full text.
ShowKind ConsumeShowPrefix(std::string* source, uint64_t* ticket);

}  // namespace opd::oql

#endif  // OPD_OQL_PARSER_H_
