#include "oql/parser.h"

#include <cctype>
#include <cstdlib>

#include "oql/lexer.h"
#include "storage/value.h"

namespace opd::oql {

namespace {

using plan::OpNodePtr;
using storage::Value;

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> Run() {
    Program program;
    while (!At(TokenKind::kEnd)) {
      OPD_RETURN_NOT_OK(ParseStatement(&program));
    }
    if (program.bindings.empty()) {
      return Status::InvalidArgument("empty OQL program");
    }
    return program;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  bool At(TokenKind kind) const { return Cur().kind == kind; }
  bool AtIdent(const char* word) const {
    return At(TokenKind::kIdent) && Cur().text == word;
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Fail(const std::string& expected) const {
    return Status::InvalidArgument("expected " + expected + ", found " +
                                   Cur().Describe());
  }

  Status Expect(TokenKind kind, std::string* text = nullptr) {
    if (!At(kind)) return Fail(TokenKindName(kind));
    if (text != nullptr) *text = Cur().text;
    Advance();
    return Status::OK();
  }

  Status ExpectWord(const char* word) {
    if (!AtIdent(word)) return Fail(std::string("'") + word + "'");
    Advance();
    return Status::OK();
  }

  // stmt := IDENT '=' pipeline ';'
  Status ParseStatement(Program* program) {
    std::string name;
    OPD_RETURN_NOT_OK(Expect(TokenKind::kIdent, &name));
    if (program->bindings.count(name)) {
      return Status::InvalidArgument("binding redefined: " + name);
    }
    OPD_RETURN_NOT_OK(Expect(TokenKind::kAssign));
    OPD_ASSIGN_OR_RETURN(OpNodePtr node, ParsePipeline(*program));
    OPD_RETURN_NOT_OK(Expect(TokenKind::kSemi));
    program->bindings[name] = std::move(node);
    program->result_name = name;
    return Status::OK();
  }

  Result<OpNodePtr> ParsePipeline(const Program& program) {
    OPD_ASSIGN_OR_RETURN(OpNodePtr node, ParseSource(program));
    while (At(TokenKind::kPipe)) {
      Advance();
      OPD_ASSIGN_OR_RETURN(node, ParseStage(std::move(node)));
    }
    return node;
  }

  Result<OpNodePtr> ParseSource(const Program& program) {
    if (AtIdent("scan")) {
      Advance();
      std::string table;
      OPD_RETURN_NOT_OK(Expect(TokenKind::kIdent, &table));
      return plan::Scan(table);
    }
    if (AtIdent("view")) {
      Advance();
      std::string number;
      OPD_RETURN_NOT_OK(Expect(TokenKind::kNumber, &number));
      return plan::ScanView(std::atoll(number.c_str()));
    }
    if (AtIdent("join")) {
      Advance();
      OPD_ASSIGN_OR_RETURN(OpNodePtr left, ParseRef(program));
      OPD_ASSIGN_OR_RETURN(OpNodePtr right, ParseRef(program));
      OPD_RETURN_NOT_OK(ExpectWord("on"));
      std::vector<std::pair<std::string, std::string>> pairs;
      while (true) {
        std::string l, r;
        OPD_RETURN_NOT_OK(Expect(TokenKind::kIdent, &l));
        OPD_RETURN_NOT_OK(Expect(TokenKind::kAssign, nullptr));
        OPD_RETURN_NOT_OK(Expect(TokenKind::kIdent, &r));
        pairs.emplace_back(std::move(l), std::move(r));
        if (!At(TokenKind::kComma)) break;
        Advance();
      }
      return plan::Join(std::move(left), std::move(right), std::move(pairs));
    }
    return ParseRef(program);
  }

  // A reference to an earlier binding.
  Result<OpNodePtr> ParseRef(const Program& program) {
    std::string name;
    OPD_RETURN_NOT_OK(Expect(TokenKind::kIdent, &name));
    auto it = program.bindings.find(name);
    if (it == program.bindings.end()) {
      return Status::NotFound("unknown binding: " + name);
    }
    return it->second;
  }

  Result<OpNodePtr> ParseStage(OpNodePtr input) {
    if (AtIdent("project")) {
      Advance();
      std::vector<std::string> columns;
      OPD_RETURN_NOT_OK(ParseIdentList(&columns));
      return plan::Project(std::move(input), std::move(columns));
    }
    if (AtIdent("filter")) {
      Advance();
      std::string name;
      OPD_RETURN_NOT_OK(Expect(TokenKind::kIdent, &name));
      if (At(TokenKind::kLParen)) {  // opaque predicate
        Advance();
        std::vector<std::string> args;
        OPD_RETURN_NOT_OK(ParseIdentList(&args));
        OPD_RETURN_NOT_OK(Expect(TokenKind::kRParen));
        return plan::Filter(std::move(input),
                            plan::FilterCond::Opaque(name, std::move(args)));
      }
      std::string op_text;
      OPD_RETURN_NOT_OK(Expect(TokenKind::kCmp, &op_text));
      OPD_ASSIGN_OR_RETURN(afk::CmpOp op, ParseCmpOp(op_text));
      OPD_ASSIGN_OR_RETURN(Value literal, ParseLiteral());
      return plan::Filter(std::move(input), plan::FilterCond::Compare(
                                                name, op, std::move(literal)));
    }
    if (AtIdent("groupby")) {
      Advance();
      std::vector<std::string> keys;
      std::vector<plan::AggSpec> aggs;
      // Keys until the first aggregate keyword.
      while (At(TokenKind::kIdent) && !AtAggKeyword()) {
        keys.push_back(Cur().text);
        Advance();
        if (At(TokenKind::kComma)) Advance();
      }
      if (keys.empty()) return Fail("group key");
      while (AtAggKeyword()) {
        OPD_ASSIGN_OR_RETURN(plan::AggSpec agg, ParseAgg());
        aggs.push_back(std::move(agg));
        if (At(TokenKind::kComma)) Advance();
      }
      if (aggs.empty()) return Fail("aggregate (count/sum/avg/min/max)");
      return plan::GroupBy(std::move(input), std::move(keys),
                           std::move(aggs));
    }
    if (AtIdent("udf")) {
      Advance();
      std::string name;
      OPD_RETURN_NOT_OK(Expect(TokenKind::kIdent, &name));
      udf::Params params;
      if (At(TokenKind::kLParen)) {
        Advance();
        while (!At(TokenKind::kRParen)) {
          std::string key;
          OPD_RETURN_NOT_OK(Expect(TokenKind::kIdent, &key));
          OPD_RETURN_NOT_OK(Expect(TokenKind::kAssign));
          OPD_ASSIGN_OR_RETURN(Value literal, ParseLiteral());
          params[key] = std::move(literal);
          if (At(TokenKind::kComma)) Advance();
        }
        OPD_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      }
      return plan::Udf(std::move(input), name, std::move(params));
    }
    return Fail("stage (project/filter/groupby/udf)");
  }

  bool AtAggKeyword() const {
    if (!At(TokenKind::kIdent)) return false;
    const std::string& w = Cur().text;
    return w == "count" || w == "sum" || w == "avg" || w == "min" ||
           w == "max";
  }

  Result<plan::AggSpec> ParseAgg() {
    plan::AggSpec agg;
    const std::string fn = Cur().text;
    Advance();
    if (fn == "count") {
      agg.fn = plan::AggFn::kCount;
    } else if (fn == "sum") {
      agg.fn = plan::AggFn::kSum;
    } else if (fn == "avg") {
      agg.fn = plan::AggFn::kAvg;
    } else if (fn == "min") {
      agg.fn = plan::AggFn::kMin;
    } else {
      agg.fn = plan::AggFn::kMax;
    }
    OPD_RETURN_NOT_OK(Expect(TokenKind::kLParen));
    if (At(TokenKind::kStar)) {
      Advance();
    } else if (At(TokenKind::kIdent)) {
      agg.input = Cur().text;
      Advance();
    }
    OPD_RETURN_NOT_OK(Expect(TokenKind::kRParen));
    OPD_RETURN_NOT_OK(ExpectWord("as"));
    OPD_RETURN_NOT_OK(Expect(TokenKind::kIdent, &agg.output));
    if (agg.input.empty() && agg.fn != plan::AggFn::kCount) {
      return Status::InvalidArgument("only count may aggregate '*'");
    }
    return agg;
  }

  Result<afk::CmpOp> ParseCmpOp(const std::string& text) {
    if (text == "<") return afk::CmpOp::kLt;
    if (text == "<=") return afk::CmpOp::kLe;
    if (text == ">") return afk::CmpOp::kGt;
    if (text == ">=") return afk::CmpOp::kGe;
    if (text == "==") return afk::CmpOp::kEq;
    if (text == "!=") return afk::CmpOp::kNe;
    return Status::InvalidArgument("unknown comparison: " + text);
  }

  Result<Value> ParseLiteral() {
    if (At(TokenKind::kNumber)) {
      std::string text = Cur().text;
      Advance();
      return Value(std::atof(text.c_str()));
    }
    if (At(TokenKind::kString)) {
      std::string text = Cur().text;
      Advance();
      return Value(std::move(text));
    }
    return Status::InvalidArgument("expected literal, found " +
                                   Cur().Describe());
  }

  Status ParseIdentList(std::vector<std::string>* out) {
    std::string first;
    OPD_RETURN_NOT_OK(Expect(TokenKind::kIdent, &first));
    out->push_back(std::move(first));
    while (At(TokenKind::kComma)) {
      Advance();
      std::string next;
      OPD_RETURN_NOT_OK(Expect(TokenKind::kIdent, &next));
      out->push_back(std::move(next));
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> Parse(const std::string& source) {
  OPD_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  Parser parser(std::move(tokens));
  return parser.Run();
}

Result<plan::Plan> ParseQuery(const std::string& source) {
  OPD_ASSIGN_OR_RETURN(Program program, Parse(source));
  plan::Plan plan = program.ToPlan();
  if (plan.empty()) return Status::Internal("program produced no plan");
  return plan;
}

namespace {

// Case-insensitive word match at `pos`; returns the index past the word and
// any following whitespace, or std::string::npos on no match. The word must
// end at a non-identifier character so `explained = ...` still parses as a
// binding.
size_t ConsumeWord(const std::string& s, size_t pos, const char* word) {
  size_t i = pos;
  for (const char* w = word; *w != '\0'; ++w, ++i) {
    if (i >= s.size() || std::tolower(static_cast<unsigned char>(s[i])) != *w) {
      return std::string::npos;
    }
  }
  if (i < s.size() &&
      (std::isalnum(static_cast<unsigned char>(s[i])) || s[i] == '_')) {
    return std::string::npos;
  }
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i;
}

}  // namespace

ExplainMode ConsumeExplainPrefix(std::string* source) {
  // Skip whitespace and `#` comment lines: scripts routinely open with a
  // banner comment above the EXPLAIN keyword.
  size_t start = 0;
  while (start < source->size()) {
    const char c = (*source)[start];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++start;
    } else if (c == '#') {
      while (start < source->size() && (*source)[start] != '\n') ++start;
    } else {
      break;
    }
  }
  const size_t after_explain = ConsumeWord(*source, start, "explain");
  if (after_explain == std::string::npos) return ExplainMode::kNone;
  const size_t after_analyze = ConsumeWord(*source, after_explain, "analyze");
  if (after_analyze != std::string::npos) {
    source->erase(0, after_analyze);
    return ExplainMode::kExplainAnalyze;
  }
  const size_t after_rewrite = ConsumeWord(*source, after_explain, "rewrite");
  if (after_rewrite != std::string::npos) {
    source->erase(0, after_rewrite);
    return ExplainMode::kExplainRewrite;
  }
  source->erase(0, after_explain);
  return ExplainMode::kExplain;
}

ShowKind ConsumeShowPrefix(std::string* source, uint64_t* ticket) {
  // Same front matter as EXPLAIN: whitespace and `#` comment lines.
  size_t start = 0;
  while (start < source->size()) {
    const char c = (*source)[start];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++start;
    } else if (c == '#') {
      while (start < source->size() && (*source)[start] != '\n') ++start;
    } else {
      break;
    }
  }
  const size_t after_show = ConsumeWord(*source, start, "show");
  if (after_show == std::string::npos) return ShowKind::kNone;

  // The statement must end after its operands (optionally `;`), otherwise
  // it is not a SHOW program (e.g. `shows = scan ...` never gets here, but
  // `show queries extra` should fall through to the parser's error).
  auto at_end = [&source](size_t pos) {
    if (pos < source->size() && (*source)[pos] == ';') {
      ++pos;
      while (pos < source->size() &&
             std::isspace(static_cast<unsigned char>((*source)[pos]))) {
        ++pos;
      }
    }
    return pos >= source->size();
  };

  const size_t after_queries = ConsumeWord(*source, after_show, "queries");
  if (after_queries != std::string::npos && at_end(after_queries)) {
    source->clear();
    return ShowKind::kQueries;
  }
  const size_t after_server = ConsumeWord(*source, after_show, "server");
  if (after_server != std::string::npos) {
    const size_t after_stats = ConsumeWord(*source, after_server, "stats");
    if (after_stats != std::string::npos && at_end(after_stats)) {
      source->clear();
      return ShowKind::kServerStats;
    }
  }
  const size_t after_profile = ConsumeWord(*source, after_show, "profile");
  if (after_profile != std::string::npos) {
    size_t i = after_profile;
    uint64_t value = 0;
    size_t digits = 0;
    while (i < source->size() &&
           std::isdigit(static_cast<unsigned char>((*source)[i]))) {
      value = value * 10 + static_cast<uint64_t>((*source)[i] - '0');
      ++i;
      ++digits;
    }
    while (i < source->size() &&
           std::isspace(static_cast<unsigned char>((*source)[i]))) {
      ++i;
    }
    if (digits > 0 && at_end(i)) {
      if (ticket != nullptr) *ticket = value;
      source->clear();
      return ShowKind::kProfile;
    }
  }
  return ShowKind::kNone;
}

}  // namespace opd::oql
