// Lexer for OQL, the small declarative pipeline language that plays the role
// HiveQL plays in the paper (Section 2.1): analysts express queries as text;
// the system parses them into plans, annotates, optimizes, and rewrites.
//
//   foodies = scan TWTR
//           | project tweet_id, user_id, tweet_text
//           | udf UDF_CLASSIFY_FOOD_SCORE(threshold = 0.5);
//   counts  = scan TWTR | groupby user_id count(*) as n | filter n > 100;
//   result  = join foodies counts on user_id = user_id;

#ifndef OPD_OQL_LEXER_H_
#define OPD_OQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace opd::oql {

enum class TokenKind {
  kIdent,    // table / column / udf names and keywords
  kNumber,   // 123, -4.5
  kString,   // "wine_bar"
  kPipe,     // |
  kComma,    // ,
  kSemi,     // ;
  kAssign,   // =
  kLParen,   // (
  kRParen,   // )
  kStar,     // *
  kCmp,      // < <= > >= == !=
  kEnd,
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // identifier / literal / operator spelling
  int line = 1;
  int column = 1;

  std::string Describe() const;
};

/// \brief Tokenizes OQL source. `#` starts a to-end-of-line comment.
Result<std::vector<Token>> Lex(const std::string& source);

}  // namespace opd::oql

#endif  // OPD_OQL_LEXER_H_
