#include "oql/lexer.h"

#include <cctype>

namespace opd::oql {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kString:
      return "string";
    case TokenKind::kPipe:
      return "'|'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kSemi:
      return "';'";
    case TokenKind::kAssign:
      return "'='";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kCmp:
      return "comparison";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

std::string Token::Describe() const {
  std::string out = TokenKindName(kind);
  if (!text.empty() && kind != TokenKind::kEnd) out += " '" + text + "'";
  out += " at line " + std::to_string(line) + ":" + std::to_string(column);
  return out;
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& source) {
  std::vector<Token> tokens;
  int line = 1, column = 1;
  size_t i = 0;
  auto push = [&](TokenKind kind, std::string text, int col) {
    tokens.push_back(Token{kind, std::move(text), line, col});
  };

  while (i < source.size()) {
    char c = source[i];
    int start_col = column;
    if (c == '\n') {
      ++line;
      column = 1;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      ++column;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < source.size() && source[i] != '\n') ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < source.size() && IsIdentChar(source[i])) {
        ++i;
        ++column;
      }
      push(TokenKind::kIdent, source.substr(start, i - start), start_col);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < source.size() &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      size_t start = i;
      ++i;
      ++column;
      while (i < source.size() &&
             (std::isdigit(static_cast<unsigned char>(source[i])) ||
              source[i] == '.')) {
        ++i;
        ++column;
      }
      push(TokenKind::kNumber, source.substr(start, i - start), start_col);
      continue;
    }
    if (c == '"') {
      size_t start = ++i;
      ++column;
      while (i < source.size() && source[i] != '"' && source[i] != '\n') {
        ++i;
        ++column;
      }
      if (i >= source.size() || source[i] != '"') {
        return Status::InvalidArgument(
            "unterminated string literal at line " + std::to_string(line));
      }
      push(TokenKind::kString, source.substr(start, i - start), start_col);
      ++i;
      ++column;
      continue;
    }
    // Operators and punctuation.
    switch (c) {
      case '|':
        push(TokenKind::kPipe, "|", start_col);
        break;
      case ',':
        push(TokenKind::kComma, ",", start_col);
        break;
      case ';':
        push(TokenKind::kSemi, ";", start_col);
        break;
      case '(':
        push(TokenKind::kLParen, "(", start_col);
        break;
      case ')':
        push(TokenKind::kRParen, ")", start_col);
        break;
      case '*':
        push(TokenKind::kStar, "*", start_col);
        break;
      case '<':
      case '>': {
        std::string op(1, c);
        if (i + 1 < source.size() && source[i + 1] == '=') {
          op += '=';
          ++i;
          ++column;
        }
        push(TokenKind::kCmp, op, start_col);
        break;
      }
      case '!':
        if (i + 1 < source.size() && source[i + 1] == '=') {
          push(TokenKind::kCmp, "!=", start_col);
          ++i;
          ++column;
        } else {
          return Status::InvalidArgument("unexpected '!' at line " +
                                         std::to_string(line));
        }
        break;
      case '=':
        if (i + 1 < source.size() && source[i + 1] == '=') {
          push(TokenKind::kCmp, "==", start_col);
          ++i;
          ++column;
        } else {
          push(TokenKind::kAssign, "=", start_col);
        }
        break;
      default:
        return Status::InvalidArgument(
            std::string("unexpected character '") + c + "' at line " +
            std::to_string(line) + ":" + std::to_string(column));
    }
    ++i;
    ++column;
  }
  tokens.push_back(Token{TokenKind::kEnd, "", line, column});
  return tokens;
}

}  // namespace opd::oql
