// OQL printer: renders a plan DAG back into OQL text (the inverse of the
// parser). Shared subtrees become named bindings, reproducing the
// multi-statement structure of the original program.
//
// Round-trip property: ParseQuery(Print(plan)) produces a plan with the same
// fingerprint (modulo binding names).

#ifndef OPD_OQL_PRINTER_H_
#define OPD_OQL_PRINTER_H_

#include <string>

#include "common/status.h"
#include "plan/plan.h"

namespace opd::oql {

/// Renders `plan` as an OQL program whose last binding computes the result.
Result<std::string> Print(const plan::Plan& plan);

}  // namespace opd::oql

#endif  // OPD_OQL_PRINTER_H_
