// Cost-model accountability: after every executed job, the engine compares
// the optimizer's plan-time prediction (cost model over *estimated* rows and
// bytes) against the same model re-evaluated on the *observed* byte counts.
// The signed residual of that comparison is the measure of how much the
// estimation layer — cardinality estimates, view statistics, calibrated UDF
// scalars — drifts from reality. The CostAccountant keeps an EWMA of the
// residual per operator class so a Session can report when calibration has
// gone stale, and publishes `costmodel.job.residual_pct` /
// `costmodel.udf.drift` into the global MetricRegistry.

#ifndef OPD_OPTIMIZER_ACCOUNTABILITY_H_
#define OPD_OPTIMIZER_ACCOUNTABILITY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace opd::optimizer {

/// Signed residual in percent: 100 * (observed - predicted) / predicted.
/// Returns 0 when the prediction is too small to compare against (sub-
/// microsecond modeled jobs carry no calibration signal).
double ResidualPct(double predicted_s, double observed_s);

/// One executed job's prediction-vs-observation record.
struct JobResidual {
  /// Operator class: "PROJECT", "FILTER", "JOIN", "GROUPBY", or
  /// "UDF:<name>" (per-UDF classes carry the per-UDF calibration drift).
  std::string op_class;
  double predicted_s = 0;
  double observed_s = 0;
  double residual_pct = 0;
};

/// \brief Per-operator-class EWMA of cost-model residuals.
///
/// Thread-safe; Record() is called from the engine's serial finalize path,
/// readers may be any thread. Deterministic given a deterministic record
/// order (the engine finalizes jobs in topological order).
class CostAccountant {
 public:
  struct Options {
    /// EWMA weight of the newest residual.
    double ewma_alpha = 0.2;
    /// |EWMA| above this marks the class's calibration stale.
    double stale_threshold_pct = 25.0;
    /// Publish into obs::MetricRegistry::Global() on every Record().
    bool publish_metrics = true;
  };

  CostAccountant() = default;
  explicit CostAccountant(Options options) : options_(options) {}

  /// Folds one job's residual into its class EWMA (and the registry gauges
  /// when publishing is on).
  void Record(const JobResidual& residual);

  struct ClassDrift {
    std::string op_class;
    double ewma_pct = 0;
    uint64_t samples = 0;
    bool stale = false;
  };
  /// Every class seen so far, ordered by class name.
  std::vector<ClassDrift> Drifts() const;
  /// Classes whose |EWMA residual| exceeds the stale threshold.
  std::vector<std::string> StaleClasses() const;

  /// {"classes":[{"op_class":...,"ewma_residual_pct":...,...}],
  ///  "stale":[...]}.
  std::string ToJson() const;

  void Reset();

  const Options& options() const { return options_; }

 private:
  struct ClassState {
    double ewma = 0;
    uint64_t samples = 0;
  };

  Options options_;
  mutable std::mutex mu_;
  std::map<std::string, ClassState> classes_;
};

}  // namespace opd::optimizer

#endif  // OPD_OPTIMIZER_ACCOUNTABILITY_H_
