#include "optimizer/calibration.h"

#include <algorithm>
#include <chrono>

#include "common/rng.h"
#include "exec/udf_exec.h"

namespace opd::optimizer {

storage::Table SampleTable(const storage::Table& table, double fraction,
                           uint64_t seed) {
  storage::Table sample(table.name() + "_sample", table.schema());
  Rng rng(seed);
  for (const auto& row : table.rows()) {
    if (rng.Bernoulli(fraction)) {
      (void)sample.AppendRow(row);
    }
  }
  // Guarantee a non-empty sample for tiny inputs.
  if (sample.num_rows() == 0 && table.num_rows() > 0) {
    size_t take = std::min<size_t>(table.num_rows(), 16);
    for (size_t i = 0; i < take; ++i) (void)sample.AppendRow(table.row(i));
  }
  return sample;
}

double MeasureBaselineThroughput(const storage::Table& table) {
  auto start = std::chrono::steady_clock::now();
  uint64_t bytes = 0;
  // A trivial type-1 operation: copy rows and tally widths.
  for (const auto& row : table.rows()) {
    storage::Row copy = row;
    bytes += storage::RowByteSize(copy);
  }
  auto end = std::chrono::steady_clock::now();
  double secs = std::chrono::duration<double>(end - start).count();
  if (secs <= 0) secs = 1e-9;
  return static_cast<double>(std::max<uint64_t>(bytes, 1)) / secs;
}

Status CalibrateUdf(udf::UdfDefinition* udf, const storage::Table& input,
                    const udf::Params& params,
                    const CalibrationOptions& options) {
  storage::Table sample =
      SampleTable(input, options.sample_fraction, options.seed);
  if (sample.num_rows() == 0) {
    return Status::InvalidArgument("cannot calibrate on empty input: " +
                                   udf->name);
  }
  const double baseline_bps = MeasureBaselineThroughput(sample);

  storage::Table out;
  std::vector<exec::LfStageRun> stages;
  OPD_RETURN_NOT_OK(
      exec::RunLocalFunctions(*udf, sample, params, &out, &stages));

  auto clamp = [&](double s) {
    return std::clamp(s, options.min_scalar, options.max_scalar);
  };

  double map_seconds = 0, reduce_seconds = 0;
  uint64_t map_bytes = 0, reduce_bytes = 0;
  for (const exec::LfStageRun& run : stages) {
    if (run.kind == udf::LfKind::kMap) {
      map_seconds += run.wall_seconds;
      map_bytes += run.in_bytes;
    } else {
      reduce_seconds += run.wall_seconds;
      reduce_bytes += run.in_bytes;
    }
  }
  if (map_bytes > 0 && map_seconds > 0) {
    double udf_bps = static_cast<double>(map_bytes) / map_seconds;
    udf->map_scalar = clamp(baseline_bps / udf_bps);
  } else {
    udf->map_scalar = 1.0;
  }
  if (reduce_bytes > 0 && reduce_seconds > 0) {
    double udf_bps = static_cast<double>(reduce_bytes) / reduce_seconds;
    udf->reduce_scalar = clamp(baseline_bps / udf_bps);
  } else {
    udf->reduce_scalar = 1.0;
  }
  udf->calibrated_expansion =
      static_cast<double>(out.num_rows()) /
      static_cast<double>(std::max<size_t>(sample.num_rows(), 1));
  return Status::OK();
}

}  // namespace opd::optimizer
