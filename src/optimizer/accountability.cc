#include "optimizer/accountability.h"

#include <cctype>
#include <cmath>

#include "common/json_writer.h"
#include "obs/metrics.h"

namespace opd::optimizer {

namespace {

/// Sub-microsecond predictions are modeling noise, not calibration signal.
constexpr double kMinComparableSeconds = 1e-6;

/// "UDF:UDF_CLASSIFY_WINE_SCORE" -> "udf_classify_wine_score": the
/// registry's `<subsystem>.<object>.<event>` convention is lowercase
/// [a-z0-9_] segments.
std::string SanitizeForMetricName(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    out.push_back(std::isalnum(u) ? static_cast<char>(std::tolower(u)) : '_');
  }
  return out;
}

}  // namespace

double ResidualPct(double predicted_s, double observed_s) {
  if (predicted_s < kMinComparableSeconds) return 0;
  return 100.0 * (observed_s - predicted_s) / predicted_s;
}

void CostAccountant::Record(const JobResidual& residual) {
  double ewma = 0;
  double max_udf_drift = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ClassState& state = classes_[residual.op_class];
    if (state.samples == 0) {
      state.ewma = residual.residual_pct;
    } else {
      state.ewma = options_.ewma_alpha * residual.residual_pct +
                   (1.0 - options_.ewma_alpha) * state.ewma;
    }
    state.samples += 1;
    ewma = state.ewma;
    for (const auto& [name, cls] : classes_) {
      if (name.rfind("UDF:", 0) == 0) {
        max_udf_drift = std::max(max_udf_drift, std::fabs(cls.ewma));
      }
    }
  }
  if (!options_.publish_metrics) return;
  auto& registry = obs::MetricRegistry::Global();
  registry.histogram("costmodel.job.residual_pct")
      .Observe(std::fabs(residual.residual_pct));
  if (residual.op_class.rfind("UDF:", 0) == 0) {
    // Per-UDF drift gauge plus the worst-offender summary gauge Session
    // dashboards can alert on. Name built outside the gauge() call so the
    // metric-name lint sees no (necessarily incomplete) literal prefix.
    const std::string per_udf_gauge =
        "costmodel.udf." + SanitizeForMetricName(residual.op_class.substr(4)) +
        "_drift";
    registry.gauge(per_udf_gauge).Set(ewma);
    registry.gauge("costmodel.udf.drift").Set(max_udf_drift);
  }
}

std::vector<CostAccountant::ClassDrift> CostAccountant::Drifts() const {
  std::vector<ClassDrift> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(classes_.size());
  for (const auto& [name, state] : classes_) {
    ClassDrift d;
    d.op_class = name;
    d.ewma_pct = state.ewma;
    d.samples = state.samples;
    d.stale = std::fabs(state.ewma) > options_.stale_threshold_pct;
    out.push_back(std::move(d));
  }
  return out;
}

std::vector<std::string> CostAccountant::StaleClasses() const {
  std::vector<std::string> out;
  for (const ClassDrift& d : Drifts()) {
    if (d.stale) out.push_back(d.op_class);
  }
  return out;
}

std::string CostAccountant::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("stale_threshold_pct").Double(options_.stale_threshold_pct);
  w.Key("classes").BeginArray();
  for (const ClassDrift& d : Drifts()) {
    w.BeginObject();
    w.Key("op_class").String(d.op_class);
    w.Key("ewma_residual_pct").Double(d.ewma_pct);
    w.Key("samples").UInt(d.samples);
    w.Key("stale").Bool(d.stale);
    w.EndObject();
  }
  w.EndArray();
  w.Key("stale").BeginArray();
  for (const std::string& name : StaleClasses()) w.String(name);
  w.EndArray();
  w.EndObject();
  return w.Take();
}

void CostAccountant::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  classes_.clear();
}

}  // namespace opd::optimizer
