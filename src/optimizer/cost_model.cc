#include "optimizer/cost_model.h"

#include <algorithm>

namespace opd::optimizer {

plan::JobCostInfo CostModel::JobCost(double in_bytes, double shuffle_bytes,
                                     double out_bytes, double map_cpu_scalar,
                                     double reduce_cpu_scalar,
                                     bool has_shuffle) const {
  plan::JobCostInfo c;
  const double in_mb = Scaled(in_bytes) / kMB;
  const double shuf_mb = Scaled(shuffle_bytes) / kMB;
  const double out_mb = Scaled(out_bytes) / kMB;

  c.read_s = in_mb / params_.read_MBps;
  c.cpu_s = map_cpu_scalar * in_mb / params_.cpu_MBps;
  if (has_shuffle) {
    c.shuffle_s = shuf_mb / params_.sort_MBps + shuf_mb / params_.net_MBps;
    c.cpu_s += reduce_cpu_scalar * shuf_mb / params_.cpu_MBps;
  }
  c.write_s = out_mb / params_.write_MBps;
  c.latency_s = params_.job_latency_s;
  c.total_s = c.read_s + c.cpu_s + c.shuffle_s + c.write_s + c.latency_s;
  return c;
}

double CostModel::ReadCost(double bytes) const {
  return Scaled(bytes) / kMB / params_.read_MBps;
}

double CostModel::CheapestOpCpu(double bytes) const {
  // All three operation types share the baseline per-byte CPU rate before
  // calibration; the cheapest operation is therefore one baseline pass.
  return Scaled(bytes) / kMB / params_.cpu_MBps;
}

}  // namespace opd::optimizer
