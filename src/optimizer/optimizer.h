// The query optimizer: annotation + cardinality estimation + job costing.
//
// Hive "lacks a mature query optimizer and cannot cost UDFs" (Section 2.1);
// like the paper's prototype we implement our own optimizer around the
// MRShare cost model, extended to UDFs via calibrated scalars.

#ifndef OPD_OPTIMIZER_OPTIMIZER_H_
#define OPD_OPTIMIZER_OPTIMIZER_H_

#include "catalog/catalog.h"
#include "catalog/view_store.h"
#include "common/status.h"
#include "optimizer/cost_model.h"
#include "plan/annotate.h"
#include "plan/job.h"
#include "plan/plan.h"
#include "udf/udf_registry.h"

namespace opd::optimizer {

/// Selectivity defaults used when no better statistics exist.
struct OptimizerOptions {
  double cmp_selectivity = 0.33;
  double eq_selectivity = 0.05;
  double opaque_selectivity = 0.5;
  /// Width assumed for derived columns with no better information.
  double default_col_bytes = 8.0;
};

/// \brief Annotates plans and produces per-node cost estimates.
class Optimizer {
 public:
  Optimizer(plan::AnnotationContext ctx, CostModel model,
            OptimizerOptions options = {})
      : ctx_(ctx), model_(model), options_(options) {}

  /// Annotates (AFK + schema), estimates cardinalities, and costs every node
  /// of `plan`. Idempotent; resets previous estimates.
  Status Prepare(plan::Plan* plan) const;

  /// Total estimated cost of the plan (sum of its jobs' costs); runs Prepare.
  Result<double> PlanCost(plan::Plan* plan) const;

  const CostModel& cost_model() const { return model_; }
  const plan::AnnotationContext& context() const { return ctx_; }
  const OptimizerOptions& options() const { return options_; }

 private:
  Status EstimateNode(plan::OpNode* node) const;
  Status CostNode(plan::OpNode* node) const;

  plan::AnnotationContext ctx_;
  CostModel model_;
  OptimizerOptions options_;
};

}  // namespace opd::optimizer

#endif  // OPD_OPTIMIZER_OPTIMIZER_H_
