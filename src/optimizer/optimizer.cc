#include "optimizer/optimizer.h"

#include <algorithm>
#include <cmath>

namespace opd::optimizer {

using plan::OpKind;
using plan::OpNode;

namespace {

double SumWidths(const OpNode& node) {
  double total = 0;
  for (const auto& col : node.out_schema.columns()) {
    auto it = node.est_col_bytes.find(col.name);
    total += it == node.est_col_bytes.end() ? 8.0 : it->second;
  }
  return total;
}

void FinishBytes(OpNode* node) {
  node->est_out_bytes = node->est_rows * SumWidths(*node);
}

// Caps every distinct estimate at the row count.
void CapDistinct(OpNode* node) {
  for (auto& [_, d] : node->est_distinct) {
    d = std::min(d, std::max(node->est_rows, 1.0));
  }
}

}  // namespace

Status Optimizer::EstimateNode(plan::OpNode* node) const {
  node->est_col_bytes.clear();
  node->est_distinct.clear();
  switch (node->kind) {
    case OpKind::kScan: {
      const catalog::TableStats* stats = nullptr;
      if (node->view_id >= 0) {
        OPD_ASSIGN_OR_RETURN(const catalog::ViewDefinition* def,
                             ctx_.views->Find(node->view_id));
        stats = &def->stats;
      } else {
        OPD_ASSIGN_OR_RETURN(const catalog::BaseTableEntry* entry,
                             ctx_.catalog->Find(node->table));
        stats = &entry->stats;
      }
      node->est_rows = stats->rows;
      for (const auto& col : node->out_schema.columns()) {
        node->est_col_bytes[col.name] =
            stats->ColBytesOr(col.name, options_.default_col_bytes);
        node->est_distinct[col.name] = stats->DistinctOr(col.name, stats->rows);
      }
      break;
    }
    case OpKind::kProject: {
      const OpNode& child = *node->children[0];
      node->est_rows = child.est_rows;
      for (const std::string& name : node->project) {
        auto wb = child.est_col_bytes.find(name);
        node->est_col_bytes[name] =
            wb == child.est_col_bytes.end() ? options_.default_col_bytes
                                            : wb->second;
        auto d = child.est_distinct.find(name);
        node->est_distinct[name] =
            d == child.est_distinct.end() ? child.est_rows : d->second;
      }
      break;
    }
    case OpKind::kFilter: {
      const OpNode& child = *node->children[0];
      double sel = options_.opaque_selectivity;
      if (node->filter.kind == plan::FilterCond::Kind::kCompare) {
        sel = node->filter.op == afk::CmpOp::kEq ? options_.eq_selectivity
                                                 : options_.cmp_selectivity;
      }
      node->est_rows = child.est_rows * sel;
      node->est_col_bytes = child.est_col_bytes;
      node->est_distinct = child.est_distinct;
      break;
    }
    case OpKind::kJoin: {
      const OpNode& left = *node->children[0];
      const OpNode& right = *node->children[1];
      double denom = 1.0;
      for (const auto& [lname, rname] : node->join.pairs) {
        auto ld = left.est_distinct.count(lname)
                      ? left.est_distinct.at(lname)
                      : std::max(left.est_rows, 1.0);
        auto rd = right.est_distinct.count(rname)
                      ? right.est_distinct.at(rname)
                      : std::max(right.est_rows, 1.0);
        denom = std::max(denom, std::max(ld, rd));
      }
      node->est_rows = left.est_rows * right.est_rows / std::max(denom, 1.0);
      node->est_col_bytes = left.est_col_bytes;
      node->est_distinct = left.est_distinct;
      // Right columns that survived the join (they are in out_schema).
      for (const auto& col : node->out_schema.columns()) {
        if (!node->est_col_bytes.count(col.name)) {
          auto wb = right.est_col_bytes.find(col.name);
          node->est_col_bytes[col.name] =
              wb == right.est_col_bytes.end() ? options_.default_col_bytes
                                              : wb->second;
          auto d = right.est_distinct.find(col.name);
          node->est_distinct[col.name] =
              d == right.est_distinct.end() ? right.est_rows : d->second;
        }
      }
      break;
    }
    case OpKind::kGroupByAgg: {
      const OpNode& child = *node->children[0];
      double groups = 1.0;
      for (const std::string& key : node->group.keys) {
        auto d = child.est_distinct.find(key);
        groups *= d == child.est_distinct.end() ? std::max(child.est_rows, 1.0)
                                                : std::max(d->second, 1.0);
      }
      node->est_rows = std::min(groups, std::max(child.est_rows, 0.0));
      for (const std::string& key : node->group.keys) {
        auto wb = child.est_col_bytes.find(key);
        node->est_col_bytes[key] = wb == child.est_col_bytes.end()
                                       ? options_.default_col_bytes
                                       : wb->second;
        auto d = child.est_distinct.find(key);
        node->est_distinct[key] =
            d == child.est_distinct.end() ? node->est_rows : d->second;
      }
      for (const auto& agg : node->group.aggs) {
        node->est_col_bytes[agg.output] = 8.0;
        node->est_distinct[agg.output] = node->est_rows;
      }
      break;
    }
    case OpKind::kUdf: {
      const OpNode& child = *node->children[0];
      OPD_ASSIGN_OR_RETURN(const udf::UdfDefinition* def,
                           ctx_.udfs->Find(node->udf.udf_name));
      node->est_rows = std::max(child.est_rows * def->expansion(), 0.0);
      for (const auto& col : node->out_schema.columns()) {
        auto wb = child.est_col_bytes.find(col.name);
        if (wb != child.est_col_bytes.end()) {
          node->est_col_bytes[col.name] = wb->second;
        } else {
          node->est_col_bytes[col.name] =
              col.type == storage::DataType::kString
                  ? 2 * options_.default_col_bytes
                  : options_.default_col_bytes;
        }
        auto d = child.est_distinct.find(col.name);
        node->est_distinct[col.name] =
            d == child.est_distinct.end() ? node->est_rows : d->second;
      }
      break;
    }
  }
  CapDistinct(node);
  FinishBytes(node);
  return Status::OK();
}

Status Optimizer::CostNode(plan::OpNode* node) const {
  if (node->kind == OpKind::kScan) {
    // Scans are folded into the consuming job's read phase.
    node->cost = plan::JobCostInfo{};
    return Status::OK();
  }
  double in_bytes = 0;
  for (const auto& child : node->children) in_bytes += child->est_out_bytes;

  bool has_shuffle = false;
  double map_scalar = 1.0, reduce_scalar = 1.0;
  switch (node->kind) {
    case OpKind::kJoin:
    case OpKind::kGroupByAgg:
      has_shuffle = true;
      break;
    case OpKind::kUdf: {
      OPD_ASSIGN_OR_RETURN(const udf::UdfDefinition* def,
                           ctx_.udfs->Find(node->udf.udf_name));
      has_shuffle = def->HasShuffle();
      map_scalar = def->map_scalar;
      reduce_scalar = def->reduce_scalar;
      break;
    }
    default:
      break;
  }
  const double shuffle_bytes = has_shuffle ? in_bytes : 0.0;
  node->cost = model_.JobCost(in_bytes, shuffle_bytes, node->est_out_bytes,
                              map_scalar, reduce_scalar, has_shuffle);
  return Status::OK();
}

Status Optimizer::Prepare(plan::Plan* plan) const {
  OPD_RETURN_NOT_OK(plan::AnnotatePlan(*plan, ctx_));
  for (const plan::OpNodePtr& node : plan->TopoOrder()) {
    OPD_RETURN_NOT_OK(EstimateNode(node.get()));
    OPD_RETURN_NOT_OK(CostNode(node.get()));
  }
  return Status::OK();
}

Result<double> Optimizer::PlanCost(plan::Plan* plan) const {
  OPD_RETURN_NOT_OK(Prepare(plan));
  double total = 0;
  for (const plan::OpNodePtr& node : plan->TopoOrder()) {
    total += node->cost.total_s;
  }
  return total;
}

}  // namespace opd::optimizer
