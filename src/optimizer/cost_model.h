// The MRShare-style "data" cost model (Nykiel et al. [21]) extended with
// computational scalars for UDF local functions (paper Section 4.2).
//
// The cost of one MR job is Cm + Cs + Ct + Cr + Cw:
//   Cm: read input + apply map task        Cs: sort and copy
//   Ct: transfer (shuffle) over network    Cr: aggregate + apply reduce task
//   Cw: materialize output (with replication)
// plus a fixed per-job startup latency, which is what makes saved jobs
// valuable.
//
// All byte quantities are *actual* simulator bytes; `data_scale` maps them to
// modeled-cluster bytes (the synthetic logs are laptop-sized stand-ins for
// the paper's 1 TB+ datasets).

#ifndef OPD_OPTIMIZER_COST_MODEL_H_
#define OPD_OPTIMIZER_COST_MODEL_H_

#include "plan/operator.h"

namespace opd::optimizer {

/// Cluster model parameters. Defaults loosely model the paper's 20-node
/// Hadoop 0.20 cluster.
struct CostParams {
  double read_MBps = 1000.0;    // aggregate HDFS read bandwidth
  double write_MBps = 500.0;    // aggregate HDFS write (3x replication)
  double sort_MBps = 800.0;     // map-side sort + spill
  double net_MBps = 400.0;      // cross-rack shuffle bandwidth
  double cpu_MBps = 2000.0;     // baseline per-operation processing rate
  double job_latency_s = 8.0;   // MR job startup/teardown
  double data_scale = 1.0;      // modeled bytes per actual simulator byte
};

/// \brief Produces per-job cost estimates.
class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(CostParams params) : params_(params) {}

  const CostParams& params() const { return params_; }
  void set_data_scale(double scale) { params_.data_scale = scale; }

  /// Cost of one MR job.
  ///
  /// \param in_bytes       bytes read from the DFS (map input)
  /// \param shuffle_bytes  map-output bytes sorted/transferred (0 for
  ///                       map-only jobs)
  /// \param out_bytes      bytes written to the DFS
  /// \param map_cpu_scalar  calibrated multiplier for the map computation
  /// \param reduce_cpu_scalar calibrated multiplier for the reduce
  /// \param has_shuffle    whether the job has a reduce phase
  plan::JobCostInfo JobCost(double in_bytes, double shuffle_bytes,
                            double out_bytes, double map_cpu_scalar,
                            double reduce_cpu_scalar, bool has_shuffle) const;

  /// Time to read `bytes` from the DFS (the mandatory part of any job that
  /// consumes a view).
  double ReadCost(double bytes) const;

  /// CPU time of the *cheapest* single operation type over `bytes` — the
  /// non-subsumable cost property bound (Definition 1) used by OPTCOST.
  double CheapestOpCpu(double bytes) const;

  double job_latency() const { return params_.job_latency_s; }

 private:
  double Scaled(double bytes) const { return bytes * params_.data_scale; }
  static constexpr double kMB = 1024.0 * 1024.0;

  CostParams params_;
};

}  // namespace opd::optimizer

#endif  // OPD_OPTIMIZER_COST_MODEL_H_
