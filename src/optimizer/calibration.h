// UDF cost calibration (Section 4.2): "the first time the UDF is added to
// the system, we execute the UDF on a 1% uniform random sample of the input
// data to determine the scalar values" for Cm and Cr.

#ifndef OPD_OPTIMIZER_CALIBRATION_H_
#define OPD_OPTIMIZER_CALIBRATION_H_

#include "common/status.h"
#include "storage/table.h"
#include "udf/udf_registry.h"

namespace opd::optimizer {

struct CalibrationOptions {
  double sample_fraction = 0.01;
  uint64_t seed = 7;
  /// Scalars are clamped into [min_scalar, max_scalar]. The lower bound of
  /// 1.0 preserves the OPTCOST invariant: the baseline (cheapest-op) CPU
  /// rate is the floor of any calibrated local function.
  double min_scalar = 1.0;
  double max_scalar = 64.0;
};

/// Draws a uniform random sample of `fraction` of the rows.
storage::Table SampleTable(const storage::Table& table, double fraction,
                           uint64_t seed);

/// \brief Calibrates one UDF against a representative input.
///
/// Runs the UDF's local functions on a sample of `input`, measures the real
/// per-byte processing rate of the map and reduce stages relative to a
/// baseline pass, and sets `map_scalar` / `reduce_scalar` /
/// `calibrated_expansion` on the definition.
Status CalibrateUdf(udf::UdfDefinition* udf, const storage::Table& input,
                    const udf::Params& params,
                    const CalibrationOptions& options = {});

/// Measures the baseline per-byte throughput (bytes/sec) of a trivial
/// attribute-copying pass over `table` — the denominator for scalars.
double MeasureBaselineThroughput(const storage::Table& table);

}  // namespace opd::optimizer

#endif  // OPD_OPTIMIZER_CALIBRATION_H_
