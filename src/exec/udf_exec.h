// Executes a UDF's local-function pipeline over real rows, mirroring the MR
// runtime: map functions stream per tuple; reduce functions receive one key
// group at a time.

#ifndef OPD_EXEC_UDF_EXEC_H_
#define OPD_EXEC_UDF_EXEC_H_

#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/trace.h"
#include "storage/table.h"
#include "udf/udf.h"

namespace opd::exec {

/// Per-stage execution record (used for calibration and shuffle accounting).
struct LfStageRun {
  std::string lf_name;
  udf::LfKind kind = udf::LfKind::kMap;
  uint64_t in_bytes = 0;
  uint64_t out_bytes = 0;
  uint64_t in_rows = 0;
  uint64_t out_rows = 0;
  double wall_seconds = 0;  // real CPU wall time of the user code
  double max_task_seconds = 0;  // slowest task of this stage's wave
};

/// How a local-function pipeline is parallelized. The defaults (null pool)
/// run serially; the engine passes its pool and the DFS block size. Task
/// granularity never changes results — stage outputs are merged in a
/// deterministic order.
struct UdfExecOptions {
  ThreadPool* pool = nullptr;     // null => run tasks inline
  uint64_t block_size_bytes = 64 * 1024;  // map split size (Dfs default)
  int num_reduce_tasks = 0;       // 0 => derived from stage input size
  /// Morsel-driven pipelined stage execution: consecutive map stages fuse
  /// into one row loop per split, and reduce-stage shuffles run latch
  /// scheduled (storage::PartitionBuffer + RunPipelinedShuffle) instead of
  /// partition-barrier-scatter-reduce. Off by default so standalone users
  /// (e.g. cost-model calibration) keep the phased waves; the engine opts
  /// in via EngineOptions::pipelined. Results are byte-identical.
  bool pipelined = false;
  /// Flat open-addressing group index + vectorized key hashing for the
  /// reduce stage (see EngineOptions::flat_hash; the engine forwards its
  /// setting). Results are byte-identical either way.
  bool flat_hash = true;
  /// Tracing hooks (see obs/trace.h): each local function opens a
  /// "stage:<name>" span under `parent_span`, with per-wave phase spans
  /// (and task spans when `trace_tasks`). Null trace = no overhead.
  obs::Trace* trace = nullptr;
  uint64_t parent_span = 0;
  bool trace_tasks = true;
  /// Optional accumulator for the number of tasks launched across stages.
  size_t* tasks = nullptr;
};

/// \brief Runs all local functions of `udf` over `input`.
///
/// \param[out] output  the final stage's output table (named later by caller)
/// \param[out] stages  optional per-stage accounting
Status RunLocalFunctions(const udf::UdfDefinition& udf,
                         const storage::Table& input,
                         const udf::Params& params, storage::Table* output,
                         std::vector<LfStageRun>* stages = nullptr,
                         const UdfExecOptions& exec_options = {});

}  // namespace opd::exec

#endif  // OPD_EXEC_UDF_EXEC_H_
