// Execution metrics reported by the MR simulator.

#ifndef OPD_EXEC_METRICS_H_
#define OPD_EXEC_METRICS_H_

#include <cstdint>
#include <string>

namespace opd::exec {

/// \brief What one plan execution cost, in modeled cluster time and actual
/// data movement (the paper's Figures 7-8 metrics).
struct ExecMetrics {
  /// Modeled cluster execution time (cost model applied to observed bytes).
  double sim_time_s = 0;
  /// Statistics-collection overhead (the lightweight sampling Map jobs),
  /// in *modeled* cluster time. Zero whenever stats collection is off —
  /// the sampling job never ran, so there is nothing to model.
  double stats_time_s = 0;
  /// Real measured wall-clock of the StatsCollector passes. Like
  /// max_task_time_s this varies run to run and is excluded from
  /// determinism comparisons.
  double stats_wall_time_s = 0;
  /// Actual bytes read from the DFS across all jobs.
  uint64_t bytes_read = 0;
  /// Rows fed into jobs (base tables, views, and intermediates alike —
  /// the row-count twin of bytes_read). Deterministic for a given plan.
  uint64_t rows_read = 0;
  /// Actual bytes sorted/transferred in shuffles.
  uint64_t bytes_shuffled = 0;
  /// Actual bytes written to the DFS.
  uint64_t bytes_written = 0;
  int jobs = 0;
  int views_created = 0;
  /// Sum over jobs of the wall-clock time of each job's slowest task (the
  /// simulated straggler). Unlike the byte counters this is real measured
  /// time, so it varies run to run; it feeds the cost model's future
  /// straggler accounting and is excluded from determinism comparisons.
  double max_task_time_s = 0;

  /// Total "data manipulated" (read + shuffled + written), Figure 8(b).
  uint64_t BytesManipulated() const {
    return bytes_read + bytes_shuffled + bytes_written;
  }
  /// Total reported time including statistics collection.
  double TotalTime() const { return sim_time_s + stats_time_s; }

  ExecMetrics& operator+=(const ExecMetrics& other);
  std::string ToString() const;
  /// One flat JSON object with every field plus the derived totals — the
  /// single serialization used by bench --json and the trace export.
  std::string ToJson() const;
};

}  // namespace opd::exec

#endif  // OPD_EXEC_METRICS_H_
