// Morsel-driven pipelined shuffle execution (DESIGN.md "Parallel execution
// model").
//
// A shuffle runs as one wave of fused producer tasks (scan -> operator ->
// partition in a single loop over an input split, writing into a
// storage::PartitionBuffer) plus one consumer task per shuffle bucket. There
// is no phase barrier: each bucket carries a countdown latch initialized to
// the producer count, every finishing producer decrements every bucket's
// latch, and the decrement that reaches zero schedules that bucket's
// consumer immediately — buckets whose inputs are complete reduce while
// other producers are still running.
//
// Determinism contract (same as the phased engine): every task runs to
// completion, the lowest-index failure wins (producers before consumers),
// and trace span ids are allocated serially before any task starts, so the
// span structure is identical at every thread count.

#ifndef OPD_EXEC_PIPELINE_H_
#define OPD_EXEC_PIPELINE_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace opd::exec {

/// Execution context for one pipelined shuffle: the task pool plus the
/// observability hooks. A null trace makes all span work vanish.
struct PipelineCtx {
  ThreadPool* pool = nullptr;  // null => run every task inline
  obs::Trace* trace = nullptr;
  uint64_t parent_span = 0;  // job (or UDF stage) span
  bool trace_tasks = true;
  size_t* tasks = nullptr;  // accumulates producer + consumer task counts
};

/// \brief Runs `num_producers` fused producer tasks and, once per bucket's
/// producers have all finished, that bucket's consumer task.
///
/// `num_buckets == 0` degenerates to a map-only pipeline wave (no
/// consumers). Under a trace this opens a "pipeline" phase span (task spans
/// "pipeline:<i>") and, when buckets exist, a "reduce" phase span with one
/// "bucket:<b>" span per consumer.
///
/// \param[out] max_producer_seconds / max_consumer_seconds  wall time of the
///   slowest producer / consumer task (the wave's modeled stragglers).
Status RunPipelinedShuffle(const PipelineCtx& ctx, size_t num_producers,
                           const std::function<Status(size_t)>& producer,
                           size_t num_buckets,
                           const std::function<Status(size_t)>& consumer,
                           double* max_producer_seconds = nullptr,
                           double* max_consumer_seconds = nullptr);

}  // namespace opd::exec

#endif  // OPD_EXEC_PIPELINE_H_
