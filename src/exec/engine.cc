#include "exec/engine.h"

#include <algorithm>
#include <map>

#include "exec/udf_exec.h"
#include "plan/fingerprint.h"

namespace opd::exec {

using plan::OpKind;
using plan::OpNode;
using plan::OpNodePtr;
using storage::Row;
using storage::Schema;
using storage::Table;
using storage::TablePtr;
using storage::Value;

namespace {

struct RowLess {
  bool operator()(const Row& a, const Row& b) const {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      if (a[i] < b[i]) return true;
      if (b[i] < a[i]) return false;
    }
    return a.size() < b.size();
  }
};

// Aggregation state for one group.
struct AggState {
  int64_t count = 0;
  double sum = 0;
  bool has = false;
  Value min, max;

  void Update(const Value& v) {
    ++count;
    sum += v.ToDouble();
    if (!has || v < min) min = v;
    if (!has || max < v) max = v;
    has = true;
  }
};

Value FinishAgg(const plan::AggSpec& spec, const AggState& s,
                storage::DataType out_type) {
  switch (spec.fn) {
    case plan::AggFn::kCount:
      return Value(s.count);
    case plan::AggFn::kSum:
      return out_type == storage::DataType::kInt64
                 ? Value(static_cast<int64_t>(s.sum))
                 : Value(s.sum);
    case plan::AggFn::kAvg:
      return s.count == 0 ? Value::Null()
                          : Value(s.sum / static_cast<double>(s.count));
    case plan::AggFn::kMin:
      return s.has ? s.min : Value::Null();
    case plan::AggFn::kMax:
      return s.has ? s.max : Value::Null();
  }
  return Value::Null();
}

// Column resolver returning Status-checked indices.
Result<size_t> ColIndex(const Schema& schema, const std::string& name) {
  auto idx = schema.IndexOf(name);
  if (!idx) return Status::NotFound("column not found at exec: " + name);
  return *idx;
}

}  // namespace

Result<ExecResult> Engine::Execute(plan::Plan* plan) {
  OPD_RETURN_NOT_OK(optimizer_->Prepare(plan));
  const int run_id = run_counter_++;
  const auto& ctx = optimizer_->context();
  const auto& model = optimizer_->cost_model();

  ExecMetrics metrics;
  std::map<const OpNode*, TablePtr> results;
  int job_counter = 0;

  for (const OpNodePtr& node_ptr : plan->TopoOrder()) {
    OpNode* node = node_ptr.get();

    if (node->kind == OpKind::kScan) {
      std::string path;
      if (node->view_id >= 0) {
        OPD_ASSIGN_OR_RETURN(const catalog::ViewDefinition* def,
                             ctx.views->Find(node->view_id));
        path = def->dfs_path;
      } else {
        OPD_ASSIGN_OR_RETURN(const catalog::BaseTableEntry* entry,
                             ctx.catalog->Find(node->table));
        path = entry->dfs_path;
      }
      OPD_ASSIGN_OR_RETURN(TablePtr table, dfs_->Read(path));
      results[node] = table;
      // Scan bytes are accounted in the consuming job's read phase below.
      continue;
    }

    // Gather inputs.
    std::vector<TablePtr> inputs;
    uint64_t in_bytes = 0;
    for (const OpNodePtr& child : node->children) {
      auto it = results.find(child.get());
      if (it == results.end()) {
        return Status::Internal("missing child result for " +
                                node->DisplayName());
      }
      inputs.push_back(it->second);
      in_bytes += it->second->ByteSize();
    }

    Table out("", node->out_schema);
    uint64_t shuffle_bytes = 0;
    bool has_shuffle = false;
    double map_scalar = 1.0, reduce_scalar = 1.0;

    switch (node->kind) {
      case OpKind::kScan:
        break;  // handled above
      case OpKind::kProject: {
        const Table& in = *inputs[0];
        std::vector<size_t> idx;
        for (const std::string& name : node->project) {
          OPD_ASSIGN_OR_RETURN(size_t i, ColIndex(in.schema(), name));
          idx.push_back(i);
        }
        for (const Row& row : in.rows()) {
          Row r;
          r.reserve(idx.size());
          for (size_t i : idx) r.push_back(row[i]);
          OPD_RETURN_NOT_OK(out.AppendRow(std::move(r)));
        }
        break;
      }
      case OpKind::kFilter: {
        const Table& in = *inputs[0];
        const plan::FilterCond& cond = node->filter;
        if (cond.kind == plan::FilterCond::Kind::kCompare) {
          OPD_ASSIGN_OR_RETURN(size_t i, ColIndex(in.schema(), cond.column));
          for (const Row& row : in.rows()) {
            if (afk::EvalCmp(row[i], cond.op, cond.literal)) {
              OPD_RETURN_NOT_OK(out.AppendRow(row));
            }
          }
        } else {
          OPD_ASSIGN_OR_RETURN(const udf::PredicateFn* fn,
                               ctx.udfs->FindPredicate(cond.fn_name));
          std::vector<size_t> idx;
          for (const std::string& name : cond.arg_columns) {
            OPD_ASSIGN_OR_RETURN(size_t i, ColIndex(in.schema(), name));
            idx.push_back(i);
          }
          udf::Params params;  // opaque predicate params are pre-bound strings
          if (!cond.params.empty()) params["params"] = Value(cond.params);
          for (const Row& row : in.rows()) {
            std::vector<Value> args;
            args.reserve(idx.size());
            for (size_t i : idx) args.push_back(row[i]);
            if ((*fn)(args, params)) {
              OPD_RETURN_NOT_OK(out.AppendRow(row));
            }
          }
        }
        break;
      }
      case OpKind::kJoin: {
        const Table& left = *inputs[0];
        const Table& right = *inputs[1];
        has_shuffle = true;
        shuffle_bytes = in_bytes;  // both sides are re-partitioned by key
        std::vector<size_t> lkeys, rkeys;
        for (const auto& [lname, rname] : node->join.pairs) {
          OPD_ASSIGN_OR_RETURN(size_t li, ColIndex(left.schema(), lname));
          OPD_ASSIGN_OR_RETURN(size_t ri, ColIndex(right.schema(), rname));
          lkeys.push_back(li);
          rkeys.push_back(ri);
        }
        // Output column mapping: (from_left, index).
        std::vector<std::pair<bool, size_t>> out_map;
        for (const auto& col : node->out_schema.columns()) {
          if (auto li = left.schema().IndexOf(col.name)) {
            out_map.emplace_back(true, *li);
          } else {
            OPD_ASSIGN_OR_RETURN(size_t ri,
                                 ColIndex(right.schema(), col.name));
            out_map.emplace_back(false, ri);
          }
        }
        // Build on the right side.
        std::map<Row, std::vector<const Row*>, RowLess> build;
        for (const Row& row : right.rows()) {
          Row key;
          for (size_t i : rkeys) key.push_back(row[i]);
          build[std::move(key)].push_back(&row);
        }
        for (const Row& lrow : left.rows()) {
          Row key;
          for (size_t i : lkeys) key.push_back(lrow[i]);
          auto it = build.find(key);
          if (it == build.end()) continue;
          for (const Row* rrow : it->second) {
            Row r;
            r.reserve(out_map.size());
            for (const auto& [from_left, idx] : out_map) {
              r.push_back(from_left ? lrow[idx] : (*rrow)[idx]);
            }
            OPD_RETURN_NOT_OK(out.AppendRow(std::move(r)));
          }
        }
        break;
      }
      case OpKind::kGroupByAgg: {
        const Table& in = *inputs[0];
        has_shuffle = true;
        shuffle_bytes = in_bytes;
        std::vector<size_t> key_idx;
        for (const std::string& key : node->group.keys) {
          OPD_ASSIGN_OR_RETURN(size_t i, ColIndex(in.schema(), key));
          key_idx.push_back(i);
        }
        std::vector<std::optional<size_t>> agg_idx;
        for (const auto& spec : node->group.aggs) {
          if (spec.input.empty()) {
            agg_idx.push_back(std::nullopt);
          } else {
            OPD_ASSIGN_OR_RETURN(size_t i, ColIndex(in.schema(), spec.input));
            agg_idx.push_back(i);
          }
        }
        std::map<Row, std::vector<AggState>, RowLess> groups;
        for (const Row& row : in.rows()) {
          Row key;
          for (size_t i : key_idx) key.push_back(row[i]);
          auto& states = groups[std::move(key)];
          if (states.empty()) states.resize(node->group.aggs.size());
          for (size_t a = 0; a < states.size(); ++a) {
            states[a].Update(agg_idx[a] ? row[*agg_idx[a]]
                                        : Value(int64_t{1}));
          }
        }
        const auto& out_cols = node->out_schema.columns();
        for (const auto& [key, states] : groups) {
          Row r = key;
          for (size_t a = 0; a < states.size(); ++a) {
            r.push_back(FinishAgg(node->group.aggs[a], states[a],
                                  out_cols[key.size() + a].type));
          }
          OPD_RETURN_NOT_OK(out.AppendRow(std::move(r)));
        }
        break;
      }
      case OpKind::kUdf: {
        OPD_ASSIGN_OR_RETURN(const udf::UdfDefinition* def,
                             ctx.udfs->Find(node->udf.udf_name));
        std::vector<LfStageRun> stage_runs;
        OPD_RETURN_NOT_OK(RunLocalFunctions(*def, *inputs[0],
                                            node->udf.params, &out,
                                            &stage_runs));
        has_shuffle = def->HasShuffle();
        map_scalar = def->map_scalar;
        reduce_scalar = def->reduce_scalar;
        // Shuffle bytes: output of the last map stage before the first
        // reduce (the data that actually crosses the network).
        for (const LfStageRun& run : stage_runs) {
          if (run.kind == udf::LfKind::kReduce) {
            shuffle_bytes = run.in_bytes;
            break;
          }
        }
        break;
      }
    }

    const uint64_t out_bytes = out.ByteSize();
    plan::JobCostInfo jc = model.JobCost(
        static_cast<double>(in_bytes), static_cast<double>(shuffle_bytes),
        static_cast<double>(out_bytes), map_scalar, reduce_scalar,
        has_shuffle);
    metrics.sim_time_s += jc.total_s;
    metrics.bytes_read += in_bytes;
    metrics.bytes_shuffled += shuffle_bytes;
    metrics.bytes_written += out_bytes;
    metrics.jobs += 1;

    // Materialize the job output to the DFS (Hive materializes every job).
    const std::string path = "views/run" + std::to_string(run_id) + "/job" +
                             std::to_string(job_counter++);
    out.set_name(path);
    auto table = std::make_shared<const Table>(std::move(out));
    OPD_RETURN_NOT_OK(dfs_->Write(path, table));
    results[node] = table;

    if (options_.retain_views) {
      catalog::ViewDefinition def;
      def.dfs_path = path;
      def.afk = node->afk;
      def.out_attrs = node->out_attrs;
      def.schema = node->out_schema;
      def.fingerprint = plan::Fingerprint(node_ptr);
      def.bytes = out_bytes;
      def.producer = plan->name();
      if (options_.collect_stats) {
        def.stats = stats_.Collect(*table);
        metrics.stats_time_s += stats_.JobTime(*table, model);
      } else {
        def.stats.rows = static_cast<double>(table->num_rows());
        def.stats.avg_row_bytes = table->AvgRowBytes();
      }
      size_t before = views_->size();
      views_->Add(std::move(def));
      if (views_->size() > before) metrics.views_created += 1;
    }
  }

  auto sink = results.find(plan->root().get());
  if (sink == results.end()) {
    return Status::Internal("plan produced no sink result");
  }
  return ExecResult{sink->second, metrics};
}

}  // namespace opd::exec
