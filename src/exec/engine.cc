#include "exec/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "exec/expr/expr_program.h"
#include "exec/hash/flat_table.h"
#include "exec/hash/hash_kernels.h"
#include "exec/hash/recycler.h"
#include "exec/pipeline.h"
#include "exec/udf_exec.h"
#include "obs/metrics.h"
#include "plan/fingerprint.h"
#include "storage/partition_buffer.h"
#include "storage/row_batch.h"
#include "storage/value.h"

namespace opd::exec {

using plan::OpKind;
using plan::OpNode;
using plan::OpNodePtr;
using storage::ColumnVector;
using storage::DataType;
using storage::DictRemap;
using storage::PartitionBuffer;
using storage::Row;
using storage::RowBatch;
using storage::RowHash;
using storage::RowRange;
using storage::Schema;
using storage::Table;
using storage::TablePtr;
using storage::Value;

namespace {

// Operator class a job's cost residual is accounted under. UDFs get a class
// per UDF name: their map/reduce scalars are individually calibrated, so
// their drift is individually tracked.
std::string ResidualOpClass(const OpNode& node) {
  switch (node.kind) {
    case OpKind::kScan:
      return "SCAN";
    case OpKind::kProject:
      return "PROJECT";
    case OpKind::kFilter:
      return "FILTER";
    case OpKind::kJoin:
      return "JOIN";
    case OpKind::kGroupByAgg:
      return "GROUPBY";
    case OpKind::kUdf:
      return "UDF:" + node.udf.udf_name;
  }
  return "UNKNOWN";
}

// Aggregation state for one group.
struct AggState {
  int64_t count = 0;
  double sum = 0;
  bool has = false;
  Value min, max;

  void Update(const Value& v) {
    ++count;
    sum += v.ToDouble();
    if (!has || v < min) min = v;
    if (!has || max < v) max = v;
    has = true;
  }
};

Value FinishAgg(const plan::AggSpec& spec, const AggState& s,
                storage::DataType out_type) {
  switch (spec.fn) {
    case plan::AggFn::kCount:
      return Value(s.count);
    case plan::AggFn::kSum:
      return out_type == storage::DataType::kInt64
                 ? Value(static_cast<int64_t>(s.sum))
                 : Value(s.sum);
    case plan::AggFn::kAvg:
      return s.count == 0 ? Value::Null()
                          : Value(s.sum / static_cast<double>(s.count));
    case plan::AggFn::kMin:
      return s.has ? s.min : Value::Null();
    case plan::AggFn::kMax:
      return s.has ? s.max : Value::Null();
  }
  return Value::Null();
}

// Column resolver returning Status-checked indices.
Result<size_t> ColIndex(const Schema& schema, const std::string& name) {
  auto idx = schema.IndexOf(name);
  if (!idx) return Status::NotFound("column not found at exec: " + name);
  return *idx;
}

struct RowLess {
  bool operator()(const Row& a, const Row& b) const {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      if (a[i] < b[i]) return true;
      if (b[i] < a[i]) return false;
    }
    return a.size() < b.size();
  }
};

size_t DeriveReduceTasks(int requested, uint64_t shuffle_bytes,
                         uint64_t block_size_bytes) {
  if (requested > 0) return static_cast<size_t>(requested);
  if (block_size_bytes == 0) return 1;
  // One reduce task per block of shuffle input (mirrors the map-side block
  // split rule), capped so tiny jobs don't pay per-bucket overhead. Derived
  // from bytes only, so the bucketing is thread-count invariant.
  return std::min<uint64_t>(shuffle_bytes / block_size_bytes + 1, 64);
}

// Per-job execution context threaded through the phase helpers: the task
// pool plus the observability hooks (trace span parent, task counter). With
// a null trace every helper degenerates to a bare ParallelFor.
struct PhaseCtx {
  ThreadPool* pool = nullptr;
  obs::Trace* trace = nullptr;
  uint64_t job_span = 0;
  bool trace_tasks = true;
  size_t* tasks = nullptr;  // accumulates task counts across phases
};

// Runs one phase of `n` tasks under a "phase" span (and per-task spans when
// enabled). Span ids are allocated serially before the wave, so the span
// structure is identical at every thread count.
Status RunPhase(const PhaseCtx& ctx, const char* phase, size_t n,
                const std::function<Status(size_t)>& fn,
                double* max_task_seconds) {
  if (ctx.tasks != nullptr) *ctx.tasks += n;
  if (ctx.trace == nullptr) return ParallelFor(ctx.pool, n, fn, max_task_seconds);
  obs::TraceSpan span(ctx.trace, ctx.job_span, phase, "phase");
  span.AddArg("tasks", static_cast<uint64_t>(n));
  if (!ctx.trace_tasks) return ParallelFor(ctx.pool, n, fn, max_task_seconds);
  return obs::TracedParallelFor(ctx.pool, n, ctx.trace, span.id(), phase, fn,
                                max_task_seconds);
}

// Ratio of the fullest shuffle bucket to the mean bucket (1.0 = perfectly
// balanced); negative when there is nothing to measure.
template <typename Lists>
double BucketSkew(const Lists& lists) {
  size_t total = 0, largest = 0;
  for (const auto& l : lists) {
    total += l.size();
    largest = std::max(largest, l.size());
  }
  if (lists.empty() || total == 0) return -1.0;
  return static_cast<double>(largest) * static_cast<double>(lists.size()) /
         static_cast<double>(total);
}

// BucketSkew over a pipelined partition buffer: same definition, computed
// from per-bucket totals instead of scattered index lists.
template <typename T>
double BufferSkew(const PartitionBuffer<T>& buf) {
  size_t total = 0, largest = 0;
  for (size_t b = 0; b < buf.num_buckets(); ++b) {
    const size_t s = buf.BucketSize(b);
    total += s;
    largest = std::max(largest, s);
  }
  if (total == 0) return -1.0;
  return static_cast<double>(largest) *
         static_cast<double>(buf.num_buckets()) / static_cast<double>(total);
}

// ---------------------------------------------------------------------------
// Row-at-a-time helpers (the pre-columnar engine; kept as the fallback for
// opaque per-row code and selectable via EngineOptions::vectorized=false).
// ---------------------------------------------------------------------------

// Runs a map-only operator: the input is split into block-sized map tasks,
// `per_row` streams each task's rows into a task-local output, and the
// partials are concatenated in task order — byte-identical to a serial
// row-at-a-time pass over the input. `phase` names the wave's span ("map"
// phased, "pipeline" when the fused engine runs it).
Status RunMapTasks(const PhaseCtx& ctx, const char* phase, const Table& in,
                   uint64_t block_size_bytes,
                   const std::function<Status(const Row&, std::vector<Row>*)>&
                       per_row,
                   Table* out, double* max_task_seconds) {
  // Force row materialization once, outside the parallel region.
  const std::vector<Row>& rows = in.rows();
  const std::vector<RowRange> splits = storage::SplitRowsByBlockSize(
      rows.size(), in.AvgRowBytes(), block_size_bytes);
  std::vector<std::vector<Row>> partials(splits.size());
  OPD_RETURN_NOT_OK(RunPhase(
      ctx, phase, splits.size(),
      [&](size_t t) -> Status {
        std::vector<Row>& local = partials[t];
        local.reserve(splits[t].size());
        for (size_t r = splits[t].begin; r < splits[t].end; ++r) {
          OPD_RETURN_NOT_OK(per_row(rows[r], &local));
        }
        return Status::OK();
      },
      max_task_seconds));
  size_t total = 0;
  for (const auto& p : partials) total += p.size();
  out->Reserve(total);
  for (auto& p : partials) {
    for (Row& r : p) OPD_RETURN_NOT_OK(out->AppendRow(std::move(r)));
  }
  return Status::OK();
}

// Computes each row's shuffle bucket (hash of its key columns modulo
// `num_buckets`) in parallel over block-sized map tasks. Each task writes
// disjoint indices, so the result is independent of task interleaving.
Status ComputeBuckets(const PhaseCtx& ctx, const char* phase, const Table& in,
                      const std::vector<size_t>& key_idx, size_t num_buckets,
                      uint64_t block_size_bytes,
                      std::vector<uint32_t>* bucket_of,
                      double* max_task_seconds) {
  bucket_of->assign(in.num_rows(), 0);
  if (num_buckets <= 1) {
    if (max_task_seconds != nullptr) *max_task_seconds = 0;
    return Status::OK();
  }
  const std::vector<Row>& rows = in.rows();
  const std::vector<RowRange> splits = storage::SplitRowsByBlockSize(
      rows.size(), in.AvgRowBytes(), block_size_bytes);
  return RunPhase(
      ctx, phase, splits.size(),
      [&](size_t t) -> Status {
        for (size_t r = splits[t].begin; r < splits[t].end; ++r) {
          (*bucket_of)[r] = static_cast<uint32_t>(
              hash::LegacyRowKeyHash(rows[r], key_idx) % num_buckets);
        }
        return Status::OK();
      },
      max_task_seconds);
}

// Flat-hash variant of ComputeBuckets: one vectorized key hash per row
// (kept in `hash_of` for the reduce tables to reuse — no re-hash at insert
// time) and a multiply-shift bucket mapping instead of the `%`. With a
// single bucket the input is below one DFS block by definition, so the hash
// fill runs serially without a phase wave — task counts and span structure
// stay identical to the legacy path (which skips the wave entirely).
Status ComputeBucketsFlat(const PhaseCtx& ctx, const char* phase,
                          const Table& in, const std::vector<size_t>& key_idx,
                          size_t num_buckets, uint64_t block_size_bytes,
                          std::vector<uint32_t>* bucket_of,
                          std::vector<uint64_t>* hash_of,
                          double* max_task_seconds) {
  const std::vector<Row>& rows = in.rows();
  bucket_of->assign(rows.size(), 0);
  hash_of->resize(rows.size());
  if (num_buckets <= 1) {
    for (size_t r = 0; r < rows.size(); ++r) {
      (*hash_of)[r] = hash::FlatRowKeyHash(rows[r], key_idx);
    }
    if (max_task_seconds != nullptr) *max_task_seconds = 0;
    return Status::OK();
  }
  const std::vector<RowRange> splits = storage::SplitRowsByBlockSize(
      rows.size(), in.AvgRowBytes(), block_size_bytes);
  return RunPhase(
      ctx, phase, splits.size(),
      [&](size_t t) -> Status {
        for (size_t r = splits[t].begin; r < splits[t].end; ++r) {
          const uint64_t h = hash::FlatRowKeyHash(rows[r], key_idx);
          (*hash_of)[r] = h;
          (*bucket_of)[r] = hash::BucketOf(h, num_buckets);
        }
        return Status::OK();
      },
      max_task_seconds);
}

// Scatters row indices into per-bucket lists, preserving row order.
std::vector<std::vector<size_t>> BucketLists(
    const std::vector<uint32_t>& bucket_of, size_t num_buckets) {
  std::vector<std::vector<size_t>> lists(num_buckets);
  for (auto& l : lists) l.reserve(bucket_of.size() / num_buckets + 1);
  for (size_t r = 0; r < bucket_of.size(); ++r) {
    lists[bucket_of[r]].push_back(r);
  }
  return lists;
}

// ---------------------------------------------------------------------------
// Vectorized (batch-at-a-time) helpers.
// ---------------------------------------------------------------------------

// A table's columnar payload plus flat-row-index bookkeeping.
struct BatchList {
  std::shared_ptr<const std::vector<RowBatch>> batches;
  std::vector<size_t> offsets;  // global row index of each batch's first row
  size_t num_rows = 0;

  explicit BatchList(const Table& t) {
    batches = t.ToBatches();
    offsets.reserve(batches->size());
    for (const RowBatch& b : *batches) {
      offsets.push_back(num_rows);
      num_rows += b.num_rows();
    }
  }
  size_t size() const { return batches->size(); }
  const RowBatch& batch(size_t b) const { return (*batches)[b]; }
};

// Flattened location of one row inside a BatchList. Shared with the
// recycler (hash::RowRef) so cached join builds use the exact payload
// layout the engine probes with.
using RowRef = hash::RowRef;

// Appends the canonical key encoding of cell `i` of `col`: equal encodings
// exactly when the cells compare equal under Value::operator== (numerics
// compare through their double value; 1 == 1.0 == true).
void PackCell(const ColumnVector& col, size_t i, std::string* out) {
  if (col.IsNull(i)) {
    out->push_back('\0');  // null tag
    return;
  }
  double d;
  if (col.is_native()) {
    switch (col.declared_type()) {
      case DataType::kBool:
        d = col.bools()[i] != 0 ? 1.0 : 0.0;
        break;
      case DataType::kInt64:
        d = static_cast<double>(col.ints()[i]);
        break;
      case DataType::kDouble:
        d = col.doubles()[i];
        break;
      case DataType::kString: {
        const std::string& s = col.string_at(i);
        const uint32_t len = static_cast<uint32_t>(s.size());
        out->push_back('\2');  // string tag
        out->append(reinterpret_cast<const char*>(&len), sizeof(len));
        out->append(s);
        return;
      }
      default:
        out->push_back('\0');
        return;
    }
  } else {
    const Value v = col.GetValue(i);
    if (v.type() == DataType::kString) {
      const std::string& s = v.as_string();
      const uint32_t len = static_cast<uint32_t>(s.size());
      out->push_back('\2');
      out->append(reinterpret_cast<const char*>(&len), sizeof(len));
      out->append(s);
      return;
    }
    d = v.ToDouble();
  }
  if (d == 0.0) d = 0.0;  // normalize -0.0, mirroring Value::Hash
  out->push_back('\1');  // numeric tag
  char bits[sizeof(double)];
  std::memcpy(bits, &d, sizeof(d));
  out->append(bits, sizeof(d));
}

void PackKeys(const RowBatch& batch, size_t row,
              const std::vector<size_t>& cols, std::string* out) {
  for (size_t c : cols) PackCell(batch.column(c), row, out);
}

// Computes each row's shuffle bucket from the columnar key data, one batch
// per task. The hash is RowHash over the key cells (dictionary strings hash
// once per distinct entry), so bucketing matches the row path exactly.
Status ComputeBucketsBatch(const PhaseCtx& ctx, const char* phase,
                           const BatchList& in,
                           const std::vector<size_t>& key_idx,
                           size_t num_buckets,
                           std::vector<uint32_t>* bucket_of,
                           double* max_task_seconds) {
  bucket_of->assign(in.num_rows, 0);
  if (num_buckets <= 1) {
    if (max_task_seconds != nullptr) *max_task_seconds = 0;
    return Status::OK();
  }
  return RunPhase(
      ctx, phase, in.size(),
      [&](size_t t) -> Status {
        const RowBatch& b = in.batch(t);
        uint32_t* out = bucket_of->data() + in.offsets[t];
        for (size_t i = 0; i < b.num_rows(); ++i) {
          out[i] =
              static_cast<uint32_t>(b.HashKeysAt(i, key_idx) % num_buckets);
        }
        return Status::OK();
      },
      max_task_seconds);
}

// Flat-hash variant of ComputeBucketsBatch: hash::HashKeys computes each
// batch's key hashes column-at-a-time (dictionary strings hash via the
// dictionary's per-entry hashes), the hashes are kept in `hash_of` for the
// reduce tables to reuse, and buckets come from the multiply-shift BucketOf.
// The nb<=1 case fills hashes serially without a phase wave so task counts
// match the legacy path (which skips the wave) — see ComputeBucketsFlat.
Status ComputeBucketsBatchFlat(const PhaseCtx& ctx, const char* phase,
                               const BatchList& in,
                               const std::vector<size_t>& key_idx,
                               size_t num_buckets,
                               std::vector<uint32_t>* bucket_of,
                               std::vector<uint64_t>* hash_of,
                               double* max_task_seconds) {
  bucket_of->assign(in.num_rows, 0);
  hash_of->resize(in.num_rows);
  if (num_buckets <= 1) {
    for (size_t t = 0; t < in.size(); ++t) {
      hash::HashKeys(in.batch(t), key_idx, hash_of->data() + in.offsets[t]);
    }
    if (max_task_seconds != nullptr) *max_task_seconds = 0;
    return Status::OK();
  }
  return RunPhase(
      ctx, phase, in.size(),
      [&](size_t t) -> Status {
        const RowBatch& b = in.batch(t);
        uint64_t* hashes = hash_of->data() + in.offsets[t];
        hash::HashKeys(b, key_idx, hashes);
        uint32_t* out = bucket_of->data() + in.offsets[t];
        for (size_t i = 0; i < b.num_rows(); ++i) {
          out[i] = hash::BucketOf(hashes[i], num_buckets);
        }
        return Status::OK();
      },
      max_task_seconds);
}

// Scatters row refs into per-bucket lists in global row order.
std::vector<std::vector<RowRef>> BucketRefLists(
    const BatchList& in, const std::vector<uint32_t>& bucket_of,
    size_t num_buckets) {
  std::vector<std::vector<RowRef>> lists(num_buckets);
  for (auto& l : lists) l.reserve(in.num_rows / num_buckets + 1);
  size_t r = 0;
  for (size_t b = 0; b < in.size(); ++b) {
    const size_t n = in.batch(b).num_rows();
    for (size_t i = 0; i < n; ++i, ++r) {
      lists[bucket_of[r]].push_back(
          RowRef{static_cast<uint32_t>(b), static_cast<uint32_t>(i)});
    }
  }
  return lists;
}

// Gathers one output column from per-row source refs, memoizing dictionary
// remaps per source batch.
class ColumnGatherer {
 public:
  ColumnGatherer(DataType type, const BatchList& side, size_t col,
                 size_t reserve)
      : dst_(std::make_shared<ColumnVector>(type)),
        side_(&side),
        col_(col),
        remaps_(side.size()) {
    dst_->Reserve(reserve);
  }

  void Append(RowRef ref) {
    dst_->AppendFrom(side_->batch(ref.batch).column(col_), ref.idx,
                     &remaps_[ref.batch]);
  }

  storage::ColumnVectorPtr Finish() { return std::move(dst_); }

 private:
  storage::ColumnVectorPtr dst_;
  const BatchList* side_;
  size_t col_;
  std::vector<DictRemap> remaps_;
};

// Comparison kernels over one column against a non-null literal. Semantics
// are exactly afk::EvalCmp on the reconstructed Values; the typed fast
// paths below are algebraic simplifications of it (numeric comparisons all
// reduce to double comparisons; string comparisons to std::string's).
template <typename T>
bool CmpScalar(T a, afk::CmpOp op, T b) {
  switch (op) {
    case afk::CmpOp::kLt:
      return a < b;
    case afk::CmpOp::kLe:
      return a < b || a == b;
    case afk::CmpOp::kGt:
      return b < a;
    case afk::CmpOp::kGe:
      return b < a || a == b;
    case afk::CmpOp::kEq:
      return a == b;
    case afk::CmpOp::kNe:
      return !(a == b);
  }
  return false;
}

bool IsNumericType(DataType t) {
  return t == DataType::kBool || t == DataType::kInt64 ||
         t == DataType::kDouble;
}

// Builds the selection vector of rows passing `col <op> literal`.
void BuildCompareSelection(const ColumnVector& col, afk::CmpOp op,
                           const Value& literal, std::vector<uint32_t>* sel) {
  const size_t n = col.size();
  sel->reserve(n);
  // Null cells compare identically regardless of position.
  const bool null_passes = afk::EvalCmp(Value::Null(), op, literal);

  if (col.is_native() && !literal.is_null()) {
    if (IsNumericType(col.declared_type()) &&
        IsNumericType(literal.type())) {
      const double lit = literal.ToDouble();
      const bool no_nulls = col.null_count() == 0;
      auto scan = [&](auto value_at) {
        for (size_t i = 0; i < n; ++i) {
          const bool pass = (!no_nulls && col.IsNull(i))
                                ? null_passes
                                : CmpScalar(value_at(i), op, lit);
          if (pass) sel->push_back(static_cast<uint32_t>(i));
        }
      };
      switch (col.declared_type()) {
        case DataType::kBool: {
          const uint8_t* v = col.bools();
          scan([v](size_t i) { return v[i] != 0 ? 1.0 : 0.0; });
          return;
        }
        case DataType::kInt64: {
          const int64_t* v = col.ints();
          scan([v](size_t i) { return static_cast<double>(v[i]); });
          return;
        }
        case DataType::kDouble: {
          const double* v = col.doubles();
          scan([v](size_t i) { return v[i]; });
          return;
        }
        default:
          break;
      }
    }
    if (col.declared_type() == DataType::kString &&
        literal.type() == DataType::kString) {
      // Evaluate once per distinct dictionary entry, then select by code.
      std::vector<uint8_t> dict_pass(col.dict_size());
      for (uint32_t c = 0; c < col.dict_size(); ++c) {
        dict_pass[c] =
            CmpScalar(col.dict_entry(c), op, literal.as_string()) ? 1 : 0;
      }
      if (col.null_count() == 0) {
        // No-nulls fast loop (mirrors the numeric paths): pure code lookup.
        const uint32_t* codes = col.codes();
        for (size_t i = 0; i < n; ++i) {
          if (dict_pass[codes[i]] != 0) sel->push_back(static_cast<uint32_t>(i));
        }
        return;
      }
      for (size_t i = 0; i < n; ++i) {
        const bool pass =
            col.IsNull(i) ? null_passes : dict_pass[col.code_at(i)] != 0;
        if (pass) sel->push_back(static_cast<uint32_t>(i));
      }
      return;
    }
  }
  // Generic fallback: reconstruct each cell (mixed-type columns, null or
  // cross-class literals).
  for (size_t i = 0; i < n; ++i) {
    if (afk::EvalCmp(col.GetValue(i), op, literal)) {
      sel->push_back(static_cast<uint32_t>(i));
    }
  }
}

}  // namespace

Result<ExecResult> Engine::Execute(plan::Plan* plan, obs::Trace* trace,
                                   uint64_t parent_span) {
  OPD_RETURN_NOT_OK(optimizer_->Prepare(plan));
  const int run_id = run_counter_++;
  const auto& ctx = optimizer_->context();
  const auto& model = optimizer_->cost_model();
  const uint64_t block_size = dfs_->block_size_bytes();
  const bool vectorized = options_.vectorized;
  const bool pipelined = options_.pipelined;
  // Fused map+partition waves carry the "pipeline" phase name; the phased
  // fallback keeps the historical "map".
  const char* map_phase = pipelined ? "pipeline" : "map";
  auto& registry = obs::MetricRegistry::Global();
  // Registry objects live forever; resolve the hot ones once per run.
  obs::Histogram* skew_hist =
      options_.metrics ? &registry.histogram("engine.shuffle.skew") : nullptr;
  obs::Histogram* ht_load_hist =
      options_.metrics ? &registry.histogram("engine.hash.load_factor")
                       : nullptr;
  // Flat shuffle-table observability (resolved unconditionally so the names
  // register even on runs that take the legacy path).
  obs::Counter* ht_resizes =
      options_.metrics ? &registry.counter("engine.shuffle.ht_resizes")
                       : nullptr;
  obs::Counter* arena_bytes_ctr =
      options_.metrics ? &registry.counter("engine.shuffle.arena_bytes")
                       : nullptr;
  obs::Histogram* probe_len_hist =
      options_.metrics ? &registry.histogram("engine.shuffle.probe_len")
                       : nullptr;
  const bool flat = options_.flat_hash;
  // Hash-table recycling (HashStash, src/exec/hash/recycler.h): active only
  // when the flat tables are on and a recycler is attached. The counters
  // resolve whenever metrics are on so the engine.recycle.* names register
  // even on runs that never touch a recyclable build.
  hash::HashRecycler* const recycler =
      (options_.recycle_hash && flat) ? recycler_ : nullptr;
  obs::Counter* recycle_hit_ctr =
      options_.metrics ? &registry.counter("engine.recycle.hit") : nullptr;
  obs::Counter* recycle_miss_ctr =
      options_.metrics ? &registry.counter("engine.recycle.miss") : nullptr;
  obs::Counter* recycle_insert_ctr =
      options_.metrics ? &registry.counter("engine.recycle.insert") : nullptr;
  obs::Counter* recycle_evict_ctr =
      options_.metrics ? &registry.counter("engine.recycle.evict") : nullptr;
  obs::Gauge* recycle_bytes_gauge =
      options_.metrics ? &registry.gauge("engine.recycle.bytes") : nullptr;
  // Publishes one recycler insert outcome (called from pool threads; the
  // registry objects are thread-safe).
  auto observe_recycle_insert = [&](const hash::HashRecycler::InsertResult& r) {
    if (recycle_insert_ctr != nullptr && r.inserted) recycle_insert_ctr->Inc();
    if (recycle_evict_ctr != nullptr && r.evicted > 0) {
      recycle_evict_ctr->Inc(r.evicted);
    }
    if (recycle_bytes_gauge != nullptr && recycler != nullptr) {
      recycle_bytes_gauge->Set(static_cast<double>(recycler->bytes()));
    }
  };
  // Publishes one flat table's probe/arena stats after its bucket finishes.
  auto observe_flat = [&](const hash::FlatStats& s, size_t arena) {
    if (ht_resizes != nullptr && s.resizes > 0) ht_resizes->Inc(s.resizes);
    if (arena_bytes_ctr != nullptr && arena > 0) arena_bytes_ctr->Inc(arena);
    if (probe_len_hist != nullptr && s.lookups > 0) {
      probe_len_hist->Observe(1.0 + static_cast<double>(s.probe_steps) /
                                        static_cast<double>(s.lookups));
    }
  };

  ExecMetrics metrics;
  ExecResult result;
  std::map<const OpNode*, TablePtr> results;
  // Recycling identity of each scan node: view id + publish epoch for view
  // scans, table name for base scans. Filled during scan resolution below
  // and read-only afterwards (jobs may run on pool threads).
  std::map<const OpNode*, std::string> scan_identity;

  // --- Plan the run ---------------------------------------------------------
  // Scans resolve serially up front (catalog/DFS lookups); every other
  // operator becomes one job. Job indices — and therefore DFS output paths
  // and ViewStore insertion order — are fixed here, in topological order, so
  // they cannot depend on the execution schedule below.
  const std::vector<OpNodePtr> topo = plan->TopoOrder();
  struct JobSpec {
    const OpNodePtr* node = nullptr;    // owned by `topo`
    std::string path;                   // DFS output path
    std::vector<size_t> producers;      // indices of non-scan input jobs
  };
  std::vector<JobSpec> specs;
  std::map<const OpNode*, size_t> job_of;
  for (const OpNodePtr& node_ptr : topo) {
    OpNode* node = node_ptr.get();
    if (node->kind == OpKind::kScan) {
      std::string path;
      if (node->view_id >= 0) {
        OPD_ASSIGN_OR_RETURN(const catalog::ViewDefinition* def,
                             ctx.views->Find(node->view_id));
        path = def->dfs_path;
        scan_identity[node] =
            hash::ViewIdentity(node->view_id, def->publish_epoch);
      } else {
        OPD_ASSIGN_OR_RETURN(const catalog::BaseTableEntry* entry,
                             ctx.catalog->Find(node->table));
        path = entry->dfs_path;
        scan_identity[node] = hash::BaseIdentity(node->table);
      }
      OPD_ASSIGN_OR_RETURN(TablePtr table, dfs_->Read(path));
      results[node] = table;
      // Scan bytes are accounted in the consuming job's read phase below.
      continue;
    }
    JobSpec spec;
    spec.node = &node_ptr;
    spec.path = "views/run" + std::to_string(run_id) + "/job" +
                std::to_string(specs.size());
    for (const OpNodePtr& child : node->children) {
      if (child->kind == OpKind::kScan) continue;
      auto it = job_of.find(child.get());
      if (it == job_of.end()) {
        return Status::Internal("missing child result for " +
                                node->DisplayName());
      }
      spec.producers.push_back(it->second);
    }
    job_of[node] = specs.size();
    specs.push_back(std::move(spec));
  }

  // Observed state of one job, written by run_job (possibly on a pool
  // thread) and consumed by the serial finalize loop.
  struct JobState {
    Status status = Status::OK();
    TablePtr table;  // sealed output (named, not yet written to the DFS)
    uint64_t in_bytes = 0;
    uint64_t in_rows = 0;
    uint64_t shuffle_bytes = 0;
    uint64_t out_bytes = 0;
    uint64_t out_rows = 0;
    bool has_shuffle = false;
    double max_task_s = 0;
    size_t reduce_tasks = 0;
    size_t tasks = 0;
    double skew = -1.0;
    double wall_s = 0;
    uint64_t recycle_hits = 0;
    uint64_t recycle_misses = 0;
    plan::JobCostInfo cost;
  };
  std::vector<JobState> states(specs.size());

  // The recycling identity of a direct-scan input, or null when the child
  // is not a scan (operator outputs are run-local and never recycled).
  auto scan_ident = [&](const OpNode* child) -> const std::string* {
    if (child->kind != OpKind::kScan) return nullptr;
    auto it = scan_identity.find(child);
    return it == scan_identity.end() ? nullptr : &it->second;
  };

  // --- Per-job execution ----------------------------------------------------
  // Everything here is schedule-independent: inputs come from immutable
  // tables, all side effects land in this job's JobState slot, and the
  // shared metric histograms are thread-safe.
  auto run_job = [&](size_t j, obs::TraceSpan* job_span) {
    JobState& st = states[j];
    const OpNodePtr& node_ptr = *specs[j].node;
    OpNode* node = node_ptr.get();

    // Gather inputs: scans from the resolved map, operator inputs from the
    // producing job's sealed output.
    std::vector<TablePtr> inputs;
    for (const OpNodePtr& child : node->children) {
      TablePtr t;
      if (child->kind == OpKind::kScan) {
        auto it = results.find(child.get());
        if (it != results.end()) t = it->second;
      } else {
        t = states[job_of.at(child.get())].table;
      }
      if (t == nullptr) {
        // A producer failed (its own status carries the root cause, and it
        // has the lower job index, so it wins the error report).
        st.status = Status::Internal("missing child result for " +
                                     node->DisplayName());
        return;
      }
      st.in_bytes += t->ByteSize();
      st.in_rows += t->num_rows();
      inputs.push_back(std::move(t));
    }
    const uint64_t in_bytes = st.in_bytes;

    size_t job_tasks = 0;
    const uint64_t span_id = job_span != nullptr ? job_span->id() : 0;
    const PhaseCtx pctx{pool_.get(), trace, span_id, options_.trace_tasks,
                        &job_tasks};
    const PipelineCtx pipe{pool_.get(), trace, span_id, options_.trace_tasks,
                           &job_tasks};
    const auto job_wall_start = std::chrono::steady_clock::now();

    Table out("", node->out_schema);
    uint64_t shuffle_bytes = 0;
    bool has_shuffle = false;
    double map_scalar = 1.0, reduce_scalar = 1.0;
    double job_max_task_s = 0;  // critical-path task time across the job
    size_t job_reduce_tasks = 0;
    double job_skew = -1.0;
    uint64_t job_recycle_hits = 0, job_recycle_misses = 0;
    // Counts one recycler lookup outcome (global counter + per-job tally).
    auto count_recycle = [&](bool hit) {
      if (hit) {
        ++job_recycle_hits;
        if (recycle_hit_ctr != nullptr) recycle_hit_ctr->Inc();
      } else {
        ++job_recycle_misses;
        if (recycle_miss_ctr != nullptr) recycle_miss_ctr->Inc();
      }
    };

    Status body = [&]() -> Status {
    switch (node->kind) {
      case OpKind::kScan:
        break;  // handled above
      case OpKind::kProject: {
        const Table& in = *inputs[0];
        std::vector<size_t> idx;
        for (const std::string& name : node->project) {
          OPD_ASSIGN_OR_RETURN(size_t i, ColIndex(in.schema(), name));
          idx.push_back(i);
        }
        if (vectorized) {
          // Pure column swizzle: output batches share the input's column
          // vectors, no cell is touched. The fused path compiles the
          // projection into an ExprProgram (same zero-copy result; keeps
          // every project/filter job on one evaluation code path).
          const BatchList in_list(in);
          std::vector<RowBatch> out_batches;
          out_batches.reserve(in_list.size());
          std::optional<expr::ExprProgram> program;
          if (options_.fused_exprs) {
            program = expr::ExprProgram::Compile(
                in.schema().num_columns(), {expr::ExprStep::Project(idx)});
          }
          if (program.has_value()) {
            expr::EvalScratch scratch;
            for (const RowBatch& b : *in_list.batches) {
              out_batches.push_back(program->Run(b, &scratch));
            }
          } else {
            for (const RowBatch& b : *in_list.batches) {
              out_batches.push_back(b.Project(idx));
            }
          }
          out = Table::FromBatches("", node->out_schema,
                                   std::move(out_batches));
        } else {
          OPD_RETURN_NOT_OK(RunMapTasks(
              pctx, map_phase, in, block_size,
              [&idx](const Row& row, std::vector<Row>* local) -> Status {
                Row r;
                r.reserve(idx.size());
                for (size_t i : idx) r.push_back(row[i]);
                local->push_back(std::move(r));
                return Status::OK();
              },
              &out, &job_max_task_s));
        }
        break;
      }
      case OpKind::kFilter: {
        const Table& in = *inputs[0];
        const plan::FilterCond& cond = node->filter;
        if (cond.kind == plan::FilterCond::Kind::kCompare) {
          OPD_ASSIGN_OR_RETURN(size_t i, ColIndex(in.schema(), cond.column));
          if (vectorized) {
            // Selection-vector filter: one task per batch; surviving rows
            // are gathered column-wise (full-batch selections are
            // zero-copy).
            const BatchList in_list(in);
            std::vector<RowBatch> out_batches(in_list.size());
            std::optional<expr::ExprProgram> program;
            if (options_.fused_exprs) {
              program = expr::ExprProgram::Compile(
                  in.schema().num_columns(),
                  {expr::ExprStep::FilterCompare(i, cond.op, cond.literal)});
            }
            if (program.has_value()) {
              // Fused kernel path: string predicates bind per-dictionary
              // verdict bitmaps once, serially, before the parallel phase;
              // each task then runs branchless mask kernels + one gather.
              program->BindDictionaries(*in_list.batches);
              const expr::ExprProgram& prog = *program;
              OPD_RETURN_NOT_OK(RunPhase(
                  pctx, map_phase, in_list.size(),
                  [&](size_t t) -> Status {
                    expr::EvalScratch scratch;
                    out_batches[t] = prog.Run(in_list.batch(t), &scratch);
                    return Status::OK();
                  },
                  &job_max_task_s));
            } else {
              OPD_RETURN_NOT_OK(RunPhase(
                  pctx, map_phase, in_list.size(),
                  [&](size_t t) -> Status {
                    const RowBatch& b = in_list.batch(t);
                    std::vector<uint32_t> sel;
                    BuildCompareSelection(b.column(i), cond.op, cond.literal,
                                          &sel);
                    out_batches[t] = b.Gather(sel);
                    return Status::OK();
                  },
                  &job_max_task_s));
            }
            out = Table::FromBatches("", node->out_schema,
                                     std::move(out_batches));
          } else {
            OPD_RETURN_NOT_OK(RunMapTasks(
                pctx, map_phase, in, block_size,
                [&cond, i](const Row& row,
                           std::vector<Row>* local) -> Status {
                  if (afk::EvalCmp(row[i], cond.op, cond.literal)) {
                    local->push_back(row);
                  }
                  return Status::OK();
                },
                &out, &job_max_task_s));
          }
        } else {
          // Opaque predicate UDFs are per-row black boxes: row-at-a-time
          // fallback (see DESIGN.md "Columnar batches").
          OPD_ASSIGN_OR_RETURN(const udf::PredicateFn* fn,
                               ctx.udfs->FindPredicate(cond.fn_name));
          std::vector<size_t> idx;
          for (const std::string& name : cond.arg_columns) {
            OPD_ASSIGN_OR_RETURN(size_t i, ColIndex(in.schema(), name));
            idx.push_back(i);
          }
          udf::Params params;  // opaque predicate params are pre-bound strings
          if (!cond.params.empty()) params["params"] = Value(cond.params);
          OPD_RETURN_NOT_OK(RunMapTasks(
              pctx, map_phase, in, block_size,
              [&](const Row& row, std::vector<Row>* local) -> Status {
                std::vector<Value> args;
                args.reserve(idx.size());
                for (size_t i : idx) args.push_back(row[i]);
                if ((*fn)(args, params)) local->push_back(row);
                return Status::OK();
              },
              &out, &job_max_task_s));
        }
        break;
      }
      case OpKind::kJoin: {
        const Table& left = *inputs[0];
        const Table& right = *inputs[1];
        has_shuffle = true;
        shuffle_bytes = in_bytes;  // both sides are re-partitioned by key
        std::vector<size_t> lkeys, rkeys;
        for (const auto& [lname, rname] : node->join.pairs) {
          OPD_ASSIGN_OR_RETURN(size_t li, ColIndex(left.schema(), lname));
          OPD_ASSIGN_OR_RETURN(size_t ri, ColIndex(right.schema(), rname));
          lkeys.push_back(li);
          rkeys.push_back(ri);
        }
        // Output column mapping: (from_left, index).
        std::vector<std::pair<bool, size_t>> out_map;
        for (const auto& col : node->out_schema.columns()) {
          if (auto li = left.schema().IndexOf(col.name)) {
            out_map.emplace_back(true, *li);
          } else {
            OPD_ASSIGN_OR_RETURN(size_t ri,
                                 ColIndex(right.schema(), col.name));
            out_map.emplace_back(false, ri);
          }
        }
        // Build the hash table on the smaller side (ties keep the
        // historical build-on-right choice); probe with the larger side.
        // The output column order follows out_map and is side-invariant.
        const bool build_right = right.num_rows() <= left.num_rows();
        const Table& build_in = build_right ? right : left;
        const Table& probe_in = build_right ? left : right;
        const std::vector<size_t>& build_keys = build_right ? rkeys : lkeys;
        const std::vector<size_t>& probe_keys = build_right ? lkeys : rkeys;

        const size_t num_buckets = DeriveReduceTasks(
            options_.num_reduce_tasks, shuffle_bytes, block_size);
        job_reduce_tasks = num_buckets;

        // Optimizer distinct-key estimate for the build side (product of
        // the build child's per-key-column distincts, capped by its row
        // estimate): pre-sizes each bucket table's per-key arrays (index
        // slots, key refs, duplicate-chain heads/tails) well below the
        // all-distinct worst case on duplicate-heavy keys. Growth past the
        // estimate shows up in engine.shuffle.ht_resizes.
        const OpNode* build_child = node->children[build_right ? 1 : 0].get();
        size_t est_build_keys = 0;
        {
          double est = 1.0;
          bool have = !node->join.pairs.empty();
          for (const auto& [lname, rname] : node->join.pairs) {
            auto it = build_child->est_distinct.find(build_right ? rname
                                                                 : lname);
            if (it == build_child->est_distinct.end() || it->second <= 0) {
              have = false;
              break;
            }
            est *= std::max(1.0, it->second);
          }
          if (have) {
            if (build_child->est_rows > 0) {
              est = std::min(est, build_child->est_rows);
            }
            est_build_keys = static_cast<size_t>(est);
          }
        }
        auto join_key_hint = [&](size_t bucket_n) -> size_t {
          return est_build_keys > 0
                     ? std::min(bucket_n, est_build_keys / num_buckets + 1)
                     : 0;
        };

        // Hash recycling: when the build side is a direct scan of an
        // unchanged table/view, the recycler may hold its fully built
        // per-bucket tables from an earlier query (possibly another
        // tenant's). `cached` set => probe-only job; `pending` set => this
        // job builds into the recycler's entry-to-be.
        hash::RecycleKey rkey;
        std::shared_ptr<const hash::CachedBuild> cached;
        std::shared_ptr<hash::CachedBuild> pending;
        const std::string* build_identity =
            recycler != nullptr ? scan_ident(build_child) : nullptr;
        std::atomic<uint64_t> build_ns{0};

        if (vectorized) {
          const BatchList build_list(build_in);
          const BatchList probe_list(probe_in);
          double part_s = 0, reduce_max_s = 0;
          std::vector<uint32_t> probe_bucket;

          // Flat path: key codecs planned once per join from both sides'
          // lanes, and per-row key hashes computed batch-wide during
          // partitioning, kept here so the reduce tables never re-hash.
          std::vector<hash::KeyCodec> codecs;
          if (flat) {
            codecs = hash::PlanKeyCodecs(
                {{build_list.batches.get(), &build_keys},
                 {probe_list.batches.get(), &probe_keys}});
          }
          std::vector<uint64_t> build_hash, probe_hash;

          if (build_identity != nullptr && flat) {
            rkey.kind = hash::RecycleKind::kJoinBuildBatch;
            rkey.identity = *build_identity;
            rkey.key_cols = build_keys;
            rkey.codec_modes.reserve(codecs[0].modes.size());
            for (hash::KeyColMode m : codecs[0].modes) {
              rkey.codec_modes.push_back(static_cast<uint8_t>(m));
            }
            rkey.num_buckets = static_cast<uint32_t>(num_buckets);
            cached = recycler->Lookup(rkey, build_list.batches.get());
            count_recycle(cached != nullptr);
            if (cached == nullptr) {
              pending = std::make_shared<hash::CachedBuild>();
              pending->join_batch.resize(num_buckets);
              pending->batches = build_list.batches;
              pending->pin = build_list.batches.get();
              pending->view_id = build_child->view_id;
            }
          }

          // Reduce body shared by both schedules: each bucket keys its
          // build rows by their packed key bytes (equal exactly when the
          // key Values are equal) and probes in row order, emitting
          // (probe ref, build ref) matches.
          struct Match {
            size_t probe_global;
            RowRef probe, build;
          };
          std::vector<std::vector<Match>> bucket_out(num_buckets);
          auto reduce_bucket = [&](size_t b, size_t build_n,
                                   const auto& build_each, size_t probe_n,
                                   const auto& probe_each) -> Status {
            auto& local = bucket_out[b];
            local.reserve(probe_n);
            if (cached != nullptr) {
              // Recycled build: probe the shared cached table through the
              // stats-free accessors (other queries may probe it
              // concurrently). Matches come out in the cached table's
              // insertion order == global build-row order, exactly what a
              // fresh build would emit.
              const hash::FlatMultiMap<RowRef>& ht = cached->join_batch[b];
              hash::KeyScratch key;
              probe_each([&](RowRef pref) {
                hash::NormalizeKey(probe_list.batch(pref.batch), pref.idx,
                                   codecs[1], &key);
                const size_t pg = probe_list.offsets[pref.batch] + pref.idx;
                ht.ForEachMatchShared(probe_hash[pg], key.data(), key.size(),
                                      [&](RowRef bref) {
                                        local.push_back(Match{pg, pref, bref});
                                      });
              });
              return Status::OK();
            }
            if (flat) {
              hash::FlatMultiMap<RowRef> fresh;
              hash::FlatMultiMap<RowRef>& ht =
                  pending != nullptr ? pending->join_batch[b] : fresh;
              ht.Reserve(build_n,
                         codecs[0].bounded ? codecs[0].width_bound : 0,
                         join_key_hint(build_n));
              hash::KeyScratch key;
              const auto build_start = std::chrono::steady_clock::now();
              build_each([&](RowRef ref) {
                hash::NormalizeKey(build_list.batch(ref.batch), ref.idx,
                                   codecs[0], &key);
                const size_t bg = build_list.offsets[ref.batch] + ref.idx;
                ht.Insert(build_hash[bg], key.data(), key.size(), ref);
              });
              if (pending != nullptr) {
                build_ns.fetch_add(
                    static_cast<uint64_t>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - build_start)
                            .count()),
                    std::memory_order_relaxed);
              }
              if (ht_load_hist != nullptr && ht.size() > 0) {
                ht_load_hist->Observe(ht.load_factor());
              }
              probe_each([&](RowRef pref) {
                hash::NormalizeKey(probe_list.batch(pref.batch), pref.idx,
                                   codecs[1], &key);
                const size_t pg = probe_list.offsets[pref.batch] + pref.idx;
                ht.ForEachMatch(probe_hash[pg], key.data(), key.size(),
                                [&](RowRef bref) {
                                  local.push_back(Match{pg, pref, bref});
                                });
              });
              observe_flat(ht.stats(), ht.arena_bytes());
              return Status::OK();
            }
            std::unordered_map<std::string, std::vector<RowRef>> ht;
            ht.reserve(build_n);
            std::string key;
            build_each([&](RowRef ref) {
              key.clear();
              PackKeys(build_list.batch(ref.batch), ref.idx, build_keys,
                       &key);
              ht[key].push_back(ref);
            });
            if (ht_load_hist != nullptr && !ht.empty()) {
              ht_load_hist->Observe(ht.load_factor());
            }
            probe_each([&](RowRef pref) {
              key.clear();
              PackKeys(probe_list.batch(pref.batch), pref.idx, probe_keys,
                       &key);
              auto it = ht.find(key);
              if (it == ht.end()) return;
              const size_t pg = probe_list.offsets[pref.batch] + pref.idx;
              for (RowRef bref : it->second) {
                local.push_back(Match{pg, pref, bref});
              }
            });
            return Status::OK();
          };

          if (pipelined) {
            // Fused map+partition: one producer per batch (build batches
            // first, then probe batches) hashes straight into its own
            // per-bucket buffer slots; no bucket_of scatter pass.
            PartitionBuffer<RowRef> bbuf(build_list.size(), num_buckets);
            PartitionBuffer<RowRef> pbuf(probe_list.size(), num_buckets);
            probe_bucket.assign(probe_list.num_rows, 0);
            if (flat) {
              if (cached == nullptr) build_hash.resize(build_list.num_rows);
              probe_hash.resize(probe_list.num_rows);
            }
            // On a recycle hit the build side needs no producers at all:
            // the cached tables already hold every build row.
            const size_t nb = cached != nullptr ? 0 : build_list.size();
            OPD_RETURN_NOT_OK(RunPipelinedShuffle(
                pipe, nb + probe_list.size(),
                [&](size_t t) -> Status {
                  const bool is_build = t < nb;
                  const size_t side_t = is_build ? t : t - nb;
                  const BatchList& list = is_build ? build_list : probe_list;
                  const std::vector<size_t>& keys =
                      is_build ? build_keys : probe_keys;
                  PartitionBuffer<RowRef>& buf = is_build ? bbuf : pbuf;
                  const RowBatch& batch = list.batch(side_t);
                  buf.ReserveProducer(side_t, batch.num_rows());
                  uint32_t* pb = is_build
                                     ? nullptr
                                     : probe_bucket.data() +
                                           probe_list.offsets[side_t];
                  if (flat) {
                    // Batch-wide columnar hash, then multiply-shift buckets.
                    uint64_t* hashes =
                        (is_build ? build_hash : probe_hash).data() +
                        list.offsets[side_t];
                    hash::HashKeys(batch, keys, hashes);
                    for (size_t i = 0; i < batch.num_rows(); ++i) {
                      const uint32_t b =
                          num_buckets <= 1
                              ? 0
                              : hash::BucketOf(hashes[i], num_buckets);
                      if (pb != nullptr) pb[i] = b;
                      buf.Append(side_t, b,
                                 RowRef{static_cast<uint32_t>(side_t),
                                        static_cast<uint32_t>(i)});
                    }
                    return Status::OK();
                  }
                  for (size_t i = 0; i < batch.num_rows(); ++i) {
                    const uint32_t b =
                        num_buckets <= 1
                            ? 0
                            : static_cast<uint32_t>(
                                  batch.HashKeysAt(i, keys) % num_buckets);
                    if (pb != nullptr) pb[i] = b;
                    buf.Append(side_t, b,
                               RowRef{static_cast<uint32_t>(side_t),
                                      static_cast<uint32_t>(i)});
                  }
                  return Status::OK();
                },
                num_buckets,
                [&](size_t b) -> Status {
                  return reduce_bucket(
                      b, bbuf.BucketSize(b),
                      [&](auto&& f) { bbuf.ForEachInBucket(b, f); },
                      pbuf.BucketSize(b),
                      [&](auto&& f) { pbuf.ForEachInBucket(b, f); });
                },
                &part_s, &reduce_max_s));
            job_skew = BufferSkew(pbuf);
          } else {
            // Phased: partition both inputs (barrier), scatter, then the
            // reduce wave.
            double part_build_s = 0, part_probe_s = 0;
            std::vector<uint32_t> build_bucket;
            if (flat && cached != nullptr) {
              // Recycle hit: the build side was partitioned when the cached
              // tables were built; only the probe side needs a wave.
              OPD_RETURN_NOT_OK(ComputeBucketsBatchFlat(
                  pctx, "partition:probe", probe_list, probe_keys,
                  num_buckets, &probe_bucket, &probe_hash, &part_probe_s));
            } else if (flat) {
              OPD_RETURN_NOT_OK(ComputeBucketsBatchFlat(
                  pctx, "partition:build", build_list, build_keys,
                  num_buckets, &build_bucket, &build_hash, &part_build_s));
              OPD_RETURN_NOT_OK(ComputeBucketsBatchFlat(
                  pctx, "partition:probe", probe_list, probe_keys,
                  num_buckets, &probe_bucket, &probe_hash, &part_probe_s));
            } else {
              OPD_RETURN_NOT_OK(ComputeBucketsBatch(
                  pctx, "partition:build", build_list, build_keys,
                  num_buckets, &build_bucket, &part_build_s));
              OPD_RETURN_NOT_OK(ComputeBucketsBatch(
                  pctx, "partition:probe", probe_list, probe_keys,
                  num_buckets, &probe_bucket, &part_probe_s));
            }
            part_s = part_build_s + part_probe_s;
            const auto build_lists =
                cached != nullptr
                    ? std::vector<std::vector<RowRef>>(num_buckets)
                    : BucketRefLists(build_list, build_bucket, num_buckets);
            const auto probe_lists =
                BucketRefLists(probe_list, probe_bucket, num_buckets);
            job_skew = BucketSkew(probe_lists);
            OPD_RETURN_NOT_OK(RunPhase(
                pctx, "reduce", num_buckets,
                [&](size_t b) -> Status {
                  return reduce_bucket(
                      b, build_lists[b].size(),
                      [&](auto&& f) {
                        for (RowRef ref : build_lists[b]) f(ref);
                      },
                      probe_lists[b].size(),
                      [&](auto&& f) {
                        for (RowRef ref : probe_lists[b]) f(ref);
                      });
                },
                &reduce_max_s));
          }
          job_max_task_s = part_s + reduce_max_s;

          if (pending != nullptr) {
            pending->build_cost_s =
                static_cast<double>(
                    build_ns.load(std::memory_order_relaxed)) *
                1e-9;
            observe_recycle_insert(recycler->Insert(rkey, std::move(pending)));
            pending.reset();
          }

          // Deterministic merge: matches in probe-row order (each bucket's
          // output is already ordered by probe index, so a cursor per
          // bucket suffices). Identical for every thread/bucket count.
          size_t total = 0;
          for (const auto& b : bucket_out) total += b.size();
          std::vector<std::pair<RowRef, RowRef>> merged;  // (probe, build)
          merged.reserve(total);
          std::vector<size_t> cursor(num_buckets, 0);
          for (size_t p = 0; p < probe_list.num_rows; ++p) {
            auto& local = bucket_out[probe_bucket[p]];
            size_t& c = cursor[probe_bucket[p]];
            while (c < local.size() && local[c].probe_global == p) {
              merged.emplace_back(local[c].probe, local[c].build);
              ++c;
            }
          }

          // Assemble the output column-wise: one gather per output column
          // from whichever side it came from.
          std::vector<storage::ColumnVectorPtr> out_cols;
          out_cols.reserve(out_map.size());
          for (size_t c = 0; c < out_map.size(); ++c) {
            const auto& [from_left, src_col] = out_map[c];
            const bool from_probe = from_left == build_right;
            const BatchList& side = from_probe ? probe_list : build_list;
            ColumnGatherer gatherer(node->out_schema.columns()[c].type,
                                    side, src_col, merged.size());
            for (const auto& [pref, bref] : merged) {
              gatherer.Append(from_probe ? pref : bref);
            }
            out_cols.push_back(gatherer.Finish());
          }
          if (options_.metrics) {
            // Dictionary compression of the gathered string columns: hit
            // rate is 1 - entries/values across the run.
            for (const auto& col : out_cols) {
              if (col->declared_type() == DataType::kString &&
                  col->is_native() && col->size() > 0) {
                registry.counter("storage.dict.values").Inc(col->size());
                registry.counter("storage.dict.entries").Inc(col->dict_size());
              }
            }
          }
          std::vector<RowBatch> out_batches;
          out_batches.push_back(
              RowBatch(std::move(out_cols), merged.size()));
          out = Table::FromBatches("", node->out_schema,
                                   std::move(out_batches));
          break;
        }

        // Row-at-a-time join. Reduce body shared by both schedules: each
        // bucket builds an unordered hash table over its build rows and
        // probes it with its probe rows in row order. Output rows carry
        // their probe-row index for the deterministic merge.
        double part_s = 0, reduce_max_s = 0;
        std::vector<uint32_t> probe_bucket;
        // Flat path: per-row key hashes computed once during partitioning
        // and reused by the reduce tables (no re-hash at insert time).
        std::vector<uint64_t> build_hash, probe_hash;
        std::vector<std::vector<std::pair<size_t, Row>>> bucket_out(
            num_buckets);

        if (build_identity != nullptr && flat) {
          // Row-mode recycling: keys normalize codec-free (NormalizeKeyRow
          // is canonical per row), so the key carries no codec modes. The
          // pin is the build Table object itself.
          rkey.kind = hash::RecycleKind::kJoinBuildRow;
          rkey.identity = *build_identity;
          rkey.key_cols = build_keys;
          rkey.num_buckets = static_cast<uint32_t>(num_buckets);
          const storage::TablePtr& build_table =
              build_right ? inputs[1] : inputs[0];
          cached = recycler->Lookup(rkey, build_table.get());
          count_recycle(cached != nullptr);
          if (cached == nullptr) {
            pending = std::make_shared<hash::CachedBuild>();
            pending->join_row.resize(num_buckets);
            pending->table = build_table;
            pending->pin = build_table.get();
            pending->view_id = build_child->view_id;
          }
        }
        // Builds one output row for match (probe p, build m), shared by both
        // hash-table variants.
        auto emit_match = [&](size_t p, size_t m,
                              std::vector<std::pair<size_t, Row>>* local) {
          const Row& prow = probe_in.row(p);
          const Row& brow = build_in.row(m);
          const Row& lrow = build_right ? prow : brow;
          const Row& rrow = build_right ? brow : prow;
          Row r;
          r.reserve(out_map.size());
          for (const auto& [from_left, i] : out_map) {
            r.push_back(from_left ? lrow[i] : rrow[i]);
          }
          local->emplace_back(p, std::move(r));
        };
        auto reduce_bucket = [&](size_t b, size_t build_n,
                                 const auto& build_each, size_t probe_n,
                                 const auto& probe_each) -> Status {
          auto& local = bucket_out[b];
          local.reserve(probe_n);
          if (cached != nullptr) {
            const hash::FlatMultiMap<size_t>& ht = cached->join_row[b];
            hash::KeyScratch key;
            probe_each([&](size_t p) {
              hash::NormalizeKeyRow(probe_in.row(p), probe_keys, &key);
              ht.ForEachMatchShared(probe_hash[p], key.data(), key.size(),
                                    [&](size_t m) { emit_match(p, m, &local); });
            });
            return Status::OK();
          }
          if (flat) {
            hash::FlatMultiMap<size_t> fresh;
            hash::FlatMultiMap<size_t>& ht =
                pending != nullptr ? pending->join_row[b] : fresh;
            ht.Reserve(build_n, 0, join_key_hint(build_n));
            hash::KeyScratch key;
            const auto build_start = std::chrono::steady_clock::now();
            build_each([&](size_t r) {
              hash::NormalizeKeyRow(build_in.row(r), build_keys, &key);
              ht.Insert(build_hash[r], key.data(), key.size(), r);
            });
            if (pending != nullptr) {
              build_ns.fetch_add(
                  static_cast<uint64_t>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - build_start)
                          .count()),
                  std::memory_order_relaxed);
            }
            if (ht_load_hist != nullptr && ht.size() > 0) {
              ht_load_hist->Observe(ht.load_factor());
            }
            probe_each([&](size_t p) {
              hash::NormalizeKeyRow(probe_in.row(p), probe_keys, &key);
              ht.ForEachMatch(probe_hash[p], key.data(), key.size(),
                              [&](size_t m) { emit_match(p, m, &local); });
            });
            observe_flat(ht.stats(), ht.arena_bytes());
            return Status::OK();
          }
          std::unordered_map<Row, std::vector<size_t>, RowHash> ht;
          ht.reserve(build_n);
          build_each([&](size_t r) {
            Row key;
            key.reserve(build_keys.size());
            for (size_t i : build_keys) key.push_back(build_in.row(r)[i]);
            ht[std::move(key)].push_back(r);
          });
          if (ht_load_hist != nullptr && !ht.empty()) {
            ht_load_hist->Observe(ht.load_factor());
          }
          Row key;
          probe_each([&](size_t p) {
            const Row& prow = probe_in.row(p);
            key.clear();
            for (size_t i : probe_keys) key.push_back(prow[i]);
            auto it = ht.find(key);
            if (it == ht.end()) return;
            for (size_t m : it->second) emit_match(p, m, &local);
          });
          return Status::OK();
        };

        if (pipelined) {
          // Fused map+partition: producers cover the build splits first,
          // then the probe splits, each hashing its rows directly into its
          // per-bucket buffer slots.
          const std::vector<Row>& build_rows = build_in.rows();
          const std::vector<Row>& probe_rows = probe_in.rows();
          const std::vector<RowRange> bsplits =
              storage::SplitRowsByBlockSize(build_rows.size(),
                                            build_in.AvgRowBytes(),
                                            block_size);
          const std::vector<RowRange> psplits =
              storage::SplitRowsByBlockSize(probe_rows.size(),
                                            probe_in.AvgRowBytes(),
                                            block_size);
          PartitionBuffer<size_t> bbuf(bsplits.size(), num_buckets);
          PartitionBuffer<size_t> pbuf(psplits.size(), num_buckets);
          probe_bucket.assign(probe_rows.size(), 0);
          if (flat) {
            if (cached == nullptr) build_hash.resize(build_rows.size());
            probe_hash.resize(probe_rows.size());
          }
          // On a recycle hit the build side needs no producers at all.
          const size_t nb = cached != nullptr ? 0 : bsplits.size();
          OPD_RETURN_NOT_OK(RunPipelinedShuffle(
              pipe, nb + psplits.size(),
              [&](size_t t) -> Status {
                const bool is_build = t < nb;
                const size_t side_t = is_build ? t : t - nb;
                const RowRange& split =
                    is_build ? bsplits[side_t] : psplits[side_t];
                const std::vector<Row>& rows =
                    is_build ? build_rows : probe_rows;
                const std::vector<size_t>& keys =
                    is_build ? build_keys : probe_keys;
                PartitionBuffer<size_t>& buf = is_build ? bbuf : pbuf;
                buf.ReserveProducer(side_t, split.size());
                if (flat) {
                  std::vector<uint64_t>& hashes =
                      is_build ? build_hash : probe_hash;
                  for (size_t r = split.begin; r < split.end; ++r) {
                    const uint64_t h = hash::FlatRowKeyHash(rows[r], keys);
                    hashes[r] = h;
                    const uint32_t b = num_buckets <= 1
                                           ? 0
                                           : hash::BucketOf(h, num_buckets);
                    if (!is_build) probe_bucket[r] = b;
                    buf.Append(side_t, b, r);
                  }
                  return Status::OK();
                }
                for (size_t r = split.begin; r < split.end; ++r) {
                  uint32_t b = 0;
                  if (num_buckets > 1) {
                    // Hoisted key hash: no temporary key Row per probe.
                    b = static_cast<uint32_t>(
                        hash::LegacyRowKeyHash(rows[r], keys) % num_buckets);
                  }
                  if (!is_build) probe_bucket[r] = b;
                  buf.Append(side_t, b, r);
                }
                return Status::OK();
              },
              num_buckets,
              [&](size_t b) -> Status {
                return reduce_bucket(
                    b, bbuf.BucketSize(b),
                    [&](auto&& f) { bbuf.ForEachInBucket(b, f); },
                    pbuf.BucketSize(b),
                    [&](auto&& f) { pbuf.ForEachInBucket(b, f); });
              },
              &part_s, &reduce_max_s));
          job_skew = BufferSkew(pbuf);
        } else {
          // Phased: partition both inputs (barrier), scatter, then the
          // reduce wave.
          double part_build_s = 0, part_probe_s = 0;
          std::vector<uint32_t> build_bucket;
          if (flat && cached != nullptr) {
            // Recycle hit: only the probe side needs a partition wave.
            OPD_RETURN_NOT_OK(ComputeBucketsFlat(
                pctx, "partition:probe", probe_in, probe_keys, num_buckets,
                block_size, &probe_bucket, &probe_hash, &part_probe_s));
          } else if (flat) {
            OPD_RETURN_NOT_OK(ComputeBucketsFlat(
                pctx, "partition:build", build_in, build_keys, num_buckets,
                block_size, &build_bucket, &build_hash, &part_build_s));
            OPD_RETURN_NOT_OK(ComputeBucketsFlat(
                pctx, "partition:probe", probe_in, probe_keys, num_buckets,
                block_size, &probe_bucket, &probe_hash, &part_probe_s));
          } else {
            OPD_RETURN_NOT_OK(ComputeBuckets(pctx, "partition:build",
                                             build_in, build_keys,
                                             num_buckets, block_size,
                                             &build_bucket, &part_build_s));
            OPD_RETURN_NOT_OK(ComputeBuckets(pctx, "partition:probe",
                                             probe_in, probe_keys,
                                             num_buckets, block_size,
                                             &probe_bucket, &part_probe_s));
          }
          part_s = part_build_s + part_probe_s;
          const auto build_lists =
              cached != nullptr
                  ? std::vector<std::vector<size_t>>(num_buckets)
                  : BucketLists(build_bucket, num_buckets);
          const auto probe_lists = BucketLists(probe_bucket, num_buckets);
          job_skew = BucketSkew(probe_lists);
          OPD_RETURN_NOT_OK(RunPhase(
              pctx, "reduce", num_buckets,
              [&](size_t b) -> Status {
                return reduce_bucket(
                    b, build_lists[b].size(),
                    [&](auto&& f) {
                      for (size_t r : build_lists[b]) f(r);
                    },
                    probe_lists[b].size(),
                    [&](auto&& f) {
                      for (size_t p : probe_lists[b]) f(p);
                    });
              },
              &reduce_max_s));
        }
        job_max_task_s = part_s + reduce_max_s;

        if (pending != nullptr) {
          pending->build_cost_s =
              static_cast<double>(build_ns.load(std::memory_order_relaxed)) *
              1e-9;
          observe_recycle_insert(recycler->Insert(rkey, std::move(pending)));
          pending.reset();
        }

        // Deterministic merge: emit matches in probe-row order (each
        // bucket's output is already ordered by probe index, so a cursor
        // per bucket suffices). Identical for every thread/bucket count.
        size_t total = 0;
        for (const auto& b : bucket_out) total += b.size();
        out.Reserve(total);
        std::vector<size_t> cursor(num_buckets, 0);
        for (size_t p = 0; p < probe_in.num_rows(); ++p) {
          auto& local = bucket_out[probe_bucket[p]];
          size_t& c = cursor[probe_bucket[p]];
          while (c < local.size() && local[c].first == p) {
            OPD_RETURN_NOT_OK(out.AppendRow(std::move(local[c].second)));
            ++c;
          }
        }
        break;
      }
      case OpKind::kGroupByAgg: {
        const Table& in = *inputs[0];
        has_shuffle = true;
        shuffle_bytes = in_bytes;
        std::vector<size_t> key_idx;
        for (const std::string& key : node->group.keys) {
          OPD_ASSIGN_OR_RETURN(size_t i, ColIndex(in.schema(), key));
          key_idx.push_back(i);
        }
        std::vector<std::optional<size_t>> agg_idx;
        for (const auto& spec : node->group.aggs) {
          if (spec.input.empty()) {
            agg_idx.push_back(std::nullopt);
          } else {
            OPD_ASSIGN_OR_RETURN(size_t i, ColIndex(in.schema(), spec.input));
            agg_idx.push_back(i);
          }
        }
        const size_t num_buckets = DeriveReduceTasks(
            options_.num_reduce_tasks, shuffle_bytes, block_size);
        job_reduce_tasks = num_buckets;

        using GroupEntry = std::pair<Row, std::vector<AggState>>;
        double part_s = 0, reduce_max_s = 0;
        std::vector<std::vector<GroupEntry>> bucket_groups(num_buckets);
        // Optimizer cardinality estimate (product of key distincts from the
        // sampled stats, capped by input rows): pre-sizes each bucket's flat
        // group index when it is available — the bucket's group count is
        // roughly est_groups/num_buckets, far below its row count for
        // duplicate-heavy keys. Growth past the estimate is what the
        // engine.shuffle.ht_resizes counter measures.
        const size_t est_groups =
            node->est_rows > 0 ? static_cast<size_t>(node->est_rows) : 0;
        auto group_hint = [&](size_t bucket_n) -> size_t {
          return est_groups > 0
                     ? std::min(bucket_n, est_groups / num_buckets + 1)
                     : bucket_n;
        };

        // Hash recycling for group-by: the aggregates are query-specific,
        // so the recycler caches the *grouping routes* — per bucket, each
        // input row (in reduce order) with the dense group id it folded
        // into, plus a copy of each group's key. A hit skips partitioning
        // and group discovery entirely and replays the routes with a
        // hash-free linear pass, folding this query's aggregates from the
        // live input.
        hash::RecycleKey grkey;
        std::shared_ptr<const hash::CachedBuild> gcached;
        std::shared_ptr<hash::CachedBuild> gpending;
        const OpNode* in_child = node->children[0].get();
        const std::string* in_identity =
            (recycler != nullptr && flat) ? scan_ident(in_child) : nullptr;

        if (vectorized) {
          const BatchList in_list(in);
          std::vector<hash::KeyCodec> codecs;
          if (flat) {
            codecs = hash::PlanKeyCodecs({{in_list.batches.get(), &key_idx}});
          }
          std::vector<uint64_t> hash_of;

          if (in_identity != nullptr) {
            grkey.kind = hash::RecycleKind::kGroupByBatch;
            grkey.identity = *in_identity;
            grkey.key_cols = key_idx;
            grkey.codec_modes.reserve(codecs[0].modes.size());
            for (hash::KeyColMode m : codecs[0].modes) {
              grkey.codec_modes.push_back(static_cast<uint8_t>(m));
            }
            grkey.num_buckets = static_cast<uint32_t>(num_buckets);
            gcached = recycler->Lookup(grkey, in_list.batches.get());
            count_recycle(gcached != nullptr);
            if (gcached == nullptr) {
              gpending = std::make_shared<hash::CachedBuild>();
              gpending->group_rows_batch.resize(num_buckets);
              gpending->group_of.resize(num_buckets);
              gpending->group_keys.resize(num_buckets);
              gpending->batches = in_list.batches;
              gpending->pin = in_list.batches.get();
              gpending->view_id = in_child->view_id;
            }
          }

          // Reduce body shared by both schedules: hash-aggregate one
          // bucket, keying groups by the packed key bytes; the key Row is
          // materialized once per group. Rows of a key fold in original row
          // order, so floating point accumulation matches the serial pass.
          auto reduce_bucket = [&](size_t b, size_t bucket_n,
                                   const auto& for_each) -> Status {
            std::vector<GroupEntry>& groups = bucket_groups[b];
            if (flat) {
              hash::FlatGroupIndex index;
              index.Reserve(group_hint(bucket_n),
                            codecs[0].bounded ? codecs[0].width_bound : 0);
              hash::KeyScratch key;
              for_each([&](RowRef ref) {
                const RowBatch& batch = in_list.batch(ref.batch);
                hash::NormalizeKey(batch, ref.idx, codecs[0], &key);
                const size_t g = in_list.offsets[ref.batch] + ref.idx;
                auto [id, inserted] =
                    index.InsertOrGet(hash_of[g], key.data(), key.size());
                if (inserted) {
                  Row krow;
                  krow.reserve(key_idx.size());
                  for (size_t c : key_idx) {
                    krow.push_back(batch.column(c).GetValue(ref.idx));
                  }
                  // Copy the key into the recycler record *before* the
                  // move below (the merge later moves keys out of groups).
                  if (gpending != nullptr) {
                    gpending->group_keys[b].push_back(krow);
                  }
                  groups.emplace_back(
                      std::move(krow),
                      std::vector<AggState>(node->group.aggs.size()));
                }
                if (gpending != nullptr) {
                  gpending->group_rows_batch[b].push_back(ref);
                  gpending->group_of[b].push_back(id);
                }
                auto& states_ = groups[id].second;
                for (size_t a = 0; a < states_.size(); ++a) {
                  states_[a].Update(
                      agg_idx[a]
                          ? batch.column(*agg_idx[a]).GetValue(ref.idx)
                          : Value(int64_t{1}));
                }
              });
              if (ht_load_hist != nullptr && index.size() > 0) {
                ht_load_hist->Observe(index.load_factor());
              }
              observe_flat(index.stats(), index.arena_bytes());
              return Status::OK();
            }
            std::unordered_map<std::string, size_t> index;
            index.reserve(bucket_n);
            std::string key;
            for_each([&](RowRef ref) {
              const RowBatch& batch = in_list.batch(ref.batch);
              key.clear();
              PackKeys(batch, ref.idx, key_idx, &key);
              auto [it, inserted] = index.try_emplace(key, groups.size());
              if (inserted) {
                Row krow;
                krow.reserve(key_idx.size());
                for (size_t c : key_idx) {
                  krow.push_back(batch.column(c).GetValue(ref.idx));
                }
                groups.emplace_back(
                    std::move(krow),
                    std::vector<AggState>(node->group.aggs.size()));
              }
              auto& states_ = groups[it->second].second;
              for (size_t a = 0; a < states_.size(); ++a) {
                states_[a].Update(
                    agg_idx[a]
                        ? batch.column(*agg_idx[a]).GetValue(ref.idx)
                        : Value(int64_t{1}));
              }
            });
            if (ht_load_hist != nullptr && !index.empty()) {
              ht_load_hist->Observe(index.load_factor());
            }
            return Status::OK();
          };

          if (gcached != nullptr) {
            // Recycle hit: no partitioning, no hashing — replay the
            // recorded routes per bucket, folding this query's aggregates
            // from the live input. Route order == the original reduce
            // order == global row order per bucket, so float accumulation
            // and first-seen group order are byte-identical to a rebuild.
            OPD_RETURN_NOT_OK(RunPhase(
                pctx, "reduce", num_buckets,
                [&](size_t b) -> Status {
                  const auto& rrows = gcached->group_rows_batch[b];
                  const auto& rgof = gcached->group_of[b];
                  const auto& rkeys = gcached->group_keys[b];
                  std::vector<GroupEntry>& groups = bucket_groups[b];
                  groups.reserve(rkeys.size());
                  for (size_t i = 0; i < rrows.size(); ++i) {
                    const uint32_t id = rgof[i];
                    if (id == groups.size()) {
                      groups.emplace_back(
                          rkeys[id],
                          std::vector<AggState>(node->group.aggs.size()));
                    }
                    const RowRef ref = rrows[i];
                    const RowBatch& batch = in_list.batch(ref.batch);
                    auto& states_ = groups[id].second;
                    for (size_t a = 0; a < states_.size(); ++a) {
                      states_[a].Update(
                          agg_idx[a]
                              ? batch.column(*agg_idx[a]).GetValue(ref.idx)
                              : Value(int64_t{1}));
                    }
                  }
                  return Status::OK();
                },
                &reduce_max_s));
          } else if (pipelined) {
            // Fused map+partition: one producer per batch hashes straight
            // into its per-bucket buffer slots.
            PartitionBuffer<RowRef> buf(in_list.size(), num_buckets);
            if (flat) hash_of.resize(in_list.num_rows);
            OPD_RETURN_NOT_OK(RunPipelinedShuffle(
                pipe, in_list.size(),
                [&](size_t t) -> Status {
                  const RowBatch& batch = in_list.batch(t);
                  buf.ReserveProducer(t, batch.num_rows());
                  if (flat) {
                    uint64_t* hashes = hash_of.data() + in_list.offsets[t];
                    hash::HashKeys(batch, key_idx, hashes);
                    for (size_t i = 0; i < batch.num_rows(); ++i) {
                      const uint32_t b =
                          num_buckets <= 1
                              ? 0
                              : hash::BucketOf(hashes[i], num_buckets);
                      buf.Append(t, b,
                                 RowRef{static_cast<uint32_t>(t),
                                        static_cast<uint32_t>(i)});
                    }
                    return Status::OK();
                  }
                  for (size_t i = 0; i < batch.num_rows(); ++i) {
                    const uint32_t b =
                        num_buckets <= 1
                            ? 0
                            : static_cast<uint32_t>(
                                  batch.HashKeysAt(i, key_idx) %
                                  num_buckets);
                    buf.Append(t, b,
                               RowRef{static_cast<uint32_t>(t),
                                      static_cast<uint32_t>(i)});
                  }
                  return Status::OK();
                },
                num_buckets,
                [&](size_t b) -> Status {
                  return reduce_bucket(b, buf.BucketSize(b), [&](auto&& f) {
                    buf.ForEachInBucket(b, f);
                  });
                },
                &part_s, &reduce_max_s));
            job_skew = BufferSkew(buf);
          } else {
            // Phased: partition (barrier), scatter, then the reduce wave.
            std::vector<uint32_t> bucket_of;
            if (flat) {
              OPD_RETURN_NOT_OK(ComputeBucketsBatchFlat(
                  pctx, "partition", in_list, key_idx, num_buckets,
                  &bucket_of, &hash_of, &part_s));
            } else {
              OPD_RETURN_NOT_OK(ComputeBucketsBatch(pctx, "partition",
                                                    in_list, key_idx,
                                                    num_buckets, &bucket_of,
                                                    &part_s));
            }
            const auto lists =
                BucketRefLists(in_list, bucket_of, num_buckets);
            job_skew = BucketSkew(lists);
            OPD_RETURN_NOT_OK(RunPhase(
                pctx, "reduce", num_buckets,
                [&](size_t b) -> Status {
                  return reduce_bucket(b, lists[b].size(), [&](auto&& f) {
                    for (RowRef ref : lists[b]) f(ref);
                  });
                },
                &reduce_max_s));
          }
        } else {
          // Row-at-a-time group-by; same structure as the batch path with
          // Row keys instead of packed key bytes.
          std::vector<uint64_t> hash_of;

          if (in_identity != nullptr) {
            grkey.kind = hash::RecycleKind::kGroupByRow;
            grkey.identity = *in_identity;
            grkey.key_cols = key_idx;
            grkey.num_buckets = static_cast<uint32_t>(num_buckets);
            gcached = recycler->Lookup(grkey, inputs[0].get());
            count_recycle(gcached != nullptr);
            if (gcached == nullptr) {
              gpending = std::make_shared<hash::CachedBuild>();
              gpending->group_rows_row.resize(num_buckets);
              gpending->group_of.resize(num_buckets);
              gpending->group_keys.resize(num_buckets);
              gpending->table = inputs[0];
              gpending->pin = inputs[0].get();
              gpending->view_id = in_child->view_id;
            }
          }

          auto reduce_bucket = [&](size_t b, size_t bucket_n,
                                   const auto& for_each) -> Status {
            std::vector<GroupEntry>& groups = bucket_groups[b];
            if (flat) {
              hash::FlatGroupIndex index;
              index.Reserve(group_hint(bucket_n), 0);
              hash::KeyScratch key;
              for_each([&](size_t r) {
                const Row& row = in.row(r);
                hash::NormalizeKeyRow(row, key_idx, &key);
                auto [id, inserted] =
                    index.InsertOrGet(hash_of[r], key.data(), key.size());
                if (inserted) {
                  Row krow;
                  krow.reserve(key_idx.size());
                  for (size_t i : key_idx) krow.push_back(row[i]);
                  if (gpending != nullptr) {
                    gpending->group_keys[b].push_back(krow);
                  }
                  groups.emplace_back(
                      std::move(krow),
                      std::vector<AggState>(node->group.aggs.size()));
                }
                if (gpending != nullptr) {
                  gpending->group_rows_row[b].push_back(r);
                  gpending->group_of[b].push_back(id);
                }
                auto& states_ = groups[id].second;
                for (size_t a = 0; a < states_.size(); ++a) {
                  states_[a].Update(agg_idx[a] ? row[*agg_idx[a]]
                                               : Value(int64_t{1}));
                }
              });
              if (ht_load_hist != nullptr && index.size() > 0) {
                ht_load_hist->Observe(index.load_factor());
              }
              observe_flat(index.stats(), index.arena_bytes());
              return Status::OK();
            }
            std::unordered_map<Row, size_t, RowHash> index;
            index.reserve(bucket_n);
            for_each([&](size_t r) {
              const Row& row = in.row(r);
              Row key;
              key.reserve(key_idx.size());
              for (size_t i : key_idx) key.push_back(row[i]);
              auto [it, inserted] =
                  index.try_emplace(std::move(key), groups.size());
              if (inserted) {
                groups.emplace_back(it->first,
                                    std::vector<AggState>(
                                        node->group.aggs.size()));
              }
              auto& states_ = groups[it->second].second;
              for (size_t a = 0; a < states_.size(); ++a) {
                states_[a].Update(agg_idx[a] ? row[*agg_idx[a]]
                                             : Value(int64_t{1}));
              }
            });
            if (ht_load_hist != nullptr && !index.empty()) {
              ht_load_hist->Observe(index.load_factor());
            }
            return Status::OK();
          };

          if (gcached != nullptr) {
            // Recycle hit: replay the recorded routes (see the batch path).
            OPD_RETURN_NOT_OK(RunPhase(
                pctx, "reduce", num_buckets,
                [&](size_t b) -> Status {
                  const auto& rrows = gcached->group_rows_row[b];
                  const auto& rgof = gcached->group_of[b];
                  const auto& rkeys = gcached->group_keys[b];
                  std::vector<GroupEntry>& groups = bucket_groups[b];
                  groups.reserve(rkeys.size());
                  for (size_t i = 0; i < rrows.size(); ++i) {
                    const uint32_t id = rgof[i];
                    if (id == groups.size()) {
                      groups.emplace_back(
                          rkeys[id],
                          std::vector<AggState>(node->group.aggs.size()));
                    }
                    const Row& row = in.row(rrows[i]);
                    auto& states_ = groups[id].second;
                    for (size_t a = 0; a < states_.size(); ++a) {
                      states_[a].Update(agg_idx[a] ? row[*agg_idx[a]]
                                                   : Value(int64_t{1}));
                    }
                  }
                  return Status::OK();
                },
                &reduce_max_s));
          } else if (pipelined) {
            const std::vector<Row>& rows = in.rows();
            const std::vector<RowRange> splits =
                storage::SplitRowsByBlockSize(rows.size(), in.AvgRowBytes(),
                                              block_size);
            PartitionBuffer<size_t> buf(splits.size(), num_buckets);
            if (flat) hash_of.resize(rows.size());
            OPD_RETURN_NOT_OK(RunPipelinedShuffle(
                pipe, splits.size(),
                [&](size_t t) -> Status {
                  const RowRange& split = splits[t];
                  buf.ReserveProducer(t, split.size());
                  if (flat) {
                    for (size_t r = split.begin; r < split.end; ++r) {
                      const uint64_t h =
                          hash::FlatRowKeyHash(rows[r], key_idx);
                      hash_of[r] = h;
                      buf.Append(t,
                                 num_buckets <= 1
                                     ? 0
                                     : hash::BucketOf(h, num_buckets),
                                 r);
                    }
                    return Status::OK();
                  }
                  for (size_t r = split.begin; r < split.end; ++r) {
                    uint32_t b = 0;
                    if (num_buckets > 1) {
                      // Hoisted key hash: no temporary key Row per row.
                      b = static_cast<uint32_t>(
                          hash::LegacyRowKeyHash(rows[r], key_idx) %
                          num_buckets);
                    }
                    buf.Append(t, b, r);
                  }
                  return Status::OK();
                },
                num_buckets,
                [&](size_t b) -> Status {
                  return reduce_bucket(b, buf.BucketSize(b), [&](auto&& f) {
                    buf.ForEachInBucket(b, f);
                  });
                },
                &part_s, &reduce_max_s));
            job_skew = BufferSkew(buf);
          } else {
            std::vector<uint32_t> bucket_of;
            if (flat) {
              OPD_RETURN_NOT_OK(ComputeBucketsFlat(
                  pctx, "partition", in, key_idx, num_buckets, block_size,
                  &bucket_of, &hash_of, &part_s));
            } else {
              OPD_RETURN_NOT_OK(ComputeBuckets(pctx, "partition", in,
                                               key_idx, num_buckets,
                                               block_size, &bucket_of,
                                               &part_s));
            }
            const auto lists = BucketLists(bucket_of, num_buckets);
            job_skew = BucketSkew(lists);
            OPD_RETURN_NOT_OK(RunPhase(
                pctx, "reduce", num_buckets,
                [&](size_t b) -> Status {
                  return reduce_bucket(b, lists[b].size(), [&](auto&& f) {
                    for (size_t r : lists[b]) f(r);
                  });
                },
                &reduce_max_s));
          }
        }
        job_max_task_s = part_s + reduce_max_s;

        if (gpending != nullptr) {
          // Benefit = the partition + reduce wall a future hit skips (the
          // replay pass it pays instead is a fraction of it).
          gpending->build_cost_s = part_s + reduce_max_s;
          observe_recycle_insert(recycler->Insert(grkey, std::move(gpending)));
          gpending.reset();
        }

        // Deterministic merge: groups sorted by key — the order the old
        // ordered-map implementation emitted, for any thread/bucket count.
        std::vector<GroupEntry*> ordered;
        size_t num_groups = 0;
        for (auto& g : bucket_groups) num_groups += g.size();
        ordered.reserve(num_groups);
        for (auto& groups : bucket_groups) {
          for (GroupEntry& g : groups) ordered.push_back(&g);
        }
        std::sort(ordered.begin(), ordered.end(),
                  [](const GroupEntry* a, const GroupEntry* b) {
                    return RowLess()(a->first, b->first);
                  });
        const auto& out_cols = node->out_schema.columns();
        out.Reserve(ordered.size());
        for (GroupEntry* g : ordered) {
          Row r = std::move(g->first);
          const size_t key_size = r.size();
          r.reserve(key_size + g->second.size());
          for (size_t a = 0; a < g->second.size(); ++a) {
            r.push_back(FinishAgg(node->group.aggs[a], g->second[a],
                                  out_cols[key_size + a].type));
          }
          OPD_RETURN_NOT_OK(out.AppendRow(std::move(r)));
        }
        break;
      }
      case OpKind::kUdf: {
        // UDF local functions are opaque per-row/per-group user code: the
        // engine falls back to row-at-a-time execution at this boundary
        // (batch-primary inputs materialize their rows lazily). In
        // pipelined mode consecutive map stages fuse into one row loop and
        // reduce stages use the latch-scheduled shuffle.
        OPD_ASSIGN_OR_RETURN(const udf::UdfDefinition* def,
                             ctx.udfs->Find(node->udf.udf_name));
        std::vector<LfStageRun> stage_runs;
        UdfExecOptions udf_opts;
        udf_opts.pool = pool_.get();
        udf_opts.block_size_bytes = block_size;
        udf_opts.num_reduce_tasks = options_.num_reduce_tasks;
        udf_opts.pipelined = pipelined;
        udf_opts.flat_hash = flat;
        udf_opts.trace = trace;
        udf_opts.parent_span = span_id;
        udf_opts.trace_tasks = options_.trace_tasks;
        udf_opts.tasks = &job_tasks;
        OPD_RETURN_NOT_OK(RunLocalFunctions(*def, *inputs[0],
                                            node->udf.params, &out,
                                            &stage_runs, udf_opts));
        has_shuffle = def->HasShuffle();
        map_scalar = def->map_scalar;
        reduce_scalar = def->reduce_scalar;
        // Shuffle bytes: output of the last map stage before the first
        // reduce (the data that actually crosses the network). The job's
        // straggler time is the sum of its stage barriers' slowest tasks.
        bool saw_reduce = false;
        for (const LfStageRun& run : stage_runs) {
          if (!saw_reduce && run.kind == udf::LfKind::kReduce) {
            shuffle_bytes = run.in_bytes;
            saw_reduce = true;
          }
          job_max_task_s += run.max_task_seconds;
        }
        break;
      }
    }
    return Status::OK();
    }();
    if (!body.ok()) {
      st.status = std::move(body);
      return;
    }

    st.out_bytes = out.ByteSize();
    st.out_rows = out.num_rows();
    st.cost = model.JobCost(
        static_cast<double>(in_bytes), static_cast<double>(shuffle_bytes),
        static_cast<double>(st.out_bytes), map_scalar, reduce_scalar,
        has_shuffle);
    st.shuffle_bytes = shuffle_bytes;
    st.has_shuffle = has_shuffle;
    st.max_task_s = job_max_task_s;
    st.reduce_tasks = job_reduce_tasks;
    st.tasks = job_tasks;
    st.skew = job_skew;
    st.recycle_hits = job_recycle_hits;
    st.recycle_misses = job_recycle_misses;
    st.wall_s = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - job_wall_start)
                    .count();
    out.set_name(specs[j].path);
    st.table = std::make_shared<const Table>(std::move(out));
  };

  // --- Serial finalize ------------------------------------------------------
  // Every ordering-sensitive side effect happens here, in job-index (topo)
  // order, regardless of the execution schedule: DFS writes, metric and
  // JobRun accumulation, and ViewStore insertion (ViewIds are assigned in
  // insertion order and must not depend on thread timing).
  auto finalize_job = [&](size_t j, obs::TraceSpan* job_span) -> Status {
    JobState& st = states[j];
    const OpNodePtr& node_ptr = *specs[j].node;
    OpNode* node = node_ptr.get();

    metrics.sim_time_s += st.cost.total_s;
    metrics.bytes_read += st.in_bytes;
    metrics.rows_read += st.in_rows;
    metrics.bytes_shuffled += st.shuffle_bytes;
    metrics.bytes_written += st.out_bytes;
    metrics.jobs += 1;
    metrics.max_task_time_s += st.max_task_s;

    // Materialize the job output to the DFS (Hive materializes every job).
    OPD_RETURN_NOT_OK(dfs_->Write(specs[j].path, st.table));
    results[node] = st.table;

    JobRun jr;
    jr.index = static_cast<int>(j);
    jr.node = node;
    jr.op = node->DisplayName();
    jr.sim_time_s = st.cost.total_s;
    jr.wall_time_s = st.wall_s;
    jr.bytes_read = st.in_bytes;
    jr.bytes_shuffled = st.shuffle_bytes;
    jr.bytes_written = st.out_bytes;
    jr.rows_in = st.in_rows;
    jr.rows_out = st.out_rows;
    jr.map_tasks = st.tasks >= st.reduce_tasks ? st.tasks - st.reduce_tasks
                                               : 0;
    jr.reduce_tasks = st.reduce_tasks;
    jr.max_task_time_s = st.max_task_s;
    jr.pipelined = pipelined;
    jr.recycle_hits = st.recycle_hits;
    jr.recycle_misses = st.recycle_misses;
    // Cost-model accountability: the optimizer's prediction (cost over
    // estimated rows/bytes, annotated at Prepare) vs the model re-run on
    // the observed byte counts. Finalize order is topological in both
    // schedules, so the EWMA fold is deterministic.
    jr.predicted_cost_s = node->cost.total_s;
    jr.observed_proxy_cost_s = st.cost.total_s;
    jr.residual_pct =
        optimizer::ResidualPct(jr.predicted_cost_s, jr.observed_proxy_cost_s);
    if (accountant_ != nullptr) {
      optimizer::JobResidual res;
      res.op_class = ResidualOpClass(*node);
      res.predicted_s = jr.predicted_cost_s;
      res.observed_s = jr.observed_proxy_cost_s;
      res.residual_pct = jr.residual_pct;
      accountant_->Record(res);
    }
    result.jobs.push_back(std::move(jr));

    if (job_span != nullptr && *job_span) {
      job_span->AddArg("sim_time_s", st.cost.total_s);
      job_span->AddArg("bytes_read", st.in_bytes);
      job_span->AddArg("bytes_shuffled", st.shuffle_bytes);
      job_span->AddArg("bytes_written", st.out_bytes);
      job_span->AddArg("rows_out", st.out_rows);
      job_span->AddArg("max_task_time_s", st.max_task_s);
    }
    if (options_.metrics) {
      registry.counter("engine.jobs").Inc();
      registry.counter("engine.bytes_read").Inc(st.in_bytes);
      registry.counter("engine.bytes_shuffled").Inc(st.shuffle_bytes);
      registry.counter("engine.bytes_written").Inc(st.out_bytes);
      if (st.skew > 0) skew_hist->Observe(st.skew);
    }

    if (options_.retain_views) {
      catalog::ViewDefinition def;
      def.dfs_path = specs[j].path;
      def.afk = node->afk;
      def.out_attrs = node->out_attrs;
      def.schema = node->out_schema;
      def.fingerprint = plan::Fingerprint(node_ptr);
      def.bytes = st.out_bytes;
      def.producer = plan->name();
      if (options_.collect_stats) {
        obs::TraceSpan stats_span(trace,
                                  job_span != nullptr ? job_span->id() : 0,
                                  "stats", "phase");
        const auto stats_start = std::chrono::steady_clock::now();
        def.stats = stats_.Collect(*st.table, pool_.get());
        metrics.stats_wall_time_s +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          stats_start)
                .count();
        metrics.stats_time_s += stats_.JobTime(*st.table, model);
      } else {
        def.stats.rows = static_cast<double>(st.table->num_rows());
        def.stats.avg_row_bytes = st.table->AvgRowBytes();
      }
      // The definition is complete here (data in DFS, stats collected) but
      // is not yet visible: the whole run's views publish as one atomic
      // batch below (or by the serving layer, when deferred).
      result.pending_views.push_back(std::move(def));
    }
    return Status::OK();
  };

  // --- Schedule -------------------------------------------------------------
  // Cross-job DAG scheduling runs independent jobs concurrently on the
  // shared pool. It is an untraced-only optimization: span ids must be
  // allocated in deterministic order, which requires serial job execution.
  const bool dag_schedule = pipelined && pool_ != nullptr &&
                            trace == nullptr && specs.size() > 1;
  if (!dag_schedule) {
    for (size_t j = 0; j < specs.size(); ++j) {
      obs::TraceSpan job_span(trace, parent_span,
                              "job:" + (*specs[j].node)->DisplayName(),
                              "job");
      run_job(j, &job_span);
      OPD_RETURN_NOT_OK(states[j].status);
      OPD_RETURN_NOT_OK(finalize_job(j, &job_span));
    }
  } else {
    const size_t n = specs.size();
    std::vector<std::vector<size_t>> consumers(n);
    auto remaining_deps = std::make_unique<std::atomic<size_t>[]>(n);
    for (size_t j = 0; j < n; ++j) {
      remaining_deps[j].store(specs[j].producers.size(),
                              std::memory_order_relaxed);
      for (size_t p : specs[j].producers) consumers[p].push_back(j);
    }
    CountdownLatch all_done(n);
    // Each job runs as one pool task; finishing a job releases its
    // consumers (dependency countdown), failed producers leave their table
    // null and consumers report "missing child result" — the finalize loop
    // below still returns the lowest-index (root cause) error.
    std::function<void(size_t)> submit_job = [&](size_t j) {
      pool_->Submit([&, j] {
        run_job(j, nullptr);
        for (size_t c : consumers[j]) {
          if (remaining_deps[c].fetch_sub(1, std::memory_order_acq_rel) ==
              1) {
            submit_job(c);
          }
        }
        all_done.CountDown();
      });
    };
    for (size_t j = 0; j < n; ++j) {
      if (specs[j].producers.empty()) submit_job(j);
    }
    all_done.Wait(pool_.get());
    for (size_t j = 0; j < n; ++j) {
      OPD_RETURN_NOT_OK(states[j].status);
      OPD_RETURN_NOT_OK(finalize_job(j, nullptr));
    }
  }

  auto sink = results.find(plan->root().get());
  if (sink == results.end()) {
    return Status::Internal("plan produced no sink result");
  }

  // Publish the run's retained views as one atomic batch (one epoch bump
  // per Execute), unless the caller — the serving layer — asked to defer
  // publication to query completion.
  if (options_.retain_views && !options_.defer_view_publish) {
    const auto published = views_->PublishBatch(std::move(result.pending_views));
    result.pending_views.clear();
    for (const auto& pub : published) {
      if (!pub.added) continue;
      metrics.views_created += 1;
      if (options_.metrics) registry.counter("engine.views_created").Inc();
    }
  }

  result.table = sink->second;
  result.metrics = metrics;
  return result;
}

}  // namespace opd::exec
