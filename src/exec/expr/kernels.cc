#include "exec/expr/kernels.h"

namespace opd::exec::expr {

namespace {

// One tight loop per comparison operator: the operator dispatch happens
// once per kernel call, never inside the loop body. `load(i)` converts the
// lane element to double; each loop body is a single compare + byte store.
template <typename LoadFn>
void MaskLoop(size_t n, afk::CmpOp op, double lit, uint8_t* mask,
              LoadFn load) {
  switch (op) {
    case afk::CmpOp::kLt:
#pragma omp simd
      for (size_t i = 0; i < n; ++i) mask[i] = load(i) < lit ? 1 : 0;
      break;
    case afk::CmpOp::kLe:
#pragma omp simd
      for (size_t i = 0; i < n; ++i) mask[i] = load(i) <= lit ? 1 : 0;
      break;
    case afk::CmpOp::kGt:
#pragma omp simd
      for (size_t i = 0; i < n; ++i) mask[i] = load(i) > lit ? 1 : 0;
      break;
    case afk::CmpOp::kGe:
#pragma omp simd
      for (size_t i = 0; i < n; ++i) mask[i] = load(i) >= lit ? 1 : 0;
      break;
    case afk::CmpOp::kEq:
#pragma omp simd
      for (size_t i = 0; i < n; ++i) mask[i] = load(i) == lit ? 1 : 0;
      break;
    case afk::CmpOp::kNe:
#pragma omp simd
      for (size_t i = 0; i < n; ++i) mask[i] = load(i) != lit ? 1 : 0;
      break;
  }
}

}  // namespace

void CompareMaskF64(const double* v, size_t n, afk::CmpOp op, double lit,
                    uint8_t* mask) {
  MaskLoop(n, op, lit, mask, [v](size_t i) { return v[i]; });
}

void CompareMaskI64(const int64_t* v, size_t n, afk::CmpOp op, double lit,
                    uint8_t* mask) {
  MaskLoop(n, op, lit, mask,
           [v](size_t i) { return static_cast<double>(v[i]); });
}

void CompareMaskBool(const uint8_t* v, size_t n, afk::CmpOp op, double lit,
                     uint8_t* mask) {
  MaskLoop(n, op, lit, mask,
           [v](size_t i) { return v[i] != 0 ? 1.0 : 0.0; });
}

void CompareMaskCodes(const uint32_t* codes, size_t n,
                      const uint8_t* dict_pass, uint8_t* mask) {
#pragma omp simd
  for (size_t i = 0; i < n; ++i) mask[i] = dict_pass[codes[i]];
}

void OverlayNullMask(const uint64_t* valid_words, size_t n, bool null_pass,
                     uint8_t* mask) {
  const uint8_t np = null_pass ? 1 : 0;
  for (size_t i = 0; i < n; ++i) {
    const uint8_t valid =
        static_cast<uint8_t>((valid_words[i >> 6] >> (i & 63)) & 1ULL);
    // valid ? mask[i] : np, as arithmetic select.
    mask[i] = static_cast<uint8_t>((mask[i] & (0 - valid)) |
                                   (np & (valid - 1)));
  }
}

void AndMask(const uint8_t* src, size_t n, uint8_t* dst) {
#pragma omp simd
  for (size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

size_t MaskToSelection(const uint8_t* mask, size_t n, uint32_t* sel) {
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    sel[k] = static_cast<uint32_t>(i);  // unconditional store
    k += mask[i] != 0;                  // cursor advances by the verdict
  }
  return k;
}

}  // namespace opd::exec::expr
