#include "exec/expr/expr_program.h"

#include <utility>

#include "exec/expr/kernels.h"

namespace opd::exec::expr {

using storage::ColumnVector;
using storage::ColumnVectorPtr;
using storage::DataType;
using storage::Dictionary;
using storage::RowBatch;
using storage::Value;

namespace {

bool IsNumericType(DataType t) {
  return t == DataType::kBool || t == DataType::kInt64 ||
         t == DataType::kDouble;
}

/// Per-entry verdicts for a string predicate over one dictionary, using the
/// row engine's own `EvalCmp` so verdicts are definitionally identical.
std::vector<uint8_t> EvalDictionary(const Dictionary& dict, afk::CmpOp op,
                                    const Value& literal) {
  std::vector<uint8_t> pass(dict.size());
  for (size_t c = 0; c < dict.size(); ++c) {
    pass[c] = afk::EvalCmp(Value(dict.entries[c]), op, literal) ? 1 : 0;
  }
  return pass;
}

}  // namespace

std::optional<ExprProgram> ExprProgram::Compile(
    size_t num_input_cols, const std::vector<ExprStep>& steps) {
  ExprProgram p;
  // colmap[j] = input-space index of the current intermediate's column j.
  std::vector<size_t> colmap(num_input_cols);
  for (size_t i = 0; i < num_input_cols; ++i) colmap[i] = i;

  for (const ExprStep& step : steps) {
    switch (step.kind) {
      case ExprStep::Kind::kFilterCompare: {
        if (step.col >= colmap.size()) return std::nullopt;
        Filter f;
        f.col = colmap[step.col];
        f.op = step.op;
        f.literal = step.literal;
        f.null_passes = afk::EvalCmp(Value::Null(), f.op, f.literal);
        p.filters_.push_back(std::move(f));
        break;
      }
      case ExprStep::Kind::kProject: {
        std::vector<size_t> next;
        next.reserve(step.cols.size());
        for (size_t c : step.cols) {
          if (c >= colmap.size()) return std::nullopt;
          next.push_back(colmap[c]);
        }
        colmap = std::move(next);
        p.has_project_ = true;
        break;
      }
    }
  }
  p.output_cols_ = std::move(colmap);
  return p;
}

void ExprProgram::BindDictionaries(
    const std::vector<storage::RowBatch>& batches) {
  for (Filter& f : filters_) {
    if (f.literal.type() != DataType::kString) continue;
    for (const RowBatch& b : batches) {
      if (f.col >= b.num_columns()) continue;
      const ColumnVector& col = b.column(f.col);
      if (!col.is_native() || col.declared_type() != DataType::kString) {
        continue;
      }
      const Dictionary* dict = col.dict().get();
      if (dict == nullptr || f.dict_pass.count(dict) != 0) continue;
      f.dict_pass.emplace(dict, EvalDictionary(*dict, f.op, f.literal));
    }
  }
}

void ExprProgram::EvalFilterMask(const Filter& f, const RowBatch& batch,
                                 uint8_t* mask) const {
  const ColumnVector& col = batch.column(f.col);
  const size_t n = col.size();

  if (col.is_native() && !f.literal.is_null()) {
    if (IsNumericType(col.declared_type()) &&
        IsNumericType(f.literal.type())) {
      const double lit = f.literal.ToDouble();
      switch (col.declared_type()) {
        case DataType::kBool:
          CompareMaskBool(col.bools(), n, f.op, lit, mask);
          break;
        case DataType::kInt64:
          CompareMaskI64(col.ints(), n, f.op, lit, mask);
          break;
        case DataType::kDouble:
          CompareMaskF64(col.doubles(), n, f.op, lit, mask);
          break;
        default:
          break;  // unreachable: IsNumericType
      }
      if (col.null_count() != 0) {
        OverlayNullMask(col.valid_words(), n, f.null_passes, mask);
      }
      return;
    }
    if (col.declared_type() == DataType::kString &&
        f.literal.type() == DataType::kString) {
      const Dictionary* dict = col.dict().get();
      if (dict == nullptr || dict->size() == 0) {
        // No dictionary, or a (possibly shared, table-wide) dictionary that
        // no string was ever interned into: every cell is null, and null
        // cells carry code 0, which an empty verdict bitmap cannot index.
        for (size_t i = 0; i < n; ++i) mask[i] = f.null_passes ? 1 : 0;
        return;
      }
      auto it = f.dict_pass.find(dict);
      if (it != f.dict_pass.end()) {
        CompareMaskCodes(col.codes(), n, it->second.data(), mask);
      } else {
        // Dictionary not pre-bound: evaluate locally (uncached, correct).
        const std::vector<uint8_t> pass =
            EvalDictionary(*dict, f.op, f.literal);
        CompareMaskCodes(col.codes(), n, pass.data(), mask);
      }
      if (col.null_count() != 0) {
        OverlayNullMask(col.valid_words(), n, f.null_passes, mask);
      }
      return;
    }
  }
  // Generic lane: mixed-type columns, null literals, cross-class compares.
  for (size_t i = 0; i < n; ++i) {
    mask[i] = afk::EvalCmp(col.GetValue(i), f.op, f.literal) ? 1 : 0;
  }
}

RowBatch ExprProgram::Run(const RowBatch& batch, EvalScratch* scratch) const {
  const size_t n = batch.num_rows();
  const bool identity_project =
      !has_project_ && output_cols_.size() == batch.num_columns();

  if (filters_.empty()) {
    return identity_project ? batch : batch.Project(output_cols_);
  }

  if (scratch->mask.size() < n) scratch->mask.resize(n);
  uint8_t* mask = scratch->mask.data();
  EvalFilterMask(filters_[0], batch, mask);
  if (filters_.size() > 1) {
    if (scratch->step.size() < n) scratch->step.resize(n);
    uint8_t* step = scratch->step.data();
    for (size_t f = 1; f < filters_.size(); ++f) {
      EvalFilterMask(filters_[f], batch, step);
      AndMask(step, n, mask);
    }
  }

  if (scratch->sel.size() < n) scratch->sel.resize(n);
  const size_t k = MaskToSelection(mask, n, scratch->sel.data());

  // Full selection: nothing filtered out, fall back to the zero-copy
  // swizzle. Otherwise gather only the output columns through the
  // selection (dropped columns are never touched).
  RowBatch projected =
      identity_project ? batch : batch.Project(output_cols_);
  if (k == n) return projected;
  std::vector<ColumnVectorPtr> out;
  out.reserve(projected.num_columns());
  for (size_t c = 0; c < projected.num_columns(); ++c) {
    out.push_back(projected.column_ptr(c)->GatherTo(scratch->sel.data(), k));
  }
  return RowBatch(std::move(out), k);
}

}  // namespace opd::exec::expr
