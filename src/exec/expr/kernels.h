// Branchless, SIMD-friendly primitive kernels for the fused expression
// evaluator. Every loop here is written in autovectorizable form: no
// data-dependent branches in the body, fixed-trip-count iteration over flat
// arrays, one store per element. `#pragma omp simd` (compiled with
// -fopenmp-simd, no runtime dependency) marks the loops explicitly; they
// also vectorize under plain -O2.
//
// Masks are uint8_t lanes (1 = row passes) over the *full* batch, including
// null cells — null cells hold zero placeholders in the native arrays, so
// comparing them is harmless; `OverlayNullMask` then forces their lanes to
// the null comparison result. Selection vectors are ascending row indices;
// `MaskToSelection` compacts a mask into one without branching on pass/fail.
//
// Numeric comparisons go through double exactly like the row engine:
// `Value::operator==`/`operator<` compare `ToDouble()` for any two numeric
// cells, so int64/bool lanes are converted per element before comparing.
// This keeps fused results byte-identical to row mode (1 == 1.0 == true).

#ifndef OPD_EXEC_EXPR_KERNELS_H_
#define OPD_EXEC_EXPR_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "afk/predicate.h"

namespace opd::exec::expr {

/// mask[i] = (v[i] <op> lit), for all i in [0, n).
void CompareMaskF64(const double* v, size_t n, afk::CmpOp op, double lit,
                    uint8_t* mask);

/// mask[i] = ((double)v[i] <op> lit) — int64 lanes compare through double,
/// matching `Value::ToDouble()` row semantics.
void CompareMaskI64(const int64_t* v, size_t n, afk::CmpOp op, double lit,
                    uint8_t* mask);

/// mask[i] = ((v[i] ? 1.0 : 0.0) <op> lit) — bool lanes compare as 0/1.
void CompareMaskBool(const uint8_t* v, size_t n, afk::CmpOp op, double lit,
                     uint8_t* mask);

/// mask[i] = dict_pass[codes[i]] — dictionary-string predicate selected by
/// code; `dict_pass` is the per-entry verdict bitmap (1 byte per entry)
/// computed once per dictionary by `ExprProgram::BindDictionaries`.
void CompareMaskCodes(const uint32_t* codes, size_t n,
                      const uint8_t* dict_pass, uint8_t* mask);

/// Forces mask lanes of null cells to `null_pass` (the value of
/// `EvalCmp(null, op, literal)`); valid cells keep their computed verdict.
/// `valid_words` is the column's validity bitmap (bit i set = non-null).
void OverlayNullMask(const uint64_t* valid_words, size_t n, bool null_pass,
                     uint8_t* mask);

/// dst[i] &= src[i] — composes filter masks without materializing between
/// filter steps.
void AndMask(const uint8_t* src, size_t n, uint8_t* dst);

/// Compacts `mask` into ascending row indices: sel[k++] = i for every i
/// with mask[i] != 0. `sel` must have room for n entries. Returns the
/// selection length. Branchless: the store always happens, the cursor
/// advances by the mask bit.
size_t MaskToSelection(const uint8_t* mask, size_t n, uint32_t* sel);

}  // namespace opd::exec::expr

#endif  // OPD_EXEC_EXPR_KERNELS_H_
