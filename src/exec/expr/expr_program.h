// Fused expression evaluation for the batch engine.
//
// An `ExprProgram` is the compiled form of a project+filter chain: a list of
// compare filters (all referencing *input-space* columns, composed through
// any interleaved projections at compile time) plus one final output column
// map. Running a program is a single pass over a RowBatch:
//
//   1. each filter computes a branchless pass/fail byte mask over the full
//      batch with the typed kernels in kernels.h (null lanes are overlaid
//      with the null-comparison verdict afterwards);
//   2. masks AND together — filters compose by refining one verdict per row,
//      no rows are gathered between filter steps;
//   3. the combined mask compacts into one selection vector, and only the
//      *output* columns gather through it (`ColumnVector::GatherTo`), so
//      columns dropped by the projection are never copied. A full selection
//      (or a filter-free program) degenerates to a zero-copy column swizzle.
//
// Dictionary-encoded string columns stay dictionary-encoded across the whole
// program: string predicates are evaluated once per distinct dictionary
// entry (`BindDictionaries`, a serial pre-pass over the input batches — one
// verdict bitmap per shared dictionary, typically a single table-wide
// dictionary), per-row work is a byte lookup by code, and gathers copy
// 32-bit codes while sharing the dictionary pointer.
//
// Semantics are byte-identical to the row engine and to the unfused batch
// path: numeric comparisons go through double (`Value::ToDouble()`), null
// cells compare as `EvalCmp(null, op, literal)`, and mixed-type (variant
// lane) columns, null literals, and cross-class comparisons fall back to a
// per-row `EvalCmp` mask — same verdicts, same output bytes.

#ifndef OPD_EXEC_EXPR_EXPR_PROGRAM_H_
#define OPD_EXEC_EXPR_EXPR_PROGRAM_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "afk/predicate.h"
#include "storage/row_batch.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace opd::exec::expr {

/// One source-level step of a project+filter chain. Column indices are
/// relative to the step's *input* (the previous step's output), exactly as
/// the operators would see them if run one at a time.
struct ExprStep {
  enum class Kind { kFilterCompare, kProject };

  static ExprStep FilterCompare(size_t col, afk::CmpOp op,
                                storage::Value literal) {
    ExprStep s;
    s.kind = Kind::kFilterCompare;
    s.col = col;
    s.op = op;
    s.literal = std::move(literal);
    return s;
  }
  static ExprStep Project(std::vector<size_t> cols) {
    ExprStep s;
    s.kind = Kind::kProject;
    s.cols = std::move(cols);
    return s;
  }

  Kind kind = Kind::kFilterCompare;
  size_t col = 0;                // kFilterCompare: column to compare
  afk::CmpOp op = afk::CmpOp::kEq;
  storage::Value literal;
  std::vector<size_t> cols;      // kProject: columns to keep, in order
};

/// Reusable per-thread buffers for `ExprProgram::Run`. Callers that loop
/// over batches keep one scratch alive to avoid per-batch allocation.
struct EvalScratch {
  std::vector<uint8_t> mask;   // combined verdict per row
  std::vector<uint8_t> step;   // current filter's verdict per row
  std::vector<uint32_t> sel;   // compacted selection
};

/// \brief A compiled, fused project+filter program.
class ExprProgram {
 public:
  /// Compiles `steps` against an input of `num_input_cols` columns.
  /// Projections compose into one output column map; filters are rewritten
  /// to input-space column indices. Returns nullopt when any step is out of
  /// range (callers treat that as "not fusable" and keep their own path).
  static std::optional<ExprProgram> Compile(size_t num_input_cols,
                                            const std::vector<ExprStep>& steps);

  /// Serial pre-pass: evaluates every string predicate once per distinct
  /// dictionary entry of every dictionary appearing in `batches`, caching
  /// one verdict bitmap per (filter, dictionary). After binding, `Run` is
  /// const and safe to call from many threads concurrently. Binding is
  /// optional — an unseen dictionary is evaluated on the fly inside `Run`
  /// (correct, just not cached).
  void BindDictionaries(const std::vector<storage::RowBatch>& batches);

  /// Evaluates the program over one batch: one fused pass computing the
  /// composed selection, then gathering the output columns through it.
  /// Byte-identical to running the source steps one operator at a time.
  storage::RowBatch Run(const storage::RowBatch& batch,
                        EvalScratch* scratch) const;

  size_t num_filters() const { return filters_.size(); }
  bool has_project() const { return has_project_; }
  /// Output columns in input space (identity when has_project() is false).
  const std::vector<size_t>& output_cols() const { return output_cols_; }

 private:
  struct Filter {
    size_t col = 0;  // input-space column index
    afk::CmpOp op = afk::CmpOp::kEq;
    storage::Value literal;
    bool null_passes = false;  // EvalCmp(null, op, literal)
    // Per-dictionary predicate verdicts (1 byte per entry), keyed by the
    // shared dictionary identity. Written only by BindDictionaries.
    std::unordered_map<const storage::Dictionary*, std::vector<uint8_t>>
        dict_pass;
  };

  /// Writes the filter's verdict mask for `batch` into mask[0..n).
  void EvalFilterMask(const Filter& f, const storage::RowBatch& batch,
                      uint8_t* mask) const;

  std::vector<Filter> filters_;
  std::vector<size_t> output_cols_;
  bool has_project_ = false;
};

}  // namespace opd::exec::expr

#endif  // OPD_EXEC_EXPR_EXPR_PROGRAM_H_
