// EXPLAIN ANALYZE support: renders the executed plan as an annotated
// operator tree where every non-scan operator carries the *observed* stats
// of the MR job that ran it (modeled time, real wall time, bytes moved,
// task counts, straggler time) instead of the optimizer's estimates.

#ifndef OPD_EXEC_ANALYZE_H_
#define OPD_EXEC_ANALYZE_H_

#include <string>
#include <vector>

#include "exec/engine.h"
#include "plan/plan.h"

namespace opd::exec {

struct AnalyzeOptions {
  /// Include real wall-clock columns (job wall time, straggler task time).
  /// These vary run to run; golden tests mask or disable them.
  bool show_wall = true;
};

/// Renders a human-readable byte count ("1.2MB", "340B").
std::string HumanBytes(uint64_t bytes);

/// \brief Renders the EXPLAIN ANALYZE tree for an executed plan.
///
/// `plan` must be the plan instance that was executed and `jobs` the
/// ExecResult::jobs of that execution — operators are matched to job records
/// by node identity. Operators without a job record (scans) render without
/// observed columns.
std::string ExplainAnalyze(const plan::Plan& plan,
                           const std::vector<JobRun>& jobs,
                           const ExecMetrics& metrics,
                           const AnalyzeOptions& options = {});

}  // namespace opd::exec

#endif  // OPD_EXEC_ANALYZE_H_
