#include "exec/udf_exec.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <unordered_map>
#include <utility>

#include "exec/hash/flat_table.h"
#include "exec/hash/hash_kernels.h"
#include "exec/pipeline.h"
#include "storage/partition_buffer.h"

namespace opd::exec {

using storage::Row;
using storage::RowHash;
using storage::RowRange;
using storage::Schema;
using storage::Table;

namespace {

struct RowLess {
  bool operator()(const Row& a, const Row& b) const {
    // Lexicographic; arities are equal within one grouping.
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      if (a[i] < b[i]) return true;
      if (b[i] < a[i]) return false;
    }
    return a.size() < b.size();
  }
};

size_t DeriveReduceTasks(int requested, uint64_t in_bytes,
                         uint64_t block_size_bytes) {
  if (requested > 0) return static_cast<size_t>(requested);
  if (block_size_bytes == 0) return 1;
  // One reduce task per block of shuffle input, like the map-side split
  // rule; capped so tiny jobs don't pay per-bucket overhead.
  return std::min<uint64_t>(in_bytes / block_size_bytes + 1, 64);
}

// Runs one wave of `n` parallel tasks, wrapped in a phase span (plus task
// spans when enabled). Ids are allocated before the wave starts, keeping the
// span structure identical at every thread count.
Status RunWave(const UdfExecOptions& opts, uint64_t parent, const char* name,
               size_t n, const std::function<Status(size_t)>& fn,
               double* max_task_seconds) {
  if (opts.tasks != nullptr) *opts.tasks += n;
  if (opts.trace == nullptr) {
    return ParallelFor(opts.pool, n, fn, max_task_seconds);
  }
  obs::TraceSpan span(opts.trace, parent, name, "phase");
  span.AddArg("tasks", static_cast<uint64_t>(n));
  if (!opts.trace_tasks) return ParallelFor(opts.pool, n, fn, max_task_seconds);
  return obs::TracedParallelFor(opts.pool, n, opts.trace, span.id(), name, fn,
                                max_task_seconds);
}

// One key group gathered during the shuffle, and what the reduce call over
// it emitted. Keeping outputs attached to their key lets the merge step
// re-establish the global key order independent of bucket/thread counts.
struct ReduceGroup {
  Row key;
  std::vector<Row> rows;      // shuffle input, in original row order
  std::vector<Row> emitted;   // reduce_fn output for this group
};

// Runs one map local function over `rows`, split into block-sized tasks;
// partial outputs are concatenated in task order (identical to a serial
// pass since map functions are applied row-at-a-time in order).
Status RunMapStage(const udf::LocalFunction& lf, const udf::LfContext& ctx,
                   const std::vector<Row>& rows, double avg_row_bytes,
                   const UdfExecOptions& opts, uint64_t stage_span,
                   std::vector<Row>* out, double* max_task_seconds) {
  const std::vector<RowRange> splits = storage::SplitRowsByBlockSize(
      rows.size(), avg_row_bytes, opts.block_size_bytes);
  std::vector<std::vector<Row>> partials(splits.size());
  OPD_RETURN_NOT_OK(RunWave(
      opts, stage_span, "map", splits.size(),
      [&](size_t t) -> Status {
        std::vector<Row>& local = partials[t];
        local.reserve(splits[t].size());
        for (size_t r = splits[t].begin; r < splits[t].end; ++r) {
          lf.map_fn(rows[r], ctx, &local);
        }
        return Status::OK();
      },
      max_task_seconds));
  size_t total = 0;
  for (const auto& p : partials) total += p.size();
  out->reserve(out->size() + total);
  for (auto& p : partials) {
    for (Row& r : p) out->push_back(std::move(r));
  }
  return Status::OK();
}

// Runs one reduce local function: hash-partition rows by key into reduce
// buckets, group and reduce each bucket as one task, then merge the groups'
// outputs in global key order — the same order the previous ordered-map
// implementation produced, regardless of bucket or thread counts.
Status RunReduceStage(const udf::LocalFunction& lf, const udf::LfContext& ctx,
                      const Schema& in_schema, std::vector<Row>* rows,
                      uint64_t in_bytes, const UdfExecOptions& opts,
                      uint64_t stage_span, std::vector<Row>* out,
                      double* max_task_seconds) {
  std::vector<size_t> key_idx;
  for (const std::string& key : lf.group_keys) {
    auto idx = in_schema.IndexOf(key);
    if (!idx) {
      return Status::InvalidArgument("reduce key not in schema: " + key);
    }
    key_idx.push_back(*idx);
  }

  const size_t n = rows->size();
  const size_t num_buckets =
      DeriveReduceTasks(opts.num_reduce_tasks, in_bytes, opts.block_size_bytes);
  auto key_of = [&key_idx](const Row& row) {
    Row key;
    key.reserve(key_idx.size());
    for (size_t i : key_idx) key.push_back(row[i]);
    return key;
  };

  // Flat group index (opts.flat_hash): per-row key hashes are computed once
  // during partitioning and kept here, so grouping never re-hashes a key.
  const bool flat = opts.flat_hash;
  std::vector<uint64_t> hash_of;
  if (flat) hash_of.resize(n);

  // Grouping + reduce of one bucket, shared by both schedules. `for_each`
  // yields the bucket's row indices in original row order, so per-key input
  // order — and therefore the reduce function's view of each group — is
  // schedule-independent. Rows are moved out of the shared vector; buckets
  // partition the index space, so concurrent consumers touch disjoint rows.
  // `bucket_n` is the bucket's row count, pre-sizing the flat index.
  std::vector<std::vector<ReduceGroup>> bucket_groups(num_buckets);
  auto reduce_bucket = [&](size_t b, size_t bucket_n,
                           const auto& for_each) -> Status {
    std::vector<ReduceGroup>& groups = bucket_groups[b];
    if (flat) {
      hash::FlatGroupIndex group_index;
      group_index.Reserve(bucket_n, 0);
      hash::KeyScratch key;
      for_each([&](size_t r) {
        Row& row = (*rows)[r];
        hash::NormalizeKeyRow(row, key_idx, &key);
        auto [id, inserted] =
            group_index.InsertOrGet(hash_of[r], key.data(), key.size());
        if (inserted) {
          groups.emplace_back();
          groups.back().key = key_of(row);
        }
        groups[id].rows.push_back(std::move(row));
      });
    } else {
      std::unordered_map<Row, size_t, RowHash> group_index;
      for_each([&](size_t r) {
        Row key = key_of((*rows)[r]);
        auto [it, inserted] =
            group_index.try_emplace(std::move(key), groups.size());
        if (inserted) {
          groups.emplace_back();
          groups.back().key = it->first;
        }
        groups[it->second].rows.push_back(std::move((*rows)[r]));
      });
    }
    std::sort(groups.begin(), groups.end(),
              [](const ReduceGroup& a, const ReduceGroup& g) {
                return RowLess()(a.key, g.key);
              });
    for (ReduceGroup& g : groups) {
      lf.reduce_fn(g.rows, ctx, &g.emitted);
      g.rows.clear();
    }
    return Status::OK();
  };

  const double avg_row_bytes =
      n == 0 ? 0.0 : static_cast<double>(in_bytes) / static_cast<double>(n);
  double partition_max_s = 0, reduce_max_s = 0;

  if (opts.pipelined) {
    // Fused partition: each producer hashes its split's keys straight into
    // its own per-bucket buffer slots; a bucket's reduce starts the moment
    // its last producer finishes (no partition barrier, no global scatter).
    const std::vector<RowRange> splits = storage::SplitRowsByBlockSize(
        n, avg_row_bytes, opts.block_size_bytes);
    storage::PartitionBuffer<size_t> buf(splits.size(), num_buckets);
    const PipelineCtx pctx{opts.pool, opts.trace, stage_span,
                           opts.trace_tasks, opts.tasks};
    OPD_RETURN_NOT_OK(RunPipelinedShuffle(
        pctx, splits.size(),
        [&](size_t t) -> Status {
          const RowRange& split = splits[t];
          buf.ReserveProducer(t, split.size());
          if (flat) {
            for (size_t r = split.begin; r < split.end; ++r) {
              const uint64_t h = hash::FlatRowKeyHash((*rows)[r], key_idx);
              hash_of[r] = h;
              buf.Append(
                  t, num_buckets <= 1 ? 0 : hash::BucketOf(h, num_buckets),
                  r);
            }
            return Status::OK();
          }
          for (size_t r = split.begin; r < split.end; ++r) {
            // Hoisted key hash: no temporary key Row per input row.
            const uint32_t b =
                num_buckets <= 1
                    ? 0
                    : static_cast<uint32_t>(
                          hash::LegacyRowKeyHash((*rows)[r], key_idx) %
                          num_buckets);
            buf.Append(t, b, r);
          }
          return Status::OK();
        },
        num_buckets,
        [&](size_t b) -> Status {
          return reduce_bucket(b, buf.BucketSize(b),
                               [&](auto&& f) { buf.ForEachInBucket(b, f); });
        },
        &partition_max_s, &reduce_max_s));
  } else {
    // Map side of the shuffle: compute each row's bucket in parallel.
    std::vector<uint32_t> bucket_of(n, 0);
    if (num_buckets > 1) {
      const std::vector<RowRange> splits = storage::SplitRowsByBlockSize(
          n, avg_row_bytes, opts.block_size_bytes);
      OPD_RETURN_NOT_OK(RunWave(
          opts, stage_span, "partition", splits.size(),
          [&](size_t t) -> Status {
            for (size_t r = splits[t].begin; r < splits[t].end; ++r) {
              if (flat) {
                const uint64_t h = hash::FlatRowKeyHash((*rows)[r], key_idx);
                hash_of[r] = h;
                bucket_of[r] = hash::BucketOf(h, num_buckets);
              } else {
                // Hoisted key hash: no temporary key Row per input row.
                bucket_of[r] = static_cast<uint32_t>(
                    hash::LegacyRowKeyHash((*rows)[r], key_idx) %
                    num_buckets);
              }
            }
            return Status::OK();
          },
          &partition_max_s));
    } else if (flat) {
      // Single bucket: the input is below one block by definition, so the
      // hash fill runs serially — no extra phase wave vs the legacy path
      // (which skips partitioning entirely here).
      for (size_t r = 0; r < n; ++r) {
        hash_of[r] = hash::FlatRowKeyHash((*rows)[r], key_idx);
      }
    }

    // Scatter row indices to buckets, preserving original row order per key.
    std::vector<std::vector<size_t>> bucket_rows(num_buckets);
    for (auto& b : bucket_rows) b.reserve(n / num_buckets + 1);
    for (size_t r = 0; r < n; ++r) bucket_rows[bucket_of[r]].push_back(r);

    // Reduce side: each bucket groups its rows and applies the reduce fn.
    OPD_RETURN_NOT_OK(RunWave(
        opts, stage_span, "reduce", num_buckets,
        [&](size_t b) -> Status {
          return reduce_bucket(b, bucket_rows[b].size(), [&](auto&& f) {
            for (size_t r : bucket_rows[b]) f(r);
          });
        },
        &reduce_max_s));
  }
  if (max_task_seconds != nullptr) {
    *max_task_seconds = partition_max_s + reduce_max_s;
  }

  // Deterministic merge: emit every group's output in global key order
  // (buckets are already key-sorted; merge them by key).
  std::vector<ReduceGroup*> ordered;
  size_t num_groups = 0, total_rows = 0;
  for (auto& groups : bucket_groups) num_groups += groups.size();
  ordered.reserve(num_groups);
  for (auto& groups : bucket_groups) {
    for (ReduceGroup& g : groups) {
      ordered.push_back(&g);
      total_rows += g.emitted.size();
    }
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const ReduceGroup* a, const ReduceGroup* b) {
              return RowLess()(a->key, b->key);
            });
  out->reserve(out->size() + total_rows);
  for (ReduceGroup* g : ordered) {
    for (Row& r : g->emitted) out->push_back(std::move(r));
  }
  return Status::OK();
}

// Checks one emitted row against the stage's output schema; the error text
// matches the end-of-stage validation in RunLocalFunctions exactly.
Status CheckArity(const udf::LocalFunction& lf, const Row& r,
                  const Schema& out_schema) {
  if (r.size() == out_schema.num_columns()) return Status::OK();
  return Status::Internal("local function " + lf.name +
                          " emitted row of arity " + std::to_string(r.size()) +
                          ", schema has " +
                          std::to_string(out_schema.num_columns()));
}

// Runs the consecutive map stages [s, e) of `udf` as ONE fused wave over
// `rows`: each task streams its input split through every stage's map
// function in turn (ping-pong buffers), so intermediate stage outputs never
// materialize globally. Task-order concatenation of the final partials is
// identical to running the stages one wave at a time, because map functions
// are applied row-at-a-time in order either way.
//
// Accounting stays per stage: boundary row/byte counts are summed across
// tasks, and the group's wall/straggler time is attributed to the first
// stage of the group (so per-kind wall sums, which calibration consumes,
// are preserved). Appends one LfStageRun per fused stage and leaves the
// group's output in `*out`.
Status RunFusedMapStages(const udf::UdfDefinition& udf, size_t s, size_t e,
                         const std::vector<Row>& rows,
                         const udf::Params& params,
                         const UdfExecOptions& opts, Schema* cur_schema,
                         std::vector<Row>* out,
                         std::vector<LfStageRun>* stages) {
  const auto& lfs = udf.local_functions;
  const size_t k = e - s;

  // Resolve the schema chain and per-stage contexts up front.
  std::vector<Schema> schemas;
  schemas.reserve(k + 1);
  schemas.push_back(std::move(*cur_schema));
  std::string fused_name;
  for (size_t i = s; i < e; ++i) {
    if (!lfs[i].map_fn) {
      return Status::Internal("map local function missing body: " +
                              lfs[i].name);
    }
    OPD_ASSIGN_OR_RETURN(Schema next,
                         lfs[i].out_schema(schemas.back(), params));
    schemas.push_back(std::move(next));
    if (!fused_name.empty()) fused_name += "+";
    fused_name += lfs[i].name;
  }
  std::vector<udf::LfContext> ctxs(k);
  for (size_t i = 0; i < k; ++i) {
    ctxs[i].in_schema = &schemas[i];
    ctxs[i].out_schema = &schemas[i + 1];
    ctxs[i].params = &params;
  }

  uint64_t in_bytes = 0;
  for (const Row& r : rows) in_bytes += storage::RowByteSize(r);
  const double avg_row_bytes =
      rows.empty() ? 0.0
                   : static_cast<double>(in_bytes) /
                         static_cast<double>(rows.size());
  const std::vector<RowRange> splits = storage::SplitRowsByBlockSize(
      rows.size(), avg_row_bytes, opts.block_size_bytes);

  obs::TraceSpan stage_span(opts.trace, opts.parent_span,
                            "stage:" + fused_name, "stage");
  const auto start = std::chrono::steady_clock::now();

  // Per-task outputs plus per-task counts at each intermediate stage
  // boundary (boundary j = output of stage s+j, 0 <= j < k-1).
  std::vector<std::vector<Row>> partials(splits.size());
  std::vector<std::vector<uint64_t>> mid_rows(splits.size());
  std::vector<std::vector<uint64_t>> mid_bytes(splits.size());
  double wave_max_s = 0;
  OPD_RETURN_NOT_OK(RunWave(
      opts, stage_span.id(), "pipeline", splits.size(),
      [&](size_t t) -> Status {
        const RowRange& split = splits[t];
        mid_rows[t].assign(k - 1, 0);
        mid_bytes[t].assign(k - 1, 0);
        std::vector<Row> cur, next;
        cur.reserve(split.size());
        for (size_t r = split.begin; r < split.end; ++r) {
          lfs[s].map_fn(rows[r], ctxs[0], &cur);
        }
        for (size_t i = 1; i < k; ++i) {
          // Account + validate the boundary feeding stage s+i (the last
          // stage's output is validated by the caller, like phased runs).
          for (const Row& r : cur) {
            OPD_RETURN_NOT_OK(CheckArity(lfs[s + i - 1], r, schemas[i]));
            mid_bytes[t][i - 1] += storage::RowByteSize(r);
          }
          mid_rows[t][i - 1] = cur.size();
          next.clear();
          for (const Row& r : cur) lfs[s + i].map_fn(r, ctxs[i], &next);
          cur.swap(next);
        }
        partials[t] = std::move(cur);
        return Status::OK();
      },
      &wave_max_s));
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();

  size_t total = 0;
  for (const auto& p : partials) total += p.size();
  out->clear();
  out->reserve(total);
  for (auto& p : partials) {
    for (Row& r : p) out->push_back(std::move(r));
  }
  uint64_t out_bytes = 0;
  for (const Row& r : *out) {
    OPD_RETURN_NOT_OK(CheckArity(lfs[e - 1], r, schemas[k]));
    out_bytes += storage::RowByteSize(r);
  }

  if (stage_span) {
    stage_span.AddArg("in_rows", static_cast<uint64_t>(rows.size()));
    stage_span.AddArg("in_bytes", in_bytes);
    stage_span.AddArg("fused_stages", static_cast<uint64_t>(k));
    stage_span.End();
  }

  if (stages != nullptr) {
    for (size_t i = 0; i < k; ++i) {
      LfStageRun run;
      run.lf_name = lfs[s + i].name;
      run.kind = udf::LfKind::kMap;
      if (i == 0) {
        run.in_rows = rows.size();
        run.in_bytes = in_bytes;
        run.wall_seconds = wall_s;
        run.max_task_seconds = wave_max_s;
      } else {
        for (const auto& m : mid_rows) run.in_rows += m[i - 1];
        for (const auto& m : mid_bytes) run.in_bytes += m[i - 1];
      }
      if (i == k - 1) {
        run.out_rows = out->size();
        run.out_bytes = out_bytes;
      } else {
        for (const auto& m : mid_rows) run.out_rows += m[i];
        for (const auto& m : mid_bytes) run.out_bytes += m[i];
      }
      stages->push_back(std::move(run));
    }
  }

  *cur_schema = std::move(schemas[k]);
  return Status::OK();
}

}  // namespace

Status RunLocalFunctions(const udf::UdfDefinition& udf,
                         const storage::Table& input,
                         const udf::Params& params, storage::Table* output,
                         std::vector<LfStageRun>* stages,
                         const UdfExecOptions& exec_options) {
  if (udf.local_functions.empty()) {
    return Status::InvalidArgument("UDF has no local functions: " + udf.name);
  }
  Schema cur_schema = input.schema();
  // The first stage reads the input table's rows in place; `owned` takes
  // over once a stage produces new rows (or a leading reduce stage needs a
  // mutable copy). This avoids duplicating the whole input up front.
  std::vector<Row> owned;
  const std::vector<Row>* cur_rows = &input.rows();

  const auto& lfs = udf.local_functions;
  for (size_t stage_i = 0; stage_i < lfs.size();) {
    // Pipelined mode fuses a maximal run of consecutive map stages into one
    // wave (no intermediate materialization, one task set, one stage span).
    if (exec_options.pipelined && lfs[stage_i].kind == udf::LfKind::kMap &&
        stage_i + 1 < lfs.size() &&
        lfs[stage_i + 1].kind == udf::LfKind::kMap) {
      size_t stage_e = stage_i + 2;
      while (stage_e < lfs.size() && lfs[stage_e].kind == udf::LfKind::kMap) {
        ++stage_e;
      }
      std::vector<Row> fused_out;
      OPD_RETURN_NOT_OK(RunFusedMapStages(udf, stage_i, stage_e, *cur_rows,
                                          params, exec_options, &cur_schema,
                                          &fused_out, stages));
      owned = std::move(fused_out);
      cur_rows = &owned;
      stage_i = stage_e;
      continue;
    }

    const udf::LocalFunction& lf = lfs[stage_i];
    ++stage_i;
    OPD_ASSIGN_OR_RETURN(Schema out_schema, lf.out_schema(cur_schema, params));
    udf::LfContext ctx;
    ctx.in_schema = &cur_schema;
    ctx.out_schema = &out_schema;
    ctx.params = &params;

    LfStageRun run;
    run.lf_name = lf.name;
    run.kind = lf.kind;
    run.in_rows = cur_rows->size();
    for (const Row& r : *cur_rows) run.in_bytes += storage::RowByteSize(r);

    obs::TraceSpan stage_span(exec_options.trace, exec_options.parent_span,
                              "stage:" + lf.name, "stage");
    std::vector<Row> next_rows;
    auto start = std::chrono::steady_clock::now();
    if (lf.kind == udf::LfKind::kMap) {
      if (!lf.map_fn) {
        return Status::Internal("map local function missing body: " + lf.name);
      }
      const double avg_row_bytes =
          cur_rows->empty() ? 0.0
                            : static_cast<double>(run.in_bytes) /
                                  static_cast<double>(cur_rows->size());
      OPD_RETURN_NOT_OK(RunMapStage(lf, ctx, *cur_rows, avg_row_bytes,
                                    exec_options, stage_span.id(), &next_rows,
                                    &run.max_task_seconds));
    } else {
      if (!lf.reduce_fn) {
        return Status::Internal("reduce local function missing body: " +
                                lf.name);
      }
      if (cur_rows != &owned) {
        owned = *cur_rows;  // reduce consumes its input rows
        cur_rows = &owned;
      }
      OPD_RETURN_NOT_OK(RunReduceStage(lf, ctx, cur_schema, &owned,
                                       run.in_bytes, exec_options,
                                       stage_span.id(), &next_rows,
                                       &run.max_task_seconds));
    }
    auto end = std::chrono::steady_clock::now();
    run.wall_seconds = std::chrono::duration<double>(end - start).count();
    if (stage_span) {
      stage_span.AddArg("in_rows", run.in_rows);
      stage_span.AddArg("in_bytes", run.in_bytes);
      stage_span.End();
    }

    // Validate arity of produced rows (cheap sanity check on user code).
    for (const Row& r : next_rows) {
      if (r.size() != out_schema.num_columns()) {
        return Status::Internal("local function " + lf.name +
                                " emitted row of arity " +
                                std::to_string(r.size()) + ", schema has " +
                                std::to_string(out_schema.num_columns()));
      }
    }
    run.out_rows = next_rows.size();
    for (const Row& r : next_rows) run.out_bytes += storage::RowByteSize(r);
    if (stages != nullptr) stages->push_back(run);

    cur_schema = std::move(out_schema);
    owned = std::move(next_rows);
    cur_rows = &owned;
  }

  Table result("", cur_schema);
  result.Reserve(owned.size());
  for (Row& row : owned) {
    OPD_RETURN_NOT_OK(result.AppendRow(std::move(row)));
  }
  *output = std::move(result);
  return Status::OK();
}

}  // namespace opd::exec
