#include "exec/udf_exec.h"

#include <chrono>
#include <map>

namespace opd::exec {

using storage::Row;
using storage::Schema;
using storage::Table;

namespace {

struct RowLess {
  bool operator()(const Row& a, const Row& b) const {
    // Lexicographic; arities are equal within one grouping.
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      if (a[i] < b[i]) return true;
      if (b[i] < a[i]) return false;
    }
    return a.size() < b.size();
  }
};

}  // namespace

Status RunLocalFunctions(const udf::UdfDefinition& udf,
                         const storage::Table& input,
                         const udf::Params& params, storage::Table* output,
                         std::vector<LfStageRun>* stages) {
  if (udf.local_functions.empty()) {
    return Status::InvalidArgument("UDF has no local functions: " + udf.name);
  }
  Schema cur_schema = input.schema();
  std::vector<Row> cur_rows = input.rows();

  for (const udf::LocalFunction& lf : udf.local_functions) {
    OPD_ASSIGN_OR_RETURN(Schema out_schema, lf.out_schema(cur_schema, params));
    udf::LfContext ctx;
    ctx.in_schema = &cur_schema;
    ctx.out_schema = &out_schema;
    ctx.params = &params;

    LfStageRun run;
    run.lf_name = lf.name;
    run.kind = lf.kind;
    run.in_rows = cur_rows.size();
    for (const Row& r : cur_rows) run.in_bytes += storage::RowByteSize(r);

    std::vector<Row> next_rows;
    auto start = std::chrono::steady_clock::now();
    if (lf.kind == udf::LfKind::kMap) {
      if (!lf.map_fn) {
        return Status::Internal("map local function missing body: " + lf.name);
      }
      for (const Row& row : cur_rows) lf.map_fn(row, ctx, &next_rows);
    } else {
      if (!lf.reduce_fn) {
        return Status::Internal("reduce local function missing body: " +
                                lf.name);
      }
      // Shuffle: group by the key columns, deterministically ordered.
      std::vector<size_t> key_idx;
      for (const std::string& key : lf.group_keys) {
        auto idx = cur_schema.IndexOf(key);
        if (!idx) {
          return Status::InvalidArgument("reduce key not in schema: " + key);
        }
        key_idx.push_back(*idx);
      }
      std::map<Row, std::vector<Row>, RowLess> groups;
      for (Row& row : cur_rows) {
        Row key;
        key.reserve(key_idx.size());
        for (size_t i : key_idx) key.push_back(row[i]);
        groups[std::move(key)].push_back(std::move(row));
      }
      for (const auto& [_, group] : groups) {
        lf.reduce_fn(group, ctx, &next_rows);
      }
    }
    auto end = std::chrono::steady_clock::now();
    run.wall_seconds = std::chrono::duration<double>(end - start).count();

    // Validate arity of produced rows (cheap sanity check on user code).
    for (const Row& r : next_rows) {
      if (r.size() != out_schema.num_columns()) {
        return Status::Internal("local function " + lf.name +
                                " emitted row of arity " +
                                std::to_string(r.size()) + ", schema has " +
                                std::to_string(out_schema.num_columns()));
      }
    }
    run.out_rows = next_rows.size();
    for (const Row& r : next_rows) run.out_bytes += storage::RowByteSize(r);
    if (stages != nullptr) stages->push_back(run);

    cur_schema = std::move(out_schema);
    cur_rows = std::move(next_rows);
  }

  Table result("", cur_schema);
  for (Row& row : cur_rows) {
    OPD_RETURN_NOT_OK(result.AppendRow(std::move(row)));
  }
  *output = std::move(result);
  return Status::OK();
}

}  // namespace opd::exec
