#include "exec/metrics.h"

#include <sstream>

namespace opd::exec {

ExecMetrics& ExecMetrics::operator+=(const ExecMetrics& other) {
  sim_time_s += other.sim_time_s;
  stats_time_s += other.stats_time_s;
  bytes_read += other.bytes_read;
  bytes_shuffled += other.bytes_shuffled;
  bytes_written += other.bytes_written;
  jobs += other.jobs;
  views_created += other.views_created;
  max_task_time_s += other.max_task_time_s;
  return *this;
}

std::string ExecMetrics::ToString() const {
  std::ostringstream os;
  os << "time=" << sim_time_s << "s (+stats " << stats_time_s << "s), jobs="
     << jobs << ", read=" << bytes_read << "B, shuffled=" << bytes_shuffled
     << "B, written=" << bytes_written << "B, views=" << views_created;
  return os.str();
}

}  // namespace opd::exec
