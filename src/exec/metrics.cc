#include "exec/metrics.h"

#include <sstream>

#include "common/json_writer.h"

namespace opd::exec {

ExecMetrics& ExecMetrics::operator+=(const ExecMetrics& other) {
  sim_time_s += other.sim_time_s;
  stats_time_s += other.stats_time_s;
  stats_wall_time_s += other.stats_wall_time_s;
  bytes_read += other.bytes_read;
  rows_read += other.rows_read;
  bytes_shuffled += other.bytes_shuffled;
  bytes_written += other.bytes_written;
  jobs += other.jobs;
  views_created += other.views_created;
  max_task_time_s += other.max_task_time_s;
  return *this;
}

std::string ExecMetrics::ToString() const {
  std::ostringstream os;
  os << "time=" << sim_time_s << "s (+stats " << stats_time_s << "s), jobs="
     << jobs << ", read=" << bytes_read << "B, shuffled=" << bytes_shuffled
     << "B, written=" << bytes_written << "B, views=" << views_created
     << ", max_task=" << max_task_time_s << "s, stats_wall="
     << stats_wall_time_s << "s";
  return os.str();
}

std::string ExecMetrics::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("sim_time_s").Double(sim_time_s);
  w.Key("stats_time_s").Double(stats_time_s);
  w.Key("stats_wall_time_s").Double(stats_wall_time_s);
  w.Key("total_time_s").Double(TotalTime());
  w.Key("bytes_read").UInt(bytes_read);
  w.Key("rows_read").UInt(rows_read);
  w.Key("bytes_shuffled").UInt(bytes_shuffled);
  w.Key("bytes_written").UInt(bytes_written);
  w.Key("bytes_manipulated").UInt(BytesManipulated());
  w.Key("jobs").Int(jobs);
  w.Key("views_created").Int(views_created);
  w.Key("max_task_time_s").Double(max_task_time_s);
  w.EndObject();
  return w.Take();
}

}  // namespace opd::exec
