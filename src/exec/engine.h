// The MapReduce execution simulator.
//
// Executes an annotated plan job by job: every non-scan operator runs as one
// MR job over real rows, materializes its output to the simulated DFS, and —
// as in Hive — that materialization is retained as an opportunistic view
// (with its AFK annotation, plan fingerprint, and sampled statistics) in the
// ViewStore. Modeled cluster time is computed by applying the cost model to
// the *observed* byte counts of each job.

#ifndef OPD_EXEC_ENGINE_H_
#define OPD_EXEC_ENGINE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/thread_pool.h"
#include "catalog/view_store.h"
#include "common/status.h"
#include "exec/metrics.h"
#include "exec/stats_collector.h"
#include "obs/trace.h"
#include "optimizer/accountability.h"
#include "optimizer/optimizer.h"
#include "plan/plan.h"
#include "storage/dfs.h"
#include "udf/udf_registry.h"

namespace opd::exec {

namespace hash {
class HashRecycler;
}

/// Execution knobs.
struct EngineOptions {
  /// Retain job outputs as opportunistic views (Section 2.1). Always true in
  /// the paper's system; switchable for ablation.
  bool retain_views = true;
  /// Run the sampling stats job for each retained view.
  bool collect_stats = true;
  double stats_sample_fraction = 0.05;
  uint64_t stats_seed = 42;
  /// Worker threads for map/reduce task execution. 0 means one per core;
  /// 1 runs every task inline on the calling thread (the pre-parallel
  /// behavior). Results are byte-identical for every setting.
  int num_threads = 0;
  /// Reduce tasks (shuffle buckets) per job; 0 derives the count from the
  /// job's shuffle bytes and the DFS block size. Like the thread count this
  /// never changes results, only task granularity.
  int num_reduce_tasks = 0;
  /// Run relational operators as vectorized batch-at-a-time kernels over
  /// columnar data (project/filter/join/group-by). Off reverts to the
  /// row-at-a-time operators; results are byte-identical either way (UDF
  /// stages and opaque predicates always run row-at-a-time).
  bool vectorized = true;
  /// Compile each project/filter job into a fused ExprProgram of typed,
  /// branchless kernels (src/exec/expr/): filters refine one selection
  /// vector per batch instead of gathering between operators, string
  /// predicates evaluate once per dictionary entry, and gathers keep
  /// string columns dictionary-encoded. Only applies when `vectorized`;
  /// off reverts to the per-operator batch kernels. Results are
  /// byte-identical either way.
  bool fused_exprs = true;
  /// Morsel-driven pipelined execution (the default): each map task fuses
  /// scan->operator->partition into one loop writing thread-local
  /// per-bucket buffers, reduce tasks start per bucket as soon as that
  /// bucket's producers finish (countdown latch, no phase barrier), and
  /// independent jobs of a plan run concurrently on the shared pool when
  /// untraced. Off falls back to the phased (barrier-per-wave) engine.
  /// Results are byte-identical either way, at every thread count.
  bool pipelined = true;
  /// Vectorized shuffle hashing + flat open-addressing reduce tables
  /// (src/exec/hash/): batch-wide columnar key hashes (dictionary strings
  /// hash once per distinct entry), multiply-shift bucket mapping instead of
  /// the per-row `%`, and linear-probe {hash, payload-index} tables with
  /// canonical key bytes in a per-task arena — no per-row std::string keys.
  /// Applies to join build/probe, group-by, and the UDF group index in all
  /// four schedules ({row, batch} x {phased, pipelined}). Off reverts to the
  /// legacy std::unordered_map shuffle path. Results are byte-identical
  /// either way (every shuffle merge is order-normalized, so the different
  /// bucket mapping is unobservable).
  bool flat_hash = true;
  /// Recycle built flat hash tables across queries (HashStash-style, see
  /// src/exec/hash/recycler.h): when a join build side or group-by input is
  /// a direct scan of an unchanged table/view, reuse the cached structures
  /// instead of rebuilding. Only takes effect when `flat_hash` is on and a
  /// recycler is attached (set_recycler; the serving layer shares one
  /// across tenants). Results are byte-identical either way — FlatMultiMap
  /// preserves insertion order, so a recycled probe emits the exact match
  /// sequence a fresh build would.
  bool recycle_hash = true;
  /// Publish per-job observations (shuffle skew, hash-table load factors,
  /// dictionary compression, byte counts) into obs::MetricRegistry::Global().
  bool metrics = true;
  /// Emit one span per map/partition/reduce task when a Trace is attached to
  /// Execute. Off keeps only the job/phase spans (cheaper for huge jobs).
  bool trace_tasks = true;
  /// Defer view publication to the caller: instead of inserting retained
  /// views into the ViewStore inline (one by one, mid-query), Execute
  /// collects the fully-materialized definitions in
  /// ExecResult::pending_views. The serving layer publishes them as one
  /// atomic batch at query completion (snapshot-consistent visibility,
  /// DESIGN.md §3). Only meaningful when `retain_views`.
  bool defer_view_publish = false;
};

/// Observed execution record of one MR job — the raw material for
/// EXPLAIN ANALYZE and for the per-job args of the trace.
struct JobRun {
  int index = 0;                        ///< job position in submission order
  const plan::OpNode* node = nullptr;   ///< plan node this job executed
  std::string op;                       ///< node DisplayName at run time
  double sim_time_s = 0;                ///< modeled cluster time
  double wall_time_s = 0;               ///< real wall-clock of the job
  uint64_t bytes_read = 0;
  uint64_t bytes_shuffled = 0;
  uint64_t bytes_written = 0;
  uint64_t rows_in = 0;                 ///< input rows gathered by the job
  uint64_t rows_out = 0;
  size_t map_tasks = 0;                 ///< tasks across map/partition waves
  size_t reduce_tasks = 0;              ///< shuffle buckets (0 = map-only)
  double max_task_time_s = 0;           ///< modeled straggler (critical path)
  /// Cost-model accountability (see optimizer/accountability.h): the
  /// optimizer's plan-time prediction for this job, the model re-evaluated
  /// on the observed byte counts (== sim_time_s), and the signed residual.
  double predicted_cost_s = 0;
  double observed_proxy_cost_s = 0;
  double residual_pct = 0;
  /// True when the job ran fused pipeline tasks (map+partition in one
  /// loop) instead of separate phased map/partition waves; EXPLAIN ANALYZE
  /// renders the task counts as "#p+#r" vs "#m+#r" accordingly.
  bool pipelined = false;
  /// Hash-table recycler outcomes of this job (0/0 when the job had no
  /// recyclable build or recycling is off). EXPLAIN ANALYZE renders
  /// "recycle=hit" / "recycle=miss"; the server attributes them per tenant.
  uint64_t recycle_hits = 0;
  uint64_t recycle_misses = 0;
};

/// Result of executing one plan.
struct ExecResult {
  storage::TablePtr table;
  ExecMetrics metrics;
  /// One record per executed MR job, in submission order.
  std::vector<JobRun> jobs;
  /// Materialized-view definitions awaiting publication, in job order
  /// (only populated under EngineOptions::defer_view_publish; the data is
  /// already in the DFS, the metadata just isn't visible yet).
  std::vector<catalog::ViewDefinition> pending_views;
};

/// \brief Executes plans over the simulated cluster.
class Engine {
 public:
  Engine(storage::Dfs* dfs, catalog::ViewStore* views,
         const optimizer::Optimizer* optimizer, EngineOptions options = {})
      : dfs_(dfs),
        views_(views),
        optimizer_(optimizer),
        options_(options),
        stats_(options.stats_sample_fraction, options.stats_seed) {
    const int threads = ThreadPool::DefaultThreads(options_.num_threads);
    if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  }

  /// Prepares (annotates/costs) and executes `plan`. The sink's output table
  /// and the run's metrics are returned; intermediate materializations are
  /// registered as opportunistic views when retention is on.
  ///
  /// When `trace` is non-null each MR job opens a "job:<op>" span under
  /// `parent_span`, with nested phase spans (map/partition/reduce when
  /// phased; pipeline/reduce with per-bucket spans when pipelined) and task
  /// spans if EngineOptions::trace_tasks. Span structure is deterministic:
  /// identical at every thread count; only durations vary. Tracing forces
  /// jobs to execute serially (cross-job DAG scheduling is an untraced
  /// optimization), so the span tree is also job-order deterministic.
  Result<ExecResult> Execute(plan::Plan* plan, obs::Trace* trace = nullptr,
                             uint64_t parent_span = 0);

  const EngineOptions& options() const { return options_; }
  /// Number of Execute calls so far (used to build unique DFS paths).
  int runs() const { return run_counter_.load(); }

  /// Attaches a cost accountant: every finalized job's residual is folded
  /// into its per-operator-class EWMA. Caller owns; may be null to detach.
  void set_accountant(optimizer::CostAccountant* accountant) {
    accountant_ = accountant;
  }

  /// Attaches a hash-table recycler (thread-safe; shared across every
  /// Execute of this engine, and across engines/tenants when the serving
  /// layer hangs one off the Server). Caller owns; null detaches and
  /// disables recycling regardless of EngineOptions::recycle_hash.
  void set_recycler(hash::HashRecycler* recycler) { recycler_ = recycler; }

 private:
  storage::Dfs* dfs_;
  catalog::ViewStore* views_;
  const optimizer::Optimizer* optimizer_;
  optimizer::CostAccountant* accountant_ = nullptr;
  hash::HashRecycler* recycler_ = nullptr;
  EngineOptions options_;
  StatsCollector stats_;
  /// Task pool shared by all jobs of this engine; null when running with a
  /// single thread (tasks then execute inline on the calling thread).
  std::unique_ptr<ThreadPool> pool_;
  /// Atomic: concurrent tenant queries of a Server share one Engine, and
  /// each Execute call needs a unique "views/run<N>/..." DFS namespace.
  std::atomic<int> run_counter_{0};
};

}  // namespace opd::exec

#endif  // OPD_EXEC_ENGINE_H_
