// Flat open-addressing hash tables for the shuffle reduce side.
//
// FlatKeyIndex is the core: a linear-probe, power-of-two slot array of
// {64-bit hash, 32-bit payload id} pairs. It stores no keys — callers keep
// key bytes (FlatGroupIndex / FlatMultiMap store canonical key encodings in
// a bump-allocated KeyArena) and verify candidates through an equality
// callback, so a probe touches one contiguous slot array and the actual key
// bytes only on a hash hit. Pre-sizing via Reserve (exact build-side counts
// for joins, cardinality estimates for group-bys) makes the insert loops
// allocation-free; growth beyond the reservation is counted in
// FlatStats::resizes and surfaces as the engine.shuffle.ht_resizes counter.
//
// These tables are per-reduce-task (one bucket each) and single-threaded
// while being built; nothing here is safe for concurrent mutation. A fully
// built table may be probed concurrently from many threads through the
// `FindShared` / `ForEachMatchShared` variants only — they skip the mutable
// FlatStats bookkeeping the regular probes update (this is what the
// cross-query recycler, recycler.h, relies on).

#ifndef OPD_EXEC_HASH_FLAT_TABLE_H_
#define OPD_EXEC_HASH_FLAT_TABLE_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

// Probe-loop prefetch of the next linear-probe slot: hides the latency of
// the (random) slot-array cache line behind the key comparison of the
// current one. Toggleable per table (set_prefetch) so micro_hash can report
// before/after numbers.
#if defined(__GNUC__) || defined(__clang__)
#define OPD_FLAT_PREFETCH(addr) __builtin_prefetch((addr))
#else
#define OPD_FLAT_PREFETCH(addr) ((void)0)
#endif

namespace opd::exec::hash {

/// Probe/resize observability of one flat table (fed into the
/// engine.shuffle.* metrics).
struct FlatStats {
  uint64_t resizes = 0;      ///< growths beyond the initial reservation
  uint64_t probe_steps = 0;  ///< extra slots visited past the home slot
  uint64_t lookups = 0;      ///< InsertOrGet + Find calls
};

/// Bump allocator for key bytes: chunked, pointer-stable, freed wholesale
/// with the table. Reserve() pre-sizes the first chunk so bounded-width
/// keys (numeric / dict-code) never allocate inside the insert loop.
class KeyArena {
 public:
  void Reserve(size_t bytes);
  const char* Store(const char* data, uint32_t n);
  size_t total_bytes() const { return total_; }

 private:
  void NewChunk(size_t min_bytes);

  static constexpr size_t kMinChunk = 4096;
  std::vector<std::unique_ptr<char[]>> chunks_;
  char* cur_ = nullptr;
  size_t avail_ = 0;
  size_t last_chunk_ = 0;
  size_t total_ = 0;
};

/// The open-addressing {hash, id} index. Ids are caller-assigned dense
/// indices into caller-side payload arrays.
class FlatKeyIndex {
 public:
  static constexpr uint32_t kNone = 0xffffffffu;

  /// Pre-sizes for `keys` distinct keys (<= 7/8 load after all inserts).
  void Reserve(size_t keys) {
    const size_t want = NextPow2(keys + keys / 7 + 1);
    if (want > slots_.size()) Rehash(want);
  }

  /// Finds the id stored under a key equal to the probe key (`eq(id)` says
  /// whether stored id's key matches), inserting `next_id` if absent.
  /// Returns {id, inserted}.
  template <typename Eq>
  std::pair<uint32_t, bool> InsertOrGet(uint64_t h, uint32_t next_id,
                                        Eq&& eq) {
    if (size_ + 1 > max_fill_) {
      if (!slots_.empty()) ++stats_.resizes;
      Rehash(slots_.empty() ? kMinSlots : slots_.size() * 2);
    }
    ++stats_.lookups;
    size_t i = static_cast<size_t>(h) & mask_;
    while (true) {
      Slot& s = slots_[i];
      if (s.id == kNone) {
        s.hash = h;
        s.id = next_id;
        ++size_;
        return {next_id, true};
      }
      if (s.hash == h && eq(s.id)) return {s.id, false};
      i = (i + 1) & mask_;
      // Collision chain: hide the next slot's cache line behind this
      // step's key comparison. Home-slot lookups (the common case at the
      // 7/8 load cap) never pay for a prefetch.
      if (prefetch_) OPD_FLAT_PREFETCH(&slots_[(i + 1) & mask_]);
      ++stats_.probe_steps;
    }
  }

  /// Lookup without insert; kNone when absent.
  template <typename Eq>
  uint32_t Find(uint64_t h, Eq&& eq) const {
    if (slots_.empty()) return kNone;
    ++stats_.lookups;
    size_t i = static_cast<size_t>(h) & mask_;
    while (true) {
      const Slot& s = slots_[i];
      if (s.id == kNone) return kNone;
      if (s.hash == h && eq(s.id)) return s.id;
      i = (i + 1) & mask_;
      if (prefetch_) OPD_FLAT_PREFETCH(&slots_[(i + 1) & mask_]);
      ++stats_.probe_steps;
    }
  }

  /// Find without the FlatStats bookkeeping: safe to call concurrently from
  /// many threads on a fully built, no-longer-mutated index (the regular
  /// probes bump the mutable stats counters and therefore are not).
  template <typename Eq>
  uint32_t FindShared(uint64_t h, Eq&& eq) const {
    if (slots_.empty()) return kNone;
    size_t i = static_cast<size_t>(h) & mask_;
    while (true) {
      const Slot& s = slots_[i];
      if (s.id == kNone) return kNone;
      if (s.hash == h && eq(s.id)) return s.id;
      i = (i + 1) & mask_;
      if (prefetch_) OPD_FLAT_PREFETCH(&slots_[(i + 1) & mask_]);
    }
  }

  /// Probe-slot prefetching on/off (default on; micro_hash ablation knob).
  void set_prefetch(bool on) { prefetch_ = on; }

  /// Approximate heap footprint of the slot array (recycler budgeting).
  size_t memory_bytes() const { return slots_.capacity() * sizeof(Slot); }

  size_t size() const { return size_; }
  double load_factor() const {
    return slots_.empty() ? 0.0
                          : static_cast<double>(size_) /
                                static_cast<double>(slots_.size());
  }
  const FlatStats& stats() const { return stats_; }

 private:
  struct Slot {
    uint64_t hash = 0;
    uint32_t id = kNone;
  };
  static constexpr size_t kMinSlots = 16;

  static size_t NextPow2(size_t n) {
    size_t p = kMinSlots;
    while (p < n) p <<= 1;
    return p;
  }

  void Rehash(size_t new_slots) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_slots, Slot{});
    mask_ = new_slots - 1;
    max_fill_ = new_slots - new_slots / 8;  // 7/8 max load
    for (const Slot& s : old) {
      if (s.id == kNone) continue;
      size_t i = static_cast<size_t>(s.hash) & mask_;
      while (slots_[i].id != kNone) i = (i + 1) & mask_;
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
  size_t max_fill_ = 0;
  bool prefetch_ = true;
  mutable FlatStats stats_;
};

/// Group index for hash aggregation: canonical key bytes -> dense group id
/// (assigned in first-seen order, so ids index the caller's group array).
class FlatGroupIndex {
 public:
  /// `expected_keys` pre-sizes the index; `key_width_bound` (> 0 for
  /// bounded codecs) pre-sizes the arena so inserts never allocate.
  void Reserve(size_t expected_keys, size_t key_width_bound) {
    index_.Reserve(expected_keys);
    keys_.reserve(expected_keys);
    if (key_width_bound > 0) arena_.Reserve(expected_keys * key_width_bound);
  }

  std::pair<uint32_t, bool> InsertOrGet(uint64_t h, const char* key,
                                        uint32_t len) {
    auto r = index_.InsertOrGet(
        h, static_cast<uint32_t>(keys_.size()), [&](uint32_t id) {
          return keys_[id].len == len &&
                 std::memcmp(keys_[id].data, key, len) == 0;
        });
    if (r.second) keys_.push_back(KeyRef{arena_.Store(key, len), len});
    return r;
  }

  size_t size() const { return keys_.size(); }
  double load_factor() const { return index_.load_factor(); }
  const FlatStats& stats() const { return index_.stats(); }
  size_t arena_bytes() const { return arena_.total_bytes(); }
  void set_prefetch(bool on) { index_.set_prefetch(on); }
  size_t memory_bytes() const {
    return index_.memory_bytes() + arena_.total_bytes() +
           keys_.capacity() * sizeof(KeyRef);
  }

 private:
  struct KeyRef {
    const char* data;
    uint32_t len;
  };
  FlatKeyIndex index_;
  KeyArena arena_;
  std::vector<KeyRef> keys_;
};

/// Join build table: canonical key bytes -> the list of build-side payloads
/// inserted under that key, chained in insertion order (so probes emit
/// matches in build-row order, exactly like the legacy per-key vectors).
template <typename Ref>
class FlatMultiMap {
 public:
  /// `build_rows` is the exact build-side row count of this bucket: the
  /// per-insert arrays (payloads, chain links) reserve it up front.
  /// `distinct_hint` > 0 sizes the per-key arrays (index slots, key refs,
  /// chain heads/tails, arena) for that many distinct keys — the optimizer's
  /// distinct estimate for the build keys; 0 keeps the worst case of
  /// all-distinct keys. Under-estimates only cost growth (counted in
  /// FlatStats::resizes), never correctness. `key_width_bound` > 0
  /// additionally pre-sizes the key arena (bounded codecs: numeric /
  /// dict-code keys).
  void Reserve(size_t build_rows, size_t key_width_bound,
               size_t distinct_hint = 0) {
    const size_t keys =
        distinct_hint > 0 ? std::min(distinct_hint, build_rows) : build_rows;
    index_.Reserve(keys);
    keys_.reserve(keys);
    head_.reserve(keys);
    tail_.reserve(keys);
    refs_.reserve(build_rows);
    next_.reserve(build_rows);
    if (key_width_bound > 0) arena_.Reserve(keys * key_width_bound);
  }

  void Insert(uint64_t h, const char* key, uint32_t len, Ref ref) {
    auto [id, inserted] = index_.InsertOrGet(
        h, static_cast<uint32_t>(keys_.size()), [&](uint32_t cand) {
          return keys_[cand].len == len &&
                 std::memcmp(keys_[cand].data, key, len) == 0;
        });
    const uint32_t e = static_cast<uint32_t>(refs_.size());
    refs_.push_back(ref);
    next_.push_back(FlatKeyIndex::kNone);
    if (inserted) {
      keys_.push_back(KeyRef{arena_.Store(key, len), len});
      head_.push_back(e);
      tail_.push_back(e);
    } else {
      next_[tail_[id]] = e;
      tail_[id] = e;
    }
  }

  /// Calls `fn(ref)` for every build payload stored under the probe key,
  /// in insertion order.
  template <typename Fn>
  void ForEachMatch(uint64_t h, const char* key, uint32_t len,
                    Fn&& fn) const {
    const uint32_t id = index_.Find(h, [&](uint32_t cand) {
      return keys_[cand].len == len &&
             std::memcmp(keys_[cand].data, key, len) == 0;
    });
    if (id == FlatKeyIndex::kNone) return;
    for (uint32_t e = head_[id]; e != FlatKeyIndex::kNone; e = next_[e]) {
      fn(refs_[e]);
    }
  }

  /// ForEachMatch without the FlatStats bookkeeping: safe to call
  /// concurrently from many threads on a fully built table (the recycler's
  /// shared-probe path).
  template <typename Fn>
  void ForEachMatchShared(uint64_t h, const char* key, uint32_t len,
                          Fn&& fn) const {
    const uint32_t id = index_.FindShared(h, [&](uint32_t cand) {
      return keys_[cand].len == len &&
             std::memcmp(keys_[cand].data, key, len) == 0;
    });
    if (id == FlatKeyIndex::kNone) return;
    for (uint32_t e = head_[id]; e != FlatKeyIndex::kNone; e = next_[e]) {
      fn(refs_[e]);
    }
  }

  size_t size() const { return keys_.size(); }
  double load_factor() const { return index_.load_factor(); }
  const FlatStats& stats() const { return index_.stats(); }
  size_t arena_bytes() const { return arena_.total_bytes(); }
  void set_prefetch(bool on) { index_.set_prefetch(on); }
  size_t memory_bytes() const {
    return index_.memory_bytes() + arena_.total_bytes() +
           keys_.capacity() * sizeof(KeyRef) +
           (head_.capacity() + tail_.capacity() + next_.capacity()) *
               sizeof(uint32_t) +
           refs_.capacity() * sizeof(Ref);
  }

 private:
  struct KeyRef {
    const char* data;
    uint32_t len;
  };
  FlatKeyIndex index_;
  KeyArena arena_;
  std::vector<KeyRef> keys_;
  std::vector<uint32_t> head_, tail_;  // per key id: chain ends
  std::vector<Ref> refs_;              // per insert: payload
  std::vector<uint32_t> next_;         // per insert: chain link
};

}  // namespace opd::exec::hash

#endif  // OPD_EXEC_HASH_FLAT_TABLE_H_
