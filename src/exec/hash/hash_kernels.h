// Vectorized shuffle hashing: batch-wide 64-bit key hashes computed
// column-at-a-time over typed lanes, plus the canonical key-byte encoding
// the flat hash tables (flat_table.h) verify against.
//
// Two hash families live here and must not be mixed:
//
//  * The *flat* hash (HashKeys / FlatRowKeyHash): a well-mixed 64-bit hash
//    of the key cells under Value-equality semantics (numerics hash through
//    their normalized double, so 1 == 1.0 == true hash-equal; -0.0
//    normalizes to 0.0). Dictionary-encoded string columns reuse the
//    dictionary's precomputed per-entry hashes, so each distinct string is
//    hashed once per table, not once per row. Bucket mapping uses the
//    multiply-shift BucketOf below — no per-row integer division. The flat
//    hash feeds EngineOptions::flat_hash paths only; it is free to differ
//    from the legacy RowHash because every shuffle consumer merges its
//    buckets in a deterministic global order (probe-row order for joins,
//    key-sorted for aggregations), which makes the bucket mapping
//    unobservable in results.
//
//  * The *legacy* hash (LegacyRowKeyHash): exactly RowHash() over the
//    extracted key Row, without materializing the temporary Row. The legacy
//    (flat_hash=false) shuffle paths keep this so their bucketing stays
//    byte-for-byte what it was before this layer existed.
//
// Key bytes: NormalizeKey / NormalizeKeyRow append a canonical encoding of
// the key cells into a reusable KeyScratch. Equal encodings <=> equal keys
// under the same semantics PackKeys used (numerics through their normalized
// double; NaN compares by its bit pattern). A KeyCodec, planned once per
// shuffle input from the batches' lanes, picks the per-column fast path —
// including a dictionary-code encoding (tag + 32-bit code) when every batch
// on every side of the shuffle shares one dictionary object for that key
// column, which makes string-keyed group-bys fixed-width.

#ifndef OPD_EXEC_HASH_HASH_KERNELS_H_
#define OPD_EXEC_HASH_HASH_KERNELS_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/hash.h"
#include "storage/row_batch.h"
#include "storage/value.h"

namespace opd::exec::hash {

/// Seed of the per-row key-hash fold (same constant the legacy RowHash
/// starts from; the folds still differ because the cell hashes differ).
inline constexpr uint64_t kKeySeed = 0xcbf29ce484222325ULL;

/// Flat hash of a null cell (any mixed constant works; fixed for life so
/// bucket layouts are stable across runs).
inline constexpr uint64_t kNullCellHash = 0x9ae16a3b2f90404fULL;

/// Finalizer of splitmix64: full-avalanche 64-bit mixer.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Flat hash of one numeric cell: mix of the normalized double bits
/// (-0.0 -> 0.0), so every numeric type hashes through its double value.
inline uint64_t HashNumericCell(double d) {
  if (d == 0.0) d = 0.0;  // normalize -0.0
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(d));
  return Mix64(bits);
}

/// Flat hash of one cell given its row Value. Lane-independent: a cell
/// hashes the same whether it sits in a native lane, a variant lane, or a
/// row — required because one table column may be native in one batch and
/// demoted in another.
inline uint64_t FlatCellHash(const storage::Value& v) {
  switch (v.type()) {
    case storage::DataType::kNull:
      return kNullCellHash;
    case storage::DataType::kString:
      return HashString(v.as_string());
    default:
      return HashNumericCell(v.ToDouble());
  }
}

/// Flat per-row key hash over `cols` of `row` (row-mode shuffle paths).
inline uint64_t FlatRowKeyHash(const storage::Row& row,
                               const std::vector<size_t>& cols) {
  uint64_t h = kKeySeed;
  for (size_t i : cols) HashCombine(&h, FlatCellHash(row[i]));
  return h;
}

/// Exactly RowHash()(key Row extracted at `cols`) without building the
/// temporary Row. Legacy shuffle paths hoist their per-row key copies
/// through this; the hash value is bit-identical to the historical one.
inline uint64_t LegacyRowKeyHash(const storage::Row& row,
                                 const std::vector<size_t>& cols) {
  uint64_t h = 0xcbf29ce484222325ULL;  // RowHash seed
  for (size_t i : cols) HashCombine(&h, row[i].Hash());
  return h;
}

/// Multiply-shift bucket mapping: maps a 64-bit hash to [0, num_buckets)
/// without a division. Uses the high hash bits, leaving the low bits for
/// the flat tables' slot index (h & mask) so bucket and slot stay
/// uncorrelated. Requires num_buckets < 2^32 (engine caps at 64).
inline uint32_t BucketOf(uint64_t h, size_t num_buckets) {
  return static_cast<uint32_t>(((h >> 32) * static_cast<uint64_t>(num_buckets)) >>
                               32);
}

/// Computes the flat key hash of every row of `batch` into `out`
/// (length batch.num_rows()), column-at-a-time over the typed lanes.
void HashKeys(const storage::RowBatch& batch, const std::vector<size_t>& cols,
              uint64_t* out);

/// Reusable buffer the canonical key bytes are normalized into. Keys up to
/// kInline bytes (any numeric-only key of <= 5 columns) live in the inline
/// stack buffer; longer keys spill to a heap buffer that is retained across
/// Clear() calls, so steady-state normalization never allocates.
class KeyScratch {
 public:
  KeyScratch() = default;
  KeyScratch(const KeyScratch&) = delete;
  KeyScratch& operator=(const KeyScratch&) = delete;

  void Clear() { len_ = 0; }
  void PushByte(char c) {
    Ensure(1);
    buf_[len_++] = c;
  }
  void Append(const void* p, size_t n) {
    Ensure(n);
    std::memcpy(buf_ + len_, p, n);
    len_ += n;
  }
  const char* data() const { return buf_; }
  uint32_t size() const { return static_cast<uint32_t>(len_); }

 private:
  void Ensure(size_t n) {
    if (len_ + n > cap_) Grow(len_ + n);
  }
  void Grow(size_t need);

  static constexpr size_t kInline = 48;
  char inline_[kInline];
  std::vector<char> heap_;
  char* buf_ = inline_;
  size_t cap_ = kInline;
  size_t len_ = 0;
};

// Canonical cell encodings (PackKeys-compatible where tags overlap):
//   '\0'                      null
//   '\1' + 8B normalized double  numeric (bool/int64/double)
//   '\2' + u32 len + bytes       string
//   '\3' + u32 dictionary code   string via shared dictionary (KeyCodec only)
inline void EncodeNumericCell(double d, KeyScratch* out) {
  if (d == 0.0) d = 0.0;  // normalize -0.0
  out->PushByte('\1');
  out->Append(&d, sizeof(d));
}

inline void EncodeStringCell(const std::string& s, KeyScratch* out) {
  const uint32_t len = static_cast<uint32_t>(s.size());
  out->PushByte('\2');
  out->Append(&len, sizeof(len));
  out->Append(s.data(), s.size());
}

inline void EncodeCell(const storage::Value& v, KeyScratch* out) {
  switch (v.type()) {
    case storage::DataType::kNull:
      out->PushByte('\0');
      return;
    case storage::DataType::kString:
      EncodeStringCell(v.as_string(), out);
      return;
    default:
      EncodeNumericCell(v.ToDouble(), out);
      return;
  }
}

/// Normalizes the key cells of `row` at `cols` into `out` (row-mode paths).
inline void NormalizeKeyRow(const storage::Row& row,
                            const std::vector<size_t>& cols, KeyScratch* out) {
  out->Clear();
  for (size_t i : cols) EncodeCell(row[i], out);
}

/// Per-column encoding mode of a KeyCodec (see PlanKeyCodecs).
enum class KeyColMode : uint8_t {
  kNumeric,   ///< native bool/int64/double lane: tag + normalized double
  kString,    ///< native string lane: tag + length + bytes
  kDictCode,  ///< native string lanes sharing ONE dictionary: tag + code
  kCell,      ///< variant/mixed lanes: per-cell canonical encoding
};

/// Per-shuffle-input normalization plan: which fast path encodes each key
/// column, plus whether the whole key has a fixed width bound (numeric /
/// dict-code columns only) — the flat tables use the bound to pre-size
/// their key arenas exactly.
struct KeyCodec {
  std::vector<size_t> cols;
  std::vector<KeyColMode> modes;
  bool bounded = false;
  size_t width_bound = 0;  ///< max encoded bytes per key when `bounded`
};

/// One input side of a shuffle (a join has two; group-by has one).
struct KeySide {
  const std::vector<storage::RowBatch>* batches;
  const std::vector<size_t>* cols;
};

/// Plans one KeyCodec per side. Key position k may use kDictCode only when
/// every batch of every side is a native string lane at that position and
/// all their (non-null) dictionaries are the same object — the encodings of
/// the remaining modes are mutually byte-compatible, so the other positions
/// are chosen per side independently.
std::vector<KeyCodec> PlanKeyCodecs(const std::vector<KeySide>& sides);

/// Normalizes the key cells of row `row` of `batch` into `out`, following
/// the codec's per-column modes. Equal outputs <=> equal keys, across every
/// side the codec was planned with.
void NormalizeKey(const storage::RowBatch& batch, size_t row,
                  const KeyCodec& codec, KeyScratch* out);

}  // namespace opd::exec::hash

#endif  // OPD_EXEC_HASH_HASH_KERNELS_H_
