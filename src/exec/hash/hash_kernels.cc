#include "exec/hash/hash_kernels.h"

#include <algorithm>

#include "storage/column_vector.h"

namespace opd::exec::hash {

using storage::ColumnVector;
using storage::DataType;
using storage::Dictionary;
using storage::RowBatch;
using storage::Value;

void KeyScratch::Grow(size_t need) {
  std::vector<char> bigger(std::max(cap_ * 2, need));
  std::memcpy(bigger.data(), buf_, len_);
  heap_ = std::move(bigger);
  buf_ = heap_.data();
  cap_ = heap_.size();
}

namespace {

// Folds the flat hash of every cell of `col` into out[0..n): one typed loop
// per lane kind, with a branch-free body on the no-null fast paths.
void HashColumnInto(const ColumnVector& col, size_t n, uint64_t* out) {
  const bool no_nulls = col.null_count() == 0;
  if (col.is_native()) {
    switch (col.declared_type()) {
      case DataType::kBool: {
        const uint8_t* v = col.bools();
        for (size_t i = 0; i < n; ++i) {
          const uint64_t h = (!no_nulls && col.IsNull(i))
                                 ? kNullCellHash
                                 : HashNumericCell(v[i] != 0 ? 1.0 : 0.0);
          HashCombine(&out[i], h);
        }
        return;
      }
      case DataType::kInt64: {
        const int64_t* v = col.ints();
        if (no_nulls) {
          for (size_t i = 0; i < n; ++i) {
            HashCombine(&out[i], HashNumericCell(static_cast<double>(v[i])));
          }
          return;
        }
        for (size_t i = 0; i < n; ++i) {
          const uint64_t h =
              col.IsNull(i) ? kNullCellHash
                            : HashNumericCell(static_cast<double>(v[i]));
          HashCombine(&out[i], h);
        }
        return;
      }
      case DataType::kDouble: {
        const double* v = col.doubles();
        if (no_nulls) {
          for (size_t i = 0; i < n; ++i) {
            HashCombine(&out[i], HashNumericCell(v[i]));
          }
          return;
        }
        for (size_t i = 0; i < n; ++i) {
          const uint64_t h =
              col.IsNull(i) ? kNullCellHash : HashNumericCell(v[i]);
          HashCombine(&out[i], h);
        }
        return;
      }
      case DataType::kString: {
        // Dictionary pre-pass already happened at intern time: the shared
        // Dictionary carries Value::Hash (== HashString) per entry, so each
        // cell is a code lookup, never a byte scan.
        const Dictionary* dict = col.dict().get();
        if (dict == nullptr) {
          // No dictionary => no string was ever appended: all cells null.
          for (size_t i = 0; i < n; ++i) HashCombine(&out[i], kNullCellHash);
          return;
        }
        const uint32_t* codes = col.codes();
        const uint64_t* entry_hash = dict->hashes.data();
        if (no_nulls) {
          for (size_t i = 0; i < n; ++i) {
            HashCombine(&out[i], entry_hash[codes[i]]);
          }
          return;
        }
        for (size_t i = 0; i < n; ++i) {
          const uint64_t h =
              col.IsNull(i) ? kNullCellHash : entry_hash[codes[i]];
          HashCombine(&out[i], h);
        }
        return;
      }
      default:
        break;  // kNull-declared column: only null cells, handled below
    }
  }
  // Variant lane (or null-typed column): per-cell reconstruction.
  for (size_t i = 0; i < n; ++i) {
    HashCombine(&out[i], FlatCellHash(col.GetValue(i)));
  }
}

}  // namespace

void HashKeys(const RowBatch& batch, const std::vector<size_t>& cols,
              uint64_t* out) {
  const size_t n = batch.num_rows();
  for (size_t i = 0; i < n; ++i) out[i] = kKeySeed;
  for (size_t c : cols) HashColumnInto(batch.column(c), n, out);
}

std::vector<KeyCodec> PlanKeyCodecs(const std::vector<KeySide>& sides) {
  std::vector<KeyCodec> codecs(sides.size());
  const size_t nkeys = sides.empty() ? 0 : sides[0].cols->size();

  // Per-side, per-position lane class observed across that side's batches.
  enum class Lane : uint8_t { kUnseen, kNumeric, kString, kCell };
  std::vector<std::vector<Lane>> lanes(sides.size(),
                                       std::vector<Lane>(nkeys, Lane::kUnseen));
  // Shared-dictionary tracking across ALL sides per position: the dict-code
  // encoding compares raw codes, so every batch that can produce a non-null
  // string cell must agree on one dictionary object.
  std::vector<const Dictionary*> shared_dict(nkeys, nullptr);
  std::vector<bool> dict_ok(nkeys, true);

  for (size_t s = 0; s < sides.size(); ++s) {
    for (size_t k = 0; k < nkeys; ++k) {
      const size_t col_idx = (*sides[s].cols)[k];
      Lane& lane = lanes[s][k];
      for (const RowBatch& b : *sides[s].batches) {
        if (b.num_rows() == 0) continue;
        const ColumnVector& col = b.column(col_idx);
        Lane this_lane;
        if (!col.is_native()) {
          this_lane = Lane::kCell;
        } else {
          switch (col.declared_type()) {
            case DataType::kBool:
            case DataType::kInt64:
            case DataType::kDouble:
              this_lane = Lane::kNumeric;
              break;
            case DataType::kString:
              this_lane = Lane::kString;
              break;
            default:
              this_lane = Lane::kCell;  // kNull-declared: all cells null
              break;
          }
        }
        if (lane == Lane::kUnseen) {
          lane = this_lane;
        } else if (lane != this_lane) {
          lane = Lane::kCell;  // mixed lanes across batches: generic path
        }
        if (this_lane == Lane::kString) {
          const Dictionary* d = col.dict().get();
          if (d != nullptr) {  // null dict = all-null column, compatible
            if (shared_dict[k] == nullptr) {
              shared_dict[k] = d;
            } else if (shared_dict[k] != d) {
              dict_ok[k] = false;
            }
          }
        } else {
          dict_ok[k] = false;
        }
      }
      if (lane == Lane::kUnseen) lane = Lane::kCell;  // empty input side
    }
  }

  for (size_t s = 0; s < sides.size(); ++s) {
    KeyCodec& codec = codecs[s];
    codec.cols = *sides[s].cols;
    codec.modes.resize(nkeys);
    codec.bounded = true;
    codec.width_bound = 0;
    for (size_t k = 0; k < nkeys; ++k) {
      KeyColMode mode;
      if (dict_ok[k] && shared_dict[k] != nullptr) {
        mode = KeyColMode::kDictCode;
        codec.width_bound += 1 + sizeof(uint32_t);
      } else {
        switch (lanes[s][k]) {
          case Lane::kNumeric:
            mode = KeyColMode::kNumeric;
            codec.width_bound += 1 + sizeof(double);
            break;
          case Lane::kString:
            mode = KeyColMode::kString;
            codec.bounded = false;
            break;
          default:
            mode = KeyColMode::kCell;
            codec.bounded = false;
            break;
        }
      }
      codec.modes[k] = mode;
    }
    if (!codec.bounded) codec.width_bound = 0;
  }
  return codecs;
}

void NormalizeKey(const RowBatch& batch, size_t row, const KeyCodec& codec,
                  KeyScratch* out) {
  out->Clear();
  for (size_t k = 0; k < codec.cols.size(); ++k) {
    const ColumnVector& col = batch.column(codec.cols[k]);
    if (col.IsNull(row)) {
      out->PushByte('\0');
      continue;
    }
    switch (codec.modes[k]) {
      case KeyColMode::kNumeric: {
        double d = 0;
        switch (col.declared_type()) {
          case DataType::kBool:
            d = col.bools()[row] != 0 ? 1.0 : 0.0;
            break;
          case DataType::kInt64:
            d = static_cast<double>(col.ints()[row]);
            break;
          case DataType::kDouble:
            d = col.doubles()[row];
            break;
          default:
            break;  // unreachable: codec planned kNumeric off these lanes
        }
        EncodeNumericCell(d, out);
        break;
      }
      case KeyColMode::kDictCode: {
        const uint32_t code = col.code_at(row);
        out->PushByte('\3');
        out->Append(&code, sizeof(code));
        break;
      }
      case KeyColMode::kString:
        EncodeStringCell(col.string_at(row), out);
        break;
      case KeyColMode::kCell:
        EncodeCell(col.GetValue(row), out);
        break;
    }
  }
}

}  // namespace opd::exec::hash
