// Cross-query recycling of built hash tables (HashStash-style).
//
// The flat shuffle tables (flat_table.h) are the dominant cost of warm
// analytical queries: every join rebuilds its build side and every group-by
// re-discovers its groups, even when the input is an unchanged base table or
// a published view that every warm rewrite and every tenant probes again.
// "Revisiting Reuse in Main Memory Database Systems" (HashStash) showed the
// built hash table is the highest-leverage intermediate to cache; this
// module is that cache for our engine.
//
// A `HashRecycler` maps a `RecycleKey` — table identity (view id + publish
// epoch, or base-table name), key column set, key-codec modes, build kind,
// and shuffle fan-out — to a fully built, immutable `CachedBuild`. The
// engine (engine.cc, behind `EngineOptions::recycle_hash`) consults it
// before building a join build side or group-by table whose input is a
// direct scan, and on a hit probes the cached structures through the
// stats-free `*Shared` accessors instead of rebuilding. Correctness rests
// on three invariants:
//
//  1. *Identity*: view identities embed the publish epoch, so a republished
//     view gets a new key and the stale entry is swept by
//     `InvalidateViews` after each `PublishBatch`. Base tables are frozen
//     (append streams are future work, ROADMAP item 2).
//  2. *Pinning*: a cached build stores row/batch indices into one concrete
//     input object. The `CachedBuild` retains a shared_ptr to that object
//     (so the pointer can never be recycled by the allocator) and `Lookup`
//     compares the caller's live input pointer against `pin`; any mismatch
//     — e.g. a DFS re-read producing a fresh Table — drops the entry.
//  3. *Determinism*: FlatMultiMap preserves insertion order and the cached
//     build/iteration order equals the global row order in all four
//     schedules, so recycled probes emit matches byte-identically to a
//     fresh build (gated by the recycle determinism matrix in
//     tests/recycler_test.cc).
//
// Retention reuses the view store's cost-benefit-per-byte heuristic
// (catalog::CostBenefitPerByte, ReStore's policy): each entry accrues
// benefit equal to the build time it saved per hit, and when the byte
// budget is exceeded the lowest benefit-per-byte entries go first.
//
// Thread safety: all public methods are safe for concurrent callers (one
// mutex; the serving layer shares a single recycler across tenants).
// Returned `CachedBuild`s are immutable and shared_ptr-retained, so an
// eviction never invalidates a build a running query already holds.

#ifndef OPD_EXEC_HASH_RECYCLER_H_
#define OPD_EXEC_HASH_RECYCLER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "exec/hash/flat_table.h"
#include "storage/table.h"

namespace opd::exec::hash {

/// One build-side row: batch ordinal + row ordinal within the batch.
/// (Shared with the engine's batch-mode join; lives here so cached builds
/// and the engine agree on the payload layout.)
struct RowRef {
  uint32_t batch = 0;
  uint32_t idx = 0;
};

/// Which engine structure a cache entry holds. Row and batch modes index
/// rows differently (global row id vs {batch, idx}), so they never share
/// entries even over the same input.
enum class RecycleKind : uint8_t {
  kJoinBuildBatch,
  kJoinBuildRow,
  kGroupByBatch,
  kGroupByRow,
};

/// Identity of a published view at a specific publish epoch. Republishing
/// bumps the epoch, so stale entries can never match.
inline std::string ViewIdentity(int64_t view_id, uint64_t publish_epoch) {
  return "view:" + std::to_string(view_id) + "@" +
         std::to_string(publish_epoch);
}

/// Identity of a (frozen) base table.
inline std::string BaseIdentity(const std::string& table) {
  return "base:" + table;
}

/// Cache key: what must match exactly for a built table to be reusable.
struct RecycleKey {
  RecycleKind kind = RecycleKind::kJoinBuildBatch;
  /// ViewIdentity(...) or BaseIdentity(...).
  std::string identity;
  /// Key column positions in the input schema, in key order.
  std::vector<size_t> key_cols;
  /// Per-column KeyColMode of the planned codec (batch modes only; row
  /// mode normalizes without a codec and leaves this empty). A codec
  /// mismatch — e.g. dict-code keys against one query's probe side but
  /// string keys against another's — must miss, because the stored key
  /// bytes would not compare equal.
  std::vector<uint8_t> codec_modes;
  /// Shuffle fan-out the build was partitioned for.
  uint32_t num_buckets = 1;

  bool operator==(const RecycleKey& o) const {
    return kind == o.kind && num_buckets == o.num_buckets &&
           identity == o.identity && key_cols == o.key_cols &&
           codec_modes == o.codec_modes;
  }
};

struct RecycleKeyHash {
  size_t operator()(const RecycleKey& k) const {
    uint64_t h = HashString(k.identity);
    HashCombine(&h, static_cast<uint64_t>(k.kind));
    HashCombine(&h, k.num_buckets);
    for (size_t c : k.key_cols) HashCombine(&h, c);
    for (uint8_t m : k.codec_modes) HashCombine(&h, m);
    return static_cast<size_t>(h);
  }
};

/// One fully built, immutable set of per-bucket structures. Exactly one
/// payload group is populated, per RecycleKey::kind.
struct CachedBuild {
  // kJoinBuildBatch / kJoinBuildRow: the per-bucket build tables.
  std::vector<FlatMultiMap<RowRef>> join_batch;
  std::vector<FlatMultiMap<size_t>> join_row;

  // kGroupByBatch / kGroupByRow: recorded grouping routes. Aggregates are
  // NOT cached (different queries aggregate differently over the same
  // grouping); instead the reduce replays, per bucket, each input row (in
  // reduce order) with the dense group id it folded into, plus a copy of
  // each group's key row at first-seen position. Replay cost is a hash-free
  // linear pass.
  std::vector<std::vector<RowRef>> group_rows_batch;
  std::vector<std::vector<size_t>> group_rows_row;
  std::vector<std::vector<uint32_t>> group_of;
  std::vector<std::vector<storage::Row>> group_keys;

  // The pinned input: structures above index into exactly this object.
  // Retaining it here makes the `pin` comparison ABA-safe.
  std::shared_ptr<const std::vector<storage::RowBatch>> batches;
  storage::TablePtr table;
  const void* pin = nullptr;

  /// Source view id (-1 for base tables); InvalidateViews sweeps by it.
  int64_t view_id = -1;
  /// Approximate heap bytes (ApproxBytes() fills this at insert when 0).
  uint64_t bytes = 0;
  /// Wall time the original build spent constructing these structures —
  /// the benefit credited per hit.
  double build_cost_s = 0;
};

struct RecyclerStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  uint64_t bytes = 0;
  size_t entries = 0;
};

/// \brief Thread-safe cross-query cache of built hash tables.
class HashRecycler {
 public:
  struct Config {
    /// Retained-bytes budget; 0 = unbounded.
    uint64_t budget_bytes = 64ull << 20;
  };

  struct InsertResult {
    bool inserted = false;
    size_t evicted = 0;
  };

  HashRecycler() = default;
  explicit HashRecycler(Config config) : config_(config) {}

  /// Returns the cached build for `key` iff its pinned input is `pin`;
  /// otherwise a miss. A pin mismatch (same identity, different live
  /// object) drops the stale entry. A hit bumps the entry's benefit by its
  /// build cost.
  std::shared_ptr<const CachedBuild> Lookup(const RecycleKey& key,
                                            const void* pin);

  /// Inserts `build` under `key`, then evicts lowest
  /// benefit-per-byte entries (insertion-order tie-break) until the budget
  /// holds. If `key` is already present the existing entry wins (two
  /// queries racing to build the same table both built correct structures;
  /// keeping the first is cheapest). A build larger than the whole budget
  /// is not inserted.
  InsertResult Insert(const RecycleKey& key,
                      std::shared_ptr<CachedBuild> build);

  /// Drops every view-sourced entry whose view id fails `alive` (e.g. the
  /// view was evicted by retention, or superseded at a newer epoch).
  /// Returns the number of entries dropped.
  size_t InvalidateViews(const std::function<bool(int64_t)>& alive);

  RecyclerStats stats() const;
  uint64_t bytes() const;
  void Clear();

  /// Heap footprint estimate of one cached build.
  static uint64_t ApproxBytes(const CachedBuild& build);

 private:
  struct Entry {
    std::shared_ptr<CachedBuild> build;
    /// Cumulative build seconds saved by hits on this entry.
    double benefit_s = 0;
    uint64_t hits = 0;
    /// Insertion sequence number (deterministic eviction tie-break).
    uint64_t seq = 0;
  };

  /// Evicts until the budget holds. Caller holds mu_.
  size_t EnforceBudgetLocked();

  mutable std::mutex mu_;
  Config config_;
  std::unordered_map<RecycleKey, Entry, RecycleKeyHash> entries_;
  uint64_t bytes_ = 0;
  uint64_t seq_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t inserts_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace opd::exec::hash

#endif  // OPD_EXEC_HASH_RECYCLER_H_
