#include "exec/hash/recycler.h"

#include <algorithm>
#include <utility>

#include "catalog/eviction.h"

namespace opd::exec::hash {

namespace {

template <typename T>
uint64_t VectorBytes(const std::vector<T>& v) {
  return static_cast<uint64_t>(v.capacity()) * sizeof(T);
}

uint64_t RowsBytes(const std::vector<storage::Row>& rows) {
  uint64_t b = VectorBytes(rows);
  for (const storage::Row& r : rows) {
    b += VectorBytes(r);
    for (const storage::Value& v : r) b += v.ByteSize();
  }
  return b;
}

}  // namespace

uint64_t HashRecycler::ApproxBytes(const CachedBuild& build) {
  uint64_t b = sizeof(CachedBuild);
  for (const auto& ht : build.join_batch) b += ht.memory_bytes();
  for (const auto& ht : build.join_row) b += ht.memory_bytes();
  for (const auto& rows : build.group_rows_batch) b += VectorBytes(rows);
  for (const auto& rows : build.group_rows_row) b += VectorBytes(rows);
  for (const auto& ids : build.group_of) b += VectorBytes(ids);
  for (const auto& keys : build.group_keys) b += RowsBytes(keys);
  return b;
}

std::shared_ptr<const CachedBuild> HashRecycler::Lookup(const RecycleKey& key,
                                                        const void* pin) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  Entry& entry = it->second;
  if (entry.build->pin != pin) {
    // Same identity but a different live input object (e.g. the DFS
    // re-read the table into a fresh instance). The cached indices are
    // meaningless against the caller's input: drop the entry.
    bytes_ -= std::min(bytes_, entry.build->bytes);
    entries_.erase(it);
    ++misses_;
    return nullptr;
  }
  ++hits_;
  ++entry.hits;
  entry.benefit_s += entry.build->build_cost_s;
  return entry.build;
}

HashRecycler::InsertResult HashRecycler::Insert(
    const RecycleKey& key, std::shared_ptr<CachedBuild> build) {
  InsertResult result;
  if (build == nullptr) return result;
  if (build->bytes == 0) build->bytes = ApproxBytes(*build);
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.budget_bytes != 0 && build->bytes > config_.budget_bytes) {
    return result;  // could never fit, even alone
  }
  auto [it, inserted] = entries_.try_emplace(key);
  if (!inserted) return result;  // concurrent builder won the race
  it->second.build = std::move(build);
  it->second.seq = seq_++;
  bytes_ += it->second.build->bytes;
  ++inserts_;
  result.inserted = true;
  result.evicted = EnforceBudgetLocked();
  return result;
}

size_t HashRecycler::EnforceBudgetLocked() {
  if (config_.budget_bytes == 0 || bytes_ <= config_.budget_bytes) return 0;
  std::vector<const std::pair<const RecycleKey, Entry>*> order;
  order.reserve(entries_.size());
  for (const auto& kv : entries_) order.push_back(&kv);
  std::sort(order.begin(), order.end(), [](const auto* a, const auto* b) {
    const double sa = catalog::CostBenefitPerByte(a->second.benefit_s,
                                                  a->second.build->bytes);
    const double sb = catalog::CostBenefitPerByte(b->second.benefit_s,
                                                  b->second.build->bytes);
    if (sa != sb) return sa < sb;
    return a->second.seq < b->second.seq;  // deterministic tie-break
  });
  size_t evicted = 0;
  for (const auto* kv : order) {
    if (bytes_ <= config_.budget_bytes) break;
    bytes_ -= std::min(bytes_, kv->second.build->bytes);
    const RecycleKey key = kv->first;  // copy: erase frees the node
    entries_.erase(key);
    ++evicted;
  }
  evictions_ += evicted;
  return evicted;
}

size_t HashRecycler::InvalidateViews(
    const std::function<bool(int64_t)>& alive) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const int64_t vid = it->second.build->view_id;
    if (vid >= 0 && !alive(vid)) {
      bytes_ -= std::min(bytes_, it->second.build->bytes);
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

RecyclerStats HashRecycler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  RecyclerStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.inserts = inserts_;
  s.evictions = evictions_;
  s.bytes = bytes_;
  s.entries = entries_.size();
  return s;
}

uint64_t HashRecycler::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

void HashRecycler::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  bytes_ = 0;
}

}  // namespace opd::exec::hash
