#include "exec/hash/flat_table.h"

#include <algorithm>

namespace opd::exec::hash {

void KeyArena::NewChunk(size_t min_bytes) {
  const size_t sz = std::max({kMinChunk, last_chunk_ * 2, min_bytes});
  chunks_.push_back(std::make_unique<char[]>(sz));
  cur_ = chunks_.back().get();
  avail_ = sz;
  last_chunk_ = sz;
}

void KeyArena::Reserve(size_t bytes) {
  if (bytes > avail_) NewChunk(bytes);
}

const char* KeyArena::Store(const char* data, uint32_t n) {
  if (n == 0) return "";  // never hand out null (memcmp UB even at n==0)
  if (n > avail_) NewChunk(n);
  char* dst = cur_;
  std::memcpy(dst, data, n);
  cur_ += n;
  avail_ -= n;
  total_ += n;
  return dst;
}

}  // namespace opd::exec::hash
