// Statistics collection for materialized views (Section 2.1): "for each view
// stored, we collect statistics by running a lightweight Map job that samples
// the view's data".

#ifndef OPD_EXEC_STATS_COLLECTOR_H_
#define OPD_EXEC_STATS_COLLECTOR_H_

#include "catalog/catalog.h"
#include "common/thread_pool.h"
#include "optimizer/cost_model.h"
#include "storage/table.h"

namespace opd::exec {

/// \brief Samples a table and estimates its statistics.
class StatsCollector {
 public:
  /// \param sample_fraction fraction of rows sampled by the stats Map job
  explicit StatsCollector(double sample_fraction = 0.05, uint64_t seed = 42)
      : fraction_(sample_fraction), seed_(seed) {}

  /// Estimates stats from a deterministic sample. Row count and byte size
  /// come from job counters (exact); per-column distincts and widths are
  /// estimated from the sample. The sample itself is drawn serially from
  /// the seeded RNG (so it never depends on threading); per-column
  /// sketches are then computed as parallel tasks on `pool` when given.
  catalog::TableStats Collect(const storage::Table& table,
                              ThreadPool* pool = nullptr) const;

  /// Modeled time of the sampling Map job under `model`.
  double JobTime(const storage::Table& table,
                 const optimizer::CostModel& model) const;

  double fraction() const { return fraction_; }

 private:
  double fraction_;
  uint64_t seed_;
};

}  // namespace opd::exec

#endif  // OPD_EXEC_STATS_COLLECTOR_H_
