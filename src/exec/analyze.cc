#include "exec/analyze.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <set>

namespace opd::exec {

using plan::OpNode;
using plan::OpNodePtr;

std::string HumanBytes(uint64_t bytes) {
  char buf[32];
  if (bytes < 1024) {
    std::snprintf(buf, sizeof(buf), "%lluB",
                  static_cast<unsigned long long>(bytes));
  } else if (bytes < 1024ull * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fKB",
                  static_cast<double>(bytes) / 1024.0);
  } else if (bytes < 1024ull * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fMB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fGB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0));
  }
  return buf;
}

namespace {

void Render(const OpNodePtr& node, int depth,
            const std::map<const OpNode*, const JobRun*>& job_of,
            const AnalyzeOptions& options,
            std::set<const OpNode*>* shared_printed, std::string* out) {
  std::string line(static_cast<size_t>(depth) * 2, ' ');
  line += node->DisplayName();
  if (line.size() < 44) line.append(44 - line.size(), ' ');

  auto it = job_of.find(node.get());
  if (it == job_of.end()) {
    line += "  (scan)";
  } else {
    const JobRun& jr = *it->second;
    char buf[224];
    // Pipelined jobs report fused pipeline tasks ("p"); phased jobs report
    // their map/partition waves ("m"). time= is the cost model over the
    // *observed* bytes; pred= is the optimizer's plan-time estimate and
    // resid= their signed gap (the cost-model accountability signal).
    std::snprintf(buf, sizeof(buf),
                  "  [job %d] time=%.2fs pred=%.2fs resid=%+.1f%% "
                  "rows=%llu->%llu read=%s shuffled=%s "
                  "written=%s tasks=%zu%s+%zur",
                  jr.index, jr.sim_time_s, jr.predicted_cost_s,
                  jr.residual_pct,
                  static_cast<unsigned long long>(jr.rows_in),
                  static_cast<unsigned long long>(jr.rows_out),
                  HumanBytes(jr.bytes_read).c_str(),
                  HumanBytes(jr.bytes_shuffled).c_str(),
                  HumanBytes(jr.bytes_written).c_str(), jr.map_tasks,
                  jr.pipelined ? "p" : "m", jr.reduce_tasks);
    line += buf;
    // Hash-recycler outcome of this job, if it had a recyclable build
    // (join build side or group-by input scanning an unchanged table/view).
    if (jr.recycle_hits > 0) {
      line += " recycle=hit";
    } else if (jr.recycle_misses > 0) {
      line += " recycle=miss";
    }
    if (options.show_wall) {
      std::snprintf(buf, sizeof(buf), " wall=%.1fms straggler=%.2fms",
                    jr.wall_time_s * 1e3, jr.max_task_time_s * 1e3);
      line += buf;
    }
  }
  out->append(line);
  out->push_back('\n');

  // A shared subtree (a DAG materialization point) is expanded once.
  if (!shared_printed->insert(node.get()).second) return;
  for (const OpNodePtr& child : node->children) {
    if (shared_printed->count(child.get())) {
      std::string indent(static_cast<size_t>(depth + 1) * 2, ' ');
      out->append(indent + "(shared) " + child->DisplayName() + "\n");
      continue;
    }
    Render(child, depth + 1, job_of, options, shared_printed, out);
  }
}

}  // namespace

std::string ExplainAnalyze(const plan::Plan& plan,
                           const std::vector<JobRun>& jobs,
                           const ExecMetrics& metrics,
                           const AnalyzeOptions& options) {
  if (plan.empty()) return "<empty plan>\n";
  std::map<const OpNode*, const JobRun*> job_of;
  for (const JobRun& jr : jobs) {
    if (jr.node != nullptr) job_of[jr.node] = &jr;
  }
  std::string out;
  std::set<const OpNode*> shared_printed;
  Render(plan.root(), 0, job_of, options, &shared_printed, &out);
  double max_abs_resid = 0;
  for (const JobRun& jr : jobs) {
    if (std::fabs(jr.residual_pct) > std::fabs(max_abs_resid)) {
      max_abs_resid = jr.residual_pct;
    }
  }
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "jobs: %d  sim time: %.2fs (+stats %.2fs)  read: %s  "
                "shuffled: %s  written: %s  views: %d  max resid: %+.1f%%\n",
                metrics.jobs, metrics.sim_time_s, metrics.stats_time_s,
                HumanBytes(metrics.bytes_read).c_str(),
                HumanBytes(metrics.bytes_shuffled).c_str(),
                HumanBytes(metrics.bytes_written).c_str(),
                metrics.views_created, max_abs_resid);
  out += buf;
  return out;
}

}  // namespace opd::exec
