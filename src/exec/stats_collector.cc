#include "exec/stats_collector.h"

#include <algorithm>
#include <set>

#include "common/rng.h"

namespace opd::exec {

catalog::TableStats StatsCollector::Collect(const storage::Table& table,
                                            ThreadPool* pool) const {
  catalog::TableStats stats;
  // Exact from job counters.
  stats.rows = static_cast<double>(table.num_rows());
  stats.avg_row_bytes = table.AvgRowBytes();
  if (table.num_rows() == 0) return stats;

  // Draw the sample serially from the seeded RNG: the sampled set is a
  // function of (seed, table) only, never of threading.
  Rng rng(seed_ ^ table.num_rows());
  std::vector<const storage::Row*> sample;
  sample.reserve(static_cast<size_t>(
      fraction_ * static_cast<double>(table.num_rows()) + 1));
  for (const auto& row : table.rows()) {
    if (rng.Bernoulli(fraction_)) sample.push_back(&row);
  }
  if (sample.empty()) {
    // Degenerate sample: fall back to scanning the first row only.
    sample.push_back(&table.row(0));
  }
  const size_t sampled = sample.size();

  // Per-column sketches are independent — one task per column.
  const auto& schema = table.schema();
  std::vector<std::set<uint64_t>> hashes(schema.num_columns());
  std::vector<double> widths(schema.num_columns(), 0);
  Status st = ParallelFor(pool, schema.num_columns(), [&](size_t c) {
    for (const storage::Row* row : sample) {
      hashes[c].insert((*row)[c].Hash());
      widths[c] += static_cast<double>((*row)[c].ByteSize());
    }
    return Status::OK();
  });
  (void)st;  // the column tasks cannot fail
  const double n = stats.rows;
  const double sn = static_cast<double>(sampled);
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const std::string& name = schema.column(c).name;
    const double ds = static_cast<double>(hashes[c].size());
    // Saturation heuristic: if the sample looks mostly-unique, scale to the
    // full table; if it saturated at few values, take it as the cardinality.
    double est = ds >= 0.6 * sn ? ds * (n / sn) : ds;
    stats.distinct[name] = std::min(est, n);
    stats.col_bytes[name] = widths[c] / sn;
  }
  return stats;
}

double StatsCollector::JobTime(const storage::Table& table,
                               const optimizer::CostModel& model) const {
  // A map-only pass over the sampled fraction of the data; no shuffle, a
  // metadata-sized output. As a lightweight piggybacked task it pays only a
  // fraction of a full MR job's startup latency.
  const double bytes = static_cast<double>(table.ByteSize()) * fraction_;
  plan::JobCostInfo cost = model.JobCost(bytes, 0.0, 1024.0, 1.0, 1.0, false);
  return cost.total_s - 0.875 * cost.latency_s;
}

}  // namespace opd::exec
