#include "exec/pipeline.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <string>
#include <vector>

namespace opd::exec {

namespace {

// Runs one task body, converting any escaped exception into a Status.
Status RunTaskGuarded(const std::function<Status(size_t)>& fn, size_t i) {
  try {
    return fn(i);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("task threw: ") + e.what());
  } catch (...) {
    return Status::Internal("task threw a non-std exception");
  }
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

Status RunPipelinedShuffle(const PipelineCtx& ctx, size_t num_producers,
                           const std::function<Status(size_t)>& producer,
                           size_t num_buckets,
                           const std::function<Status(size_t)>& consumer,
                           double* max_producer_seconds,
                           double* max_consumer_seconds) {
  if (max_producer_seconds != nullptr) *max_producer_seconds = 0;
  if (max_consumer_seconds != nullptr) *max_consumer_seconds = 0;
  if (ctx.tasks != nullptr) *ctx.tasks += num_producers + num_buckets;
  if (num_producers == 0) return Status::OK();

  // Allocate the whole span structure up front, on the serial path: phase
  // spans first, then the producer and consumer task-id blocks. Ids never
  // depend on task interleaving, so the structure is identical at every
  // thread count (the determinism contract in obs/trace.h).
  obs::Trace* trace = ctx.trace;
  obs::TraceSpan producer_span;
  obs::TraceSpan consumer_span;
  uint64_t producer_ids = 0;
  uint64_t consumer_ids = 0;
  const bool trace_tasks = trace != nullptr && ctx.trace_tasks;
  if (trace != nullptr) {
    producer_span =
        obs::TraceSpan(trace, ctx.parent_span, "pipeline", "phase");
    producer_span.AddArg("tasks", static_cast<uint64_t>(num_producers));
    if (trace_tasks) producer_ids = trace->AllocSpanIds(num_producers);
    if (num_buckets > 0) {
      consumer_span =
          obs::TraceSpan(trace, ctx.parent_span, "reduce", "phase");
      consumer_span.AddArg("tasks", static_cast<uint64_t>(num_buckets));
      if (trace_tasks) consumer_ids = trace->AllocSpanIds(num_buckets);
    }
  }

  // Per-task results. Statuses are written only on failure and times once
  // per task, so these shared arrays stay cold during the hot loops.
  std::vector<Status> producer_status(num_producers, Status::OK());
  std::vector<Status> consumer_status(num_buckets, Status::OK());
  std::vector<double> producer_s(num_producers, 0.0);
  std::vector<double> consumer_s(num_buckets, 0.0);

  auto run_producer = [&](size_t p) {
    obs::TraceSpan span;
    if (trace_tasks) {
      span = obs::TraceSpan::Adopt(trace, producer_ids + p,
                                   producer_span.id(),
                                   "pipeline:" + std::to_string(p), "task",
                                   static_cast<uint32_t>(1 + p));
    }
    const auto start = std::chrono::steady_clock::now();
    Status st = RunTaskGuarded(producer, p);
    producer_s[p] = SecondsSince(start);
    if (!st.ok()) producer_status[p] = std::move(st);
  };
  auto run_consumer = [&](size_t b) {
    obs::TraceSpan span;
    if (trace_tasks) {
      span = obs::TraceSpan::Adopt(trace, consumer_ids + b,
                                   consumer_span.id(),
                                   "bucket:" + std::to_string(b), "task",
                                   static_cast<uint32_t>(1 + b));
    }
    const auto start = std::chrono::steady_clock::now();
    Status st = RunTaskGuarded(consumer, b);
    consumer_s[b] = SecondsSince(start);
    if (!st.ok()) consumer_status[b] = std::move(st);
  };

  ThreadPool* pool = ctx.pool;
  if (pool == nullptr || pool->num_threads() <= 1) {
    // Inline execution: producers in order, then buckets in order — the
    // reference order every parallel schedule must be indistinguishable
    // from (modulo durations).
    for (size_t p = 0; p < num_producers; ++p) run_producer(p);
    producer_span.End();
    for (size_t b = 0; b < num_buckets; ++b) run_consumer(b);
    consumer_span.End();
  } else {
    // Latch-scheduled execution. bucket_remaining[b] counts unfinished
    // producers; the producer whose decrement reaches zero hands bucket b
    // to the pool right away (its acq_rel RMW orders every producer's
    // buffer writes before the consumer runs). `done` counts EVERY task —
    // producers and consumers — so this frame provably outlives all of
    // them: a consumer scheduled mid-way through the last producer's bucket
    // loop must not release the waiter while that producer still reads
    // bucket_remaining. The caller helps drain the pool while waiting, so
    // no thread idles and nested pipelines cannot deadlock.
    std::unique_ptr<std::atomic<size_t>[]> bucket_remaining;
    if (num_buckets > 0) {
      bucket_remaining =
          std::make_unique<std::atomic<size_t>[]>(num_buckets);
      for (size_t b = 0; b < num_buckets; ++b) {
        bucket_remaining[b].store(num_producers,
                                  std::memory_order_relaxed);
      }
    }
    CountdownLatch done(num_producers + num_buckets);
    auto consumer_task = [&](size_t b) {
      run_consumer(b);
      done.CountDown();  // last action: see CountdownLatch destruction note
    };
    auto producer_task = [&](size_t p) {
      run_producer(p);
      for (size_t b = 0; b < num_buckets; ++b) {
        if (bucket_remaining[b].fetch_sub(1, std::memory_order_acq_rel) ==
            1) {
          pool->Submit([&consumer_task, b] { consumer_task(b); });
        }
      }
      done.CountDown();  // last action: see CountdownLatch destruction note
    };
    for (size_t p = 0; p < num_producers; ++p) {
      pool->Submit([&producer_task, p] { producer_task(p); });
    }
    done.Wait(pool);
    producer_span.End();
    consumer_span.End();
  }

  if (max_producer_seconds != nullptr) {
    for (double s : producer_s) {
      *max_producer_seconds = std::max(*max_producer_seconds, s);
    }
  }
  if (max_consumer_seconds != nullptr) {
    for (double s : consumer_s) {
      *max_consumer_seconds = std::max(*max_consumer_seconds, s);
    }
  }
  for (const Status& st : producer_status) {
    if (!st.ok()) return st;
  }
  for (const Status& st : consumer_status) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace opd::exec
