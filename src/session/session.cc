#include "session/session.h"

#include <cstdio>
#include <utility>

#include "common/json_writer.h"
#include "server/server.h"

namespace opd {

namespace {

std::string FormatSeconds(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6gs", v);
  return buf;
}

}  // namespace

Result<std::unique_ptr<Session>> Session::Create(SessionOptions options) {
  auto session = std::unique_ptr<Session>(new Session());
  OPD_ASSIGN_OR_RETURN(session->server_, Server::Create(std::move(options)));
  session->client_ =
      std::make_unique<ClientSession>(session->server_->Connect("default"));
  return session;
}

Session::~Session() = default;

Status Session::RegisterTable(const storage::TablePtr& table,
                              const std::vector<std::string>& key_columns) {
  return server_->RegisterTable(table, key_columns);
}

Result<RunResult> Session::Run(const std::string& oql,
                               const RunOptions& opts) {
  return client_->Run(oql, opts);
}

Result<RunResult> Session::Run(plan::Plan plan, const RunOptions& opts) {
  return client_->Run(std::move(plan), opts);
}

Result<std::string> Session::ExplainAnalyze(const std::string& oql,
                                            const RunOptions& opts) {
  return client_->ExplainAnalyze(oql, opts);
}

Result<rewrite::RewriteOutcome> Session::Rewrite(const std::string& oql) {
  return client_->Rewrite(oql);
}

Result<std::string> Session::ExplainRewrite(const std::string& oql) {
  return client_->ExplainRewrite(oql);
}

Server& Session::server() { return *server_; }
storage::Dfs& Session::dfs() { return server_->dfs(); }
catalog::Catalog& Session::catalog() { return server_->catalog(); }
catalog::ViewStore& Session::views() { return server_->views(); }
udf::UdfRegistry& Session::udfs() { return server_->udfs(); }
const optimizer::Optimizer& Session::optimizer() const {
  return server_->optimizer();
}
exec::Engine& Session::engine() { return server_->engine(); }
const rewrite::BfRewriter& Session::rewriter() const {
  return server_->rewriter();
}
const optimizer::CostAccountant& Session::accountant() const {
  return server_->accountant();
}
const SessionOptions& Session::options() const { return server_->options(); }

std::string RunResult::ExplainAnalyze(
    const exec::AnalyzeOptions& options) const {
  return exec::ExplainAnalyze(plan, jobs, metrics, options);
}

std::string RunResult::MetricsJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("exec").Raw(metrics.ToJson());
  w.Key("jobs").BeginArray();
  for (const exec::JobRun& jr : jobs) {
    w.BeginObject();
    w.Key("index").Int(jr.index);
    w.Key("op").String(jr.op);
    w.Key("sim_time_s").Double(jr.sim_time_s);
    w.Key("rows_out").UInt(jr.rows_out);
    w.Key("predicted_cost_s").Double(jr.predicted_cost_s);
    w.Key("observed_proxy_cost_s").Double(jr.observed_proxy_cost_s);
    w.Key("residual_pct").Double(jr.residual_pct);
    w.EndObject();
  }
  w.EndArray();
  w.Key("rewrite").BeginObject();
  w.Key("rewritten").Bool(rewritten);
  if (rewritten) {
    w.Key("improved").Bool(rewrite.improved);
    w.Key("original_cost_s").Double(rewrite.original_cost);
    w.Key("est_cost_s").Double(rewrite.est_cost);
    const rewrite::DecisionCounts c = rewrite.decisions.Counts();
    w.Key("decisions").BeginObject();
    w.Key("candidates").UInt(c.candidates);
    w.Key("accepted").UInt(c.accepted);
    w.Key("signature_mismatch").UInt(c.signature_mismatch);
    w.Key("afk_containment").UInt(c.afk_containment);
    w.Key("not_cost_improving").UInt(c.not_cost_improving);
    w.Key("pruned_by_bound").UInt(c.pruned_by_bound);
    w.EndObject();
  }
  w.EndObject();
  w.Key("cost_model").BeginObject();
  w.Key("classes").BeginArray();
  for (const auto& d : cost_drifts) {
    w.BeginObject();
    w.Key("op_class").String(d.op_class);
    w.Key("ewma_residual_pct").Double(d.ewma_pct);
    w.Key("samples").UInt(d.samples);
    w.Key("stale").Bool(d.stale);
    w.EndObject();
  }
  w.EndArray();
  w.Key("stale").BeginArray();
  for (const auto& d : cost_drifts) {
    if (d.stale) w.String(d.op_class);
  }
  w.EndArray();
  w.EndObject();
  w.Key("serving").BeginObject();
  w.Key("tenant").String(tenant);
  w.Key("admission_epoch").UInt(admission_epoch);
  w.Key("publish_epoch").UInt(publish_epoch);
  w.Key("admission_ticket").UInt(admission_ticket);
  w.Key("queue_wait_s").Double(queue_wait_s);
  w.Key("views_used").BeginArray();
  for (const ViewUse& use : views_used) {
    w.BeginObject();
    w.Key("id").Int(use.id);
    w.Key("publish_epoch").UInt(use.publish_epoch);
    w.Key("tenant").String(use.tenant);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.Key("registry_delta").Raw(metrics_delta.ToJson());
  w.EndObject();
  return w.Take();
}

std::string RunResult::MetricsPrometheus() const {
  return metrics_delta.ToPrometheus();
}

std::string RenderExplainRewrite(const rewrite::RewriteOutcome& outcome,
                                 size_t views_in_store) {
  std::string out = "EXPLAIN REWRITE " + outcome.plan.name() + "\n";
  out += "views in store: " + std::to_string(views_in_store) + "\n";
  out += "original cost: " + FormatSeconds(outcome.original_cost) +
         "  best cost: " + FormatSeconds(outcome.est_cost) +
         "  improved: " + (outcome.improved ? "yes" : "no") + "\n";
  out += "search: " +
         std::to_string(outcome.stats.candidates_considered) +
         " candidates considered, " +
         std::to_string(outcome.stats.rewrite_attempts) +
         " enum attempts, " + std::to_string(outcome.stats.rewrites_found) +
         " rewrites found\n";
  out += outcome.decisions.ToText();
  return out;
}

}  // namespace opd
