#include "session/session.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "catalog/eviction.h"
#include "common/json_writer.h"
#include "oql/parser.h"

namespace opd {

namespace {

std::string FormatSeconds(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6gs", v);
  return buf;
}

}  // namespace

Result<std::unique_ptr<Session>> Session::Create(SessionOptions options) {
  // The session-level obs toggles are the single source of truth; mirror
  // them into the engine's own knobs.
  options.engine.metrics = options.obs.metrics;
  options.engine.trace_tasks = options.obs.trace_tasks;

  auto session = std::unique_ptr<Session>(new Session());
  session->options_ = options;
  session->dfs_ = std::make_unique<storage::Dfs>();
  session->catalog_ = std::make_unique<catalog::Catalog>();
  session->views_ = std::make_unique<catalog::ViewStore>();
  session->udfs_ = std::make_unique<udf::UdfRegistry>();

  plan::AnnotationContext ctx;
  ctx.catalog = session->catalog_.get();
  ctx.views = session->views_.get();
  ctx.udfs = session->udfs_.get();
  session->optimizer_ = std::make_unique<optimizer::Optimizer>(
      ctx, optimizer::CostModel(options.cost), options.optimizer);
  session->engine_ = std::make_unique<exec::Engine>(
      session->dfs_.get(), session->views_.get(), session->optimizer_.get(),
      options.engine);
  optimizer::CostAccountant::Options acc_opts;
  acc_opts.publish_metrics = options.obs.metrics;
  session->accountant_ =
      std::make_unique<optimizer::CostAccountant>(acc_opts);
  session->engine_->set_accountant(session->accountant_.get());
  session->bfr_ = std::make_unique<rewrite::BfRewriter>(
      session->optimizer_.get(), session->views_.get(), options.rewrite);
  return session;
}

Status Session::RegisterTable(const storage::TablePtr& table,
                              const std::vector<std::string>& key_columns) {
  return catalog_->RegisterBase(table, key_columns, dfs_.get());
}

Result<RunResult> Session::Run(const std::string& oql,
                               const RunOptions& opts) {
  OPD_ASSIGN_OR_RETURN(plan::Plan plan, oql::ParseQuery(oql));
  return Run(std::move(plan), opts);
}

Result<RunResult> Session::Run(plan::Plan plan, const RunOptions& opts) {
  RunResult out;
  obs::MetricsSnapshot before;
  if (options_.obs.metrics) {
    before = obs::MetricsSnapshot::Capture(obs::MetricRegistry::Global());
  }
  if (options_.obs.tracing) out.trace = std::make_shared<obs::Trace>();
  obs::Trace* trace = out.trace.get();
  obs::TraceSpan query_span(trace, 0, "query:" + plan.name(), "query");

  if (opts.rewrite) {
    OPD_ASSIGN_OR_RETURN(out.rewrite,
                         bfr_->Rewrite(&plan, trace, query_span.id()));
    out.rewritten = true;
    // Credit the views the rewrite uses (drives the retention policies).
    OPD_RETURN_NOT_OK(catalog::RecordPlanAccesses(
        views_.get(), out.rewrite.plan,
        std::max(out.rewrite.original_cost - out.rewrite.est_cost, 0.0)));
    plan = out.rewrite.plan;
  }

  OPD_ASSIGN_OR_RETURN(exec::ExecResult exec,
                       engine_->Execute(&plan, trace, query_span.id()));
  query_span.End();

  out.table = std::move(exec.table);
  out.metrics = exec.metrics;
  out.jobs = std::move(exec.jobs);
  out.plan = std::move(plan);
  if (options_.obs.metrics) {
    out.metrics_delta =
        obs::MetricsSnapshot::Capture(obs::MetricRegistry::Global())
            .DiffFrom(before);
  }
  out.cost_drifts = accountant_->Drifts();
  return out;
}

Result<std::string> Session::ExplainAnalyze(const std::string& oql,
                                            const RunOptions& opts) {
  OPD_ASSIGN_OR_RETURN(RunResult run, Run(oql, opts));
  return run.ExplainAnalyze();
}

Result<rewrite::RewriteOutcome> Session::Rewrite(const std::string& oql) {
  OPD_ASSIGN_OR_RETURN(plan::Plan plan, oql::ParseQuery(oql));
  // No trace, no view-access credit: this is a read-only search, so running
  // it must not perturb retention policies or metrics-driven decisions.
  return bfr_->Rewrite(&plan, /*trace=*/nullptr, /*parent_span=*/0);
}

Result<std::string> Session::ExplainRewrite(const std::string& oql) {
  OPD_ASSIGN_OR_RETURN(rewrite::RewriteOutcome outcome, Rewrite(oql));
  return RenderExplainRewrite(outcome, views_->size());
}

std::string RunResult::ExplainAnalyze(
    const exec::AnalyzeOptions& options) const {
  return exec::ExplainAnalyze(plan, jobs, metrics, options);
}

std::string RunResult::MetricsJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("exec").Raw(metrics.ToJson());
  w.Key("jobs").BeginArray();
  for (const exec::JobRun& jr : jobs) {
    w.BeginObject();
    w.Key("index").Int(jr.index);
    w.Key("op").String(jr.op);
    w.Key("sim_time_s").Double(jr.sim_time_s);
    w.Key("rows_out").UInt(jr.rows_out);
    w.Key("predicted_cost_s").Double(jr.predicted_cost_s);
    w.Key("observed_proxy_cost_s").Double(jr.observed_proxy_cost_s);
    w.Key("residual_pct").Double(jr.residual_pct);
    w.EndObject();
  }
  w.EndArray();
  w.Key("rewrite").BeginObject();
  w.Key("rewritten").Bool(rewritten);
  if (rewritten) {
    w.Key("improved").Bool(rewrite.improved);
    w.Key("original_cost_s").Double(rewrite.original_cost);
    w.Key("est_cost_s").Double(rewrite.est_cost);
    const rewrite::DecisionCounts c = rewrite.decisions.Counts();
    w.Key("decisions").BeginObject();
    w.Key("candidates").UInt(c.candidates);
    w.Key("accepted").UInt(c.accepted);
    w.Key("signature_mismatch").UInt(c.signature_mismatch);
    w.Key("afk_containment").UInt(c.afk_containment);
    w.Key("not_cost_improving").UInt(c.not_cost_improving);
    w.Key("pruned_by_bound").UInt(c.pruned_by_bound);
    w.EndObject();
  }
  w.EndObject();
  w.Key("cost_model").BeginObject();
  w.Key("classes").BeginArray();
  for (const auto& d : cost_drifts) {
    w.BeginObject();
    w.Key("op_class").String(d.op_class);
    w.Key("ewma_residual_pct").Double(d.ewma_pct);
    w.Key("samples").UInt(d.samples);
    w.Key("stale").Bool(d.stale);
    w.EndObject();
  }
  w.EndArray();
  w.Key("stale").BeginArray();
  for (const auto& d : cost_drifts) {
    if (d.stale) w.String(d.op_class);
  }
  w.EndArray();
  w.EndObject();
  w.Key("registry_delta").Raw(metrics_delta.ToJson());
  w.EndObject();
  return w.Take();
}

std::string RunResult::MetricsPrometheus() const {
  return metrics_delta.ToPrometheus();
}

std::string RenderExplainRewrite(const rewrite::RewriteOutcome& outcome,
                                 size_t views_in_store) {
  std::string out = "EXPLAIN REWRITE " + outcome.plan.name() + "\n";
  out += "views in store: " + std::to_string(views_in_store) + "\n";
  out += "original cost: " + FormatSeconds(outcome.original_cost) +
         "  best cost: " + FormatSeconds(outcome.est_cost) +
         "  improved: " + (outcome.improved ? "yes" : "no") + "\n";
  out += "search: " +
         std::to_string(outcome.stats.candidates_considered) +
         " candidates considered, " +
         std::to_string(outcome.stats.rewrite_attempts) +
         " enum attempts, " + std::to_string(outcome.stats.rewrites_found) +
         " rewrites found\n";
  out += outcome.decisions.ToText();
  return out;
}

}  // namespace opd
