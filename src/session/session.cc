#include "session/session.h"

#include <algorithm>
#include <utility>

#include "catalog/eviction.h"
#include "oql/parser.h"

namespace opd {

Result<std::unique_ptr<Session>> Session::Create(SessionOptions options) {
  // The session-level obs toggles are the single source of truth; mirror
  // them into the engine's own knobs.
  options.engine.metrics = options.obs.metrics;
  options.engine.trace_tasks = options.obs.trace_tasks;

  auto session = std::unique_ptr<Session>(new Session());
  session->options_ = options;
  session->dfs_ = std::make_unique<storage::Dfs>();
  session->catalog_ = std::make_unique<catalog::Catalog>();
  session->views_ = std::make_unique<catalog::ViewStore>();
  session->udfs_ = std::make_unique<udf::UdfRegistry>();

  plan::AnnotationContext ctx;
  ctx.catalog = session->catalog_.get();
  ctx.views = session->views_.get();
  ctx.udfs = session->udfs_.get();
  session->optimizer_ = std::make_unique<optimizer::Optimizer>(
      ctx, optimizer::CostModel(options.cost), options.optimizer);
  session->engine_ = std::make_unique<exec::Engine>(
      session->dfs_.get(), session->views_.get(), session->optimizer_.get(),
      options.engine);
  session->bfr_ = std::make_unique<rewrite::BfRewriter>(
      session->optimizer_.get(), session->views_.get(), options.rewrite);
  return session;
}

Status Session::RegisterTable(const storage::TablePtr& table,
                              const std::vector<std::string>& key_columns) {
  return catalog_->RegisterBase(table, key_columns, dfs_.get());
}

Result<RunResult> Session::Run(const std::string& oql,
                               const RunOptions& opts) {
  OPD_ASSIGN_OR_RETURN(plan::Plan plan, oql::ParseQuery(oql));
  return Run(std::move(plan), opts);
}

Result<RunResult> Session::Run(plan::Plan plan, const RunOptions& opts) {
  RunResult out;
  if (options_.obs.tracing) out.trace = std::make_shared<obs::Trace>();
  obs::Trace* trace = out.trace.get();
  obs::TraceSpan query_span(trace, 0, "query:" + plan.name(), "query");

  if (opts.rewrite) {
    OPD_ASSIGN_OR_RETURN(out.rewrite,
                         bfr_->Rewrite(&plan, trace, query_span.id()));
    out.rewritten = true;
    // Credit the views the rewrite uses (drives the retention policies).
    OPD_RETURN_NOT_OK(catalog::RecordPlanAccesses(
        views_.get(), out.rewrite.plan,
        std::max(out.rewrite.original_cost - out.rewrite.est_cost, 0.0)));
    plan = out.rewrite.plan;
  }

  OPD_ASSIGN_OR_RETURN(exec::ExecResult exec,
                       engine_->Execute(&plan, trace, query_span.id()));
  query_span.End();

  out.table = std::move(exec.table);
  out.metrics = exec.metrics;
  out.jobs = std::move(exec.jobs);
  out.plan = std::move(plan);
  return out;
}

Result<std::string> Session::ExplainAnalyze(const std::string& oql,
                                            const RunOptions& opts) {
  OPD_ASSIGN_OR_RETURN(RunResult run, Run(oql, opts));
  return run.ExplainAnalyze();
}

std::string RunResult::ExplainAnalyze(
    const exec::AnalyzeOptions& options) const {
  return exec::ExplainAnalyze(plan, jobs, metrics, options);
}

}  // namespace opd
