// opd::Session — the single entry point into the system.
//
// A Session owns the whole stack (simulated DFS, catalog, opportunistic view
// store, UDF registry, optimizer, MR engine, and the BFREWRITE rewriter) and
// wires it together, so embedders no longer assemble the pieces by hand.
// `Session::Run` takes an OQL program or a plan and returns the result table
// together with the run's metrics, the per-job observations, the rewrite
// outcome, and — when tracing is on — the query's span trace.

#ifndef OPD_SESSION_SESSION_H_
#define OPD_SESSION_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/view_store.h"
#include "common/status.h"
#include "exec/analyze.h"
#include "exec/engine.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "optimizer/accountability.h"
#include "optimizer/optimizer.h"
#include "plan/plan.h"
#include "rewrite/bf_rewrite.h"
#include "storage/dfs.h"
#include "udf/udf_registry.h"

namespace opd {

/// Observability knobs, session-wide.
struct ObsOptions {
  /// Record a span trace per Run (query -> rewrite/job -> phase -> task).
  bool tracing = false;
  /// Publish counters/gauges/histograms into obs::MetricRegistry::Global().
  bool metrics = true;
  /// Emit per-task spans inside traced phases (tracing only).
  bool trace_tasks = true;
};

/// Every knob of a session, grouped by subsystem. The nested structs are the
/// same ones the subsystems take directly (EngineOptions, RewriteOptions,
/// ...), so existing code keeps compiling; the session copies the obs
/// toggles into the engine options at creation.
struct SessionOptions {
  optimizer::CostParams cost;
  optimizer::OptimizerOptions optimizer;
  exec::EngineOptions engine;
  rewrite::RewriteOptions rewrite;
  ObsOptions obs;
};

/// Per-Run knobs.
struct RunOptions {
  /// Rewrite against the view store (BFREWRITE) before executing.
  bool rewrite = true;
};

/// What one Run produced.
struct RunResult {
  storage::TablePtr table;
  exec::ExecMetrics metrics;
  /// One record per executed MR job (matches `plan`'s nodes by identity).
  std::vector<exec::JobRun> jobs;
  /// The plan that was executed (the rewrite's best plan when rewriting).
  plan::Plan plan;
  /// Rewrite search outcome; meaningful when `rewritten`.
  rewrite::RewriteOutcome rewrite;
  bool rewritten = false;
  /// The query's span trace; non-null iff ObsOptions::tracing.
  std::shared_ptr<obs::Trace> trace;
  /// What this run contributed to the global MetricRegistry (snapshot diff
  /// across the run); empty when ObsOptions::metrics is off.
  obs::MetricsSnapshot metrics_delta;
  /// Cost-model calibration state after this run (per-operator-class EWMA
  /// residuals from the session's CostAccountant).
  std::vector<optimizer::CostAccountant::ClassDrift> cost_drifts;

  /// Renders the EXPLAIN ANALYZE tree of this run.
  std::string ExplainAnalyze(const exec::AnalyzeOptions& options = {}) const;

  /// One machine-readable export of everything observed in this run: exec
  /// metrics, per-job predicted_cost_s/observed_proxy_cost_s/residual_pct,
  /// rewrite decision counts, cost-model drift, and the registry delta.
  std::string MetricsJson() const;
  /// The run's registry delta in Prometheus text exposition.
  std::string MetricsPrometheus() const;
};

/// Renders the EXPLAIN REWRITE report (header + decision log) of a rewrite
/// outcome. `views_in_store` is the store size the search ran against.
std::string RenderExplainRewrite(const rewrite::RewriteOutcome& outcome,
                                 size_t views_in_store);

/// \brief A fully-wired system instance behind one coherent API.
class Session {
 public:
  static Result<std::unique_ptr<Session>> Create(SessionOptions options = {});

  /// Registers `table` as a base relation keyed on `key_columns` (writes its
  /// data to the session DFS and computes exact statistics).
  Status RegisterTable(const storage::TablePtr& table,
                       const std::vector<std::string>& key_columns);

  /// Parses and runs an OQL program.
  Result<RunResult> Run(const std::string& oql, const RunOptions& opts = {});
  /// Runs a plan (prepared in place).
  Result<RunResult> Run(plan::Plan plan, const RunOptions& opts = {});

  /// Runs `oql` and renders the observed per-job stats as a tree.
  Result<std::string> ExplainAnalyze(const std::string& oql,
                                     const RunOptions& opts = {});

  /// Rewrites `oql` against the current view store WITHOUT executing it (no
  /// views are credited, nothing materializes). The outcome carries the
  /// search's DecisionLog. Deterministic: independent of engine options and
  /// thread counts.
  Result<rewrite::RewriteOutcome> Rewrite(const std::string& oql);

  /// EXPLAIN REWRITE: Rewrite() rendered as the decision-log report.
  Result<std::string> ExplainRewrite(const std::string& oql);

  storage::Dfs& dfs() { return *dfs_; }
  catalog::Catalog& catalog() { return *catalog_; }
  catalog::ViewStore& views() { return *views_; }
  udf::UdfRegistry& udfs() { return *udfs_; }
  const optimizer::Optimizer& optimizer() const { return *optimizer_; }
  exec::Engine& engine() { return *engine_; }
  const rewrite::BfRewriter& rewriter() const { return *bfr_; }
  /// Cost-model accountability state (per-class residual EWMAs).
  const optimizer::CostAccountant& accountant() const { return *accountant_; }
  const SessionOptions& options() const { return options_; }

 private:
  Session() = default;

  SessionOptions options_;
  std::unique_ptr<storage::Dfs> dfs_;
  std::unique_ptr<catalog::Catalog> catalog_;
  std::unique_ptr<catalog::ViewStore> views_;
  std::unique_ptr<udf::UdfRegistry> udfs_;
  std::unique_ptr<optimizer::Optimizer> optimizer_;
  std::unique_ptr<optimizer::CostAccountant> accountant_;
  std::unique_ptr<exec::Engine> engine_;
  std::unique_ptr<rewrite::BfRewriter> bfr_;
};

}  // namespace opd

#endif  // OPD_SESSION_SESSION_H_
