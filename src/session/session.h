// opd::Session — the single-tenant entry point into the system.
//
// Since the serving-layer redesign (DESIGN.md §3) the full stack (simulated
// DFS, catalog, opportunistic view store, UDF registry, optimizer, MR
// engine, BFREWRITE rewriter, admission control) is owned by opd::Server;
// a Session is a thin wrapper holding a private Server plus one connected
// ClientSession for the "default" tenant, so single-tenant embedders keep
// the familiar surface while multi-tenant embedders call Server::Connect
// directly.
//
// `Session::Run` takes an OQL program or a plan and returns the result
// table together with the run's metrics, the per-job observations, the
// rewrite outcome, and — when tracing is on — the query's span trace.

#ifndef OPD_SESSION_SESSION_H_
#define OPD_SESSION_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/view_store.h"
#include "common/status.h"
#include "exec/analyze.h"
#include "exec/engine.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "optimizer/accountability.h"
#include "optimizer/optimizer.h"
#include "plan/plan.h"
#include "rewrite/bf_rewrite.h"
#include "storage/dfs.h"
#include "udf/udf_registry.h"

namespace opd {

class Server;
class ClientSession;

/// Observability knobs, session-wide.
struct ObsOptions {
  /// Record a span trace per Run (query -> rewrite/job -> phase -> task).
  bool tracing = false;
  /// Publish counters/gauges/histograms into obs::MetricRegistry::Global().
  bool metrics = true;
  /// Emit per-task spans inside traced phases (tracing only).
  bool trace_tasks = true;
};

/// Serving-layer knobs (admission control and scheduling of concurrent
/// tenant queries; see src/server/).
struct ServerOptions {
  /// Queries executing at once; further admissions queue. Minimum 1.
  int max_concurrent_queries = 4;
  /// Maximum queries one tenant may have running at once (0 = no quota).
  int per_tenant_quota = 0;
  /// Pick the next admission round-robin across waiting tenants (the
  /// tenant with the fewest running queries goes first, FIFO tie-break)
  /// instead of strict global FIFO.
  bool fair_scheduling = true;
  /// Byte budget of the shared hash-table recycler (HashStash-style reuse
  /// of built join/group-by tables across queries and tenants; see
  /// src/exec/hash/recycler.h). 0 = unbounded. The engine-side switch is
  /// EngineOptions::recycle_hash.
  uint64_t recycle_budget_bytes = 64ull << 20;

  // --- continuous observability (obs::QueryLog; DESIGN.md §3) ----------
  /// Completed-query records retained in the server's history ring
  /// (newest-wins overwrite). 0 disables the query log entirely — no
  /// records, no SLO gauges, no slow capture.
  size_t query_log_capacity = 1024;
  /// When nonempty, every QueryRecord is also appended to this file as one
  /// JSON line (the durable query-history sink).
  std::string query_log_path;
  /// Queries whose end-to-end wall time reaches this threshold get their
  /// full trace + decision log + EXPLAIN ANALYZE tree captured. Negative
  /// disables slow-query capture; 0.0 captures everything.
  double slow_query_threshold_s = -1.0;
  /// Byte budget for retained slow-query profiles (oldest-first eviction).
  size_t slow_query_capture_bytes = 4u << 20;
};

/// Every knob of a session/server, grouped by subsystem. The nested structs
/// are the same ones the subsystems take directly (EngineOptions,
/// RewriteOptions, ...), so existing code keeps compiling.
struct SessionOptions {
  optimizer::CostParams cost;
  optimizer::OptimizerOptions optimizer;
  exec::EngineOptions engine;
  rewrite::RewriteOptions rewrite;
  ObsOptions obs;
  ServerOptions server;

  /// The session-level obs toggles are the single source of truth; Resolve
  /// mirrors them into the engine's own knobs. Server::Create and
  /// Session::Create both construct from Resolve() so the two entry points
  /// cannot drift.
  SessionOptions Resolve() const {
    SessionOptions r = *this;
    r.engine.metrics = r.obs.metrics;
    r.engine.trace_tasks = r.obs.trace_tasks;
    return r;
  }
};

/// Per-Run admission knobs (serving layer).
struct AdmissionOptions {
  /// Fail with OutOfRange instead of queueing when no slot is free.
  bool fail_fast = false;
  /// Pin the view-visibility epoch: when >= 0 the query rewrites against
  /// ViewStore::SnapshotAt(pin_epoch) instead of the store's epoch at
  /// admission. This is the serial-replay hook — re-running a recorded
  /// workload with each query's original admission epoch pinned reproduces
  /// its rewrite decisions exactly.
  int64_t pin_epoch = -1;
};

/// Per-Run knobs.
struct RunOptions {
  /// Rewrite against the view store (BFREWRITE) before executing.
  bool rewrite = true;
  /// Tenant override; empty means the handle's tenant (ClientSession) or
  /// "default" (Session).
  std::string tenant;
  AdmissionOptions admission;
};

/// One materialized view the executed plan scanned (from the rewrite's
/// admission-epoch snapshot).
struct ViewUse {
  catalog::ViewId id = -1;
  /// Epoch at which the view became visible; always <= the scanning
  /// query's admission_epoch (snapshot consistency).
  catalog::Epoch publish_epoch = 0;
  /// Tenant whose query materialized the view ("" pre-serving-layer).
  std::string tenant;
};

/// What one Run produced.
struct RunResult {
  storage::TablePtr table;
  exec::ExecMetrics metrics;
  /// One record per executed MR job (matches `plan`'s nodes by identity).
  std::vector<exec::JobRun> jobs;
  /// The plan that was executed (the rewrite's best plan when rewriting).
  plan::Plan plan;
  /// Rewrite search outcome; meaningful when `rewritten`.
  rewrite::RewriteOutcome rewrite;
  bool rewritten = false;
  /// The query's span trace; non-null iff ObsOptions::tracing.
  std::shared_ptr<obs::Trace> trace;
  /// What this run contributed to the global MetricRegistry (snapshot diff
  /// across the run); empty when ObsOptions::metrics is off. Under
  /// concurrent serving the global delta includes other tenants' traffic —
  /// use `tenant_delta` for isolation.
  obs::MetricsSnapshot metrics_delta;
  /// This run's contribution to its tenant's private registry scope
  /// (server.* counters only; exact even under concurrency).
  obs::MetricsSnapshot tenant_delta;
  /// Cost-model calibration state after this run (per-operator-class EWMA
  /// residuals from the session's CostAccountant).
  std::vector<optimizer::CostAccountant::ClassDrift> cost_drifts;

  // --- serving-layer observations -------------------------------------
  /// Tenant the query ran as.
  std::string tenant;
  /// View-store epoch the query was admitted at: the rewrite saw exactly
  /// the views published at epochs <= admission_epoch.
  catalog::Epoch admission_epoch = 0;
  /// Epoch assigned when this run's views published (one bump per query).
  catalog::Epoch publish_epoch = 0;
  /// Admission order: the ticket's position in the server's admit sequence
  /// (1-based; 0 outside a Server).
  uint64_t admission_ticket = 0;
  /// Time spent queued before admission.
  double queue_wait_s = 0;
  /// Views the executed plan scanned (empty when not rewritten).
  std::vector<ViewUse> views_used;

  /// Renders the EXPLAIN ANALYZE tree of this run.
  std::string ExplainAnalyze(const exec::AnalyzeOptions& options = {}) const;

  /// One machine-readable export of everything observed in this run: exec
  /// metrics, per-job predicted_cost_s/observed_proxy_cost_s/residual_pct,
  /// rewrite decision counts, cost-model drift, and the registry delta.
  std::string MetricsJson() const;
  /// The run's registry delta in Prometheus text exposition.
  std::string MetricsPrometheus() const;
};

/// Renders the EXPLAIN REWRITE report (header + decision log) of a rewrite
/// outcome. `views_in_store` is the store size the search ran against.
std::string RenderExplainRewrite(const rewrite::RewriteOutcome& outcome,
                                 size_t views_in_store);

/// \brief Single-tenant facade over a private Server.
///
/// Owns the Server; every call is delegated as tenant "default". Use
/// `server()` (or Server::Create directly) for multi-tenant serving.
class Session {
 public:
  static Result<std::unique_ptr<Session>> Create(SessionOptions options = {});
  ~Session();

  /// Registers `table` as a base relation keyed on `key_columns` (writes its
  /// data to the session DFS and computes exact statistics).
  Status RegisterTable(const storage::TablePtr& table,
                       const std::vector<std::string>& key_columns);

  /// Parses and runs an OQL program.
  Result<RunResult> Run(const std::string& oql, const RunOptions& opts = {});
  /// Runs a plan (prepared in place).
  Result<RunResult> Run(plan::Plan plan, const RunOptions& opts = {});

  /// Runs `oql` and renders the observed per-job stats as a tree.
  Result<std::string> ExplainAnalyze(const std::string& oql,
                                     const RunOptions& opts = {});

  /// Rewrites `oql` against the current view store WITHOUT executing it (no
  /// views are credited, nothing materializes). The outcome carries the
  /// search's DecisionLog. Deterministic: independent of engine options and
  /// thread counts.
  Result<rewrite::RewriteOutcome> Rewrite(const std::string& oql);

  /// EXPLAIN REWRITE: Rewrite() rendered as the decision-log report.
  Result<std::string> ExplainRewrite(const std::string& oql);

  /// The underlying server (for Connect-ing further tenants).
  Server& server();
  storage::Dfs& dfs();
  catalog::Catalog& catalog();
  catalog::ViewStore& views();
  udf::UdfRegistry& udfs();
  const optimizer::Optimizer& optimizer() const;
  exec::Engine& engine();
  const rewrite::BfRewriter& rewriter() const;
  /// Cost-model accountability state (per-class residual EWMAs).
  const optimizer::CostAccountant& accountant() const;
  const SessionOptions& options() const;

 private:
  Session() = default;

  std::unique_ptr<Server> server_;
  std::unique_ptr<ClientSession> client_;
};

}  // namespace opd

#endif  // OPD_SESSION_SESSION_H_
