// Registry of UDF definitions and opaque predicate functions.

#ifndef OPD_UDF_UDF_REGISTRY_H_
#define OPD_UDF_UDF_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "udf/udf.h"

namespace opd::udf {

/// An executable boolean predicate over attribute values (the "arbitrary user
/// code" filter of operation type 2).
using PredicateFn =
    std::function<bool(const std::vector<storage::Value>&, const Params&)>;

/// \brief Holds every UDF and opaque predicate known to the system.
///
/// The rewriter additionally keeps a *subset* of UDF names registered as
/// rewrite operators (Section 5); that subset lives in RewriteOptions, not
/// here.
class UdfRegistry {
 public:
  /// Registers a UDF; fails if the name exists.
  Status Register(UdfDefinition udf);

  /// Looks up a UDF by name.
  Result<const UdfDefinition*> Find(const std::string& name) const;

  /// Mutable lookup (used by calibration to set cost scalars).
  Result<UdfDefinition*> FindMutable(const std::string& name);

  bool Has(const std::string& name) const { return udfs_.count(name) > 0; }
  std::vector<std::string> Names() const;
  size_t size() const { return udfs_.size(); }

  /// Registers an opaque predicate function.
  Status RegisterPredicate(const std::string& name, PredicateFn fn);
  Result<const PredicateFn*> FindPredicate(const std::string& name) const;

 private:
  std::map<std::string, UdfDefinition> udfs_;
  std::map<std::string, PredicateFn> predicates_;
};

}  // namespace opd::udf

#endif  // OPD_UDF_UDF_REGISTRY_H_
