// Local functions: the map/reduce building blocks of a UDF (Section 3.1).
//
// The MR framework makes map/reduce functions stateless over a single tuple
// (map) or a single key-group (reduce); the paper calls these *local
// functions*. A local function performs some combination of the three
// operation types:
//   (1) discard/add attributes, (2) discard tuples by filters,
//   (3) group tuples on a common key.

#ifndef OPD_UDF_LOCAL_FUNCTION_H_
#define OPD_UDF_LOCAL_FUNCTION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace opd::udf {

/// UDF invocation parameters (e.g. thresholds, tile sizes).
using Params = std::map<std::string, storage::Value>;

/// Looks up a numeric parameter with a default.
double ParamDouble(const Params& params, const std::string& key,
                   double default_value);

/// Looks up a string parameter with a default.
std::string ParamString(const Params& params, const std::string& key,
                        const std::string& default_value);

/// Whether a local function runs as a map task or a reduce task.
enum class LfKind { kMap, kReduce };

/// Bitmask of the three operation types a local function performs.
enum OpTypeBits : uint8_t {
  kOpAttrs = 1 << 0,   // type 1: discard or add attributes
  kOpFilter = 1 << 1,  // type 2: discard tuples by filters
  kOpGroup = 1 << 2,   // type 3: group tuples on a common key
};

/// Runtime context handed to a local function.
struct LfContext {
  const storage::Schema* in_schema = nullptr;
  const storage::Schema* out_schema = nullptr;
  const Params* params = nullptr;

  /// Index of `name` in the input schema; asserts on absence at runtime via
  /// Status in the engine (local functions may assume validated schemas).
  size_t In(const std::string& name) const {
    return *in_schema->IndexOf(name);
  }
};

/// Per-tuple transform: may emit 0..n output rows.
using MapFn = std::function<void(const storage::Row&, const LfContext&,
                                 std::vector<storage::Row>*)>;

/// Per-group transform: receives all rows of one key group.
using ReduceFn = std::function<void(const std::vector<storage::Row>&,
                                    const LfContext&,
                                    std::vector<storage::Row>*)>;

/// Computes the local function's output schema from its input schema.
using SchemaFn =
    std::function<Result<storage::Schema>(const storage::Schema&,
                                          const Params&)>;

/// \brief One map or reduce stage inside a UDF.
struct LocalFunction {
  std::string name;
  LfKind kind = LfKind::kMap;
  uint8_t op_types = 0;  // OpTypeBits mask; used by the cheapest-op bound
  /// Reduce only: the input columns forming the grouping key.
  std::vector<std::string> group_keys;
  SchemaFn out_schema;
  MapFn map_fn;        // set when kind == kMap
  ReduceFn reduce_fn;  // set when kind == kReduce
};

}  // namespace opd::udf

#endif  // OPD_UDF_LOCAL_FUNCTION_H_
