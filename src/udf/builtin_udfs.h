// The workload UDF library (Section 8.2): sentiment classifiers, tokenizer,
// lat/lon extractor, word count, menu similarity, geographic tiling, log
// parser, friendship strength, network influence.
//
// Each UDF is a composition of local functions performing genuine work
// (tokenizing, scoring, parsing) plus its gray-box model annotation. UDFs are
// referenced from plans by name via the UdfRegistry.

#ifndef OPD_UDF_BUILTIN_UDFS_H_
#define OPD_UDF_BUILTIN_UDFS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "udf/udf_registry.h"

namespace opd::udf {

// --- Text analytics helpers (exposed for tests) ---------------------------

/// Sums lexicon weights of the words in `text`. Lexicon names: "wine",
/// "food", "luxury". Unknown lexicons score 0.
double LexiconScore(std::string_view text, const std::string& lexicon);

/// Jaccard similarity of the word sets of two texts, in [0, 1].
double JaccardSimilarity(std::string_view a, std::string_view b);

/// Grid cell id for (lat, lon) with cells of `tile_size` degrees.
int64_t GeoTileId(double lat, double lon, double tile_size);

/// Parses "lat,lon"; returns false on malformed input.
bool ParseLatLon(std::string_view geo, double* lat, double* lon);

/// Parses "lang=xx;dev=yyy" metadata; missing fields become "unknown".
void ParseLogMeta(std::string_view meta, std::string* lang,
                  std::string* device);

// --- UDF factories ---------------------------------------------------------
// Parameter keys are documented per UDF; thresholds are *filter* parameters
// (they do not enter attribute signatures), so re-running with a different
// threshold can still reuse an earlier view.

/// UDF_CLASSIFY_WINE_SCORE(user_id, tweet_text; threshold):
/// per-user summed wine sentiment `wine_score`, filtered > threshold,
/// regrouped on user_id. Two local functions (map scorer, reduce summer).
UdfDefinition MakeClassifyWineScoreUdf();

/// UDF_CLASSIFY_FOOD_SCORE(user_id, tweet_text; threshold): the paper's
/// UDF_FOODIES — per-user summed food sentiment `sent_sum` > threshold.
UdfDefinition MakeClassifyFoodScoreUdf();

/// UDAF_CLASSIFY_AFFLUENT(user_id, tweet_text; min_affluence): per-user mean
/// luxury-lexicon signal `affluence` > min_affluence.
UdfDefinition MakeClassifyAffluentUdf();

/// UDF_FRIENDSHIP_STRENGTH(user_id, mention_user; min_strength): normalized
/// communicating pairs (user_a, user_b) with communication count `strength`
/// > min_strength, keyed on the pair.
UdfDefinition MakeFriendshipStrengthUdf();

/// UDF_NETWORK_INFLUENCE(user_a, user_b, strength; min_influence): per-user
/// summed incident strength (`inf_user`, `influence`) > min_influence.
UdfDefinition MakeNetworkInfluenceUdf();

/// UDF_EXTRACT_LATLON(geo): parses `geo` into `lat`, `lon`, dropping rows
/// with malformed coordinates (opaque filter "valid_geo").
UdfDefinition MakeExtractLatLonUdf();

/// UDF_GEO_TILE(lat, lon; tile_size): adds `tile_id`. tile_size is a
/// value-affecting parameter (part of tile_id's signature).
UdfDefinition MakeGeoTileUdf();

/// UDF_TOKENIZE(user_id, tweet_text): explodes tweets into (user_id, token)
/// rows; expansion > 1.
UdfDefinition MakeTokenizeUdf();

/// UDF_WORD_COUNT(token; min_count): (word, wcount) keyed on word with
/// wcount > min_count.
UdfDefinition MakeWordCountUdf();

/// UDF_MENU_SIMILARITY(menu_text; ref_menu, min_sim): Jaccard similarity
/// `menu_sim` of each menu against the reference menu (value-affecting
/// param ref_menu), filtered > min_sim.
UdfDefinition MakeMenuSimilarityUdf();

/// UDF_PARSE_LOG(raw_meta): extracts `lang` and `device` from the raw log
/// metadata field.
UdfDefinition MakeParseLogUdf();

/// UDF_HASHTAG_TRENDS(user_id, tweet_text; min_users): a *three-stage* UDF
/// (map, reduce, map): extracts #hashtags, counts distinct users per tag,
/// then tiers tags into "hot"/"rising" and filters by min_users. The tier
/// boundary depends on min_users, so it is a value-affecting parameter of
/// `trend_tier` (but not of `tag`/`tag_users`).
UdfDefinition MakeHashtagTrendsUdf();

/// Registers all of the above plus the opaque predicates they rely on.
Status RegisterBuiltinUdfs(UdfRegistry* registry);

}  // namespace opd::udf

#endif  // OPD_UDF_BUILTIN_UDFS_H_
