#include "udf/local_function.h"

namespace opd::udf {

double ParamDouble(const Params& params, const std::string& key,
                   double default_value) {
  auto it = params.find(key);
  if (it == params.end()) return default_value;
  return it->second.ToDouble();
}

std::string ParamString(const Params& params, const std::string& key,
                        const std::string& default_value) {
  auto it = params.find(key);
  if (it == params.end()) return default_value;
  return it->second.ToString();
}

}  // namespace opd::udf
