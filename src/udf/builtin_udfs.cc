#include "udf/builtin_udfs.h"

#include <cmath>
#include <map>
#include <set>

#include "common/string_util.h"

namespace opd::udf {

using storage::Column;
using storage::DataType;
using storage::Row;
using storage::Schema;
using storage::Value;

namespace {

const std::map<std::string, double>& Lexicon(const std::string& name) {
  static const std::map<std::string, double> kWine = {
      {"wine", 0.30},    {"merlot", 0.35},   {"cabernet", 0.35},
      {"pinot", 0.30},   {"chardonnay", 0.30}, {"vineyard", 0.25},
      {"tannin", 0.20},  {"sommelier", 0.40}, {"rose", 0.15},
      {"riesling", 0.30}, {"corked", -0.20},  {"vinegar", -0.25},
  };
  static const std::map<std::string, double> kFood = {
      {"delicious", 0.35}, {"tasty", 0.30},  {"yummy", 0.30},
      {"brunch", 0.20},    {"foodie", 0.40}, {"pasta", 0.20},
      {"ramen", 0.25},     {"dessert", 0.25}, {"savory", 0.25},
      {"bland", -0.30},    {"stale", -0.35}, {"burnt", -0.25},
  };
  static const std::map<std::string, double> kLuxury = {
      {"yacht", 0.45},    {"penthouse", 0.40}, {"champagne", 0.35},
      {"caviar", 0.40},   {"firstclass", 0.35}, {"designer", 0.25},
      {"chauffeur", 0.35}, {"resort", 0.20},   {"golf", 0.15},
      {"thrift", -0.20},  {"coupon", -0.15},
  };
  static const std::map<std::string, double> kEmpty = {};
  if (name == "wine") return kWine;
  if (name == "food") return kFood;
  if (name == "luxury") return kLuxury;
  return kEmpty;
}

}  // namespace

double LexiconScore(std::string_view text, const std::string& lexicon) {
  const auto& lex = Lexicon(lexicon);
  double score = 0;
  for (const std::string& word : TokenizeWords(text)) {
    auto it = lex.find(word);
    if (it != lex.end()) score += it->second;
  }
  return score;
}

double JaccardSimilarity(std::string_view a, std::string_view b) {
  auto wa = TokenizeWords(a);
  auto wb = TokenizeWords(b);
  std::set<std::string> sa(wa.begin(), wa.end());
  std::set<std::string> sb(wb.begin(), wb.end());
  if (sa.empty() && sb.empty()) return 0.0;
  size_t inter = 0;
  for (const auto& w : sa) inter += sb.count(w);
  size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

int64_t GeoTileId(double lat, double lon, double tile_size) {
  if (tile_size <= 0) tile_size = 1.0;
  int64_t r = static_cast<int64_t>(std::floor((lat + 90.0) / tile_size));
  int64_t c = static_cast<int64_t>(std::floor((lon + 180.0) / tile_size));
  return r * 1000000 + c;
}

bool ParseLatLon(std::string_view geo, double* lat, double* lon) {
  size_t comma = geo.find(',');
  if (comma == std::string_view::npos) return false;
  try {
    *lat = std::stod(std::string(geo.substr(0, comma)));
    *lon = std::stod(std::string(geo.substr(comma + 1)));
  } catch (...) {
    return false;
  }
  return *lat >= -90.0 && *lat <= 90.0 && *lon >= -180.0 && *lon <= 180.0;
}

void ParseLogMeta(std::string_view meta, std::string* lang,
                  std::string* device) {
  *lang = "unknown";
  *device = "unknown";
  for (const std::string& field : SplitString(meta, ';')) {
    auto kv = SplitString(field, '=');
    if (kv.size() != 2) continue;
    if (kv[0] == "lang") *lang = kv[1];
    if (kv[0] == "dev") *device = kv[1];
  }
}

namespace {

Schema TwoColSchema(const std::string& a, DataType ta, const std::string& b,
                    DataType tb) {
  return Schema({Column{a, ta}, Column{b, tb}});
}

// A per-user "score tweets then aggregate then threshold" UDF: the shape of
// the paper's UDF_FOODIES (Figure 3). `mean` switches sum vs. mean reduce.
UdfDefinition MakeUserScoreUdf(const std::string& udf_name,
                               const std::string& lexicon,
                               const std::string& out_attr,
                               const std::string& threshold_key,
                               double default_threshold, bool mean) {
  UdfDefinition udf;
  udf.name = udf_name;
  udf.model.consumed = {"user_id", "tweet_text"};
  udf.model.kept = {"user_id"};
  udf.model.outputs = {
      {out_attr, DataType::kDouble, {"user_id", "tweet_text"}, {}}};
  udf.model.filters = {
      {out_attr, afk::CmpOp::kGt, threshold_key, default_threshold}};
  udf.model.rekey = std::vector<std::string>{"user_id"};
  udf.model.rekey_groups = true;
  udf.model.expansion_hint = 0.05;

  LocalFunction lf1;
  lf1.name = udf_name + "-lf1-score";
  lf1.kind = LfKind::kMap;
  lf1.op_types = kOpAttrs;
  lf1.out_schema = [](const Schema& in, const Params&) -> Result<Schema> {
    auto uid = in.IndexOf("user_id");
    auto txt = in.IndexOf("tweet_text");
    if (!uid || !txt) {
      return Status::InvalidArgument("scorer needs user_id, tweet_text");
    }
    return TwoColSchema("user_id", DataType::kInt64, "_score",
                        DataType::kDouble);
  };
  lf1.map_fn = [lexicon](const Row& row, const LfContext& ctx,
                         std::vector<Row>* out) {
    const Value& uid = row[ctx.In("user_id")];
    const Value& text = row[ctx.In("tweet_text")];
    double s = text.is_null() ? 0.0 : LexiconScore(text.as_string(), lexicon);
    out->push_back(Row{uid, Value(s)});
  };
  udf.local_functions.push_back(std::move(lf1));

  LocalFunction lf2;
  lf2.name = udf_name + "-lf2-aggregate";
  lf2.kind = LfKind::kReduce;
  lf2.op_types = kOpGroup | kOpAttrs | kOpFilter;
  lf2.group_keys = {"user_id"};
  lf2.out_schema = [out_attr](const Schema&, const Params&) -> Result<Schema> {
    return TwoColSchema("user_id", DataType::kInt64, out_attr,
                        DataType::kDouble);
  };
  lf2.reduce_fn = [threshold_key, default_threshold, mean](
                      const std::vector<Row>& group, const LfContext& ctx,
                      std::vector<Row>* out) {
    double sum = 0;
    for (const Row& r : group) sum += r[ctx.In("_score")].ToDouble();
    double score = mean && !group.empty()
                       ? sum / static_cast<double>(group.size())
                       : sum;
    double threshold =
        ParamDouble(*ctx.params, threshold_key, default_threshold);
    if (score > threshold) {
      out->push_back(Row{group.front()[ctx.In("user_id")], Value(score)});
    }
  };
  udf.local_functions.push_back(std::move(lf2));
  return udf;
}

}  // namespace

UdfDefinition MakeClassifyWineScoreUdf() {
  return MakeUserScoreUdf("UDF_CLASSIFY_WINE_SCORE", "wine", "wine_score",
                          "threshold", 0.5, /*mean=*/false);
}

UdfDefinition MakeClassifyFoodScoreUdf() {
  return MakeUserScoreUdf("UDF_CLASSIFY_FOOD_SCORE", "food", "sent_sum",
                          "threshold", 0.5, /*mean=*/false);
}

UdfDefinition MakeClassifyAffluentUdf() {
  return MakeUserScoreUdf("UDAF_CLASSIFY_AFFLUENT", "luxury", "affluence",
                          "min_affluence", 0.05, /*mean=*/true);
}

UdfDefinition MakeFriendshipStrengthUdf() {
  UdfDefinition udf;
  udf.name = "UDF_FRIENDSHIP_STRENGTH";
  udf.model.consumed = {"user_id", "mention_user"};
  udf.model.kept = {};
  udf.model.outputs = {
      {"user_a", DataType::kInt64, {"user_id", "mention_user"}, {}},
      {"user_b", DataType::kInt64, {"user_id", "mention_user"}, {}},
      {"strength", DataType::kDouble, {"user_id", "mention_user"}, {}},
  };
  udf.model.filters = {{"strength", afk::CmpOp::kGt, "min_strength", 1.0}};
  udf.model.rekey = std::vector<std::string>{"user_a", "user_b"};
  udf.model.expansion_hint = 0.02;

  LocalFunction lf1;
  lf1.name = "friendship-lf1-pairs";
  lf1.kind = LfKind::kMap;
  lf1.op_types = kOpAttrs | kOpFilter;
  lf1.out_schema = [](const Schema& in, const Params&) -> Result<Schema> {
    if (!in.Has("user_id") || !in.Has("mention_user")) {
      return Status::InvalidArgument(
          "friendship needs user_id and mention_user");
    }
    return Schema({Column{"user_a", DataType::kInt64},
                   Column{"user_b", DataType::kInt64}});
  };
  lf1.map_fn = [](const Row& row, const LfContext& ctx,
                  std::vector<Row>* out) {
    const Value& u = row[ctx.In("user_id")];
    const Value& m = row[ctx.In("mention_user")];
    if (u.is_null() || m.is_null()) return;
    int64_t a = u.as_int64(), b = m.as_int64();
    if (b < 0 || a == b) return;  // no mention / self mention
    out->push_back(Row{Value(std::min(a, b)), Value(std::max(a, b))});
  };
  udf.local_functions.push_back(std::move(lf1));

  LocalFunction lf2;
  lf2.name = "friendship-lf2-strength";
  lf2.kind = LfKind::kReduce;
  lf2.op_types = kOpGroup | kOpAttrs | kOpFilter;
  lf2.group_keys = {"user_a", "user_b"};
  lf2.out_schema = [](const Schema&, const Params&) -> Result<Schema> {
    return Schema({Column{"user_a", DataType::kInt64},
                   Column{"user_b", DataType::kInt64},
                   Column{"strength", DataType::kDouble}});
  };
  lf2.reduce_fn = [](const std::vector<Row>& group, const LfContext& ctx,
                     std::vector<Row>* out) {
    double strength = static_cast<double>(group.size());
    double min_strength = ParamDouble(*ctx.params, "min_strength", 1.0);
    if (strength > min_strength) {
      out->push_back(Row{group.front()[ctx.In("user_a")],
                         group.front()[ctx.In("user_b")], Value(strength)});
    }
  };
  udf.local_functions.push_back(std::move(lf2));
  return udf;
}

UdfDefinition MakeNetworkInfluenceUdf() {
  UdfDefinition udf;
  udf.name = "UDF_NETWORK_INFLUENCE";
  udf.model.consumed = {"user_a", "user_b", "strength"};
  udf.model.kept = {};
  udf.model.outputs = {
      {"inf_user", DataType::kInt64, {"user_a", "user_b"}, {}},
      {"influence", DataType::kDouble, {"user_a", "user_b", "strength"}, {}},
  };
  udf.model.filters = {{"influence", afk::CmpOp::kGt, "min_influence", 0.0}};
  udf.model.rekey = std::vector<std::string>{"inf_user"};
  udf.model.expansion_hint = 0.8;

  LocalFunction lf1;
  lf1.name = "influence-lf1-emit";
  lf1.kind = LfKind::kMap;
  lf1.op_types = kOpAttrs;
  lf1.out_schema = [](const Schema& in, const Params&) -> Result<Schema> {
    if (!in.Has("user_a") || !in.Has("user_b") || !in.Has("strength")) {
      return Status::InvalidArgument(
          "influence needs user_a, user_b, strength");
    }
    return TwoColSchema("inf_user", DataType::kInt64, "_s", DataType::kDouble);
  };
  lf1.map_fn = [](const Row& row, const LfContext& ctx,
                  std::vector<Row>* out) {
    const Value& s = row[ctx.In("strength")];
    out->push_back(Row{row[ctx.In("user_a")], s});
    out->push_back(Row{row[ctx.In("user_b")], s});
  };
  udf.local_functions.push_back(std::move(lf1));

  LocalFunction lf2;
  lf2.name = "influence-lf2-sum";
  lf2.kind = LfKind::kReduce;
  lf2.op_types = kOpGroup | kOpAttrs | kOpFilter;
  lf2.group_keys = {"inf_user"};
  lf2.out_schema = [](const Schema&, const Params&) -> Result<Schema> {
    return TwoColSchema("inf_user", DataType::kInt64, "influence",
                        DataType::kDouble);
  };
  lf2.reduce_fn = [](const std::vector<Row>& group, const LfContext& ctx,
                     std::vector<Row>* out) {
    double sum = 0;
    for (const Row& r : group) sum += r[ctx.In("_s")].ToDouble();
    if (sum > ParamDouble(*ctx.params, "min_influence", 0.0)) {
      out->push_back(Row{group.front()[ctx.In("inf_user")], Value(sum)});
    }
  };
  udf.local_functions.push_back(std::move(lf2));
  return udf;
}

UdfDefinition MakeExtractLatLonUdf() {
  UdfDefinition udf;
  udf.name = "UDF_EXTRACT_LATLON";
  udf.model.consumed = {"geo"};
  udf.model.kept = {"*"};
  udf.model.outputs = {
      {"lat", DataType::kDouble, {"geo"}, {}},
      {"lon", DataType::kDouble, {"geo"}, {}},
  };
  UdfFilterSpec valid;
  valid.attr = "geo";
  valid.opaque = true;
  valid.opaque_fn = "valid_geo";
  udf.model.filters = {valid};
  udf.model.expansion_hint = 0.6;

  LocalFunction lf1;
  lf1.name = "latlon-lf1-parse";
  lf1.kind = LfKind::kMap;
  lf1.op_types = kOpAttrs | kOpFilter;
  lf1.out_schema = [](const Schema& in, const Params&) -> Result<Schema> {
    if (!in.Has("geo")) return Status::InvalidArgument("needs geo");
    Schema out = in;
    OPD_RETURN_NOT_OK(out.AddColumn(Column{"lat", DataType::kDouble}));
    OPD_RETURN_NOT_OK(out.AddColumn(Column{"lon", DataType::kDouble}));
    return out;
  };
  lf1.map_fn = [](const Row& row, const LfContext& ctx,
                  std::vector<Row>* out) {
    const Value& geo = row[ctx.In("geo")];
    double lat, lon;
    if (geo.is_null() || !ParseLatLon(geo.as_string(), &lat, &lon)) return;
    Row r = row;
    r.push_back(Value(lat));
    r.push_back(Value(lon));
    out->push_back(std::move(r));
  };
  udf.local_functions.push_back(std::move(lf1));
  return udf;
}

UdfDefinition MakeGeoTileUdf() {
  UdfDefinition udf;
  udf.name = "UDF_GEO_TILE";
  udf.model.consumed = {"lat", "lon"};
  udf.model.kept = {"*"};
  udf.model.outputs = {
      {"tile_id", DataType::kInt64, {"lat", "lon"}, {"tile_size"}}};
  udf.model.expansion_hint = 1.0;

  LocalFunction lf1;
  lf1.name = "geotile-lf1";
  lf1.kind = LfKind::kMap;
  lf1.op_types = kOpAttrs;
  lf1.out_schema = [](const Schema& in, const Params&) -> Result<Schema> {
    if (!in.Has("lat") || !in.Has("lon")) {
      return Status::InvalidArgument("needs lat, lon");
    }
    Schema out = in;
    OPD_RETURN_NOT_OK(out.AddColumn(Column{"tile_id", DataType::kInt64}));
    return out;
  };
  lf1.map_fn = [](const Row& row, const LfContext& ctx,
                  std::vector<Row>* out) {
    double ts = ParamDouble(*ctx.params, "tile_size", 1.0);
    Row r = row;
    r.push_back(Value(GeoTileId(row[ctx.In("lat")].ToDouble(),
                                row[ctx.In("lon")].ToDouble(), ts)));
    out->push_back(std::move(r));
  };
  udf.local_functions.push_back(std::move(lf1));
  return udf;
}

UdfDefinition MakeTokenizeUdf() {
  UdfDefinition udf;
  udf.name = "UDF_TOKENIZE";
  udf.model.consumed = {"user_id", "tweet_text"};
  udf.model.kept = {"user_id"};
  udf.model.outputs = {{"token", DataType::kString, {"tweet_text"}, {}}};
  // One-to-many explosion: the output rows are no longer keyed by the
  // input's key (each tweet yields many token rows), so the model must
  // clear K. Without this, COUNT-per-user over tokens would be
  // indistinguishable from COUNT-per-user over tweets.
  udf.model.rekey = std::vector<std::string>{};
  udf.model.rekey_groups = false;
  udf.model.expansion_hint = 8.0;

  LocalFunction lf1;
  lf1.name = "tokenize-lf1";
  lf1.kind = LfKind::kMap;
  lf1.op_types = kOpAttrs;
  lf1.out_schema = [](const Schema& in, const Params&) -> Result<Schema> {
    if (!in.Has("user_id") || !in.Has("tweet_text")) {
      return Status::InvalidArgument("needs user_id, tweet_text");
    }
    return TwoColSchema("user_id", DataType::kInt64, "token",
                        DataType::kString);
  };
  lf1.map_fn = [](const Row& row, const LfContext& ctx,
                  std::vector<Row>* out) {
    const Value& text = row[ctx.In("tweet_text")];
    if (text.is_null()) return;
    const Value& uid = row[ctx.In("user_id")];
    for (std::string& tok : TokenizeWords(text.as_string())) {
      out->push_back(Row{uid, Value(std::move(tok))});
    }
  };
  udf.local_functions.push_back(std::move(lf1));
  return udf;
}

UdfDefinition MakeWordCountUdf() {
  UdfDefinition udf;
  udf.name = "UDF_WORD_COUNT";
  udf.model.consumed = {"token"};
  udf.model.kept = {};
  udf.model.outputs = {
      {"word", DataType::kString, {"token"}, {}},
      {"wcount", DataType::kInt64, {"token"}, {}},
  };
  udf.model.filters = {{"wcount", afk::CmpOp::kGt, "min_count", 0.0}};
  udf.model.rekey = std::vector<std::string>{"word"};
  udf.model.expansion_hint = 0.01;

  LocalFunction lf1;
  lf1.name = "wordcount-lf1-emit";
  lf1.kind = LfKind::kMap;
  lf1.op_types = kOpAttrs;
  lf1.out_schema = [](const Schema& in, const Params&) -> Result<Schema> {
    if (!in.Has("token")) return Status::InvalidArgument("needs token");
    return TwoColSchema("word", DataType::kString, "_one", DataType::kInt64);
  };
  lf1.map_fn = [](const Row& row, const LfContext& ctx,
                  std::vector<Row>* out) {
    out->push_back(Row{row[ctx.In("token")], Value(int64_t{1})});
  };
  udf.local_functions.push_back(std::move(lf1));

  LocalFunction lf2;
  lf2.name = "wordcount-lf2-count";
  lf2.kind = LfKind::kReduce;
  lf2.op_types = kOpGroup | kOpAttrs | kOpFilter;
  lf2.group_keys = {"word"};
  lf2.out_schema = [](const Schema&, const Params&) -> Result<Schema> {
    return TwoColSchema("word", DataType::kString, "wcount", DataType::kInt64);
  };
  lf2.reduce_fn = [](const std::vector<Row>& group, const LfContext& ctx,
                     std::vector<Row>* out) {
    auto count = static_cast<int64_t>(group.size());
    if (static_cast<double>(count) >
        ParamDouble(*ctx.params, "min_count", 0.0)) {
      out->push_back(Row{group.front()[ctx.In("word")], Value(count)});
    }
  };
  udf.local_functions.push_back(std::move(lf2));
  return udf;
}

UdfDefinition MakeMenuSimilarityUdf() {
  UdfDefinition udf;
  udf.name = "UDF_MENU_SIMILARITY";
  udf.model.consumed = {"menu_text"};
  udf.model.kept = {"*"};
  udf.model.outputs = {
      {"menu_sim", DataType::kDouble, {"menu_text"}, {"ref_menu"}}};
  udf.model.filters = {{"menu_sim", afk::CmpOp::kGt, "min_sim", 0.1}};
  udf.model.expansion_hint = 0.3;

  LocalFunction lf1;
  lf1.name = "menusim-lf1";
  lf1.kind = LfKind::kMap;
  lf1.op_types = kOpAttrs | kOpFilter;
  lf1.out_schema = [](const Schema& in, const Params&) -> Result<Schema> {
    if (!in.Has("menu_text")) {
      return Status::InvalidArgument("needs menu_text");
    }
    Schema out = in;
    OPD_RETURN_NOT_OK(out.AddColumn(Column{"menu_sim", DataType::kDouble}));
    return out;
  };
  lf1.map_fn = [](const Row& row, const LfContext& ctx,
                  std::vector<Row>* out) {
    const Value& menu = row[ctx.In("menu_text")];
    std::string ref = ParamString(*ctx.params, "ref_menu", "");
    double sim =
        menu.is_null() ? 0.0 : JaccardSimilarity(menu.as_string(), ref);
    if (sim > ParamDouble(*ctx.params, "min_sim", 0.1)) {
      Row r = row;
      r.push_back(Value(sim));
      out->push_back(std::move(r));
    }
  };
  udf.local_functions.push_back(std::move(lf1));
  return udf;
}

UdfDefinition MakeParseLogUdf() {
  UdfDefinition udf;
  udf.name = "UDF_PARSE_LOG";
  udf.model.consumed = {"raw_meta"};
  udf.model.kept = {"*"};
  udf.model.outputs = {
      {"lang", DataType::kString, {"raw_meta"}, {}},
      {"device", DataType::kString, {"raw_meta"}, {}},
  };
  udf.model.expansion_hint = 1.0;

  LocalFunction lf1;
  lf1.name = "parselog-lf1";
  lf1.kind = LfKind::kMap;
  lf1.op_types = kOpAttrs;
  lf1.out_schema = [](const Schema& in, const Params&) -> Result<Schema> {
    if (!in.Has("raw_meta")) return Status::InvalidArgument("needs raw_meta");
    Schema out = in;
    OPD_RETURN_NOT_OK(out.AddColumn(Column{"lang", DataType::kString}));
    OPD_RETURN_NOT_OK(out.AddColumn(Column{"device", DataType::kString}));
    return out;
  };
  lf1.map_fn = [](const Row& row, const LfContext& ctx,
                  std::vector<Row>* out) {
    const Value& meta = row[ctx.In("raw_meta")];
    std::string lang, device;
    ParseLogMeta(meta.is_null() ? "" : meta.as_string(), &lang, &device);
    Row r = row;
    r.push_back(Value(std::move(lang)));
    r.push_back(Value(std::move(device)));
    out->push_back(std::move(r));
  };
  udf.local_functions.push_back(std::move(lf1));
  return udf;
}

UdfDefinition MakeHashtagTrendsUdf() {
  UdfDefinition udf;
  udf.name = "UDF_HASHTAG_TRENDS";
  udf.model.consumed = {"user_id", "tweet_text"};
  udf.model.kept = {};
  udf.model.outputs = {
      {"tag", DataType::kString, {"tweet_text"}, {}},
      {"tag_users", DataType::kInt64, {"user_id", "tweet_text"}, {}},
      {"trend_tier", DataType::kString, {"user_id", "tweet_text"},
       {"min_users"}},
  };
  udf.model.filters = {{"tag_users", afk::CmpOp::kGt, "min_users", 2.0}};
  udf.model.rekey = std::vector<std::string>{"tag"};
  udf.model.expansion_hint = 0.01;

  LocalFunction lf1;
  lf1.name = "hashtags-lf1-extract";
  lf1.kind = LfKind::kMap;
  lf1.op_types = kOpAttrs | kOpFilter;
  lf1.out_schema = [](const Schema& in, const Params&) -> Result<Schema> {
    if (!in.Has("user_id") || !in.Has("tweet_text")) {
      return Status::InvalidArgument("needs user_id, tweet_text");
    }
    return TwoColSchema("tag", DataType::kString, "_user", DataType::kInt64);
  };
  lf1.map_fn = [](const Row& row, const LfContext& ctx,
                  std::vector<Row>* out) {
    const Value& text = row[ctx.In("tweet_text")];
    if (text.is_null()) return;
    const std::string& s = text.as_string();
    const Value& uid = row[ctx.In("user_id")];
    size_t i = 0;
    while ((i = s.find('#', i)) != std::string::npos) {
      size_t j = i + 1;
      while (j < s.size() &&
             (std::isalnum(static_cast<unsigned char>(s[j])) || s[j] == '_')) {
        ++j;
      }
      if (j > i + 1) {
        out->push_back(Row{Value(ToLowerAscii(s.substr(i + 1, j - i - 1))),
                           uid});
      }
      i = j;
    }
  };
  udf.local_functions.push_back(std::move(lf1));

  LocalFunction lf2;
  lf2.name = "hashtags-lf2-distinct-users";
  lf2.kind = LfKind::kReduce;
  lf2.op_types = kOpGroup | kOpAttrs;
  lf2.group_keys = {"tag"};
  lf2.out_schema = [](const Schema&, const Params&) -> Result<Schema> {
    return TwoColSchema("tag", DataType::kString, "tag_users",
                        DataType::kInt64);
  };
  lf2.reduce_fn = [](const std::vector<Row>& group, const LfContext& ctx,
                     std::vector<Row>* out) {
    std::set<int64_t> users;
    for (const Row& r : group) users.insert(r[ctx.In("_user")].as_int64());
    out->push_back(Row{group.front()[ctx.In("tag")],
                       Value(static_cast<int64_t>(users.size()))});
  };
  udf.local_functions.push_back(std::move(lf2));

  LocalFunction lf3;
  lf3.name = "hashtags-lf3-tier";
  lf3.kind = LfKind::kMap;
  lf3.op_types = kOpAttrs | kOpFilter;
  lf3.out_schema = [](const Schema& in, const Params&) -> Result<Schema> {
    Schema out = in;
    OPD_RETURN_NOT_OK(out.AddColumn(Column{"trend_tier", DataType::kString}));
    return out;
  };
  lf3.map_fn = [](const Row& row, const LfContext& ctx,
                  std::vector<Row>* out) {
    double min_users = ParamDouble(*ctx.params, "min_users", 2.0);
    double users = row[ctx.In("tag_users")].ToDouble();
    if (users <= min_users) return;
    Row r = row;
    r.push_back(Value(users > 4 * min_users ? std::string("hot")
                                            : std::string("rising")));
    out->push_back(std::move(r));
  };
  udf.local_functions.push_back(std::move(lf3));
  return udf;
}

Status RegisterBuiltinUdfs(UdfRegistry* registry) {
  OPD_RETURN_NOT_OK(registry->Register(MakeHashtagTrendsUdf()));
  OPD_RETURN_NOT_OK(registry->Register(MakeClassifyWineScoreUdf()));
  OPD_RETURN_NOT_OK(registry->Register(MakeClassifyFoodScoreUdf()));
  OPD_RETURN_NOT_OK(registry->Register(MakeClassifyAffluentUdf()));
  OPD_RETURN_NOT_OK(registry->Register(MakeFriendshipStrengthUdf()));
  OPD_RETURN_NOT_OK(registry->Register(MakeNetworkInfluenceUdf()));
  OPD_RETURN_NOT_OK(registry->Register(MakeExtractLatLonUdf()));
  OPD_RETURN_NOT_OK(registry->Register(MakeGeoTileUdf()));
  OPD_RETURN_NOT_OK(registry->Register(MakeTokenizeUdf()));
  OPD_RETURN_NOT_OK(registry->Register(MakeWordCountUdf()));
  OPD_RETURN_NOT_OK(registry->Register(MakeMenuSimilarityUdf()));
  OPD_RETURN_NOT_OK(registry->Register(MakeParseLogUdf()));
  // Opaque predicate: non-empty, parsable geo string.
  OPD_RETURN_NOT_OK(registry->RegisterPredicate(
      "valid_geo",
      [](const std::vector<storage::Value>& args, const Params&) {
        if (args.empty() || args[0].is_null()) return false;
        double lat, lon;
        return ParseLatLon(args[0].as_string(), &lat, &lon);
      }));
  return Status::OK();
}

}  // namespace opd::udf
