#include "udf/udf_registry.h"

namespace opd::udf {

Status UdfRegistry::Register(UdfDefinition udf) {
  if (udfs_.count(udf.name) > 0) {
    return Status::AlreadyExists("UDF already registered: " + udf.name);
  }
  // Model soundness invariant: a UDF expected to emit more rows than it
  // consumes cannot preserve the input keying — the output rows no longer
  // respect it, and equivalence reasoning over K would be wrong.
  if (udf.model.expansion_hint > 1.0 && !udf.model.rekey.has_value()) {
    return Status::InvalidArgument(
        "UDF " + udf.name +
        " has expansion > 1 but preserves the input keying; declare a rekey");
  }
  std::string name = udf.name;
  udfs_.emplace(std::move(name), std::move(udf));
  return Status::OK();
}

Result<const UdfDefinition*> UdfRegistry::Find(const std::string& name) const {
  auto it = udfs_.find(name);
  if (it == udfs_.end()) return Status::NotFound("no such UDF: " + name);
  return &it->second;
}

Result<UdfDefinition*> UdfRegistry::FindMutable(const std::string& name) {
  auto it = udfs_.find(name);
  if (it == udfs_.end()) return Status::NotFound("no such UDF: " + name);
  return &it->second;
}

std::vector<std::string> UdfRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(udfs_.size());
  for (const auto& [name, _] : udfs_) names.push_back(name);
  return names;
}

Status UdfRegistry::RegisterPredicate(const std::string& name,
                                      PredicateFn fn) {
  if (predicates_.count(name) > 0) {
    return Status::AlreadyExists("predicate already registered: " + name);
  }
  predicates_[name] = std::move(fn);
  return Status::OK();
}

Result<const PredicateFn*> UdfRegistry::FindPredicate(
    const std::string& name) const {
  auto it = predicates_.find(name);
  if (it == predicates_.end()) {
    return Status::NotFound("no such predicate: " + name);
  }
  return &it->second;
}

}  // namespace opd::udf
