// UDF definitions: executable local-function pipelines plus the declarative
// gray-box model describing their end-to-end (A, F, K) transformation.

#ifndef OPD_UDF_UDF_H_
#define OPD_UDF_UDF_H_

#include <optional>
#include <string>
#include <vector>

#include "afk/afk.h"
#include "common/status.h"
#include "udf/local_function.h"

namespace opd::udf {

/// A new output attribute produced by a UDF, with its recorded dependencies
/// (the paper's attribute *signature*, Section 3.1).
struct UdfOutputSpec {
  std::string name;
  storage::DataType type = storage::DataType::kNull;
  /// Names of the input attributes the value depends on.
  std::vector<std::string> deps;
  /// Names of parameters that affect the produced *values* (not filters),
  /// e.g. a tile size. Threshold-style parameters that only filter do NOT
  /// belong here — that is what lets revised thresholds reuse earlier views.
  std::vector<std::string> value_param_keys;
};

/// A filter the UDF applies. Either a comparison whose literal comes from a
/// parameter, or an opaque named predicate over one attribute (arbitrary
/// user code, e.g. a validity check).
struct UdfFilterSpec {
  std::string attr;  // name among inputs or outputs
  afk::CmpOp op = afk::CmpOp::kGt;
  std::string param_key;
  double default_literal = 0.0;
  bool opaque = false;
  std::string opaque_fn;  // predicate name when opaque
};

/// \brief The declarative gray-box model of a UDF: how it transforms
/// (A, F, K) end to end. The system never sees inside the local functions.
struct UdfModelSpec {
  /// Input attribute names the UDF requires.
  std::vector<std::string> consumed;
  /// Input attributes passed through to the output. The single entry "*"
  /// means "all current attributes".
  std::vector<std::string> kept;
  std::vector<UdfOutputSpec> outputs;
  std::vector<UdfFilterSpec> filters;
  /// New grouping keys of the output (names among kept/outputs); nullopt
  /// keeps the input keying.
  std::optional<std::vector<std::string>> rekey;
  /// Whether the rekey is a grouping (increments aggregation depth). Pure
  /// map-side key relabeling would set this false.
  bool rekey_groups = true;
  /// Prior estimate of output rows per input row before calibration.
  double expansion_hint = 1.0;
};

/// \brief A complete UDF: name, model, executable stages, calibrated cost
/// scalars (Section 4.2).
struct UdfDefinition {
  std::string name;
  UdfModelSpec model;
  std::vector<LocalFunction> local_functions;

  /// Computational cost multipliers relative to the baseline data-only cost,
  /// set by Calibration (1 by default = plain data cost).
  double map_scalar = 1.0;
  double reduce_scalar = 1.0;
  /// Calibrated output-rows-per-input-row (overrides expansion_hint).
  std::optional<double> calibrated_expansion;

  double expansion() const {
    return calibrated_expansion.value_or(model.expansion_hint);
  }
  /// True if any local function is a reduce (the UDF shuffles data).
  bool HasShuffle() const;
};

/// \brief Applies the UDF's gray-box model to an input annotation, producing
/// the output annotation (Figure 2 / Figure 3(b) of the paper).
///
/// Derived output attributes record (producer = UDF name, resolved input
/// attributes, the input (F, K) context, value-affecting params) as their
/// signature.
Result<afk::Afk> ApplyUdfModel(const UdfDefinition& udf, const afk::Afk& in,
                               const Params& params);

/// Canonical string of the value-affecting parameters of `udf` under
/// `params` (part of output attribute signatures).
std::string ValueParamsString(const UdfModelSpec& model, const Params& params);

}  // namespace opd::udf

#endif  // OPD_UDF_UDF_H_
