#include "udf/udf.h"

#include <algorithm>

namespace opd::udf {

bool UdfDefinition::HasShuffle() const {
  for (const LocalFunction& lf : local_functions) {
    if (lf.kind == LfKind::kReduce) return true;
  }
  return false;
}

namespace {

std::string ParamsStringForKeys(const std::vector<std::string>& keys,
                                const Params& params) {
  std::vector<std::string> sorted_keys = keys;
  std::sort(sorted_keys.begin(), sorted_keys.end());
  std::string out;
  for (const std::string& k : sorted_keys) {
    if (!out.empty()) out += ",";
    auto it = params.find(k);
    out += k + "=" + (it == params.end() ? "?" : it->second.ToString());
  }
  return out;
}

}  // namespace

std::string ValueParamsString(const UdfModelSpec& model, const Params& params) {
  std::vector<std::string> keys;
  for (const UdfOutputSpec& o : model.outputs) {
    keys.insert(keys.end(), o.value_param_keys.begin(),
                o.value_param_keys.end());
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return ParamsStringForKeys(keys, params);
}

Result<afk::Afk> ApplyUdfModel(const UdfDefinition& udf, const afk::Afk& in,
                               const Params& params) {
  const UdfModelSpec& m = udf.model;

  // Resolve consumed inputs.
  std::vector<afk::Attribute> consumed;
  for (const std::string& name : m.consumed) {
    auto a = in.FindByName(name);
    if (!a) {
      return Status::InvalidArgument("UDF " + udf.name +
                                     " requires absent input: " + name);
    }
    consumed.push_back(*a);
  }

  // Resolve pass-through attributes.
  std::vector<afk::Attribute> kept;
  if (m.kept.size() == 1 && m.kept[0] == "*") {
    kept = in.attrs();
  } else {
    for (const std::string& name : m.kept) {
      auto a = in.FindByName(name);
      if (!a) {
        return Status::InvalidArgument("UDF " + udf.name +
                                       " keeps absent attribute: " + name);
      }
      kept.push_back(*a);
    }
  }

  // The creation context recorded in output signatures: the input's (F, K).
  const std::string context = in.ContextString();

  // Build the derived output attributes.
  std::vector<afk::Attribute> outputs;
  for (const UdfOutputSpec& spec : m.outputs) {
    std::vector<afk::Attribute> deps;
    for (const std::string& dep_name : spec.deps) {
      auto a = in.FindByName(dep_name);
      if (!a) {
        return Status::InvalidArgument("UDF " + udf.name + " output " +
                                       spec.name +
                                       " depends on absent input: " + dep_name);
      }
      deps.push_back(*a);
    }
    outputs.push_back(afk::Attribute::Derived(
        spec.name, udf.name, std::move(deps), context,
        ParamsStringForKeys(spec.value_param_keys, params), spec.type));
  }

  // Assemble output attribute set: kept then outputs. An output whose name
  // collides with a kept attribute (e.g. re-applying a kept="*" UDF to its
  // own output) is invalid — the physical schema could not represent it.
  std::vector<afk::Attribute> out_attrs = kept;
  for (const afk::Attribute& out : outputs) {
    for (const afk::Attribute& existing : out_attrs) {
      if (existing.name() == out.name()) {
        return Status::InvalidArgument("UDF " + udf.name +
                                       " output name already present: " +
                                       out.name());
      }
    }
    out_attrs.push_back(out);
  }

  auto find_out = [&](const std::string& name) -> std::optional<afk::Attribute> {
    for (const afk::Attribute& a : out_attrs) {
      if (a.name() == name) return a;
    }
    return std::nullopt;
  };

  // Filters added by the UDF (thresholds etc.).
  afk::FilterSet filters = in.filters();
  for (const UdfFilterSpec& f : m.filters) {
    auto attr = find_out(f.attr);
    if (!attr) {
      return Status::InvalidArgument("UDF " + udf.name +
                                     " filters absent attribute: " + f.attr);
    }
    if (f.opaque) {
      filters.Add(afk::Predicate::Opaque(f.opaque_fn, {*attr}, ""));
    } else {
      double lit = ParamDouble(params, f.param_key, f.default_literal);
      filters.Add(afk::Predicate::Compare(*attr, f.op, storage::Value(lit)));
    }
  }

  // Keying of the output.
  afk::KeySet keys = in.keys();
  if (m.rekey.has_value()) {
    std::vector<afk::Attribute> key_attrs;
    for (const std::string& name : *m.rekey) {
      auto attr = find_out(name);
      if (!attr) {
        return Status::InvalidArgument("UDF " + udf.name +
                                       " rekeys on absent attribute: " + name);
      }
      key_attrs.push_back(*attr);
    }
    int depth = in.keys().agg_depth() + (m.rekey_groups ? 1 : 0);
    keys = afk::KeySet(std::move(key_attrs), depth);
  }

  return afk::Afk(std::move(out_attrs), std::move(filters), std::move(keys));
}

}  // namespace opd::udf
