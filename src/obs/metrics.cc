#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/json_writer.h"

namespace opd::obs {

namespace {

int BucketIndex(double v) {
  if (!(v > 0.0)) return 0;  // <= 0 and NaN land in bucket 0
  // Bucket b (1..63) covers (2^(b-33), 2^(b-32)].
  const int e = static_cast<int>(std::ceil(std::log2(v)));
  const int b = e + 32;
  if (b < 1) return 1;
  if (b >= Histogram::kNumBuckets) return Histogram::kNumBuckets - 1;
  return b;
}

void AtomicAdd(std::atomic<double>* a, double delta) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + delta,
                                   std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v < cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v > cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::Observe(double v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, v);
  bool had = has_.exchange(true, std::memory_order_relaxed);
  if (!had) {
    // First observer seeds min/max; races with concurrent observers are
    // resolved by the CAS loops below (both run unconditionally).
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  }
  AtomicMin(&min_, v);
  AtomicMax(&max_, v);
}

double Histogram::min() const {
  return has_.load(std::memory_order_relaxed)
             ? min_.load(std::memory_order_relaxed)
             : 0.0;
}

double Histogram::max() const {
  return has_.load(std::memory_order_relaxed)
             ? max_.load(std::memory_order_relaxed)
             : 0.0;
}

double Histogram::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::BucketUpperBound(int b) {
  if (b <= 0) return 0.0;
  return std::ldexp(1.0, b - 32);
}

double Histogram::Quantile(double q) const {
  // One snapshot of the bucket array; the total comes from the same
  // snapshot (not count_), so a concurrent Observe() cannot make the rank
  // walk run past the end.
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;

  // Target rank in [1, total]; find the bucket whose cumulative count
  // reaches it and interpolate linearly within the bucket's bounds.
  const double rank = q * static_cast<double>(total - 1) + 1.0;
  uint64_t cum = 0;
  double est = 0.0;
  for (int b = 0; b < kNumBuckets; ++b) {
    if (counts[b] == 0) continue;
    if (static_cast<double>(cum + counts[b]) >= rank) {
      const double lo = b == 0 ? 0.0 : BucketUpperBound(b - 1);
      const double hi = BucketUpperBound(b);
      const double frac =
          (rank - static_cast<double>(cum)) / static_cast<double>(counts[b]);
      est = lo + (hi - lo) * frac;
      break;
    }
    cum += counts[b];
    est = BucketUpperBound(b);
  }
  // The exact observed extrema are tighter than any bucket bound.
  const double observed_min = min();
  const double observed_max = max();
  if (est < observed_min) est = observed_min;
  if (est > observed_max) est = observed_max;
  return est;
}

void Histogram::MergeFrom(const Histogram& other) {
  uint64_t merged = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    const uint64_t n = other.buckets_[b].load(std::memory_order_relaxed);
    if (n == 0) continue;
    buckets_[b].fetch_add(n, std::memory_order_relaxed);
    merged += n;
  }
  if (merged == 0) return;
  count_.fetch_add(merged, std::memory_order_relaxed);
  AtomicAdd(&sum_, other.sum());
  const bool had = has_.exchange(true, std::memory_order_relaxed);
  if (!had) {
    min_.store(other.min(), std::memory_order_relaxed);
    max_.store(other.max(), std::memory_order_relaxed);
  }
  AtomicMin(&min_, other.min());
  AtomicMax(&max_, other.max());
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  has_.store(false, std::memory_order_relaxed);
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();  // never destroyed
  return *registry;
}

Counter& MetricRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string MetricRegistry::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << name << "=" << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << name << "=" << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << name << "=count:" << h->count() << " mean:" << h->mean()
       << " max:" << h->max() << "\n";
  }
  return os.str();
}

std::string MetricRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, c] : counters_) w.Key(name).UInt(c->value());
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, g] : gauges_) w.Key(name).Double(g->value());
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms_) {
    w.Key(name).BeginObject();
    w.Key("count").UInt(h->count());
    w.Key("sum").Double(h->sum());
    w.Key("min").Double(h->min());
    w.Key("max").Double(h->max());
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.Take();
}

std::vector<std::string> MetricRegistry::CounterNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, c] : counters_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricRegistry::GaugeNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricRegistry::HistogramNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricRegistry::AllNames() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names.reserve(counters_.size() + gauges_.size() + histograms_.size());
    for (const auto& [name, c] : counters_) names.push_back(name);
    for (const auto& [name, g] : gauges_) names.push_back(name);
    for (const auto& [name, h] : histograms_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace opd::obs
