#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/json_writer.h"

namespace opd::obs {

Trace::Trace() : epoch_(std::chrono::steady_clock::now()) {}

uint64_t Trace::AllocSpanIds(uint64_t n) {
  return next_id_.fetch_add(n, std::memory_order_relaxed);
}

void Trace::Record(SpanRecord rec) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(rec));
}

double Trace::NowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

size_t Trace::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::vector<SpanRecord> Trace::Sorted() const {
  std::vector<SpanRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = spans_;
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) { return a.id < b.id; });
  return out;
}

namespace {

void AppendEvent(const SpanRecord& s, JsonWriter* w) {
  w->BeginObject();
  w->Key("name").String(s.name);
  w->Key("cat").String(s.cat.empty() ? "opd" : s.cat);
  w->Key("ph").String("X");
  w->Key("ts").Double(s.start_us);
  w->Key("dur").Double(s.dur_us);
  w->Key("pid").Int(1);
  w->Key("tid").UInt(1 + s.lane);
  w->Key("args");
  w->BeginObject();
  w->Key("id").UInt(s.id);
  if (s.parent != 0) w->Key("parent").UInt(s.parent);
  for (const auto& [key, value] : s.args) {
    w->Key(key).Raw(value);
  }
  w->EndObject();
  w->EndObject();
}

}  // namespace

void Trace::AppendEventsJson(std::string* out, bool* first) const {
  for (const SpanRecord& s : Sorted()) {
    JsonWriter w;
    AppendEvent(s, &w);
    if (!*first) out->push_back(',');
    *first = false;
    *out += w.str();
  }
}

std::string Trace::ToChromeJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  AppendEventsJson(&out, &first);
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string Trace::StructureString() const {
  std::string out;
  for (const SpanRecord& s : Sorted()) {
    out += std::to_string(s.id);
    out.push_back(' ');
    out += std::to_string(s.parent);
    out.push_back(' ');
    out += s.name;
    out.push_back('\n');
  }
  return out;
}

TraceSpan::TraceSpan(Trace* trace, uint64_t parent, std::string name,
                     std::string cat)
    : trace_(trace) {
  if (trace_ == nullptr) return;
  rec_.id = trace_->AllocSpanIds(1);
  rec_.parent = parent;
  rec_.name = std::move(name);
  rec_.cat = std::move(cat);
  rec_.start_us = trace_->NowUs();
}

TraceSpan TraceSpan::Adopt(Trace* trace, uint64_t id, uint64_t parent,
                           std::string name, std::string cat, uint32_t lane) {
  if (trace == nullptr) return TraceSpan();
  SpanRecord rec;
  rec.id = id;
  rec.parent = parent;
  rec.name = std::move(name);
  rec.cat = std::move(cat);
  rec.lane = lane;
  rec.start_us = trace->NowUs();
  return TraceSpan(trace, std::move(rec));
}

TraceSpan::TraceSpan(TraceSpan&& other) noexcept
    : trace_(other.trace_), rec_(std::move(other.rec_)) {
  other.trace_ = nullptr;
}

TraceSpan& TraceSpan::operator=(TraceSpan&& other) noexcept {
  if (this != &other) {
    End();
    trace_ = other.trace_;
    rec_ = std::move(other.rec_);
    other.trace_ = nullptr;
  }
  return *this;
}

void TraceSpan::End() {
  if (trace_ == nullptr) return;
  rec_.dur_us = trace_->NowUs() - rec_.start_us;
  trace_->Record(std::move(rec_));
  trace_ = nullptr;
}

void TraceSpan::AddArg(std::string key, std::string_view value) {
  if (trace_ == nullptr) return;
  rec_.args.emplace_back(std::move(key), JsonWriter::Quote(value));
}

void TraceSpan::AddArg(std::string key, double value) {
  if (trace_ == nullptr) return;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  rec_.args.emplace_back(std::move(key), buf);
}

void TraceSpan::AddArg(std::string key, int64_t value) {
  if (trace_ == nullptr) return;
  rec_.args.emplace_back(std::move(key), std::to_string(value));
}

void TraceSpan::AddArg(std::string key, uint64_t value) {
  if (trace_ == nullptr) return;
  rec_.args.emplace_back(std::move(key), std::to_string(value));
}

void TraceSpan::AddArg(std::string key, bool value) {
  if (trace_ == nullptr) return;
  rec_.args.emplace_back(std::move(key), value ? "true" : "false");
}

Status TracedParallelFor(ThreadPool* pool, size_t n, Trace* trace,
                         uint64_t parent, const char* task_name,
                         const std::function<Status(size_t)>& fn,
                         double* max_task_seconds) {
  if (trace == nullptr) return ParallelFor(pool, n, fn, max_task_seconds);
  const uint64_t base = trace->AllocSpanIds(n);  // serial: before the wave
  return ParallelFor(
      pool, n,
      [&](size_t i) -> Status {
        TraceSpan span = TraceSpan::Adopt(
            trace, base + i, parent,
            std::string(task_name) + ":" + std::to_string(i), "task",
            static_cast<uint32_t>(1 + i));
        return fn(i);
      },
      max_task_seconds);
}

Status WriteChromeTraceFile(const std::string& path,
                            const std::vector<const Trace*>& traces) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Trace* t : traces) {
    if (t != nullptr) t->AppendEventsJson(&out, &first);
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Status::Internal("cannot open trace file: " + path);
  file << out << "\n";
  if (!file.good()) return Status::Internal("trace write failed: " + path);
  return Status::OK();
}

}  // namespace opd::obs
