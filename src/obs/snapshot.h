// Point-in-time snapshot and diff of the metric registry, with JSON and
// Prometheus-style text exposition. Session::Run captures a snapshot before
// and after each query so a RunResult can report exactly what that run
// contributed to the process-wide metrics (counters and histogram mass are
// diffed; gauges are levels and report their current value).

#ifndef OPD_OBS_SNAPSHOT_H_
#define OPD_OBS_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace opd::obs {

/// How a snapshot renders as Prometheus text exposition.
struct PrometheusOptions {
  /// Metric-name prefix; names mangle to `<prefix>_<name with non-alnum
  /// as underscores>`.
  std::string prefix = "opd";
  /// Labels attached to every sample, in the given order (e.g.
  /// {{"tenant", "ana"}} for a per-tenant scope). Values are escaped per
  /// the exposition format (`\\`, `"`, and newline).
  std::vector<std::pair<std::string, std::string>> labels;
  /// Optional `# HELP` text per (unmangled) metric name; escaped per the
  /// exposition format (`\\` and newline).
  std::map<std::string, std::string> help;
};

/// Escapes a Prometheus label value: `\` -> `\\`, `"` -> `\"`, newline ->
/// `\n` (the exposition format is line-oriented; an unescaped newline in a
/// label value corrupts every sample after it).
std::string PrometheusEscapeLabelValue(const std::string& value);

/// Escapes `# HELP` text: `\` -> `\\`, newline -> `\n` (quotes are legal in
/// help text and stay as-is).
std::string PrometheusEscapeHelp(const std::string& text);

/// \brief The values of every registered metric at one instant.
struct MetricsSnapshot {
  struct HistogramStat {
    uint64_t count = 0;
    double sum = 0;
    /// Min/max of the histogram's *lifetime*, not the diff window (the
    /// sketch cannot un-observe); a diff carries the current values.
    double min = 0;
    double max = 0;
  };

  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStat> histograms;

  static MetricsSnapshot Capture(MetricRegistry& registry);

  /// What happened since `base`: counter values and histogram count/sum are
  /// subtracted (entries with zero delta are dropped); gauges keep their
  /// current value — they are levels, not accumulations.
  MetricsSnapshot DiffFrom(const MetricsSnapshot& base) const;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
  /// max}}} — compact, via json_writer.
  std::string ToJson() const;

  /// Prometheus text exposition: one `# TYPE` line per metric, names
  /// mangled `<prefix>_<name with dots as underscores>`. Histograms export
  /// as summaries (`_count`/`_sum`) plus `_min`/`_max` gauges.
  std::string ToPrometheus(const std::string& prefix = "opd") const;
  /// Full exposition control: label sets (escaped), `# HELP` lines, prefix.
  std::string ToPrometheus(const PrometheusOptions& options) const;
};

}  // namespace opd::obs

#endif  // OPD_OBS_SNAPSHOT_H_
