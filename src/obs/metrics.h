// Process-wide metric registry: named counters, gauges, and histograms that
// the engine, rewriter, DFS, and view store publish into (replacing the
// ad-hoc per-subsystem counters for anything that wants a global view).
//
// Naming scheme (DESIGN.md "Observability"): dot-separated
// `<subsystem>.<object>.<event>`, e.g. `engine.shuffle.skew`,
// `viewstore.find.hit`, `dfs.bytes_read`.
//
// Concurrency: metric objects are created under the registry mutex once and
// never destroyed (pointers are stable for the process lifetime — callers
// may cache them, including via function-local statics). Updates are
// lock-free relaxed atomics; per-value hot loops should aggregate locally
// and publish per task or per job.

#ifndef OPD_OBS_METRICS_H_
#define OPD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace opd::obs {

/// Monotonic event count.
class Counter {
 public:
  void Inc(uint64_t delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-written level (e.g. a load factor, a store size).
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Distribution sketch over power-of-two buckets spanning [2^-31, 2^31),
/// plus exact count/sum/min/max. All updates are atomic; concurrent
/// Observe() calls never lose events.
///
/// Threading contract: Observe() may race with every read accessor
/// (readers see a slightly stale but internally usable sketch — Quantile()
/// derives its total from one pass over the bucket array, never from
/// count()). Reset() is the one exception: it is NOT linearizable against
/// concurrent Observe() calls (an in-flight observation can land half
/// before and half after the zeroing, leaving count/sum/buckets mutually
/// inconsistent). Call Reset() — and MetricRegistry::ResetAll() — only
/// while the metric is quiescent, e.g. between queries on a paused server.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;
  double max() const;
  double mean() const;
  uint64_t bucket_count(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket `b` (bucket 0 holds v <= 0).
  static double BucketUpperBound(int b);

  /// Estimated q-quantile (q in [0,1]) from the bucket sketch: finds the
  /// bucket holding the target rank and interpolates linearly inside its
  /// bounds, clamped to the exact observed [min, max]. The error is bounded
  /// by the power-of-two bucket width. Returns NaN on an empty histogram
  /// (never UB): the rank walk uses a single snapshot of the bucket array,
  /// so a concurrent Observe() can only shift the estimate, not break it.
  double Quantile(double q) const;

  /// Folds `other`'s mass into this sketch (buckets, count, sum, min/max) —
  /// what makes per-tenant sketches mergeable into fleet-wide ones. Both
  /// histograms follow the Observe() side of the threading contract; don't
  /// merge out of a histogram that is being Reset().
  void MergeFrom(const Histogram& other);

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // min/max stored as doubles updated by CAS; +-inf sentinels when empty.
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> has_{false};
};

/// \brief The process-wide named-metric table.
class MetricRegistry {
 public:
  /// The global registry every subsystem publishes into.
  static MetricRegistry& Global();

  /// Finds or creates; returned references stay valid forever.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Zeroes every metric's value; registrations (and pointers) survive.
  void ResetAll();

  /// Sorted "name=value" lines (histograms as count/mean/max).
  std::string ToString() const;
  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;

  std::vector<std::string> CounterNames() const;
  std::vector<std::string> GaugeNames() const;
  std::vector<std::string> HistogramNames() const;
  /// Every registered metric name (counters + gauges + histograms), sorted;
  /// the registered-names list behind `--dump-metrics` and the name lint.
  std::vector<std::string> AllNames() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace opd::obs

#endif  // OPD_OBS_METRICS_H_
