// Server-lifetime query history: a bounded ring of structured per-query
// records plus an optional JSONL sink and a byte-budgeted slow-query
// capture store. This is the layer that survives the queries it describes —
// each RunResult's metrics die with the result object, but the QueryLog
// keeps the last N completions so an operator can ask "what ran, how slow,
// and why" across every tenant (DESIGN.md §3, "Introspection & query
// history").
//
// Concurrency: the ring is lock-free for readers. Each slot is an
// std::atomic<const QueryRecord*> over immutable records; Snapshot()/Find()
// bump a reader in-flight counter, perform atomic slot loads, and copy the
// records out — they never take the append mutex, so a stalled reader
// cannot block query completion (and vice versa). Appends are serialized by
// a writer mutex (they also feed the JSONL sink, which must stay in append
// order); an overwritten record is retired, not freed — the writer reclaims
// retired records only when the in-flight counter reads zero, so no reader
// ever dereferences a freed record (all four handoff operations are seq_cst
// to rule out the store-buffer reordering where the writer misses a fresh
// reader AND that reader still loads the retired slot). Slow-query profiles
// live behind their own mutex — they are big, rare, and read by humans, not
// hot paths.

#ifndef OPD_OBS_QUERY_LOG_H_
#define OPD_OBS_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace opd::obs {

class MetricRegistry;

/// \brief One completed (or failed) query, as the server saw it.
///
/// Fields split into two classes. *Deterministic* fields are identical
/// between a concurrent run and its serial replay under pinned admission
/// epochs: tenant, epochs, status, rows, jobs, view counts, rewrite
/// decision counts, exec_time_s (modeled simulation time), max residual.
/// *Timing* fields (ticket, queue_wait_s, wall_time_s, recycle_hits) depend
/// on scheduling and are excluded from determinism comparisons.
struct QueryRecord {
  std::string tenant;
  std::string query;  ///< Source text as submitted (whitespace-trimmed).

  uint64_t ticket = 0;           ///< Admission ticket (timing-dependent).
  uint64_t admission_epoch = 0;  ///< View-store epoch the run snapshotted.
  uint64_t publish_epoch = 0;    ///< Epoch after this run's PublishBatch.

  double queue_wait_s = 0.0;  ///< Admission queue wait (wall clock).
  double wall_time_s = 0.0;   ///< End-to-end Run() wall time.
  double exec_time_s = 0.0;   ///< Modeled simulation time (deterministic).

  uint64_t rows_in = 0;   ///< Rows fed into jobs (incl. intermediates).
  uint64_t rows_out = 0;  ///< Rows in the final result table.
  uint64_t jobs = 0;

  uint64_t views_used = 0;
  uint64_t cross_tenant_views = 0;  ///< Subset of views_used from others.
  uint64_t views_published = 0;
  uint64_t recycle_hits = 0;  ///< Hash-table cache hits (timing-dependent).

  /// Rewrite decision counts (rewrite::DecisionCounts, flattened).
  uint64_t rw_candidates = 0;
  uint64_t rw_accepted = 0;
  uint64_t rw_signature_mismatch = 0;
  uint64_t rw_afk_containment = 0;
  uint64_t rw_not_cost_improving = 0;
  uint64_t rw_pruned_by_bound = 0;

  /// Worst per-job |actual - predicted| cost residual, percent.
  double max_residual_pct = 0.0;

  std::string status = "ok";  ///< "ok" or "error".
  std::string error;          ///< Message when status == "error".

  /// One compact JSON object (the JSONL sink line, sans newline).
  std::string ToJson() const;
};

/// \brief Full diagnostic capture for one slow query: the artifacts that are
/// too big to keep for every query, kept only for offenders.
struct SlowQueryProfile {
  uint64_t ticket = 0;
  std::string tenant;
  double wall_time_s = 0.0;
  std::string explain_analyze;  ///< EXPLAIN ANALYZE tree at completion.
  std::string decision_log;     ///< Rewrite decision log (text form).
  std::string trace_json;       ///< Chrome-trace JSON ("" if tracing off).

  /// Bytes this profile charges against the capture budget.
  size_t ByteSize() const {
    return sizeof(SlowQueryProfile) + tenant.size() + explain_analyze.size() +
           decision_log.size() + trace_json.size();
  }
};

/// \brief Bounded ring of QueryRecords + JSONL sink + slow-query store.
class QueryLog {
 public:
  struct Options {
    /// Ring capacity in records; the newest `capacity` completions are
    /// retained, older ones are overwritten (counted as dropped).
    size_t capacity = 1024;
    /// When nonempty, every record is also appended as one JSON line.
    std::string jsonl_path;
    /// Queries with wall_time_s >= threshold get a full profile captured;
    /// negative disables capture entirely.
    double slow_threshold_s = -1.0;
    /// Byte budget for retained profiles; oldest-first eviction.
    size_t slow_capture_budget_bytes = 4u << 20;
    /// When set, the log maintains `server.querylog.*` counters/gauges.
    MetricRegistry* registry = nullptr;
  };

  struct Stats {
    uint64_t appended = 0;       ///< Records ever appended.
    uint64_t dropped = 0;        ///< Records overwritten out of the ring.
    uint64_t slow_captured = 0;  ///< Profiles ever captured.
    uint64_t slow_evicted = 0;   ///< Profiles evicted by the byte budget.
    uint64_t capture_bytes = 0;  ///< Bytes currently held by profiles.
  };

  explicit QueryLog(const Options& options);
  ~QueryLog();

  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  /// Appends a completed-query record (and its JSONL line, if a sink is
  /// configured). Thread-safe; appenders serialize on a writer mutex.
  void Append(const QueryRecord& record);

  /// Whether `wall_time_s` crosses the slow-query threshold.
  bool ShouldCapture(double wall_time_s) const {
    return options_.slow_threshold_s >= 0.0 &&
           wall_time_s >= options_.slow_threshold_s;
  }

  /// Retains a slow-query profile, evicting oldest profiles until the
  /// byte budget holds. A profile larger than the whole budget is dropped
  /// (counted captured then evicted) rather than blowing the bound.
  void CaptureSlow(SlowQueryProfile profile);

  /// The retained records, oldest first (copies — safe to hold across
  /// later appends). Lock-free with respect to appenders: readers only
  /// bump the in-flight counter and perform atomic slot loads.
  std::vector<std::shared_ptr<const QueryRecord>> Snapshot() const;

  /// The retained record with the given admission ticket, or nullptr.
  std::shared_ptr<const QueryRecord> Find(uint64_t ticket) const;

  /// The retained slow-query profile for `ticket`, if any.
  std::optional<SlowQueryProfile> FindProfile(uint64_t ticket) const;

  Stats stats() const;
  size_t capacity() const { return options_.capacity; }

 private:
  // RAII reader registration: entered before any slot load, left after the
  // last dereference of a loaded record.
  class ReaderGuard {
   public:
    explicit ReaderGuard(const std::atomic<uint64_t>& counter)
        : counter_(const_cast<std::atomic<uint64_t>&>(counter)) {
      counter_.fetch_add(1, std::memory_order_seq_cst);
    }
    ~ReaderGuard() { counter_.fetch_sub(1, std::memory_order_seq_cst); }
    ReaderGuard(const ReaderGuard&) = delete;
    ReaderGuard& operator=(const ReaderGuard&) = delete;

   private:
    std::atomic<uint64_t>& counter_;
  };

  // Frees retired records when no reader is in flight; called under mu_.
  // When `force`, waits (yielding) for readers to drain first — the
  // backstop that bounds retired_ against a pathological reader storm.
  void ReclaimRetired(bool force);

  const Options options_;

  // Ring slots; slot i holds the record with sequence s where
  // s % capacity == i. Records are heap-allocated, immutable once
  // published, owned by the slot until overwritten and by retired_ after.
  // Readers load atomically under a ReaderGuard; writers exchange under
  // mu_.
  std::vector<std::atomic<const QueryRecord*>> slots_;
  mutable std::atomic<uint64_t> readers_in_flight_{0};

  mutable std::mutex mu_;        // serializes Append (slots + sink + seq)
  uint64_t next_seq_ = 0;        // under mu_
  std::vector<const QueryRecord*> retired_;  // overwritten, await reclaim
  std::ofstream sink_;           // under mu_
  std::atomic<uint64_t> appended_{0};
  std::atomic<uint64_t> dropped_{0};

  mutable std::mutex slow_mu_;   // profiles are cold-path; plain lock
  std::deque<SlowQueryProfile> profiles_;  // oldest first, under slow_mu_
  size_t profile_bytes_ = 0;               // under slow_mu_
  std::atomic<uint64_t> slow_captured_{0};
  std::atomic<uint64_t> slow_evicted_{0};
};

}  // namespace opd::obs

#endif  // OPD_OBS_QUERY_LOG_H_
