#include "obs/snapshot.h"

#include <cctype>
#include <cstdio>

#include "common/json_writer.h"

namespace opd::obs {

namespace {

std::string PrometheusName(const std::string& prefix,
                           const std::string& name) {
  std::string out = prefix + "_";
  for (char c : name) {
    const unsigned char u = static_cast<unsigned char>(c);
    out.push_back(std::isalnum(u) ? c : '_');
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// The `{label="value",...}` suffix shared by every sample line ("" when no
// labels are set). Values are escaped once here, not per sample.
std::string LabelSuffix(const PrometheusOptions& options) {
  if (options.labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : options.labels) {
    if (!first) out += ",";
    first = false;
    out += name + "=\"" + PrometheusEscapeLabelValue(value) + "\"";
  }
  out += "}";
  return out;
}

void AppendHelp(const PrometheusOptions& options, const std::string& name,
                const std::string& pname, std::string* out) {
  const auto it = options.help.find(name);
  if (it == options.help.end()) return;
  *out += "# HELP " + pname + " " + PrometheusEscapeHelp(it->second) + "\n";
}

}  // namespace

std::string PrometheusEscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string PrometheusEscapeHelp(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

MetricsSnapshot MetricsSnapshot::Capture(MetricRegistry& registry) {
  MetricsSnapshot snap;
  for (const std::string& name : registry.CounterNames()) {
    snap.counters[name] = registry.counter(name).value();
  }
  for (const std::string& name : registry.GaugeNames()) {
    snap.gauges[name] = registry.gauge(name).value();
  }
  for (const std::string& name : registry.HistogramNames()) {
    const Histogram& h = registry.histogram(name);
    HistogramStat stat;
    stat.count = h.count();
    stat.sum = h.sum();
    stat.min = h.min();
    stat.max = h.max();
    snap.histograms[name] = stat;
  }
  return snap;
}

MetricsSnapshot MetricsSnapshot::DiffFrom(const MetricsSnapshot& base) const {
  MetricsSnapshot diff;
  for (const auto& [name, value] : counters) {
    const auto it = base.counters.find(name);
    const uint64_t before = it == base.counters.end() ? 0 : it->second;
    if (value > before) diff.counters[name] = value - before;
  }
  // Gauges are levels: the "diff" is simply where they stand now.
  diff.gauges = gauges;
  for (const auto& [name, stat] : histograms) {
    const auto it = base.histograms.find(name);
    HistogramStat d = stat;
    if (it != base.histograms.end()) {
      d.count = stat.count - it->second.count;
      d.sum = stat.sum - it->second.sum;
    }
    if (d.count > 0) diff.histograms[name] = d;
  }
  return diff;
}

std::string MetricsSnapshot::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : counters) w.Key(name).UInt(value);
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : gauges) w.Key(name).Double(value);
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, stat] : histograms) {
    w.Key(name).BeginObject();
    w.Key("count").UInt(stat.count);
    w.Key("sum").Double(stat.sum);
    w.Key("min").Double(stat.min);
    w.Key("max").Double(stat.max);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.Take();
}

std::string MetricsSnapshot::ToPrometheus(const std::string& prefix) const {
  PrometheusOptions options;
  options.prefix = prefix;
  return ToPrometheus(options);
}

std::string MetricsSnapshot::ToPrometheus(
    const PrometheusOptions& options) const {
  const std::string labels = LabelSuffix(options);
  std::string out;
  for (const auto& [name, value] : counters) {
    const std::string pname = PrometheusName(options.prefix, name);
    AppendHelp(options, name, pname, &out);
    out += "# TYPE " + pname + " counter\n";
    out += pname + labels + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string pname = PrometheusName(options.prefix, name);
    AppendHelp(options, name, pname, &out);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + labels + " " + FormatDouble(value) + "\n";
  }
  for (const auto& [name, stat] : histograms) {
    const std::string pname = PrometheusName(options.prefix, name);
    AppendHelp(options, name, pname, &out);
    out += "# TYPE " + pname + " summary\n";
    out += pname + "_count" + labels + " " + std::to_string(stat.count) + "\n";
    out += pname + "_sum" + labels + " " + FormatDouble(stat.sum) + "\n";
    out += pname + "_min" + labels + " " + FormatDouble(stat.min) + "\n";
    out += pname + "_max" + labels + " " + FormatDouble(stat.max) + "\n";
  }
  return out;
}

}  // namespace opd::obs
