#include "obs/query_log.h"

#include <algorithm>
#include <thread>

#include "common/json_writer.h"
#include "obs/metrics.h"

namespace opd::obs {

std::string QueryRecord::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("tenant").String(tenant);
  w.Key("ticket").UInt(ticket);
  w.Key("admission_epoch").UInt(admission_epoch);
  w.Key("publish_epoch").UInt(publish_epoch);
  w.Key("queue_wait_s").Double(queue_wait_s);
  w.Key("wall_time_s").Double(wall_time_s);
  w.Key("exec_time_s").Double(exec_time_s);
  w.Key("rows_in").UInt(rows_in);
  w.Key("rows_out").UInt(rows_out);
  w.Key("jobs").UInt(jobs);
  w.Key("views_used").UInt(views_used);
  w.Key("cross_tenant_views").UInt(cross_tenant_views);
  w.Key("views_published").UInt(views_published);
  w.Key("recycle_hits").UInt(recycle_hits);
  w.Key("rewrite").BeginObject();
  w.Key("candidates").UInt(rw_candidates);
  w.Key("accepted").UInt(rw_accepted);
  w.Key("signature_mismatch").UInt(rw_signature_mismatch);
  w.Key("afk_containment").UInt(rw_afk_containment);
  w.Key("not_cost_improving").UInt(rw_not_cost_improving);
  w.Key("pruned_by_bound").UInt(rw_pruned_by_bound);
  w.EndObject();
  w.Key("max_residual_pct").Double(max_residual_pct);
  w.Key("status").String(status);
  if (!error.empty()) w.Key("error").String(error);
  w.Key("query").String(query);
  w.EndObject();
  return w.Take();
}

QueryLog::QueryLog(const Options& options)
    : options_(options), slots_(options.capacity > 0 ? options.capacity : 1) {
  for (auto& slot : slots_) slot.store(nullptr, std::memory_order_relaxed);
  if (!options_.jsonl_path.empty()) {
    sink_.open(options_.jsonl_path, std::ios::out | std::ios::app);
  }
}

QueryLog::~QueryLog() {
  // No concurrent access past destruction by contract.
  for (auto& slot : slots_) {
    delete slot.load(std::memory_order_relaxed);
  }
  for (const QueryRecord* rec : retired_) delete rec;
}

void QueryLog::ReclaimRetired(bool force) {
  // Called under mu_. The seq_cst counter read pairs with the seq_cst slot
  // exchange that retired these records: any reader that could still hold
  // a retired pointer either shows up in the counter (keep the records) or
  // started after the exchange and can only load the replacement.
  if (force) {
    while (readers_in_flight_.load(std::memory_order_seq_cst) != 0) {
      std::this_thread::yield();
    }
  } else if (readers_in_flight_.load(std::memory_order_seq_cst) != 0) {
    return;
  }
  for (const QueryRecord* rec : retired_) delete rec;
  retired_.clear();
}

void QueryLog::Append(const QueryRecord& record) {
  const QueryRecord* rec = new QueryRecord(record);
  bool overwrote = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t seq = next_seq_++;
    auto& slot = slots_[seq % slots_.size()];
    // Publishes the new record and retires the one it overwrites. Retired
    // records are reclaimed only when no reader is in flight; readers that
    // already loaded the old pointer stay safe until then.
    const QueryRecord* old = slot.exchange(rec, std::memory_order_seq_cst);
    overwrote = old != nullptr;
    if (old != nullptr) retired_.push_back(old);
    // Backstop: a reader storm may keep deferring reclamation; past 4x
    // capacity, wait the (short, wait-free) readers out rather than grow.
    ReclaimRetired(/*force=*/retired_.size() >= 4 * slots_.size());
    if (sink_.is_open()) sink_ << record.ToJson() << "\n" << std::flush;
  }
  appended_.fetch_add(1, std::memory_order_relaxed);
  if (overwrote) dropped_.fetch_add(1, std::memory_order_relaxed);
  if (options_.registry != nullptr) {
    options_.registry->counter("server.querylog.appended").Inc();
    if (overwrote) options_.registry->counter("server.querylog.dropped").Inc();
  }
}

void QueryLog::CaptureSlow(SlowQueryProfile profile) {
  const size_t bytes = profile.ByteSize();
  uint64_t evicted = 0;
  size_t bytes_now = 0;
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    profiles_.push_back(std::move(profile));
    profile_bytes_ += bytes;
    while (profile_bytes_ > options_.slow_capture_budget_bytes &&
           !profiles_.empty()) {
      profile_bytes_ -= profiles_.front().ByteSize();
      profiles_.pop_front();
      ++evicted;
    }
    bytes_now = profile_bytes_;
  }
  slow_captured_.fetch_add(1, std::memory_order_relaxed);
  if (evicted > 0) slow_evicted_.fetch_add(evicted, std::memory_order_relaxed);
  if (options_.registry != nullptr) {
    options_.registry->counter("server.querylog.slow_captured").Inc();
    if (evicted > 0) {
      options_.registry->counter("server.querylog.slow_evicted").Inc(evicted);
    }
    options_.registry->gauge("server.querylog.capture_bytes")
        .Set(static_cast<double>(bytes_now));
  }
}

std::vector<std::shared_ptr<const QueryRecord>> QueryLog::Snapshot() const {
  // Lock-free read: one atomic load per slot under the reader guard.
  // Records are immutable once published, so a snapshot taken mid-append
  // sees each slot either before or after its overwrite — never a torn
  // record — and the guard keeps every loaded record un-reclaimed while it
  // is copied out.
  std::vector<std::shared_ptr<const QueryRecord>> out;
  out.reserve(slots_.size());
  {
    ReaderGuard guard(readers_in_flight_);
    for (const auto& slot : slots_) {
      const QueryRecord* rec = slot.load(std::memory_order_seq_cst);
      if (rec != nullptr) out.push_back(std::make_shared<QueryRecord>(*rec));
    }
  }
  // Slots wrap, so slot order is not age order; tickets are monotone in
  // append order per log (the server appends in completion order), but the
  // stable age key across overwrites is the publish epoch — sort by it,
  // breaking ties (failed queries share a publish epoch) by ticket.
  std::sort(out.begin(), out.end(),
            [](const std::shared_ptr<const QueryRecord>& a,
               const std::shared_ptr<const QueryRecord>& b) {
              if (a->publish_epoch != b->publish_epoch) {
                return a->publish_epoch < b->publish_epoch;
              }
              return a->ticket < b->ticket;
            });
  return out;
}

std::shared_ptr<const QueryRecord> QueryLog::Find(uint64_t ticket) const {
  ReaderGuard guard(readers_in_flight_);
  for (const auto& slot : slots_) {
    const QueryRecord* rec = slot.load(std::memory_order_seq_cst);
    if (rec != nullptr && rec->ticket == ticket) {
      return std::make_shared<QueryRecord>(*rec);
    }
  }
  return nullptr;
}

std::optional<SlowQueryProfile> QueryLog::FindProfile(uint64_t ticket) const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  // Newest first: if a ticket somehow repeats, prefer the latest capture.
  for (auto it = profiles_.rbegin(); it != profiles_.rend(); ++it) {
    if (it->ticket == ticket) return *it;
  }
  return std::nullopt;
}

QueryLog::Stats QueryLog::stats() const {
  Stats s;
  s.appended = appended_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.slow_captured = slow_captured_.load(std::memory_order_relaxed);
  s.slow_evicted = slow_evicted_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    s.capture_bytes = profile_bytes_;
  }
  return s;
}

}  // namespace opd::obs
