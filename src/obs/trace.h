// Query-lifecycle tracing: RAII spans recorded into a per-query Trace that
// serializes to Chrome trace_event JSON (chrome://tracing, Perfetto).
//
// Span taxonomy (see DESIGN.md "Observability"):
//   query -> rewrite -> round                    (search side)
//   query -> job -> map|partition|reduce -> task (execution side)
//
// Determinism contract: span *structure* (ids, parents, names, order) is
// identical for every thread count and bucket count — only durations and
// timestamps vary. Ids are therefore only allocated on serial code paths;
// parallel task waves pre-allocate a contiguous id block before the wave
// starts (`TracedParallelFor`) so task i always gets the same id.
//
// Disabled tracing is near-zero cost: every entry point takes a `Trace*`
// and a null trace reduces spans to an inert pointer check.

#ifndef OPD_OBS_TRACE_H_
#define OPD_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"

namespace opd::obs {

/// One finished span. `args` values are pre-encoded JSON (numbers raw,
/// strings quoted/escaped), so serialization is a plain splice.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent = 0;  // 0 = root
  std::string name;
  std::string cat;
  double start_us = 0;
  double dur_us = 0;
  /// Chrome "tid" lane: 0 for serial spans, 1 + task index for task spans
  /// (keeps concurrent tasks on separate tracks in the viewer). Lanes are
  /// derived from ids/indices, never from real thread identity, so they are
  /// deterministic.
  uint32_t lane = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

/// \brief Thread-safe recorder for one query's spans.
class Trace {
 public:
  Trace();

  /// Reserves `n` consecutive span ids and returns the first. Call only from
  /// serial code (before a parallel wave) to keep ids deterministic.
  uint64_t AllocSpanIds(uint64_t n);

  /// Appends a finished span (thread-safe).
  void Record(SpanRecord rec);

  /// Microseconds since this trace's epoch.
  double NowUs() const;

  size_t size() const;

  /// All spans sorted by id — the canonical (thread-count invariant) order.
  std::vector<SpanRecord> Sorted() const;

  /// Full Chrome trace_event document: {"traceEvents":[...]}.
  std::string ToChromeJson() const;

  /// Appends this trace's events (without the surrounding document) as
  /// comma-separated trace_event objects — lets callers merge several
  /// traces into one file.
  void AppendEventsJson(std::string* out, bool* first) const;

  /// One "id parent name" line per span in id order; equal across thread
  /// counts by the determinism contract (durations are excluded).
  std::string StructureString() const;

 private:
  mutable std::mutex mu_;
  std::atomic<uint64_t> next_id_{1};
  std::vector<SpanRecord> spans_;
  std::chrono::steady_clock::time_point epoch_;
};

/// \brief RAII span: records itself into the trace when destroyed (or on
/// End()). A default-constructed or null-trace span is inert.
class TraceSpan {
 public:
  TraceSpan() = default;
  /// Opens a span with a freshly allocated id. Serial code paths only.
  TraceSpan(Trace* trace, uint64_t parent, std::string name,
            std::string cat = "");

  /// Opens a span over a pre-allocated id (parallel task waves).
  static TraceSpan Adopt(Trace* trace, uint64_t id, uint64_t parent,
                         std::string name, std::string cat = "",
                         uint32_t lane = 0);

  TraceSpan(TraceSpan&& other) noexcept;
  TraceSpan& operator=(TraceSpan&& other) noexcept;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() { End(); }

  /// Records the span now (idempotent).
  void End();

  uint64_t id() const { return rec_.id; }
  explicit operator bool() const { return trace_ != nullptr; }

  void AddArg(std::string key, std::string_view value);  // JSON string
  void AddArg(std::string key, double value);
  void AddArg(std::string key, int64_t value);
  void AddArg(std::string key, uint64_t value);
  void AddArg(std::string key, bool value);

 private:
  TraceSpan(Trace* trace, SpanRecord rec) : trace_(trace), rec_(std::move(rec)) {}

  Trace* trace_ = nullptr;
  SpanRecord rec_;
};

/// ParallelFor with one "task" span per index. The id block is allocated
/// before the wave, so span structure is identical at any thread count.
/// With a null/disabled trace this is exactly ParallelFor.
Status TracedParallelFor(ThreadPool* pool, size_t n, Trace* trace,
                         uint64_t parent, const char* task_name,
                         const std::function<Status(size_t)>& fn,
                         double* max_task_seconds = nullptr);

/// Writes the merged Chrome trace_event document of `traces` to `path`.
Status WriteChromeTraceFile(const std::string& path,
                            const std::vector<const Trace*>& traces);

}  // namespace opd::obs

#endif  // OPD_OBS_TRACE_H_
