#include "storage/table.h"

namespace opd::storage {

Status Table::AppendRow(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()) + " for table " + name_);
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

size_t Table::ByteSize() const {
  if (cached_bytes_rows_ == rows_.size() && !rows_.empty()) {
    return cached_bytes_;
  }
  size_t total = 0;
  for (const Row& r : rows_) total += RowByteSize(r);
  cached_bytes_ = total;
  cached_bytes_rows_ = rows_.size();
  return total;
}

double Table::AvgRowBytes() const {
  if (rows_.empty()) return 0.0;
  return static_cast<double>(ByteSize()) / static_cast<double>(rows_.size());
}

Result<Value> Table::Get(size_t row_idx, const std::string& column) const {
  if (row_idx >= rows_.size()) {
    return Status::OutOfRange("row index out of range");
  }
  auto idx = schema_.IndexOf(column);
  if (!idx) return Status::NotFound("no such column: " + column);
  return rows_[row_idx][*idx];
}

}  // namespace opd::storage
