#include "storage/table.h"

#include <algorithm>

namespace opd::storage {

Status Table::AppendRow(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()) + " for table " + name_);
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

size_t Table::ByteSize() const {
  if (cached_bytes_rows_ == rows_.size() && !rows_.empty()) {
    return cached_bytes_;
  }
  size_t total = 0;
  for (const Row& r : rows_) total += RowByteSize(r);
  cached_bytes_ = total;
  cached_bytes_rows_ = rows_.size();
  return total;
}

double Table::AvgRowBytes() const {
  if (rows_.empty()) return 0.0;
  return static_cast<double>(ByteSize()) / static_cast<double>(rows_.size());
}

Result<Value> Table::Get(size_t row_idx, const std::string& column) const {
  if (row_idx >= rows_.size()) {
    return Status::OutOfRange("row index out of range");
  }
  auto idx = schema_.IndexOf(column);
  if (!idx) return Status::NotFound("no such column: " + column);
  return rows_[row_idx][*idx];
}

std::vector<RowRange> SplitRowsByBlockSize(size_t num_rows,
                                           double avg_row_bytes,
                                           uint64_t block_size_bytes) {
  size_t rows_per_split = num_rows;
  if (avg_row_bytes > 0 && block_size_bytes > 0) {
    const double per_block =
        static_cast<double>(block_size_bytes) / avg_row_bytes;
    rows_per_split = per_block < 1.0 ? 1 : static_cast<size_t>(per_block);
  }
  if (rows_per_split == 0) rows_per_split = 1;

  std::vector<RowRange> splits;
  if (num_rows == 0) {
    splits.push_back(RowRange{0, 0});
    return splits;
  }
  splits.reserve(num_rows / rows_per_split + 1);
  for (size_t begin = 0; begin < num_rows; begin += rows_per_split) {
    splits.push_back(RowRange{begin, std::min(begin + rows_per_split,
                                              num_rows)});
  }
  return splits;
}

}  // namespace opd::storage
