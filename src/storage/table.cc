#include "storage/table.h"

#include <algorithm>

namespace opd::storage {

Table Table::FromBatches(std::string name, Schema schema,
                         std::vector<RowBatch> batches) {
  Table t(std::move(name), std::move(schema));
  t.batch_primary_ = true;
  t.rows_ready_ = false;
  t.batch_offsets_.reserve(batches.size());
  for (const RowBatch& b : batches) {
    t.batch_offsets_.push_back(t.batch_num_rows_);
    t.batch_num_rows_ += b.num_rows();
  }
  t.batches_ =
      std::make_shared<const std::vector<RowBatch>>(std::move(batches));
  return t;
}

const std::vector<Row>& Table::rows() const {
  if (batch_primary_) return MaterializedRows();
  return rows_;
}

const std::vector<Row>& Table::MaterializedRows() const {
  std::lock_guard<std::mutex> lock(*lazy_mu_);
  if (rows_ready_) return rows_;
  std::vector<Row> rows;
  rows.reserve(batch_num_rows_);
  for (const RowBatch& b : *batches_) {
    for (size_t r = 0; r < b.num_rows(); ++r) rows.push_back(b.RowAt(r));
  }
  rows_ = std::move(rows);
  rows_ready_ = true;
  return rows_;
}

std::shared_ptr<const std::vector<RowBatch>> Table::ToBatches() const {
  if (batch_primary_) return batches_;
  std::lock_guard<std::mutex> lock(*lazy_mu_);
  if (batches_ != nullptr && batch_cache_rows_ == rows_.size()) {
    return batches_;
  }
  // One table-wide dictionary per string column: every batch of the column
  // interns into (and shares) the same dictionary, so codes are comparable
  // across batches and downstream gathers stay dictionary-encoded.
  std::vector<DictionaryPtr> shared_dicts(schema_.num_columns());
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    if (schema_.columns()[c].type == DataType::kString) {
      shared_dicts[c] = std::make_shared<Dictionary>();
    }
  }
  std::vector<RowBatch> batches;
  batches.reserve(rows_.size() / RowBatch::kDefaultRows + 1);
  if (rows_.empty()) {
    batches.push_back(RowBatch::FromRows(schema_, rows_, 0, 0, &shared_dicts));
  } else {
    for (size_t begin = 0; begin < rows_.size();
         begin += RowBatch::kDefaultRows) {
      batches.push_back(RowBatch::FromRows(
          schema_, rows_, begin,
          std::min(begin + RowBatch::kDefaultRows, rows_.size()),
          &shared_dicts));
    }
  }
  batches_ =
      std::make_shared<const std::vector<RowBatch>>(std::move(batches));
  batch_cache_rows_ = rows_.size();
  return batches_;
}

Status Table::AppendRow(Row row) {
  if (batch_primary_) {
    return Status::InvalidArgument(
        "AppendRow on batch-primary table " + name_ +
        " (batch tables are sealed at construction)");
  }
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()) + " for table " + name_);
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

size_t Table::ByteSize() const {
  if (batch_primary_) {
    std::lock_guard<std::mutex> lock(*lazy_mu_);
    if (!bytes_ready_) {
      size_t total = 0;
      for (const RowBatch& b : *batches_) total += b.ByteSize();
      cached_bytes_ = total;
      bytes_ready_ = true;
    }
    return cached_bytes_;
  }
  if (cached_bytes_rows_ == rows_.size() && !rows_.empty()) {
    return cached_bytes_;
  }
  size_t total = 0;
  for (const Row& r : rows_) total += RowByteSize(r);
  cached_bytes_ = total;
  cached_bytes_rows_ = rows_.size();
  return total;
}

double Table::AvgRowBytes() const {
  const size_t n = num_rows();
  if (n == 0) return 0.0;
  return static_cast<double>(ByteSize()) / static_cast<double>(n);
}

Result<Value> Table::Get(size_t row_idx, const std::string& column) const {
  if (row_idx >= num_rows()) {
    return Status::OutOfRange("row index out of range");
  }
  auto idx = schema_.IndexOf(column);
  if (!idx) return Status::NotFound("no such column: " + column);
  if (batch_primary_) {
    // Locate the batch covering row_idx (offsets are ascending).
    auto it = std::upper_bound(batch_offsets_.begin(), batch_offsets_.end(),
                               row_idx);
    const size_t b = static_cast<size_t>(it - batch_offsets_.begin()) - 1;
    return (*batches_)[b].column(*idx).GetValue(row_idx - batch_offsets_[b]);
  }
  return rows_[row_idx][*idx];
}

std::vector<RowRange> SplitRowsByBlockSize(size_t num_rows,
                                           double avg_row_bytes,
                                           uint64_t block_size_bytes) {
  size_t rows_per_split = num_rows;
  if (avg_row_bytes > 0 && block_size_bytes > 0) {
    const double per_block =
        static_cast<double>(block_size_bytes) / avg_row_bytes;
    rows_per_split = per_block < 1.0 ? 1 : static_cast<size_t>(per_block);
  }
  if (rows_per_split == 0) rows_per_split = 1;

  std::vector<RowRange> splits;
  if (num_rows == 0) {
    splits.push_back(RowRange{0, 0});
    return splits;
  }
  splits.reserve(num_rows / rows_per_split + 1);
  for (size_t begin = 0; begin < num_rows; begin += rows_per_split) {
    splits.push_back(RowRange{begin, std::min(begin + rows_per_split,
                                              num_rows)});
  }
  return splits;
}

}  // namespace opd::storage
