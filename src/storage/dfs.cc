#include "storage/dfs.h"

#include "common/string_util.h"
#include "obs/metrics.h"

namespace opd::storage {

Status Dfs::Write(const std::string& path, TablePtr table) {
  std::lock_guard<std::mutex> lock(mu_);
  if (table == nullptr) {
    return Status::InvalidArgument("cannot write null table to " + path);
  }
  if (files_.count(path) > 0) {
    return Status::AlreadyExists("file exists: " + path);
  }
  uint64_t size = table->ByteSize();
  if (capacity_ != 0 && used_ + size > capacity_) {
    return Status::OutOfRange("dfs capacity exceeded writing " + path);
  }
  files_[path] = std::move(table);
  used_ += size;
  metrics_.bytes_written += size;
  metrics_.files_written += 1;
  auto& registry = obs::MetricRegistry::Global();
  registry.counter("dfs.bytes_written").Inc(size);
  registry.counter("dfs.files_written").Inc();
  registry.gauge("dfs.used_bytes").Set(static_cast<double>(used_));
  return Status::OK();
}

Result<TablePtr> Dfs::Read(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  metrics_.bytes_read += it->second->ByteSize();
  obs::MetricRegistry::Global().counter("dfs.bytes_read")
      .Inc(it->second->ByteSize());
  return it->second;
}

Result<TablePtr> Dfs::Peek(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return it->second;
}

bool Dfs::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

Status Dfs::Delete(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  used_ -= it->second->ByteSize();
  files_.erase(it);
  metrics_.files_deleted += 1;
  auto& registry = obs::MetricRegistry::Global();
  registry.counter("dfs.files_deleted").Inc();
  registry.gauge("dfs.used_bytes").Set(static_cast<double>(used_));
  return Status::OK();
}

size_t Dfs::DeletePrefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (auto it = files_.begin(); it != files_.end();) {
    if (StartsWith(it->first, prefix)) {
      used_ -= it->second->ByteSize();
      it = files_.erase(it);
      metrics_.files_deleted += 1;
      ++count;
    } else {
      ++it;
    }
  }
  if (count > 0) {
    auto& registry = obs::MetricRegistry::Global();
    registry.counter("dfs.files_deleted").Inc(count);
    registry.gauge("dfs.used_bytes").Set(static_cast<double>(used_));
  }
  return count;
}

std::vector<std::string> Dfs::ListPaths() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, _] : files_) out.push_back(path);
  return out;
}

}  // namespace opd::storage
