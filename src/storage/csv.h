// CSV import/export for tables — the practical on-ramp for users bringing
// their own logs into the system (the paper's analysts pointed Hive at raw
// log files; this is the equivalent for the simulator).

#ifndef OPD_STORAGE_CSV_H_
#define OPD_STORAGE_CSV_H_

#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace opd::storage {

struct CsvOptions {
  char delimiter = ',';
  /// Emit / expect a header row of column names.
  bool header = true;
  /// The spelling of NULL cells.
  std::string null_token = "";
};

/// Serializes `table` to CSV text. Strings containing the delimiter, quotes
/// or newlines are double-quoted with "" escaping.
std::string ToCsv(const Table& table, const CsvOptions& options = {});

/// \brief Parses CSV text into a table with the given schema.
///
/// With `options.header`, the first row must name exactly the schema's
/// columns (in order). Cells are converted to the column type; conversion
/// failures are errors with row numbers.
Result<Table> FromCsv(const std::string& text, const Schema& schema,
                      const std::string& table_name,
                      const CsvOptions& options = {});

}  // namespace opd::storage

#endif  // OPD_STORAGE_CSV_H_
