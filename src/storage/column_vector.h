// Columnar cell storage: one typed, contiguous vector per column with a
// validity bitmap and dictionary-encoded strings.
//
// A ColumnVector is the unit the vectorized engine kernels operate on. For
// the common case (every non-null cell matches the column's declared
// DataType) cells live in flat native arrays — int64/double values are
// stored directly, strings are interned into a per-column dictionary and
// represented by 32-bit codes. Cell hashes and byte sizes are defined to be
// *identical* to the row representation's `Value::Hash()` / `Value::
// ByteSize()`, so shuffle bucketing, metrics, and determinism contracts are
// unchanged whether a table flows through the row or the batch path.
//
// Dictionaries are shared, refcounted objects (`Dictionary`). All batches of
// one table column built by `Table::ToBatches()` share a single table-wide
// dictionary, and gathering a subset of a string column (filter selections,
// join output assembly) shares the source dictionary instead of re-interning
// the surviving strings — string data stays dictionary-encoded *across*
// operators; only the 32-bit codes move. A column that merely references a
// shared dictionary never mutates it: interning a string that is new to a
// shared, non-owned dictionary first clones it (copy-on-write), so sealed
// columns on other threads are never affected.
//
// Rows are dynamically typed, so a column may legally contain a cell whose
// type differs from the schema's declared type. Such a column transparently
// falls back to a boxed `std::vector<Value>` lane ("variant lane"); all
// accessors keep working, only the native fast paths switch off.

#ifndef OPD_STORAGE_COLUMN_VECTOR_H_
#define OPD_STORAGE_COLUMN_VECTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/value.h"

namespace opd::storage {

class ColumnVector;

/// \brief An append-only string dictionary shared between columns.
///
/// Entry codes are stable once assigned. Hashes and byte lengths are
/// precomputed per entry so cell hashing and byte accounting never touch
/// the string bytes again.
struct Dictionary {
  std::vector<std::string> entries;
  std::vector<uint64_t> hashes;   // Value::Hash of each entry
  std::vector<size_t> lengths;    // byte length of each entry
  std::unordered_map<std::string, uint32_t> lookup;

  size_t size() const { return entries.size(); }

  /// Returns the code of `s`, appending a new entry if absent.
  uint32_t Intern(const std::string& s);

  /// Deep copy (used for copy-on-write of shared dictionaries).
  std::shared_ptr<Dictionary> Clone() const;
};

using DictionaryPtr = std::shared_ptr<Dictionary>;

/// Memoized code translation between two string dictionaries, used when
/// gathering cells from a source column into a destination column (filter
/// selection, join output assembly). Keyed by the source *dictionary* (not
/// the column), so the memo survives across the batches of one table, which
/// all share a dictionary. Each distinct source code is resolved against the
/// destination dictionary at most once.
struct DictRemap {
  const Dictionary* src = nullptr;
  std::vector<int32_t> codes;  // src code -> dst code, -1 = not yet mapped
};

/// \brief Typed contiguous storage for one column of a RowBatch.
class ColumnVector {
 public:
  explicit ColumnVector(DataType type) : type_(type) {}

  /// Creates a string column that appends into `dict` without copy-on-write.
  /// For serial builders that intentionally grow one dictionary across many
  /// columns (Table::ToBatches building a table-wide dictionary); the caller
  /// must guarantee no other thread reads `dict` while building.
  static ColumnVector StringWithSharedDict(DictionaryPtr dict);

  DataType declared_type() const { return type_; }
  size_t size() const { return size_; }
  size_t null_count() const { return null_count_; }
  /// True while every non-null cell matches the declared type (native
  /// arrays in use); false once the column fell back to the variant lane.
  bool is_native() const { return native_; }

  void Reserve(size_t n);

  /// Appends a cell. Null values set the validity bit only; a non-null
  /// value whose type mismatches the declared type demotes the column to
  /// the variant lane (existing cells are re-boxed).
  void Append(const Value& v);
  void AppendNull();

  /// Appends cell `i` of `src`. When both columns are native strings a
  /// `remap` memoizes dictionary code translation across calls. A string
  /// column with no dictionary of its own adopts `src`'s shared dictionary
  /// (no interning); once adopted, cells from any column sharing that
  /// dictionary append as bare code copies.
  void AppendFrom(const ColumnVector& src, size_t i, DictRemap* remap);

  /// Gathers the cells at `sel[0..n)` (ascending row indices) into a new
  /// column. Typed lanes copy natively; string columns share this column's
  /// dictionary (codes are gathered, strings are not touched); variant
  /// columns fall back to boxed appends. Byte-identical to appending
  /// `GetValue(sel[k])` for each k.
  std::shared_ptr<ColumnVector> GatherTo(const uint32_t* sel, size_t n) const;

  bool IsNull(size_t i) const { return !ValidBit(i); }

  /// Reconstructs the cell as a row Value — exact round-trip of what was
  /// appended (bit-identical doubles, byte-identical strings).
  Value GetValue(size_t i) const;

  /// Hash of cell `i`, equal to `GetValue(i).Hash()`. String hashes are
  /// computed once per distinct dictionary entry.
  uint64_t HashAt(size_t i) const;

  /// Serialized width of cell `i`, equal to `GetValue(i).ByteSize()`.
  size_t CellByteSize(size_t i) const;

  /// Sum of all cells' byte sizes (row-representation-identical).
  size_t ByteSize() const;

  // -- Native accessors (valid only when is_native() and the declared type
  //    matches; null cells hold zero placeholders in the arrays). --
  const int64_t* ints() const { return ints_.data(); }
  const double* doubles() const { return doubles_.data(); }
  const uint8_t* bools() const { return bools_.data(); }
  uint32_t code_at(size_t i) const { return codes_[i]; }
  const uint32_t* codes() const { return codes_.data(); }
  const std::string& dict_entry(uint32_t code) const {
    return dict_->entries[code];
  }
  size_t dict_size() const { return dict_ == nullptr ? 0 : dict_->size(); }
  const std::string& string_at(size_t i) const {
    return dict_->entries[codes_[i]];
  }
  /// The shared dictionary (null until a string was appended). Columns
  /// sharing a dictionary compare equal codes as equal strings.
  const DictionaryPtr& dict() const { return dict_; }
  /// Validity bitmap words (bit i set = cell i non-null); may be read
  /// directly by kernels. Valid for the first `size()` bits.
  const uint64_t* valid_words() const { return valid_.data(); }

 private:
  bool ValidBit(size_t i) const {
    return (valid_[i >> 6] >> (i & 63)) & 1ULL;
  }
  void PushValidBit(bool valid);
  uint32_t Intern(const std::string& s);
  /// Clones a shared, non-owned dictionary before first mutation.
  void EnsureOwnedDict();
  /// Re-boxes every cell into the variant lane and drops native arrays.
  void DemoteToVariant();

  DataType type_;
  bool native_ = true;
  size_t size_ = 0;
  size_t null_count_ = 0;
  std::vector<uint64_t> valid_;  // bit i set = cell i non-null

  // Exactly one of these lanes is populated, per declared_type() (or the
  // variant lane after demotion).
  std::vector<uint8_t> bools_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint32_t> codes_;
  // Shared string dictionary; owns_dict_ is true when this column may
  // append entries in place (it created the dictionary, or was built via
  // StringWithSharedDict). A non-owned dictionary is cloned before any
  // mutation (copy-on-write).
  DictionaryPtr dict_;
  bool owns_dict_ = false;
  std::vector<Value> variant_;
};

using ColumnVectorPtr = std::shared_ptr<ColumnVector>;

}  // namespace opd::storage

#endif  // OPD_STORAGE_COLUMN_VECTOR_H_
