#include "storage/row_batch.h"

#include "common/hash.h"
#include "storage/table.h"

namespace opd::storage {

RowBatch RowBatch::FromRows(const Schema& schema, const std::vector<Row>& rows,
                            size_t begin, size_t end,
                            const std::vector<DictionaryPtr>* shared_dicts) {
  std::vector<ColumnVectorPtr> columns;
  columns.reserve(schema.num_columns());
  size_t c = 0;
  for (const Column& col : schema.columns()) {
    ColumnVectorPtr cv;
    if (shared_dicts != nullptr && col.type == DataType::kString &&
        (*shared_dicts)[c] != nullptr) {
      cv = std::make_shared<ColumnVector>(
          ColumnVector::StringWithSharedDict((*shared_dicts)[c]));
    } else {
      cv = std::make_shared<ColumnVector>(col.type);
    }
    cv->Reserve(end - begin);
    columns.push_back(std::move(cv));
    ++c;
  }
  for (size_t r = begin; r < end; ++r) {
    const Row& row = rows[r];
    for (size_t c = 0; c < columns.size(); ++c) columns[c]->Append(row[c]);
  }
  return RowBatch(std::move(columns), end - begin);
}

Row RowBatch::RowAt(size_t i) const {
  Row row;
  row.reserve(columns_.size());
  for (const ColumnVectorPtr& col : columns_) row.push_back(col->GetValue(i));
  return row;
}

uint64_t RowBatch::HashRowAt(size_t i) const {
  uint64_t h = 0xcbf29ce484222325ULL;  // RowHash seed
  for (const ColumnVectorPtr& col : columns_) HashCombine(&h, col->HashAt(i));
  return h;
}

uint64_t RowBatch::HashKeysAt(size_t i, const std::vector<size_t>& cols) const {
  uint64_t h = 0xcbf29ce484222325ULL;  // RowHash seed
  for (size_t c : cols) HashCombine(&h, columns_[c]->HashAt(i));
  return h;
}

Status RowBatch::Materialize(Table* out) const {
  for (size_t r = 0; r < num_rows_; ++r) {
    OPD_RETURN_NOT_OK(out->AppendRow(RowAt(r)));
  }
  return Status::OK();
}

RowBatch RowBatch::Project(const std::vector<size_t>& cols) const {
  std::vector<ColumnVectorPtr> out;
  out.reserve(cols.size());
  for (size_t c : cols) out.push_back(columns_[c]);
  return RowBatch(std::move(out), num_rows_);
}

RowBatch RowBatch::Gather(const std::vector<uint32_t>& sel) const {
  if (sel.size() == num_rows_) return *this;  // shares columns, no copy
  std::vector<ColumnVectorPtr> out;
  out.reserve(columns_.size());
  for (const ColumnVectorPtr& src : columns_) {
    out.push_back(src->GatherTo(sel.data(), sel.size()));
  }
  return RowBatch(std::move(out), sel.size());
}

size_t RowBatch::ByteSize() const {
  size_t total = 0;
  for (const ColumnVectorPtr& col : columns_) total += col->ByteSize();
  return total;
}

}  // namespace opd::storage
