#include "storage/value.h"

#include <cmath>

#include "common/hash.h"

namespace opd::storage {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kNull:
      return "null";
    case DataType::kBool:
      return "bool";
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

DataType Value::type() const {
  switch (v_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kBool;
    case 2:
      return DataType::kInt64;
    case 3:
      return DataType::kDouble;
    case 4:
      return DataType::kString;
  }
  return DataType::kNull;
}

double Value::ToDouble() const {
  switch (type()) {
    case DataType::kNull:
      return 0.0;
    case DataType::kBool:
      return as_bool() ? 1.0 : 0.0;
    case DataType::kInt64:
      return static_cast<double>(as_int64());
    case DataType::kDouble:
      return as_double();
    case DataType::kString:
      return 0.0;
  }
  return 0.0;
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return as_bool() ? "true" : "false";
    case DataType::kInt64:
      return std::to_string(as_int64());
    case DataType::kDouble: {
      std::string s = std::to_string(as_double());
      return s;
    }
    case DataType::kString:
      return as_string();
  }
  return "NULL";
}

size_t Value::ByteSize() const {
  switch (type()) {
    case DataType::kNull:
      return 1;
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
      return 8;
    case DataType::kDouble:
      return 8;
    case DataType::kString:
      return as_string().size() + 4;  // length prefix
  }
  return 1;
}

namespace {
// Numeric comparison when both sides are int64/double/bool.
bool IsNumeric(DataType t) {
  return t == DataType::kBool || t == DataType::kInt64 ||
         t == DataType::kDouble;
}
}  // namespace

bool Value::operator==(const Value& other) const {
  DataType a = type(), b = other.type();
  if (IsNumeric(a) && IsNumeric(b)) {
    return ToDouble() == other.ToDouble();
  }
  return v_ == other.v_;
}

bool Value::operator<(const Value& other) const {
  DataType a = type(), b = other.type();
  if (IsNumeric(a) && IsNumeric(b)) {
    return ToDouble() < other.ToDouble();
  }
  if (a != b) return static_cast<int>(a) < static_cast<int>(b);
  return v_ < other.v_;
}

uint64_t Value::Hash() const {
  switch (type()) {
    case DataType::kNull:
      return 0x6e756c6cULL;
    case DataType::kBool:
    case DataType::kInt64:
    case DataType::kDouble: {
      // Hash through the numeric value so 1 == 1.0 hash-equal.
      double d = ToDouble();
      if (d == 0.0) d = 0.0;  // normalize -0.0
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(d));
      uint64_t h = 0x123456789abcdefULL;
      HashCombine(&h, bits);
      return h;
    }
    case DataType::kString:
      return HashString(as_string());
  }
  return 0;
}

size_t RowByteSize(const Row& row) {
  size_t total = 0;
  for (const Value& v : row) total += v.ByteSize();
  return total;
}

}  // namespace opd::storage
