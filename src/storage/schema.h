// Relational schema: ordered, named, typed columns.

#ifndef OPD_STORAGE_SCHEMA_H_
#define OPD_STORAGE_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace opd::storage {

/// A single named, typed column.
struct Column {
  std::string name;
  DataType type = DataType::kNull;

  bool operator==(const Column& other) const = default;
};

/// \brief An ordered list of columns with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name`, or nullopt.
  std::optional<size_t> IndexOf(const std::string& name) const;

  /// True if a column with this name exists.
  bool Has(const std::string& name) const { return IndexOf(name).has_value(); }

  /// Appends a column; fails if the name already exists.
  Status AddColumn(Column col);

  /// Returns a schema restricted to `names` in the given order; fails on a
  /// missing name.
  Result<Schema> Project(const std::vector<std::string>& names) const;

  /// "name:type, name:type, ..." rendering.
  std::string ToString() const;

  bool operator==(const Schema& other) const = default;

 private:
  std::vector<Column> columns_;
};

}  // namespace opd::storage

#endif  // OPD_STORAGE_SCHEMA_H_
