// Append-only shuffle buffer for morsel-driven pipelined execution
// (DESIGN.md "Parallel execution model").
//
// The buffer is a `num_producers x num_buckets` grid of independent
// append-only arenas: fused map tasks partition rows as they produce them,
// each task writing only its own row of slots — no shared hash map, no
// lock, no full map-output table materialized between the map and reduce
// sides of a shuffle.
//
// Determinism: a bucket is consumed by iterating its slots in ascending
// producer order. Producers are assigned contiguous, ascending input splits
// (storage::SplitRowsByBlockSize / batch order), so the concatenation of a
// bucket's chunks reproduces the global input row order — exactly the order
// the phased engine's serial scatter produced — for any producer, bucket, or
// thread count.

#ifndef OPD_STORAGE_PARTITION_BUFFER_H_
#define OPD_STORAGE_PARTITION_BUFFER_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace opd::storage {

/// \brief Thread-local-per-producer partition buffer.
///
/// Concurrency contract: producer `p` may append to its own slots while
/// other producers append to theirs; a bucket may be read once every
/// producer that feeds it has finished (the engine enforces this with a
/// per-bucket countdown latch). Slots are padded to cache lines so two
/// producers never contend on adjacent slot headers.
template <typename T>
class PartitionBuffer {
 public:
  PartitionBuffer(size_t num_producers, size_t num_buckets)
      : num_producers_(num_producers),
        num_buckets_(std::max<size_t>(num_buckets, 1)),
        slots_(num_producers_ * num_buckets_) {}

  size_t num_producers() const { return num_producers_; }
  size_t num_buckets() const { return num_buckets_; }

  /// Pre-sizes producer `p`'s slots for roughly `rows` appends spread
  /// evenly over the buckets (the same heuristic the phased scatter used).
  void ReserveProducer(size_t p, size_t rows) {
    const size_t per_bucket = rows / num_buckets_ + 1;
    for (size_t b = 0; b < num_buckets_; ++b) {
      slot(p, b).reserve(per_bucket);
    }
  }

  /// Appends one element to producer `p`'s arena for bucket `b`.
  void Append(size_t p, size_t b, T value) {
    slot(p, b).push_back(std::move(value));
  }

  /// Total elements landed in bucket `b` across all producers.
  size_t BucketSize(size_t b) const {
    size_t total = 0;
    for (size_t p = 0; p < num_producers_; ++p) total += slot(p, b).size();
    return total;
  }

  /// Applies `fn` to every element of bucket `b`, producer chunks in
  /// ascending producer order (= global input row order, see file comment).
  template <typename Fn>
  void ForEachInBucket(size_t b, Fn&& fn) const {
    for (size_t p = 0; p < num_producers_; ++p) {
      for (const T& v : slot(p, b)) fn(v);
    }
  }

 private:
  // One arena per (producer, bucket); the alignment keeps concurrent
  // producers' vector headers (size/capacity updates on push_back) off each
  // other's cache lines.
  struct alignas(64) Slot {
    std::vector<T> items;
  };

  std::vector<T>& slot(size_t p, size_t b) {
    return slots_[p * num_buckets_ + b].items;
  }
  const std::vector<T>& slot(size_t p, size_t b) const {
    return slots_[p * num_buckets_ + b].items;
  }

  size_t num_producers_;
  size_t num_buckets_;
  std::vector<Slot> slots_;
};

}  // namespace opd::storage

#endif  // OPD_STORAGE_PARTITION_BUFFER_H_
