#include "storage/column_vector.h"

#include <cstring>

#include "common/hash.h"

namespace opd::storage {

namespace {

// Hash of a numeric cell through its double value — the exact recipe of
// `Value::Hash()` for bool/int64/double so that row and batch hashes agree.
uint64_t NumericHash(double d) {
  if (d == 0.0) d = 0.0;  // normalize -0.0 to +0.0
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(d));
  uint64_t h = 0x123456789abcdefULL;
  HashCombine(&h, bits);
  return h;
}

constexpr uint64_t kNullHash = 0x6e756c6cULL;  // Value::Hash() of null

}  // namespace

void ColumnVector::Reserve(size_t n) {
  valid_.reserve((n >> 6) + 1);
  if (!native_) {
    variant_.reserve(n);
    return;
  }
  switch (type_) {
    case DataType::kNull:
      break;
    case DataType::kBool:
      bools_.reserve(n);
      break;
    case DataType::kInt64:
      ints_.reserve(n);
      break;
    case DataType::kDouble:
      doubles_.reserve(n);
      break;
    case DataType::kString:
      codes_.reserve(n);
      break;
  }
}

void ColumnVector::PushValidBit(bool valid) {
  const size_t word = size_ >> 6;
  if (word >= valid_.size()) valid_.push_back(0);
  if (valid) valid_[word] |= 1ULL << (size_ & 63);
  ++size_;
  if (!valid) ++null_count_;
}

uint32_t ColumnVector::Intern(const std::string& s) {
  auto [it, inserted] =
      dict_lookup_.try_emplace(s, static_cast<uint32_t>(dict_.size()));
  if (inserted) {
    dict_.push_back(s);
    dict_hashes_.push_back(HashString(s));
    dict_lengths_.push_back(s.size());
  }
  return it->second;
}

void ColumnVector::DemoteToVariant() {
  std::vector<Value> boxed;
  boxed.reserve(size_);
  for (size_t i = 0; i < size_; ++i) boxed.push_back(GetValue(i));
  variant_ = std::move(boxed);
  native_ = false;
  bools_.clear();
  ints_.clear();
  doubles_.clear();
  codes_.clear();
  dict_.clear();
  dict_hashes_.clear();
  dict_lengths_.clear();
  dict_lookup_.clear();
}

void ColumnVector::AppendNull() {
  if (!native_) {
    variant_.emplace_back();
  } else {
    switch (type_) {
      case DataType::kNull:
        break;
      case DataType::kBool:
        bools_.push_back(0);
        break;
      case DataType::kInt64:
        ints_.push_back(0);
        break;
      case DataType::kDouble:
        doubles_.push_back(0.0);
        break;
      case DataType::kString:
        codes_.push_back(0);
        break;
    }
  }
  PushValidBit(false);
}

void ColumnVector::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  if (native_ && v.type() != type_) DemoteToVariant();
  if (!native_) {
    variant_.push_back(v);
    PushValidBit(true);
    return;
  }
  switch (type_) {
    case DataType::kNull:
      break;  // unreachable: non-null of type kNull demoted above
    case DataType::kBool:
      bools_.push_back(v.as_bool() ? 1 : 0);
      break;
    case DataType::kInt64:
      ints_.push_back(v.as_int64());
      break;
    case DataType::kDouble:
      doubles_.push_back(v.as_double());
      break;
    case DataType::kString:
      codes_.push_back(Intern(v.as_string()));
      break;
  }
  PushValidBit(true);
}

void ColumnVector::AppendFrom(const ColumnVector& src, size_t i,
                              DictRemap* remap) {
  if (src.IsNull(i)) {
    AppendNull();
    return;
  }
  if (!native_ || !src.native_ || src.type_ != type_) {
    Append(src.GetValue(i));
    return;
  }
  switch (type_) {
    case DataType::kNull:
      AppendNull();
      return;
    case DataType::kBool:
      bools_.push_back(src.bools_[i]);
      break;
    case DataType::kInt64:
      ints_.push_back(src.ints_[i]);
      break;
    case DataType::kDouble:
      doubles_.push_back(src.doubles_[i]);
      break;
    case DataType::kString: {
      const uint32_t src_code = src.codes_[i];
      if (remap != nullptr) {
        if (remap->src != &src) {
          remap->src = &src;
          remap->codes.assign(src.dict_.size(), -1);
        }
        int32_t& mapped = remap->codes[src_code];
        if (mapped < 0) {
          mapped = static_cast<int32_t>(Intern(src.dict_[src_code]));
        }
        codes_.push_back(static_cast<uint32_t>(mapped));
      } else {
        codes_.push_back(Intern(src.dict_[src_code]));
      }
      break;
    }
  }
  PushValidBit(true);
}

Value ColumnVector::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null();
  if (!native_) return variant_[i];
  switch (type_) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kBool:
      return Value(bools_[i] != 0);
    case DataType::kInt64:
      return Value(ints_[i]);
    case DataType::kDouble:
      return Value(doubles_[i]);
    case DataType::kString:
      return Value(dict_[codes_[i]]);
  }
  return Value::Null();
}

uint64_t ColumnVector::HashAt(size_t i) const {
  if (IsNull(i)) return kNullHash;
  if (!native_) return variant_[i].Hash();
  switch (type_) {
    case DataType::kNull:
      return kNullHash;
    case DataType::kBool:
      return NumericHash(bools_[i] != 0 ? 1.0 : 0.0);
    case DataType::kInt64:
      return NumericHash(static_cast<double>(ints_[i]));
    case DataType::kDouble:
      return NumericHash(doubles_[i]);
    case DataType::kString:
      return dict_hashes_[codes_[i]];
  }
  return kNullHash;
}

size_t ColumnVector::CellByteSize(size_t i) const {
  if (IsNull(i)) return 1;
  if (!native_) return variant_[i].ByteSize();
  switch (type_) {
    case DataType::kNull:
      return 1;
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
    case DataType::kDouble:
      return 8;
    case DataType::kString:
      return dict_lengths_[codes_[i]] + 4;  // length prefix
  }
  return 1;
}

size_t ColumnVector::ByteSize() const {
  if (!native_) {
    size_t total = 0;
    for (size_t i = 0; i < size_; ++i) total += CellByteSize(i);
    return total;
  }
  switch (type_) {
    case DataType::kNull:
      return size_;
    case DataType::kBool:
      return size_;
    case DataType::kInt64:
    case DataType::kDouble:
      return (size_ - null_count_) * 8 + null_count_;
    case DataType::kString: {
      size_t total = 0;
      for (size_t i = 0; i < size_; ++i) {
        total += IsNull(i) ? 1 : dict_lengths_[codes_[i]] + 4;
      }
      return total;
    }
  }
  return 0;
}

}  // namespace opd::storage
