#include "storage/column_vector.h"

#include <cstring>

#include "common/hash.h"

namespace opd::storage {

namespace {

// Hash of a numeric cell through its double value — the exact recipe of
// `Value::Hash()` for bool/int64/double so that row and batch hashes agree.
uint64_t NumericHash(double d) {
  if (d == 0.0) d = 0.0;  // normalize -0.0 to +0.0
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(d));
  uint64_t h = 0x123456789abcdefULL;
  HashCombine(&h, bits);
  return h;
}

constexpr uint64_t kNullHash = 0x6e756c6cULL;  // Value::Hash() of null

}  // namespace

uint32_t Dictionary::Intern(const std::string& s) {
  auto [it, inserted] =
      lookup.try_emplace(s, static_cast<uint32_t>(entries.size()));
  if (inserted) {
    entries.push_back(s);
    hashes.push_back(HashString(s));
    lengths.push_back(s.size());
  }
  return it->second;
}

DictionaryPtr Dictionary::Clone() const {
  auto copy = std::make_shared<Dictionary>();
  copy->entries = entries;
  copy->hashes = hashes;
  copy->lengths = lengths;
  copy->lookup = lookup;
  return copy;
}

ColumnVector ColumnVector::StringWithSharedDict(DictionaryPtr dict) {
  ColumnVector col(DataType::kString);
  col.dict_ = std::move(dict);
  col.owns_dict_ = true;  // builder contract: serial appends are intended
  return col;
}

void ColumnVector::Reserve(size_t n) {
  valid_.reserve((n >> 6) + 1);
  if (!native_) {
    variant_.reserve(n);
    return;
  }
  switch (type_) {
    case DataType::kNull:
      break;
    case DataType::kBool:
      bools_.reserve(n);
      break;
    case DataType::kInt64:
      ints_.reserve(n);
      break;
    case DataType::kDouble:
      doubles_.reserve(n);
      break;
    case DataType::kString:
      codes_.reserve(n);
      break;
  }
}

void ColumnVector::PushValidBit(bool valid) {
  const size_t word = size_ >> 6;
  if (word >= valid_.size()) valid_.push_back(0);
  if (valid) valid_[word] |= 1ULL << (size_ & 63);
  ++size_;
  if (!valid) ++null_count_;
}

void ColumnVector::EnsureOwnedDict() {
  if (dict_ == nullptr) {
    dict_ = std::make_shared<Dictionary>();
    owns_dict_ = true;
    return;
  }
  if (!owns_dict_) {
    // Copy-on-write: this column only referenced a dictionary built (and
    // possibly still shared) by other columns; never mutate it in place.
    dict_ = dict_->Clone();
    owns_dict_ = true;
  }
}

uint32_t ColumnVector::Intern(const std::string& s) {
  // Interning a string that is already present never mutates, so a shared
  // dictionary can answer it directly without triggering copy-on-write.
  if (dict_ != nullptr && !owns_dict_) {
    auto it = dict_->lookup.find(s);
    if (it != dict_->lookup.end()) return it->second;
  }
  EnsureOwnedDict();
  return dict_->Intern(s);
}

void ColumnVector::DemoteToVariant() {
  std::vector<Value> boxed;
  boxed.reserve(size_);
  for (size_t i = 0; i < size_; ++i) boxed.push_back(GetValue(i));
  variant_ = std::move(boxed);
  native_ = false;
  bools_.clear();
  ints_.clear();
  doubles_.clear();
  codes_.clear();
  dict_.reset();
  owns_dict_ = false;
}

void ColumnVector::AppendNull() {
  if (!native_) {
    variant_.emplace_back();
  } else {
    switch (type_) {
      case DataType::kNull:
        break;
      case DataType::kBool:
        bools_.push_back(0);
        break;
      case DataType::kInt64:
        ints_.push_back(0);
        break;
      case DataType::kDouble:
        doubles_.push_back(0.0);
        break;
      case DataType::kString:
        codes_.push_back(0);
        break;
    }
  }
  PushValidBit(false);
}

void ColumnVector::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  if (native_ && v.type() != type_) DemoteToVariant();
  if (!native_) {
    variant_.push_back(v);
    PushValidBit(true);
    return;
  }
  switch (type_) {
    case DataType::kNull:
      break;  // unreachable: non-null of type kNull demoted above
    case DataType::kBool:
      bools_.push_back(v.as_bool() ? 1 : 0);
      break;
    case DataType::kInt64:
      ints_.push_back(v.as_int64());
      break;
    case DataType::kDouble:
      doubles_.push_back(v.as_double());
      break;
    case DataType::kString:
      codes_.push_back(Intern(v.as_string()));
      break;
  }
  PushValidBit(true);
}

void ColumnVector::AppendFrom(const ColumnVector& src, size_t i,
                              DictRemap* remap) {
  if (src.IsNull(i)) {
    AppendNull();
    return;
  }
  if (!native_ || !src.native_ || src.type_ != type_) {
    Append(src.GetValue(i));
    return;
  }
  switch (type_) {
    case DataType::kNull:
      AppendNull();
      return;
    case DataType::kBool:
      bools_.push_back(src.bools_[i]);
      break;
    case DataType::kInt64:
      ints_.push_back(src.ints_[i]);
      break;
    case DataType::kDouble:
      doubles_.push_back(src.doubles_[i]);
      break;
    case DataType::kString: {
      const uint32_t src_code = src.codes_[i];
      // Dictionary passthrough: an empty string column adopts the source's
      // shared dictionary; afterwards, cells from any column sharing that
      // dictionary append as bare code copies (no hashing, no remap).
      if (dict_ == nullptr && codes_.empty()) {
        dict_ = src.dict_;
        owns_dict_ = false;
      }
      if (dict_ == src.dict_) {
        codes_.push_back(src_code);
        break;
      }
      if (remap != nullptr) {
        if (remap->src != src.dict_.get()) {
          remap->src = src.dict_.get();
          remap->codes.assign(src.dict_->size(), -1);
        }
        int32_t& mapped = remap->codes[src_code];
        if (mapped < 0) {
          mapped = static_cast<int32_t>(Intern(src.dict_->entries[src_code]));
        }
        codes_.push_back(static_cast<uint32_t>(mapped));
      } else {
        codes_.push_back(Intern(src.dict_->entries[src_code]));
      }
      break;
    }
  }
  PushValidBit(true);
}

ColumnVectorPtr ColumnVector::GatherTo(const uint32_t* sel, size_t n) const {
  auto dst = std::make_shared<ColumnVector>(type_);
  if (!native_) {
    // Variant lane: boxed appends reproduce cells exactly.
    dst->Reserve(n);
    for (size_t k = 0; k < n; ++k) dst->AppendFrom(*this, sel[k], nullptr);
    return dst;
  }
  // Native lanes: bulk-copy the selected cells, then rebuild the validity
  // bitmap (null cells keep their zero placeholders by construction).
  switch (type_) {
    case DataType::kNull:
      break;
    case DataType::kBool: {
      dst->bools_.resize(n);
      const uint8_t* v = bools_.data();
      uint8_t* out = dst->bools_.data();
      for (size_t k = 0; k < n; ++k) out[k] = v[sel[k]];
      break;
    }
    case DataType::kInt64: {
      dst->ints_.resize(n);
      const int64_t* v = ints_.data();
      int64_t* out = dst->ints_.data();
      for (size_t k = 0; k < n; ++k) out[k] = v[sel[k]];
      break;
    }
    case DataType::kDouble: {
      dst->doubles_.resize(n);
      const double* v = doubles_.data();
      double* out = dst->doubles_.data();
      for (size_t k = 0; k < n; ++k) out[k] = v[sel[k]];
      break;
    }
    case DataType::kString: {
      // Dictionary passthrough: share the dictionary, gather only codes.
      dst->dict_ = dict_;
      dst->owns_dict_ = false;
      dst->codes_.resize(n);
      const uint32_t* v = codes_.data();
      uint32_t* out = dst->codes_.data();
      for (size_t k = 0; k < n; ++k) out[k] = v[sel[k]];
      break;
    }
  }
  dst->valid_.assign((n >> 6) + 1, 0);
  if (null_count_ == 0) {
    // No-nulls fast path: set all n bits without per-cell probing.
    const size_t full_words = n >> 6;
    for (size_t w = 0; w < full_words; ++w) dst->valid_[w] = ~0ULL;
    if (n & 63) dst->valid_[full_words] = (1ULL << (n & 63)) - 1;
  } else {
    size_t nulls = 0;
    for (size_t k = 0; k < n; ++k) {
      const bool valid = ValidBit(sel[k]);
      dst->valid_[k >> 6] |= static_cast<uint64_t>(valid) << (k & 63);
      nulls += valid ? 0 : 1;
    }
    dst->null_count_ = nulls;
  }
  dst->size_ = n;
  return dst;
}

Value ColumnVector::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null();
  if (!native_) return variant_[i];
  switch (type_) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kBool:
      return Value(bools_[i] != 0);
    case DataType::kInt64:
      return Value(ints_[i]);
    case DataType::kDouble:
      return Value(doubles_[i]);
    case DataType::kString:
      return Value(dict_->entries[codes_[i]]);
  }
  return Value::Null();
}

uint64_t ColumnVector::HashAt(size_t i) const {
  if (IsNull(i)) return kNullHash;
  if (!native_) return variant_[i].Hash();
  switch (type_) {
    case DataType::kNull:
      return kNullHash;
    case DataType::kBool:
      return NumericHash(bools_[i] != 0 ? 1.0 : 0.0);
    case DataType::kInt64:
      return NumericHash(static_cast<double>(ints_[i]));
    case DataType::kDouble:
      return NumericHash(doubles_[i]);
    case DataType::kString:
      return dict_->hashes[codes_[i]];
  }
  return kNullHash;
}

size_t ColumnVector::CellByteSize(size_t i) const {
  if (IsNull(i)) return 1;
  if (!native_) return variant_[i].ByteSize();
  switch (type_) {
    case DataType::kNull:
      return 1;
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
    case DataType::kDouble:
      return 8;
    case DataType::kString:
      return dict_->lengths[codes_[i]] + 4;  // length prefix
  }
  return 1;
}

size_t ColumnVector::ByteSize() const {
  if (!native_) {
    size_t total = 0;
    for (size_t i = 0; i < size_; ++i) total += CellByteSize(i);
    return total;
  }
  switch (type_) {
    case DataType::kNull:
      return size_;
    case DataType::kBool:
      return size_;
    case DataType::kInt64:
    case DataType::kDouble:
      return (size_ - null_count_) * 8 + null_count_;
    case DataType::kString: {
      size_t total = 0;
      const size_t* lengths = dict_ == nullptr ? nullptr : dict_->lengths.data();
      for (size_t i = 0; i < size_; ++i) {
        total += IsNull(i) ? 1 : lengths[codes_[i]] + 4;
      }
      return total;
    }
  }
  return 0;
}

}  // namespace opd::storage
