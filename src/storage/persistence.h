// DFS persistence: saves/loads the simulated file system to a real directory
// tree (one CSV per file plus a manifest with schemas), so long experiment
// setups — generated logs, accumulated opportunistic views — survive across
// process runs.

#ifndef OPD_STORAGE_PERSISTENCE_H_
#define OPD_STORAGE_PERSISTENCE_H_

#include <string>

#include "common/status.h"
#include "storage/dfs.h"

namespace opd::storage {

/// Writes every DFS file as `<directory>/<path>.csv` plus
/// `<directory>/MANIFEST` (one line per file: path|table name|schema).
/// The directory is created; existing contents are overwritten.
Status SaveDfs(const Dfs& dfs, const std::string& directory);

/// Reconstructs a Dfs from a directory written by SaveDfs. I/O metrics start
/// fresh; capacity is unlimited.
Result<Dfs> LoadDfs(const std::string& directory);

/// Serializes a schema as "name:type,name:type". Inverse of ParseSchemaSpec.
std::string SchemaSpec(const Schema& schema);
Result<Schema> ParseSchemaSpec(const std::string& spec);

}  // namespace opd::storage

#endif  // OPD_STORAGE_PERSISTENCE_H_
