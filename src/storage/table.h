// In-memory table: schema plus rows. The unit of data the MR simulator
// reads, shuffles, and materializes.
//
// A table holds its payload in one of two equivalent representations:
//  - row-primary: a vector of `Row`s (AppendRow builders, CSV loads), with
//    a lazily built, cached columnar form available via `ToBatches()`;
//  - batch-primary: a vector of `RowBatch`es (outputs of the vectorized
//    engine kernels, built with `FromBatches()`), with rows materialized
//    lazily on first `rows()` access.
// Both directions reconstruct cells exactly, so every consumer of the
// row API sees byte-identical data regardless of which path produced the
// table.

#ifndef OPD_STORAGE_TABLE_H_
#define OPD_STORAGE_TABLE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/row_batch.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace opd::storage {

/// \brief A named, schema-ful collection of rows.
///
/// Tables are immutable once handed to the Dfs; producers build them with
/// AppendRow (or FromBatches) and then store them.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  /// Builds a batch-primary table: `batches` is the payload, rows are
  /// materialized only if a consumer asks for the row API.
  static Table FromBatches(std::string name, Schema schema,
                           std::vector<RowBatch> batches);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }

  size_t num_rows() const {
    return batch_primary_ ? batch_num_rows_ : rows_.size();
  }
  const Row& row(size_t i) const { return rows()[i]; }

  /// Row payload; materialized (once, thread-safely) from the columnar
  /// payload for batch-primary tables.
  const std::vector<Row>& rows() const;

  /// True when the table's primary payload is columnar.
  bool columnar() const { return batch_primary_; }

  /// Columnar payload: the stored batches for batch-primary tables (zero
  /// cost), or a lazily built, cached batching of the rows (batches of
  /// `RowBatch::kDefaultRows`) for row-primary tables.
  std::shared_ptr<const std::vector<RowBatch>> ToBatches() const;

  /// Appends a row; fails if the arity does not match the schema or the
  /// table is batch-primary (batch tables are sealed at construction).
  Status AppendRow(Row row);

  /// Pre-allocates capacity for `n` rows (builders on hot paths).
  void Reserve(size_t n) { rows_.reserve(n); }

  /// Total approximate serialized size of all rows, in bytes. Computed
  /// column-wise for batch-primary tables — same value by construction.
  size_t ByteSize() const;

  /// Average row width in bytes (0 when empty).
  double AvgRowBytes() const;

  /// Cell accessor by column name; fails on missing column or row index.
  /// Batch-primary tables answer from columns without materializing rows.
  Result<Value> Get(size_t row_idx, const std::string& column) const;

 private:
  const std::vector<Row>& MaterializedRows() const;

  std::string name_;
  Schema schema_;
  mutable std::vector<Row> rows_;
  mutable size_t cached_bytes_ = 0;
  mutable size_t cached_bytes_rows_ = 0;  // row count the cache was taken at

  // Columnar payload (primary or cache) and its bookkeeping.
  mutable std::shared_ptr<const std::vector<RowBatch>> batches_;
  mutable size_t batch_cache_rows_ = 0;  // row count batches_ was built at
  std::vector<size_t> batch_offsets_;    // start row of each batch
  size_t batch_num_rows_ = 0;
  bool batch_primary_ = false;
  mutable bool rows_ready_ = true;  // false until a batch table materializes
  mutable bool bytes_ready_ = false;
  // Guards lazy row<->batch conversion; shared so Table stays movable.
  std::shared_ptr<std::mutex> lazy_mu_ = std::make_shared<std::mutex>();
};

using TablePtr = std::shared_ptr<const Table>;

/// A contiguous [begin, end) slice of row indices — one map-task input split.
struct RowRange {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
};

/// Splits `num_rows` rows of average width `avg_row_bytes` into contiguous
/// ranges of roughly `block_size_bytes` each — the Hadoop rule that one map
/// task processes one DFS block. Always returns at least one range covering
/// all rows (an empty input yields a single empty range so map-only jobs
/// still run their setup/teardown once).
std::vector<RowRange> SplitRowsByBlockSize(size_t num_rows,
                                           double avg_row_bytes,
                                           uint64_t block_size_bytes);

}  // namespace opd::storage

#endif  // OPD_STORAGE_TABLE_H_
