// In-memory table: schema plus rows. The unit of data the MR simulator
// reads, shuffles, and materializes.

#ifndef OPD_STORAGE_TABLE_H_
#define OPD_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace opd::storage {

/// \brief A named, schema-ful collection of rows.
///
/// Tables are immutable once handed to the Dfs; producers build them with
/// AppendRow and then store them.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }

  size_t num_rows() const { return rows_.size(); }
  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Appends a row; fails if the arity does not match the schema.
  Status AppendRow(Row row);

  /// Pre-allocates capacity for `n` rows (builders on hot paths).
  void Reserve(size_t n) { rows_.reserve(n); }

  /// Total approximate serialized size of all rows, in bytes.
  size_t ByteSize() const;

  /// Average row width in bytes (0 when empty).
  double AvgRowBytes() const;

  /// Cell accessor by column name; fails on missing column or row index.
  Result<Value> Get(size_t row_idx, const std::string& column) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  mutable size_t cached_bytes_ = 0;
  mutable size_t cached_bytes_rows_ = 0;  // row count the cache was taken at
};

using TablePtr = std::shared_ptr<const Table>;

/// A contiguous [begin, end) slice of row indices — one map-task input split.
struct RowRange {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
};

/// Splits `num_rows` rows of average width `avg_row_bytes` into contiguous
/// ranges of roughly `block_size_bytes` each — the Hadoop rule that one map
/// task processes one DFS block. Always returns at least one range covering
/// all rows (an empty input yields a single empty range so map-only jobs
/// still run their setup/teardown once).
std::vector<RowRange> SplitRowsByBlockSize(size_t num_rows,
                                           double avg_row_bytes,
                                           uint64_t block_size_bytes);

}  // namespace opd::storage

#endif  // OPD_STORAGE_TABLE_H_
