#include "storage/persistence.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "storage/csv.h"

namespace opd::storage {

namespace fs = std::filesystem;

std::string SchemaSpec(const Schema& schema) {
  std::string out;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out += ",";
    out += schema.column(c).name;
    out += ":";
    out += DataTypeName(schema.column(c).type);
  }
  return out;
}

Result<Schema> ParseSchemaSpec(const std::string& spec) {
  Schema schema;
  if (spec.empty()) return schema;
  for (const std::string& part : SplitString(spec, ',')) {
    auto kv = SplitString(part, ':');
    if (kv.size() != 2) {
      return Status::InvalidArgument("bad schema spec entry: " + part);
    }
    DataType type;
    if (kv[1] == "int64") {
      type = DataType::kInt64;
    } else if (kv[1] == "double") {
      type = DataType::kDouble;
    } else if (kv[1] == "string") {
      type = DataType::kString;
    } else if (kv[1] == "bool") {
      type = DataType::kBool;
    } else if (kv[1] == "null") {
      type = DataType::kNull;
    } else {
      return Status::InvalidArgument("unknown type in schema spec: " + kv[1]);
    }
    OPD_RETURN_NOT_OK(schema.AddColumn(Column{kv[0], type}));
  }
  return schema;
}

Status SaveDfs(const Dfs& dfs, const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::Internal("cannot create directory " + directory + ": " +
                            ec.message());
  }
  std::ofstream manifest(fs::path(directory) / "MANIFEST");
  if (!manifest) {
    return Status::Internal("cannot open manifest in " + directory);
  }
  for (const std::string& path : dfs.ListPaths()) {
    OPD_ASSIGN_OR_RETURN(TablePtr table, dfs.Peek(path));
    fs::path file = fs::path(directory) / (path + ".csv");
    fs::create_directories(file.parent_path(), ec);
    if (ec) {
      return Status::Internal("cannot create " + file.parent_path().string());
    }
    std::ofstream out(file);
    if (!out) return Status::Internal("cannot open " + file.string());
    out << ToCsv(*table);
    manifest << path << "|" << table->name() << "|"
             << SchemaSpec(table->schema()) << "\n";
  }
  return Status::OK();
}

Result<Dfs> LoadDfs(const std::string& directory) {
  std::ifstream manifest(fs::path(directory) / "MANIFEST");
  if (!manifest) {
    return Status::NotFound("no MANIFEST in " + directory);
  }
  Dfs dfs;
  std::string line;
  while (std::getline(manifest, line)) {
    if (line.empty()) continue;
    auto parts = SplitString(line, '|');
    if (parts.size() != 3) {
      return Status::InvalidArgument("bad manifest line: " + line);
    }
    const std::string& path = parts[0];
    OPD_ASSIGN_OR_RETURN(Schema schema, ParseSchemaSpec(parts[2]));
    std::ifstream in(fs::path(directory) / (path + ".csv"));
    if (!in) return Status::NotFound("missing data file for " + path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    OPD_ASSIGN_OR_RETURN(Table table, FromCsv(buffer.str(), schema, parts[1]));
    OPD_RETURN_NOT_OK(
        dfs.Write(path, std::make_shared<const Table>(std::move(table))));
  }
  dfs.ResetMetrics();
  return dfs;
}

}  // namespace opd::storage
