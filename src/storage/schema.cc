#include "storage/schema.h"

namespace opd::storage {

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

Status Schema::AddColumn(Column col) {
  if (Has(col.name)) {
    return Status::AlreadyExists("column already exists: " + col.name);
  }
  columns_.push_back(std::move(col));
  return Status::OK();
}

Result<Schema> Schema::Project(const std::vector<std::string>& names) const {
  std::vector<Column> cols;
  cols.reserve(names.size());
  for (const std::string& n : names) {
    auto idx = IndexOf(n);
    if (!idx) return Status::NotFound("no such column: " + n);
    cols.push_back(columns_[*idx]);
  }
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += DataTypeName(columns_[i].type);
  }
  return out;
}

}  // namespace opd::storage
