// A batch of rows stored column-wise: the unit of work of the vectorized
// engine kernels. Columns are shared_ptrs, so projection is a pointer
// swizzle and a filtered batch whose selection kept every row reuses its
// input's columns without copying.

#ifndef OPD_STORAGE_ROW_BATCH_H_
#define OPD_STORAGE_ROW_BATCH_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "storage/column_vector.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace opd::storage {

class Table;

/// \brief A fixed-row-count group of columns.
class RowBatch {
 public:
  /// Rows per batch produced by `Table::ToBatches()`. Small enough that a
  /// batch's working set stays cache-resident, large enough to amortize
  /// per-batch dispatch.
  static constexpr size_t kDefaultRows = 1024;

  RowBatch() = default;
  RowBatch(std::vector<ColumnVectorPtr> columns, size_t num_rows)
      : columns_(std::move(columns)), num_rows_(num_rows) {}

  /// Builds a batch from rows [begin, end) of `rows` under `schema`.
  /// When `shared_dicts` is given (one slot per schema column, non-null for
  /// string columns), string columns intern into those dictionaries in
  /// place, so every batch of one table shares one dictionary per column.
  /// Caller must build batches serially (Table::ToBatches holds a mutex).
  static RowBatch FromRows(const Schema& schema, const std::vector<Row>& rows,
                           size_t begin, size_t end,
                           const std::vector<DictionaryPtr>* shared_dicts =
                               nullptr);

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  const ColumnVector& column(size_t c) const { return *columns_[c]; }
  const ColumnVectorPtr& column_ptr(size_t c) const { return columns_[c]; }

  /// Reconstructs row `i` — the exact cells that were appended.
  Row RowAt(size_t i) const;

  /// Hash of the full row at `i`, equal to `RowHash()(RowAt(i))`.
  uint64_t HashRowAt(size_t i) const;

  /// Hash of the key row built from `cols` at row `i`, equal to
  /// `RowHash()` over that key row — the shuffle partitioning hash.
  uint64_t HashKeysAt(size_t i, const std::vector<size_t>& cols) const;

  /// Appends every row of this batch to `out` (schema arity must match).
  Status Materialize(Table* out) const;

  /// Zero-copy column swizzle: the returned batch shares this batch's
  /// column vectors, reordered/subset per `cols`.
  RowBatch Project(const std::vector<size_t>& cols) const;

  /// Gathers the rows named by selection vector `sel` (ascending row
  /// indices) into a new batch. A full selection returns a zero-copy view.
  RowBatch Gather(const std::vector<uint32_t>& sel) const;

  /// Sum of all cells' serialized widths (row-representation-identical).
  size_t ByteSize() const;

 private:
  std::vector<ColumnVectorPtr> columns_;
  size_t num_rows_ = 0;
};

}  // namespace opd::storage

#endif  // OPD_STORAGE_ROW_BATCH_H_
