// Simulated distributed file system.
//
// Plays the role HDFS plays in the paper: every MR job's output is
// materialized here, reads/writes are metered in bytes, and a configurable
// capacity budget models the "storage permitting" retention of opportunistic
// views (Section 2.1).

#ifndef OPD_STORAGE_DFS_H_
#define OPD_STORAGE_DFS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace opd::storage {

/// Cumulative I/O counters for the simulated file system.
struct DfsMetrics {
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t files_written = 0;
  uint64_t files_deleted = 0;
};

/// \brief A path -> table store with byte accounting and a capacity budget.
///
/// Thread-safe: concurrent queries of a Server write their job outputs and
/// read shared base tables/views through one Dfs. Tables themselves are
/// immutable (`TablePtr` is shared_ptr-to-const), so handing the pointer out
/// under the lock is all the synchronization a read needs.
class Dfs {
 public:
  /// Default DFS block size. Real HDFS uses 64 MB; the synthetic tables are
  /// laptop-sized stand-ins for the paper's TB-scale logs, so the simulated
  /// block is scaled down to keep the block-per-map-task split rule
  /// producing a realistic number of map tasks per job.
  static constexpr uint64_t kDefaultBlockSizeBytes = 64 * 1024;

  /// `capacity_bytes` of 0 means unlimited.
  explicit Dfs(uint64_t capacity_bytes = 0) : capacity_(capacity_bytes) {}

  /// Movable (factory returns, e.g. persistence::LoadDfs). Only move a Dfs
  /// that is not yet shared with concurrent users.
  Dfs(Dfs&& other) noexcept : capacity_(other.capacity_) {
    std::lock_guard<std::mutex> lock(other.mu_);
    block_size_ = other.block_size_;
    used_ = other.used_;
    files_ = std::move(other.files_);
    metrics_ = other.metrics_;
  }
  Dfs(const Dfs&) = delete;
  Dfs& operator=(const Dfs&) = delete;
  Dfs& operator=(Dfs&&) = delete;

  /// Writes (or fails if present) a table at `path`, metering bytes.
  /// Returns kOutOfRange if the write would exceed capacity.
  Status Write(const std::string& path, TablePtr table);

  /// Reads the table at `path`, metering bytes.
  Result<TablePtr> Read(const std::string& path);

  /// Looks up without metering (metadata access).
  Result<TablePtr> Peek(const std::string& path) const;

  bool Exists(const std::string& path) const;

  /// Removes a file, reclaiming its space.
  Status Delete(const std::string& path);

  /// Removes every file whose path starts with `prefix`; returns the count.
  size_t DeletePrefix(const std::string& prefix);

  /// All stored paths in lexicographic order.
  std::vector<std::string> ListPaths() const;

  uint64_t used_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return used_;
  }
  uint64_t capacity_bytes() const { return capacity_; }

  /// The block size that determines map-task input splits (Hadoop: one map
  /// task per block of the input file).
  uint64_t block_size_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return block_size_;
  }
  void set_block_size_bytes(uint64_t bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    block_size_ = bytes == 0 ? kDefaultBlockSizeBytes : bytes;
  }
  /// A consistent copy of the I/O counters (by value: the counters keep
  /// moving under concurrent traffic).
  DfsMetrics metrics() const {
    std::lock_guard<std::mutex> lock(mu_);
    return metrics_;
  }
  void ResetMetrics() {
    std::lock_guard<std::mutex> lock(mu_);
    metrics_ = DfsMetrics{};
  }

 private:
  mutable std::mutex mu_;
  const uint64_t capacity_;                    // immutable after construction
  uint64_t block_size_ = kDefaultBlockSizeBytes;  // guarded by mu_
  uint64_t used_ = 0;                          // guarded by mu_
  std::map<std::string, TablePtr> files_;      // guarded by mu_
  DfsMetrics metrics_;                         // guarded by mu_
};

}  // namespace opd::storage

#endif  // OPD_STORAGE_DFS_H_
