#include "storage/csv.h"

#include <cstdlib>

namespace opd::storage {

namespace {

bool NeedsQuoting(const std::string& s, char delimiter) {
  for (char c : s) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

std::string QuoteCell(const std::string& s, char delimiter) {
  if (!NeedsQuoting(s, delimiter)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

// Splits one CSV record honoring quotes; advances *pos past the record's
// trailing newline.
std::vector<std::string> ReadRecord(const std::string& text, size_t* pos,
                                    char delimiter) {
  std::vector<std::string> cells;
  std::string cell;
  bool in_quotes = false;
  size_t i = *pos;
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delimiter) {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c == '\n') {
      ++i;
      break;
    } else if (c != '\r') {
      cell.push_back(c);
    }
    ++i;
  }
  cells.push_back(std::move(cell));
  *pos = i;
  return cells;
}

Result<Value> ConvertCell(const std::string& cell, DataType type,
                          const CsvOptions& options, size_t row) {
  if (cell == options.null_token) return Value::Null();
  switch (type) {
    case DataType::kInt64: {
      char* end = nullptr;
      long long v = std::strtoll(cell.c_str(), &end, 10);
      if (end == cell.c_str() || *end != '\0') {
        return Status::InvalidArgument("row " + std::to_string(row) +
                                       ": not an integer: '" + cell + "'");
      }
      return Value(static_cast<int64_t>(v));
    }
    case DataType::kDouble: {
      char* end = nullptr;
      double v = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() || *end != '\0') {
        return Status::InvalidArgument("row " + std::to_string(row) +
                                       ": not a number: '" + cell + "'");
      }
      return Value(v);
    }
    case DataType::kBool:
      if (cell == "true" || cell == "1") return Value(true);
      if (cell == "false" || cell == "0") return Value(false);
      return Status::InvalidArgument("row " + std::to_string(row) +
                                     ": not a bool: '" + cell + "'");
    case DataType::kString:
      return Value(cell);
    case DataType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

}  // namespace

std::string ToCsv(const Table& table, const CsvOptions& options) {
  std::string out;
  const Schema& schema = table.schema();
  if (options.header) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out.push_back(options.delimiter);
      out += QuoteCell(schema.column(c).name, options.delimiter);
    }
    out.push_back('\n');
  }
  for (const Row& row : table.rows()) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out.push_back(options.delimiter);
      if (row[c].is_null()) {
        out += options.null_token;
      } else {
        out += QuoteCell(row[c].ToString(), options.delimiter);
      }
    }
    out.push_back('\n');
  }
  return out;
}

Result<Table> FromCsv(const std::string& text, const Schema& schema,
                      const std::string& table_name,
                      const CsvOptions& options) {
  Table table(table_name, schema);
  size_t pos = 0;
  size_t row_number = 0;
  if (options.header) {
    if (pos >= text.size()) {
      return Status::InvalidArgument("missing header row");
    }
    auto header = ReadRecord(text, &pos, options.delimiter);
    if (header.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          "header has " + std::to_string(header.size()) + " columns, schema " +
          std::to_string(schema.num_columns()));
    }
    for (size_t c = 0; c < header.size(); ++c) {
      if (header[c] != schema.column(c).name) {
        return Status::InvalidArgument("header column " + std::to_string(c) +
                                       " is '" + header[c] + "', expected '" +
                                       schema.column(c).name + "'");
      }
    }
    ++row_number;
  }
  while (pos < text.size()) {
    // A lone newline at EOF is a trailing terminator, not a record (an empty
    // line elsewhere is a record — e.g. a null cell in a 1-column table).
    if (text[pos] == '\n' && pos + 1 == text.size()) break;
    auto cells = ReadRecord(text, &pos, options.delimiter);
    ++row_number;
    if (cells.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          "row " + std::to_string(row_number) + " has " +
          std::to_string(cells.size()) + " cells, schema has " +
          std::to_string(schema.num_columns()));
    }
    Row row;
    row.reserve(cells.size());
    for (size_t c = 0; c < cells.size(); ++c) {
      OPD_ASSIGN_OR_RETURN(
          Value value,
          ConvertCell(cells[c], schema.column(c).type, options, row_number));
      row.push_back(std::move(value));
    }
    OPD_RETURN_NOT_OK(table.AppendRow(std::move(row)));
  }
  return table;
}

}  // namespace opd::storage
