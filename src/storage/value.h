// Runtime value representation for tuples flowing through the simulator.

#ifndef OPD_STORAGE_VALUE_H_
#define OPD_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/hash.h"

namespace opd::storage {

/// Column data types supported by the engine.
enum class DataType {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
};

/// Returns a short lower-case type name ("int64", "string", ...).
const char* DataTypeName(DataType t);

/// \brief A dynamically-typed scalar cell.
///
/// Null is represented by the monostate alternative. Comparison follows SQL
/// semantics except that null compares equal to null (useful for grouping).
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(bool b) : v_(b) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  DataType type() const;

  bool as_bool() const { return std::get<bool>(v_); }
  int64_t as_int64() const { return std::get<int64_t>(v_); }
  double as_double() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }

  /// Numeric coercion: int64/double/bool to double; null -> 0.
  double ToDouble() const;

  /// Renders the value for debugging / CSV export.
  std::string ToString() const;

  /// Approximate serialized width in bytes (used for cost accounting).
  size_t ByteSize() const;

  /// Total order over values: null < bool < int < double < string, and
  /// within-type natural order (int/double compared numerically).
  bool operator==(const Value& other) const;
  bool operator<(const Value& other) const;

  /// Hash consistent with operator==.
  uint64_t Hash() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> v_;
};

/// A tuple of cells; schema lives alongside in the Table.
using Row = std::vector<Value>;

/// Approximate serialized width of a row.
size_t RowByteSize(const Row& row);

/// Hash functor over rows, consistent with `Row`'s operator== (which uses
/// `Value::operator==`, where 1 == 1.0 and null == null). This is the hash
/// used for shuffle partitioning and the hash-based join/agg operators.
struct RowHash {
  size_t operator()(const Row& row) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const Value& v : row) HashCombine(&h, v.Hash());
    return static_cast<size_t>(h);
  }
};

}  // namespace opd::storage

#endif  // OPD_STORAGE_VALUE_H_
