#include "plan/job.h"

#include <map>
#include <set>

namespace opd::plan {

Result<JobDag> JobDag::Build(const Plan& plan) {
  if (plan.empty()) return Status::InvalidArgument("empty plan");
  JobDag dag;
  std::map<const OpNode*, int> index;
  for (const OpNodePtr& node : plan.TopoOrder()) {
    if (node->kind == OpKind::kScan) continue;
    if (!node->annotated) {
      return Status::InvalidArgument("plan must be annotated before Build");
    }
    Job job;
    job.op = node;
    for (const OpNodePtr& child : node->children) {
      if (child->kind == OpKind::kScan) continue;
      auto it = index.find(child.get());
      if (it == index.end()) {
        return Status::Internal("topological order violated in JobDag::Build");
      }
      job.producers.push_back(it->second);
    }
    int id = static_cast<int>(dag.jobs_.size());
    index[node.get()] = id;
    for (int p : job.producers) dag.jobs_[p].consumers.push_back(id);
    dag.jobs_.push_back(std::move(job));
  }
  if (dag.jobs_.empty()) {
    return Status::InvalidArgument("plan contains only scans");
  }
  return dag;
}

double JobDag::TargetCost(size_t i) const {
  // Collect job i and all upstream producers.
  std::set<int> in_target;
  std::vector<int> stack = {static_cast<int>(i)};
  while (!stack.empty()) {
    int j = stack.back();
    stack.pop_back();
    if (!in_target.insert(j).second) continue;
    for (int p : jobs_[j].producers) stack.push_back(p);
  }
  double total = 0;
  for (int j : in_target) total += jobs_[j].op->cost.total_s;
  return total;
}

}  // namespace opd::plan
