// The MR job DAG W (Section 2.2): each non-scan plan node is one MR job that
// materializes its output; the prefix sub-graph ending at job i is the
// rewritable target W_i.

#ifndef OPD_PLAN_JOB_H_
#define OPD_PLAN_JOB_H_

#include <vector>

#include "common/status.h"
#include "plan/plan.h"

namespace opd::plan {

/// One MR job (a non-scan operator node) and its DAG neighborhood.
struct Job {
  OpNodePtr op;
  /// Indices (into JobDag) of the jobs producing this job's inputs. A scan
  /// child contributes no producer (it reads base data directly).
  std::vector<int> producers;
  /// Indices of the jobs consuming this job's output.
  std::vector<int> consumers;
};

/// \brief The job DAG of a plan, topologically ordered (producers first).
/// The sink (job n) computes the query result.
class JobDag {
 public:
  /// Builds the DAG from an *annotated* plan.
  static Result<JobDag> Build(const Plan& plan);

  size_t size() const { return jobs_.size(); }
  const Job& job(size_t i) const { return jobs_[i]; }
  int sink() const { return static_cast<int>(jobs_.size()) - 1; }

  /// The plan computing target W_i (the job's operator subtree).
  Plan TargetPlan(size_t i) const { return Plan(jobs_[i].op); }

  /// COST(W_i): sum of the optimizer cost of job i and all its upstream jobs
  /// (requires the plan to have been costed).
  double TargetCost(size_t i) const;

 private:
  std::vector<Job> jobs_;
};

}  // namespace opd::plan

#endif  // OPD_PLAN_JOB_H_
