// Plan container and builder functions.

#ifndef OPD_PLAN_PLAN_H_
#define OPD_PLAN_PLAN_H_

#include <string>
#include <vector>

#include "plan/operator.h"

namespace opd::plan {

/// \brief A query plan: a DAG of operators with a single sink.
///
/// Shared subtrees (the same OpNodePtr reachable via multiple parents) are
/// permitted and treated as a DAG: topological traversal visits each node
/// once, matching the paper's plan model.
class Plan {
 public:
  Plan() = default;
  explicit Plan(OpNodePtr root, std::string name = "")
      : root_(std::move(root)), name_(std::move(name)) {}

  const OpNodePtr& root() const { return root_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  bool empty() const { return root_ == nullptr; }

  /// Nodes in topological (children-before-parents) order, each exactly once.
  std::vector<OpNodePtr> TopoOrder() const;

  /// Indented multi-line rendering for debugging.
  std::string ToString() const;

 private:
  OpNodePtr root_;
  std::string name_;
};

// --- Builder helpers --------------------------------------------------------

/// Scan of a base table.
OpNodePtr Scan(const std::string& table);
/// Scan of a materialized view.
OpNodePtr ScanView(catalog::ViewId id);
OpNodePtr Project(OpNodePtr child, std::vector<std::string> columns);
OpNodePtr Filter(OpNodePtr child, FilterCond cond);
OpNodePtr Join(OpNodePtr left, OpNodePtr right,
               std::vector<std::pair<std::string, std::string>> pairs);
OpNodePtr GroupBy(OpNodePtr child, std::vector<std::string> keys,
                  std::vector<AggSpec> aggs);
OpNodePtr Udf(OpNodePtr child, const std::string& udf_name,
              udf::Params params = {});

}  // namespace opd::plan

#endif  // OPD_PLAN_PLAN_H_
