// Plan annotation (Section 3.2): computes the (A, F, K) annotation, aligned
// output attributes, and output schema of every node in a plan, bottom-up.
//
// The same attribute-construction helpers are used by the rewriter when it
// replays compensation operators symbolically, guaranteeing that identical
// computations yield identical attribute signatures.

#ifndef OPD_PLAN_ANNOTATE_H_
#define OPD_PLAN_ANNOTATE_H_

#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/view_store.h"
#include "common/status.h"
#include "plan/plan.h"
#include "udf/udf_registry.h"

namespace opd::plan {

/// Everything annotation needs to resolve names.
struct AnnotationContext {
  const catalog::Catalog* catalog = nullptr;
  const catalog::ViewStore* views = nullptr;
  const udf::UdfRegistry* udfs = nullptr;
};

/// Annotates every node of `plan` (idempotent per node). Fails on unresolved
/// names, duplicate output names, or model/implementation schema drift.
Status AnnotatePlan(const Plan& plan, const AnnotationContext& ctx);

/// Output type of an aggregate over an input of `input_type`.
storage::DataType AggOutputType(AggFn fn, storage::DataType input_type);

/// \brief Builds the derived attribute for `fn(input) AS out_name` grouped on
/// `group_keys` in creation context `context`.
///
/// The grouping keys are part of the signature: COUNT(*) grouped by user_id
/// is a different attribute than COUNT(*) grouped by location_id.
afk::Attribute MakeAggAttribute(AggFn fn,
                                const std::optional<afk::Attribute>& input,
                                const std::string& out_name,
                                const std::vector<afk::Attribute>& group_keys,
                                const std::string& context);

/// Resolves a FilterCond against an attribute set (by display name).
Result<afk::Predicate> ResolveFilter(const FilterCond& cond,
                                     const afk::Afk& input);

/// Runs the local-function schema chain of `udf` over `in_schema` to obtain
/// the UDF's physical output schema.
Result<storage::Schema> UdfOutputSchema(const udf::UdfDefinition& udf,
                                        const storage::Schema& in_schema,
                                        const udf::Params& params);

}  // namespace opd::plan

#endif  // OPD_PLAN_ANNOTATE_H_
