#include "plan/annotate.h"

#include <algorithm>
#include <set>

namespace opd::plan {

using afk::Afk;
using afk::Attribute;
using afk::Predicate;
using storage::Column;
using storage::DataType;
using storage::Schema;

storage::DataType AggOutputType(AggFn fn, storage::DataType input_type) {
  switch (fn) {
    case AggFn::kCount:
      return DataType::kInt64;
    case AggFn::kSum:
      return input_type == DataType::kInt64 ? DataType::kInt64
                                            : DataType::kDouble;
    case AggFn::kAvg:
      return DataType::kDouble;
    case AggFn::kMin:
    case AggFn::kMax:
      return input_type;
  }
  return DataType::kDouble;
}

afk::Attribute MakeAggAttribute(AggFn fn,
                                const std::optional<afk::Attribute>& input,
                                const std::string& out_name,
                                const std::vector<afk::Attribute>& group_keys,
                                const std::string& context) {
  std::vector<Attribute> deps;
  DataType in_type = DataType::kInt64;
  if (input.has_value()) {
    deps.push_back(*input);
    in_type = input->type();
  }
  // The grouping keys enter the signature via params: the same aggregate over
  // different keys is a different attribute.
  std::string params = "keys=";
  std::vector<std::string> key_sigs;
  for (const Attribute& k : group_keys) key_sigs.push_back(k.signature());
  std::sort(key_sigs.begin(), key_sigs.end());
  for (size_t i = 0; i < key_sigs.size(); ++i) {
    if (i > 0) params += "|";
    params += key_sigs[i];
  }
  return Attribute::Derived(out_name, std::string("agg:") + AggFnName(fn),
                            std::move(deps), context, params,
                            AggOutputType(fn, in_type));
}

Result<afk::Predicate> ResolveFilter(const FilterCond& cond,
                                     const afk::Afk& input) {
  if (cond.kind == FilterCond::Kind::kCompare) {
    auto attr = input.FindByName(cond.column);
    if (!attr) {
      return Status::NotFound("filter column not found: " + cond.column);
    }
    return Predicate::Compare(*attr, cond.op, cond.literal);
  }
  std::vector<Attribute> args;
  for (const std::string& name : cond.arg_columns) {
    auto attr = input.FindByName(name);
    if (!attr) {
      return Status::NotFound("filter argument not found: " + name);
    }
    args.push_back(*attr);
  }
  return Predicate::Opaque(cond.fn_name, std::move(args), cond.params);
}

Result<storage::Schema> UdfOutputSchema(const udf::UdfDefinition& udf,
                                        const storage::Schema& in_schema,
                                        const udf::Params& params) {
  Schema current = in_schema;
  for (const udf::LocalFunction& lf : udf.local_functions) {
    OPD_ASSIGN_OR_RETURN(current, lf.out_schema(current, params));
  }
  return current;
}

namespace {

Status CheckUniqueNames(const std::vector<Attribute>& attrs,
                        const std::string& where) {
  std::set<std::string> names;
  for (const Attribute& a : attrs) {
    if (!names.insert(a.name()).second) {
      return Status::InvalidArgument("duplicate output name '" + a.name() +
                                     "' in " + where);
    }
  }
  return Status::OK();
}

Schema SchemaFromAttrs(const std::vector<Attribute>& attrs) {
  std::vector<Column> cols;
  cols.reserve(attrs.size());
  for (const Attribute& a : attrs) cols.push_back(Column{a.name(), a.type()});
  return Schema(std::move(cols));
}

Status AnnotateNode(OpNode* node, const AnnotationContext& ctx) {
  if (node->annotated) return Status::OK();
  switch (node->kind) {
    case OpKind::kScan: {
      if (node->view_id >= 0) {
        OPD_ASSIGN_OR_RETURN(const catalog::ViewDefinition* def,
                             ctx.views->Find(node->view_id));
        node->afk = def->afk;
        node->out_attrs = def->out_attrs;
        node->out_schema = def->schema;
      } else {
        OPD_ASSIGN_OR_RETURN(const catalog::BaseTableEntry* entry,
                             ctx.catalog->Find(node->table));
        node->afk = entry->afk;
        node->out_attrs = entry->attrs;
        node->out_schema = entry->schema;
      }
      break;
    }
    case OpKind::kProject: {
      const OpNode& child = *node->children[0];
      std::vector<Attribute> keep;
      for (const std::string& name : node->project) {
        auto attr = child.afk.FindByName(name);
        if (!attr) {
          return Status::NotFound("project column not found: " + name);
        }
        keep.push_back(*attr);
      }
      OPD_ASSIGN_OR_RETURN(node->afk, child.afk.Project(keep));
      node->out_attrs = std::move(keep);
      node->out_schema = SchemaFromAttrs(node->out_attrs);
      break;
    }
    case OpKind::kFilter: {
      const OpNode& child = *node->children[0];
      OPD_ASSIGN_OR_RETURN(node->resolved_filter,
                           ResolveFilter(node->filter, child.afk));
      OPD_ASSIGN_OR_RETURN(node->afk,
                           child.afk.ApplyFilter(node->resolved_filter));
      node->out_attrs = child.out_attrs;
      node->out_schema = child.out_schema;
      break;
    }
    case OpKind::kJoin: {
      const OpNode& left = *node->children[0];
      const OpNode& right = *node->children[1];
      std::vector<std::pair<Attribute, Attribute>> pairs;
      for (const auto& [lname, rname] : node->join.pairs) {
        auto l = left.afk.FindByName(lname);
        if (!l) return Status::NotFound("left join column not found: " + lname);
        auto r = right.afk.FindByName(rname);
        if (!r) {
          return Status::NotFound("right join column not found: " + rname);
        }
        pairs.emplace_back(*l, *r);
      }
      OPD_ASSIGN_OR_RETURN(node->afk, left.afk.Join(right.afk, pairs));
      // Natural output order: left columns, then right columns that are
      // neither duplicates (same signature) nor coalesced join columns.
      std::set<std::string> sigs;
      std::set<std::string> coalesced;
      for (const auto& [l, r] : pairs) {
        if (!(l == r)) coalesced.insert(r.signature());
      }
      node->out_attrs.clear();
      for (const Attribute& a : left.out_attrs) {
        node->out_attrs.push_back(a);
        sigs.insert(a.signature());
      }
      for (const Attribute& a : right.out_attrs) {
        if (!sigs.count(a.signature()) && !coalesced.count(a.signature())) {
          node->out_attrs.push_back(a);
          sigs.insert(a.signature());
        }
      }
      OPD_RETURN_NOT_OK(CheckUniqueNames(node->out_attrs, "JOIN output"));
      node->out_schema = SchemaFromAttrs(node->out_attrs);
      break;
    }
    case OpKind::kGroupByAgg: {
      const OpNode& child = *node->children[0];
      std::vector<Attribute> keys;
      for (const std::string& name : node->group.keys) {
        auto attr = child.afk.FindByName(name);
        if (!attr) return Status::NotFound("group key not found: " + name);
        keys.push_back(*attr);
      }
      const std::string context = child.afk.ContextString();
      std::vector<Attribute> aggs;
      for (const AggSpec& spec : node->group.aggs) {
        std::optional<Attribute> input;
        if (!spec.input.empty()) {
          input = child.afk.FindByName(spec.input);
          if (!input) {
            return Status::NotFound("aggregate input not found: " + spec.input);
          }
        } else if (spec.fn != AggFn::kCount) {
          return Status::InvalidArgument(
              "only COUNT may omit an input column");
        }
        aggs.push_back(
            MakeAggAttribute(spec.fn, input, spec.output, keys, context));
      }
      OPD_ASSIGN_OR_RETURN(node->afk, child.afk.GroupBy(keys, aggs));
      node->out_attrs = keys;
      node->out_attrs.insert(node->out_attrs.end(), aggs.begin(), aggs.end());
      OPD_RETURN_NOT_OK(CheckUniqueNames(node->out_attrs, "GROUPBY output"));
      node->out_schema = SchemaFromAttrs(node->out_attrs);
      break;
    }
    case OpKind::kUdf: {
      const OpNode& child = *node->children[0];
      OPD_ASSIGN_OR_RETURN(const udf::UdfDefinition* def,
                           ctx.udfs->Find(node->udf.udf_name));
      OPD_ASSIGN_OR_RETURN(
          node->afk, udf::ApplyUdfModel(*def, child.afk, node->udf.params));
      // Aligned attribute order: kept inputs (in child order for "*"), then
      // the model's outputs.
      node->out_attrs.clear();
      if (def->model.kept.size() == 1 && def->model.kept[0] == "*") {
        node->out_attrs = child.out_attrs;
      } else {
        for (const std::string& name : def->model.kept) {
          auto attr = child.afk.FindByName(name);
          if (!attr) {
            return Status::NotFound("UDF kept attribute not found: " + name);
          }
          node->out_attrs.push_back(*attr);
        }
      }
      for (const udf::UdfOutputSpec& out : def->model.outputs) {
        auto attr = node->afk.FindByName(out.name);
        if (!attr) {
          return Status::Internal("UDF model output missing after apply: " +
                                  out.name);
        }
        node->out_attrs.push_back(*attr);
      }
      OPD_RETURN_NOT_OK(CheckUniqueNames(node->out_attrs, "UDF output"));
      node->out_schema = SchemaFromAttrs(node->out_attrs);
      // Cross-check the model against the executable local functions.
      OPD_ASSIGN_OR_RETURN(
          Schema physical,
          UdfOutputSchema(*def, child.out_schema, node->udf.params));
      if (!(physical == node->out_schema)) {
        return Status::Internal(
            "UDF " + def->name + " model/implementation schema mismatch: " +
            node->out_schema.ToString() + " vs " + physical.ToString());
      }
      break;
    }
  }
  node->annotated = true;
  return Status::OK();
}

}  // namespace

Status AnnotatePlan(const Plan& plan, const AnnotationContext& ctx) {
  if (plan.empty()) return Status::InvalidArgument("empty plan");
  if (ctx.catalog == nullptr || ctx.views == nullptr || ctx.udfs == nullptr) {
    return Status::InvalidArgument("annotation context incomplete");
  }
  for (const OpNodePtr& node : plan.TopoOrder()) {
    OPD_RETURN_NOT_OK(AnnotateNode(node.get(), ctx));
  }
  return Status::OK();
}

}  // namespace opd::plan
