// Canonical syntactic fingerprints of plan subtrees, used by the
// BFR-SYNTACTIC caching baseline (Section 8.3.4): two computations match
// only if their plans are syntactically identical.

#ifndef OPD_PLAN_FINGERPRINT_H_
#define OPD_PLAN_FINGERPRINT_H_

#include <string>

#include "plan/operator.h"

namespace opd::plan {

/// Canonical string of the operator subtree rooted at `node`. Includes every
/// parameter (thresholds too), so a revised threshold breaks syntactic
/// matching — exactly the limitation the paper demonstrates.
std::string Fingerprint(const OpNodePtr& node);

}  // namespace opd::plan

#endif  // OPD_PLAN_FINGERPRINT_H_
