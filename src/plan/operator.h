// Logical plan operators. A plan is a DAG of OpNodes; after annotation each
// non-scan node corresponds to one MR job (Section 2.2: "each node represents
// an MR job" and materializes its output).

#ifndef OPD_PLAN_OPERATOR_H_
#define OPD_PLAN_OPERATOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "afk/afk.h"
#include "catalog/view_store.h"
#include "storage/schema.h"
#include "udf/local_function.h"

namespace opd::plan {

enum class OpKind {
  kScan,        // read a base table or a materialized view
  kProject,     // operation type 1
  kFilter,      // operation type 2
  kJoin,        // operation types 2+3
  kGroupByAgg,  // operation types 3+1
  kUdf,         // gray-box UDF application
};

const char* OpKindName(OpKind kind);

/// Aggregate functions supported by GROUP BY.
enum class AggFn { kCount, kSum, kAvg, kMin, kMax };

const char* AggFnName(AggFn fn);

/// One aggregate in a group-by: fn(input) AS output.
struct AggSpec {
  AggFn fn = AggFn::kCount;
  std::string input;   // empty for COUNT(*)
  std::string output;  // output column name
};

/// GROUP BY `keys` with aggregates.
struct GroupBySpec {
  std::vector<std::string> keys;
  std::vector<AggSpec> aggs;
};

/// Equi-join on pairs of (left column, right column).
struct JoinSpec {
  std::vector<std::pair<std::string, std::string>> pairs;
};

/// A filter condition by column name; resolved to an afk::Predicate during
/// annotation.
struct FilterCond {
  enum class Kind { kCompare, kOpaque };
  Kind kind = Kind::kCompare;
  // kCompare:
  std::string column;
  afk::CmpOp op = afk::CmpOp::kGt;
  storage::Value literal;
  // kOpaque:
  std::string fn_name;
  std::vector<std::string> arg_columns;
  std::string params;

  static FilterCond Compare(std::string column, afk::CmpOp op,
                            storage::Value literal);
  static FilterCond Opaque(std::string fn_name,
                           std::vector<std::string> arg_columns,
                           std::string params = "");
  std::string ToDisplayString() const;
};

/// A UDF application: name + parameters.
struct UdfInvocation {
  std::string udf_name;
  udf::Params params;
};

struct OpNode;
using OpNodePtr = std::shared_ptr<OpNode>;

/// Cost breakdown of one MR job (filled by the optimizer).
struct JobCostInfo {
  double total_s = 0;
  double read_s = 0;
  double cpu_s = 0;
  double shuffle_s = 0;
  double write_s = 0;
  double latency_s = 0;
};

/// \brief One operator in a logical plan DAG.
///
/// The payload fields used depend on `kind`. Annotation fills the
/// `annotated` block; the optimizer fills estimates and cost.
struct OpNode {
  OpKind kind = OpKind::kScan;
  std::vector<OpNodePtr> children;

  // -- payload --
  std::string table;                 // kScan: base table name (if view_id<0)
  catalog::ViewId view_id = -1;      // kScan: view id (>=0 means view scan)
  std::vector<std::string> project;  // kProject
  FilterCond filter;                 // kFilter
  JoinSpec join;                     // kJoin
  GroupBySpec group;                 // kGroupByAgg
  UdfInvocation udf;                 // kUdf

  // -- filled by annotation (plan/annotate.h) --
  bool annotated = false;
  afk::Afk afk;
  std::vector<afk::Attribute> out_attrs;  // aligned with out_schema columns
  storage::Schema out_schema;
  afk::Predicate resolved_filter;  // kFilter only

  // -- filled by the optimizer --
  double est_rows = 0;
  double est_out_bytes = 0;
  /// Estimated per-column width and distinct counts (by column name).
  std::map<std::string, double> est_col_bytes;
  std::map<std::string, double> est_distinct;
  JobCostInfo cost;

  /// Short description, e.g. "FILTER(cmp(...))".
  std::string DisplayName() const;
};

/// Creates a deep structural copy of the node (annotation cleared) sharing no
/// OpNode with the original. Used when grafting plan fragments.
OpNodePtr CloneTree(const OpNodePtr& node);

}  // namespace opd::plan

#endif  // OPD_PLAN_OPERATOR_H_
