// EXPLAIN support: renders an annotated, costed plan as a per-job table —
// operator, estimated rows/bytes, cost breakdown (read/cpu/shuffle/write),
// and the AFK annotation on request.

#ifndef OPD_PLAN_EXPLAIN_H_
#define OPD_PLAN_EXPLAIN_H_

#include <string>

#include "plan/plan.h"

namespace opd::plan {

struct ExplainOptions {
  /// Include each node's (A, F, K) annotation.
  bool show_afk = false;
  /// Include the per-phase cost breakdown columns.
  bool show_cost_breakdown = true;
};

/// \brief Renders `plan` (which must already be prepared by the optimizer)
/// as an indented table, one row per operator.
///
/// Example:
///   JOIN(user_id)                 rows=240      12.1s (r 2.0 c 1.1 s 8.0 w 1.0)
///     UDF(UDF_CLASSIFY_WINE_...)  rows=38      801.2s (...)
///       SCAN(TWTR)                rows=20000      -
std::string Explain(const Plan& plan, const ExplainOptions& options = {});

/// Total estimated cost of a prepared plan (sum of job costs).
double TotalCost(const Plan& plan);

}  // namespace opd::plan

#endif  // OPD_PLAN_EXPLAIN_H_
