#include "plan/plan.h"

#include <set>

namespace opd::plan {

namespace {
void TopoVisit(const OpNodePtr& node, std::set<const OpNode*>* seen,
               std::vector<OpNodePtr>* out) {
  if (node == nullptr || seen->count(node.get())) return;
  seen->insert(node.get());
  for (const OpNodePtr& child : node->children) TopoVisit(child, seen, out);
  out->push_back(node);
}

void Render(const OpNodePtr& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node->DisplayName());
  out->push_back('\n');
  for (const OpNodePtr& child : node->children) Render(child, depth + 1, out);
}
}  // namespace

std::vector<OpNodePtr> Plan::TopoOrder() const {
  std::vector<OpNodePtr> out;
  std::set<const OpNode*> seen;
  TopoVisit(root_, &seen, &out);
  return out;
}

std::string Plan::ToString() const {
  if (root_ == nullptr) return "<empty>";
  std::string out;
  Render(root_, 0, &out);
  return out;
}

OpNodePtr Scan(const std::string& table) {
  auto n = std::make_shared<OpNode>();
  n->kind = OpKind::kScan;
  n->table = table;
  return n;
}

OpNodePtr ScanView(catalog::ViewId id) {
  auto n = std::make_shared<OpNode>();
  n->kind = OpKind::kScan;
  n->view_id = id;
  return n;
}

OpNodePtr Project(OpNodePtr child, std::vector<std::string> columns) {
  auto n = std::make_shared<OpNode>();
  n->kind = OpKind::kProject;
  n->children = {std::move(child)};
  n->project = std::move(columns);
  return n;
}

OpNodePtr Filter(OpNodePtr child, FilterCond cond) {
  auto n = std::make_shared<OpNode>();
  n->kind = OpKind::kFilter;
  n->children = {std::move(child)};
  n->filter = std::move(cond);
  return n;
}

OpNodePtr Join(OpNodePtr left, OpNodePtr right,
               std::vector<std::pair<std::string, std::string>> pairs) {
  auto n = std::make_shared<OpNode>();
  n->kind = OpKind::kJoin;
  n->children = {std::move(left), std::move(right)};
  n->join.pairs = std::move(pairs);
  return n;
}

OpNodePtr GroupBy(OpNodePtr child, std::vector<std::string> keys,
                  std::vector<AggSpec> aggs) {
  auto n = std::make_shared<OpNode>();
  n->kind = OpKind::kGroupByAgg;
  n->children = {std::move(child)};
  n->group.keys = std::move(keys);
  n->group.aggs = std::move(aggs);
  return n;
}

OpNodePtr Udf(OpNodePtr child, const std::string& udf_name,
              udf::Params params) {
  auto n = std::make_shared<OpNode>();
  n->kind = OpKind::kUdf;
  n->children = {std::move(child)};
  n->udf.udf_name = udf_name;
  n->udf.params = std::move(params);
  return n;
}

}  // namespace opd::plan
