#include "plan/explain.h"

#include <cstdio>
#include <set>

namespace opd::plan {

namespace {

void Render(const OpNodePtr& node, int depth, const ExplainOptions& options,
            std::set<const OpNode*>* shared_printed, std::string* out) {
  std::string line(static_cast<size_t>(depth) * 2, ' ');
  line += node->DisplayName();
  // Pad the operator column.
  if (line.size() < 44) line.append(44 - line.size(), ' ');

  char buf[160];
  if (node->kind == OpKind::kScan) {
    std::snprintf(buf, sizeof(buf), " rows=%-10.0f %10s", node->est_rows,
                  "-");
    line += buf;
  } else {
    std::snprintf(buf, sizeof(buf), " rows=%-10.0f %9.1fs", node->est_rows,
                  node->cost.total_s);
    line += buf;
    if (options.show_cost_breakdown) {
      std::snprintf(buf, sizeof(buf),
                    "  (read %.1f  cpu %.1f  shuffle %.1f  write %.1f)",
                    node->cost.read_s, node->cost.cpu_s,
                    node->cost.shuffle_s, node->cost.write_s);
      line += buf;
    }
  }
  out->append(line);
  out->push_back('\n');
  if (options.show_afk) {
    std::string indent(static_cast<size_t>(depth) * 2 + 2, ' ');
    out->append(indent + "A,F,K: " + node->afk.ToString() + "\n");
  }
  // A shared subtree (a DAG materialization point) is expanded once.
  if (!shared_printed->insert(node.get()).second) return;
  for (const OpNodePtr& child : node->children) {
    if (shared_printed->count(child.get())) {
      std::string indent(static_cast<size_t>(depth + 1) * 2, ' ');
      out->append(indent + "(shared) " + child->DisplayName() + "\n");
      continue;
    }
    Render(child, depth + 1, options, shared_printed, out);
  }
}

}  // namespace

std::string Explain(const Plan& plan, const ExplainOptions& options) {
  if (plan.empty()) return "<empty plan>\n";
  std::string out;
  std::set<const OpNode*> shared_printed;
  Render(plan.root(), 0, options, &shared_printed, &out);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "total estimated cost: %.1fs\n",
                TotalCost(plan));
  out += buf;
  return out;
}

double TotalCost(const Plan& plan) {
  double total = 0;
  for (const OpNodePtr& node : plan.TopoOrder()) {
    total += node->cost.total_s;
  }
  return total;
}

}  // namespace opd::plan
