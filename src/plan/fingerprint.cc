#include "plan/fingerprint.h"

namespace opd::plan {

namespace {

std::string PayloadString(const OpNode& node) {
  switch (node.kind) {
    case OpKind::kScan:
      return node.view_id >= 0 ? "view:" + std::to_string(node.view_id)
                               : node.table;
    case OpKind::kProject: {
      std::string out;
      for (const auto& c : node.project) out += c + ",";
      return out;
    }
    case OpKind::kFilter: {
      const FilterCond& f = node.filter;
      if (f.kind == FilterCond::Kind::kCompare) {
        return f.column + std::string(afk::CmpOpName(f.op)) +
               f.literal.ToString();
      }
      std::string out = f.fn_name + "[";
      for (const auto& a : f.arg_columns) out += a + ",";
      return out + "]" + f.params;
    }
    case OpKind::kJoin: {
      std::string out;
      for (const auto& [l, r] : node.join.pairs) out += l + "=" + r + ",";
      return out;
    }
    case OpKind::kGroupByAgg: {
      std::string out = "keys:";
      for (const auto& k : node.group.keys) out += k + ",";
      out += "aggs:";
      for (const auto& a : node.group.aggs) {
        out += std::string(AggFnName(a.fn)) + "(" + a.input + ")as" + a.output +
               ",";
      }
      return out;
    }
    case OpKind::kUdf: {
      std::string out = node.udf.udf_name + "{";
      for (const auto& [k, v] : node.udf.params) {
        out += k + "=" + v.ToString() + ",";
      }
      return out + "}";
    }
  }
  return "";
}

}  // namespace

std::string Fingerprint(const OpNodePtr& node) {
  if (node == nullptr) return "<null>";
  std::string out = OpKindName(node->kind);
  out += "(" + PayloadString(*node);
  for (const OpNodePtr& child : node->children) {
    out += ";" + Fingerprint(child);
  }
  out += ")";
  return out;
}

}  // namespace opd::plan
