#include "plan/operator.h"

namespace opd::plan {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kScan:
      return "SCAN";
    case OpKind::kProject:
      return "PROJECT";
    case OpKind::kFilter:
      return "FILTER";
    case OpKind::kJoin:
      return "JOIN";
    case OpKind::kGroupByAgg:
      return "GROUPBY";
    case OpKind::kUdf:
      return "UDF";
  }
  return "?";
}

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kSum:
      return "SUM";
    case AggFn::kAvg:
      return "AVG";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
  }
  return "?";
}

FilterCond FilterCond::Compare(std::string column, afk::CmpOp op,
                               storage::Value literal) {
  FilterCond c;
  c.kind = Kind::kCompare;
  c.column = std::move(column);
  c.op = op;
  c.literal = std::move(literal);
  return c;
}

FilterCond FilterCond::Opaque(std::string fn_name,
                              std::vector<std::string> arg_columns,
                              std::string params) {
  FilterCond c;
  c.kind = Kind::kOpaque;
  c.fn_name = std::move(fn_name);
  c.arg_columns = std::move(arg_columns);
  c.params = std::move(params);
  return c;
}

std::string FilterCond::ToDisplayString() const {
  if (kind == Kind::kCompare) {
    return column + std::string(afk::CmpOpName(op)) + literal.ToString();
  }
  std::string out = fn_name + "(";
  for (size_t i = 0; i < arg_columns.size(); ++i) {
    if (i > 0) out += ",";
    out += arg_columns[i];
  }
  return out + ")";
}

std::string OpNode::DisplayName() const {
  std::string out = OpKindName(kind);
  switch (kind) {
    case OpKind::kScan:
      out += view_id >= 0 ? "(view:" + std::to_string(view_id) + ")"
                          : "(" + table + ")";
      break;
    case OpKind::kFilter:
      out += "(" + filter.ToDisplayString() + ")";
      break;
    case OpKind::kUdf:
      out += "(" + udf.udf_name + ")";
      break;
    case OpKind::kGroupByAgg: {
      out += "(";
      for (size_t i = 0; i < group.keys.size(); ++i) {
        if (i > 0) out += ",";
        out += group.keys[i];
      }
      out += ")";
      break;
    }
    default:
      break;
  }
  return out;
}

OpNodePtr CloneTree(const OpNodePtr& node) {
  if (node == nullptr) return nullptr;
  auto copy = std::make_shared<OpNode>();
  copy->kind = node->kind;
  copy->table = node->table;
  copy->view_id = node->view_id;
  copy->project = node->project;
  copy->filter = node->filter;
  copy->join = node->join;
  copy->group = node->group;
  copy->udf = node->udf;
  for (const OpNodePtr& child : node->children) {
    copy->children.push_back(CloneTree(child));
  }
  return copy;
}

}  // namespace opd::plan
