// Hash-combining helpers (header-only).

#ifndef OPD_COMMON_HASH_H_
#define OPD_COMMON_HASH_H_

#include <cstdint>
#include <functional>
#include <string>

namespace opd {

/// Combines a hash value into a seed (boost::hash_combine recipe, 64-bit).
inline void HashCombine(uint64_t* seed, uint64_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 12) + (*seed >> 4);
}

/// FNV-1a over a string.
inline uint64_t HashString(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace opd

#endif  // OPD_COMMON_HASH_H_
