#include "common/json_writer.h"

#include <cstdio>

namespace opd {

void JsonWriter::NextValue() {
  if (has_value_.back()) out_.push_back(',');
  has_value_.back() = true;
}

JsonWriter& JsonWriter::BeginObject() {
  NextValue();
  out_.push_back('{');
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_.push_back('}');
  has_value_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  NextValue();
  out_.push_back('[');
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_.push_back(']');
  has_value_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  NextValue();
  out_ += Quote(key);
  out_.push_back(':');
  has_value_.back() = false;  // the value call that follows adds no comma
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  NextValue();
  out_ += Quote(value);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  NextValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  NextValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  NextValue();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  NextValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  NextValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  NextValue();
  out_ += json;
  return *this;
}

std::string JsonWriter::Quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace opd
