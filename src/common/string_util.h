// Small string helpers shared across modules.

#ifndef OPD_COMMON_STRING_UTIL_H_
#define OPD_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace opd {

/// Splits `s` on the delimiter character. Empty tokens are kept.
std::vector<std::string> SplitString(std::string_view s, char delim);

/// Joins the strings with `sep` between elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Lower-cases ASCII characters in place and returns the result.
std::string ToLowerAscii(std::string_view s);

/// Tokenizes text into lower-case alphanumeric words (punctuation-separated).
std::vector<std::string> TokenizeWords(std::string_view text);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace opd

#endif  // OPD_COMMON_STRING_UTIL_H_
