#include "common/string_util.h"

#include <cctype>

namespace opd {

std::vector<std::string> SplitString(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::vector<std::string> TokenizeWords(std::string_view text) {
  std::vector<std::string> words;
  std::string cur;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cur.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!cur.empty()) {
      words.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) words.push_back(std::move(cur));
  return words;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace opd
