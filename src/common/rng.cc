#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace opd {

uint64_t Rng::Next() {
  // splitmix64.
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  return Next() % bound;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::UniformDouble() {
  // 53 random bits into [0,1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  assert(n > 0);
  // Cumulative inverse transform; fine for the small ranks we use.
  double norm = 0;
  for (uint64_t i = 1; i <= n; ++i) norm += 1.0 / std::pow(double(i), s);
  double u = UniformDouble() * norm;
  double acc = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(double(i), s);
    if (u <= acc) return i - 1;
  }
  return n - 1;
}

size_t Rng::Weighted(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0;
  for (double w : weights) total += w;
  double u = UniformDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u <= acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace opd
