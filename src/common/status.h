// Status / Result error-handling primitives, in the style of RocksDB/Arrow.
//
// Library code returns Status (or Result<T>) instead of throwing across module
// boundaries. A Status is cheap to copy in the OK case (empty message).

#ifndef OPD_COMMON_STATUS_H_
#define OPD_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace opd {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNotSupported,
  kInternal,
};

/// \brief Outcome of an operation: OK or an error code plus message.
///
/// Use the static constructors (`Status::OK()`, `Status::InvalidArgument(...)`)
/// rather than the raw constructor.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief A value-or-error container, analogous to arrow::Result.
///
/// Either holds a T (when `ok()`) or an error Status. Accessing the value of
/// an errored Result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit from value: `return my_t;`
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ is engaged.
  std::optional<T> value_;
};

}  // namespace opd

/// Propagates a non-OK Status to the caller (RocksDB idiom).
#define OPD_RETURN_NOT_OK(expr)             \
  do {                                      \
    ::opd::Status _st = (expr);             \
    if (!_st.ok()) return _st;              \
  } while (0)

/// Assigns the value of a Result expression or propagates its error.
#define OPD_ASSIGN_OR_RETURN(lhs, rexpr)    \
  auto OPD_CONCAT_(_res_, __LINE__) = (rexpr); \
  if (!OPD_CONCAT_(_res_, __LINE__).ok())   \
    return OPD_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(OPD_CONCAT_(_res_, __LINE__)).value()

#define OPD_CONCAT_IMPL_(a, b) a##b
#define OPD_CONCAT_(a, b) OPD_CONCAT_IMPL_(a, b)

#endif  // OPD_COMMON_STATUS_H_
