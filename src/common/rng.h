// Deterministic random number generation.
//
// All data generation and sampling in this library must be reproducible, so
// every randomized component takes an explicit Rng seeded by the caller.

#ifndef OPD_COMMON_RNG_H_
#define OPD_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace opd {

/// \brief Deterministic 64-bit RNG (splitmix64 / xorshift-based).
///
/// Not cryptographic; used for synthetic data generation and sampling.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli trial with probability `p`.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Zipf-distributed rank in [0, n) with exponent `s` (approximate,
  /// inverse-CDF over precomputed weights is the caller's job for large n;
  /// this uses rejection-free cumulative search suitable for small n).
  uint64_t Zipf(uint64_t n, double s);

  /// Draws an index in [0, weights.size()) proportionally to weights.
  size_t Weighted(const std::vector<double>& weights);

 private:
  uint64_t state_;
};

}  // namespace opd

#endif  // OPD_COMMON_RNG_H_
