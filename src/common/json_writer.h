// A minimal streaming JSON builder: the single JSON-assembly path shared by
// ExecMetrics::ToJson(), the Chrome trace export, the metric registry dump,
// and the bench --json records (which used to hand-roll printf JSON).
//
// The writer emits compact one-line JSON; commas and key/value ordering are
// managed by the writer, so callers can never produce a trailing comma or an
// unescaped string.

#ifndef OPD_COMMON_JSON_WRITER_H_
#define OPD_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace opd {

/// \brief Builds one compact JSON document (object or array at the root).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Starts a member inside an object; follow with a value call (or a
  /// Begin*). Must not be called inside an array.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  /// Doubles are rendered with %.6g (shortest useful form, locale-free).
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  /// Splices an already-encoded JSON value (e.g. a nested document built by
  /// another writer) as the next value.
  JsonWriter& Raw(std::string_view json);

  /// The finished document. Valid once every Begin* has been closed.
  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

  /// Escapes `s` per RFC 8259 and wraps it in quotes.
  static std::string Quote(std::string_view s);

 private:
  void NextValue();  // emits a separating comma when needed

  std::string out_;
  // Whether a value has already been written at each nesting level (root
  // level included as element 0).
  std::vector<bool> has_value_ = {false};
};

}  // namespace opd

#endif  // OPD_COMMON_JSON_WRITER_H_
