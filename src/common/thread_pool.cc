#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

namespace opd {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

bool ThreadPool::TryRunOne() {
  std::packaged_task<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures any exception in its future
  }
}

int ThreadPool::DefaultThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

bool CountdownLatch::CountDown(size_t n) {
  // Everything happens under the mutex, and notify_all fires while it is
  // still held: by the time a waiter can re-acquire the lock, observe zero,
  // and return (possibly destroying this latch), this call no longer
  // touches any member.
  std::lock_guard<std::mutex> lock(mu_);
  if (remaining_ == 0) return false;  // already signaled: true exactly once
  remaining_ = remaining_ > n ? remaining_ - n : 0;
  if (remaining_ > 0) return false;
  cv_.notify_all();
  return true;
}

bool CountdownLatch::Done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return remaining_ == 0;
}

void CountdownLatch::Wait(ThreadPool* pool) {
  for (;;) {
    if (Done()) return;
    if (pool != nullptr && pool->TryRunOne()) continue;
    // Nothing runnable right now: sleep briefly. The timeout covers tasks
    // enqueued after the empty-queue check (notify_one may wake a worker,
    // not us); CountDown's notify_all ends the wait promptly at zero.
    std::unique_lock<std::mutex> lock(mu_);
    if (cv_.wait_for(lock, std::chrono::milliseconds(1),
                     [this] { return remaining_ == 0; })) {
      return;
    }
  }
}

namespace {

// Runs one index, converting any escaped exception into a Status.
Status RunGuarded(const std::function<Status(size_t)>& fn, size_t i) {
  try {
    return fn(i);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("task threw: ") + e.what());
  } catch (...) {
    return Status::Internal("task threw a non-std exception");
  }
}

}  // namespace

Status ParallelFor(ThreadPool* pool, size_t n,
                   const std::function<Status(size_t)>& fn,
                   double* max_task_seconds) {
  if (max_task_seconds != nullptr) *max_task_seconds = 0;
  const bool serial = pool == nullptr || pool->num_threads() <= 1 || n <= 1;

  // Failures are rare: statuses start OK and an index writes its slot only
  // on error, so the wave's common case never dirties this shared array
  // (the per-index stores were a false-sharing hotspot at 8 threads).
  std::vector<Status> statuses(n, Status::OK());

  if (serial) {
    double max_s = 0;
    for (size_t i = 0; i < n; ++i) {
      const auto start = std::chrono::steady_clock::now();
      Status st = RunGuarded(fn, i);
      if (!st.ok()) statuses[i] = std::move(st);
      max_s = std::max(
          max_s, std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count());
    }
    if (max_task_seconds != nullptr) *max_task_seconds = max_s;
  } else {
    // Dispatch at most one drain task per worker instead of one pool task
    // per index: drains pull indices from a shared counter, and the calling
    // thread drains too, so small waves never pay a context switch to make
    // progress. Which thread runs an index is immaterial — each index
    // writes only its own slots.
    //
    // The drain counter and each drain's straggler time live on their own
    // cache lines: every index claim is an RMW on `next`, and sharing its
    // line with other hot data made the claim loop itself the bottleneck.
    struct alignas(64) PaddedCounter {
      std::atomic<size_t> v{0};
    };
    struct alignas(64) PaddedMax {
      double v = 0;
    };
    // More concurrent drains than physical cores only adds context
    // switches, so cap by hardware concurrency regardless of pool size.
    const size_t cores =
        static_cast<size_t>(ThreadPool::DefaultThreads(0));
    const size_t helpers =
        std::min({n, static_cast<size_t>(pool->num_threads()), cores}) - 1;
    PaddedCounter next;
    std::vector<PaddedMax> drain_max(helpers + 1);
    auto drain = [&](size_t w) {
      double local_max = 0;  // aggregated locally, published once per drain
      for (size_t i;
           (i = next.v.fetch_add(1, std::memory_order_relaxed)) < n;) {
        const auto start = std::chrono::steady_clock::now();
        Status st = RunGuarded(fn, i);
        if (!st.ok()) statuses[i] = std::move(st);
        local_max = std::max(
            local_max, std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count());
      }
      drain_max[w].v = local_max;
    };
    // The wait must help, not block: when the caller is itself a pool
    // worker (cross-job DAG scheduling runs whole jobs as pool tasks), a
    // blocking future wait with every worker inside a ParallelFor would
    // leave the queued drains with no thread to run them.
    CountdownLatch drains_done(helpers);
    for (size_t w = 0; w < helpers; ++w) {
      pool->Submit([&drain, &drains_done, w] {
        drain(w);
        drains_done.CountDown();
      });
    }
    drain(helpers);  // the calling thread participates
    drains_done.Wait(pool);
    if (max_task_seconds != nullptr) {
      for (const PaddedMax& m : drain_max) {
        *max_task_seconds = std::max(*max_task_seconds, m.v);
      }
    }
  }

  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace opd
