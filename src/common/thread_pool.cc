#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

namespace opd {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures any exception in its future
  }
}

int ThreadPool::DefaultThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {

// Runs one index, converting any escaped exception into a Status.
Status RunGuarded(const std::function<Status(size_t)>& fn, size_t i) {
  try {
    return fn(i);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("task threw: ") + e.what());
  } catch (...) {
    return Status::Internal("task threw a non-std exception");
  }
}

}  // namespace

Status ParallelFor(ThreadPool* pool, size_t n,
                   const std::function<Status(size_t)>& fn,
                   double* max_task_seconds) {
  if (max_task_seconds != nullptr) *max_task_seconds = 0;
  const bool serial = pool == nullptr || pool->num_threads() <= 1 || n <= 1;

  std::vector<Status> statuses(n, Status::OK());
  std::vector<double> task_s(n, 0.0);
  auto run_index = [&](size_t i) {
    const auto start = std::chrono::steady_clock::now();
    statuses[i] = RunGuarded(fn, i);
    task_s[i] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  };

  if (serial) {
    for (size_t i = 0; i < n; ++i) run_index(i);
  } else {
    // Dispatch at most one drain task per worker instead of one pool task
    // per index: drains pull indices from a shared counter, and the calling
    // thread drains too, so small waves never pay a context switch to make
    // progress. Which thread runs an index is immaterial — each index
    // writes only its own slots.
    std::atomic<size_t> next{0};
    auto drain = [&] {
      for (size_t i; (i = next.fetch_add(1, std::memory_order_relaxed)) < n;) {
        run_index(i);
      }
    };
    // More concurrent drains than physical cores only adds context
    // switches, so cap by hardware concurrency regardless of pool size.
    const size_t cores =
        static_cast<size_t>(ThreadPool::DefaultThreads(0));
    const size_t helpers =
        std::min({n, static_cast<size_t>(pool->num_threads()), cores}) - 1;
    std::vector<std::future<void>> futures;
    futures.reserve(helpers);
    for (size_t w = 0; w < helpers; ++w) {
      futures.push_back(pool->Submit(drain));
    }
    drain();  // the calling thread participates
    for (auto& f : futures) f.get();  // run_index never throws
  }

  if (max_task_seconds != nullptr) {
    for (double s : task_s) *max_task_seconds = std::max(*max_task_seconds, s);
  }
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace opd
