// A fixed-size worker pool with a shared work queue, used by the execution
// engine to run map/reduce tasks concurrently. Tasks are plain callables;
// exceptions thrown inside a task never escape a worker thread — helpers
// below convert them into Status (the library's error-return convention).

#ifndef OPD_COMMON_THREAD_POOL_H_
#define OPD_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace opd {

/// \brief A fixed-size thread pool draining a FIFO work queue.
///
/// The pool starts its workers on construction and joins them on
/// destruction (after draining every queued task). Thread count is clamped
/// to at least 1; `ThreadPool::DefaultThreads()` maps the conventional
/// "0 means auto" knob to `hardware_concurrency`.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` and returns a future that resolves when it has run.
  /// An exception thrown by `fn` is captured in the future.
  std::future<void> Submit(std::function<void()> fn);

  /// Pops and runs one queued task on the calling thread; returns false
  /// without blocking when the queue is empty. This is how threads blocked
  /// on a CountdownLatch help drain the pool instead of idling — it also
  /// makes latch waits deadlock-free when pool tasks submit more tasks.
  bool TryRunOne();

  /// Resolves a `num_threads` option: values <= 0 mean "one per core".
  static int DefaultThreads(int requested);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// \brief A one-shot countdown used for pipelined task handoff.
///
/// Producers call `CountDown()` as they finish; the thread that drives the
/// final count to zero observes `true` (and may e.g. schedule a dependent
/// task). `Wait()` blocks until the count reaches zero, cooperatively
/// running queued pool tasks while it waits so the waiting thread keeps
/// making progress on the very work it is waiting for.
///
/// Destruction safety: once Wait() returns, every CountDown() call has
/// fully completed (all counter and cv access happens inside one critical
/// section, and Wait's final zero check goes through the same mutex), so a
/// task whose *last* action is CountDown() can never touch a latch its
/// waiter has already destroyed. CountDown is one mutex acquisition per
/// finishing task — nowhere near the hot path.
class CountdownLatch {
 public:
  explicit CountdownLatch(size_t count) : remaining_(count) {}

  CountdownLatch(const CountdownLatch&) = delete;
  CountdownLatch& operator=(const CountdownLatch&) = delete;

  /// Decrements the count by `n` (clamped at zero); returns true exactly
  /// once — for the call that reaches zero. All writes made before a
  /// CountDown() happen-before Wait() returns (the shared mutex orders
  /// them).
  bool CountDown(size_t n = 1);

  bool Done() const;

  /// Blocks until Done(). With a non-null `pool`, drains queued tasks on
  /// this thread while waiting instead of sleeping.
  void Wait(ThreadPool* pool = nullptr);

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t remaining_;  // guarded by mu_
};

/// \brief Runs `fn(0) .. fn(n-1)` as pool tasks and waits for all of them.
///
/// Error handling follows the engine's determinism contract: every index
/// runs to completion, each task's Status (or caught exception, converted to
/// `Status::Internal`) is recorded per index, and the *lowest-index* failure
/// is returned — so the reported error does not depend on thread timing.
///
/// With a null pool, a single-thread pool, or n <= 1, indices run inline on
/// the calling thread in order — byte-for-byte the serial behavior.
///
/// \param[out] max_task_seconds if non-null, receives the wall-clock time of
///   the slowest task (the simulated straggler of this task wave).
Status ParallelFor(ThreadPool* pool, size_t n,
                   const std::function<Status(size_t)>& fn,
                   double* max_task_seconds = nullptr);

}  // namespace opd

#endif  // OPD_COMMON_THREAD_POOL_H_
