// A fixed-size worker pool with a shared work queue, used by the execution
// engine to run map/reduce tasks concurrently. Tasks are plain callables;
// exceptions thrown inside a task never escape a worker thread — helpers
// below convert them into Status (the library's error-return convention).

#ifndef OPD_COMMON_THREAD_POOL_H_
#define OPD_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace opd {

/// \brief A fixed-size thread pool draining a FIFO work queue.
///
/// The pool starts its workers on construction and joins them on
/// destruction (after draining every queued task). Thread count is clamped
/// to at least 1; `ThreadPool::DefaultThreads()` maps the conventional
/// "0 means auto" knob to `hardware_concurrency`.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` and returns a future that resolves when it has run.
  /// An exception thrown by `fn` is captured in the future.
  std::future<void> Submit(std::function<void()> fn);

  /// Resolves a `num_threads` option: values <= 0 mean "one per core".
  static int DefaultThreads(int requested);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// \brief Runs `fn(0) .. fn(n-1)` as pool tasks and waits for all of them.
///
/// Error handling follows the engine's determinism contract: every index
/// runs to completion, each task's Status (or caught exception, converted to
/// `Status::Internal`) is recorded per index, and the *lowest-index* failure
/// is returned — so the reported error does not depend on thread timing.
///
/// With a null pool, a single-thread pool, or n <= 1, indices run inline on
/// the calling thread in order — byte-for-byte the serial behavior.
///
/// \param[out] max_task_seconds if non-null, receives the wall-clock time of
///   the slowest task (the simulated straggler of this task wave).
Status ParallelFor(ThreadPool* pool, size_t n,
                   const std::function<Status(size_t)>& fn,
                   double* max_task_seconds = nullptr);

}  // namespace opd

#endif  // OPD_COMMON_THREAD_POOL_H_
