// View retention under a storage budget (paper Section 10): "retaining
// opportunistic views within a limited storage space budget requires
// navigating the tradeoff between storage cost and query performance, which
// is equivalent to the view selection problem. One could consider
// access-based policies such as LRU and LFU, or cost-benefit based policies."
//
// This module implements those policies over the ViewStore: when the total
// retained bytes exceed the budget, views are evicted (metadata dropped and
// DFS files deleted) in policy order until the budget is met.

#ifndef OPD_CATALOG_EVICTION_H_
#define OPD_CATALOG_EVICTION_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "catalog/view_store.h"
#include "common/status.h"
#include "plan/plan.h"
#include "storage/dfs.h"

namespace opd::catalog {

/// The cost-benefit retention score (ReStore's heuristic): cumulative
/// benefit per retained byte. Lower = evicted earlier. Shared by the view
/// retention manager below and the hash-table recycler
/// (src/exec/hash/recycler.cc), so both layers rank reuse candidates by
/// the same economics.
inline double CostBenefitPerByte(double benefit_s, uint64_t bytes) {
  return benefit_s / static_cast<double>(std::max<uint64_t>(bytes, 1));
}

/// Credits every distinct view scanned by `plan` with an equal share of
/// `benefit_s` (the estimated savings of the rewrite that uses them) and
/// bumps their access clocks. Views no longer in the store are skipped.
Status RecordPlanAccesses(ViewStore* store, const plan::Plan& plan,
                          double benefit_s);

enum class EvictionPolicy {
  /// Evict the least-recently-used view first.
  kLru,
  /// Evict the least-frequently-used view first.
  kLfu,
  /// Evict the largest view first (pure space reclamation).
  kLargestFirst,
  /// Evict the view with the lowest benefit-per-byte first — the
  /// cost-benefit policy common in physical design tuning.
  kCostBenefit,
  /// Evict the oldest view first (FIFO).
  kFifo,
};

const char* EvictionPolicyName(EvictionPolicy policy);

struct RetentionConfig {
  /// Retained-view byte budget; 0 disables eviction.
  uint64_t budget_bytes = 0;
  EvictionPolicy policy = EvictionPolicy::kCostBenefit;
};

/// What one Enforce() pass did.
struct EvictionReport {
  size_t views_evicted = 0;
  uint64_t bytes_reclaimed = 0;
  std::vector<ViewId> evicted;
};

/// \brief Applies a retention policy to a ViewStore.
class ViewRetention {
 public:
  ViewRetention(ViewStore* store, storage::Dfs* dfs, RetentionConfig config)
      : store_(store), dfs_(dfs), config_(config) {}

  const RetentionConfig& config() const { return config_; }
  void set_budget(uint64_t bytes) { config_.budget_bytes = bytes; }
  void set_policy(EvictionPolicy policy) { config_.policy = policy; }

  /// True if the store currently exceeds the budget.
  bool OverBudget() const;

  /// Evicts views in policy order until the store fits the budget.
  /// Deleting a view removes both its metadata and its DFS file.
  Result<EvictionReport> Enforce();

  /// The eviction order the current policy would use (first = evicted
  /// first). Exposed for tests and ablation benches.
  std::vector<ViewId> EvictionOrder() const;

 private:
  /// Policy score: lower = evicted earlier.
  double Score(const ViewDefinition& def) const;

  ViewStore* store_;
  storage::Dfs* dfs_;
  RetentionConfig config_;
};

}  // namespace opd::catalog

#endif  // OPD_CATALOG_EVICTION_H_
