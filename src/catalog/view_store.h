// The materialized-view metadata store (paper Section 2.1): definitions,
// AFK annotations, plan fingerprints, and statistics of every opportunistic
// view currently retained in the system.
//
// Concurrency (serving layer, DESIGN.md §3): the store is shared by every
// tenant of an opd::Server and is thread-safe. View visibility is
// *snapshot-consistent* through a monotonically increasing publish epoch:
//
//   * `Publish`/`PublishBatch` insert fully-materialized views atomically
//     and advance the epoch — a batch (one completed query's views) becomes
//     visible all at once or not at all.
//   * `SnapshotAt(e)` returns exactly the views published at epochs <= e.
//     A query admitted at epoch e rewrites only against that snapshot, so
//     it can never observe a half-published view.
//
// Snapshots hold shared ownership of their definitions: a snapshot stays
// valid even if views are dropped from the live store afterwards.

#ifndef OPD_CATALOG_VIEW_STORE_H_
#define OPD_CATALOG_VIEW_STORE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "afk/afk.h"
#include "catalog/catalog.h"
#include "common/status.h"
#include "storage/schema.h"

namespace opd::catalog {

using ViewId = int64_t;
/// Publish-batch counter; 0 = "before anything was published".
using Epoch = uint64_t;

/// \brief Metadata for one opportunistic materialized view.
struct ViewDefinition {
  ViewId id = -1;
  /// DFS location of the materialized data.
  std::string dfs_path;
  /// Semantic annotation of the view's content.
  afk::Afk afk;
  /// Attributes aligned 1:1 with the stored schema columns.
  std::vector<afk::Attribute> out_attrs;
  storage::Schema schema;
  /// Canonical fingerprint of the producing plan subtree (used by the
  /// syntactic-matching baseline, Section 8.3.4).
  std::string fingerprint;
  TableStats stats;
  uint64_t bytes = 0;
  /// Free-form description of the producing query, for debugging.
  std::string producer;
  /// Tenant whose query materialized this view ("" outside a Server). The
  /// cross-tenant reuse the paper is about is `scanning tenant != tenant`.
  std::string tenant;
  /// Epoch of the publish batch that made this view visible (assigned by
  /// the store; 0 only while the definition is still pending).
  Epoch publish_epoch = 0;

  // --- access bookkeeping (drives the retention policies, paper §10) ---
  // Only mutated under the store mutex (RecordAccess); read them through
  // the store (or from a single-threaded context) — never concurrently
  // with serving traffic.
  /// Number of times a rewrite has scanned this view.
  uint64_t access_count = 0;
  /// Logical clock of the most recent access (0 = never accessed).
  uint64_t last_access = 0;
  /// Total estimated execution-time savings attributed to this view.
  double cumulative_benefit_s = 0;
  /// Logical clock of creation.
  uint64_t created_at = 0;
};

/// \brief An immutable, epoch-consistent view of the store.
///
/// Produced by ViewStore::SnapshotAt/Snapshot; contains exactly the views
/// published at epochs <= epoch(), in id order, and keeps them alive
/// independently of the live store.
class ViewSnapshot {
 public:
  ViewSnapshot() = default;

  Epoch epoch() const { return epoch_; }
  size_t size() const { return views_.size(); }

  /// Borrowed pointers, valid for the snapshot's lifetime, ordered by id.
  std::vector<const ViewDefinition*> All() const;

  /// Finds a view *within this snapshot* (NotFound for views published
  /// after the snapshot's epoch, even if they exist in the live store).
  Result<const ViewDefinition*> Find(ViewId id) const;

 private:
  friend class ViewStore;
  Epoch epoch_ = 0;
  std::vector<std::shared_ptr<const ViewDefinition>> views_;
};

/// \brief The system's view metadata store.
///
/// Views are deduplicated by AFK annotation: materializing the same semantic
/// content twice keeps the first copy (the paper discards duplicate views,
/// Section 8.3.3). All methods are thread-safe.
class ViewStore {
 public:
  ViewStore() = default;

  /// Copy/move are DEEP: every ViewDefinition is cloned (never aliased), so
  /// a copied store is a true checkpoint — later RecordAccess/Drop on one
  /// side never leaks into the other. Both sides are locked; intended for
  /// offline experiment checkpoint/rollback, not for serving traffic.
  ViewStore(const ViewStore& other);
  ViewStore& operator=(const ViewStore& other);
  ViewStore(ViewStore&& other) noexcept;
  ViewStore& operator=(ViewStore&& other) noexcept;

  /// Outcome of publishing one definition.
  struct PublishResult {
    ViewId id = -1;
    /// False when an AFK-identical view already existed (dedup: `id` is
    /// the surviving original's).
    bool added = false;
  };

  /// Publishes a batch of fully-materialized views atomically: every view
  /// of the batch gets the same (new) epoch and becomes visible to
  /// snapshots taken at or after it, all at once. The epoch advances by
  /// exactly one per call — also for an empty or fully-deduplicated batch,
  /// so a completed query always accounts for one publish step (this is
  /// what makes serial replay line up epoch-for-epoch with a concurrent
  /// run). Returns one PublishResult per input definition, in order; the
  /// new epoch is stored in `*epoch_out` when non-null.
  std::vector<PublishResult> PublishBatch(std::vector<ViewDefinition> defs,
                                          Epoch* epoch_out = nullptr);

  /// Publishes a single view (one-element batch; one epoch bump).
  PublishResult Publish(ViewDefinition def);

  /// Adds a view. If a view with an identical AFK annotation exists, returns
  /// that existing view's id and does not add (deduplication). Equivalent
  /// to Publish(def).id — the historical single-view interface.
  ViewId Add(ViewDefinition def);

  /// The epoch of the most recent publish batch (0 before the first).
  /// A query admitted now sees exactly SnapshotAt(epoch()).
  Epoch epoch() const;

  /// The views published at epochs <= `at`, in id order.
  ViewSnapshot SnapshotAt(Epoch at) const;
  /// SnapshotAt(epoch()): everything currently published.
  ViewSnapshot Snapshot() const;

  Result<const ViewDefinition*> Find(ViewId id) const;
  bool Has(ViewId id) const;

  /// All current views, ordered by id. Borrowed pointers into the live
  /// store: stable across inserts, invalidated by Drop*. Prefer Snapshot()
  /// wherever concurrent mutation is possible.
  std::vector<const ViewDefinition*> All() const;
  size_t size() const;

  /// Total bytes of all retained views.
  uint64_t TotalBytes() const;

  Status Drop(ViewId id);
  void DropAll();

  /// Removes every view whose AFK annotation exactly matches `afk`
  /// (used by the "discard identical views" experiment, Table 2).
  /// Returns the number removed.
  size_t DropIdentical(const afk::Afk& afk);

  /// Records that a rewrite used view `id`, attributing `benefit_s` of
  /// estimated savings. Advances the logical access clock.
  Status RecordAccess(ViewId id, double benefit_s);

  /// Current value of the logical clock (accesses + additions).
  uint64_t clock() const;

 private:
  /// Inserts (or dedups) one definition; caller holds mu_.
  PublishResult PublishLocked(ViewDefinition def, Epoch epoch);

  mutable std::mutex mu_;
  ViewId next_id_ = 1;       // guarded by mu_
  uint64_t clock_ = 0;       // guarded by mu_
  Epoch epoch_ = 0;          // guarded by mu_
  std::map<ViewId, std::shared_ptr<ViewDefinition>> views_;  // guarded by mu_
  std::map<std::string, ViewId> by_canonical_;  // AFK canonical -> id
};

}  // namespace opd::catalog

#endif  // OPD_CATALOG_VIEW_STORE_H_
