// The materialized-view metadata store (paper Section 2.1): definitions,
// AFK annotations, plan fingerprints, and statistics of every opportunistic
// view currently retained in the system.

#ifndef OPD_CATALOG_VIEW_STORE_H_
#define OPD_CATALOG_VIEW_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "afk/afk.h"
#include "catalog/catalog.h"
#include "common/status.h"
#include "storage/schema.h"

namespace opd::catalog {

using ViewId = int64_t;

/// \brief Metadata for one opportunistic materialized view.
struct ViewDefinition {
  ViewId id = -1;
  /// DFS location of the materialized data.
  std::string dfs_path;
  /// Semantic annotation of the view's content.
  afk::Afk afk;
  /// Attributes aligned 1:1 with the stored schema columns.
  std::vector<afk::Attribute> out_attrs;
  storage::Schema schema;
  /// Canonical fingerprint of the producing plan subtree (used by the
  /// syntactic-matching baseline, Section 8.3.4).
  std::string fingerprint;
  TableStats stats;
  uint64_t bytes = 0;
  /// Free-form description of the producing query, for debugging.
  std::string producer;

  // --- access bookkeeping (drives the retention policies, paper §10) ---
  /// Number of times a rewrite has scanned this view.
  uint64_t access_count = 0;
  /// Logical clock of the most recent access (0 = never accessed).
  uint64_t last_access = 0;
  /// Total estimated execution-time savings attributed to this view.
  double cumulative_benefit_s = 0;
  /// Logical clock of creation.
  uint64_t created_at = 0;
};

/// \brief The system's view metadata store.
///
/// Views are deduplicated by AFK annotation: materializing the same semantic
/// content twice keeps the first copy (the paper discards duplicate views,
/// Section 8.3.3).
class ViewStore {
 public:
  /// Adds a view. If a view with an identical AFK annotation exists, returns
  /// that existing view's id and does not add (deduplication).
  ViewId Add(ViewDefinition def);

  Result<const ViewDefinition*> Find(ViewId id) const;
  bool Has(ViewId id) const { return views_.count(id) > 0; }

  /// All current views, ordered by id.
  std::vector<const ViewDefinition*> All() const;
  size_t size() const { return views_.size(); }

  /// Total bytes of all retained views.
  uint64_t TotalBytes() const;

  Status Drop(ViewId id);
  void DropAll();

  /// Removes every view whose AFK annotation exactly matches `afk`
  /// (used by the "discard identical views" experiment, Table 2).
  /// Returns the number removed.
  size_t DropIdentical(const afk::Afk& afk);

  /// Records that a rewrite used view `id`, attributing `benefit_s` of
  /// estimated savings. Advances the logical access clock.
  Status RecordAccess(ViewId id, double benefit_s);

  /// Current value of the logical clock (accesses + additions).
  uint64_t clock() const { return clock_; }

 private:
  ViewId next_id_ = 1;
  uint64_t clock_ = 0;
  std::map<ViewId, ViewDefinition> views_;
  std::map<std::string, ViewId> by_canonical_;  // AFK canonical -> id
};

}  // namespace opd::catalog

#endif  // OPD_CATALOG_VIEW_STORE_H_
