// Catalog of base relations: schemas, natural keys, base AFK annotations,
// DFS locations, and data statistics.

#ifndef OPD_CATALOG_CATALOG_H_
#define OPD_CATALOG_CATALOG_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "afk/afk.h"
#include "common/status.h"
#include "storage/dfs.h"
#include "storage/schema.h"

namespace opd::catalog {

/// Optimizer-facing statistics for a table or view.
struct TableStats {
  double rows = 0;
  double avg_row_bytes = 0;
  /// Estimated distinct-value count per column name.
  std::map<std::string, double> distinct;
  /// Average serialized width per column name, in bytes.
  std::map<std::string, double> col_bytes;

  double TotalBytes() const { return rows * avg_row_bytes; }
  /// Distinct count for `column`, defaulting to `fallback` when unknown.
  double DistinctOr(const std::string& column, double fallback) const;
  /// Column width for `column`, defaulting to `fallback` when unknown.
  double ColBytesOr(const std::string& column, double fallback) const;
};

/// Computes exact statistics by scanning a table (used for base tables; views
/// use the sampling StatsCollector).
TableStats ComputeExactStats(const storage::Table& table);

/// A registered base relation.
struct BaseTableEntry {
  std::string name;
  storage::Schema schema;
  /// Attribute objects aligned 1:1 with schema columns.
  std::vector<afk::Attribute> attrs;
  afk::Afk afk;
  std::string dfs_path;
  TableStats stats;
};

/// \brief Name -> base relation registry. Base data lives in the Dfs under
/// "base/<name>"; registering writes it there.
///
/// Thread-safe: the registry is shared by every tenant of an opd::Server.
/// Entries are never removed, so the pointers Find hands out stay valid for
/// the catalog's lifetime even while other tenants register tables.
class Catalog {
 public:
  /// Registers `table` as a base relation keyed on `key_columns`, writing its
  /// data to `dfs` and computing exact statistics.
  Status RegisterBase(const storage::TablePtr& table,
                      const std::vector<std::string>& key_columns,
                      storage::Dfs* dfs);

  Result<const BaseTableEntry*> Find(const std::string& name) const;
  bool Has(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, BaseTableEntry> tables_;  // guarded by mu_
};

}  // namespace opd::catalog

#endif  // OPD_CATALOG_CATALOG_H_
