#include "catalog/eviction.h"

#include <algorithm>
#include <set>

namespace opd::catalog {

Status RecordPlanAccesses(ViewStore* store, const plan::Plan& plan,
                          double benefit_s) {
  std::set<ViewId> used;
  for (const plan::OpNodePtr& node : plan.TopoOrder()) {
    if (node->kind == plan::OpKind::kScan && node->view_id >= 0) {
      used.insert(node->view_id);
    }
  }
  if (used.empty()) return Status::OK();
  const double share = benefit_s / static_cast<double>(used.size());
  for (ViewId id : used) {
    if (!store->Has(id)) continue;
    OPD_RETURN_NOT_OK(store->RecordAccess(id, share));
  }
  return Status::OK();
}

const char* EvictionPolicyName(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kLru:
      return "LRU";
    case EvictionPolicy::kLfu:
      return "LFU";
    case EvictionPolicy::kLargestFirst:
      return "LARGEST";
    case EvictionPolicy::kCostBenefit:
      return "COST-BENEFIT";
    case EvictionPolicy::kFifo:
      return "FIFO";
  }
  return "?";
}

bool ViewRetention::OverBudget() const {
  return config_.budget_bytes != 0 &&
         store_->TotalBytes() > config_.budget_bytes;
}

double ViewRetention::Score(const ViewDefinition& def) const {
  switch (config_.policy) {
    case EvictionPolicy::kLru:
      // Never-accessed views rank below accessed ones by last_access = 0.
      return static_cast<double>(def.last_access);
    case EvictionPolicy::kLfu:
      return static_cast<double>(def.access_count);
    case EvictionPolicy::kLargestFirst:
      // Larger = evicted earlier = lower score.
      return -static_cast<double>(def.bytes);
    case EvictionPolicy::kCostBenefit:
      // Benefit per byte; unaccessed views score 0.
      return CostBenefitPerByte(def.cumulative_benefit_s, def.bytes);
    case EvictionPolicy::kFifo:
      return static_cast<double>(def.created_at);
  }
  return 0;
}

std::vector<ViewId> ViewRetention::EvictionOrder() const {
  std::vector<const ViewDefinition*> views = store_->All();
  std::stable_sort(views.begin(), views.end(),
                   [this](const ViewDefinition* a, const ViewDefinition* b) {
                     double sa = Score(*a), sb = Score(*b);
                     if (sa != sb) return sa < sb;
                     return a->id < b->id;  // deterministic tie-break
                   });
  std::vector<ViewId> order;
  order.reserve(views.size());
  for (const ViewDefinition* def : views) order.push_back(def->id);
  return order;
}

Result<EvictionReport> ViewRetention::Enforce() {
  EvictionReport report;
  if (config_.budget_bytes == 0) return report;
  if (!OverBudget()) return report;
  for (ViewId id : EvictionOrder()) {
    if (!OverBudget()) break;
    OPD_ASSIGN_OR_RETURN(const ViewDefinition* def, store_->Find(id));
    const uint64_t bytes = def->bytes;
    const std::string path = def->dfs_path;
    OPD_RETURN_NOT_OK(store_->Drop(id));
    if (dfs_ != nullptr && dfs_->Exists(path)) {
      OPD_RETURN_NOT_OK(dfs_->Delete(path));
    }
    report.views_evicted += 1;
    report.bytes_reclaimed += bytes;
    report.evicted.push_back(id);
  }
  return report;
}

}  // namespace opd::catalog
