#include "catalog/catalog.h"

#include <set>

namespace opd::catalog {

double TableStats::DistinctOr(const std::string& column,
                              double fallback) const {
  auto it = distinct.find(column);
  return it == distinct.end() ? fallback : it->second;
}

double TableStats::ColBytesOr(const std::string& column,
                              double fallback) const {
  auto it = col_bytes.find(column);
  return it == col_bytes.end() ? fallback : it->second;
}

TableStats ComputeExactStats(const storage::Table& table) {
  TableStats stats;
  stats.rows = static_cast<double>(table.num_rows());
  stats.avg_row_bytes = table.AvgRowBytes();
  const auto& schema = table.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    std::set<uint64_t> hashes;
    size_t width = 0;
    for (const auto& row : table.rows()) {
      hashes.insert(row[c].Hash());
      width += row[c].ByteSize();
    }
    const std::string& name = schema.column(c).name;
    stats.distinct[name] = static_cast<double>(hashes.size());
    stats.col_bytes[name] =
        table.num_rows() == 0
            ? 0.0
            : static_cast<double>(width) / static_cast<double>(table.num_rows());
  }
  return stats;
}

Status Catalog::RegisterBase(const storage::TablePtr& table,
                             const std::vector<std::string>& key_columns,
                             storage::Dfs* dfs) {
  if (table == nullptr) {
    return Status::InvalidArgument("null table");
  }
  const std::string& name = table->name();
  if (name.empty()) return Status::InvalidArgument("table has no name");
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("base table exists: " + name);
  }
  for (const std::string& k : key_columns) {
    if (!table->schema().Has(k)) {
      return Status::InvalidArgument("key column " + k + " not in schema of " +
                                     name);
    }
  }
  BaseTableEntry entry;
  entry.name = name;
  entry.schema = table->schema();
  for (const auto& col : entry.schema.columns()) {
    entry.attrs.push_back(afk::Attribute::Base(name, col.name, col.type));
  }
  entry.afk = afk::Afk::ForBaseRelation(name, entry.attrs, key_columns);
  entry.dfs_path = "base/" + name;
  entry.stats = ComputeExactStats(*table);
  OPD_RETURN_NOT_OK(dfs->Write(entry.dfs_path, table));
  tables_.emplace(name, std::move(entry));
  return Status::OK();
}

Result<const BaseTableEntry*> Catalog::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no such base table: " + name);
  }
  return &it->second;
}

bool Catalog::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.count(name) > 0;
}

std::vector<std::string> Catalog::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace opd::catalog
