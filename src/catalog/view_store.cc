#include "catalog/view_store.h"

#include <utility>

#include "obs/metrics.h"

namespace opd::catalog {

std::vector<const ViewDefinition*> ViewSnapshot::All() const {
  std::vector<const ViewDefinition*> out;
  out.reserve(views_.size());
  for (const auto& def : views_) out.push_back(def.get());
  return out;
}

Result<const ViewDefinition*> ViewSnapshot::Find(ViewId id) const {
  // Snapshots are small and id-ordered; a linear scan keeps them trivially
  // copyable and allocation-free on the lookup path.
  for (const auto& def : views_) {
    if (def->id == id) return def.get();
  }
  return Status::NotFound("no such view in snapshot: " + std::to_string(id));
}

ViewStore::ViewStore(const ViewStore& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  next_id_ = other.next_id_;
  clock_ = other.clock_;
  epoch_ = other.epoch_;
  by_canonical_ = other.by_canonical_;
  for (const auto& [id, def] : other.views_) {
    views_.emplace(id, std::make_shared<ViewDefinition>(*def));
  }
}

ViewStore& ViewStore::operator=(const ViewStore& other) {
  if (this == &other) return *this;
  ViewStore tmp(other);  // deep copy without holding our own lock
  return *this = std::move(tmp);
}

ViewStore::ViewStore(ViewStore&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  next_id_ = other.next_id_;
  clock_ = other.clock_;
  epoch_ = other.epoch_;
  views_ = std::move(other.views_);
  by_canonical_ = std::move(other.by_canonical_);
}

ViewStore& ViewStore::operator=(ViewStore&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  next_id_ = other.next_id_;
  clock_ = other.clock_;
  epoch_ = other.epoch_;
  views_ = std::move(other.views_);
  by_canonical_ = std::move(other.by_canonical_);
  return *this;
}

ViewStore::PublishResult ViewStore::PublishLocked(ViewDefinition def,
                                                  Epoch epoch) {
  const std::string canonical = def.afk.CanonicalString();
  auto& registry = obs::MetricRegistry::Global();
  auto it = by_canonical_.find(canonical);
  if (it != by_canonical_.end()) {
    // An equivalent view already exists — the new materialization is a
    // duplicate (a reuse opportunity the store deduplicates).
    registry.counter("viewstore.add.dedup").Inc();
    return PublishResult{it->second, false};
  }
  registry.counter("viewstore.add.new").Inc();
  ViewId id = next_id_++;
  def.id = id;
  def.created_at = ++clock_;
  def.publish_epoch = epoch;
  by_canonical_[canonical] = id;
  views_.emplace(id, std::make_shared<ViewDefinition>(std::move(def)));
  return PublishResult{id, true};
}

std::vector<ViewStore::PublishResult> ViewStore::PublishBatch(
    std::vector<ViewDefinition> defs, Epoch* epoch_out) {
  std::lock_guard<std::mutex> lock(mu_);
  const Epoch epoch = ++epoch_;
  std::vector<PublishResult> out;
  out.reserve(defs.size());
  for (ViewDefinition& def : defs) {
    out.push_back(PublishLocked(std::move(def), epoch));
  }
  if (epoch_out != nullptr) *epoch_out = epoch;
  return out;
}

ViewStore::PublishResult ViewStore::Publish(ViewDefinition def) {
  std::vector<ViewDefinition> batch;
  batch.push_back(std::move(def));
  return PublishBatch(std::move(batch))[0];
}

ViewId ViewStore::Add(ViewDefinition def) { return Publish(std::move(def)).id; }

Epoch ViewStore::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

ViewSnapshot ViewStore::SnapshotAt(Epoch at) const {
  std::lock_guard<std::mutex> lock(mu_);
  ViewSnapshot snap;
  snap.epoch_ = at;
  for (const auto& [_, def] : views_) {
    if (def->publish_epoch <= at) snap.views_.push_back(def);
  }
  return snap;
}

ViewSnapshot ViewStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  ViewSnapshot snap;
  snap.epoch_ = epoch_;
  for (const auto& [_, def] : views_) snap.views_.push_back(def);
  return snap;
}

Status ViewStore::RecordAccess(ViewId id, double benefit_s) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = views_.find(id);
  if (it == views_.end()) {
    return Status::NotFound("no such view: " + std::to_string(id));
  }
  it->second->access_count += 1;
  it->second->last_access = ++clock_;
  it->second->cumulative_benefit_s += benefit_s;
  return Status::OK();
}

Result<const ViewDefinition*> ViewStore::Find(ViewId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = views_.find(id);
  if (it == views_.end()) {
    obs::MetricRegistry::Global().counter("viewstore.find.miss").Inc();
    return Status::NotFound("no such view: " + std::to_string(id));
  }
  obs::MetricRegistry::Global().counter("viewstore.find.hit").Inc();
  return it->second.get();
}

bool ViewStore::Has(ViewId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return views_.count(id) > 0;
}

std::vector<const ViewDefinition*> ViewStore::All() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const ViewDefinition*> out;
  out.reserve(views_.size());
  for (const auto& [_, def] : views_) out.push_back(def.get());
  return out;
}

size_t ViewStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return views_.size();
}

uint64_t ViewStore::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [_, def] : views_) total += def->bytes;
  return total;
}

uint64_t ViewStore::clock() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clock_;
}

Status ViewStore::Drop(ViewId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = views_.find(id);
  if (it == views_.end()) {
    return Status::NotFound("no such view: " + std::to_string(id));
  }
  by_canonical_.erase(it->second->afk.CanonicalString());
  views_.erase(it);
  return Status::OK();
}

void ViewStore::DropAll() {
  std::lock_guard<std::mutex> lock(mu_);
  views_.clear();
  by_canonical_.clear();
}

size_t ViewStore::DropIdentical(const afk::Afk& afk) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = views_.begin(); it != views_.end();) {
    if (it->second->afk == afk) {
      by_canonical_.erase(it->second->afk.CanonicalString());
      it = views_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

}  // namespace opd::catalog
