#include "catalog/view_store.h"

#include "obs/metrics.h"

namespace opd::catalog {

ViewId ViewStore::Add(ViewDefinition def) {
  const std::string canonical = def.afk.CanonicalString();
  auto it = by_canonical_.find(canonical);
  auto& registry = obs::MetricRegistry::Global();
  if (it != by_canonical_.end()) {
    // An equivalent view already exists — the new materialization is a
    // duplicate (a reuse opportunity the store deduplicates).
    registry.counter("viewstore.add.dedup").Inc();
    return it->second;
  }
  registry.counter("viewstore.add.new").Inc();
  ViewId id = next_id_++;
  def.id = id;
  def.created_at = ++clock_;
  by_canonical_[canonical] = id;
  views_.emplace(id, std::move(def));
  return id;
}

Status ViewStore::RecordAccess(ViewId id, double benefit_s) {
  auto it = views_.find(id);
  if (it == views_.end()) {
    return Status::NotFound("no such view: " + std::to_string(id));
  }
  it->second.access_count += 1;
  it->second.last_access = ++clock_;
  it->second.cumulative_benefit_s += benefit_s;
  return Status::OK();
}

Result<const ViewDefinition*> ViewStore::Find(ViewId id) const {
  auto it = views_.find(id);
  if (it == views_.end()) {
    obs::MetricRegistry::Global().counter("viewstore.find.miss").Inc();
    return Status::NotFound("no such view: " + std::to_string(id));
  }
  obs::MetricRegistry::Global().counter("viewstore.find.hit").Inc();
  return &it->second;
}

std::vector<const ViewDefinition*> ViewStore::All() const {
  std::vector<const ViewDefinition*> out;
  out.reserve(views_.size());
  for (const auto& [_, def] : views_) out.push_back(&def);
  return out;
}

uint64_t ViewStore::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [_, def] : views_) total += def.bytes;
  return total;
}

Status ViewStore::Drop(ViewId id) {
  auto it = views_.find(id);
  if (it == views_.end()) {
    return Status::NotFound("no such view: " + std::to_string(id));
  }
  by_canonical_.erase(it->second.afk.CanonicalString());
  views_.erase(it);
  return Status::OK();
}

void ViewStore::DropAll() {
  views_.clear();
  by_canonical_.clear();
}

size_t ViewStore::DropIdentical(const afk::Afk& afk) {
  size_t dropped = 0;
  for (auto it = views_.begin(); it != views_.end();) {
    if (it->second.afk == afk) {
      by_canonical_.erase(it->second.afk.CanonicalString());
      it = views_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

}  // namespace opd::catalog
