// The experiment environment (TestBed) and the scenario drivers behind the
// paper's evaluation (Section 8.3): query evolution, user evolution, analyst
// accumulation, algorithm comparisons, scalability, convergence, and the
// syntactic-caching comparison.

#ifndef OPD_WORKLOAD_SCENARIOS_H_
#define OPD_WORKLOAD_SCENARIOS_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/view_store.h"
#include "exec/engine.h"
#include "optimizer/calibration.h"
#include "optimizer/optimizer.h"
#include "rewrite/bf_rewrite.h"
#include "rewrite/dp_rewrite.h"
#include "rewrite/syntactic.h"
#include "session/session.h"
#include "storage/dfs.h"
#include "udf/udf_registry.h"
#include "workload/datagen.h"
#include "workload/queries.h"

namespace opd::workload {

struct TestBedConfig {
  DataGenConfig data;
  /// Every subsystem knob (cost params, optimizer, engine, rewrite, obs),
  /// consolidated under the session they configure.
  SessionOptions session;
  /// Calibrate UDF cost scalars on 1% samples at startup (Section 4.2).
  bool calibrate_udfs = true;
  /// Modeled size of the TWTR log; data_scale is derived so the synthetic
  /// table models this many bytes (paper: 800 GB).
  double modeled_twtr_gb = 800.0;
};

/// \brief The experiment environment: an opd::Session loaded with the
/// paper's synthetic data and UDF workload, plus the two comparison
/// rewriters (DP and syntactic caching) used by the ablation studies.
class TestBed {
 public:
  /// Creates the bed. Setting the OPD_TRACE environment variable turns on
  /// session tracing (used by scripts/check.sh to exercise traced runs).
  static Result<std::unique_ptr<TestBed>> Create(TestBedConfig config = {});

  /// Drops all views (metadata + DFS files). Base tables survive.
  void DropAllViews();

  /// Executes the original plan of query A<analyst>v<version>, retaining
  /// opportunistic views.
  Result<exec::ExecResult> RunOriginal(int analyst, int version);

  /// Rewrites the query with BFREWRITE against current views, then executes
  /// the best plan. The metrics include statistics collection; the rewrite
  /// outcome carries the search stats.
  struct RewrittenRun {
    exec::ExecResult exec;
    rewrite::RewriteOutcome outcome;
    /// Reported REWR time: execution + stats collection + rewrite runtime
    /// (the paper's REWR metric).
    double TotalTime() const {
      return exec.metrics.TotalTime() + outcome.stats.runtime_s;
    }
  };
  Result<RewrittenRun> RunRewritten(int analyst, int version);

  /// Registers every job of the plan as a view *without executing it*, using
  /// optimizer estimates for statistics (used only by the Figure 10
  /// scalability study to populate large view stores cheaply).
  Status RegisterPlanViews(plan::Plan* plan);

  /// The underlying session; everything below delegates to it.
  Session& session() { return *session_; }
  storage::Dfs& dfs() { return session_->dfs(); }
  catalog::Catalog& catalog() { return session_->catalog(); }
  catalog::ViewStore& views() { return session_->views(); }
  udf::UdfRegistry& udfs() { return session_->udfs(); }
  const optimizer::Optimizer& optimizer() { return session_->optimizer(); }
  exec::Engine& engine() { return session_->engine(); }
  const rewrite::BfRewriter& bfr() { return session_->rewriter(); }
  const rewrite::DpRewriter& dp() { return *dp_; }
  const rewrite::SyntacticRewriter& syntactic() { return *syntactic_; }
  const TestBedConfig& config() const { return config_; }

 private:
  TestBed() = default;
  Status Calibrate();

  TestBedConfig config_;
  std::unique_ptr<Session> session_;
  std::unique_ptr<rewrite::DpRewriter> dp_;
  std::unique_ptr<rewrite::SyntacticRewriter> syntactic_;
};

// --- Scenario drivers -------------------------------------------------------

/// One measured query: ORIG vs REWR.
struct ComparisonRow {
  int analyst = 0;
  int version = 0;
  double orig_time_s = 0;
  double rewr_time_s = 0;  // includes rewrite + stats time
  double orig_gb = 0;      // data manipulated, modeled GB
  double rewr_gb = 0;
  rewrite::RewriteStats stats;

  double ImprovementPct() const {
    return orig_time_s <= 0 ? 0
                            : 100.0 * (orig_time_s - rewr_time_s) /
                                  orig_time_s;
  }
};

/// Query evolution (Section 8.3.1): per analyst, run v1..v4 in order,
/// rewriting each version against the views of earlier versions.
Result<std::vector<ComparisonRow>> RunQueryEvolution(TestBed* bed);

/// User evolution (Section 8.3.2): for each holdout analyst, run every other
/// analyst's v1, then rewrite/execute the holdout's v1.
/// `drop_identical_views` reproduces the Table 2 variant.
Result<std::vector<ComparisonRow>> RunUserEvolution(
    TestBed* bed, bool drop_identical_views = false);

/// Analyst accumulation (Table 1): improvement of A5v3 as analysts' queries
/// (all 4 versions each) are added one at a time. Returns improvement % per
/// number of analysts added (index 0 = 1 analyst = just A5's own v3 baseline
/// run with no views).
Result<std::vector<double>> RunAnalystAccumulation(TestBed* bed);

/// Discards from the store every view identical to some target of `plan`.
Status DropIdenticalViews(TestBed* bed, int analyst, int version);

}  // namespace opd::workload

#endif  // OPD_WORKLOAD_SCENARIOS_H_
