// The evolutionary-analytics workload (Section 8.1, from LeFevre et al.,
// DanaC'13 [16]): 8 analysts x 4 query versions over TWTR / 4SQ / LAND.
// Version j+1 of a query revises version j — changed thresholds, added data
// sources, extra joins — producing the overlap structure the paper's
// experiments measure. Every query applies at least one UDF.

#ifndef OPD_WORKLOAD_QUERIES_H_
#define OPD_WORKLOAD_QUERIES_H_

#include "common/status.h"
#include "plan/plan.h"

namespace opd::workload {

constexpr int kNumAnalysts = 8;
constexpr int kNumVersions = 4;

/// Builds query "A<analyst>v<version>" (analyst 1-8, version 1-4) as a fresh
/// unannotated plan. Deterministic: repeated calls build structurally
/// identical plans.
Result<plan::Plan> BuildQuery(int analyst, int version);

/// One-line description of each analyst's exploration topic.
const char* AnalystTopic(int analyst);

}  // namespace opd::workload

#endif  // OPD_WORKLOAD_QUERIES_H_
