#include "workload/scenarios.h"

#include <algorithm>
#include <cstdlib>

#include "catalog/eviction.h"
#include "exec/udf_exec.h"
#include "plan/fingerprint.h"
#include "plan/job.h"
#include "udf/builtin_udfs.h"

namespace opd::workload {

namespace {

constexpr double kGB = 1024.0 * 1024.0 * 1024.0;

}  // namespace

Result<std::unique_ptr<TestBed>> TestBed::Create(TestBedConfig config) {
  auto bed = std::unique_ptr<TestBed>(new TestBed());
  bed->config_ = config;

  storage::TablePtr twtr = GenerateTwitterLog(config.data);
  storage::TablePtr fsq = GenerateFoursquareLog(config.data);
  storage::TablePtr land = GenerateLandmarks(config.data);

  // Derive the byte scale so the synthetic TWTR log models the paper's
  // 800 GB Twitter log.
  SessionOptions sopts = config.session;
  const double twtr_bytes = static_cast<double>(twtr->ByteSize());
  if (twtr_bytes > 0) {
    sopts.cost.data_scale = config.modeled_twtr_gb * kGB / twtr_bytes;
  }
  if (std::getenv("OPD_TRACE") != nullptr) sopts.obs.tracing = true;

  OPD_ASSIGN_OR_RETURN(bed->session_, Session::Create(sopts));
  OPD_RETURN_NOT_OK(udf::RegisterBuiltinUdfs(&bed->session_->udfs()));
  OPD_RETURN_NOT_OK(bed->session_->RegisterTable(twtr, {"tweet_id"}));
  OPD_RETURN_NOT_OK(bed->session_->RegisterTable(fsq, {"checkin_id"}));
  OPD_RETURN_NOT_OK(bed->session_->RegisterTable(land, {"location_id"}));

  // The comparison rewriters (ablations) share the session's optimizer and
  // view store.
  bed->dp_ = std::make_unique<rewrite::DpRewriter>(
      &bed->session_->optimizer(), &bed->session_->views(),
      config.session.rewrite);
  bed->syntactic_ = std::make_unique<rewrite::SyntacticRewriter>(
      &bed->session_->optimizer(), &bed->session_->views());

  if (config.calibrate_udfs) {
    OPD_RETURN_NOT_OK(bed->Calibrate());
  }
  return bed;
}

Status TestBed::Calibrate() {
  OPD_ASSIGN_OR_RETURN(const catalog::BaseTableEntry* twtr_entry,
                       catalog().Find("TWTR"));
  OPD_ASSIGN_OR_RETURN(const catalog::BaseTableEntry* land_entry,
                       catalog().Find("LAND"));
  OPD_ASSIGN_OR_RETURN(storage::TablePtr twtr,
                       dfs().Peek(twtr_entry->dfs_path));
  OPD_ASSIGN_OR_RETURN(storage::TablePtr land,
                       dfs().Peek(land_entry->dfs_path));

  optimizer::CalibrationOptions copts;
  auto calibrate = [&](const std::string& name, const storage::Table& input,
                       const udf::Params& params) -> Status {
    OPD_ASSIGN_OR_RETURN(udf::UdfDefinition * def,
                         udfs().FindMutable(name));
    return optimizer::CalibrateUdf(def, input, params, copts);
  };

  // UDFs calibrated directly on the raw logs.
  OPD_RETURN_NOT_OK(calibrate("UDF_CLASSIFY_WINE_SCORE", *twtr, {}));
  OPD_RETURN_NOT_OK(calibrate("UDF_CLASSIFY_FOOD_SCORE", *twtr, {}));
  OPD_RETURN_NOT_OK(calibrate("UDAF_CLASSIFY_AFFLUENT", *twtr, {}));
  OPD_RETURN_NOT_OK(calibrate("UDF_FRIENDSHIP_STRENGTH", *twtr, {}));
  OPD_RETURN_NOT_OK(calibrate("UDF_EXTRACT_LATLON", *twtr, {}));
  OPD_RETURN_NOT_OK(calibrate("UDF_TOKENIZE", *twtr, {}));
  OPD_RETURN_NOT_OK(calibrate("UDF_PARSE_LOG", *twtr, {}));
  udf::Params menu_params = {
      {"ref_menu", storage::Value(ReferenceMenu())},
      {"min_sim", storage::Value(0.1)}};
  OPD_RETURN_NOT_OK(calibrate("UDF_MENU_SIMILARITY", *land, menu_params));

  // UDFs whose inputs are other UDFs' outputs: chain the sampled stages.
  storage::Table sample = optimizer::SampleTable(*twtr, 0.05, copts.seed);
  OPD_ASSIGN_OR_RETURN(const udf::UdfDefinition* latlon,
                       udfs().Find("UDF_EXTRACT_LATLON"));
  storage::Table with_latlon;
  OPD_RETURN_NOT_OK(
      exec::RunLocalFunctions(*latlon, sample, {}, &with_latlon));
  OPD_RETURN_NOT_OK(calibrate("UDF_GEO_TILE", with_latlon,
                              {{"tile_size", storage::Value(1.0)}}));

  OPD_ASSIGN_OR_RETURN(const udf::UdfDefinition* tokenize,
                       udfs().Find("UDF_TOKENIZE"));
  storage::Table tokens;
  OPD_RETURN_NOT_OK(exec::RunLocalFunctions(*tokenize, sample, {}, &tokens));
  OPD_RETURN_NOT_OK(calibrate("UDF_WORD_COUNT", tokens, {}));

  OPD_ASSIGN_OR_RETURN(const udf::UdfDefinition* friendship,
                       udfs().Find("UDF_FRIENDSHIP_STRENGTH"));
  storage::Table pairs;
  OPD_RETURN_NOT_OK(exec::RunLocalFunctions(
      *friendship, *twtr, {{"min_strength", storage::Value(1.0)}}, &pairs));
  OPD_RETURN_NOT_OK(calibrate("UDF_NETWORK_INFLUENCE", pairs, {}));
  return Status::OK();
}

void TestBed::DropAllViews() {
  views().DropAll();
  dfs().DeletePrefix("views/");
  dfs().DeletePrefix("synth/");
}

Result<exec::ExecResult> TestBed::RunOriginal(int analyst, int version) {
  OPD_ASSIGN_OR_RETURN(plan::Plan plan, BuildQuery(analyst, version));
  OPD_ASSIGN_OR_RETURN(RunResult run, session_->Run(std::move(plan),
                                                    RunOptions{.rewrite = false}));
  exec::ExecResult exec;
  exec.table = std::move(run.table);
  exec.metrics = run.metrics;
  exec.jobs = std::move(run.jobs);
  return exec;
}

Result<TestBed::RewrittenRun> TestBed::RunRewritten(int analyst,
                                                    int version) {
  OPD_ASSIGN_OR_RETURN(plan::Plan plan, BuildQuery(analyst, version));
  OPD_ASSIGN_OR_RETURN(RunResult run, session_->Run(std::move(plan)));
  exec::ExecResult exec;
  exec.table = std::move(run.table);
  exec.metrics = run.metrics;
  exec.jobs = std::move(run.jobs);
  return RewrittenRun{std::move(exec), std::move(run.rewrite)};
}

Status TestBed::RegisterPlanViews(plan::Plan* plan) {
  OPD_RETURN_NOT_OK(session_->optimizer().Prepare(plan));
  static int synth_counter = 0;
  for (const plan::OpNodePtr& node : plan->TopoOrder()) {
    if (node->kind == plan::OpKind::kScan) continue;
    catalog::ViewDefinition def;
    def.dfs_path = "synth/" + std::to_string(synth_counter++);
    def.afk = node->afk;
    def.out_attrs = node->out_attrs;
    def.schema = node->out_schema;
    def.fingerprint = plan::Fingerprint(node);
    def.bytes = static_cast<uint64_t>(node->est_out_bytes);
    def.producer = plan->name();
    def.stats.rows = node->est_rows;
    def.stats.avg_row_bytes =
        node->est_rows > 0 ? node->est_out_bytes / node->est_rows : 0;
    def.stats.distinct = node->est_distinct;
    def.stats.col_bytes = node->est_col_bytes;
    // A placeholder (empty) table keeps the DFS consistent; the scalability
    // study never executes these plans.
    auto placeholder =
        std::make_shared<const storage::Table>(def.dfs_path, def.schema);
    OPD_RETURN_NOT_OK(dfs().Write(def.dfs_path, placeholder));
    views().Add(std::move(def));
  }
  return Status::OK();
}

// --- Scenario drivers -------------------------------------------------------

namespace {

ComparisonRow MakeRow(int analyst, int version,
                      const exec::ExecResult& orig,
                      const TestBed::RewrittenRun& rewr, double data_scale) {
  ComparisonRow row;
  row.analyst = analyst;
  row.version = version;
  row.orig_time_s = orig.metrics.sim_time_s;
  row.rewr_time_s = rewr.TotalTime();
  row.orig_gb = static_cast<double>(orig.metrics.BytesManipulated()) *
                data_scale / kGB;
  row.rewr_gb = static_cast<double>(rewr.exec.metrics.BytesManipulated()) *
                data_scale / kGB;
  row.stats = rewr.outcome.stats;
  return row;
}

}  // namespace

Result<std::vector<ComparisonRow>> RunQueryEvolution(TestBed* bed) {
  std::vector<ComparisonRow> rows;
  const double scale = bed->optimizer().cost_model().params().data_scale;
  for (int analyst = 1; analyst <= kNumAnalysts; ++analyst) {
    bed->DropAllViews();
    for (int version = 1; version <= kNumVersions; ++version) {
      // Rewrite before this version's own original run creates its views.
      OPD_ASSIGN_OR_RETURN(TestBed::RewrittenRun rewr,
                           bed->RunRewritten(analyst, version));
      OPD_ASSIGN_OR_RETURN(exec::ExecResult orig,
                           bed->RunOriginal(analyst, version));
      rows.push_back(MakeRow(analyst, version, orig, rewr, scale));
    }
  }
  return rows;
}

Result<std::vector<ComparisonRow>> RunUserEvolution(
    TestBed* bed, bool drop_identical_views) {
  std::vector<ComparisonRow> rows;
  const double scale = bed->optimizer().cost_model().params().data_scale;
  for (int holdout = 1; holdout <= kNumAnalysts; ++holdout) {
    bed->DropAllViews();
    for (int analyst = 1; analyst <= kNumAnalysts; ++analyst) {
      if (analyst == holdout) continue;
      OPD_ASSIGN_OR_RETURN(exec::ExecResult ignored,
                           bed->RunOriginal(analyst, 1));
      (void)ignored;
    }
    if (drop_identical_views) {
      OPD_RETURN_NOT_OK(DropIdenticalViews(bed, holdout, 1));
    }
    OPD_ASSIGN_OR_RETURN(TestBed::RewrittenRun rewr,
                         bed->RunRewritten(holdout, 1));
    OPD_ASSIGN_OR_RETURN(exec::ExecResult orig,
                         bed->RunOriginal(holdout, 1));
    rows.push_back(MakeRow(holdout, 1, orig, rewr, scale));
  }
  return rows;
}

Result<std::vector<double>> RunAnalystAccumulation(TestBed* bed) {
  bed->DropAllViews();
  OPD_ASSIGN_OR_RETURN(exec::ExecResult baseline, bed->RunOriginal(5, 3));
  const double baseline_time = baseline.metrics.sim_time_s;
  // Remove the baseline run's own views: the re-executions may only benefit
  // from *other analysts'* views.
  bed->DropAllViews();

  std::vector<double> improvements = {0.0};  // 1 analyst: A5 alone
  const int order[] = {1, 2, 3, 4, 6, 7, 8};
  for (int analyst : order) {
    for (int version = 1; version <= kNumVersions; ++version) {
      OPD_ASSIGN_OR_RETURN(exec::ExecResult ignored,
                           bed->RunOriginal(analyst, version));
      (void)ignored;
    }
    // Measure, then roll back the measurement run's own view contributions.
    catalog::ViewStore snapshot = bed->views();
    OPD_ASSIGN_OR_RETURN(TestBed::RewrittenRun rewr, bed->RunRewritten(5, 3));
    bed->views() = std::move(snapshot);
    double improvement =
        baseline_time <= 0
            ? 0
            : 100.0 * (baseline_time - rewr.TotalTime()) / baseline_time;
    improvements.push_back(improvement);
  }
  return improvements;
}

Status DropIdenticalViews(TestBed* bed, int analyst, int version) {
  OPD_ASSIGN_OR_RETURN(plan::Plan plan, BuildQuery(analyst, version));
  // Annotation is enough; no costing needed to compare AFK annotations.
  plan::AnnotationContext ctx = bed->optimizer().context();
  OPD_RETURN_NOT_OK(plan::AnnotatePlan(plan, ctx));
  for (const plan::OpNodePtr& node : plan.TopoOrder()) {
    if (node->kind == plan::OpKind::kScan) continue;
    bed->views().DropIdentical(node->afk);
  }
  return Status::OK();
}

}  // namespace opd::workload
