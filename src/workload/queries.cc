#include "workload/queries.h"

#include "storage/value.h"
#include "workload/datagen.h"

namespace opd::workload {

using afk::CmpOp;
using plan::AggFn;
using plan::AggSpec;
using plan::FilterCond;
using plan::OpNodePtr;
using storage::Value;

namespace {

// --- Shared extraction fragments (the first jobs most queries run over the
// raw logs; their materializations are the highest-value opportunistic
// views, since they save re-reading the wide logs) ------------------------

// Two overlapping extraction habits over the wide log. They are never
// syntactically identical (different column sets), but because projection
// preserves the (F, K) context, any computation over one can be replayed
// over the other when the needed columns are present — the "near-miss view"
// richness the paper's corpus had.
OpNodePtr TwtrExtract() {
  return plan::Project(
      plan::Scan("TWTR"),
      {"user_id", "tweet_text", "mention_user", "raw_meta"});
}

// The "core" extraction shared by the text- and metadata-oriented analysts
// (A2, A5, A8): keeps the tweet id as well.
OpNodePtr TwtrCoreExtract() {
  return plan::Project(
      plan::Scan("TWTR"),
      {"tweet_id", "user_id", "tweet_text", "raw_meta", "mention_user"});
}

OpNodePtr TwtrGeoExtract() {
  return plan::Project(plan::Scan("TWTR"), {"tweet_id", "user_id", "geo"});
}

OpNodePtr CheckinExtract() {
  return plan::Project(plan::Scan("FSQ"), {"user_id", "location_id"});
}

OpNodePtr LandCat() {
  return plan::Project(plan::Scan("LAND"), {"location_id", "category"});
}

// --- Shared analytic fragments ---------------------------------------------

OpNodePtr WineScore(double threshold) {
  return plan::Udf(TwtrExtract(), "UDF_CLASSIFY_WINE_SCORE",
                   {{"threshold", Value(threshold)}});
}

OpNodePtr FoodScore(double threshold) {
  return plan::Udf(TwtrCoreExtract(), "UDF_CLASSIFY_FOOD_SCORE",
                   {{"threshold", Value(threshold)}});
}

OpNodePtr Affluent(double min_affluence) {
  return plan::Udf(TwtrExtract(), "UDAF_CLASSIFY_AFFLUENT",
                   {{"min_affluence", Value(min_affluence)}});
}

OpNodePtr Friends(double min_strength) {
  return plan::Udf(TwtrExtract(), "UDF_FRIENDSHIP_STRENGTH",
                   {{"min_strength", Value(min_strength)}});
}

OpNodePtr ParsedLog() {
  return plan::Udf(TwtrCoreExtract(), "UDF_PARSE_LOG");
}

// Per-user check-in counts at locations of one category.
OpNodePtr CategoryCheckins(const std::string& category,
                           const std::string& count_name, double min_count) {
  OpNodePtr land = plan::Filter(
      LandCat(), FilterCond::Compare("category", CmpOp::kEq, Value(category)));
  OpNodePtr joined = plan::Join(CheckinExtract(), std::move(land),
                                {{"location_id", "location_id"}});
  OpNodePtr grouped =
      plan::GroupBy(std::move(joined), {"user_id"},
                    {AggSpec{AggFn::kCount, "", count_name}});
  return plan::Filter(std::move(grouped), FilterCond::Compare(
                                              count_name, CmpOp::kGt,
                                              Value(min_count)));
}

// Per-user tweet volume.
OpNodePtr TweetCount(double min_count) {
  OpNodePtr grouped =
      plan::GroupBy(TwtrCoreExtract(), {"user_id"},
                    {AggSpec{AggFn::kCount, "", "tweet_count"}});
  return plan::Filter(std::move(grouped),
                      FilterCond::Compare("tweet_count", CmpOp::kGt,
                                          Value(min_count)));
}

// Per-location check-in volume.
OpNodePtr LocationCheckins(double min_count) {
  OpNodePtr grouped =
      plan::GroupBy(CheckinExtract(), {"location_id"},
                    {AggSpec{AggFn::kCount, "", "loc_checkins"}});
  return plan::Filter(std::move(grouped),
                      FilterCond::Compare("loc_checkins", CmpOp::kGt,
                                          Value(min_count)));
}

// Restaurants whose menus resemble the reference menu.
OpNodePtr SimilarMenus(double min_sim) {
  OpNodePtr land = plan::Filter(
      plan::Project(plan::Scan("LAND"),
                    {"location_id", "category", "menu_text"}),
      FilterCond::Compare("category", CmpOp::kEq, Value("restaurant")));
  return plan::Udf(std::move(land), "UDF_MENU_SIMILARITY",
                   {{"ref_menu", Value(ReferenceMenu())},
                    {"min_sim", Value(min_sim)}});
}

// Tweets with parsed coordinates and a grid tile id.
OpNodePtr TweetTiles(double tile_size) {
  OpNodePtr geo = plan::Udf(TwtrGeoExtract(), "UDF_EXTRACT_LATLON");
  return plan::Udf(std::move(geo), "UDF_GEO_TILE",
                   {{"tile_size", Value(tile_size)}});
}

OpNodePtr LandmarkTiles(double tile_size) {
  OpNodePtr geo = plan::Udf(
      plan::Project(plan::Scan("LAND"), {"location_id", "category", "geo"}),
      "UDF_EXTRACT_LATLON");
  return plan::Udf(std::move(geo), "UDF_GEO_TILE",
                   {{"tile_size", Value(tile_size)}});
}

OpNodePtr TileDensity(OpNodePtr tiles, const std::string& count_name,
                      double min_count) {
  OpNodePtr grouped = plan::GroupBy(std::move(tiles), {"tile_id"},
                                    {AggSpec{AggFn::kCount, "", count_name}});
  return plan::Filter(std::move(grouped),
                      FilterCond::Compare(count_name, CmpOp::kGt,
                                          Value(min_count)));
}

// Check-in coordinates (via the landmark registry) tiled onto the grid.
OpNodePtr CheckinTileDensity(double tile_size, double min_count) {
  OpNodePtr chk_geo = plan::Udf(
      plan::Join(CheckinExtract(),
                 plan::Project(plan::Scan("LAND"), {"location_id", "geo"}),
                 {{"location_id", "location_id"}}),
      "UDF_EXTRACT_LATLON");
  OpNodePtr tiles = plan::Udf(std::move(chk_geo), "UDF_GEO_TILE",
                              {{"tile_size", Value(tile_size)}});
  return TileDensity(std::move(tiles), "checkin_density", min_count);
}

OpNodePtr Tokens() {
  return plan::Udf(plan::Project(plan::Scan("TWTR"),
                                 {"user_id", "tweet_text"}),
                   "UDF_TOKENIZE");
}

// --- Analyst 1: wine lovers (the paper's Example 1) ------------------------

OpNodePtr A1(int version) {
  // v1 thresholds; v2 *lowers* the wine threshold (no reuse of the wine
  // view, as in the paper's A1v2); v3/v4 raise it above every earlier
  // version (reusable with compensating filters, but never syntactically).
  double wine_thr = version == 1 ? 1.0 : (version == 2 ? 0.6 : 1.2);
  double checkin_min = version <= 2 ? 3 : 6;

  OpNodePtr core = plan::Join(WineScore(wine_thr), Affluent(0.04),
                              {{"user_id", "user_id"}});
  if (version == 1) {
    return plan::Join(std::move(core), Friends(2), {{"user_id", "user_a"}});
  }
  OpNodePtr winebar =
      CategoryCheckins("wine_bar", "winebar_checkins", checkin_min);
  if (version <= 3) {
    OpNodePtr with_friends =
        plan::Join(std::move(core), Friends(2), {{"user_id", "user_a"}});
    return plan::Join(std::move(with_friends), std::move(winebar),
                      {{"user_id", "user_id"}});
  }
  // v4: require that the user's *friends* also frequent wine bars.
  OpNodePtr friend_checkins = plan::Join(Friends(2), std::move(winebar),
                                         {{"user_b", "user_id"}});
  return plan::Join(std::move(core), std::move(friend_checkins),
                    {{"user_id", "user_a"}});
}

// --- Analyst 2: prolific foodies (the paper's Figure 4 query) --------------

OpNodePtr A2(int version) {
  double food_thr = version == 1 ? 0.5 : (version == 2 ? 0.8 : 1.0);
  OpNodePtr core = plan::Join(FoodScore(food_thr), TweetCount(40),
                              {{"user_id", "user_id"}});
  if (version == 1) return core;
  core = plan::Join(std::move(core),
                    CategoryCheckins("restaurant", "rest_checkins", 4),
                    {{"user_id", "user_id"}});
  if (version == 2) return core;
  // v3: check-ins at restaurants with menus similar to the reference menu.
  double sim_visits_min = version == 3 ? 1 : 2;
  OpNodePtr sim_visits = plan::Filter(
      plan::GroupBy(plan::Join(CheckinExtract(), SimilarMenus(0.15),
                               {{"location_id", "location_id"}}),
                    {"user_id"}, {AggSpec{AggFn::kCount, "", "sim_checkins"}}),
      FilterCond::Compare("sim_checkins", CmpOp::kGt, Value(sim_visits_min)));
  core = plan::Join(std::move(core), std::move(sim_visits),
                    {{"user_id", "user_id"}});
  if (version == 3) return core;
  return plan::Join(std::move(core), Affluent(0.04),
                    {{"user_id", "user_id"}});
}

// --- Analyst 3: geographic tweet density -----------------------------------

OpNodePtr A3(int version) {
  double tile = version == 1 ? 1.0 : 0.5;
  double density_min = version <= 2 ? 40 : 60;
  // A3 narrows the density threshold in two steps (>15, then the real one):
  // the intermediate view is compensable by anyone with a threshold above
  // 15 without ever being syntactically identical to their plans.
  OpNodePtr tweets = plan::Filter(
      plan::Filter(
          plan::GroupBy(TweetTiles(tile), {"tile_id"},
                        {AggSpec{AggFn::kCount, "", "tweet_density"}}),
          FilterCond::Compare("tweet_density", CmpOp::kGt, Value(15.0))),
      FilterCond::Compare("tweet_density", CmpOp::kGt, Value(density_min)));
  if (version == 1) return tweets;
  OpNodePtr land_tiles = LandmarkTiles(tile);
  if (version >= 3) {
    land_tiles = plan::Filter(
        std::move(land_tiles),
        FilterCond::Compare("category", CmpOp::kEq, Value("restaurant")));
  }
  OpNodePtr land = TileDensity(std::move(land_tiles), "landmark_density",
                               version <= 3 ? 1 : 2);
  OpNodePtr joined = plan::Join(std::move(tweets), std::move(land),
                                {{"tile_id", "tile_id"}});
  if (version <= 3) return joined;
  // v4: add check-in density per tile (the same lineage A7 explores).
  return plan::Join(std::move(joined), CheckinTileDensity(tile, 5),
                    {{"tile_id", "tile_id"}});
}

// --- Analyst 4: network influencers -----------------------------------------

OpNodePtr A4(int version) {
  // A4 studies weaker ties than A1 (min_strength 1.5 vs 2): its friendship
  // views are never identical to A1's, yet A1's stronger filter can be
  // compensated from them.
  double min_influence = version <= 3 ? 4 : 8;
  OpNodePtr inf = plan::Udf(Friends(1.5), "UDF_NETWORK_INFLUENCE",
                            {{"min_influence", Value(min_influence)}});
  if (version == 1) return inf;
  OpNodePtr core = plan::Join(std::move(inf), Affluent(0.04),
                              {{"inf_user", "user_id"}});
  if (version == 2) return core;
  core = plan::Join(std::move(core), TweetCount(30),
                    {{"inf_user", "user_id"}});
  if (version == 3) return core;
  return plan::Join(std::move(core), WineScore(1.0),
                    {{"inf_user", "user_id"}});
}

// --- Analyst 5: restaurant marketing (A5v3 uses all three logs) ------------

OpNodePtr A5(int version) {
  double min_sim = version <= 3 ? 0.15 : 0.25;
  double min_loc_checkins = version == 1 ? 8 : (version <= 3 ? 12 : 15);
  OpNodePtr core =
      plan::Join(SimilarMenus(min_sim), LocationCheckins(min_loc_checkins),
                 {{"location_id", "location_id"}});
  if (version <= 2) return core;
  // v3: how many food-positive users visit each similar-menu restaurant.
  double min_foodie_visits = version == 3 ? 1 : 2;
  OpNodePtr foodie_visits = plan::Filter(
      plan::GroupBy(
          plan::Join(plan::Join(CheckinExtract(), SimilarMenus(min_sim),
                                {{"location_id", "location_id"}}),
                     FoodScore(0.5), {{"user_id", "user_id"}}),
          {"location_id"}, {AggSpec{AggFn::kCount, "", "foodie_visits"}}),
      FilterCond::Compare("foodie_visits", CmpOp::kGt,
                          Value(min_foodie_visits)));
  return plan::Join(std::move(core), std::move(foodie_visits),
                    {{"location_id", "location_id"}});
}

// --- Analyst 6: word trends --------------------------------------------------

OpNodePtr A6(int version) {
  switch (version) {
    case 1:
      return plan::Udf(Tokens(), "UDF_WORD_COUNT",
                       {{"min_count", Value(10.0)}});
    case 2: {
      OpNodePtr utc =
          plan::GroupBy(Tokens(), {"user_id"},
                        {AggSpec{AggFn::kCount, "", "token_count"}});
      OpNodePtr chatty = plan::Filter(
          std::move(utc),
          FilterCond::Compare("token_count", CmpOp::kGt, Value(80.0)));
      return plan::Join(std::move(chatty), Affluent(0.04),
                        {{"user_id", "user_id"}});
    }
    case 3: {
      OpNodePtr utc =
          plan::GroupBy(Tokens(), {"user_id"},
                        {AggSpec{AggFn::kCount, "", "token_count"}});
      OpNodePtr chatty = plan::Filter(
          std::move(utc),
          FilterCond::Compare("token_count", CmpOp::kGt, Value(120.0)));
      return plan::Join(std::move(chatty), Friends(2),
                        {{"user_id", "user_a"}});
    }
    default: {
      OpNodePtr wc = plan::Udf(Tokens(), "UDF_WORD_COUNT",
                               {{"min_count", Value(10.0)}});
      return plan::Filter(
          std::move(wc),
          FilterCond::Compare("wcount", CmpOp::kGt, Value(60.0)));
    }
  }
}

// --- Analyst 7: check-in behaviour ------------------------------------------

OpNodePtr A7(int version) {
  // Where does crowd activity (tweets + check-ins) concentrate?
  // A7 tiles the same logs as A3 but with weaker density thresholds — its
  // v1 views are semantically reusable by A3 (and vice versa) without ever
  // being syntactically identical.
  if (version <= 2) {
    double tweet_min = version == 1 ? 20 : 35;
    double chk_min = version == 1 ? 8 : 12;
    return plan::Join(
        TileDensity(TweetTiles(1.0), "tweet_density", tweet_min),
        CheckinTileDensity(1.0, chk_min), {{"tile_id", "tile_id"}});
  }
  // v3/v4: zoom to finer tiles and swap the tweet side for landmarks.
  double chk_min = version == 3 ? 8 : 12;
  double land_min = version == 3 ? 1 : 2;
  return plan::Join(
      CheckinTileDensity(0.5, chk_min),
      TileDensity(LandmarkTiles(0.5), "landmark_density", land_min),
      {{"tile_id", "tile_id"}});
}

// --- Analyst 8: device / language analysis ----------------------------------

OpNodePtr A8(int version) {
  switch (version) {
    case 1: {
      OpNodePtr grouped =
          plan::GroupBy(ParsedLog(), {"lang", "device"},
                        {AggSpec{AggFn::kCount, "", "n_tweets"}});
      return plan::Filter(
          std::move(grouped),
          FilterCond::Compare("n_tweets", CmpOp::kGt, Value(150.0)));
    }
    case 2:
    case 4: {
      double min_tweets = version == 2 ? 20 : 35;
      OpNodePtr user_dev =
          plan::GroupBy(ParsedLog(), {"user_id", "device"},
                        {AggSpec{AggFn::kCount, "", "user_dev_tweets"}});
      OpNodePtr heavy = plan::Filter(
          std::move(user_dev),
          FilterCond::Compare("user_dev_tweets", CmpOp::kGt,
                              Value(min_tweets)));
      if (version == 2) {
        return plan::Join(std::move(heavy), Affluent(0.04),
                          {{"user_id", "user_id"}});
      }
      return plan::Join(std::move(heavy), Friends(2),
                        {{"user_id", "user_a"}});
    }
    default: {  // v3
      OpNodePtr en = plan::Filter(
          ParsedLog(),
          FilterCond::Compare("lang", CmpOp::kEq, Value("en")));
      OpNodePtr user_en =
          plan::GroupBy(std::move(en), {"user_id"},
                        {AggSpec{AggFn::kCount, "", "en_tweets"}});
      OpNodePtr heavy = plan::Filter(
          std::move(user_en),
          FilterCond::Compare("en_tweets", CmpOp::kGt, Value(15.0)));
      return plan::Join(std::move(heavy), WineScore(1.0),
                        {{"user_id", "user_id"}});
    }
  }
}

}  // namespace

const char* AnalystTopic(int analyst) {
  switch (analyst) {
    case 1:
      return "wine lovers for a regional wine coupon";
    case 2:
      return "prolific foodies";
    case 3:
      return "geographic tweet density";
    case 4:
      return "network influencers";
    case 5:
      return "restaurant marketing";
    case 6:
      return "word trends";
    case 7:
      return "check-in behaviour";
    case 8:
      return "device and language analysis";
    default:
      return "?";
  }
}

Result<plan::Plan> BuildQuery(int analyst, int version) {
  if (analyst < 1 || analyst > kNumAnalysts || version < 1 ||
      version > kNumVersions) {
    return Status::InvalidArgument("no such query: A" +
                                   std::to_string(analyst) + "v" +
                                   std::to_string(version));
  }
  OpNodePtr root;
  switch (analyst) {
    case 1:
      root = A1(version);
      break;
    case 2:
      root = A2(version);
      break;
    case 3:
      root = A3(version);
      break;
    case 4:
      root = A4(version);
      break;
    case 5:
      root = A5(version);
      break;
    case 6:
      root = A6(version);
      break;
    case 7:
      root = A7(version);
      break;
    default:
      root = A8(version);
      break;
  }
  return plan::Plan(std::move(root), "A" + std::to_string(analyst) + "v" +
                                         std::to_string(version));
}

}  // namespace opd::workload
