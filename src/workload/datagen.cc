#include "workload/datagen.h"

#include <array>
#include <cmath>

#include "common/rng.h"

namespace opd::workload {

using storage::Column;
using storage::DataType;
using storage::Row;
using storage::Schema;
using storage::Table;
using storage::TablePtr;
using storage::Value;

namespace {

const std::array<const char*, 40> kNeutralWords = {
    "the",     "today",  "just",    "really",  "going",   "out",
    "with",    "friends","morning", "evening", "city",    "work",
    "meeting", "traffic","weather", "sunny",   "rain",    "monday",
    "weekend", "game",   "music",   "movie",   "news",    "photo",
    "walk",    "train",  "coffee",  "break",   "project", "deadline",
    "email",   "phone",  "update",  "release", "launch",  "travel",
    "airport", "hotel",  "beach",   "mountain"};

const std::array<const char*, 8> kWineWords = {
    "wine", "merlot", "cabernet", "pinot", "chardonnay", "vineyard",
    "sommelier", "riesling"};
const std::array<const char*, 8> kFoodWords = {
    "delicious", "tasty", "yummy", "brunch", "foodie", "pasta", "ramen",
    "dessert"};
const std::array<const char*, 7> kLuxuryWords = {
    "yacht", "penthouse", "champagne", "caviar", "designer", "chauffeur",
    "resort"};

const std::array<const char*, 6> kCategories = {
    "wine_bar", "restaurant", "cafe", "museum", "park", "hotel"};
// Category weights: restaurants dominate, wine bars are a niche.
const std::array<double, 6> kCategoryWeights = {0.10, 0.32, 0.22,
                                                0.14, 0.12, 0.10};

const std::array<const char*, 4> kLangs = {"en", "es", "ja", "fr"};
const std::array<const char*, 4> kDevices = {"ios", "android", "web",
                                             "blackberry"};

// Per-user topical affinity, derived deterministically from the user id.
struct Persona {
  double wine = 0, food = 0, luxury = 0;
};

Persona UserPersona(uint64_t seed, int64_t user_id) {
  Rng rng(seed * 7919 + static_cast<uint64_t>(user_id) * 104729 + 17);
  Persona p;
  // ~15% of users are wine-leaning, ~25% food-leaning, ~10% luxury-leaning.
  if (rng.Bernoulli(0.15)) p.wine = 0.10 + 0.25 * rng.UniformDouble();
  if (rng.Bernoulli(0.25)) p.food = 0.10 + 0.25 * rng.UniformDouble();
  if (rng.Bernoulli(0.10)) p.luxury = 0.10 + 0.20 * rng.UniformDouble();
  return p;
}

template <size_t N>
void MaybeAppendTopic(Rng* rng, double affinity,
                      const std::array<const char*, N>& words,
                      std::string* text) {
  if (rng->Bernoulli(affinity)) {
    text->push_back(' ');
    text->append(words[rng->Uniform(words.size())]);
  }
}

std::string MakeTweetText(Rng* rng, const Persona& persona) {
  std::string text;
  size_t n_words = 4 + rng->Uniform(9);
  for (size_t w = 0; w < n_words; ++w) {
    if (w > 0) text.push_back(' ');
    text.append(kNeutralWords[rng->Uniform(kNeutralWords.size())]);
  }
  // Topical injections (possibly several per tweet).
  for (int rep = 0; rep < 2; ++rep) {
    MaybeAppendTopic(rng, persona.wine, kWineWords, &text);
    MaybeAppendTopic(rng, persona.food, kFoodWords, &text);
    MaybeAppendTopic(rng, persona.luxury, kLuxuryWords, &text);
  }
  return text;
}

std::string MakeGeo(Rng* rng, double present_prob) {
  if (!rng->Bernoulli(present_prob)) {
    // Missing or dirty coordinates, as in real logs.
    return rng->Bernoulli(0.5) ? "" : "n/a";
  }
  // Around the Bay Area.
  double lat = 37.2 + rng->UniformDouble() * 1.2;
  double lon = -122.6 + rng->UniformDouble() * 1.4;
  return std::to_string(lat) + "," + std::to_string(lon);
}

}  // namespace

const char* ReferenceMenu() {
  return "pasta ramen dessert wine merlot brunch savory tasty cheese bread "
         "salad grill";
}

TablePtr GenerateTwitterLog(const DataGenConfig& config) {
  Schema schema({Column{"tweet_id", DataType::kInt64},
                 Column{"user_id", DataType::kInt64},
                 Column{"tweet_text", DataType::kString},
                 Column{"mention_user", DataType::kInt64},
                 Column{"geo", DataType::kString},
                 Column{"raw_meta", DataType::kString},
                 Column{"ts", DataType::kInt64},
                 Column{"retweets", DataType::kInt64},
                 Column{"favorites", DataType::kInt64},
                 Column{"client_ver", DataType::kString},
                 Column{"payload", DataType::kString}});
  auto table = std::make_shared<Table>("TWTR", schema);
  Rng rng(config.seed);
  const auto n_users = static_cast<int64_t>(config.n_users);
  for (size_t i = 0; i < config.n_tweets; ++i) {
    // Zipf-skewed tweet volume: a few users tweet a lot.
    int64_t user = static_cast<int64_t>(rng.Zipf(config.n_users, 0.6));
    Persona persona = UserPersona(config.seed, user);

    int64_t mention = -1;
    if (rng.Bernoulli(config.mention_prob)) {
      // Mention a "nearby" user id: repeated pairs carry friendship signal.
      int64_t delta = 1 + static_cast<int64_t>(rng.Zipf(12, 1.2));
      mention = (user + delta) % n_users;
    }
    std::string meta = std::string("lang=") +
                       kLangs[rng.Zipf(kLangs.size(), 1.0)] +
                       ";dev=" + kDevices[rng.Zipf(kDevices.size(), 0.8)];
    // Wide-log filler a typical query never touches.
    std::string payload(24 + rng.Uniform(40), 'x');
    Row row{Value(static_cast<int64_t>(i)),
            Value(user),
            Value(MakeTweetText(&rng, persona)),
            Value(mention),
            Value(MakeGeo(&rng, config.geo_prob)),
            Value(std::move(meta)),
            Value(static_cast<int64_t>(1400000000 + i * 37)),
            Value(static_cast<int64_t>(rng.Zipf(50, 1.3))),
            Value(static_cast<int64_t>(rng.Zipf(80, 1.2))),
            Value(std::string("v") + std::to_string(1 + rng.Uniform(5))),
            Value(std::move(payload))};
    (void)table->AppendRow(std::move(row));
  }
  return table;
}

TablePtr GenerateFoursquareLog(const DataGenConfig& config) {
  Schema schema({Column{"checkin_id", DataType::kInt64},
                 Column{"user_id", DataType::kInt64},
                 Column{"location_id", DataType::kInt64},
                 Column{"ts", DataType::kInt64},
                 Column{"checkin_msg", DataType::kString},
                 Column{"rating", DataType::kDouble}});
  auto table = std::make_shared<Table>("FSQ", schema);
  Rng rng(config.seed + 1);
  for (size_t i = 0; i < config.n_checkins; ++i) {
    int64_t user = static_cast<int64_t>(rng.Zipf(config.n_users, 0.7));
    Persona persona = UserPersona(config.seed, user);
    // Wine-leaning users check in at low location ids more often; the
    // generator places wine bars there (see GenerateLandmarks), so that
    // check-in behaviour correlates with tweet sentiment.
    int64_t location;
    if (persona.wine > 0 && rng.Bernoulli(0.5)) {
      location = static_cast<int64_t>(rng.Zipf(config.n_locations / 6, 0.8));
    } else {
      location = static_cast<int64_t>(rng.Zipf(config.n_locations, 0.4));
    }
    std::string msg;
    size_t n_words = 2 + rng.Uniform(4);
    for (size_t w = 0; w < n_words; ++w) {
      if (w > 0) msg.push_back(' ');
      msg.append(kNeutralWords[rng.Uniform(kNeutralWords.size())]);
    }
    Row row{Value(static_cast<int64_t>(i)),
            Value(user),
            Value(location),
            Value(static_cast<int64_t>(1400000000 + i * 53)),
            Value(std::move(msg)),
            Value(1.0 + 4.0 * rng.UniformDouble())};
    (void)table->AppendRow(std::move(row));
  }
  return table;
}

TablePtr GenerateLandmarks(const DataGenConfig& config) {
  Schema schema({Column{"location_id", DataType::kInt64},
                 Column{"name", DataType::kString},
                 Column{"category", DataType::kString},
                 Column{"geo", DataType::kString},
                 Column{"menu_text", DataType::kString},
                 Column{"avg_rating", DataType::kDouble}});
  auto table = std::make_shared<Table>("LAND", schema);
  Rng rng(config.seed + 2);
  std::vector<double> weights(kCategoryWeights.begin(),
                              kCategoryWeights.end());
  for (size_t i = 0; i < config.n_locations; ++i) {
    // Low ids skew toward wine bars (matches the check-in generator).
    size_t cat_idx;
    if (i < config.n_locations / 6 && rng.Bernoulli(0.5)) {
      cat_idx = 0;  // wine_bar
    } else {
      cat_idx = rng.Weighted(weights);
    }
    const std::string category = kCategories[cat_idx];
    std::string menu;
    if (category == "restaurant" || category == "wine_bar" ||
        category == "cafe") {
      size_t n_items = 4 + rng.Uniform(8);
      for (size_t w = 0; w < n_items; ++w) {
        if (w > 0) menu.push_back(' ');
        if (category == "wine_bar" && rng.Bernoulli(0.45)) {
          menu.append(kWineWords[rng.Uniform(kWineWords.size())]);
        } else if (rng.Bernoulli(0.5)) {
          menu.append(kFoodWords[rng.Uniform(kFoodWords.size())]);
        } else {
          menu.append(kNeutralWords[rng.Uniform(kNeutralWords.size())]);
        }
      }
    }
    Row row{Value(static_cast<int64_t>(i)),
            Value("place_" + std::to_string(i)),
            Value(category),
            Value(MakeGeo(&rng, 0.92)),
            Value(std::move(menu)),
            Value(1.0 + 4.0 * rng.UniformDouble())};
    (void)table->AppendRow(std::move(row));
  }
  return table;
}

}  // namespace opd::workload
