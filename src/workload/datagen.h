// Synthetic dataset generators standing in for the paper's real logs
// (Section 8.2): an 800 GB Twitter log (TWTR), a 250 GB Foursquare check-in
// log (4SQ), and a 7 GB Landmarks log (LAND). user_id is shared between TWTR
// and 4SQ; location_id between 4SQ and LAND.
//
// The generators plant the structure the rewriter's benefits depend on:
// wide logs of which queries use a small fraction, per-user topical affinity
// (so sentiment classifiers produce skewed scores), Zipf-repeated mention
// pairs (friendship strength), partially-missing geo coordinates, and
// category-tagged landmarks with menu text.

#ifndef OPD_WORKLOAD_DATAGEN_H_
#define OPD_WORKLOAD_DATAGEN_H_

#include "storage/table.h"

namespace opd::workload {

struct DataGenConfig {
  uint64_t seed = 20140622;
  size_t n_users = 400;
  size_t n_tweets = 20000;
  size_t n_checkins = 12000;
  size_t n_locations = 600;
  /// Probability a tweet carries parsable geo coordinates.
  double geo_prob = 0.55;
  /// Probability a tweet mentions another user.
  double mention_prob = 0.3;
};

/// TWTR(tweet_id*, user_id, tweet_text, mention_user, geo, raw_meta, ts,
///      retweets, favorites, client_ver, payload) — key tweet_id.
storage::TablePtr GenerateTwitterLog(const DataGenConfig& config);

/// FSQ(checkin_id*, user_id, location_id, ts, checkin_msg, rating)
/// — key checkin_id.
storage::TablePtr GenerateFoursquareLog(const DataGenConfig& config);

/// LAND(location_id*, name, category, geo, menu_text, avg_rating)
/// — key location_id.
storage::TablePtr GenerateLandmarks(const DataGenConfig& config);

/// The reference menu string used by the workload's menu-similarity queries.
const char* ReferenceMenu();

}  // namespace opd::workload

#endif  // OPD_WORKLOAD_DATAGEN_H_
