// The (A, F, K) annotation — the paper's gray-box semantic state — and the
// symbolic application of the three operation types (Section 3.1):
//   (1) discard/add attributes, (2) discard tuples by filters,
//   (3) group tuples on a common key.
//
// Every plan node carries an Afk; a query target and a view are *equivalent*
// iff their Afk annotations are identical (Section 4.1). The rewriter applies
// compensations symbolically through these same operations.

#ifndef OPD_AFK_AFK_H_
#define OPD_AFK_AFK_H_

#include <optional>
#include <string>
#include <vector>

#include "afk/attribute.h"
#include "afk/predicate.h"
#include "common/status.h"

namespace opd::afk {

/// \brief The grouping state K: the key attributes of the data plus the
/// number of grouping operations applied so far ("aggregation depth").
///
/// Raw logs start at depth 0 keyed on their natural key (e.g. tweet_id).
/// Each group-by (or grouping UDF stage) re-keys and increments the depth;
/// "v is less aggregated than q" (GUESSCOMPLETE condition iii) compares
/// depths and key producibility.
class KeySet {
 public:
  KeySet() = default;
  KeySet(std::vector<Attribute> keys, int agg_depth);

  const std::vector<Attribute>& keys() const { return keys_; }
  int agg_depth() const { return agg_depth_; }
  bool HasKey(const Attribute& a) const;

  bool operator==(const KeySet& other) const = default;

  std::string ToString() const;

 private:
  std::vector<Attribute> keys_;  // sorted by signature
  int agg_depth_ = 0;
};

/// \brief The full (A, F, K) annotation of a dataset / plan node.
class Afk {
 public:
  Afk() = default;
  Afk(std::vector<Attribute> attrs, FilterSet filters, KeySet keys);

  /// The annotation of a base relation: all attributes, no filters, keyed on
  /// `key_names` at aggregation depth 0.
  static Afk ForBaseRelation(const std::string& relation,
                             const std::vector<Attribute>& attrs,
                             const std::vector<std::string>& key_names);

  const std::vector<Attribute>& attrs() const { return attrs_; }
  const FilterSet& filters() const { return filters_; }
  const KeySet& keys() const { return keys_; }

  bool HasAttr(const Attribute& a) const;
  /// Looks up an attribute by display name (names are unique per annotation).
  std::optional<Attribute> FindByName(const std::string& name) const;

  /// Exact model equivalence (Section 4.1): identical A, F and K.
  bool operator==(const Afk& other) const;

  /// Canonical string of (F, K) — the creation context recorded in derived
  /// attribute signatures.
  std::string ContextString() const;

  /// Canonical string of the whole annotation (identity for dedup).
  std::string CanonicalString() const;
  uint64_t Hash() const;

  // --- Symbolic operation types ------------------------------------------

  /// Operation type 1 (discard attributes): keep exactly `keep`; keys are
  /// intersected with the surviving attributes.
  Result<Afk> Project(const std::vector<Attribute>& keep) const;

  /// Operation type 2: add a filter. The predicate's attributes must exist.
  Result<Afk> ApplyFilter(const Predicate& p) const;

  /// Operation type 3: group on `keys`; `aggregates` are the new derived
  /// attributes (their inputs must exist). All non-key, non-aggregate
  /// attributes are dropped — this is what makes GUESSCOMPLETE optimistic
  /// guesses falsifiable, as in the paper's Figure 5 discussion.
  Result<Afk> GroupBy(const std::vector<Attribute>& group_keys,
                      const std::vector<Attribute>& aggregates) const;

  /// Adds derived attributes without re-keying (a map-side "add attributes"
  /// operation). Inputs of each new attribute must exist.
  Result<Afk> AddAttributes(const std::vector<Attribute>& new_attrs) const;

  /// Equi-join with `other` on pairs of attributes (Section 3.1 multi-input
  /// rule): A = A1 ∪ A2, F = F1 ∧ F2 ∧ join conditions,
  /// K = (K1 ∪ K2) ∩ join attributes, depth = max of the two.
  Result<Afk> Join(const Afk& other,
                   const std::vector<std::pair<Attribute, Attribute>>&
                       join_pairs) const;

  std::string ToString() const;

 private:
  std::vector<Attribute> attrs_;  // sorted by signature
  FilterSet filters_;
  KeySet keys_;

  void SortAttrs();
};

/// \brief The "fix" between a view and a query (Section 4.3): the operations
/// that, applied to v, would produce q — used to synthesize the hypothetical
/// single-local-function UDF whose cost is the OPTCOST lower bound.
struct Fix {
  /// Attributes of q missing from v (to be produced or unobtainable).
  std::vector<Attribute> missing_attrs;
  /// Predicates of F_q not implied by F_v (to be applied).
  std::vector<Predicate> missing_filters;
  /// Attributes of v not in q (to be projected away).
  std::vector<Attribute> extra_attrs;
  /// True if K differs and a re-grouping is required.
  bool rekey_needed = false;

  bool empty() const {
    return missing_attrs.empty() && missing_filters.empty() &&
           extra_attrs.empty() && !rekey_needed;
  }
  /// Number of distinct operation types the fix requires (for the
  /// non-subsumable cheapest-op bound).
  int NumOpTypes() const;
};

/// Computes the fix of `v` with respect to `q`.
Fix ComputeFix(const Afk& q, const Afk& v);

/// \brief Attribute-producibility closure: starting from v's attributes,
/// repeatedly adds any attribute of q whose producer inputs are all in the
/// closure. Returns the closure as signatures. Used by GUESSCOMPLETE
/// condition (i) — optimistic, ignores grouping losses.
std::vector<Attribute> ProducibleClosure(const Afk& q, const Afk& v);

}  // namespace opd::afk

#endif  // OPD_AFK_AFK_H_
