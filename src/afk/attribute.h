// Attribute identity with provenance signatures (paper Section 3.1).
//
// A *base* attribute is identified by (relation, name). A *derived* attribute
// — produced by a UDF or an aggregate — is identified by its signature: the
// producer name, the signatures of the input attributes it depends on, the
// filter/key context it was created under, and any value-affecting parameters.
// Two plans that compute `sent_sum` via UDF_FOODIES over the same inputs in
// the same context therefore yield *equal* attributes, which is what makes
// semantic view reuse possible.

#ifndef OPD_AFK_ATTRIBUTE_H_
#define OPD_AFK_ATTRIBUTE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/value.h"

namespace opd::afk {

/// \brief An immutable attribute with structural identity.
///
/// Cheap to copy (shared internal representation). Equality and ordering are
/// by canonical signature string, never by display name alone.
class Attribute {
 public:
  Attribute() = default;

  /// Creates a base attribute belonging to `relation`.
  static Attribute Base(const std::string& relation, const std::string& name,
                        storage::DataType type);

  /// Creates a derived attribute.
  ///
  /// \param name      display name in the output schema
  /// \param producer  unique producer name, e.g. "UDF_FOODIES" or "agg:SUM"
  /// \param inputs    the attributes the value depends on
  /// \param context   canonicalized (F, K) context at creation time — callers
  ///                  pass `Afk::ContextString()`; kept opaque here
  /// \param params    value-affecting parameters (canonical string, may be "")
  static Attribute Derived(const std::string& name, const std::string& producer,
                           std::vector<Attribute> inputs,
                           const std::string& context,
                           const std::string& params, storage::DataType type);

  bool valid() const { return data_ != nullptr; }
  const std::string& name() const { return data_->name; }
  storage::DataType type() const { return data_->type; }
  bool is_base() const { return data_->producer.empty(); }
  /// Empty for base attributes.
  const std::string& producer() const { return data_->producer; }
  /// Source relation for base attributes; empty for derived.
  const std::string& relation() const { return data_->relation; }
  /// Input dependencies (empty for base attributes).
  const std::vector<Attribute>& inputs() const { return data_->inputs; }

  /// Canonical signature string; the unit of identity.
  const std::string& signature() const { return data_->signature; }
  uint64_t signature_hash() const { return data_->sig_hash; }

  bool operator==(const Attribute& other) const {
    return signature_hash() == other.signature_hash() &&
           signature() == other.signature();
  }
  bool operator<(const Attribute& other) const {
    return signature() < other.signature();
  }

  /// Short human-readable description for debugging.
  std::string ToString() const;

 private:
  struct Data {
    std::string name;
    std::string relation;  // base only
    std::string producer;  // derived only
    std::vector<Attribute> inputs;
    std::string signature;
    uint64_t sig_hash = 0;
    storage::DataType type = storage::DataType::kNull;
  };

  explicit Attribute(std::shared_ptr<const Data> data)
      : data_(std::move(data)) {}

  std::shared_ptr<const Data> data_;
};

}  // namespace opd::afk

#endif  // OPD_AFK_ATTRIBUTE_H_
