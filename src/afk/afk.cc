#include "afk/afk.h"

#include <algorithm>
#include <set>

#include "common/hash.h"

namespace opd::afk {

KeySet::KeySet(std::vector<Attribute> keys, int agg_depth)
    : keys_(std::move(keys)), agg_depth_(agg_depth) {
  std::sort(keys_.begin(), keys_.end());
  keys_.erase(std::unique(keys_.begin(), keys_.end()), keys_.end());
}

bool KeySet::HasKey(const Attribute& a) const {
  return std::binary_search(keys_.begin(), keys_.end(), a);
}

std::string KeySet::ToString() const {
  std::string out = "K{";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ",";
    out += keys_[i].signature();
  }
  out += "}@" + std::to_string(agg_depth_);
  return out;
}

Afk::Afk(std::vector<Attribute> attrs, FilterSet filters, KeySet keys)
    : attrs_(std::move(attrs)),
      filters_(std::move(filters)),
      keys_(std::move(keys)) {
  SortAttrs();
}

void Afk::SortAttrs() {
  std::sort(attrs_.begin(), attrs_.end());
  attrs_.erase(std::unique(attrs_.begin(), attrs_.end()), attrs_.end());
}

Afk Afk::ForBaseRelation(const std::string& relation,
                         const std::vector<Attribute>& attrs,
                         const std::vector<std::string>& key_names) {
  std::vector<Attribute> keys;
  for (const Attribute& a : attrs) {
    for (const std::string& k : key_names) {
      if (a.name() == k && a.relation() == relation) keys.push_back(a);
    }
  }
  return Afk(attrs, FilterSet(), KeySet(std::move(keys), 0));
}

bool Afk::HasAttr(const Attribute& a) const {
  return std::binary_search(attrs_.begin(), attrs_.end(), a);
}

std::optional<Attribute> Afk::FindByName(const std::string& name) const {
  for (const Attribute& a : attrs_) {
    if (a.name() == name) return a;
  }
  return std::nullopt;
}

bool Afk::operator==(const Afk& other) const {
  return attrs_ == other.attrs_ && keys_ == other.keys_ &&
         filters_.EquivalentTo(other.filters_);
}

std::string Afk::ContextString() const {
  return filters_.ToString() + ";" + keys_.ToString();
}

std::string Afk::CanonicalString() const {
  std::string out = "A{";
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (i > 0) out += ",";
    out += attrs_[i].signature();
  }
  out += "};F" + filters_.ToString() + ";" + keys_.ToString();
  return out;
}

uint64_t Afk::Hash() const { return HashString(CanonicalString()); }

Result<Afk> Afk::Project(const std::vector<Attribute>& keep) const {
  std::vector<Attribute> new_attrs;
  new_attrs.reserve(keep.size());
  for (const Attribute& a : keep) {
    if (!HasAttr(a)) {
      return Status::InvalidArgument("project of absent attribute: " +
                                     a.ToString());
    }
    new_attrs.push_back(a);
  }
  // K describes how the data is physically grouped; dropping a column does
  // not regroup anything, so the keying is preserved even when the key
  // column itself is projected away. This is what makes a UDF applied to two
  // different projections of the same log produce the same output attribute.
  return Afk(std::move(new_attrs), filters_, keys_);
}

Result<Afk> Afk::ApplyFilter(const Predicate& p) const {
  for (const Attribute& a : p.args()) {
    if (!HasAttr(a)) {
      return Status::InvalidArgument("filter on absent attribute: " +
                                     a.ToString());
    }
  }
  FilterSet f = filters_;
  f.Add(p);
  return Afk(attrs_, std::move(f), keys_);
}

Result<Afk> Afk::GroupBy(const std::vector<Attribute>& group_keys,
                         const std::vector<Attribute>& aggregates) const {
  for (const Attribute& k : group_keys) {
    if (!HasAttr(k)) {
      return Status::InvalidArgument("group key absent: " + k.ToString());
    }
  }
  for (const Attribute& agg : aggregates) {
    for (const Attribute& dep : agg.inputs()) {
      if (!HasAttr(dep)) {
        return Status::InvalidArgument("aggregate input absent: " +
                                       dep.ToString());
      }
    }
  }
  // Output attributes: the keys plus the new aggregates. Everything else is
  // consumed by the grouping.
  std::vector<Attribute> out = group_keys;
  out.insert(out.end(), aggregates.begin(), aggregates.end());
  return Afk(std::move(out), filters_,
             KeySet(group_keys, keys_.agg_depth() + 1));
}

Result<Afk> Afk::AddAttributes(const std::vector<Attribute>& new_attrs) const {
  for (const Attribute& a : new_attrs) {
    for (const Attribute& dep : a.inputs()) {
      if (!HasAttr(dep)) {
        return Status::InvalidArgument("attribute input absent: " +
                                       dep.ToString());
      }
    }
  }
  std::vector<Attribute> out = attrs_;
  out.insert(out.end(), new_attrs.begin(), new_attrs.end());
  return Afk(std::move(out), filters_, keys_);
}

Result<Afk> Afk::Join(
    const Afk& other,
    const std::vector<std::pair<Attribute, Attribute>>& join_pairs) const {
  if (join_pairs.empty()) {
    return Status::InvalidArgument("join requires at least one attribute pair");
  }
  for (const auto& [l, r] : join_pairs) {
    if (!HasAttr(l)) {
      return Status::InvalidArgument("left join attr absent: " + l.ToString());
    }
    if (!other.HasAttr(r)) {
      return Status::InvalidArgument("right join attr absent: " +
                                     r.ToString());
    }
  }
  FilterSet f = FilterSet::Union(filters_, other.filters_);
  std::set<std::string> join_attr_sigs;
  // Right-side attributes equated to a differently-named left attribute are
  // coalesced into the left one (the equi-join makes their values equal);
  // this mirrors the physical schema, which keeps a single column.
  std::set<std::string> coalesced_right;
  for (const auto& [l, r] : join_pairs) {
    if (l == r) {
      // Shared lineage (the common case for opportunistic views): the join
      // condition is a tautology on the shared attribute; record identity via
      // the key intersection below, not as a predicate.
    } else {
      f.Add(Predicate::JoinEq(l, r));
      coalesced_right.insert(r.signature());
    }
    join_attr_sigs.insert(l.signature());
    join_attr_sigs.insert(r.signature());
  }

  std::vector<Attribute> out = attrs_;
  for (const Attribute& a : other.attrs_) {
    if (!coalesced_right.count(a.signature())) out.push_back(a);
  }

  // K_J = (K_1 ∪ K_2) ∩ join attributes, with coalesced right keys
  // represented by their left counterpart.
  std::vector<Attribute> new_keys;
  for (const Attribute& k : keys_.keys()) {
    if (join_attr_sigs.count(k.signature())) new_keys.push_back(k);
  }
  for (const Attribute& k : other.keys_.keys()) {
    if (!join_attr_sigs.count(k.signature())) continue;
    if (coalesced_right.count(k.signature())) {
      for (const auto& [l, r] : join_pairs) {
        if (r == k) new_keys.push_back(l);
      }
    } else {
      new_keys.push_back(k);
    }
  }
  int depth = std::max(keys_.agg_depth(), other.keys_.agg_depth());
  return Afk(std::move(out), std::move(f), KeySet(std::move(new_keys), depth));
}

std::string Afk::ToString() const { return CanonicalString(); }

int Fix::NumOpTypes() const {
  int n = 0;
  if (!missing_attrs.empty()) ++n;
  if (!missing_filters.empty()) ++n;
  if (rekey_needed) ++n;
  if (!extra_attrs.empty() && n == 0) ++n;  // pure projection still costs one
  return n;
}

Fix ComputeFix(const Afk& q, const Afk& v) {
  Fix fix;
  for (const Attribute& a : q.attrs()) {
    if (!v.HasAttr(a)) fix.missing_attrs.push_back(a);
  }
  for (const Attribute& a : v.attrs()) {
    if (!q.HasAttr(a)) fix.extra_attrs.push_back(a);
  }
  fix.missing_filters = q.filters().MissingFrom(v.filters());
  fix.rekey_needed = !(q.keys() == v.keys());
  return fix;
}

std::vector<Attribute> ProducibleClosure(const Afk& q, const Afk& v) {
  // Candidate derivations: q's attributes plus every transitive input
  // dependency (intermediate attributes a compensation chain may produce on
  // the way, e.g. lat/lon between geo and tile_id).
  std::vector<Attribute> candidates;
  {
    std::set<std::string> seen;
    std::vector<Attribute> stack = q.attrs();
    while (!stack.empty()) {
      Attribute a = stack.back();
      stack.pop_back();
      if (!seen.insert(a.signature()).second) continue;
      candidates.push_back(a);
      for (const Attribute& dep : a.inputs()) stack.push_back(dep);
    }
  }

  std::vector<Attribute> closure = v.attrs();
  std::set<std::string> sigs;
  for (const Attribute& a : closure) sigs.insert(a.signature());

  bool changed = true;
  while (changed) {
    changed = false;
    for (const Attribute& a : candidates) {
      if (sigs.count(a.signature())) continue;
      if (a.is_base()) continue;  // base attrs cannot be synthesized
      bool all_inputs = true;
      for (const Attribute& dep : a.inputs()) {
        if (!sigs.count(dep.signature())) {
          all_inputs = false;
          break;
        }
      }
      if (all_inputs) {
        closure.push_back(a);
        sigs.insert(a.signature());
        changed = true;
      }
    }
  }
  return closure;
}

}  // namespace opd::afk
