#include "afk/predicate.h"

#include <algorithm>

namespace opd::afk {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
  }
  return "?";
}

bool EvalCmp(const storage::Value& lhs, CmpOp op, const storage::Value& rhs) {
  switch (op) {
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs < rhs || lhs == rhs;
    case CmpOp::kGt:
      return rhs < lhs;
    case CmpOp::kGe:
      return rhs < lhs || lhs == rhs;
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return !(lhs == rhs);
  }
  return false;
}

Predicate Predicate::Compare(Attribute attr, CmpOp op, storage::Value literal) {
  Predicate p;
  p.kind_ = Kind::kCompare;
  p.args_ = {std::move(attr)};
  p.op_ = op;
  p.literal_ = std::move(literal);
  p.BuildCanonical();
  return p;
}

Predicate Predicate::Opaque(std::string fn_name, std::vector<Attribute> args,
                            std::string params) {
  Predicate p;
  p.kind_ = Kind::kOpaque;
  p.fn_name_ = std::move(fn_name);
  std::sort(args.begin(), args.end());
  p.args_ = std::move(args);
  p.literal_ = storage::Value(std::move(params));
  p.BuildCanonical();
  return p;
}

Predicate Predicate::JoinEq(Attribute a, Attribute b) {
  Predicate p;
  p.kind_ = Kind::kJoinEq;
  if (b < a) std::swap(a, b);
  p.args_ = {std::move(a), std::move(b)};
  p.BuildCanonical();
  return p;
}

void Predicate::BuildCanonical() {
  switch (kind_) {
    case Kind::kCompare:
      canonical_ = "cmp(" + args_[0].signature() + " " + CmpOpName(op_) + " " +
                   literal_.ToString() + ")";
      break;
    case Kind::kOpaque: {
      canonical_ = "fn:" + fn_name_ + "(";
      for (size_t i = 0; i < args_.size(); ++i) {
        if (i > 0) canonical_ += ",";
        canonical_ += args_[i].signature();
      }
      canonical_ += ")|p{" + literal_.ToString() + "}";
      break;
    }
    case Kind::kJoinEq:
      canonical_ =
          "join(" + args_[0].signature() + "=" + args_[1].signature() + ")";
      break;
    case Kind::kInvalid:
      canonical_ = "<invalid>";
      break;
  }
}

namespace {

// Interval implication for comparisons on the same attribute.
// `s` (stronger) implies `w` (weaker)?
bool CmpImplies(CmpOp s_op, const storage::Value& s_lit, CmpOp w_op,
                const storage::Value& w_lit) {
  auto le = [](const storage::Value& a, const storage::Value& b) {
    return a < b || a == b;
  };
  auto lt = [](const storage::Value& a, const storage::Value& b) {
    return a < b;
  };
  switch (w_op) {
    case CmpOp::kLt:
      // need: s forces attr < w_lit
      if (s_op == CmpOp::kLt) return le(s_lit, w_lit);
      if (s_op == CmpOp::kLe) return lt(s_lit, w_lit);
      if (s_op == CmpOp::kEq) return lt(s_lit, w_lit);
      return false;
    case CmpOp::kLe:
      if (s_op == CmpOp::kLt) return le(s_lit, w_lit);
      if (s_op == CmpOp::kLe) return le(s_lit, w_lit);
      if (s_op == CmpOp::kEq) return le(s_lit, w_lit);
      return false;
    case CmpOp::kGt:
      if (s_op == CmpOp::kGt) return le(w_lit, s_lit);
      if (s_op == CmpOp::kGe) return lt(w_lit, s_lit);
      if (s_op == CmpOp::kEq) return lt(w_lit, s_lit);
      return false;
    case CmpOp::kGe:
      if (s_op == CmpOp::kGt) return le(w_lit, s_lit);
      if (s_op == CmpOp::kGe) return le(w_lit, s_lit);
      if (s_op == CmpOp::kEq) return le(w_lit, s_lit);
      return false;
    case CmpOp::kEq:
      return s_op == CmpOp::kEq && s_lit == w_lit;
    case CmpOp::kNe:
      if (s_op == CmpOp::kNe) return s_lit == w_lit;
      if (s_op == CmpOp::kEq) return !(s_lit == w_lit);
      // attr < s_lit implies attr != w_lit whenever s_lit <= w_lit.
      if (s_op == CmpOp::kLt) return le(s_lit, w_lit);
      if (s_op == CmpOp::kGt) return le(w_lit, s_lit);
      return false;
  }
  return false;
}

}  // namespace

bool Predicate::Implies(const Predicate& weaker) const {
  if (canonical_ == weaker.canonical_) return true;
  if (kind_ == Kind::kCompare && weaker.kind_ == Kind::kCompare &&
      args_[0] == weaker.args_[0]) {
    return CmpImplies(op_, literal_, weaker.op_, weaker.literal_);
  }
  return false;
}

void FilterSet::Add(const Predicate& p) {
  auto it = std::lower_bound(preds_.begin(), preds_.end(), p);
  if (it != preds_.end() && *it == p) return;
  preds_.insert(it, p);
}

bool FilterSet::Contains(const Predicate& p) const {
  return std::binary_search(preds_.begin(), preds_.end(), p);
}

bool FilterSet::ImpliesPred(const Predicate& p) const {
  for (const Predicate& mine : preds_) {
    if (mine.Implies(p)) return true;
  }
  return false;
}

bool FilterSet::ImpliesAll(const FilterSet& other) const {
  for (const Predicate& p : other.preds_) {
    if (!ImpliesPred(p)) return false;
  }
  return true;
}

std::vector<Predicate> FilterSet::MissingFrom(const FilterSet& other) const {
  std::vector<Predicate> missing;
  for (const Predicate& p : preds_) {
    if (!other.ImpliesPred(p)) missing.push_back(p);
  }
  return missing;
}

FilterSet FilterSet::Union(const FilterSet& a, const FilterSet& b) {
  FilterSet out = a;
  for (const Predicate& p : b.preds_) out.Add(p);
  return out;
}

std::string FilterSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < preds_.size(); ++i) {
    if (i > 0) out += " && ";
    out += preds_[i].canonical();
  }
  out += "}";
  return out;
}

}  // namespace opd::afk
