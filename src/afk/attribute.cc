#include "afk/attribute.h"

#include <algorithm>

#include "common/hash.h"

namespace opd::afk {

Attribute Attribute::Base(const std::string& relation, const std::string& name,
                          storage::DataType type) {
  auto data = std::make_shared<Data>();
  data->name = name;
  data->relation = relation;
  data->type = type;
  data->signature = "base:" + relation + "." + name;
  data->sig_hash = HashString(data->signature);
  return Attribute(std::move(data));
}

Attribute Attribute::Derived(const std::string& name,
                             const std::string& producer,
                             std::vector<Attribute> inputs,
                             const std::string& context,
                             const std::string& params,
                             storage::DataType type) {
  auto data = std::make_shared<Data>();
  data->name = name;
  data->producer = producer;
  data->type = type;
  // Canonicalize input order so dependency-set identity is order-insensitive.
  std::sort(inputs.begin(), inputs.end());
  data->inputs = std::move(inputs);
  std::string sig = "drv:" + producer + "#" + name + "(";
  for (size_t i = 0; i < data->inputs.size(); ++i) {
    if (i > 0) sig += ",";
    sig += data->inputs[i].signature();
  }
  sig += ")|ctx{" + context + "}|p{" + params + "}";
  data->signature = std::move(sig);
  data->sig_hash = HashString(data->signature);
  return Attribute(std::move(data));
}

std::string Attribute::ToString() const {
  if (!valid()) return "<invalid>";
  if (is_base()) return data_->relation + "." + data_->name;
  return data_->producer + "->" + data_->name;
}

}  // namespace opd::afk
