// Filter predicates with implication testing (the F component of the model).
//
// Two predicate families:
//  * comparison: <attribute> <op> <literal>, which supports implication
//    (e.g. `d < 5` implies `d < 10`), used by GUESSCOMPLETE condition (ii);
//  * opaque: a named black-box boolean function over attributes (arbitrary
//    user code in the paper), where implication degrades to equality.

#ifndef OPD_AFK_PREDICATE_H_
#define OPD_AFK_PREDICATE_H_

#include <string>
#include <vector>

#include "afk/attribute.h"
#include "storage/value.h"

namespace opd::afk {

/// Comparison operators for predicate literals.
enum class CmpOp { kLt, kLe, kGt, kGe, kEq, kNe };

const char* CmpOpName(CmpOp op);

/// Evaluates `lhs op rhs`.
bool EvalCmp(const storage::Value& lhs, CmpOp op, const storage::Value& rhs);

/// \brief A canonical filter predicate.
class Predicate {
 public:
  Predicate() = default;

  /// attr `op` literal.
  static Predicate Compare(Attribute attr, CmpOp op, storage::Value literal);

  /// Named black-box predicate over attributes with a parameter string.
  static Predicate Opaque(std::string fn_name, std::vector<Attribute> args,
                          std::string params);

  /// Join equality between two attributes (attrA = attrB); canonicalized so
  /// that the smaller signature comes first.
  static Predicate JoinEq(Attribute a, Attribute b);

  enum class Kind { kInvalid, kCompare, kOpaque, kJoinEq };

  Kind kind() const { return kind_; }
  const Attribute& attr() const { return args_[0]; }
  const Attribute& rhs_attr() const { return args_[1]; }
  const std::vector<Attribute>& args() const { return args_; }
  CmpOp op() const { return op_; }
  const storage::Value& literal() const { return literal_; }
  const std::string& fn_name() const { return fn_name_; }

  /// Canonical string; the unit of identity and set membership.
  const std::string& canonical() const { return canonical_; }

  bool operator==(const Predicate& other) const {
    return canonical_ == other.canonical_;
  }
  bool operator<(const Predicate& other) const {
    return canonical_ < other.canonical_;
  }

  /// \brief True if *this* predicate logically implies `weaker`.
  ///
  /// Sound but not complete: comparisons on the same attribute use interval
  /// reasoning; anything else requires canonical equality.
  bool Implies(const Predicate& weaker) const;

  std::string ToString() const { return canonical_; }

 private:
  Kind kind_ = Kind::kInvalid;
  std::vector<Attribute> args_;
  CmpOp op_ = CmpOp::kEq;
  storage::Value literal_;
  std::string fn_name_;
  std::string canonical_;

  void BuildCanonical();
};

/// \brief An immutable, canonical set of conjunctive predicates.
class FilterSet {
 public:
  FilterSet() = default;

  /// Adds a predicate (idempotent).
  void Add(const Predicate& p);

  bool Contains(const Predicate& p) const;
  bool empty() const { return preds_.empty(); }
  size_t size() const { return preds_.size(); }
  const std::vector<Predicate>& preds() const { return preds_; }

  /// True if the conjunction of this set implies predicate `p`.
  bool ImpliesPred(const Predicate& p) const;

  /// True if this conjunction implies every predicate in `other`
  /// (i.e. `other` is weaker-or-equal). GUESSCOMPLETE condition (ii) checks
  /// `F_q.ImpliesAll(F_v)`.
  bool ImpliesAll(const FilterSet& other) const;

  /// Predicates in `*this` not implied by `other` — the filter part of the
  /// "fix" (Section 4.3).
  std::vector<Predicate> MissingFrom(const FilterSet& other) const;

  /// Semantic equivalence: each conjunction implies the other. This is the
  /// equality used by model equivalence, so that {a<5} and {a<10, a<5}
  /// compare equal.
  bool EquivalentTo(const FilterSet& other) const {
    return ImpliesAll(other) && other.ImpliesAll(*this);
  }

  /// Union of the two sets.
  static FilterSet Union(const FilterSet& a, const FilterSet& b);

  /// Canonical rendering "{p1 && p2 && ...}".
  std::string ToString() const;

  bool operator==(const FilterSet& other) const {
    return preds_ == other.preds_;
  }

 private:
  std::vector<Predicate> preds_;  // kept sorted by canonical string
};

}  // namespace opd::afk

#endif  // OPD_AFK_PREDICATE_H_
