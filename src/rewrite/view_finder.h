// VIEWFINDER (Section 7, Algorithm 4): the stateful per-target searcher.
// Maintains a priority queue of candidate views ordered by OPTCOST,
// incrementally grows the candidate space by merging popped candidates with
// previously-seen ones, and attempts REWRITEENUM only on candidates that
// pass GUESSCOMPLETE.
//
// One deliberate refinement over the paper's text: a *partial* candidate
// (GUESSCOMPLETE false) is prioritized by its read-cost bound rather than ∞,
// so that partial solutions can surface and merge incrementally — this is
// the behaviour the paper's Figure 11 narrative describes ("since they
// failed to produce a rewrite, BFREWRITE begins merging them with views
// that have the next lowest OPTCOST"). Truly irrelevant views (sharing no
// useful attribute with the target) are excluded at INIT.

#ifndef OPD_REWRITE_VIEW_FINDER_H_
#define OPD_REWRITE_VIEW_FINDER_H_

#include <limits>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "rewrite/candidate.h"
#include "rewrite/rewrite_enum.h"
#include "rewrite/rewriter.h"

namespace opd::rewrite {

/// \brief Incremental best-first searcher for rewrites of one target.
class ViewFinder {
 public:
  ViewFinder() = default;

  /// INIT: seeds the queue with every relevant view in `views`, ordered by
  /// OPTCOST w.r.t. the target.
  ///
  /// `useful_sigs` optionally injects the target's precomputed useful
  /// signatures (they depend only on the target AFK, so callers that see
  /// the same subplan repeatedly — BfRewriter keys them by plan
  /// fingerprint — can skip recomputing them here).
  ///
  /// `decision` (optional, caller-owned, must outlive the finder) receives
  /// the per-candidate audit trail: INIT records signature-mismatch
  /// exclusions, REFINE records every pop with its OPTCOST and containment
  /// outcome. The caller classifies accepted vs not-cost-improving (only it
  /// knows the running best cost) and drains bound-pruned leftovers.
  void Init(TargetContext target, EnumDeps deps,
            const std::vector<const catalog::ViewDefinition*>& views,
            RewriteStats* stats,
            std::optional<std::vector<std::string>> useful_sigs =
                std::nullopt,
            TargetDecision* decision = nullptr);

  /// PEEK: the OPTCOST of the next candidate, or +inf when exhausted.
  double Peek() const;

  /// REFINE: pops the next candidate, grows the space by merging it with the
  /// Seen set, and attempts a rewrite if the candidate passes GUESSCOMPLETE.
  /// Returns a valid rewrite when one is found, nullopt otherwise. Errors are
  /// recorded in `status()`.
  std::optional<EnumResult> Refine();

  const Status& status() const { return status_; }
  bool exhausted() const { return heap_.empty(); }
  size_t seen_size() const { return seen_.size(); }

  /// Records every candidate still queued as pruned-by-bound (the search
  /// ended before refining them), in deterministic (OPTCOST, size) order.
  /// No-op without a decision sink; call once, when the search is over.
  void DrainPrunedDecisions();

 private:
  void Push(CandidateView candidate, double floor_cost);

  TargetContext target_;
  EnumDeps deps_;
  RewriteStats* stats_ = nullptr;
  TargetDecision* decision_ = nullptr;
  Status status_;
  std::vector<std::string> useful_sigs_;

  // Min-heap by (opt_cost, Id) for determinism.
  std::vector<CandidateView> heap_;
  std::vector<CandidateView> seen_;
  // Signature membership is the only operation; ordered iteration is never
  // needed, so a hash set beats the former std::set.
  std::unordered_set<std::string> enqueued_;
  uint64_t fifo_counter_ = 0;  // ablation ordering
};

}  // namespace opd::rewrite

#endif  // OPD_REWRITE_VIEW_FINDER_H_
