#include "rewrite/dp_rewrite.h"

#include <chrono>
#include <limits>
#include <set>

#include "plan/job.h"
#include "rewrite/merge.h"
#include "rewrite/rewrite_enum.h"

namespace opd::rewrite {

namespace {

constexpr double kEps = 1e-9;

struct Budget {
  size_t max_candidates;
  double max_seconds;
  std::chrono::steady_clock::time_point start;
  size_t used = 0;
  bool exceeded = false;

  bool Charge() {
    ++used;
    if (used > max_candidates) {
      exceeded = true;
      return false;
    }
    if ((used & 0x3ff) == 0) {
      double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (elapsed > max_seconds) {
        exceeded = true;
        return false;
      }
    }
    return true;
  }
};

}  // namespace

Result<RewriteOutcome> DpRewriter::Rewrite(plan::Plan* plan) const {
  OPD_RETURN_NOT_OK(optimizer_->Prepare(plan));
  OPD_ASSIGN_OR_RETURN(plan::JobDag dag, plan::JobDag::Build(*plan));
  const size_t n = dag.size();

  RewriteOutcome outcome;
  auto start = std::chrono::steady_clock::now();

  EnumDeps deps;
  deps.optimizer = optimizer_;
  deps.views = views_;
  deps.udfs = optimizer_->context().udfs;
  deps.options = options_;

  Budget budget{options_.dp_candidate_budget, options_.dp_time_budget_s,
                start};

  const auto all_views = views_->All();

  // Per-target exhaustive search: every view is a candidate (no relevance
  // screening — the paper's DP "searches exhaustively for rewrites at every
  // target" with no OPTCOST guidance and no early termination).
  std::vector<std::optional<EnumResult>> found(n);
  for (size_t i = 0; i < n && !budget.exceeded; ++i) {
    TargetContext target = MakeTargetContext(dag.job(i).op, options_);
    const auto useful = UsefulSignatures(target.afk);

    std::vector<CandidateView> space;
    std::set<std::string> ids;
    for (const catalog::ViewDefinition* def : all_views) {
      CandidateView c = MakeBaseCandidate(*def);
      c.coverage = ComputeCoverage(c.afk, useful);
      if (ids.insert(c.Id()).second) space.push_back(std::move(c));
    }
    const size_t num_singles = space.size();
    // Closure: merge every candidate with every *single* view (left-deep
    // generation covers all subsets up to J), with the standard usefulness
    // rule: each side must contribute an attribute the other lacks.
    for (size_t a = 0; a < space.size() && !budget.exceeded; ++a) {
      for (size_t b = 0; b < num_singles; ++b) {
        if (!budget.Charge()) break;
        Coverage combined =
            CoverageUnion(space[a].coverage, space[b].coverage);
        if (CoverageEqual(combined, space[a].coverage) ||
            CoverageEqual(combined, space[b].coverage)) {
          continue;
        }
        auto merged = MergeCandidates(space[a], space[b],
                                      options_.max_views_per_rewrite);
        if (!merged.has_value()) continue;
        if (ids.insert(merged->Id()).second) {
          merged->coverage = std::move(combined);
          space.push_back(std::move(*merged));
        }
      }
    }

    // Attempt a rewrite with every candidate — no GUESSCOMPLETE screening:
    // the exhaustive baseline pays for a full REWRITEENUM on each.
    for (const CandidateView& candidate : space) {
      if (!budget.Charge()) break;
      outcome.stats.candidates_considered += 1;
      outcome.stats.rewrite_attempts += 1;
      OPD_ASSIGN_OR_RETURN(std::optional<EnumResult> result,
                           RewriteEnum(target, candidate, deps));
      if (!result.has_value()) continue;
      outcome.stats.rewrites_found += result->rewrites_found;
      if (!found[i].has_value() || result->cost < found[i]->cost) {
        found[i] = std::move(result);
      }
    }
  }

  // Dynamic programming over the job DAG: for each job, the cheaper of the
  // best direct rewrite and the composition of its producers' solutions.
  std::vector<double> dp_cost(n);
  std::vector<plan::OpNodePtr> dp_plan(n);
  for (size_t i = 0; i < n; ++i) {
    const plan::Job& job = dag.job(i);
    double composed = job.op->cost.total_s;
    for (int p : job.producers) composed += dp_cost[p];

    bool any_producer_rewritten = false;
    for (int p : job.producers) {
      if (dp_plan[p] != dag.job(p).op) any_producer_rewritten = true;
    }

    if (found[i].has_value() && found[i]->cost <= composed) {
      dp_cost[i] = found[i]->cost;
      dp_plan[i] = found[i]->plan.root();
    } else if (any_producer_rewritten && composed + kEps <
                                             dag.TargetCost(i)) {
      // Compose the original operator over the producers' solutions.
      auto node = std::make_shared<plan::OpNode>();
      const plan::OpNode& orig = *job.op;
      node->kind = orig.kind;
      node->table = orig.table;
      node->view_id = orig.view_id;
      node->project = orig.project;
      node->filter = orig.filter;
      node->join = orig.join;
      node->group = orig.group;
      node->udf = orig.udf;
      size_t producer_idx = 0;
      for (const plan::OpNodePtr& child : orig.children) {
        if (child->kind == plan::OpKind::kScan) {
          node->children.push_back(child);
        } else {
          node->children.push_back(dp_plan[job.producers[producer_idx++]]);
        }
      }
      dp_cost[i] = composed;
      dp_plan[i] = std::move(node);
    } else {
      dp_cost[i] = std::min(composed, dag.TargetCost(i));
      dp_plan[i] = job.op;
    }
  }

  outcome.original_cost = dag.TargetCost(dag.sink());
  outcome.plan = plan::Plan(dp_plan[dag.sink()], plan->name());
  outcome.est_cost = dp_cost[dag.sink()];
  outcome.improved = outcome.est_cost + kEps < outcome.original_cost;
  outcome.stats.budget_exceeded = budget.exceeded;
  outcome.stats.runtime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return outcome;
}

}  // namespace opd::rewrite
