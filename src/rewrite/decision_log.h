// Structured record of every decision the rewrite search makes: which
// candidate views were enumerated for each target, why each was rejected
// (machine-readable reason codes), the OPTCOST ordering the search followed,
// and the chosen rewrite with its predicted benefit. This is the audit trail
// behind EXPLAIN REWRITE and the decision counts exported to the bench
// trajectory — the paper claims BFREWRITE finds the *minimum-cost* rewrite;
// the log is how that claim becomes inspectable per query.
//
// The search is serial (one ViewFinder refined at a time), so the log is
// deterministic: byte-identical across thread counts and execution modes.

#ifndef OPD_REWRITE_DECISION_LOG_H_
#define OPD_REWRITE_DECISION_LOG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace opd::rewrite {

/// Why a candidate did not become the target's rewrite. The string codes
/// (RejectReasonCode) are the stable machine-readable vocabulary used by the
/// JSON export and the bench records.
enum class RejectReason {
  kNone = 0,            ///< not rejected (the accepted candidate)
  kSignatureMismatch,   ///< shares no useful attribute with the target (INIT)
  kAfkContainment,      ///< GUESSCOMPLETE false, or REWRITEENUM found no
                        ///< exact-equivalence compensation
  kNotCostImproving,    ///< valid rewrite, but not cheaper than the best
  kPrunedByBound,       ///< never refined: the search bound terminated first
};

/// Stable snake_case code for `reason` ("accepted" for kNone).
const char* RejectReasonCode(RejectReason reason);

/// One candidate view (or merge of views) examined — or excluded — for one
/// target.
struct CandidateDecision {
  /// Canonical candidate id: "+"-joined sorted view ids, e.g. "3+7".
  std::string candidate_id;
  int num_parts = 1;
  /// OPTCOST estimate w.r.t. the target; negative when never costed
  /// (signature-mismatch exclusions happen before costing).
  double opt_cost = -1;
  bool guess_complete = false;
  bool rewrite_found = false;
  /// Cost of the found rewrite (valid when `rewrite_found`).
  double rewrite_cost = 0;
  RejectReason reject = RejectReason::kNone;
};

/// The full decision record for one rewrite target (one job of the DAG).
struct TargetDecision {
  int target_index = 0;
  std::string target_op;
  double original_cost = 0;
  /// Best target cost when the search ended (== original_cost when the
  /// target kept its plan).
  double best_cost = 0;
  /// Candidate id of the accepted rewrite; empty when the target kept its
  /// original plan (a producer rewrite may still have lowered best_cost).
  std::string chosen_id;
  double predicted_benefit_s = 0;
  /// Decisions in search order: INIT exclusions first, then refinements in
  /// OPTCOST order, then bound-pruned leftovers.
  std::vector<CandidateDecision> candidates;
};

/// Aggregate decision counts (the bench-record summary).
struct DecisionCounts {
  size_t candidates = 0;
  size_t accepted = 0;
  size_t signature_mismatch = 0;
  size_t afk_containment = 0;
  size_t not_cost_improving = 0;
  size_t pruned_by_bound = 0;
};

/// \brief Everything the rewrite search decided, per target.
struct DecisionLog {
  std::vector<TargetDecision> targets;

  DecisionCounts Counts() const;

  /// Human-readable rendering (the body of EXPLAIN REWRITE). Deterministic.
  std::string ToText() const;
  /// Machine-readable export: {"targets":[...],"counts":{...}}.
  std::string ToJson() const;
};

}  // namespace opd::rewrite

#endif  // OPD_REWRITE_DECISION_LOG_H_
