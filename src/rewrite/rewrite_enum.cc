#include "rewrite/rewrite_enum.h"

#include <algorithm>
#include <set>

#include "plan/annotate.h"

namespace opd::rewrite {

using afk::Afk;
using afk::Attribute;
using plan::OpKind;
using plan::OpNode;
using plan::OpNodePtr;

namespace {

std::string CompOpId(const CompOp& op) {
  switch (op.kind) {
    case CompOp::Kind::kFilter: {
      const plan::FilterCond& f = op.cond;
      if (f.kind == plan::FilterCond::Kind::kCompare) {
        return "F:" + f.column + afk::CmpOpName(f.op) + f.literal.ToString();
      }
      std::string id = "F:" + f.fn_name + "(";
      for (const auto& a : f.arg_columns) id += a + ",";
      return id + ")" + f.params;
    }
    case CompOp::Kind::kGroupBy: {
      std::string id = "G:";
      for (const auto& k : op.group.keys) id += k + ",";
      id += "|";
      for (const auto& a : op.group.aggs) {
        id += std::string(plan::AggFnName(a.fn)) + "(" + a.input + ")" +
              a.output + ",";
      }
      return id;
    }
    case CompOp::Kind::kUdf: {
      std::string id = "U:" + op.udf_name + "{";
      for (const auto& [k, v] : op.udf_params) id += k + "=" + v.ToString() + ",";
      return id + "}";
    }
  }
  return "?";
}

void CollectOps(const OpNodePtr& node, const RewriteOptions& options,
                std::set<std::string>* seen, std::vector<CompOp>* out) {
  if (node == nullptr) return;
  for (const OpNodePtr& child : node->children) {
    CollectOps(child, options, seen, out);
  }
  CompOp op;
  bool usable = false;
  switch (node->kind) {
    case OpKind::kFilter:
      op.kind = CompOp::Kind::kFilter;
      op.cond = node->filter;
      usable = true;
      break;
    case OpKind::kGroupByAgg:
      op.kind = CompOp::Kind::kGroupBy;
      op.group = node->group;
      usable = true;
      break;
    case OpKind::kUdf: {
      const auto& allowed = options.rewrite_udfs;
      if (allowed.empty() ||
          std::find(allowed.begin(), allowed.end(), node->udf.udf_name) !=
              allowed.end()) {
        op.kind = CompOp::Kind::kUdf;
        op.udf_name = node->udf.udf_name;
        op.udf_params = node->udf.params;
        usable = true;
      }
      break;
    }
    default:
      break;  // scans/projects/joins are handled by MERGE + final projection
  }
  if (!usable) return;
  op.id = CompOpId(op);
  if (seen->insert(op.id).second) out->push_back(std::move(op));
}

}  // namespace

TargetContext MakeTargetContext(const plan::OpNodePtr& target_root,
                                const RewriteOptions& options) {
  TargetContext ctx;
  ctx.afk = target_root->afk;
  ctx.out_attrs = target_root->out_attrs;
  std::set<std::string> seen;
  CollectOps(target_root, options, &seen, &ctx.ops);
  return ctx;
}

Result<afk::Afk> ApplyCompOp(const afk::Afk& state, const CompOp& op,
                             const udf::UdfRegistry& udfs) {
  switch (op.kind) {
    case CompOp::Kind::kFilter: {
      OPD_ASSIGN_OR_RETURN(afk::Predicate pred,
                           plan::ResolveFilter(op.cond, state));
      return state.ApplyFilter(pred);
    }
    case CompOp::Kind::kGroupBy: {
      std::vector<Attribute> keys;
      for (const std::string& name : op.group.keys) {
        auto attr = state.FindByName(name);
        if (!attr) return Status::NotFound("group key absent: " + name);
        keys.push_back(*attr);
      }
      const std::string context = state.ContextString();
      std::vector<Attribute> aggs;
      for (const plan::AggSpec& spec : op.group.aggs) {
        std::optional<Attribute> input;
        if (!spec.input.empty()) {
          input = state.FindByName(spec.input);
          if (!input) {
            return Status::NotFound("aggregate input absent: " + spec.input);
          }
        }
        aggs.push_back(plan::MakeAggAttribute(spec.fn, input, spec.output,
                                              keys, context));
      }
      return state.GroupBy(keys, aggs);
    }
    case CompOp::Kind::kUdf: {
      OPD_ASSIGN_OR_RETURN(const udf::UdfDefinition* def,
                           udfs.Find(op.udf_name));
      return udf::ApplyUdfModel(*def, state, op.udf_params);
    }
  }
  return Status::Internal("unknown compensation op kind");
}

namespace {

// Checks whether `state` (projected onto the target's attributes) is exactly
// equivalent to the target annotation.
bool IsEquivalent(const Afk& state, const TargetContext& target) {
  for (const Attribute& a : target.afk.attrs()) {
    if (!state.HasAttr(a)) return false;
  }
  auto projected = state.Project(target.afk.attrs());
  if (!projected.ok()) return false;
  return projected.value() == target.afk;
}

// Builds the executable plan for a compensation sequence: candidate scan,
// the ops in order, and a final projection to the target's column order.
Result<plan::Plan> BuildRewritePlan(const CandidateView& candidate,
                                    const std::vector<const CompOp*>& seq,
                                    const TargetContext& target,
                                    const EnumDeps& deps) {
  OPD_ASSIGN_OR_RETURN(OpNodePtr node,
                       BuildCandidateScan(candidate, *deps.views));
  for (const CompOp* op : seq) {
    switch (op->kind) {
      case CompOp::Kind::kFilter:
        node = plan::Filter(std::move(node), op->cond);
        break;
      case CompOp::Kind::kGroupBy:
        node = plan::GroupBy(std::move(node), op->group.keys, op->group.aggs);
        break;
      case CompOp::Kind::kUdf:
        node = plan::Udf(std::move(node), op->udf_name, op->udf_params);
        break;
    }
  }
  // Final projection to the target's natural output order — skipped when a
  // bare single-view scan already has the exact schema.
  std::vector<std::string> names;
  names.reserve(target.out_attrs.size());
  for (const Attribute& a : target.out_attrs) names.push_back(a.name());
  bool needs_project = true;
  if (seq.empty() && candidate.NumParts() == 1) {
    OPD_ASSIGN_OR_RETURN(const catalog::ViewDefinition* def,
                         deps.views->Find(candidate.parts[0]));
    if (def->schema.num_columns() == names.size()) {
      needs_project = false;
      for (size_t i = 0; i < names.size(); ++i) {
        if (def->schema.column(i).name != names[i]) {
          needs_project = true;
          break;
        }
      }
    }
  }
  if (needs_project) node = plan::Project(std::move(node), names);
  return plan::Plan(std::move(node), "rewrite");
}

struct DfsEnv {
  const TargetContext* target;
  const CandidateView* candidate;
  const EnumDeps* deps;
  /// Signatures a state may contain: the target's useful closure plus the
  /// candidate's own attributes. Any op application minting an attribute
  /// outside this set happened "out of context" (e.g. a UDF replayed after
  /// filters the target never applied at that point) and can never lead to
  /// exact equivalence — pruning these is what keeps the brute-force
  /// enumeration tractable.
  std::set<std::string> allowed;
  int max_depth = 0;  // target aggregation depth: states cannot exceed it
  std::set<std::string> visited;
  std::vector<const CompOp*> seq;
  std::vector<int> remaining;
  std::optional<EnumResult> best;
  Status error = Status::OK();
  size_t found = 0;
  size_t nodes = 0;  // safety valve against pathological spaces
  static constexpr size_t kNodeBudget = 200000;

  bool StateAdmissible(const Afk& state) const {
    if (state.keys().agg_depth() > max_depth) return false;
    for (const Attribute& a : state.attrs()) {
      if (!allowed.count(a.signature())) return false;
    }
    return true;
  }
};

std::string StateKey(const Afk& state, const std::vector<int>& remaining) {
  std::string key = state.CanonicalString();
  key += "#";
  for (int r : remaining) key += std::to_string(r) + ",";
  return key;
}

void Dfs(DfsEnv* env, const Afk& state) {
  if (!env->error.ok()) return;
  if (IsEquivalent(state, *env->target)) {
    // A sequence the symbolic state accepts but that cannot be planned or
    // costed (schema-representability edge cases) is simply not a rewrite;
    // prune it rather than aborting the search.
    auto plan_result =
        BuildRewritePlan(*env->candidate, env->seq, *env->target, *env->deps);
    if (!plan_result.ok()) return;
    plan::Plan plan = std::move(plan_result).value();
    auto cost = env->deps->optimizer->PlanCost(&plan);
    if (!cost.ok()) return;
    env->found += 1;
    if (!env->best.has_value() || *cost < env->best->cost) {
      env->best = EnumResult{std::move(plan), *cost, 0};
    }
    // A valid state needs no further compensation on this branch.
    return;
  }
  if (++env->nodes > DfsEnv::kNodeBudget) return;
  for (size_t i = 0; i < env->target->ops.size(); ++i) {
    if (env->remaining[i] <= 0) continue;
    auto next = ApplyCompOp(state, env->target->ops[i], *env->deps->udfs);
    if (!next.ok()) continue;  // inapplicable in this state
    if (!env->StateAdmissible(next.value())) continue;  // out of context
    env->remaining[i] -= 1;
    std::string key = StateKey(next.value(), env->remaining);
    if (env->visited.insert(key).second) {
      env->seq.push_back(&env->target->ops[i]);
      Dfs(env, next.value());
      env->seq.pop_back();
    }
    env->remaining[i] += 1;
    if (!env->error.ok()) return;
  }
}

}  // namespace

namespace {

// Converts a fix predicate into a standalone filter compensation. Needed
// because a threshold filter applied *inside* a UDF (its model's F' entry)
// has no corresponding Filter node in the target plan; when a query revision
// tightens such a threshold, the compensation is exactly this predicate.
std::optional<CompOp> FixFilterOp(const afk::Predicate& pred) {
  CompOp op;
  op.kind = CompOp::Kind::kFilter;
  switch (pred.kind()) {
    case afk::Predicate::Kind::kCompare:
      op.cond = plan::FilterCond::Compare(pred.attr().name(), pred.op(),
                                          pred.literal());
      break;
    case afk::Predicate::Kind::kOpaque: {
      std::vector<std::string> args;
      for (const Attribute& a : pred.args()) args.push_back(a.name());
      op.cond = plan::FilterCond::Opaque(pred.fn_name(), std::move(args),
                                         pred.literal().ToString());
      break;
    }
    default:
      return std::nullopt;  // join-equality fixes come from MERGE, not here
  }
  op.id = CompOpId(op);
  return op;
}

}  // namespace

Result<std::optional<EnumResult>> RewriteEnum(const TargetContext& target,
                                              const CandidateView& candidate,
                                              const EnumDeps& deps) {
  // Per-candidate operator set: the target's ops plus the fix filters
  // (predicates of q not implied by the candidate).
  TargetContext local = target;
  std::set<std::string> ids;
  for (const CompOp& op : local.ops) ids.insert(op.id);
  const afk::Fix fix = ComputeFix(target.afk, candidate.afk);
  for (const afk::Predicate& pred : fix.missing_filters) {
    auto op = FixFilterOp(pred);
    if (op.has_value() && ids.insert(op->id).second) {
      local.ops.push_back(std::move(*op));
    }
  }

  DfsEnv env;
  env.target = &local;
  env.candidate = &candidate;
  env.deps = &deps;
  env.max_depth = target.afk.keys().agg_depth();
  for (const std::string& sig : UsefulSignatures(target.afk)) {
    env.allowed.insert(sig);
  }
  for (const Attribute& a : candidate.afk.attrs()) {
    env.allowed.insert(a.signature());
  }
  env.remaining.assign(local.ops.size(), deps.options.max_op_repetition);
  Dfs(&env, candidate.afk);
  OPD_RETURN_NOT_OK(env.error);
  if (!env.best.has_value()) return std::optional<EnumResult>{};
  env.best->rewrites_found = env.found;
  return std::optional<EnumResult>(std::move(*env.best));
}

}  // namespace opd::rewrite
