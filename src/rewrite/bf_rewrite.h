// BFREWRITE (Section 6, Algorithms 1-3): best-first search for the
// minimum-cost rewrite of a whole plan W.
//
// Every job i in W is a rewritable target W_i with its own ViewFinder.
// FINDNEXTMINTARGET recursively picks the target whose next candidate has
// the lowest OPTCOST; REFINETARGET refines it; PROPBESTREWRITE propagates an
// improved rewrite downstream by composing it with the consuming jobs.
// Terminates when no target can possibly improve BESTPLAN_n.

#ifndef OPD_REWRITE_BF_REWRITE_H_
#define OPD_REWRITE_BF_REWRITE_H_

#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "catalog/view_store.h"
#include "common/status.h"
#include "obs/trace.h"
#include "optimizer/optimizer.h"
#include "plan/plan.h"
#include "rewrite/rewrite_enum.h"
#include "rewrite/rewriter.h"

namespace opd::rewrite {

/// \brief The paper's rewriter.
class BfRewriter {
 public:
  BfRewriter(const optimizer::Optimizer* optimizer,
             const catalog::ViewStore* views, RewriteOptions options = {})
      : optimizer_(optimizer), views_(views), options_(std::move(options)) {}

  /// Finds the minimum-cost rewrite of `plan` using the currently-published
  /// views (equivalent to Rewrite against `views->Snapshot()`). `plan` is
  /// prepared (annotated + costed) in place; the returned outcome contains
  /// the best plan (possibly the original) and search statistics.
  ///
  /// When `trace` is non-null the search opens a "rewrite" span under
  /// `parent_span` with one "round" span per refinement iteration.
  Result<RewriteOutcome> Rewrite(plan::Plan* plan,
                                 obs::Trace* trace = nullptr,
                                 uint64_t parent_span = 0) const;

  /// Same search against a fixed epoch-consistent snapshot of the store
  /// (serving layer: a query rewrites only against the views published at
  /// its admission epoch, never against views materializing concurrently).
  /// `snapshot` must outlive the call. Thread-safe: concurrent Rewrite
  /// calls share only the internal (mutex-guarded) target memo.
  Result<RewriteOutcome> Rewrite(plan::Plan* plan,
                                 const catalog::ViewSnapshot& snapshot,
                                 obs::Trace* trace = nullptr,
                                 uint64_t parent_span = 0) const;

  const RewriteOptions& options() const { return options_; }

 private:
  const optimizer::Optimizer* optimizer_;
  const catalog::ViewStore* views_;
  RewriteOptions options_;

  /// Per-target setup cache, keyed by the target subplan's fingerprint.
  /// Analysts re-run structurally identical (sub)queries constantly, and
  /// the target side of ViewFinder::Init — the TargetContext and its
  /// useful-signature set — depends only on the subplan and the fixed
  /// RewriteOptions, never on the (growing) view store, so it is safe to
  /// reuse across Rewrite() calls. Hits/misses are published as
  /// `rewrite.viewfinder.memo_hit` / `..._miss`. Guarded by `memo_mu_`
  /// (Rewrite is const and may run from concurrent sessions).
  struct TargetMemoEntry {
    TargetContext target;
    std::vector<std::string> useful_sigs;
  };
  mutable std::mutex memo_mu_;
  mutable std::unordered_map<std::string, TargetMemoEntry> target_memo_;
};

}  // namespace opd::rewrite

#endif  // OPD_REWRITE_BF_REWRITE_H_
