// Candidate views: a single stored view, or a MERGE-composition of several
// (Section 7). A candidate knows its AFK annotation, its constituents, and
// how to build a scan(+join) plan over them.

#ifndef OPD_REWRITE_CANDIDATE_H_
#define OPD_REWRITE_CANDIDATE_H_

#include <limits>
#include <string>
#include <vector>

#include "afk/afk.h"
#include "catalog/view_store.h"
#include "common/status.h"
#include "plan/plan.h"

namespace opd::rewrite {

/// \brief Bitmask of which useful signatures an annotation covers (bit i =
/// useful_sigs[i] present). Drives the MiniCon-style merge pruning: a merge
/// is only worth creating when the combined coverage strictly exceeds both
/// sides' coverage, i.e. each side contributes something the other lacks.
using Coverage = std::vector<uint64_t>;

/// \brief A candidate for rewriting a target: one or more stored views,
/// joined on their common attributes.
struct CandidateView {
  /// Constituent view ids, in join order (first is the left-most input).
  std::vector<catalog::ViewId> parts;
  afk::Afk afk;
  /// Estimated total bytes of all constituent views (from their stats).
  double total_bytes = 0;
  /// OPTCOST with respect to the current target (set by the ViewFinder).
  double opt_cost = std::numeric_limits<double>::infinity();
  /// Useful-signature coverage w.r.t. the current target (set by the search).
  Coverage coverage;

  /// Canonical id "3+7+12" (sorted part ids); the dedup key.
  std::string Id() const;
  size_t NumParts() const { return parts.size(); }
};

/// Builds the single-view candidate for `def`.
CandidateView MakeBaseCandidate(const catalog::ViewDefinition& def);

/// Builds the scan(+join) plan fragment reading this candidate: a left-deep
/// chain of equi-joins on the common attributes between the accumulated
/// result and each next part.
Result<plan::OpNodePtr> BuildCandidateScan(const CandidateView& candidate,
                                           const catalog::ViewStore& views);

/// The attribute signatures a target could possibly use: its output
/// attributes, the transitive input dependencies of its derived attributes,
/// its key attributes, and its filter attributes. Candidates sharing none of
/// these are irrelevant to the target.
std::vector<std::string> UsefulSignatures(const afk::Afk& q);

/// True if any attribute of `v` appears in `useful_sigs` (sorted).
bool IsRelevant(const afk::Afk& v,
                const std::vector<std::string>& useful_sigs);

Coverage ComputeCoverage(const afk::Afk& v,
                         const std::vector<std::string>& useful_sigs);

/// a | b.
Coverage CoverageUnion(const Coverage& a, const Coverage& b);

/// True if a == b (same length assumed).
bool CoverageEqual(const Coverage& a, const Coverage& b);

}  // namespace opd::rewrite

#endif  // OPD_REWRITE_CANDIDATE_H_
