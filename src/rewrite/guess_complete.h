// GUESSCOMPLETE (Section 4.1): a quick, conservative containment guess. May
// return false positives (REWRITEENUM does the exact check) but never false
// negatives for rewrites expressible in the model.

#ifndef OPD_REWRITE_GUESS_COMPLETE_H_
#define OPD_REWRITE_GUESS_COMPLETE_H_

#include "afk/afk.h"

namespace opd::rewrite {

/// \brief Returns true if `v` might produce a complete rewrite of `q`:
///  (i)   v contains all attributes of q, or the attributes needed to
///        produce them (producibility closure);
///  (ii)  v has weaker-or-equal selection predicates than q;
///  (iii) v is less aggregated than q.
bool GuessComplete(const afk::Afk& q, const afk::Afk& v);

}  // namespace opd::rewrite

#endif  // OPD_REWRITE_GUESS_COMPLETE_H_
