#include "rewrite/advisor.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "rewrite/bf_rewrite.h"

namespace opd::rewrite {

std::string AdvisorReport::ToString(const catalog::ViewStore& store) const {
  std::ostringstream os;
  os << "workload: " << queries_improved << "/" << queries_total
     << " queries improved, total estimated savings "
     << static_cast<long>(total_benefit_s) << "s\n";
  os << "view ranking (benefit desc):\n";
  for (const ViewScore& score : ranking) {
    os << "  view " << score.id << ": " << static_cast<long>(
        score.total_benefit_s)
       << "s across " << score.queries_helped << " queries, " << score.bytes
       << " bytes";
    auto def = store.Find(score.id);
    if (def.ok()) os << "  [" << (*def)->producer << "]";
    os << "\n";
  }
  os << unused.size() << " views unused by this workload\n";
  return os.str();
}

Result<AdvisorReport> ViewAdvisor::Analyze(
    std::vector<plan::Plan>* workload) const {
  AdvisorReport report;
  report.queries_total = static_cast<int>(workload->size());

  std::map<catalog::ViewId, ViewScore> scores;
  BfRewriter rewriter(optimizer_, views_, options_);

  for (plan::Plan& query : *workload) {
    OPD_ASSIGN_OR_RETURN(RewriteOutcome outcome, rewriter.Rewrite(&query));
    if (!outcome.improved) continue;
    report.queries_improved += 1;
    const double benefit =
        std::max(outcome.original_cost - outcome.est_cost, 0.0);
    report.total_benefit_s += benefit;

    std::set<catalog::ViewId> used;
    for (const plan::OpNodePtr& node : outcome.plan.TopoOrder()) {
      if (node->kind == plan::OpKind::kScan && node->view_id >= 0) {
        used.insert(node->view_id);
      }
    }
    if (used.empty()) continue;
    const double share = benefit / static_cast<double>(used.size());
    for (catalog::ViewId id : used) {
      ViewScore& score = scores[id];
      score.id = id;
      score.total_benefit_s += share;
      score.queries_helped += 1;
    }
  }

  for (const catalog::ViewDefinition* def : views_->All()) {
    auto it = scores.find(def->id);
    if (it == scores.end()) {
      report.unused.push_back(def->id);
    } else {
      it->second.bytes = def->bytes;
      report.ranking.push_back(it->second);
    }
  }
  std::sort(report.ranking.begin(), report.ranking.end(),
            [](const ViewScore& a, const ViewScore& b) {
              if (a.total_benefit_s != b.total_benefit_s) {
                return a.total_benefit_s > b.total_benefit_s;
              }
              return a.id < b.id;
            });
  return report;
}

}  // namespace opd::rewrite
