// View advisor: which retained views actually earn their storage?
//
// The paper (Section 10) frames limited-budget view retention as the view
// selection problem and suggests cost-benefit policies. The advisor supplies
// the benefit side: it rewrites a representative workload against the
// current store and attributes each query's estimated savings to the views
// its rewrite scans. The resulting ranking drives the kCostBenefit eviction
// policy (catalog/eviction.h) or manual cleanup.

#ifndef OPD_REWRITE_ADVISOR_H_
#define OPD_REWRITE_ADVISOR_H_

#include <map>
#include <string>
#include <vector>

#include "catalog/view_store.h"
#include "common/status.h"
#include "optimizer/optimizer.h"
#include "plan/plan.h"
#include "rewrite/rewriter.h"

namespace opd::rewrite {

/// Benefit attribution for one view.
struct ViewScore {
  catalog::ViewId id = -1;
  /// Total estimated execution-time savings attributed to this view across
  /// the workload (equal shares among the views each rewrite scans).
  double total_benefit_s = 0;
  /// Number of workload queries whose best rewrite scans this view.
  int queries_helped = 0;
  uint64_t bytes = 0;

  double BenefitPerByte() const {
    return total_benefit_s / static_cast<double>(std::max<uint64_t>(bytes, 1));
  }
};

struct AdvisorReport {
  /// Views ranked by total benefit, descending; unused views excluded.
  std::vector<ViewScore> ranking;
  /// Total estimated savings across the workload.
  double total_benefit_s = 0;
  /// Queries for which any rewrite was found.
  int queries_improved = 0;
  int queries_total = 0;

  /// Views never used by any rewrite (eviction candidates).
  std::vector<catalog::ViewId> unused;

  std::string ToString(const catalog::ViewStore& store) const;
};

/// \brief Scores the current view store against a workload.
class ViewAdvisor {
 public:
  ViewAdvisor(const optimizer::Optimizer* optimizer,
              const catalog::ViewStore* views, RewriteOptions options = {})
      : optimizer_(optimizer), views_(views), options_(std::move(options)) {}

  /// Rewrites every query (in place: plans are prepared) and attributes the
  /// benefits. The store is not modified.
  Result<AdvisorReport> Analyze(std::vector<plan::Plan>* workload) const;

 private:
  const optimizer::Optimizer* optimizer_;
  const catalog::ViewStore* views_;
  RewriteOptions options_;
};

}  // namespace opd::rewrite

#endif  // OPD_REWRITE_ADVISOR_H_
