#include "rewrite/bf_rewrite.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <mutex>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "plan/fingerprint.h"
#include "plan/job.h"
#include "rewrite/candidate.h"
#include "rewrite/view_finder.h"

namespace opd::rewrite {

namespace {

constexpr double kEps = 1e-9;

/// Per-run search state (Algorithms 1-3 operate over this).
struct SearchState {
  const plan::JobDag* dag = nullptr;
  std::vector<plan::OpNodePtr> best_plan;
  std::vector<double> best_cost;
  std::vector<ViewFinder> finders;
  RewriteStats* stats = nullptr;
  /// Decision audit trail; null when RewriteOptions::log_decisions is off.
  /// targets is pre-sized to the DAG, so element pointers stay stable.
  DecisionLog* log = nullptr;
  std::chrono::steady_clock::time_point start;

  double Elapsed() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  }

  /// Composes a plan for job i from its original operator and the current
  /// best plans of its producers (used by PROPBESTREWRITE).
  plan::OpNodePtr Compose(int i) const {
    const plan::Job& job = dag->job(i);
    auto node = std::make_shared<plan::OpNode>();
    const plan::OpNode& orig = *job.op;
    node->kind = orig.kind;
    node->table = orig.table;
    node->view_id = orig.view_id;
    node->project = orig.project;
    node->filter = orig.filter;
    node->join = orig.join;
    node->group = orig.group;
    node->udf = orig.udf;
    size_t producer_idx = 0;
    for (const plan::OpNodePtr& child : orig.children) {
      if (child->kind == plan::OpKind::kScan) {
        node->children.push_back(child);
      } else {
        node->children.push_back(best_plan[job.producers[producer_idx++]]);
      }
    }
    return node;
  }

  double ComposedCost(int i) const {
    const plan::Job& job = dag->job(i);
    double cost = job.op->cost.total_s;
    for (int p : job.producers) cost += best_cost[p];
    return cost;
  }

  void RecordSinkImprovement() {
    stats->convergence.emplace_back(Elapsed(), best_cost[dag->sink()]);
  }

  // Algorithm 3: PROPBESTREWRITE.
  void PropBestRewrite(int i) {
    double cost = ComposedCost(i);
    if (cost + kEps < best_cost[i]) {
      best_cost[i] = cost;
      best_plan[i] = Compose(i);
      if (i == dag->sink()) RecordSinkImprovement();
      for (int k : dag->job(i).consumers) PropBestRewrite(k);
    }
  }

  // Algorithm 2: REFINETARGET.
  Status RefineTarget(int i) {
    auto result = finders[i].Refine();
    OPD_RETURN_NOT_OK(finders[i].status());
    const bool improves =
        result.has_value() && result->cost + kEps < best_cost[i];
    if (log != nullptr && result.has_value()) {
      // Refine() appended the decision for the candidate it just popped;
      // only the search loop knows whether the rewrite actually beat the
      // target's running best.
      TargetDecision& td = log->targets[static_cast<size_t>(i)];
      CandidateDecision& cd = td.candidates.back();
      if (improves) {
        // Demote the previously accepted candidate (if any): it is no
        // longer cheaper than the best, which is this one's definition of
        // rejection. Keeps the invariant "at most one accepted per target".
        for (CandidateDecision& prev : td.candidates) {
          if (&prev != &cd && prev.reject == RejectReason::kNone) {
            prev.reject = RejectReason::kNotCostImproving;
          }
        }
        td.chosen_id = cd.candidate_id;
      } else {
        cd.reject = RejectReason::kNotCostImproving;
      }
    }
    if (improves) {
      best_cost[i] = result->cost;
      best_plan[i] = result->plan.root();
      if (i == dag->sink()) RecordSinkImprovement();
      for (int k : dag->job(i).consumers) PropBestRewrite(k);
    }
    return Status::OK();
  }

  // Algorithm 2: FINDNEXTMINTARGET. Returns (target index or -1, bound d).
  std::pair<int, double> FindNextMinTarget(int i) {
    double d_prime = 0;
    int w_min = -1;
    double d_min = std::numeric_limits<double>::infinity();
    for (int j : dag->job(i).producers) {
      auto [k, d] = FindNextMinTarget(j);
      d_prime += d;
      if (d < d_min && k != -1) {
        w_min = k;
        d_min = d;
      }
    }
    d_prime += dag->job(i).op->cost.total_s;
    const double d_i = finders[i].Peek();
    if (std::min(d_prime, d_i) >= best_cost[i] - kEps) {
      return {-1, best_cost[i]};
    }
    if (d_prime < d_i) {
      // With eager propagation, d' < BESTPLANCOST_i implies some producer
      // target is refinable; the defensive -1 covers numeric edge cases.
      return {w_min, d_prime};
    }
    return {i, d_i};
  }
};

}  // namespace

Result<RewriteOutcome> BfRewriter::Rewrite(plan::Plan* plan,
                                           obs::Trace* trace,
                                           uint64_t parent_span) const {
  // Single-tenant path: rewrite against everything currently published.
  return Rewrite(plan, views_->Snapshot(), trace, parent_span);
}

Result<RewriteOutcome> BfRewriter::Rewrite(plan::Plan* plan,
                                           const catalog::ViewSnapshot& snapshot,
                                           obs::Trace* trace,
                                           uint64_t parent_span) const {
  obs::TraceSpan rewrite_span(trace, parent_span, "rewrite", "rewrite");
  OPD_RETURN_NOT_OK(optimizer_->Prepare(plan));
  OPD_ASSIGN_OR_RETURN(plan::JobDag dag, plan::JobDag::Build(*plan));
  const size_t n = dag.size();

  RewriteOutcome outcome;
  SearchState state;
  state.dag = &dag;
  state.stats = &outcome.stats;
  state.start = std::chrono::steady_clock::now();

  EnumDeps deps;
  deps.optimizer = optimizer_;
  deps.views = views_;
  deps.udfs = optimizer_->context().udfs;
  deps.options = options_;

  const auto all_views = snapshot.All();
  state.best_plan.resize(n);
  state.best_cost.resize(n);
  state.finders.resize(n);
  if (options_.log_decisions) {
    outcome.decisions.targets.resize(n);
    state.log = &outcome.decisions;
  }
  auto& registry = obs::MetricRegistry::Global();
  for (size_t i = 0; i < n; ++i) {
    state.best_plan[i] = dag.job(i).op;
    state.best_cost[i] = dag.TargetCost(i);
    if (state.log != nullptr) {
      TargetDecision& td = state.log->targets[i];
      td.target_index = static_cast<int>(i);
      td.target_op = dag.job(i).op->DisplayName();
      td.original_cost = state.best_cost[i];
    }
    // Target-side setup is memoized on the subplan fingerprint (see
    // bf_rewrite.h): repeated structurally identical targets skip the
    // TargetContext derivation and the useful-signature computation.
    const std::string fp = plan::Fingerprint(dag.job(i).op);
    TargetMemoEntry entry;
    bool hit = false;
    {
      std::lock_guard<std::mutex> lock(memo_mu_);
      auto it = target_memo_.find(fp);
      if (it != target_memo_.end()) {
        entry = it->second;
        hit = true;
      }
    }
    if (!hit) {
      entry.target = MakeTargetContext(dag.job(i).op, options_);
      entry.useful_sigs = UsefulSignatures(entry.target.afk);
      std::lock_guard<std::mutex> lock(memo_mu_);
      target_memo_.emplace(fp, entry);
    }
    registry
        .counter(hit ? "rewrite.viewfinder.memo_hit"
                     : "rewrite.viewfinder.memo_miss")
        .Inc();
    state.finders[i].Init(std::move(entry.target), deps, all_views,
                          &outcome.stats, std::move(entry.useful_sigs),
                          state.log != nullptr ? &state.log->targets[i]
                                               : nullptr);
  }
  outcome.original_cost = state.best_cost[dag.sink()];
  outcome.stats.convergence.emplace_back(0.0, outcome.original_cost);

  // Algorithm 1: main loop.
  constexpr size_t kMaxIterations = 10'000'000;
  for (size_t iter = 0; iter < kMaxIterations; ++iter) {
    auto [target, d] = state.FindNextMinTarget(dag.sink());
    if (target == -1) break;
    obs::TraceSpan round_span(trace, rewrite_span.id(),
                              "round:" + std::to_string(iter), "rewrite");
    round_span.AddArg("target", static_cast<int64_t>(target));
    round_span.AddArg("peek_cost", d);
    OPD_RETURN_NOT_OK(state.RefineTarget(target));
    round_span.AddArg("best_cost", state.best_cost[dag.sink()]);
  }

  if (state.log != nullptr) {
    for (size_t i = 0; i < n; ++i) {
      state.finders[i].DrainPrunedDecisions();
      TargetDecision& td = state.log->targets[i];
      td.best_cost = state.best_cost[i];
      td.predicted_benefit_s =
          std::max(td.original_cost - td.best_cost, 0.0);
    }
  }
  outcome.plan = plan::Plan(state.best_plan[dag.sink()], plan->name());
  outcome.est_cost = state.best_cost[dag.sink()];
  outcome.improved = outcome.est_cost + kEps < outcome.original_cost;
  outcome.stats.runtime_s = state.Elapsed();
  if (rewrite_span) {
    rewrite_span.AddArg("original_cost", outcome.original_cost);
    rewrite_span.AddArg("est_cost", outcome.est_cost);
    rewrite_span.AddArg("improved", outcome.improved);
    rewrite_span.AddArg("candidates",
                        static_cast<uint64_t>(outcome.stats.candidates_considered));
  }
  return outcome;
}

}  // namespace opd::rewrite
