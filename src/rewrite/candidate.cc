#include "rewrite/candidate.h"

#include <algorithm>
#include <set>

namespace opd::rewrite {

std::string CandidateView::Id() const {
  std::vector<catalog::ViewId> sorted = parts;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += "+";
    out += std::to_string(sorted[i]);
  }
  return out;
}

CandidateView MakeBaseCandidate(const catalog::ViewDefinition& def) {
  CandidateView c;
  c.parts = {def.id};
  c.afk = def.afk;
  c.total_bytes = def.stats.TotalBytes();
  return c;
}

Result<plan::OpNodePtr> BuildCandidateScan(const CandidateView& candidate,
                                           const catalog::ViewStore& views) {
  if (candidate.parts.empty()) {
    return Status::InvalidArgument("candidate has no parts");
  }
  OPD_ASSIGN_OR_RETURN(const catalog::ViewDefinition* first,
                       views.Find(candidate.parts[0]));
  plan::OpNodePtr acc = plan::ScanView(first->id);
  afk::Afk acc_afk = first->afk;

  for (size_t i = 1; i < candidate.parts.size(); ++i) {
    OPD_ASSIGN_OR_RETURN(const catalog::ViewDefinition* next,
                         views.Find(candidate.parts[i]));
    // Join on every attribute the two sides share (same signature implies
    // same name under our attribute construction).
    std::vector<std::pair<std::string, std::string>> pairs;
    for (const afk::Attribute& a : acc_afk.attrs()) {
      if (next->afk.HasAttr(a)) pairs.emplace_back(a.name(), a.name());
    }
    if (pairs.empty()) {
      return Status::InvalidArgument(
          "candidate parts share no attributes: " + candidate.Id());
    }
    std::vector<std::pair<afk::Attribute, afk::Attribute>> attr_pairs;
    for (const auto& [l, r] : pairs) {
      attr_pairs.emplace_back(*acc_afk.FindByName(l), *next->afk.FindByName(r));
    }
    OPD_ASSIGN_OR_RETURN(acc_afk, acc_afk.Join(next->afk, attr_pairs));
    acc = plan::Join(std::move(acc), plan::ScanView(next->id), pairs);
  }
  return acc;
}

std::vector<std::string> UsefulSignatures(const afk::Afk& q) {
  std::set<std::string> sigs;
  // Output attributes and their transitive dependencies.
  std::vector<afk::Attribute> stack = q.attrs();
  while (!stack.empty()) {
    afk::Attribute a = stack.back();
    stack.pop_back();
    if (!sigs.insert(a.signature()).second) continue;
    for (const afk::Attribute& dep : a.inputs()) stack.push_back(dep);
  }
  for (const afk::Attribute& k : q.keys().keys()) sigs.insert(k.signature());
  for (const afk::Predicate& p : q.filters().preds()) {
    for (const afk::Attribute& a : p.args()) sigs.insert(a.signature());
  }
  return {sigs.begin(), sigs.end()};
}

bool IsRelevant(const afk::Afk& v,
                const std::vector<std::string>& useful_sigs) {
  for (const afk::Attribute& a : v.attrs()) {
    if (std::binary_search(useful_sigs.begin(), useful_sigs.end(),
                           a.signature())) {
      return true;
    }
  }
  return false;
}

Coverage ComputeCoverage(const afk::Afk& v,
                         const std::vector<std::string>& useful_sigs) {
  Coverage mask((useful_sigs.size() + 63) / 64, 0);
  for (const afk::Attribute& a : v.attrs()) {
    auto it = std::lower_bound(useful_sigs.begin(), useful_sigs.end(),
                               a.signature());
    if (it != useful_sigs.end() && *it == a.signature()) {
      size_t i = static_cast<size_t>(it - useful_sigs.begin());
      mask[i / 64] |= uint64_t{1} << (i % 64);
    }
  }
  return mask;
}

Coverage CoverageUnion(const Coverage& a, const Coverage& b) {
  Coverage out(std::max(a.size(), b.size()), 0);
  for (size_t i = 0; i < a.size(); ++i) out[i] |= a[i];
  for (size_t i = 0; i < b.size(); ++i) out[i] |= b[i];
  return out;
}

bool CoverageEqual(const Coverage& a, const Coverage& b) { return a == b; }

}  // namespace opd::rewrite
