// REWRITEENUM (Section 7.2): brute-force enumeration of compensation
// sequences over a candidate view, tested for exact model equivalence with
// the target.
//
// The rewrite operator set is SPJGA plus a bounded set of UDFs (Section 5).
// Operator *instances* are drawn from the target plan itself (its filters,
// group-bys and UDF invocations are precisely the computations a
// compensation may need to replay), each usable at most k times.

#ifndef OPD_REWRITE_REWRITE_ENUM_H_
#define OPD_REWRITE_REWRITE_ENUM_H_

#include <optional>
#include <string>
#include <vector>

#include "afk/afk.h"
#include "catalog/view_store.h"
#include "optimizer/optimizer.h"
#include "plan/plan.h"
#include "rewrite/candidate.h"
#include "rewrite/rewriter.h"
#include "udf/udf_registry.h"

namespace opd::rewrite {

/// One compensation operator instance.
struct CompOp {
  enum class Kind { kFilter, kGroupBy, kUdf };
  Kind kind = Kind::kFilter;
  plan::FilterCond cond;      // kFilter
  plan::GroupBySpec group;    // kGroupBy
  std::string udf_name;       // kUdf
  udf::Params udf_params;     // kUdf
  std::string id;             // canonical payload string (dedup key)
};

/// Everything the enumeration knows about the target being rewritten.
struct TargetContext {
  afk::Afk afk;
  /// Output attributes in the target's natural column order.
  std::vector<afk::Attribute> out_attrs;
  /// Compensation operator instances available for this target.
  std::vector<CompOp> ops;
};

/// Shared dependencies of the enumeration.
struct EnumDeps {
  const optimizer::Optimizer* optimizer = nullptr;
  const catalog::ViewStore* views = nullptr;
  const udf::UdfRegistry* udfs = nullptr;
  RewriteOptions options;
};

/// Extracts the target context (annotation + compensation ops) from an
/// annotated target subtree.
TargetContext MakeTargetContext(const plan::OpNodePtr& target_root,
                                const RewriteOptions& options);

/// Applies one compensation op symbolically; error Status if inapplicable in
/// the current state.
Result<afk::Afk> ApplyCompOp(const afk::Afk& state, const CompOp& op,
                             const udf::UdfRegistry& udfs);

/// A valid rewrite found by the enumeration.
struct EnumResult {
  plan::Plan plan;
  double cost = 0;
  /// Number of distinct valid rewrites encountered while searching (the
  /// returned plan is the cheapest).
  size_t rewrites_found = 0;
};

/// \brief Searches for an equivalent rewrite of `target` using `candidate`.
///
/// Returns nullopt when no compensation sequence yields exact equivalence
/// (GUESSCOMPLETE false positives land here). On success, returns the
/// minimum-cost valid rewrite.
Result<std::optional<EnumResult>> RewriteEnum(const TargetContext& target,
                                              const CandidateView& candidate,
                                              const EnumDeps& deps);

}  // namespace opd::rewrite

#endif  // OPD_REWRITE_REWRITE_ENUM_H_
