#include "rewrite/decision_log.h"

#include <cstdio>

#include "common/json_writer.h"

namespace opd::rewrite {

namespace {

/// Compact deterministic cost rendering ("12.5s"); doubles are %.6g, the
/// same convention JsonWriter uses.
std::string FormatCost(double seconds) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6gs", seconds);
  return buf;
}

std::string DescribeCandidate(const CandidateDecision& c) {
  std::string out;
  switch (c.reject) {
    case RejectReason::kSignatureMismatch:
      out = "rejected: signature_mismatch (no useful attributes)";
      break;
    case RejectReason::kPrunedByBound:
      out = "optcost=" + FormatCost(c.opt_cost) +
            "  rejected: pruned_by_bound (never refined)";
      break;
    case RejectReason::kAfkContainment:
      out = "optcost=" + FormatCost(c.opt_cost) +
            (c.guess_complete ? "  enum=no_equivalence"
                              : "  guess_complete=no") +
            "  rejected: afk_containment";
      break;
    case RejectReason::kNotCostImproving:
      out = "optcost=" + FormatCost(c.opt_cost) +
            "  rewrite=" + FormatCost(c.rewrite_cost) +
            "  rejected: not_cost_improving";
      break;
    case RejectReason::kNone:
      out = "optcost=" + FormatCost(c.opt_cost) +
            "  rewrite=" + FormatCost(c.rewrite_cost) + "  accepted";
      break;
  }
  return out;
}

}  // namespace

const char* RejectReasonCode(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "accepted";
    case RejectReason::kSignatureMismatch:
      return "signature_mismatch";
    case RejectReason::kAfkContainment:
      return "afk_containment";
    case RejectReason::kNotCostImproving:
      return "not_cost_improving";
    case RejectReason::kPrunedByBound:
      return "pruned_by_bound";
  }
  return "unknown";
}

DecisionCounts DecisionLog::Counts() const {
  DecisionCounts counts;
  for (const TargetDecision& t : targets) {
    for (const CandidateDecision& c : t.candidates) {
      counts.candidates += 1;
      switch (c.reject) {
        case RejectReason::kNone:
          counts.accepted += 1;
          break;
        case RejectReason::kSignatureMismatch:
          counts.signature_mismatch += 1;
          break;
        case RejectReason::kAfkContainment:
          counts.afk_containment += 1;
          break;
        case RejectReason::kNotCostImproving:
          counts.not_cost_improving += 1;
          break;
        case RejectReason::kPrunedByBound:
          counts.pruned_by_bound += 1;
          break;
      }
    }
  }
  return counts;
}

std::string DecisionLog::ToText() const {
  std::string out;
  for (const TargetDecision& t : targets) {
    out += "[target " + std::to_string(t.target_index) + "] " + t.target_op +
           "\n";
    out += "  original " + FormatCost(t.original_cost) + " -> best " +
           FormatCost(t.best_cost) + "  chosen: ";
    if (!t.chosen_id.empty()) {
      out += "view(" + t.chosen_id + ")  predicted benefit " +
             FormatCost(t.predicted_benefit_s);
    } else if (t.best_cost + 1e-9 < t.original_cost) {
      out += "original operator over rewritten producers";
    } else {
      out += "original plan";
    }
    out += "\n";
    for (const CandidateDecision& c : t.candidates) {
      std::string id = c.candidate_id;
      if (id.size() < 12) id.append(12 - id.size(), ' ');
      out += "    " + id + "  " + DescribeCandidate(c) + "\n";
    }
  }
  const DecisionCounts counts = Counts();
  out += "candidates: " + std::to_string(counts.candidates) +
         "  accepted: " + std::to_string(counts.accepted) +
         "  signature_mismatch: " + std::to_string(counts.signature_mismatch) +
         "  afk_containment: " + std::to_string(counts.afk_containment) +
         "  not_cost_improving: " +
         std::to_string(counts.not_cost_improving) +
         "  pruned_by_bound: " + std::to_string(counts.pruned_by_bound) +
         "\n";
  return out;
}

std::string DecisionLog::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("targets").BeginArray();
  for (const TargetDecision& t : targets) {
    w.BeginObject();
    w.Key("index").Int(t.target_index);
    w.Key("op").String(t.target_op);
    w.Key("original_cost_s").Double(t.original_cost);
    w.Key("best_cost_s").Double(t.best_cost);
    w.Key("chosen").String(t.chosen_id);
    w.Key("predicted_benefit_s").Double(t.predicted_benefit_s);
    w.Key("candidates").BeginArray();
    for (const CandidateDecision& c : t.candidates) {
      w.BeginObject();
      w.Key("id").String(c.candidate_id);
      w.Key("parts").Int(c.num_parts);
      w.Key("opt_cost_s").Double(c.opt_cost);
      w.Key("guess_complete").Bool(c.guess_complete);
      w.Key("rewrite_found").Bool(c.rewrite_found);
      if (c.rewrite_found) w.Key("rewrite_cost_s").Double(c.rewrite_cost);
      w.Key("decision").String(RejectReasonCode(c.reject));
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  const DecisionCounts counts = Counts();
  w.Key("counts").BeginObject();
  w.Key("candidates").UInt(counts.candidates);
  w.Key("accepted").UInt(counts.accepted);
  w.Key("signature_mismatch").UInt(counts.signature_mismatch);
  w.Key("afk_containment").UInt(counts.afk_containment);
  w.Key("not_cost_improving").UInt(counts.not_cost_improving);
  w.Key("pruned_by_bound").UInt(counts.pruned_by_bound);
  w.EndObject();
  w.EndObject();
  return w.Take();
}

}  // namespace opd::rewrite
