#include "rewrite/merge.h"

#include <algorithm>
#include <set>

namespace opd::rewrite {

std::optional<CandidateView> MergeCandidates(const CandidateView& a,
                                             const CandidateView& b,
                                             int max_parts) {
  if (static_cast<int>(a.parts.size() + b.parts.size()) > max_parts) {
    return std::nullopt;
  }
  // Parts must be disjoint.
  std::set<catalog::ViewId> seen(a.parts.begin(), a.parts.end());
  for (catalog::ViewId id : b.parts) {
    if (seen.count(id)) return std::nullopt;
  }
  // Join on every shared attribute — but only when the shared attributes
  // cover *both sides' grouping keys* (the model's multi-input rule joins
  // "on a common key", Section 3.1). Joining below the key would multiply
  // rows in ways the A/F/K state cannot certify as equivalent, and admitting
  // such merges explodes the candidate space with unusable combinations.
  std::vector<std::pair<afk::Attribute, afk::Attribute>> pairs;
  for (const afk::Attribute& attr : a.afk.attrs()) {
    if (b.afk.HasAttr(attr)) pairs.emplace_back(attr, attr);
  }
  if (pairs.empty()) return std::nullopt;
  if (a.afk.keys().keys().empty() || b.afk.keys().keys().empty()) {
    return std::nullopt;
  }
  auto shared = [&pairs](const afk::Attribute& key) {
    for (const auto& [l, _] : pairs) {
      if (l == key) return true;
    }
    return false;
  };
  for (const afk::Attribute& key : a.afk.keys().keys()) {
    if (!shared(key)) return std::nullopt;
  }
  for (const afk::Attribute& key : b.afk.keys().keys()) {
    if (!shared(key)) return std::nullopt;
  }

  auto joined = a.afk.Join(b.afk, pairs);
  if (!joined.ok()) return std::nullopt;

  // Reject merges whose output would carry two distinct attributes with the
  // same display name (e.g. TWTR.user_id and FSQ.user_id, joinable via some
  // third attribute): such a candidate has no plannable schema.
  {
    std::set<std::string> names;
    for (const afk::Attribute& attr : joined.value().attrs()) {
      if (!names.insert(attr.name()).second) return std::nullopt;
    }
  }

  CandidateView out;
  out.parts = a.parts;
  out.parts.insert(out.parts.end(), b.parts.begin(), b.parts.end());
  out.afk = std::move(joined).value();
  out.total_bytes = a.total_bytes + b.total_bytes;
  return out;
}

}  // namespace opd::rewrite
