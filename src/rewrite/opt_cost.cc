#include "rewrite/opt_cost.h"

#include <limits>

#include "rewrite/guess_complete.h"

namespace opd::rewrite {

double OptCost(const afk::Afk& q, const CandidateView& candidate,
               const optimizer::CostModel& model) {
  if (GuessComplete(q, candidate.afk)) {
    const afk::Fix fix = ComputeFix(q, candidate.afk);
    if (fix.empty() && candidate.NumParts() == 1) {
      // Exact match: the rewrite is a scan of the already-materialized view.
      return 0.0;
    }
  }
  // Any rewrite that *uses* this candidate — directly or after further
  // merging — runs at least one MR job that reads every constituent view and
  // applies at least the cheapest fix operation (non-subsumable cost
  // property). Partial candidates therefore carry this same bound: it prices
  // their potential to participate in a merged rewrite.
  double bound = model.job_latency();
  bound += model.ReadCost(candidate.total_bytes);
  bound += model.CheapestOpCpu(candidate.total_bytes);
  return bound;
}

}  // namespace opd::rewrite
