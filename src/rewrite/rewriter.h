// Shared types for the rewrite algorithms: options, search statistics, and
// the common outcome structure returned by BFRewrite, the DP baseline, and
// the syntactic-caching baseline.

#ifndef OPD_REWRITE_REWRITER_H_
#define OPD_REWRITE_REWRITER_H_

#include <string>
#include <utility>
#include <vector>

#include "plan/plan.h"
#include "rewrite/decision_log.h"

namespace opd::rewrite {

/// Knobs shared by all rewrite algorithms (Section 5: J and k; Section 8.2
/// defaults J = 4, k = 2).
struct RewriteOptions {
  /// J: maximum number of views that can participate in one rewrite.
  int max_views_per_rewrite = 4;
  /// k: maximum number of times one operator instance may appear in a
  /// rewrite's compensation.
  int max_op_repetition = 2;
  /// UDF names admitted as rewrite operators. Empty means "every UDF that
  /// appears in the target plan" (those are by construction the most relevant
  /// operators for compensating that target).
  std::vector<std::string> rewrite_udfs;
  /// Ablation switch: when false, the ViewFinder queue degenerates to
  /// insertion order instead of OPTCOST order.
  bool use_optcost_ordering = true;
  /// Ablation switch: when false, REWRITEENUM is attempted on every popped
  /// candidate instead of only GUESSCOMPLETE survivors.
  bool use_guess_complete_filter = true;
  /// Safety caps for the exhaustive DP baseline.
  size_t dp_candidate_budget = 200000;
  double dp_time_budget_s = 300.0;
  /// Record a per-target DecisionLog (candidates enumerated, reject reasons,
  /// OPTCOST estimates, chosen rewrite) in the RewriteOutcome — the audit
  /// trail behind EXPLAIN REWRITE. Cheap (one small record per candidate);
  /// off reverts to the pre-observability behaviour.
  bool log_decisions = true;
};

/// Search-effort counters (the paper's Figure 9 metrics).
struct RewriteStats {
  /// Candidate views examined (ViewFinder pops / DP enumerations).
  size_t candidates_considered = 0;
  /// REWRITEENUM invocations.
  size_t rewrite_attempts = 0;
  /// Valid rewrites found during the search.
  size_t rewrites_found = 0;
  /// Algorithm runtime in seconds (search only, not execution).
  double runtime_s = 0;
  /// (elapsed seconds, best-known plan cost) at each improvement — the
  /// Figure 11 convergence trace. The first entry is the original plan cost.
  std::vector<std::pair<double, double>> convergence;
  /// True if a DP budget cap cut the search short.
  bool budget_exceeded = false;
};

/// Result of rewriting one query plan.
struct RewriteOutcome {
  /// The minimum-cost plan found (the original plan when nothing better
  /// exists).
  plan::Plan plan;
  double est_cost = 0;
  double original_cost = 0;
  bool improved = false;
  RewriteStats stats;
  /// Per-target decision audit trail; populated by BFREWRITE when
  /// RewriteOptions::log_decisions (empty otherwise, and for the baseline
  /// rewriters).
  DecisionLog decisions;
};

}  // namespace opd::rewrite

#endif  // OPD_REWRITE_REWRITER_H_
