#include "rewrite/syntactic.h"

#include <chrono>
#include <map>

#include "plan/fingerprint.h"
#include "plan/job.h"

namespace opd::rewrite {

namespace {
constexpr double kEps = 1e-9;
}

Result<RewriteOutcome> SyntacticRewriter::Rewrite(plan::Plan* plan) const {
  OPD_RETURN_NOT_OK(optimizer_->Prepare(plan));
  OPD_ASSIGN_OR_RETURN(plan::JobDag dag, plan::JobDag::Build(*plan));
  const size_t n = dag.size();

  RewriteOutcome outcome;
  auto start = std::chrono::steady_clock::now();

  // Index stored views by fingerprint.
  std::map<std::string, const catalog::ViewDefinition*> by_fingerprint;
  for (const catalog::ViewDefinition* def : views_->All()) {
    by_fingerprint.emplace(def->fingerprint, def);
  }

  std::vector<double> dp_cost(n);
  std::vector<plan::OpNodePtr> dp_plan(n);
  for (size_t i = 0; i < n; ++i) {
    const plan::Job& job = dag.job(i);
    outcome.stats.candidates_considered += views_->size() > 0 ? 1 : 0;
    auto it = by_fingerprint.find(plan::Fingerprint(job.op));
    if (it != by_fingerprint.end()) {
      outcome.stats.rewrite_attempts += 1;
      outcome.stats.rewrites_found += 1;
      // The result is already materialized: reuse is a free scan.
      dp_cost[i] = 0;
      dp_plan[i] = plan::ScanView(it->second->id);
      continue;
    }
    double composed = job.op->cost.total_s;
    for (int p : job.producers) composed += dp_cost[p];
    bool any_rewritten = false;
    for (int p : job.producers) {
      if (dp_plan[p] != dag.job(p).op) any_rewritten = true;
    }
    if (any_rewritten) {
      auto node = std::make_shared<plan::OpNode>();
      const plan::OpNode& orig = *job.op;
      node->kind = orig.kind;
      node->table = orig.table;
      node->view_id = orig.view_id;
      node->project = orig.project;
      node->filter = orig.filter;
      node->join = orig.join;
      node->group = orig.group;
      node->udf = orig.udf;
      size_t producer_idx = 0;
      for (const plan::OpNodePtr& child : orig.children) {
        if (child->kind == plan::OpKind::kScan) {
          node->children.push_back(child);
        } else {
          node->children.push_back(dp_plan[job.producers[producer_idx++]]);
        }
      }
      dp_plan[i] = std::move(node);
    } else {
      dp_plan[i] = job.op;
    }
    dp_cost[i] = composed;
  }

  outcome.original_cost = dag.TargetCost(dag.sink());
  outcome.plan = plan::Plan(dp_plan[dag.sink()], plan->name());
  outcome.est_cost = dp_cost[dag.sink()];
  outcome.improved = outcome.est_cost + kEps < outcome.original_cost;
  outcome.stats.runtime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return outcome;
}

}  // namespace opd::rewrite
