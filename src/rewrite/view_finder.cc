#include "rewrite/view_finder.h"

#include <algorithm>

#include "obs/metrics.h"
#include "rewrite/guess_complete.h"
#include "rewrite/merge.h"
#include "rewrite/opt_cost.h"

namespace opd::rewrite {

namespace {

struct HeapGreater {
  bool operator()(const CandidateView& a, const CandidateView& b) const {
    if (a.opt_cost != b.opt_cost) return a.opt_cost > b.opt_cost;
    return a.parts > b.parts;  // deterministic tie-break
  }
};

}  // namespace

void ViewFinder::Init(TargetContext target, EnumDeps deps,
                      const std::vector<const catalog::ViewDefinition*>& views,
                      RewriteStats* stats,
                      std::optional<std::vector<std::string>> useful_sigs,
                      TargetDecision* decision) {
  target_ = std::move(target);
  deps_ = std::move(deps);
  stats_ = stats;
  decision_ = decision;
  useful_sigs_ = useful_sigs ? std::move(*useful_sigs)
                             : UsefulSignatures(target_.afk);
  heap_.clear();
  seen_.clear();
  enqueued_.clear();
  for (const catalog::ViewDefinition* def : views) {
    if (!IsRelevant(def->afk, useful_sigs_)) {
      if (decision_ != nullptr) {
        CandidateDecision cd;
        cd.candidate_id = std::to_string(def->id);
        cd.num_parts = 1;
        cd.reject = RejectReason::kSignatureMismatch;
        decision_->candidates.push_back(std::move(cd));
      }
      continue;
    }
    CandidateView c = MakeBaseCandidate(*def);
    c.coverage = ComputeCoverage(c.afk, useful_sigs_);
    Push(std::move(c), 0.0);
  }
}

void ViewFinder::Push(CandidateView candidate, double floor_cost) {
  const std::string id = candidate.Id();
  if (!enqueued_.insert(id).second) return;
  if (deps_.options.use_optcost_ordering) {
    candidate.opt_cost = std::max(
        OptCost(target_.afk, candidate, deps_.optimizer->cost_model()),
        floor_cost);
  } else {
    // Ablation: FIFO order, no cost-based pruning signal.
    candidate.opt_cost = static_cast<double>(fifo_counter_++) * 1e-9;
  }
  heap_.push_back(std::move(candidate));
  std::push_heap(heap_.begin(), heap_.end(), HeapGreater{});
}

double ViewFinder::Peek() const {
  if (heap_.empty()) return std::numeric_limits<double>::infinity();
  return heap_.front().opt_cost;
}

std::optional<EnumResult> ViewFinder::Refine() {
  if (heap_.empty()) return std::nullopt;
  std::pop_heap(heap_.begin(), heap_.end(), HeapGreater{});
  CandidateView v = std::move(heap_.back());
  heap_.pop_back();
  if (stats_ != nullptr) stats_->candidates_considered += 1;
  CandidateDecision* cd = nullptr;
  if (decision_ != nullptr) {
    decision_->candidates.emplace_back();
    cd = &decision_->candidates.back();
    cd->candidate_id = v.Id();
    cd->num_parts = static_cast<int>(v.NumParts());
    cd->opt_cost = v.opt_cost;
  }
  // Mirror the per-search stats into the process-wide registry so cumulative
  // search effort is visible across queries.
  auto& registry = obs::MetricRegistry::Global();
  registry.counter("rewrite.candidates_considered").Inc();

  // Grow the space: merge v with every previously-seen candidate. MiniCon-
  // style pruning: a merge is only created when each side contributes a
  // useful attribute the other lacks (otherwise the merged candidate can
  // never enable a rewrite its parts could not). New candidates inherit v's
  // OPTCOST as a floor, preserving the monotone exploration order
  // Algorithm 4 relies on.
  for (const CandidateView& s : seen_) {
    Coverage combined = CoverageUnion(v.coverage, s.coverage);
    if (CoverageEqual(combined, v.coverage) ||
        CoverageEqual(combined, s.coverage)) {
      continue;  // one side subsumes the other's contribution
    }
    auto merged = MergeCandidates(v, s, deps_.options.max_views_per_rewrite);
    if (merged.has_value()) {
      merged->coverage = std::move(combined);
      Push(std::move(*merged), v.opt_cost);
    }
  }
  seen_.push_back(v);

  if (deps_.options.use_guess_complete_filter &&
      !GuessComplete(target_.afk, v.afk)) {
    if (cd != nullptr) cd->reject = RejectReason::kAfkContainment;
    return std::nullopt;
  }
  if (cd != nullptr) cd->guess_complete = true;
  if (stats_ != nullptr) stats_->rewrite_attempts += 1;
  registry.counter("rewrite.attempts").Inc();
  auto result = RewriteEnum(target_, v, deps_);
  if (!result.ok()) {
    status_ = result.status();
    return std::nullopt;
  }
  if (result.value().has_value()) {
    if (stats_ != nullptr) {
      stats_->rewrites_found += result.value()->rewrites_found;
    }
    registry.counter("rewrite.found").Inc(result.value()->rewrites_found);
    if (cd != nullptr) {
      cd->rewrite_found = true;
      cd->rewrite_cost = result.value()->cost;
    }
  } else if (cd != nullptr) {
    // GUESSCOMPLETE said maybe, the exact enumeration said no: a confirmed
    // containment failure.
    cd->reject = RejectReason::kAfkContainment;
  }
  return std::move(result).value();
}

void ViewFinder::DrainPrunedDecisions() {
  if (decision_ == nullptr) return;
  std::vector<CandidateView> pending = heap_;
  std::sort(pending.begin(), pending.end(),
            [](const CandidateView& a, const CandidateView& b) {
              if (a.opt_cost != b.opt_cost) return a.opt_cost < b.opt_cost;
              return a.parts < b.parts;
            });
  for (const CandidateView& v : pending) {
    CandidateDecision cd;
    cd.candidate_id = v.Id();
    cd.num_parts = static_cast<int>(v.NumParts());
    cd.opt_cost = v.opt_cost;
    cd.reject = RejectReason::kPrunedByBound;
    decision_->candidates.push_back(std::move(cd));
  }
}

}  // namespace opd::rewrite
