#include "rewrite/guess_complete.h"

#include <set>

namespace opd::rewrite {

bool GuessComplete(const afk::Afk& q, const afk::Afk& v) {
  // (iii) depth: v must not be more aggregated than q.
  const int dv = v.keys().agg_depth();
  const int dq = q.keys().agg_depth();
  if (dv > dq) return false;
  // Same depth requires identical keying (no regrouping budget left).
  if (dv == dq && !(v.keys() == q.keys())) return false;

  // (ii) every filter of v must be implied by q's filters.
  if (!q.filters().ImpliesAll(v.filters())) return false;

  // (i) attribute producibility closure.
  std::set<std::string> closure;
  for (const afk::Attribute& a : ProducibleClosure(q, v)) {
    closure.insert(a.signature());
  }
  for (const afk::Attribute& a : q.attrs()) {
    if (!closure.count(a.signature())) return false;
  }
  // (iii) continued: when the compensation must re-group (v is strictly less
  // aggregated), the attributes q groups on must be obtainable. When the
  // depths already match, K_v == K_q was checked above — the key may be a
  // projected-out column (K survives projection) and need not be producible.
  if (dv < dq) {
    for (const afk::Attribute& k : q.keys().keys()) {
      if (!closure.count(k.signature())) return false;
    }
  }
  return true;
}

}  // namespace opd::rewrite
