// BFR-SYNTACTIC (Section 8.3.4): the caching-style baseline that reuses a
// view only when the view's producing plan is syntactically identical to a
// target's plan (same fingerprint), representing methods like ReStore.

#ifndef OPD_REWRITE_SYNTACTIC_H_
#define OPD_REWRITE_SYNTACTIC_H_

#include "catalog/view_store.h"
#include "common/status.h"
#include "optimizer/optimizer.h"
#include "plan/plan.h"
#include "rewrite/rewriter.h"

namespace opd::rewrite {

/// \brief Syntactic-matching rewriter.
class SyntacticRewriter {
 public:
  SyntacticRewriter(const optimizer::Optimizer* optimizer,
                    const catalog::ViewStore* views)
      : optimizer_(optimizer), views_(views) {}

  /// Replaces every target whose plan fingerprint exactly matches a stored
  /// view with a scan of that view; composes the best combination downstream.
  Result<RewriteOutcome> Rewrite(plan::Plan* plan) const;

 private:
  const optimizer::Optimizer* optimizer_;
  const catalog::ViewStore* views_;
};

}  // namespace opd::rewrite

#endif  // OPD_REWRITE_SYNTACTIC_H_
