// The MERGE function (Section 7.1): composes two candidate views into a new
// candidate by equi-joining on their common attributes — the multi-input rule
// of the UDF model (Section 3.1): A = A1 ∪ A2, F = F1 ∧ F2 ∧ join,
// K = (K1 ∪ K2) ∩ join attributes.

#ifndef OPD_REWRITE_MERGE_H_
#define OPD_REWRITE_MERGE_H_

#include <optional>

#include "rewrite/candidate.h"

namespace opd::rewrite {

/// \brief Merges two candidates, or returns nullopt when they cannot merge:
/// overlapping parts, no common attributes, or exceeding `max_parts` (J).
std::optional<CandidateView> MergeCandidates(const CandidateView& a,
                                             const CandidateView& b,
                                             int max_parts);

}  // namespace opd::rewrite

#endif  // OPD_REWRITE_MERGE_H_
