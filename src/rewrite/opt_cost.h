// OPTCOST (Section 4.3): a quickly-computable lower bound on the cost of any
// valid rewrite of a target q using a candidate view v, obtained by costing a
// synthesized single-local-function UDF that performs the whole "fix" and
// charging it the cheapest operation in the fix (the non-subsumable cost
// property, Definition 1).
//
// Invariant: OPTCOST(q, v) <= COST(r) for every valid rewrite r over v.

#ifndef OPD_REWRITE_OPT_COST_H_
#define OPD_REWRITE_OPT_COST_H_

#include "afk/afk.h"
#include "optimizer/cost_model.h"
#include "rewrite/candidate.h"

namespace opd::rewrite {

/// \brief Lower bound on the cost of any rewrite of `q` that uses
/// `candidate` (directly, or merged into a larger candidate).
///
/// Zero when the candidate is already equivalent to q (the rewrite is a free
/// scan of the existing materialization). Otherwise: one job latency + the
/// mandatory read of every constituent view + the CPU of the cheapest fix
/// operation (Definition 1). Partial candidates (GUESSCOMPLETE false) carry
/// the same bound — it prices their potential to participate in a merged
/// rewrite, which is what lets the ViewFinder surface and merge them
/// incrementally; REWRITEENUM is still only attempted on GUESSCOMPLETE
/// survivors.
double OptCost(const afk::Afk& q, const CandidateView& candidate,
               const optimizer::CostModel& model);

}  // namespace opd::rewrite

#endif  // OPD_REWRITE_OPT_COST_H_
