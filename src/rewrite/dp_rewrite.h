// The dynamic-programming baseline (Section 5, Section 8.2 "DP"): searches
// exhaustively for the best rewrite at every target independently — fully
// exploding the merged-candidate space up-front, with no OPTCOST ordering
// and no early termination — then composes the optimal whole-plan rewrite
// with dynamic programming over the job DAG.
//
// Produces the same r* as BFREWRITE but does far more work; safety budgets
// (candidate count / wall time) exist because the space is exponential.

#ifndef OPD_REWRITE_DP_REWRITE_H_
#define OPD_REWRITE_DP_REWRITE_H_

#include "catalog/view_store.h"
#include "common/status.h"
#include "optimizer/optimizer.h"
#include "plan/plan.h"
#include "rewrite/rewriter.h"

namespace opd::rewrite {

/// \brief Exhaustive DP rewriter (the paper's comparison baseline).
class DpRewriter {
 public:
  DpRewriter(const optimizer::Optimizer* optimizer,
             const catalog::ViewStore* views, RewriteOptions options = {})
      : optimizer_(optimizer), views_(views), options_(std::move(options)) {}

  Result<RewriteOutcome> Rewrite(plan::Plan* plan) const;

 private:
  const optimizer::Optimizer* optimizer_;
  const catalog::ViewStore* views_;
  RewriteOptions options_;
};

}  // namespace opd::rewrite

#endif  // OPD_REWRITE_DP_REWRITE_H_
