#include "server/introspect.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace opd::server {

namespace {

std::string Seconds(double s) {
  char buf[32];
  if (std::isnan(s)) return "n/a";
  std::snprintf(buf, sizeof(buf), "%.3fs", s);
  return buf;
}

std::string PercentileRow(const TenantSlo& slo, const std::string& label) {
  std::ostringstream os;
  os << "  " << label << ": queries=" << slo.queries
     << "  latency p50=" << Seconds(slo.latency_p50_s)
     << " p95=" << Seconds(slo.latency_p95_s)
     << " p99=" << Seconds(slo.latency_p99_s)
     << "  queue p50=" << Seconds(slo.queue_wait_p50_s)
     << " p95=" << Seconds(slo.queue_wait_p95_s)
     << " p99=" << Seconds(slo.queue_wait_p99_s) << "\n";
  return os.str();
}

}  // namespace

std::string RenderQueries(
    const std::vector<std::shared_ptr<const obs::QueryRecord>>& records,
    const IntrospectOptions& options) {
  std::ostringstream os;
  os << "queries: " << records.size() << "\n";
  for (const auto& rec : records) {
    os << "  ";
    if (options.show_wall) os << "[" << rec->ticket << "] ";
    os << rec->tenant << " epoch " << rec->admission_epoch << "->"
       << rec->publish_epoch << " " << rec->status;
    if (rec->status != "ok") os << " (" << rec->error << ")";
    os << " jobs=" << rec->jobs << " rows=" << rec->rows_in << "->"
       << rec->rows_out << " views=" << rec->views_used << "u/"
       << rec->views_published << "p";
    if (rec->cross_tenant_views > 0) {
      os << " cross=" << rec->cross_tenant_views;
    }
    char buf[48];
    std::snprintf(buf, sizeof(buf), " exec=%.2fs", rec->exec_time_s);
    os << buf;
    if (options.show_wall) {
      std::snprintf(buf, sizeof(buf), " wall=%.3fs wait=%.3fs",
                    rec->wall_time_s, rec->queue_wait_s);
      os << buf << " recycle=" << rec->recycle_hits;
    }
    if (!rec->query.empty()) os << "  " << rec->query;
    os << "\n";
  }
  return os.str();
}

std::string RenderProfile(const obs::QueryRecord& record,
                          const std::optional<obs::SlowQueryProfile>& profile,
                          const IntrospectOptions& options) {
  std::ostringstream os;
  os << "profile";
  if (options.show_wall) os << " [" << record.ticket << "]";
  os << " tenant=" << record.tenant << " status=" << record.status << "\n";
  if (!record.query.empty()) os << "  query: " << record.query << "\n";
  if (!record.error.empty()) os << "  error: " << record.error << "\n";
  os << "  epochs: admitted=" << record.admission_epoch
     << " published=" << record.publish_epoch << "\n";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "  exec: %.2fs over %llu jobs",
                record.exec_time_s,
                static_cast<unsigned long long>(record.jobs));
  os << buf << "\n";
  if (options.show_wall) {
    std::snprintf(buf, sizeof(buf),
                  "  wall: %.3fs (queued %.3fs)  recycle hits: %llu",
                  record.wall_time_s, record.queue_wait_s,
                  static_cast<unsigned long long>(record.recycle_hits));
    os << buf << "\n";
  }
  os << "  rows: " << record.rows_in << " in, " << record.rows_out
     << " out\n";
  os << "  views: " << record.views_used << " used ("
     << record.cross_tenant_views << " cross-tenant), "
     << record.views_published << " published\n";
  os << "  rewrite: candidates=" << record.rw_candidates << " accepted="
     << record.rw_accepted << " sig_mismatch=" << record.rw_signature_mismatch
     << " afk=" << record.rw_afk_containment << " not_improving="
     << record.rw_not_cost_improving << " pruned=" << record.rw_pruned_by_bound
     << "\n";
  std::snprintf(buf, sizeof(buf), "  max cost residual: %+.1f%%",
                record.max_residual_pct);
  os << buf << "\n";
  if (profile.has_value()) {
    os << "  --- slow-query capture ---\n";
    os << profile->explain_analyze;
    if (!profile->decision_log.empty()) {
      os << "  --- rewrite decisions ---\n" << profile->decision_log;
      if (profile->decision_log.back() != '\n') os << "\n";
    }
    if (!profile->trace_json.empty()) {
      os << "  trace: " << profile->trace_json.size() << " bytes captured\n";
    }
  }
  return os.str();
}

std::string RenderServerStats(const ServerStats& stats,
                              const IntrospectOptions& options) {
  std::ostringstream os;
  os << "server stats\n";
  os << "  queries completed: " << stats.queries_completed << "\n";
  os << "  view store: " << stats.views_in_store << " views at epoch "
     << stats.epoch << " (" << stats.views_published << " published, "
     << stats.cross_tenant_reuse << " cross-tenant reuses)\n";
  if (options.show_wall) {
    os << "  recycler: " << stats.recycle_hits << " hits, "
       << stats.recycle_misses << " misses\n";
  }
  os << "  admission: " << stats.admission.admitted << " admitted, "
     << stats.admission.running << " running, " << stats.admission.waiting
     << " waiting\n";
  os << "  query log: " << stats.querylog.appended << " appended, "
     << stats.querylog.dropped << " dropped";
  if (options.show_wall) {
    os << ", " << stats.querylog.slow_captured << " slow captured ("
       << stats.querylog.capture_bytes << " bytes, "
       << stats.querylog.slow_evicted << " evicted)";
  }
  os << "\n";
  if (options.show_wall) {
    os << "slo\n";
    os << PercentileRow(stats.global, "all");
    for (const TenantSlo& slo : stats.tenants) {
      os << PercentileRow(slo, slo.tenant);
    }
  }
  return os.str();
}

}  // namespace opd::server
