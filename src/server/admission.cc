#include "server/admission.h"

#include <algorithm>

namespace opd::server {

AdmissionController::AdmissionController(Options options)
    : options_([&] {
        options.max_concurrent = std::max(options.max_concurrent, 1);
        options.per_tenant_quota = std::max(options.per_tenant_quota, 0);
        return options;
      }()) {}

bool AdmissionController::QuotaAllowsLocked(const std::string& tenant) const {
  if (options_.per_tenant_quota <= 0) return true;
  auto it = running_by_tenant_.find(tenant);
  const int running = it == running_by_tenant_.end() ? 0 : it->second;
  return running < options_.per_tenant_quota;
}

bool AdmissionController::AdmitEligibleLocked() {
  bool any = false;
  while (running_ < options_.max_concurrent) {
    // Pick the next grant: among quota-eligible waiters, the one whose
    // tenant holds the fewest slots (fair) or simply the oldest (FIFO).
    // Tie-break is always arrival order, so the choice is deterministic
    // for a given arrival sequence.
    Waiter* pick = nullptr;
    size_t pick_pos = 0;
    int pick_running = 0;
    for (size_t i = 0; i < waiting_.size(); ++i) {
      Waiter* w = waiting_[i];
      if (!QuotaAllowsLocked(w->tenant)) continue;
      if (!options_.fair) {
        pick = w;
        pick_pos = i;
        break;
      }
      auto it = running_by_tenant_.find(w->tenant);
      const int running = it == running_by_tenant_.end() ? 0 : it->second;
      if (pick == nullptr || running < pick_running) {
        pick = w;
        pick_pos = i;
        pick_running = running;
      }
    }
    if (pick == nullptr) break;
    waiting_.erase(waiting_.begin() + static_cast<ptrdiff_t>(pick_pos));
    pick->admitted = true;
    pick->ticket = ++next_ticket_;
    running_ += 1;
    running_by_tenant_[pick->tenant] += 1;
    log_.push_back(pick->tenant);
    any = true;
  }
  return any;
}

uint64_t AdmissionController::Admit(const std::string& tenant) {
  std::unique_lock<std::mutex> lock(mu_);
  Waiter self;
  self.tenant = tenant;
  self.seq = ++next_seq_;
  waiting_.push_back(&self);
  const bool immediate = AdmitEligibleLocked() && self.admitted;
  if (!immediate) {
    queued_total_ += 1;
    cv_.notify_all();
    cv_.wait(lock, [&] { return self.admitted; });
  } else {
    cv_.notify_all();
  }
  return self.ticket;
}

Result<uint64_t> AdmissionController::TryAdmit(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!waiting_.empty() || running_ >= options_.max_concurrent ||
      !QuotaAllowsLocked(tenant)) {
    return Status::OutOfRange("no free query slot for tenant " + tenant);
  }
  running_ += 1;
  running_by_tenant_[tenant] += 1;
  const uint64_t ticket = ++next_ticket_;
  log_.push_back(tenant);
  return ticket;
}

void AdmissionController::Release(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  running_ = std::max(running_ - 1, 0);
  auto it = running_by_tenant_.find(tenant);
  if (it != running_by_tenant_.end() && --it->second <= 0) {
    running_by_tenant_.erase(it);
  }
  if (AdmitEligibleLocked()) cv_.notify_all();
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.admitted = next_ticket_;
  s.queued = queued_total_;
  s.running = running_;
  s.waiting = static_cast<int>(waiting_.size());
  return s;
}

std::vector<std::string> AdmissionController::admission_log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

}  // namespace opd::server
