#include "server/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "catalog/eviction.h"
#include "oql/parser.h"

namespace opd {

// --- ClientSession ---------------------------------------------------------

Result<RunResult> ClientSession::Run(const std::string& oql,
                                     const RunOptions& opts) {
  return server_->Run(tenant_, oql, opts);
}

Result<RunResult> ClientSession::Run(plan::Plan plan, const RunOptions& opts) {
  return server_->Run(tenant_, std::move(plan), opts);
}

Result<std::string> ClientSession::ExplainAnalyze(const std::string& oql,
                                                  const RunOptions& opts) {
  OPD_ASSIGN_OR_RETURN(RunResult run, Run(oql, opts));
  return run.ExplainAnalyze();
}

Result<rewrite::RewriteOutcome> ClientSession::Rewrite(
    const std::string& oql) {
  return server_->Rewrite(oql);
}

Result<std::string> ClientSession::ExplainRewrite(const std::string& oql) {
  OPD_ASSIGN_OR_RETURN(rewrite::RewriteOutcome outcome, Rewrite(oql));
  return RenderExplainRewrite(outcome, server_->views().size());
}

// --- Server ----------------------------------------------------------------

Result<std::unique_ptr<Server>> Server::Create(SessionOptions options) {
  options = options.Resolve();

  auto server = std::unique_ptr<Server>(new Server());
  server->options_ = options;
  server->dfs_ = std::make_unique<storage::Dfs>();
  server->catalog_ = std::make_unique<catalog::Catalog>();
  server->views_ = std::make_unique<catalog::ViewStore>();
  server->udfs_ = std::make_unique<udf::UdfRegistry>();

  plan::AnnotationContext ctx;
  ctx.catalog = server->catalog_.get();
  ctx.views = server->views_.get();
  ctx.udfs = server->udfs_.get();
  server->optimizer_ = std::make_unique<optimizer::Optimizer>(
      ctx, optimizer::CostModel(options.cost), options.optimizer);

  // The serving path owns view publication: the engine hands each run's
  // retained views back (defer_view_publish) and Run publishes them as one
  // atomic batch at query completion.
  exec::EngineOptions engine_opts = options.engine;
  engine_opts.defer_view_publish = true;
  server->engine_ = std::make_unique<exec::Engine>(
      server->dfs_.get(), server->views_.get(), server->optimizer_.get(),
      engine_opts);

  optimizer::CostAccountant::Options acc_opts;
  acc_opts.publish_metrics = options.obs.metrics;
  server->accountant_ = std::make_unique<optimizer::CostAccountant>(acc_opts);
  server->engine_->set_accountant(server->accountant_.get());

  // One recycler per server: every tenant's queries share it (a build cached
  // by one tenant's join is a hit for every other tenant probing the same
  // table or published view).
  exec::hash::HashRecycler::Config recycler_cfg;
  recycler_cfg.budget_bytes = options.server.recycle_budget_bytes;
  server->recycler_ =
      std::make_unique<exec::hash::HashRecycler>(recycler_cfg);
  server->engine_->set_recycler(server->recycler_.get());
  server->bfr_ = std::make_unique<rewrite::BfRewriter>(
      server->optimizer_.get(), server->views_.get(), options.rewrite);

  server::AdmissionController::Options adm;
  adm.max_concurrent = options.server.max_concurrent_queries;
  adm.per_tenant_quota = options.server.per_tenant_quota;
  adm.fair = options.server.fair_scheduling;
  server->admission_ = std::make_unique<server::AdmissionController>(adm);
  return server;
}

Server::~Server() = default;

ClientSession Server::Connect(const std::string& tenant) {
  return ClientSession(this, tenant.empty() ? "default" : tenant);
}

Status Server::RegisterTable(const storage::TablePtr& table,
                             const std::vector<std::string>& key_columns) {
  return catalog_->RegisterBase(table, key_columns, dfs_.get());
}

Result<RunResult> Server::Run(const std::string& tenant,
                              const std::string& oql,
                              const RunOptions& opts) {
  OPD_ASSIGN_OR_RETURN(plan::Plan plan, oql::ParseQuery(oql));
  return Run(tenant, std::move(plan), opts);
}

Result<RunResult> Server::Run(const std::string& tenant_in, plan::Plan plan,
                              const RunOptions& opts) {
  const std::string tenant = !opts.tenant.empty()  ? opts.tenant
                             : !tenant_in.empty()  ? tenant_in
                                                   : "default";
  // --- Admission ----------------------------------------------------------
  const auto wait_start = std::chrono::steady_clock::now();
  uint64_t ticket = 0;
  if (opts.admission.fail_fast) {
    OPD_ASSIGN_OR_RETURN(ticket, admission_->TryAdmit(tenant));
  } else {
    ticket = admission_->Admit(tenant);
  }
  const double queue_wait_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wait_start)
          .count();
  // The admission epoch decides exactly which views this query may see:
  // everything published before this point, nothing publishing after.
  const catalog::Epoch admission_epoch =
      opts.admission.pin_epoch >= 0
          ? static_cast<catalog::Epoch>(opts.admission.pin_epoch)
          : views_->epoch();

  Result<RunResult> run =
      RunAdmitted(tenant, std::move(plan), opts, admission_epoch);
  admission_->Release(tenant);
  if (!run.ok()) return run;

  run->tenant = tenant;
  run->admission_ticket = ticket;
  run->queue_wait_s = queue_wait_s;
  if (options_.obs.metrics) {
    obs::MetricRegistry::Global().histogram("server.queue.wait_s")
        .Observe(queue_wait_s);
    TenantRegistry(tenant).histogram("server.queue.wait_s")
        .Observe(queue_wait_s);
  }
  return run;
}

Result<RunResult> Server::RunAdmitted(const std::string& tenant,
                                      plan::Plan plan, const RunOptions& opts,
                                      catalog::Epoch admission_epoch) {
  RunResult out;
  out.admission_epoch = admission_epoch;

  obs::MetricRegistry& global = obs::MetricRegistry::Global();
  obs::MetricRegistry& scope = TenantRegistry(tenant);
  obs::MetricsSnapshot before;
  obs::MetricsSnapshot tenant_before;
  if (options_.obs.metrics) {
    before = obs::MetricsSnapshot::Capture(global);
    tenant_before = obs::MetricsSnapshot::Capture(scope);
  }
  if (options_.obs.tracing) out.trace = std::make_shared<obs::Trace>();
  obs::Trace* trace = out.trace.get();
  obs::TraceSpan query_span(trace, 0, "query:" + plan.name(), "query");

  if (opts.rewrite) {
    const catalog::ViewSnapshot snapshot = views_->SnapshotAt(admission_epoch);
    OPD_ASSIGN_OR_RETURN(out.rewrite,
                         bfr_->Rewrite(&plan, snapshot, trace,
                                       query_span.id()));
    out.rewritten = true;
    // Credit the views the rewrite uses (drives the retention policies).
    OPD_RETURN_NOT_OK(catalog::RecordPlanAccesses(
        views_.get(), out.rewrite.plan,
        std::max(out.rewrite.original_cost - out.rewrite.est_cost, 0.0)));
    plan = out.rewrite.plan;
    // Record which views the executed plan scans, resolved against the
    // admission snapshot (proves no half-published view was observed and
    // surfaces cross-tenant reuse).
    for (const plan::OpNodePtr& node : plan.TopoOrder()) {
      if (node->kind != plan::OpKind::kScan || node->view_id < 0) continue;
      ViewUse use;
      use.id = node->view_id;
      Result<const catalog::ViewDefinition*> def = snapshot.Find(node->view_id);
      if (def.ok()) {
        use.publish_epoch = (*def)->publish_epoch;
        use.tenant = (*def)->tenant;
      }
      out.views_used.push_back(use);
    }
  }

  OPD_ASSIGN_OR_RETURN(exec::ExecResult exec,
                       engine_->Execute(&plan, trace, query_span.id()));

  // --- Atomic view publication at completion ------------------------------
  // One PublishBatch per query — also when the batch is empty — so the
  // epoch sequence counts completed queries and a recorded schedule can be
  // replayed serially, epoch for epoch.
  for (catalog::ViewDefinition& def : exec.pending_views) def.tenant = tenant;
  catalog::Epoch publish_epoch = 0;
  const std::vector<catalog::ViewStore::PublishResult> published =
      views_->PublishBatch(std::move(exec.pending_views), &publish_epoch);
  exec.pending_views.clear();
  out.publish_epoch = publish_epoch;
  uint64_t views_added = 0;
  for (const auto& pub : published) {
    if (pub.added) ++views_added;
  }
  exec.metrics.views_created += views_added;
  // Publication can evict or supersede views (retention runs inside
  // PublishBatch); sweep recycled builds whose source view is gone. Entries
  // keyed at older epochs of a still-alive view die naturally: their
  // RecycleKey embeds the publish epoch, so nothing can look them up, and
  // the byte budget reclaims them as their benefit-per-byte decays.
  recycler_->InvalidateViews(
      [this](int64_t id) { return views_->Has(id); });
  query_span.End();

  uint64_t cross_tenant_hits = 0;
  for (const ViewUse& use : out.views_used) {
    if (!use.tenant.empty() && use.tenant != tenant) ++cross_tenant_hits;
  }
  uint64_t recycle_hits = 0;
  uint64_t recycle_misses = 0;
  for (const exec::JobRun& jr : exec.jobs) {
    recycle_hits += jr.recycle_hits;
    recycle_misses += jr.recycle_misses;
  }
  if (options_.obs.metrics) {
    if (views_added > 0) {
      global.counter("engine.views_created").Inc(views_added);
    }
    for (obs::MetricRegistry* reg : {&global, &scope}) {
      reg->counter("server.queries.completed").Inc();
      reg->counter("server.views.published").Inc(views_added);
      reg->counter("server.views.cross_reuse").Inc(cross_tenant_hits);
      // Per-tenant recycler attribution: the engine's engine.recycle.*
      // counters are global (pool threads can't know the tenant), so the
      // per-job outcomes are re-attributed here in the tenant scope.
      reg->counter("server.recycle.hits").Inc(recycle_hits);
      reg->counter("server.recycle.misses").Inc(recycle_misses);
    }
  }

  out.table = std::move(exec.table);
  out.metrics = exec.metrics;
  out.jobs = std::move(exec.jobs);
  out.plan = std::move(plan);
  if (options_.obs.metrics) {
    out.metrics_delta =
        obs::MetricsSnapshot::Capture(global).DiffFrom(before);
    out.tenant_delta =
        obs::MetricsSnapshot::Capture(scope).DiffFrom(tenant_before);
  }
  out.cost_drifts = accountant_->Drifts();
  return out;
}

Result<rewrite::RewriteOutcome> Server::Rewrite(const std::string& oql) {
  OPD_ASSIGN_OR_RETURN(plan::Plan plan, oql::ParseQuery(oql));
  // No trace, no view-access credit: this is a read-only search, so running
  // it must not perturb retention policies or metrics-driven decisions.
  return bfr_->Rewrite(&plan, /*trace=*/nullptr, /*parent_span=*/0);
}

std::vector<std::string> Server::Tenants() const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  std::vector<std::string> names;
  names.reserve(tenant_scopes_.size());
  for (const auto& [name, _] : tenant_scopes_) names.push_back(name);
  return names;
}

obs::MetricRegistry& Server::TenantRegistry(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto it = tenant_scopes_.find(tenant);
  if (it == tenant_scopes_.end()) {
    it = tenant_scopes_
             .emplace(tenant, std::make_unique<obs::MetricRegistry>())
             .first;
  }
  return *it->second;
}

obs::MetricsSnapshot Server::TenantSnapshot(const std::string& tenant) {
  return obs::MetricsSnapshot::Capture(TenantRegistry(tenant));
}

}  // namespace opd
