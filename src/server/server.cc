#include "server/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "catalog/eviction.h"
#include "oql/parser.h"

namespace opd {

namespace {

// Normalizes OQL text for the one-line query-history record: drops `#`
// comments, trims the ends, and collapses internal whitespace runs
// (newlines included) to one space, so SHOW QUERIES stays line-oriented.
std::string CompactSource(const std::string& oql) {
  std::string out;
  out.reserve(oql.size());
  bool in_space = true;  // leading whitespace is dropped
  bool in_comment = false;
  for (char c : oql) {
    if (in_comment) {
      if (c == '\n') in_comment = false;
      continue;
    }
    if (c == '#') {
      in_comment = true;
      continue;
    }
    const bool space = c == ' ' || c == '\t' || c == '\n' || c == '\r';
    if (space) {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

}  // namespace

// --- ClientSession ---------------------------------------------------------

Result<RunResult> ClientSession::Run(const std::string& oql,
                                     const RunOptions& opts) {
  return server_->Run(tenant_, oql, opts);
}

Result<RunResult> ClientSession::Run(plan::Plan plan, const RunOptions& opts) {
  return server_->Run(tenant_, std::move(plan), opts);
}

Result<std::string> ClientSession::ExplainAnalyze(const std::string& oql,
                                                  const RunOptions& opts) {
  OPD_ASSIGN_OR_RETURN(RunResult run, Run(oql, opts));
  return run.ExplainAnalyze();
}

Result<rewrite::RewriteOutcome> ClientSession::Rewrite(
    const std::string& oql) {
  return server_->Rewrite(oql);
}

Result<std::string> ClientSession::ExplainRewrite(const std::string& oql) {
  OPD_ASSIGN_OR_RETURN(rewrite::RewriteOutcome outcome, Rewrite(oql));
  return RenderExplainRewrite(outcome, server_->views().size());
}

// --- Server ----------------------------------------------------------------

Result<std::unique_ptr<Server>> Server::Create(SessionOptions options) {
  options = options.Resolve();

  auto server = std::unique_ptr<Server>(new Server());
  server->options_ = options;
  server->dfs_ = std::make_unique<storage::Dfs>();
  server->catalog_ = std::make_unique<catalog::Catalog>();
  server->views_ = std::make_unique<catalog::ViewStore>();
  server->udfs_ = std::make_unique<udf::UdfRegistry>();

  plan::AnnotationContext ctx;
  ctx.catalog = server->catalog_.get();
  ctx.views = server->views_.get();
  ctx.udfs = server->udfs_.get();
  server->optimizer_ = std::make_unique<optimizer::Optimizer>(
      ctx, optimizer::CostModel(options.cost), options.optimizer);

  // The serving path owns view publication: the engine hands each run's
  // retained views back (defer_view_publish) and Run publishes them as one
  // atomic batch at query completion.
  exec::EngineOptions engine_opts = options.engine;
  engine_opts.defer_view_publish = true;
  server->engine_ = std::make_unique<exec::Engine>(
      server->dfs_.get(), server->views_.get(), server->optimizer_.get(),
      engine_opts);

  optimizer::CostAccountant::Options acc_opts;
  acc_opts.publish_metrics = options.obs.metrics;
  server->accountant_ = std::make_unique<optimizer::CostAccountant>(acc_opts);
  server->engine_->set_accountant(server->accountant_.get());

  // One recycler per server: every tenant's queries share it (a build cached
  // by one tenant's join is a hit for every other tenant probing the same
  // table or published view).
  exec::hash::HashRecycler::Config recycler_cfg;
  recycler_cfg.budget_bytes = options.server.recycle_budget_bytes;
  server->recycler_ =
      std::make_unique<exec::hash::HashRecycler>(recycler_cfg);
  server->engine_->set_recycler(server->recycler_.get());
  server->bfr_ = std::make_unique<rewrite::BfRewriter>(
      server->optimizer_.get(), server->views_.get(), options.rewrite);

  server::AdmissionController::Options adm;
  adm.max_concurrent = options.server.max_concurrent_queries;
  adm.per_tenant_quota = options.server.per_tenant_quota;
  adm.fair = options.server.fair_scheduling;
  server->admission_ = std::make_unique<server::AdmissionController>(adm);

  if (options.server.query_log_capacity > 0) {
    obs::QueryLog::Options ql;
    ql.capacity = options.server.query_log_capacity;
    ql.jsonl_path = options.server.query_log_path;
    ql.slow_threshold_s = options.server.slow_query_threshold_s;
    ql.slow_capture_budget_bytes = options.server.slow_query_capture_bytes;
    ql.registry = options.obs.metrics ? &obs::MetricRegistry::Global() : nullptr;
    server->query_log_ = std::make_unique<obs::QueryLog>(ql);
  }
  if (options.obs.metrics) {
    // Eager registration: the server.slo.* / server.querylog.* families
    // exist from startup (so exposition and the metric-name lint see them
    // before the first completion touches each one).
    obs::MetricRegistry& global = obs::MetricRegistry::Global();
    global.histogram("server.slo.latency_s");
    for (const char* name :
         {"server.slo.latency_p50", "server.slo.latency_p95",
          "server.slo.latency_p99", "server.slo.queue_wait_p50",
          "server.slo.queue_wait_p95", "server.slo.queue_wait_p99"}) {
      global.gauge(name);
    }
    for (const char* name :
         {"server.querylog.appended", "server.querylog.dropped",
          "server.querylog.slow_captured", "server.querylog.slow_evicted"}) {
      global.counter(name);
    }
    global.gauge("server.querylog.capture_bytes");
  }
  return server;
}

Server::~Server() = default;

ClientSession Server::Connect(const std::string& tenant) {
  return ClientSession(this, tenant.empty() ? "default" : tenant);
}

Status Server::RegisterTable(const storage::TablePtr& table,
                             const std::vector<std::string>& key_columns) {
  return catalog_->RegisterBase(table, key_columns, dfs_.get());
}

Result<RunResult> Server::Run(const std::string& tenant,
                              const std::string& oql,
                              const RunOptions& opts) {
  OPD_ASSIGN_OR_RETURN(plan::Plan plan, oql::ParseQuery(oql));
  return RunWithSource(tenant, std::move(plan), opts, CompactSource(oql));
}

Result<RunResult> Server::Run(const std::string& tenant_in, plan::Plan plan,
                              const RunOptions& opts) {
  return RunWithSource(tenant_in, std::move(plan), opts, /*source=*/"");
}

Result<RunResult> Server::RunWithSource(const std::string& tenant_in,
                                        plan::Plan plan,
                                        const RunOptions& opts,
                                        const std::string& source) {
  const std::string tenant = !opts.tenant.empty()  ? opts.tenant
                             : !tenant_in.empty()  ? tenant_in
                                                   : "default";
  // --- Admission ----------------------------------------------------------
  const auto wait_start = std::chrono::steady_clock::now();
  uint64_t ticket = 0;
  if (opts.admission.fail_fast) {
    OPD_ASSIGN_OR_RETURN(ticket, admission_->TryAdmit(tenant));
  } else {
    ticket = admission_->Admit(tenant);
  }
  const double queue_wait_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wait_start)
          .count();
  // The admission epoch decides exactly which views this query may see:
  // everything published before this point, nothing publishing after.
  const catalog::Epoch admission_epoch =
      opts.admission.pin_epoch >= 0
          ? static_cast<catalog::Epoch>(opts.admission.pin_epoch)
          : views_->epoch();

  const auto exec_start = std::chrono::steady_clock::now();
  Result<RunResult> run =
      RunAdmitted(tenant, std::move(plan), opts, admission_epoch);
  const double wall_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    exec_start)
          .count();
  admission_->Release(tenant);

  // --- Query history ------------------------------------------------------
  // Every completion — success or failure — leaves a record. The record is
  // assembled before the early error return so failed queries are visible
  // to SHOW QUERIES too.
  if (query_log_ != nullptr) {
    obs::QueryRecord rec;
    rec.tenant = tenant;
    rec.query = source;
    rec.ticket = ticket;
    rec.admission_epoch = admission_epoch;
    rec.queue_wait_s = queue_wait_s;
    rec.wall_time_s = wall_time_s;
    if (run.ok()) {
      rec.publish_epoch = run->publish_epoch;
      rec.exec_time_s = run->metrics.TotalTime();
      rec.rows_in = run->metrics.rows_read;
      rec.rows_out = run->table != nullptr ? run->table->num_rows() : 0;
      rec.jobs = static_cast<uint64_t>(run->metrics.jobs);
      rec.views_used = run->views_used.size();
      for (const ViewUse& use : run->views_used) {
        if (!use.tenant.empty() && use.tenant != tenant) {
          ++rec.cross_tenant_views;
        }
      }
      rec.views_published =
          static_cast<uint64_t>(run->metrics.views_created);
      for (const exec::JobRun& jr : run->jobs) {
        rec.recycle_hits += jr.recycle_hits;
        if (std::fabs(jr.residual_pct) > std::fabs(rec.max_residual_pct)) {
          rec.max_residual_pct = jr.residual_pct;
        }
      }
      if (run->rewritten) {
        const rewrite::DecisionCounts counts =
            run->rewrite.decisions.Counts();
        rec.rw_candidates = counts.candidates;
        rec.rw_accepted = counts.accepted;
        rec.rw_signature_mismatch = counts.signature_mismatch;
        rec.rw_afk_containment = counts.afk_containment;
        rec.rw_not_cost_improving = counts.not_cost_improving;
        rec.rw_pruned_by_bound = counts.pruned_by_bound;
      }
    } else {
      rec.status = "error";
      rec.error = run.status().ToString();
    }
    query_log_->Append(rec);
    if (run.ok() && query_log_->ShouldCapture(wall_time_s)) {
      obs::SlowQueryProfile profile;
      profile.ticket = ticket;
      profile.tenant = tenant;
      profile.wall_time_s = wall_time_s;
      profile.explain_analyze = run->ExplainAnalyze();
      if (run->rewritten) {
        profile.decision_log = run->rewrite.decisions.ToText();
      }
      if (run->trace != nullptr) {
        profile.trace_json = run->trace->ToChromeJson();
      }
      query_log_->CaptureSlow(std::move(profile));
    }
  }
  if (!run.ok()) return run;

  run->tenant = tenant;
  run->admission_ticket = ticket;
  run->queue_wait_s = queue_wait_s;
  if (options_.obs.metrics) {
    obs::MetricRegistry& global = obs::MetricRegistry::Global();
    obs::MetricRegistry& scope = TenantRegistry(tenant);
    for (obs::MetricRegistry* reg : {&global, &scope}) {
      reg->histogram("server.queue.wait_s").Observe(queue_wait_s);
      reg->histogram("server.slo.latency_s").Observe(wall_time_s);
      RefreshSloGauges(*reg);
    }
  }
  return run;
}

void Server::RefreshSloGauges(obs::MetricRegistry& scope) {
  const obs::Histogram& latency = scope.histogram("server.slo.latency_s");
  scope.gauge("server.slo.latency_p50").Set(latency.Quantile(0.50));
  scope.gauge("server.slo.latency_p95").Set(latency.Quantile(0.95));
  scope.gauge("server.slo.latency_p99").Set(latency.Quantile(0.99));
  const obs::Histogram& wait = scope.histogram("server.queue.wait_s");
  scope.gauge("server.slo.queue_wait_p50").Set(wait.Quantile(0.50));
  scope.gauge("server.slo.queue_wait_p95").Set(wait.Quantile(0.95));
  scope.gauge("server.slo.queue_wait_p99").Set(wait.Quantile(0.99));
}

Result<RunResult> Server::RunAdmitted(const std::string& tenant,
                                      plan::Plan plan, const RunOptions& opts,
                                      catalog::Epoch admission_epoch) {
  RunResult out;
  out.admission_epoch = admission_epoch;

  obs::MetricRegistry& global = obs::MetricRegistry::Global();
  obs::MetricRegistry& scope = TenantRegistry(tenant);
  obs::MetricsSnapshot before;
  obs::MetricsSnapshot tenant_before;
  if (options_.obs.metrics) {
    before = obs::MetricsSnapshot::Capture(global);
    tenant_before = obs::MetricsSnapshot::Capture(scope);
  }
  if (options_.obs.tracing) out.trace = std::make_shared<obs::Trace>();
  obs::Trace* trace = out.trace.get();
  obs::TraceSpan query_span(trace, 0, "query:" + plan.name(), "query");

  if (opts.rewrite) {
    const catalog::ViewSnapshot snapshot = views_->SnapshotAt(admission_epoch);
    OPD_ASSIGN_OR_RETURN(out.rewrite,
                         bfr_->Rewrite(&plan, snapshot, trace,
                                       query_span.id()));
    out.rewritten = true;
    // Credit the views the rewrite uses (drives the retention policies).
    OPD_RETURN_NOT_OK(catalog::RecordPlanAccesses(
        views_.get(), out.rewrite.plan,
        std::max(out.rewrite.original_cost - out.rewrite.est_cost, 0.0)));
    plan = out.rewrite.plan;
    // Record which views the executed plan scans, resolved against the
    // admission snapshot (proves no half-published view was observed and
    // surfaces cross-tenant reuse).
    for (const plan::OpNodePtr& node : plan.TopoOrder()) {
      if (node->kind != plan::OpKind::kScan || node->view_id < 0) continue;
      ViewUse use;
      use.id = node->view_id;
      Result<const catalog::ViewDefinition*> def = snapshot.Find(node->view_id);
      if (def.ok()) {
        use.publish_epoch = (*def)->publish_epoch;
        use.tenant = (*def)->tenant;
      }
      out.views_used.push_back(use);
    }
  }

  OPD_ASSIGN_OR_RETURN(exec::ExecResult exec,
                       engine_->Execute(&plan, trace, query_span.id()));

  // --- Atomic view publication at completion ------------------------------
  // One PublishBatch per query — also when the batch is empty — so the
  // epoch sequence counts completed queries and a recorded schedule can be
  // replayed serially, epoch for epoch.
  for (catalog::ViewDefinition& def : exec.pending_views) def.tenant = tenant;
  catalog::Epoch publish_epoch = 0;
  const std::vector<catalog::ViewStore::PublishResult> published =
      views_->PublishBatch(std::move(exec.pending_views), &publish_epoch);
  exec.pending_views.clear();
  out.publish_epoch = publish_epoch;
  uint64_t views_added = 0;
  for (const auto& pub : published) {
    if (pub.added) ++views_added;
  }
  exec.metrics.views_created += views_added;
  // Publication can evict or supersede views (retention runs inside
  // PublishBatch); sweep recycled builds whose source view is gone. Entries
  // keyed at older epochs of a still-alive view die naturally: their
  // RecycleKey embeds the publish epoch, so nothing can look them up, and
  // the byte budget reclaims them as their benefit-per-byte decays.
  recycler_->InvalidateViews(
      [this](int64_t id) { return views_->Has(id); });
  query_span.End();

  uint64_t cross_tenant_hits = 0;
  for (const ViewUse& use : out.views_used) {
    if (!use.tenant.empty() && use.tenant != tenant) ++cross_tenant_hits;
  }
  uint64_t recycle_hits = 0;
  uint64_t recycle_misses = 0;
  for (const exec::JobRun& jr : exec.jobs) {
    recycle_hits += jr.recycle_hits;
    recycle_misses += jr.recycle_misses;
  }
  if (options_.obs.metrics) {
    if (views_added > 0) {
      global.counter("engine.views_created").Inc(views_added);
    }
    for (obs::MetricRegistry* reg : {&global, &scope}) {
      reg->counter("server.queries.completed").Inc();
      reg->counter("server.views.published").Inc(views_added);
      reg->counter("server.views.cross_reuse").Inc(cross_tenant_hits);
      // Per-tenant recycler attribution: the engine's engine.recycle.*
      // counters are global (pool threads can't know the tenant), so the
      // per-job outcomes are re-attributed here in the tenant scope.
      reg->counter("server.recycle.hits").Inc(recycle_hits);
      reg->counter("server.recycle.misses").Inc(recycle_misses);
    }
  }

  out.table = std::move(exec.table);
  out.metrics = exec.metrics;
  out.jobs = std::move(exec.jobs);
  out.plan = std::move(plan);
  if (options_.obs.metrics) {
    out.metrics_delta =
        obs::MetricsSnapshot::Capture(global).DiffFrom(before);
    out.tenant_delta =
        obs::MetricsSnapshot::Capture(scope).DiffFrom(tenant_before);
  }
  out.cost_drifts = accountant_->Drifts();
  return out;
}

Result<rewrite::RewriteOutcome> Server::Rewrite(const std::string& oql) {
  OPD_ASSIGN_OR_RETURN(plan::Plan plan, oql::ParseQuery(oql));
  // No trace, no view-access credit: this is a read-only search, so running
  // it must not perturb retention policies or metrics-driven decisions.
  return bfr_->Rewrite(&plan, /*trace=*/nullptr, /*parent_span=*/0);
}

server::ServerStats Server::Introspect() {
  server::ServerStats stats;
  obs::MetricRegistry& global = obs::MetricRegistry::Global();
  stats.queries_completed = global.counter("server.queries.completed").value();
  stats.views_published = global.counter("server.views.published").value();
  stats.cross_tenant_reuse = global.counter("server.views.cross_reuse").value();
  stats.recycle_hits = global.counter("server.recycle.hits").value();
  stats.recycle_misses = global.counter("server.recycle.misses").value();
  stats.epoch = views_->epoch();
  stats.views_in_store = views_->size();
  stats.admission = admission_->stats();
  if (query_log_ != nullptr) stats.querylog = query_log_->stats();

  auto fill = [](obs::MetricRegistry& reg, server::TenantSlo* slo) {
    const obs::Histogram& latency = reg.histogram("server.slo.latency_s");
    slo->queries = latency.count();
    slo->latency_p50_s = latency.Quantile(0.50);
    slo->latency_p95_s = latency.Quantile(0.95);
    slo->latency_p99_s = latency.Quantile(0.99);
    const obs::Histogram& wait = reg.histogram("server.queue.wait_s");
    slo->queue_wait_p50_s = wait.Quantile(0.50);
    slo->queue_wait_p95_s = wait.Quantile(0.95);
    slo->queue_wait_p99_s = wait.Quantile(0.99);
  };
  stats.global.tenant = "all";
  fill(global, &stats.global);
  for (const std::string& tenant : Tenants()) {
    server::TenantSlo slo;
    slo.tenant = tenant;
    fill(TenantRegistry(tenant), &slo);
    stats.tenants.push_back(std::move(slo));
  }
  return stats;
}

std::vector<std::string> Server::Tenants() const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  std::vector<std::string> names;
  names.reserve(tenant_scopes_.size());
  for (const auto& [name, _] : tenant_scopes_) names.push_back(name);
  return names;
}

obs::MetricRegistry& Server::TenantRegistry(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto it = tenant_scopes_.find(tenant);
  if (it == tenant_scopes_.end()) {
    it = tenant_scopes_
             .emplace(tenant, std::make_unique<obs::MetricRegistry>())
             .first;
  }
  return *it->second;
}

obs::MetricsSnapshot Server::TenantSnapshot(const std::string& tenant) {
  return obs::MetricsSnapshot::Capture(TenantRegistry(tenant));
}

}  // namespace opd
