// Live server introspection (DESIGN.md §3, "Introspection & query
// history"): the structured accessors behind `SHOW QUERIES`,
// `SHOW PROFILE <ticket>`, and `SHOW SERVER STATS`.
//
// Server::Introspect() collects a ServerStats struct from the global and
// per-tenant metric scopes, the admission gate, the view store, and the
// query log; the Render* functions turn those structs (and QueryLog
// records) into the text the shell prints. Rendering takes an
// IntrospectOptions whose `show_wall` flag separates the two audiences:
// interactive use (true — tickets, wall times, queue waits, percentiles)
// and determinism tests (false — only fields that are byte-identical
// between a concurrent run and its serial replay under pinned epochs).

#ifndef OPD_SERVER_INTROSPECT_H_
#define OPD_SERVER_INTROSPECT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/view_store.h"
#include "obs/query_log.h"
#include "server/admission.h"

namespace opd::server {

/// Rendering knobs for the SHOW surfaces.
struct IntrospectOptions {
  /// Include timing-dependent fields (tickets, wall/queue times, latency
  /// percentiles, recycler and slow-capture stats). With false, output is
  /// deterministic under pinned admission epochs.
  bool show_wall = true;
};

/// One tenant's SLO view: latency/queue-wait percentiles out of the
/// tenant's private `server.slo.latency_s` / `server.queue.wait_s`
/// sketches.
struct TenantSlo {
  std::string tenant;
  uint64_t queries = 0;
  double latency_p50_s = 0;
  double latency_p95_s = 0;
  double latency_p99_s = 0;
  double queue_wait_p50_s = 0;
  double queue_wait_p95_s = 0;
  double queue_wait_p99_s = 0;
};

/// \brief Everything `SHOW SERVER STATS` reports, as data.
struct ServerStats {
  uint64_t queries_completed = 0;
  uint64_t views_published = 0;
  uint64_t cross_tenant_reuse = 0;
  uint64_t recycle_hits = 0;
  uint64_t recycle_misses = 0;
  catalog::Epoch epoch = 0;       ///< Current view-store publish epoch.
  size_t views_in_store = 0;
  AdmissionController::Stats admission;
  obs::QueryLog::Stats querylog;
  TenantSlo global;               ///< Fleet-wide percentiles (tenant "").
  std::vector<TenantSlo> tenants; ///< Per-tenant rows, name order.
};

/// `SHOW QUERIES`: one line per retained record, oldest first.
std::string RenderQueries(
    const std::vector<std::shared_ptr<const obs::QueryRecord>>& records,
    const IntrospectOptions& options = {});

/// `SHOW PROFILE <ticket>`: the record in long form plus the slow-query
/// capture (EXPLAIN ANALYZE tree, decision log) when one was retained.
std::string RenderProfile(const obs::QueryRecord& record,
                          const std::optional<obs::SlowQueryProfile>& profile,
                          const IntrospectOptions& options = {});

/// `SHOW SERVER STATS`: counters, store state, admission gate, query-log
/// stats, and (with show_wall) the SLO percentile table.
std::string RenderServerStats(const ServerStats& stats,
                              const IntrospectOptions& options = {});

}  // namespace opd::server

#endif  // OPD_SERVER_INTROSPECT_H_
