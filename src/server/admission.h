// Admission control for concurrent tenant queries (DESIGN.md §3).
//
// A fixed number of query slots is shared by all tenants. Admit() blocks
// until a slot is granted; the grant order is deterministic given the
// arrival order: free slots go to the waiting tenant with the fewest
// running queries (fair round-robin), FIFO within and across tenants as
// the tie-break. A per-tenant quota caps how many slots one tenant may
// hold, so a burst from one analyst cannot starve the others.

#ifndef OPD_SERVER_ADMISSION_H_
#define OPD_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace opd::server {

/// \brief Blocking fair-share admission gate. Thread-safe.
class AdmissionController {
 public:
  struct Options {
    /// Concurrent query slots; values < 1 are clamped to 1.
    int max_concurrent = 4;
    /// Max slots one tenant may hold (0 = unlimited).
    int per_tenant_quota = 0;
    /// Fewest-running-tenant-first scheduling; false = strict global FIFO
    /// (quota still enforced).
    bool fair = true;
  };

  /// Aggregate gate statistics (consistent snapshot).
  struct Stats {
    uint64_t admitted = 0;   ///< total tickets granted
    uint64_t queued = 0;     ///< admissions that had to wait for a slot
    int running = 0;         ///< slots currently held
    int waiting = 0;         ///< queries currently queued
  };

  explicit AdmissionController(Options options);

  /// Blocks until a slot is granted to `tenant`; returns the admission
  /// ticket (1-based position in the global grant order).
  uint64_t Admit(const std::string& tenant);

  /// Non-blocking admit: grants a slot only if one is immediately
  /// available AND no earlier arrival is still queued; otherwise
  /// OutOfRange ("no free query slot").
  Result<uint64_t> TryAdmit(const std::string& tenant);

  /// Returns `tenant`'s slot, waking the next eligible waiter.
  void Release(const std::string& tenant);

  Stats stats() const;
  /// Tenants in ticket order, one entry per grant (the admission log the
  /// determinism tests replay against).
  std::vector<std::string> admission_log() const;

  const Options& options() const { return options_; }

 private:
  struct Waiter {
    std::string tenant;
    uint64_t seq = 0;        ///< arrival order
    bool admitted = false;
    uint64_t ticket = 0;
  };

  /// Grants free slots to eligible waiters per policy; caller holds mu_.
  /// Returns true if anyone was admitted (caller must notify).
  bool AdmitEligibleLocked();
  bool QuotaAllowsLocked(const std::string& tenant) const;

  const Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t next_seq_ = 0;                 // guarded by mu_
  uint64_t next_ticket_ = 0;              // guarded by mu_
  uint64_t queued_total_ = 0;             // guarded by mu_
  int running_ = 0;                       // guarded by mu_
  std::map<std::string, int> running_by_tenant_;  // guarded by mu_
  std::deque<Waiter*> waiting_;           // guarded by mu_ (arrival order)
  std::vector<std::string> log_;          // guarded by mu_ (ticket order)
};

}  // namespace opd::server

#endif  // OPD_SERVER_ADMISSION_H_
