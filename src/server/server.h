// opd::Server — the multi-tenant serving layer (DESIGN.md §3).
//
// One Server owns the whole shared stack: simulated DFS, base-table
// catalog, opportunistic ViewStore, UDF registry, optimizer, MR engine,
// BFREWRITE rewriter, cost accountant, and the admission gate. Named
// tenants connect with `Connect(tenant)` and get a lightweight
// ClientSession handle whose Run/Explain surface mirrors opd::Session.
//
// Concurrency model:
//   * Admission control (AdmissionController) bounds concurrent queries
//     and schedules waiting tenants fairly.
//   * View visibility is snapshot-consistent: at admission a query reads
//     the store's publish epoch and rewrites only against
//     SnapshotAt(admission_epoch); the views it materializes stay
//     invisible (EngineOptions::defer_view_publish) until they publish as
//     one atomic batch at completion — one epoch bump per query, so no
//     query ever observes a half-published view, and a recorded schedule
//     replays deterministically by pinning admission epochs.
//   * Per-tenant metrics: each tenant gets a private MetricRegistry scope
//     receiving the server.* counters, alongside the shared global
//     registry, so per-tenant deltas stay exact under concurrency.

#ifndef OPD_SERVER_SERVER_H_
#define OPD_SERVER_SERVER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/view_store.h"
#include "common/status.h"
#include "exec/engine.h"
#include "exec/hash/recycler.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/snapshot.h"
#include "optimizer/accountability.h"
#include "optimizer/optimizer.h"
#include "plan/plan.h"
#include "rewrite/bf_rewrite.h"
#include "server/admission.h"
#include "server/introspect.h"
#include "session/session.h"
#include "storage/dfs.h"
#include "udf/udf_registry.h"

namespace opd {

/// \brief A tenant's handle onto a Server. Lightweight and copyable; all
/// state lives in the Server, which must outlive the handle. One handle
/// may be used from one thread at a time; different handles (including
/// handles for the same tenant) run concurrently.
class ClientSession {
 public:
  ClientSession() = default;

  /// Parses and runs an OQL program as this tenant.
  Result<RunResult> Run(const std::string& oql, const RunOptions& opts = {});
  /// Runs a plan (prepared in place) as this tenant.
  Result<RunResult> Run(plan::Plan plan, const RunOptions& opts = {});

  /// Runs `oql` and renders the observed per-job stats as a tree.
  Result<std::string> ExplainAnalyze(const std::string& oql,
                                     const RunOptions& opts = {});

  /// Rewrites `oql` against the currently-published views WITHOUT
  /// executing (no admission, no view credit, nothing materializes).
  Result<rewrite::RewriteOutcome> Rewrite(const std::string& oql);

  /// EXPLAIN REWRITE: Rewrite() rendered as the decision-log report.
  Result<std::string> ExplainRewrite(const std::string& oql);

  const std::string& tenant() const { return tenant_; }
  Server& server() const { return *server_; }
  bool connected() const { return server_ != nullptr; }

 private:
  friend class Server;
  ClientSession(Server* server, std::string tenant)
      : server_(server), tenant_(std::move(tenant)) {}

  Server* server_ = nullptr;
  std::string tenant_;
};

/// \brief The shared, concurrent query-serving stack.
class Server {
 public:
  static Result<std::unique_ptr<Server>> Create(SessionOptions options = {});
  ~Server();

  /// A handle running queries as `tenant` (empty maps to "default").
  /// Connecting is cheap and does not allocate server-side state until the
  /// tenant's first query.
  ClientSession Connect(const std::string& tenant);

  /// Registers `table` as a shared base relation keyed on `key_columns`
  /// (writes its data to the server DFS and computes exact statistics).
  Status RegisterTable(const storage::TablePtr& table,
                       const std::vector<std::string>& key_columns);

  /// Runs a query as `tenant`: admission -> epoch snapshot -> rewrite ->
  /// execute -> atomic view publish. Blocks while queued (unless
  /// opts.admission.fail_fast). Thread-safe; this is the one serving path,
  /// used by ClientSession and (via the wrapper) Session.
  Result<RunResult> Run(const std::string& tenant, plan::Plan plan,
                        const RunOptions& opts = {});
  Result<RunResult> Run(const std::string& tenant, const std::string& oql,
                        const RunOptions& opts = {});

  /// Read-only rewrite against the currently-published views (no
  /// admission, no credit, no execution).
  Result<rewrite::RewriteOutcome> Rewrite(const std::string& oql);

  /// Tenants that have run at least one query, in name order.
  std::vector<std::string> Tenants() const;
  /// The tenant's private metric scope (created on first use).
  obs::MetricRegistry& TenantRegistry(const std::string& tenant);
  /// Snapshot of the tenant's private scope (empty scope if unseen).
  obs::MetricsSnapshot TenantSnapshot(const std::string& tenant);

  /// The server-lifetime query history, or nullptr when
  /// ServerOptions::query_log_capacity is 0.
  obs::QueryLog* query_log() { return query_log_.get(); }

  /// Collects the `SHOW SERVER STATS` data: completion counters, view-store
  /// state, admission gate, query-log stats, and global + per-tenant SLO
  /// percentiles from the live sketches.
  server::ServerStats Introspect();

  /// Admission-gate statistics and grant log (determinism tests).
  server::AdmissionController::Stats admission_stats() const {
    return admission_->stats();
  }
  std::vector<std::string> admission_log() const {
    return admission_->admission_log();
  }

  storage::Dfs& dfs() { return *dfs_; }
  catalog::Catalog& catalog() { return *catalog_; }
  catalog::ViewStore& views() { return *views_; }
  udf::UdfRegistry& udfs() { return *udfs_; }
  const optimizer::Optimizer& optimizer() const { return *optimizer_; }
  exec::Engine& engine() { return *engine_; }
  /// The shared hash-table recycler (one per server, shared by every
  /// tenant's queries; budget from ServerOptions::recycle_budget_bytes).
  exec::hash::HashRecycler& recycler() { return *recycler_; }
  const rewrite::BfRewriter& rewriter() const { return *bfr_; }
  const optimizer::CostAccountant& accountant() const { return *accountant_; }
  const SessionOptions& options() const { return options_; }

 private:
  Server() = default;

  /// The full serving path behind both public Run overloads; `source` is
  /// the OQL text when the query arrived as text ("" for prepared plans)
  /// and lands in the query-history record.
  Result<RunResult> RunWithSource(const std::string& tenant, plan::Plan plan,
                                  const RunOptions& opts,
                                  const std::string& source);

  /// The admitted section of Run (slot already held; releases nothing).
  Result<RunResult> RunAdmitted(const std::string& tenant, plan::Plan plan,
                                const RunOptions& opts,
                                catalog::Epoch admission_epoch);

  /// Recomputes the p50/p95/p99 latency and queue-wait gauges of `scope`
  /// from its live sketches (called on every completion).
  static void RefreshSloGauges(obs::MetricRegistry& scope);

  SessionOptions options_;
  std::unique_ptr<storage::Dfs> dfs_;
  std::unique_ptr<catalog::Catalog> catalog_;
  std::unique_ptr<catalog::ViewStore> views_;
  std::unique_ptr<udf::UdfRegistry> udfs_;
  std::unique_ptr<optimizer::Optimizer> optimizer_;
  std::unique_ptr<optimizer::CostAccountant> accountant_;
  std::unique_ptr<exec::hash::HashRecycler> recycler_;
  std::unique_ptr<exec::Engine> engine_;
  std::unique_ptr<rewrite::BfRewriter> bfr_;
  std::unique_ptr<server::AdmissionController> admission_;
  std::unique_ptr<obs::QueryLog> query_log_;  // null when capacity == 0

  mutable std::mutex tenants_mu_;
  /// Tenant -> private metric scope; pointers are stable (node-based map
  /// + unique_ptr), so handing a registry out of the lock is safe.
  std::map<std::string, std::unique_ptr<obs::MetricRegistry>> tenant_scopes_;
};

}  // namespace opd

#endif  // OPD_SERVER_SERVER_H_
