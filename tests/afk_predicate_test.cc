// Unit + property tests for predicates, implication, and filter sets
// (the F component of the model; GUESSCOMPLETE condition (ii)).

#include "afk/predicate.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace opd::afk {
namespace {

using storage::DataType;
using storage::Value;

Attribute Attr(const std::string& name) {
  return Attribute::Base("T", name, DataType::kDouble);
}

TEST(CmpEvalTest, AllOperators) {
  Value a(int64_t{3}), b(int64_t{5});
  EXPECT_TRUE(EvalCmp(a, CmpOp::kLt, b));
  EXPECT_TRUE(EvalCmp(a, CmpOp::kLe, b));
  EXPECT_FALSE(EvalCmp(a, CmpOp::kGt, b));
  EXPECT_FALSE(EvalCmp(a, CmpOp::kGe, b));
  EXPECT_FALSE(EvalCmp(a, CmpOp::kEq, b));
  EXPECT_TRUE(EvalCmp(a, CmpOp::kNe, b));
  EXPECT_TRUE(EvalCmp(a, CmpOp::kEq, a));
  EXPECT_TRUE(EvalCmp(a, CmpOp::kLe, a));
  EXPECT_TRUE(EvalCmp(a, CmpOp::kGe, a));
}

TEST(CmpEvalTest, NumericCoercion) {
  EXPECT_TRUE(EvalCmp(Value(int64_t{3}), CmpOp::kEq, Value(3.0)));
  EXPECT_TRUE(EvalCmp(Value(2.5), CmpOp::kLt, Value(int64_t{3})));
}

TEST(PredicateTest, CanonicalEquality) {
  Predicate p1 = Predicate::Compare(Attr("d"), CmpOp::kLt, Value(10.0));
  Predicate p2 = Predicate::Compare(Attr("d"), CmpOp::kLt, Value(10.0));
  Predicate p3 = Predicate::Compare(Attr("d"), CmpOp::kLt, Value(11.0));
  EXPECT_EQ(p1, p2);
  EXPECT_FALSE(p1 == p3);
}

TEST(PredicateTest, SelfImplication) {
  Predicate p = Predicate::Compare(Attr("d"), CmpOp::kLt, Value(10.0));
  EXPECT_TRUE(p.Implies(p));
}

TEST(PredicateTest, LessThanImplication) {
  // d < 5 implies d < 10 (the paper's Figure 5 style fix reasoning).
  Predicate strong = Predicate::Compare(Attr("d"), CmpOp::kLt, Value(5.0));
  Predicate weak = Predicate::Compare(Attr("d"), CmpOp::kLt, Value(10.0));
  EXPECT_TRUE(strong.Implies(weak));
  EXPECT_FALSE(weak.Implies(strong));
}

TEST(PredicateTest, GreaterThanImplication) {
  Predicate strong = Predicate::Compare(Attr("s"), CmpOp::kGt, Value(1.0));
  Predicate weak = Predicate::Compare(Attr("s"), CmpOp::kGt, Value(0.5));
  EXPECT_TRUE(strong.Implies(weak));
  EXPECT_FALSE(weak.Implies(strong));
}

TEST(PredicateTest, EqualityImpliesRange) {
  Predicate eq = Predicate::Compare(Attr("d"), CmpOp::kEq, Value(5.0));
  EXPECT_TRUE(eq.Implies(Predicate::Compare(Attr("d"), CmpOp::kLt, Value(6.0))));
  EXPECT_TRUE(eq.Implies(Predicate::Compare(Attr("d"), CmpOp::kLe, Value(5.0))));
  EXPECT_TRUE(eq.Implies(Predicate::Compare(Attr("d"), CmpOp::kGt, Value(4.0))));
  EXPECT_TRUE(eq.Implies(Predicate::Compare(Attr("d"), CmpOp::kGe, Value(5.0))));
  EXPECT_TRUE(eq.Implies(Predicate::Compare(Attr("d"), CmpOp::kNe, Value(7.0))));
  EXPECT_FALSE(eq.Implies(Predicate::Compare(Attr("d"), CmpOp::kLt, Value(5.0))));
}

TEST(PredicateTest, MixedStrictnessImplication) {
  // d <= 4 implies d < 5; d < 5 does not imply d <= 4.
  Predicate le = Predicate::Compare(Attr("d"), CmpOp::kLe, Value(4.0));
  Predicate lt = Predicate::Compare(Attr("d"), CmpOp::kLt, Value(5.0));
  EXPECT_TRUE(le.Implies(lt));
  EXPECT_FALSE(lt.Implies(le));
  // d < 5 implies d <= 5.
  Predicate le5 = Predicate::Compare(Attr("d"), CmpOp::kLe, Value(5.0));
  Predicate lt5 = Predicate::Compare(Attr("d"), CmpOp::kLt, Value(5.0));
  EXPECT_TRUE(lt5.Implies(le5));
  EXPECT_FALSE(le5.Implies(lt5));
}

TEST(PredicateTest, DifferentAttributesNeverImply) {
  Predicate pa = Predicate::Compare(Attr("a"), CmpOp::kLt, Value(1.0));
  Predicate pb = Predicate::Compare(Attr("b"), CmpOp::kLt, Value(100.0));
  EXPECT_FALSE(pa.Implies(pb));
}

TEST(PredicateTest, OpaqueImplicationIsEqualityOnly) {
  Predicate p1 = Predicate::Opaque("valid_geo", {Attr("geo")}, "");
  Predicate p2 = Predicate::Opaque("valid_geo", {Attr("geo")}, "");
  Predicate p3 = Predicate::Opaque("valid_geo", {Attr("geo2")}, "");
  EXPECT_TRUE(p1.Implies(p2));
  EXPECT_FALSE(p1.Implies(p3));
  EXPECT_FALSE(p3.Implies(p1));
}

TEST(PredicateTest, JoinEqCanonicalizesOrder) {
  Predicate p1 = Predicate::JoinEq(Attr("a"), Attr("b"));
  Predicate p2 = Predicate::JoinEq(Attr("b"), Attr("a"));
  EXPECT_EQ(p1, p2);
}

// Property test: implication must be sound. If strong.Implies(weak), then
// for every sampled value satisfying `strong`, `weak` must hold too.
class ImplicationSoundness : public ::testing::TestWithParam<int> {};

TEST_P(ImplicationSoundness, RandomComparisonPairs) {
  Rng rng(GetParam());
  const CmpOp ops[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                       CmpOp::kGe, CmpOp::kEq, CmpOp::kNe};
  for (int trial = 0; trial < 200; ++trial) {
    CmpOp op1 = ops[rng.Uniform(6)], op2 = ops[rng.Uniform(6)];
    double lit1 = static_cast<double>(rng.UniformInt(-5, 5));
    double lit2 = static_cast<double>(rng.UniformInt(-5, 5));
    Predicate strong = Predicate::Compare(Attr("x"), op1, Value(lit1));
    Predicate weak = Predicate::Compare(Attr("x"), op2, Value(lit2));
    if (!strong.Implies(weak)) continue;
    for (double v = -8.0; v <= 8.0; v += 0.5) {
      if (EvalCmp(Value(v), op1, Value(lit1))) {
        EXPECT_TRUE(EvalCmp(Value(v), op2, Value(lit2)))
            << strong.ToString() << " claimed to imply " << weak.ToString()
            << " but v=" << v << " violates it";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImplicationSoundness,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(FilterSetTest, AddIsIdempotentAndSorted) {
  FilterSet f;
  Predicate p1 = Predicate::Compare(Attr("a"), CmpOp::kLt, Value(1.0));
  Predicate p2 = Predicate::Compare(Attr("b"), CmpOp::kGt, Value(2.0));
  f.Add(p1);
  f.Add(p2);
  f.Add(p1);
  EXPECT_EQ(f.size(), 2u);
  EXPECT_TRUE(f.Contains(p1));
  EXPECT_TRUE(f.Contains(p2));
}

TEST(FilterSetTest, ImpliesAllConjunction) {
  FilterSet q, v;
  q.Add(Predicate::Compare(Attr("s"), CmpOp::kGt, Value(1.0)));
  q.Add(Predicate::Compare(Attr("c"), CmpOp::kGt, Value(100.0)));
  v.Add(Predicate::Compare(Attr("s"), CmpOp::kGt, Value(0.5)));
  // The query's filters imply the view's weaker filter.
  EXPECT_TRUE(q.ImpliesAll(v));
  EXPECT_FALSE(v.ImpliesAll(q));
}

TEST(FilterSetTest, MissingFromComputesFix) {
  FilterSet q, v;
  Predicate strong = Predicate::Compare(Attr("s"), CmpOp::kGt, Value(1.0));
  Predicate other = Predicate::Compare(Attr("c"), CmpOp::kGt, Value(10.0));
  q.Add(strong);
  q.Add(other);
  v.Add(Predicate::Compare(Attr("s"), CmpOp::kGt, Value(0.5)));
  auto missing = q.MissingFrom(v);
  // Both q filters are missing: the view's s>0.5 does not imply s>1.
  ASSERT_EQ(missing.size(), 2u);
}

TEST(FilterSetTest, MissingFromEmptyWhenEquivalent) {
  FilterSet q, v;
  q.Add(Predicate::Compare(Attr("s"), CmpOp::kGt, Value(1.0)));
  v.Add(Predicate::Compare(Attr("s"), CmpOp::kGt, Value(1.0)));
  EXPECT_TRUE(q.MissingFrom(v).empty());
}

TEST(FilterSetTest, EquivalenceUnderRedundancy) {
  // {a<5} is equivalent to {a<10, a<5}: compensation adds redundant filters.
  FilterSet tight, redundant;
  tight.Add(Predicate::Compare(Attr("a"), CmpOp::kLt, Value(5.0)));
  redundant.Add(Predicate::Compare(Attr("a"), CmpOp::kLt, Value(10.0)));
  redundant.Add(Predicate::Compare(Attr("a"), CmpOp::kLt, Value(5.0)));
  EXPECT_TRUE(tight.EquivalentTo(redundant));
  EXPECT_TRUE(redundant.EquivalentTo(tight));
}

TEST(FilterSetTest, UnionMerges) {
  FilterSet a, b;
  a.Add(Predicate::Compare(Attr("x"), CmpOp::kLt, Value(1.0)));
  b.Add(Predicate::Compare(Attr("y"), CmpOp::kGt, Value(2.0)));
  FilterSet u = FilterSet::Union(a, b);
  EXPECT_EQ(u.size(), 2u);
}

}  // namespace
}  // namespace opd::afk
